(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (§4-§5), then times the primitives behind the headline claim
   (behavioural-model queries vs transistor-level simulation) with Bechamel.

   Default scale is the paper's (10,000 optimisation samples, 200 MC samples
   per Pareto point, 500-sample verifications); set YIELDLAB_FAST=1 for a
   reduced smoke run.  Ablation studies at the end exercise the design
   choices DESIGN.md calls out. *)

module Config = Yield_core.Config
module Flow = Yield_core.Flow
module Experiments = Yield_core.Experiments
module Report = Yield_core.Report
module Ota = Yield_circuits.Ota
module Tb = Yield_circuits.Ota_testbench
module Filter = Yield_circuits.Filter
module Perf_model = Yield_behavioural.Perf_model
module Var_model = Yield_behavioural.Var_model
module Macromodel = Yield_behavioural.Macromodel
module Yield_target = Yield_behavioural.Yield_target
module Variation = Yield_process.Variation
module Wbga = Yield_ga.Wbga
module Pareto = Yield_ga.Pareto
module Nsga2 = Yield_ga.Nsga2
module Ga = Yield_ga.Ga
module Rng = Yield_stats.Rng
module Mat = Yield_numeric.Mat
module Lu = Yield_numeric.Lu
module Json = Yield_obs.Json
module Metrics = Yield_obs.Metrics

(* ------------------------------------------------------------------ *)
(* Machine-readable record of the flow run: stage timings, simulation
   counts and the instrument snapshot, so the perf trajectory is diffable
   across PRs (the JSON schema is documented in README.md §Telemetry). *)

(* Jobs-sweep mode (YIELDLAB_JOBS_SWEEP="1,2,4"): re-run the flow at each
   jobs value and record the flow.wbga wall-clock and its speedup over the
   serial run, so a perf regression gate can be built on BENCH_flow.json. *)

let parse_jobs_sweep s =
  String.split_on_char ',' s
  |> List.filter_map (fun tok -> int_of_string_opt (String.trim tok))
  |> List.filter (fun n -> n >= 1)

let jobs_sweep config =
  match Sys.getenv_opt "YIELDLAB_JOBS_SWEEP" with
  | None | Some "" -> []
  | Some s ->
      let jobs_list = parse_jobs_sweep s in
      if jobs_list = [] then []
      else begin
        print_string (Report.section "Jobs sweep: flow.wbga scaling");
        let runs =
          List.map
            (fun jobs ->
              let flow = Flow.run { config with Config.jobs } in
              Printf.printf "  jobs %d: wbga %.2f s, mc %.2f s, total %.2f s\n%!"
                jobs flow.Flow.timings.Flow.optimisation_s
                flow.Flow.timings.Flow.mc_s flow.Flow.timings.Flow.total_s;
              (jobs, flow.Flow.timings))
            jobs_list
        in
        let serial_wbga_s =
          Option.map
            (fun (t : Flow.timings) -> t.Flow.optimisation_s)
            (List.assoc_opt 1 runs)
        in
        List.map
          (fun (jobs, (t : Flow.timings)) ->
            let speedup =
              match serial_wbga_s with
              | Some s when t.Flow.optimisation_s > 0. ->
                  let x = s /. t.Flow.optimisation_s in
                  Printf.printf "  jobs %d: flow.wbga speedup %.2fx\n%!" jobs x;
                  Json.Float x
              | Some _ | None -> Json.Null
            in
            Json.Obj
              [
                ("jobs", Json.Int jobs);
                ("wbga_s", Json.Float t.Flow.optimisation_s);
                ("mc_s", Json.Float t.Flow.mc_s);
                ("total_s", Json.Float t.Flow.total_s);
                ("wbga_speedup", speedup);
              ])
          runs
      end

(* Corner-proof prescreen A/B: re-run the same flow with the corner-interval
   prescreen armed against a wide spec window (gain >= 60 dB, which parts of
   the front provably cannot reach over the 0.5-sigma box), so the BENCH
   document records the Monte Carlo cut next to the no-prescreen reference.
   The prescreen run's totals must come in strictly below the reference —
   the perf gate's sim_counts are the reference run's, which is why this
   runs as its own section instead of replacing the main flow. *)
let prescreen_ab ctx =
  let config = ctx.Experiments.config in
  let ps =
    {
      Config.enabled = true;
      k_sigma = 0.5;
      min_gain_db = 60.;
      min_pm_deg = 0.;
      pass_budget_frac = 1.;
    }
  in
  print_string
    (Report.section "Monte Carlo prescreen: corner proofs before sampling");
  let flow = Flow.run { config with Config.prescreen = ps } in
  let base = ctx.Experiments.flow in
  let base_total = Flow.total_sims base.Flow.counts in
  let ps_total = Flow.total_sims flow.Flow.counts in
  let pc =
    match flow.Flow.prescreen with
    | Some p -> p
    | None -> assert false (* prescreen was enabled *)
  in
  let perf_tables_identical =
    Perf_model.points base.Flow.perf_model
    = Perf_model.points flow.Flow.perf_model
  in
  Printf.printf
    "  window gain >= %g dB at k = %g\n\
    \  analysed %d front points: %d provably-fail (MC skipped), %d \
     provably-pass, %d undecided\n\
    \  sim_counts.total %d vs %d without prescreen (%d MC samples saved)\n\
    \  variation points %d vs %d; perf table identical: %b\n\
     %!"
    ps.Config.min_gain_db ps.Config.k_sigma pc.Flow.analysed
    pc.Flow.fail_skipped pc.Flow.provably_passed pc.Flow.undecided ps_total
    base_total (base_total - ps_total)
    (Array.length flow.Flow.var_points)
    (Array.length base.Flow.var_points)
    perf_tables_identical;
  Json.Obj
    [
      ("k_sigma", Json.Float ps.Config.k_sigma);
      ("min_gain_db", Json.Float ps.Config.min_gain_db);
      ("min_pm_deg", Json.Float ps.Config.min_pm_deg);
      ("analysed", Json.Int pc.Flow.analysed);
      ("fail_skipped", Json.Int pc.Flow.fail_skipped);
      ("provably_passed", Json.Int pc.Flow.provably_passed);
      ("undecided", Json.Int pc.Flow.undecided);
      ("sim_counts_total", Json.Int ps_total);
      ("no_prescreen_total", Json.Int base_total);
      ("mc_sims", Json.Int flow.Flow.counts.Flow.mc_sims);
      ("no_prescreen_mc_sims", Json.Int base.Flow.counts.Flow.mc_sims);
      ("var_points", Json.Int (Array.length flow.Flow.var_points));
      ( "no_prescreen_var_points",
        Json.Int (Array.length base.Flow.var_points) );
      ("perf_table_identical", Json.Bool perf_tables_identical);
    ]

(* Solver A/B: per-sample Monte Carlo cost through the Linsys seam.  One
   session per (topology, backend) — the circuit is instantiated and the
   pattern compiled once; csr additionally caches its symbolic
   factorisation — then the same seeded sample stream replays through each
   backend via Variation.overrides.  Dense is the shipped default and the
   byte-identity reference; the gated flow's sim_counts come from the main
   (dense) run, so this records the seam's per-sample cost next to it
   without perturbing the gate. *)
let solver_ab ctx =
  (* a fresh functor instantiation, like Flow's: the wrapper
     Miller_testbench module deliberately hides the session API *)
  let module Mtb = Yield_circuits.Testbench.Make (Yield_circuits.Miller) in
  let module Clock = Yield_obs.Clock in
  print_string
    (Report.section "Solver A/B: dense vs csr Monte Carlo sessions (miller)");
  let spec = ctx.Experiments.config.Config.variation in
  let params = Yield_circuits.Miller.default_params in
  let samples =
    match Sys.getenv_opt "YIELDLAB_FAST" with
    | Some v when v <> "" && v <> "0" -> 50
    | Some _ | None -> 200
  in
  let run backend =
    let session = Mtb.session ~solver:backend params in
    (* one warm sample so csr's first-factor cost is not billed per sample *)
    ignore
      (Mtb.evaluate_in_session session ~spec ~rng:(Yield_stats.Rng.create 0));
    let t0 = Clock.now_s () in
    let results =
      Array.init samples (fun seed ->
          Mtb.evaluate_in_session session ~spec
            ~rng:(Yield_stats.Rng.create (seed + 1)))
    in
    let per_sample_us = (Clock.now_s () -. t0) /. float samples *. 1e6 in
    (Mtb.session_solver_name session, per_sample_us, results)
  in
  let name_d, us_d, rs_d = run Yield_numeric.Linsys.Dense in
  let name_c, us_c, rs_c = run Yield_numeric.Linsys.Csr in
  (* agreement between the backends over the kept samples, as a sanity
     number in the document (the tolerance-checked version is a unit test) *)
  let max_rel_diff =
    let worst = ref 0. in
    Array.iteri
      (fun i rd ->
        match (rd, rs_c.(i)) with
        | Some (d : Yield_circuits.Testbench.perf), Some c ->
            let rel a b =
              Float.abs (a -. b) /. Float.max 1e-9 (Float.abs a)
            in
            worst :=
              Float.max !worst
                (Float.max
                   (rel d.Yield_circuits.Testbench.gain_db
                      c.Yield_circuits.Testbench.gain_db)
                   (rel d.Yield_circuits.Testbench.phase_margin_deg
                      c.Yield_circuits.Testbench.phase_margin_deg))
        | None, None -> ()
        | Some _, None | None, Some _ -> worst := Float.infinity)
      rs_d;
    !worst
  in
  Printf.printf
    "  %d samples/backend, one session each (pattern + symbolic cached)\n\
    \  %s: %.1f us/sample   %s: %.1f us/sample   (dense/csr = %.2fx)\n\
    \  max relative gain/PM deviation: %.3g\n\
     %!"
    samples name_d us_d name_c us_c (us_d /. us_c) max_rel_diff;
  Json.Obj
    [
      ("samples", Json.Int samples);
      ("dense_us_per_sample", Json.Float us_d);
      ("csr_us_per_sample", Json.Float us_c);
      ("dense_over_csr", Json.Float (us_d /. us_c));
      ("max_rel_diff", Json.Float max_rel_diff);
    ]

let write_bench_json ?(sweep = []) ?prescreen ?solver ctx ~path =
  let flow = ctx.Experiments.flow in
  let t = flow.Flow.timings in
  let c = flow.Flow.counts in
  let snap = Metrics.snapshot () in
  (* the shared field list (Sink.histogram_fields), so the BENCH schema and
     the JSONL sink schema cannot drift apart *)
  let histogram_json (s : Yield_obs.Histogram.summary) =
    Json.Obj (Yield_obs.Sink.histogram_fields s)
  in
  let json =
    Json.Obj
      ([
        ("scale", Json.String (Config.scale_name ctx.Experiments.config));
        ("jobs", Json.Int ctx.Experiments.config.Config.jobs);
        ( "stage_s",
          Json.Obj
            [
              ("optimisation", Json.Float t.Flow.optimisation_s);
              ("mc", Json.Float t.Flow.mc_s);
              ("total", Json.Float t.Flow.total_s);
            ] );
        ( "sim_counts",
          Json.Obj
            [
              ("optimisation", Json.Int c.Flow.optimisation_sims);
              ("front", Json.Int c.Flow.front_sims);
              ("mc", Json.Int c.Flow.mc_sims);
              ("total", Json.Int (Flow.total_sims c));
            ] );
        ( "counters",
          Json.Obj
            (List.map (fun (n, v) -> (n, Json.Int v)) snap.Metrics.counters) );
        ( "histograms",
          Json.Obj
            (List.map
               (fun (n, s) -> (n, histogram_json s))
               snap.Metrics.histograms) );
      ]
      @ (if sweep = [] then [] else [ ("jobs_sweep", Json.List sweep) ])
      @ (match prescreen with
        | None -> []
        | Some section -> [ ("prescreen", section) ])
      @
      match solver with
      | None -> []
      | Some section -> [ ("solver", section) ])
  in
  Yield_obs.Sink.write_file ~path (Json.to_string json ^ "\n");
  Printf.printf "wrote %s\n%!" path;
  json

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one per primitive cost of Table 5's
   time-accounting story. *)

let time_benchmarks ctx =
  let open Bechamel in
  let design =
    match Flow.design_for_spec ctx.Experiments.flow ctx.Experiments.spec with
    | Ok plan -> plan.Yield_target.proposal.Macromodel.design
    | Error _ -> (Perf_model.points ctx.Experiments.flow.Flow.perf_model).(0)
  in
  let params = Ota.params_of_array design.Perf_model.params in
  let model = ctx.Experiments.flow.Flow.macromodel in
  let variation = ctx.Experiments.config.Config.variation in
  let mc_rng = Rng.create 5 in
  let mat =
    Mat.init 12 12 (fun i j -> if i = j then 25. else sin (float_of_int ((7 * i) + j)))
  in
  let vec = Array.init 12 float_of_int in
  let tests =
    [
      Test.make ~name:"transistor-evaluation (DC+AC)"
        (Staged.stage (fun () -> ignore (Tb.evaluate params)));
      Test.make ~name:"transistor MC sample (perturb+DC+AC)"
        (Staged.stage (fun () ->
             ignore (Tb.evaluate_sampled ~spec:variation ~rng:mc_rng params)));
      Test.make ~name:"behavioural-model query (tables only)"
        (Staged.stage (fun () ->
             ignore
               (Macromodel.propose model
                  ~gain_db:ctx.Experiments.spec.Yield_target.min_gain_db
                  ~pm_deg:ctx.Experiments.spec.Yield_target.min_pm_deg)));
      Test.make ~name:"behavioural filter evaluation"
        (Staged.stage (fun () ->
             ignore
               (Filter.evaluate
                  (Macromodel.amp_of_design design)
                  Filter.default_spec
                  { Filter.c1 = 30e-12; c2 = 15e-12; c3 = 0.3e-12 })));
      Test.make ~name:"lu-solve 12x12"
        (Staged.stage (fun () -> ignore (Lu.solve_system mat vec)));
    ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |]
  in
  print_string (Report.section "Timing of the primitives (Bechamel)");
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let result = Benchmark.run cfg instances elt in
          let estimate = Analyze.one ols Toolkit.Instance.monotonic_clock result in
          match Analyze.OLS.estimates estimate with
          | Some (t :: _) ->
              Printf.printf "%-42s %12.3f us/run\n" (Test.Elt.name elt)
                (t /. 1e3)
          | Some [] | None ->
              Printf.printf "%-42s (no estimate)\n" (Test.Elt.name elt))
        (Test.elements test))
    tests

(* ------------------------------------------------------------------ *)
(* Ablation benches for the design choices DESIGN.md calls out. *)

let ablation_interpolation ctx =
  (* cubic ("3E", the paper) vs linear ("1E") table models: reproduce the
     models from the same flow data and compare lookup error on the
     Table 3 spec *)
  print_string (Report.section "Ablation: table interpolation degree");
  let flow = ctx.Experiments.flow in
  let points = Perf_model.points flow.Flow.perf_model in
  (* raw (guard:false) lookups so the interpolation degree is what is being
     measured, not the family-snap guard *)
  let spec = ctx.Experiments.spec in
  List.iter
    (fun control ->
      let perf = Perf_model.create ~control points in
      match
        Perf_model.lookup ~guard:false perf
          ~gain_db:spec.Yield_target.min_gain_db
          ~pm_deg:spec.Yield_target.min_pm_deg
      with
      | exception _ -> Printf.printf "%-4s lookup failed\n" control
      | d when Array.exists (fun v -> v <= 0.) d.Perf_model.params ->
          (* spline overshoot can leave the physical parameter range
             entirely — itself a result worth reporting *)
          Printf.printf
            "%-4s interpolation produced non-physical parameters \
             (spline overshoot)\n"
            control
      | d -> begin
          let params = Ota.params_of_array d.Perf_model.params in
          match
            Tb.evaluate ~conditions:ctx.Experiments.config.Config.conditions
              params
          with
          | None -> Printf.printf "%-4s transistor failed\n" control
          | Some perf_t ->
              Printf.printf
                "%-4s claim gain %6.2f / pm %6.2f  realised %6.2f / %6.2f  \
                 (err %.2f%% / %.2f%%)\n"
                control d.Perf_model.gain_db d.Perf_model.pm_deg
                perf_t.Tb.gain_db perf_t.Tb.phase_margin_deg
                (100. *. Float.abs (perf_t.Tb.gain_db -. d.Perf_model.gain_db)
                /. perf_t.Tb.gain_db)
                (100.
                *. Float.abs
                     (perf_t.Tb.phase_margin_deg -. d.Perf_model.pm_deg)
                /. perf_t.Tb.phase_margin_deg)
        end)
    [ "3E"; "2E"; "1E"; "ME" ]

let ablation_wbga_vs_nsga2 ctx =
  (* front quality (2-D hypervolume) of the paper's WBGA vs NSGA-II at the
     same evaluation budget *)
  print_string (Report.section "Ablation: WBGA (paper) vs NSGA-II front quality");
  let conditions = ctx.Experiments.config.Config.conditions in
  let evaluate params =
    match Tb.evaluate ~conditions (Ota.params_of_array params) with
    | Some p when Tb.feasible conditions p -> Some (Tb.objectives p)
    | Some _ | None -> None
  in
  let budget_pop, budget_gen =
    match Config.scale_name ctx.Experiments.config with
    | "paper-scale" -> (60, 50)
    | _ -> (24, 15)
  in
  let ref_point = (30., 0.) in
  let wbga =
    Wbga.run
      ~config:{ Ga.default_config with Ga.population_size = budget_pop; generations = budget_gen }
      ~param_ranges:Ota.param_ranges
      ~objectives:
        [| { Wbga.name = "gain"; maximise = true }; { Wbga.name = "pm"; maximise = true } |]
      ~rng:(Rng.create 7) ~evaluate ()
  in
  let wbga_points = Array.map (fun (e : Wbga.entry) -> e.Wbga.objectives) wbga.Wbga.archive in
  let nsga =
    Nsga2.run
      ~config:
        { Nsga2.default_config with Nsga2.population_size = budget_pop; generations = budget_gen }
      ~param_ranges:Ota.param_ranges ~maximise:[| true; true |]
      ~rng:(Rng.create 7) ~evaluate ()
  in
  let nsga_points = Array.map (fun (e : Nsga2.entry) -> e.Nsga2.objectives) nsga.Nsga2.archive in
  Printf.printf
    "budget %d x %d evaluations\n\
     WBGA:    archive %5d, front %4d, hypervolume %10.1f\n\
     NSGA-II: archive %5d, front %4d, hypervolume %10.1f\n"
    budget_pop budget_gen (Array.length wbga_points)
    (Array.length wbga.Wbga.front)
    (Pareto.hypervolume_2d ~ref_point wbga_points)
    (Array.length nsga_points)
    (Array.length nsga.Nsga2.front)
    (Pareto.hypervolume_2d ~ref_point nsga_points)

let ablation_variation_scaling ctx =
  (* how the Table 2 spreads scale with the process-variation magnitude *)
  print_string (Report.section "Ablation: variation-model scaling");
  let design =
    match Flow.design_for_spec ctx.Experiments.flow ctx.Experiments.spec with
    | Ok plan -> plan.Yield_target.proposal.Macromodel.design
    | Error _ -> (Perf_model.points ctx.Experiments.flow.Flow.perf_model).(0)
  in
  let params = Ota.params_of_array design.Perf_model.params in
  let conditions = ctx.Experiments.config.Config.conditions in
  let nominal = Tb.evaluate ~conditions params in
  match nominal with
  | None -> print_endline "nominal evaluation failed"
  | Some nom ->
      let samples =
        match Config.scale_name ctx.Experiments.config with
        | "paper-scale" -> 200
        | _ -> 40
      in
      List.iter
        (fun k ->
          let spec = Variation.scale_spec k Variation.default_spec in
          let rng = Rng.create 13 in
          let results =
            Yield_process.Montecarlo.run ~samples ~rng (fun r ->
                Tb.evaluate_sampled ~conditions ~spec ~rng:r params)
          in
          let gains = Array.map (fun r -> r.Tb.gain_db) results in
          let pms = Array.map (fun r -> r.Tb.phase_margin_deg) results in
          Printf.printf "sigma x%-4.2g  dGain %5.2f %%   dPM %5.2f %%\n" k
            (Yield_process.Montecarlo.spread_pct gains ~nominal:nom.Tb.gain_db)
            (Yield_process.Montecarlo.spread_pct pms
               ~nominal:nom.Tb.phase_margin_deg))
        [ 0.5; 1.0; 2.0 ]

(* Extended characterisation of the chosen design: the "higher order
   effects" the paper notes could be incorporated — time-domain, rejection
   and noise figures from the same substrate. *)
let extended_characterisation ctx =
  print_string
    (Report.section "Extended characterisation of the Table 3 design");
  match Flow.design_for_spec ctx.Experiments.flow ctx.Experiments.spec with
  | Error e -> print_endline ("no design: " ^ e)
  | Ok plan ->
      let design = plan.Yield_target.proposal.Macromodel.design in
      let params = Ota.params_of_array design.Perf_model.params in
      (match Tb.step_perf params with
      | Some s ->
          Printf.printf
            "step response: slew %.2f V/us, 1%% settling %s, overshoot %.1f %%\n"
            s.Tb.slew_v_per_us
            (match s.Tb.settling_1pct_s with
            | Some t -> Printf.sprintf "%ss" (Report.si t)
            | None -> "not reached")
            s.Tb.overshoot_pct
      | None -> print_endline "step response failed");
      (match Tb.cmrr_db params with
      | Some v -> Printf.printf "CMRR %.1f dB\n" v
      | None -> print_endline "CMRR failed");
      (match Tb.psrr_db params with
      | Some v -> Printf.printf "PSRR %.1f dB\n" v
      | None -> print_endline "PSRR failed");
      (match Tb.input_referred_noise params with
      | Some (_, rms) ->
          Printf.printf "input-referred noise, f_lo to f_u: %.1f uVrms\n"
            (rms *. 1e6)
      | None -> print_endline "noise analysis failed");
      (* which process component drives the gain spread *)
      let spec = ctx.Experiments.config.Config.variation in
      let eval draw =
        Option.map
          (fun p -> p.Tb.gain_db)
          (Tb.evaluate_with_draw
             ~conditions:ctx.Experiments.config.Config.conditions ~spec ~draw
             params)
      in
      (match Yield_process.Sensitivity.analyse ~spec ~eval with
      | Error e -> print_endline ("sensitivity failed: " ^ e)
      | Ok results ->
          print_endline "gain variance decomposition (global components):";
          List.iter
            (fun (r : Yield_process.Sensitivity.result) ->
              Printf.printf "  %-7s %5.1f %%  (%+.4f dB/sigma)\n"
                (Yield_process.Sensitivity.to_string r.Yield_process.Sensitivity.component)
                (100. *. r.Yield_process.Sensitivity.variance_share)
                r.Yield_process.Sensitivity.per_sigma)
            results)

(* LHS vs plain Monte Carlo: spread of the dGain estimate across repeated
   small runs. *)
let ablation_lhs ctx =
  print_string (Report.section "Ablation: Latin hypercube vs plain Monte Carlo");
  let design =
    match Flow.design_for_spec ctx.Experiments.flow ctx.Experiments.spec with
    | Ok plan -> plan.Yield_target.proposal.Macromodel.design
    | Error _ -> (Perf_model.points ctx.Experiments.flow.Flow.perf_model).(0)
  in
  let params = Ota.params_of_array design.Perf_model.params in
  let conditions = ctx.Experiments.config.Config.conditions in
  let spec = ctx.Experiments.config.Config.variation in
  match Tb.evaluate ~conditions params with
  | None -> print_endline "nominal evaluation failed"
  | Some nominal ->
      let n = 24 in
      let repeats = match Config.scale_name ctx.Experiments.config with
        | "paper-scale" -> 12
        | _ -> 5
      in
      let estimate_mc seed =
        let rng = Rng.create seed in
        let rs =
          Yield_process.Montecarlo.run ~samples:n ~rng (fun r ->
              Tb.evaluate_sampled ~conditions ~spec ~rng:r params)
        in
        let gains = Array.map (fun r -> r.Tb.gain_db) rs in
        Yield_process.Montecarlo.spread_pct gains ~nominal:nominal.Tb.gain_db
      in
      let estimate_lhs seed =
        let rng = Rng.create seed in
        let normals =
          Yield_stats.Lhs.sample_normal rng ~n ~dims:Variation.global_dims
        in
        let gains =
          Array.to_list normals
          |> List.filter_map (fun z ->
                 let draw = Variation.global_draw_of_normals spec z in
                 let circuit, _ = Tb.build ~conditions params in
                 let perturbed =
                   Variation.perturb_circuit_with_draw spec draw
                     (Rng.split rng) circuit
                 in
                 match Tb.bode_of_circuit ~conditions perturbed with
                 | None -> None
                 | Some b ->
                     Option.map
                       (fun p -> p.Tb.gain_db)
                       (Tb.perf_of_bode conditions b))
          |> Array.of_list
        in
        Yield_process.Montecarlo.spread_pct gains ~nominal:nominal.Tb.gain_db
      in
      let spread f =
        let xs = Array.init repeats (fun i -> f (1000 + i)) in
        Yield_stats.Summary.stddev (Yield_stats.Summary.of_array xs)
      in
      let mc = spread estimate_mc and lhs = spread estimate_lhs in
      Printf.printf
        "sd of the dGain estimate over %d repeated %d-sample runs:\n\
         plain MC %.4f %%   LHS (stratified globals) %.4f %%\n"
        repeats n mc lhs

(* Corner analysis as a cheap alternative to the Monte Carlo variation
   model: 5 deterministic corner evaluations vs 200 statistical samples. *)
let ablation_corners_vs_mc ctx =
  print_string (Report.section "Ablation: corner envelope vs Monte Carlo spread");
  let design =
    match Flow.design_for_spec ctx.Experiments.flow ctx.Experiments.spec with
    | Ok plan -> plan.Yield_target.proposal.Macromodel.design
    | Error _ -> (Perf_model.points ctx.Experiments.flow.Flow.perf_model).(0)
  in
  let params = Ota.params_of_array design.Perf_model.params in
  let conditions = ctx.Experiments.config.Config.conditions in
  let spec = ctx.Experiments.config.Config.variation in
  match Tb.evaluate ~conditions params with
  | None -> print_endline "nominal evaluation failed"
  | Some nominal -> begin
      (* corner envelope: worst deviation across the 3-sigma corners *)
      let corner_dev =
        List.filter_map
          (fun corner ->
            let tech = Yield_process.Corner.apply spec corner conditions.Tb.tech in
            let conditions = { conditions with Tb.tech } in
            Option.map
              (fun (p : Tb.perf) ->
                Float.abs (p.Tb.gain_db -. nominal.Tb.gain_db))
              (Tb.evaluate ~conditions params))
          Yield_process.Corner.all
        |> List.fold_left Float.max 0.
      in
      let corner_pct = 100. *. corner_dev /. nominal.Tb.gain_db in
      (* Monte Carlo 3-sigma spread *)
      let samples =
        match Config.scale_name ctx.Experiments.config with
        | "paper-scale" -> 200
        | _ -> 40
      in
      let rng = Rng.create 37 in
      let rs =
        Yield_process.Montecarlo.run ~samples ~rng (fun r ->
            Tb.evaluate_sampled ~conditions ~spec ~rng:r params)
      in
      let gains = Array.map (fun r -> r.Tb.gain_db) rs in
      let mc_pct =
        Yield_process.Montecarlo.spread_pct gains ~nominal:nominal.Tb.gain_db
      in
      Printf.printf
        "dGain envelope: corners (5 simulations) %.2f %%, Monte Carlo (%d \
         simulations) %.2f %%\n"
        corner_pct samples mc_pct;
      print_endline
        "corners only shift the corner-defined parameters (vth, kp) and see\n\
         neither channel-length-modulation spread nor mismatch — and this\n\
         OTA's gain variance is lambda-dominated (see the sensitivity\n\
         decomposition above) — which is why the paper's variation model is\n\
         statistical rather than corner-based."
    end

(* Model accuracy across the whole front: sweep the specification through
   the model's range, design by table lookup, verify each design with a
   transistor-level Monte Carlo run.  This generalises Table 4 from one
   point to a curve. *)
let model_accuracy_sweep ctx =
  print_string
    (Report.section "Model accuracy across the specification range");
  let flow = ctx.Experiments.flow in
  let glo, ghi = Perf_model.gain_range flow.Flow.perf_model in
  let vlo, vhi = Var_model.gain_domain flow.Flow.var_model in
  let lo = Float.max glo vlo and hi = Float.min ghi vhi in
  let samples =
    match Config.scale_name ctx.Experiments.config with
    | "paper-scale" -> 100
    | _ -> 24
  in
  let fractions = [ 0.15; 0.35; 0.55; 0.75; 0.9 ] in
  Printf.printf
    "spec sweep over gain %.1f..%.1f dB; %d-sample MC verification each\n" lo hi
    samples;
  List.iter
    (fun f ->
      let gain = lo +. (f *. (hi -. lo)) in
      (* the PM requirement follows the front at the inflated gain (first
         design above it), backed off 3 deg so the inflated request stays
         feasible *)
      let points = Perf_model.points flow.Flow.perf_model in
      let dgain =
        try Var_model.dgain_at flow.Flow.var_model ~gain_db:gain with _ -> 1.
      in
      let inflated = gain *. (1. +. (dgain /. 100.)) in
      let above =
        Array.fold_left
          (fun best (p : Perf_model.point) ->
            if p.Perf_model.gain_db >= inflated then
              match best with
              | Some (b : Perf_model.point) when b.Perf_model.gain_db <= p.Perf_model.gain_db -> best
              | _ -> Some p
            else best)
          None points
      in
      let reference =
        match above with Some p -> p | None -> points.(Array.length points - 1)
      in
      let spec =
        {
          Yield_target.min_gain_db = gain;
          min_pm_deg = reference.Perf_model.pm_deg -. 3.;
        }
      in
      match Flow.design_for_spec flow spec with
      | Error e -> Printf.printf "  gain>%.1f: %s\n" gain e
      | Ok plan -> begin
          let design = plan.Yield_target.proposal.Macromodel.design in
          let params = Ota.params_of_array design.Perf_model.params in
          match Flow.verify_design flow ~samples ~spec params with
          | Error e -> Printf.printf "  gain>%.1f: %s\n" gain e
          | Ok v ->
              let claim_err =
                100.
                *. Float.abs (v.Flow.nominal.Tb.gain_db -. design.Perf_model.gain_db)
                /. v.Flow.nominal.Tb.gain_db
              in
              Printf.printf
                "  spec (%.1f dB, %.1f deg): claim %.2f dB, realised %.2f dB \
                 (err %.2f %%), MC yield %.1f %%\n"
                spec.Yield_target.min_gain_db spec.Yield_target.min_pm_deg
                design.Perf_model.gain_db v.Flow.nominal.Tb.gain_db claim_err
                (100. *. v.Flow.yield.Yield_process.Montecarlo.yield)
        end)
    fractions

(* Three-objective variant: add power to the paper's two objectives and
   extract the 3-D non-dominated set (the general-arity Pareto path). *)
let ablation_three_objectives ctx =
  print_string (Report.section "Ablation: adding power as a third objective");
  let conditions = ctx.Experiments.config.Config.conditions in
  let evaluate3 params_arr =
    let params = Ota.params_of_array params_arr in
    let circuit, _ = Tb.build ~conditions params in
    match Yield_spice.Dcop.solve circuit with
    | Error _ -> None
    | Ok op -> begin
        match Tb.bode_of_circuit ~conditions circuit with
        | None -> None
        | Some b -> begin
            match Tb.perf_of_bode conditions b with
            | Some p when Tb.feasible conditions p ->
                let supply_a =
                  Float.abs (Yield_spice.Dcop.branch_current op "VDD")
                in
                let power_mw =
                  conditions.Tb.tech.Yield_process.Tech.vdd *. supply_a *. 1e3
                in
                Some [| p.Tb.gain_db; p.Tb.phase_margin_deg; -.power_mw |]
            | Some _ | None -> None
          end
      end
  in
  let pop, gens =
    match Config.scale_name ctx.Experiments.config with
    | "paper-scale" -> (40, 30)
    | _ -> (16, 10)
  in
  let result =
    Wbga.run
      ~config:{ Ga.default_config with Ga.population_size = pop; generations = gens }
      ~param_ranges:Ota.param_ranges
      ~objectives:
        [|
          { Wbga.name = "gain"; maximise = true };
          { Wbga.name = "pm"; maximise = true };
          { Wbga.name = "neg_power"; maximise = true };
        |]
      ~rng:(Rng.create 29) ~evaluate:evaluate3 ()
  in
  Printf.printf "%d evaluations, 3-D front %d points\n" result.Wbga.evaluations
    (Array.length result.Wbga.front);
  let n = Array.length result.Wbga.front in
  Array.iteri
    (fun i (e : Wbga.entry) ->
      if i mod (Stdlib.max 1 (n / 8)) = 0 || i = n - 1 then
        Printf.printf "  gain %6.2f dB  pm %6.2f deg  power %6.3f mW\n"
          e.Wbga.objectives.(0) e.Wbga.objectives.(1)
          (-.e.Wbga.objectives.(2)))
    result.Wbga.front

(* The flow is not OTA-specific: run the same WBGA -> Pareto -> Monte Carlo
   pipeline on the two-stage Miller OTA. *)
let generalisation_miller ctx =
  print_string
    (Report.section "Generalisation: the flow on a two-stage Miller OTA");
  let module Miller = Yield_circuits.Miller in
  let module Mtb = Yield_circuits.Miller_testbench in
  let module Gtb = Yield_circuits.Testbench in
  (* the Miller stage's unity gain is gm1/(2 pi Cc) ~ 7 MHz, so the
     bandwidth floor moves accordingly *)
  let conditions = { Gtb.default_conditions with Gtb.min_unity_gain_hz = 5e6 } in
  let evaluate params =
    match Mtb.evaluate ~conditions (Miller.params_of_array params) with
    | Some p when Gtb.feasible conditions p -> Some (Gtb.objectives p)
    | Some _ | None -> None
  in
  let pop, gens =
    match Config.scale_name ctx.Experiments.config with
    | "paper-scale" -> (60, 40)
    | _ -> (24, 12)
  in
  let result =
    Wbga.run
      ~config:{ Ga.default_config with Ga.population_size = pop; generations = gens }
      ~param_ranges:Miller.param_ranges
      ~objectives:
        [| { Wbga.name = "gain"; maximise = true }; { Wbga.name = "pm"; maximise = true } |]
      ~rng:(Rng.create 17) ~evaluate ()
  in
  Printf.printf "%d evaluations, %d infeasible, front %d\n"
    result.Wbga.evaluations result.Wbga.failures (Array.length result.Wbga.front);
  let n = Array.length result.Wbga.front in
  Array.iteri
    (fun i (e : Wbga.entry) ->
      if i mod (Stdlib.max 1 (n / 10)) = 0 || i = n - 1 then
        Printf.printf "  gain %6.2f dB   pm %6.2f deg\n" e.Wbga.objectives.(0)
          e.Wbga.objectives.(1))
    result.Wbga.front;
  (* variation spreads on a handful of front designs *)
  if n > 0 then begin
    let samples =
      match Config.scale_name ctx.Experiments.config with
      | "paper-scale" -> 60
      | _ -> 20
    in
    let rng = Rng.create 23 in
    let picks = [ 0; n / 2; n - 1 ] |> List.sort_uniq compare in
    List.iter
      (fun i ->
        let e = result.Wbga.front.(i) in
        let params = Miller.params_of_array e.Wbga.params in
        let rs =
          Yield_process.Montecarlo.run ~samples ~rng (fun r ->
              Mtb.evaluate_sampled ~conditions
                ~spec:ctx.Experiments.config.Config.variation ~rng:r params)
        in
        if Array.length rs > 4 then begin
          let gains = Array.map (fun r -> r.Gtb.gain_db) rs in
          let pms = Array.map (fun r -> r.Gtb.phase_margin_deg) rs in
          Printf.printf
            "  front #%d: gain %.2f dB (dGain %.2f %%), pm %.2f deg (dPM %.2f %%)\n"
            (i + 1) e.Wbga.objectives.(0)
            (Yield_process.Montecarlo.spread_pct gains
               ~nominal:e.Wbga.objectives.(0))
            e.Wbga.objectives.(1)
            (Yield_process.Montecarlo.spread_pct pms
               ~nominal:e.Wbga.objectives.(1))
        end)
      picks
  end

(* ------------------------------------------------------------------ *)
(* The perf-regression gate (README.md §Telemetry documents the baseline
   refresh procedure):

     bench --write-baseline PATH   distil this run into a baseline file
     bench --check BASELINE        diff this run against a baseline;
                                   exit 1 on any finding
     bench --bench BENCH.json ...  gate an existing BENCH_flow.json instead
                                   of running the flow (offline: the same
                                   run can be diffed against several
                                   baselines without timing noise between
                                   them)

   Running the flow for the gate is flow-only (the ablation/experiment
   suite is not part of the gated surface). *)

module Perf_gate = Yield_core.Perf_gate

type cli = {
  check : string option;
  write_baseline : string option;
  bench_file : string option;
}

let usage () =
  prerr_endline
    "usage: bench [--bench BENCH.json] [--check BASELINE] [--write-baseline \
     PATH]";
  exit 2

let parse_cli () =
  let rec go acc = function
    | [] -> acc
    | "--check" :: path :: rest -> go { acc with check = Some path } rest
    | "--write-baseline" :: path :: rest ->
        go { acc with write_baseline = Some path } rest
    | "--bench" :: path :: rest -> go { acc with bench_file = Some path } rest
    | ("--check" | "--write-baseline" | "--bench") :: [] -> usage ()
    | arg :: _ ->
        Printf.eprintf "bench: unknown argument %s\n" arg;
        usage ()
  in
  let cli =
    go
      { check = None; write_baseline = None; bench_file = None }
      (List.tl (Array.to_list Sys.argv))
  in
  if cli.bench_file <> None && cli.check = None && cli.write_baseline = None
  then usage ();
  cli

let run_gate cli bench_json =
  Option.iter
    (fun path ->
      Yield_obs.Sink.write_file ~path
        (Json.to_string (Perf_gate.baseline_of_bench bench_json) ^ "\n");
      Printf.printf "wrote baseline %s\n%!" path)
    cli.write_baseline;
  Option.iter
    (fun path ->
      let baseline =
        Json.parse (In_channel.with_open_text path In_channel.input_all)
      in
      match Perf_gate.check ~baseline ~bench:bench_json with
      | [] -> Printf.printf "perf gate: OK against %s\n%!" path
      | findings ->
          Printf.eprintf "perf gate: %d finding(s) against %s\n"
            (List.length findings) path;
          List.iter
            (fun f -> Printf.eprintf "  %s\n" (Perf_gate.to_string f))
            findings;
          Printf.eprintf "%!";
          exit 1)
    cli.check

let () =
  let cli = parse_cli () in
  (match cli.bench_file with
  | None -> ()
  | Some path ->
      (* offline gate: no flow run, just diff the recorded document *)
      let bench_json =
        Json.parse (In_channel.with_open_text path In_channel.input_all)
      in
      run_gate cli bench_json;
      Printf.printf "gated %s\n%!" path;
      exit 0);
  let config = Config.of_env () in
  Printf.printf
    "yieldlab benchmark harness — %s (set YIELDLAB_FAST=1 for a smoke run)\n%!"
    (Config.scale_name config);
  let sweep = jobs_sweep config in
  let ctx = Experiments.make_context ~log:(Printf.printf "%s\n%!") config in
  let prescreen = prescreen_ab ctx in
  let solver = solver_ab ctx in
  let bench_json =
    write_bench_json ~sweep ~prescreen ~solver ctx ~path:"BENCH_flow.json"
  in
  run_gate cli bench_json;
  if cli.check <> None || cli.write_baseline <> None then begin
    print_string (Report.section "done (perf gate)");
    exit 0
  end;
  (* CI uses this to produce the BENCH_flow.json artifact without paying for
     the full experiment/ablation suite *)
  (match Sys.getenv_opt "YIELDLAB_BENCH_FLOW_ONLY" with
  | Some v when v <> "" && v <> "0" ->
      print_string (Report.section "done (flow only)");
      exit 0
  | Some _ | None -> ());
  List.iter
    (fun (name, f) ->
      Printf.printf "%!";
      ignore name;
      print_string (f ctx);
      Printf.printf "%!")
    Experiments.all;
  extended_characterisation ctx;
  time_benchmarks ctx;
  ablation_interpolation ctx;
  ablation_wbga_vs_nsga2 ctx;
  ablation_variation_scaling ctx;
  ablation_lhs ctx;
  ablation_corners_vs_mc ctx;
  model_accuracy_sweep ctx;
  ablation_three_objectives ctx;
  generalisation_miller ctx;
  print_string (Report.section "done")
