module Fault = Yield_resilience.Fault
module Atomic_io = Yield_resilience.Atomic_io

type table = { columns : string array; rows : float array array }

type read_error = { path : string option; line : int option; message : string }

let read_error_to_string e =
  let where =
    match (e.path, e.line) with
    | Some p, Some l -> Printf.sprintf "%s:%d: " p l
    | Some p, None -> p ^ ": "
    | None, Some l -> Printf.sprintf "line %d: " l
    | None, None -> ""
  in
  where ^ e.message

exception Parse of read_error

let create ~columns ~rows =
  let k = Array.length columns in
  Array.iter
    (fun row ->
      if Array.length row <> k then invalid_arg "Tbl_io.create: ragged rows")
    rows;
  { columns; rows }

let column_index t name =
  let rec find i =
    if i >= Array.length t.columns then raise Not_found
    else if t.columns.(i) = name then i
    else find (i + 1)
  in
  find 0

let column t name =
  let i = column_index t name in
  Array.map (fun row -> row.(i)) t.rows

let column_opt t name =
  match column t name with v -> Some v | exception Not_found -> None

let n_rows t = Array.length t.rows

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# columns:";
  Array.iter (fun c -> Buffer.add_string buf (" " ^ c)) t.columns;
  Buffer.add_char buf '\n';
  Array.iter
    (fun row ->
      Array.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ' ';
          Buffer.add_string buf (Printf.sprintf "%.12g" v))
        row;
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf

let of_string_result ?path text =
  let err ?line fmt =
    Printf.ksprintf (fun message -> raise (Parse { path; line; message })) fmt
  in
  let parse_all () =
    let lines = String.split_on_char '\n' text in
    let columns = ref None in
    let rows = ref [] in
    List.iteri
      (fun lineno line ->
        let trimmed = String.trim line in
        if trimmed = "" then ()
        else if String.length trimmed > 0 && trimmed.[0] = '#' then begin
          let prefix = "# columns:" in
          if
            String.length trimmed >= String.length prefix
            && String.sub trimmed 0 (String.length prefix) = prefix
          then begin
            let names =
              String.sub trimmed (String.length prefix)
                (String.length trimmed - String.length prefix)
              |> String.split_on_char ' '
              |> List.filter (fun s -> s <> "")
            in
            columns := Some (Array.of_list names)
          end
        end
        else begin
          let fields =
            String.split_on_char ' ' trimmed
            |> List.concat_map (String.split_on_char '\t')
            |> List.filter (fun s -> s <> "")
          in
          let parse s =
            match float_of_string_opt s with
            | Some v -> v
            | None -> err ~line:(lineno + 1) "bad number %S" s
          in
          rows := (Array.of_list (List.map parse fields), lineno + 1) :: !rows
        end)
      lines;
    let rows = Array.of_list (List.rev !rows) in
    let width = if Array.length rows = 0 then 0 else Array.length (fst rows.(0)) in
    Array.iter
      (fun (row, line) ->
        if Array.length row <> width then
          err ~line "ragged row: %d fields where the first data row has %d"
            (Array.length row) width)
      rows;
    let columns =
      match !columns with
      | Some c ->
          if Array.length rows > 0 && Array.length c <> width then
            err "header names %d columns but the data rows have %d"
              (Array.length c) width;
          c
      | None -> Array.init width (Printf.sprintf "c%d")
    in
    { columns; rows = Array.map fst rows }
  in
  match parse_all () with t -> Ok t | exception Parse e -> Error e

let of_string text =
  match of_string_result text with
  | Ok t -> t
  | Error e -> failwith ("Tbl_io.of_string: " ^ read_error_to_string e)

(* every [.tbl] lands atomically ([tbl.write] is the torn-write injection
   point: it crashes after a half-written temp, never a half-written table) *)
let fp_write = Fault.point "tbl.write"

let write ~path t =
  let contents = to_string t in
  if Fault.fire fp_write then begin
    let tmp = Atomic_io.temp_path path in
    let oc = open_out tmp in
    output_string oc (String.sub contents 0 (String.length contents / 2));
    close_out oc;
    raise (Fault.Injected ("tbl.write: " ^ path))
  end;
  Atomic_io.write_file ~path contents

let read_result ~path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let len = in_channel_length ic in
        really_input_string ic len)
  with
  | exception Sys_error msg -> Error { path = Some path; line = None; message = msg }
  | text -> of_string_result ~path text

let read ~path =
  match read_result ~path with
  | Ok t -> t
  | Error e -> failwith ("Tbl_io.read: " ^ read_error_to_string e)

let monotone_column ?path t name =
  match column t name with
  | exception Not_found ->
      Error
        {
          path;
          line = None;
          message = Printf.sprintf "axis column %S not present" name;
        }
  | xs ->
      let rec walk i =
        if i >= Array.length xs then Ok ()
        else if xs.(i) > xs.(i - 1) then walk (i + 1)
        else
          Error
            {
              path;
              line = None;
              message =
                Printf.sprintf
                  "axis column %S not strictly increasing at data row %d: %g \
                   after %g"
                  name (i + 1) xs.(i)
                  xs.(i - 1);
            }
      in
      if Array.length xs = 0 then Ok () else walk 1

let read_strict ~path ~axes =
  match read_result ~path with
  | Error _ as err -> err
  | Ok t ->
      let rec check = function
        | [] -> Ok t
        | axis :: rest -> begin
            match monotone_column ~path t axis with
            | Ok () -> check rest
            | Error _ as err -> err
          end
      in
      check axes

let sort_by t name =
  let i = column_index t name in
  let rows = Array.copy t.rows in
  Array.sort (fun a b -> Float.compare a.(i) b.(i)) rows;
  { t with rows }
