(** The [.tbl] data-file format written for (and read back from) the
    behavioural models: whitespace-separated numeric columns, [#] comments,
    and an optional [# columns: a b c] header naming them. *)

type table = { columns : string array; rows : float array array }
(** [rows] is row-major; every row has [Array.length columns] entries. *)

val create : columns:string array -> rows:float array array -> table
(** @raise Invalid_argument on ragged rows. *)

val column : table -> string -> float array
(** @raise Not_found for an unknown column name. *)

val column_opt : table -> string -> float array option

val n_rows : table -> int

val to_string : table -> string

type read_error = {
  path : string option;
  line : int option;  (** 1-based line of the offending input, when known *)
  message : string;
}

val read_error_to_string : read_error -> string
(** ["file.tbl:12: bad number \"x\""]-style rendering. *)

val of_string : string -> table
(** Columns default to [c0, c1, ...] when no header is present.
    @raise Failure on malformed numeric data or ragged rows. *)

val of_string_result : ?path:string -> string -> (table, read_error) result
(** Like {!of_string} but with a typed error carrying file/line context
    ([path] only labels the error messages). *)

val write : path:string -> table -> unit
(** Atomic (temp-then-rename): a crash mid-write never leaves a torn table.
    Consults the [tbl.write] fault-injection point
    ({!Yield_resilience.Fault}), which simulates exactly such a crash —
    half-written temporary, destination untouched — by raising
    {!Yield_resilience.Fault.Injected}. *)

val read : path:string -> table
(** @raise Failure on malformed or unreadable files, with file/line
    context in the message. *)

val read_result : path:string -> (table, read_error) result
(** Non-raising {!read}: unreadable files and parse failures come back as
    a typed {!read_error}. *)

val monotone_column :
  ?path:string -> table -> string -> (unit, read_error) result
(** Strict-monotonicity check of an axis column: [Error] (with the first
    offending row in the message) when the column is missing, has duplicate
    abscissae or decreases — exactly the defects the preflight linter's
    [T003] code reports, so the linter and the runtime can never disagree.
    [path] only labels the error. *)

val read_strict :
  path:string -> axes:string list -> (table, read_error) result
(** {!read_result} plus {!monotone_column} on each named axis — the loading
    path for tables whose columns feed spline knots (e.g.
    [perf_model.tbl]'s [gain] axis in [Flow.load_models]). *)

val sort_by : table -> string -> table
(** Rows sorted ascending on the named column. *)
