module type S = sig
  type params

  val param_ranges : Yield_ga.Genome.range array

  val param_names : string array

  val params_of_array : float array -> params

  val params_to_array : params -> float array

  val default_params : params

  val symmetric_pairs : (string * string) list

  val add :
    Yield_spice.Circuit.t -> prefix:string -> tech:Yield_process.Tech.t ->
    params:params -> inp:string -> inn:string -> out:string -> vdd:string ->
    vss:string -> unit
end
