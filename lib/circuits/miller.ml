module Circuit = Yield_spice.Circuit
module Genome = Yield_ga.Genome
module Tech = Yield_process.Tech

type params = {
  w1 : float;
  l1 : float;
  w2 : float;
  l2 : float;
  w3 : float;
  l3 : float;
  w4 : float;
  l4 : float;
}

let param_names = [| "w1"; "l1"; "w2"; "l2"; "w3"; "l3"; "w4"; "l4" |]

let param_ranges =
  Array.map
    (fun name ->
      if name.[0] = 'w' then Genome.range name ~lo:10e-6 ~hi:60e-6
      else Genome.range name ~lo:0.35e-6 ~hi:4e-6)
    param_names

let params_of_array = function
  | [| w1; l1; w2; l2; w3; l3; w4; l4 |] -> { w1; l1; w2; l2; w3; l3; w4; l4 }
  | _ -> invalid_arg "Miller.params_of_array: need 8 values"

let params_to_array p = [| p.w1; p.l1; p.w2; p.l2; p.w3; p.l3; p.w4; p.l4 |]

let default_params =
  {
    w1 = 20e-6;
    l1 = 1e-6;
    w2 = 60e-6;
    l2 = 0.5e-6;
    w3 = 30e-6;
    l3 = 1e-6;
    w4 = 30e-6;
    l4 = 1e-6;
  }

let compensation_cap = 4e-12

let nulling_resistor = 800.

let bias_current = 20e-6

let input_pair_w = 30e-6

let input_pair_l = 1e-6

let symmetric_pairs = [ ("M1", "M2"); ("M3", "M4"); ("M5", "M8") ]

let add circuit ~prefix ~tech ~params:p ~inp ~inn ~out ~vdd ~vss =
  let nm = tech.Tech.nmos and pm = tech.Tech.pmos in
  let node suffix = prefix ^ suffix in
  let n1 = node "n1"
  and n2 = node "n2"
  and nz = node "nz"
  and nbias = node "nbias"
  and ntail = node "ntail" in
  let mos name ~d ~g ~s ~b ~model ~w ~l =
    Circuit.add_mosfet circuit ~name:(prefix ^ name) ~d ~g ~s ~b ~model ~w ~l
  in
  (* input pair; the mirror diode sits on M1's side so M1's gate inverts
     through two stages *)
  mos "M1" ~d:n1 ~g:inp ~s:ntail ~b:vss ~model:nm ~w:input_pair_w
    ~l:input_pair_l;
  mos "M2" ~d:n2 ~g:inn ~s:ntail ~b:vss ~model:nm ~w:input_pair_w
    ~l:input_pair_l;
  mos "M3" ~d:n1 ~g:n1 ~s:vdd ~b:vdd ~model:pm ~w:p.w1 ~l:p.l1;
  mos "M4" ~d:n2 ~g:n1 ~s:vdd ~b:vdd ~model:pm ~w:p.w1 ~l:p.l1;
  (* second stage: PMOS common source with NMOS sink *)
  mos "M6" ~d:out ~g:n2 ~s:vdd ~b:vdd ~model:pm ~w:p.w2 ~l:p.l2;
  mos "M7" ~d:out ~g:nbias ~s:vss ~b:vss ~model:nm ~w:p.w3 ~l:p.l3;
  (* tail / bias mirror *)
  mos "M5" ~d:ntail ~g:nbias ~s:vss ~b:vss ~model:nm ~w:p.w4 ~l:p.l4;
  mos "M8" ~d:nbias ~g:nbias ~s:vss ~b:vss ~model:nm ~w:p.w4 ~l:p.l4;
  Circuit.add_isource circuit ~name:(prefix ^ "IB") vdd nbias bias_current;
  (* Miller compensation with nulling resistor: n2 -- Rz -- nz -- Cc -- out *)
  Circuit.add_resistor circuit ~name:(prefix ^ "RZ") n2 nz nulling_resistor;
  Circuit.add_capacitor circuit ~name:(prefix ^ "CC") nz out compensation_cap;
  let vdd_guess = tech.Tech.vdd in
  Circuit.nodeset circuit (Circuit.node circuit n1) (vdd_guess -. 0.9);
  Circuit.nodeset circuit (Circuit.node circuit n2) (vdd_guess -. 0.9);
  Circuit.nodeset circuit (Circuit.node circuit nz) (vdd_guess -. 0.9);
  Circuit.nodeset circuit (Circuit.node circuit nbias) 0.75;
  Circuit.nodeset circuit (Circuit.node circuit ntail) 0.6
