module Circuit = Yield_spice.Circuit
module Mna = Yield_spice.Mna
module Linsys = Yield_numeric.Linsys
module Dcop = Yield_spice.Dcop
module Ac = Yield_spice.Ac
module Measure = Yield_spice.Measure
module Noise = Yield_spice.Noise
module Tran = Yield_spice.Tran
module Measure_tran = Yield_spice.Measure_tran
module Device = Yield_spice.Device
module Tech = Yield_process.Tech
module Variation = Yield_process.Variation

type conditions = {
  tech : Tech.t;
  vcm : float;
  load_cap : float;
  f_lo : float;
  f_hi : float;
  points_per_decade : int;
  min_unity_gain_hz : float;
}

let default_conditions =
  {
    tech = Tech.c35;
    vcm = 1.65;
    load_cap = 3e-12;
    f_lo = 10.;
    f_hi = 1e9;
    points_per_decade = 10;
    min_unity_gain_hz = 10e6;
  }

type perf = {
  gain_db : float;
  phase_margin_deg : float;
  unity_gain_hz : float;
  f3db_hz : float;
  rout_est : float;
}

type step_perf = {
  slew_v_per_us : float;
  settling_1pct_s : float option;
  overshoot_pct : float;
  final_error_v : float;
}

let perf_of_bode conditions b =
  let gain_db = Measure.dc_gain_db b in
  match (Measure.unity_gain_freq b, Measure.phase_margin_deg b) with
  | Some fu, Some pm when Float.is_finite gain_db ->
      let f3db = Option.value (Measure.f3db b) ~default:nan in
      let gain_lin = 10. ** (gain_db /. 20.) in
      let rout_est = gain_lin /. (2. *. Float.pi *. fu *. conditions.load_cap) in
      Some
        {
          gain_db;
          phase_margin_deg = pm;
          unity_gain_hz = fu;
          f3db_hz = f3db;
          rout_est;
        }
  | _ -> None

let feasible conditions p =
  p.phase_margin_deg > 0. && p.unity_gain_hz >= conditions.min_unity_gain_hz

let objectives p = [| p.gain_db; p.phase_margin_deg |]

let freqs_of conditions =
  Ac.default_freqs ~per_decade:conditions.points_per_decade
    ~f_lo:conditions.f_lo ~f_hi:conditions.f_hi ()

module Make (A : Amplifier.S) = struct
  (* Variant testbenches.  [stimulus] selects where the unit AC source is
     applied; the DC arrangement never changes, so all variants share the
     same operating point by construction. *)
  type stimulus = Differential | Common_mode | Supply

  let build_variant conditions params stimulus =
    let c = Circuit.create () in
    let tech = conditions.tech in
    let vdd_ac =
      match stimulus with Supply -> 1. | Differential | Common_mode -> 0.
    in
    let vin_ac =
      match stimulus with Supply -> 0. | Differential | Common_mode -> 1.
    in
    Circuit.add_vsource c ~name:"VDD" ~ac:vdd_ac "vdd" "0" tech.Tech.vdd;
    Circuit.add_vsource c ~name:"VIN" ~ac:vin_ac "vp" "0" conditions.vcm;
    (* DC unity feedback through RFB; CBIG AC-grounds the inverting input —
       except in the common-mode variant, where its far plate is driven so
       both inputs move together *)
    Circuit.add_resistor c ~name:"RFB" "out" "vm" 1e9;
    let cbig_bottom =
      match stimulus with Common_mode -> "vp" | Differential | Supply -> "0"
    in
    Circuit.add_capacitor c ~name:"CBIG" "vm" cbig_bottom 1.;
    Circuit.add_capacitor c ~name:"CL" "out" "0" conditions.load_cap;
    A.add c ~prefix:"x1." ~tech ~params ~inp:"vm" ~inn:"vp" ~out:"out"
      ~vdd:"vdd" ~vss:"0";
    Circuit.nodeset c (Circuit.node c "out") conditions.vcm;
    Circuit.nodeset c (Circuit.node c "vm") conditions.vcm;
    Circuit.nodeset c (Circuit.node c "vdd") tech.Tech.vdd;
    c

  let build ?(conditions = default_conditions) params =
    (build_variant conditions params Differential, "out")

  let bode_of_circuit ?(conditions = default_conditions) circuit =
    match Dcop.solve_with_retry circuit with
    | Error _ -> None
    | Ok op ->
        Some (Ac.transfer_by_name circuit op ~out:"out" ~freqs:(freqs_of conditions))

  let bode ?(conditions = default_conditions) params =
    let circuit, _ = build ~conditions params in
    bode_of_circuit ~conditions circuit

  let evaluate ?(conditions = default_conditions) params =
    match bode ~conditions params with
    | None -> None
    | Some b -> perf_of_bode conditions b

  let evaluate_sampled ?(conditions = default_conditions) ~spec ~rng params =
    let circuit, _ = build ~conditions params in
    let perturbed = Variation.perturb_circuit spec rng circuit in
    match bode_of_circuit ~conditions perturbed with
    | None -> None
    | Some b -> perf_of_bode conditions b

  (* ---------- batch-first sessions ----------

     All open-loop testbenches of one amplifier share a single topology
     (same nodes, same device order) whatever the params or conditions, so
     the structural pattern + symbolic factorisation is compiled once per
     backend and cached for the lifetime of the functor instantiation.
     Compiled sessions are immutable, so sharing across domains is safe;
     the cache itself is a CAS list (a lost race costs one extra compile). *)

  type session = {
    s_conditions : conditions;
    s_circuit : Circuit.t;
    s_sys : Mna.sys;
  }

  let sys_cache : (Linsys.backend * Mna.sys) list Atomic.t = Atomic.make []

  let cached_sys backend circuit =
    match List.assoc_opt backend (Atomic.get sys_cache) with
    | Some s -> s
    | None ->
        let s = Mna.sys ~backend circuit in
        let rec publish () =
          let cur = Atomic.get sys_cache in
          match List.assoc_opt backend cur with
          | Some existing -> existing
          | None ->
              if Atomic.compare_and_set sys_cache cur ((backend, s) :: cur)
              then s
              else publish ()
        in
        publish ()

  let session ?(conditions = default_conditions) ?(solver = Linsys.Dense)
      params =
    let circuit, _ = build ~conditions params in
    { s_conditions = conditions; s_circuit = circuit; s_sys = cached_sys solver circuit }

  let session_circuit s = s.s_circuit

  let session_sys s = s.s_sys

  let session_solver_name s = Mna.sys_solver_name s.s_sys

  let evaluate_in_session s ~spec ~rng =
    let models = Variation.overrides spec rng s.s_circuit in
    match Dcop.solve_with_retry ~sys:s.s_sys ~models s.s_circuit with
    | Error _ -> None
    | Ok op ->
        let b =
          Ac.transfer_by_name ~sys:s.s_sys s.s_circuit op ~out:"out"
            ~freqs:(freqs_of s.s_conditions)
        in
        perf_of_bode s.s_conditions b

  let evaluate_with_draw ?(conditions = default_conditions) ~spec ~draw params =
    let circuit, _ = build ~conditions params in
    let no_mismatch =
      { spec with Variation.mismatch = Variation.zero_spec.Variation.mismatch }
    in
    (* the rng is only consulted for mismatch, which is zeroed *)
    let rng = Yield_stats.Rng.create 0 in
    let perturbed =
      Variation.perturb_circuit_with_draw no_mismatch draw rng circuit
    in
    match bode_of_circuit ~conditions perturbed with
    | None -> None
    | Some b -> perf_of_bode conditions b

  let low_freq_gain_db conditions circuit =
    match Dcop.solve_with_retry circuit with
    | Error _ -> None
    | Ok op ->
        let freqs = [| conditions.f_lo |] in
        let b = Ac.transfer_by_name circuit op ~out:"out" ~freqs in
        Some (Measure.dc_gain_db b)

  let cmrr_db ?(conditions = default_conditions) params =
    let adm = low_freq_gain_db conditions (build_variant conditions params Differential) in
    let acm = low_freq_gain_db conditions (build_variant conditions params Common_mode) in
    match (adm, acm) with
    | Some adm, Some acm -> Some (adm -. acm)
    | _ -> None

  let psrr_db ?(conditions = default_conditions) params =
    let adm = low_freq_gain_db conditions (build_variant conditions params Differential) in
    let avdd = low_freq_gain_db conditions (build_variant conditions params Supply) in
    match (adm, avdd) with
    | Some adm, Some avdd -> Some (adm -. avdd)
    | _ -> None

  let input_referred_noise ?(conditions = default_conditions) ?flicker params =
    let circuit, _ = build ~conditions params in
    match Dcop.solve_with_retry circuit with
    | Error _ -> None
    | Ok op -> begin
        let freqs = freqs_of conditions in
        let b = Ac.transfer_by_name circuit op ~out:"out" ~freqs in
        let out_node = Circuit.node circuit "out" in
        let points = Noise.output_noise ?flicker circuit op ~out:out_node ~freqs in
        let input = Noise.input_referred points ~gain:b in
        match Measure.unity_gain_freq b with
        | None -> None
        | Some fu ->
            let in_band =
              Array.of_list
                (List.filter (fun (f, _) -> f <= fu) (Array.to_list input))
            in
            if Array.length in_band < 2 then None
            else Some (input, Noise.integrate_rms in_band)
      end

  let step_response ?(conditions = default_conditions) ?(amplitude = 0.5)
      ?(t_stop = 2e-6) ?(dt = 2e-9) params =
    let c = Circuit.create () in
    let tech = conditions.tech in
    let v_lo = conditions.vcm -. (amplitude /. 2.) in
    let v_hi = conditions.vcm +. (amplitude /. 2.) in
    Circuit.add_vsource c ~name:"VDD" "vdd" "0" tech.Tech.vdd;
    let wave =
      Device.Pulse
        {
          v1 = v_lo;
          v2 = v_hi;
          delay = 0.1 *. t_stop;
          rise = 2. *. dt;
          fall = 2. *. dt;
          width = t_stop;
          period = 0.;
        }
    in
    Circuit.add_vsource c ~name:"VIN" ~wave "vp" "0" v_lo;
    Circuit.add_capacitor c ~name:"CL" "out" "0" conditions.load_cap;
    (* unity-gain follower: output tied straight to the inverting input *)
    A.add c ~prefix:"x1." ~tech ~params ~inp:"out" ~inn:"vp" ~out:"out"
      ~vdd:"vdd" ~vss:"0";
    Circuit.nodeset c (Circuit.node c "out") v_lo;
    match Tran.run (Tran.options ~t_stop ~dt ()) c with
    | Error _ -> None
    | Ok result -> Some (result.Tran.times, Tran.voltage_by_name result c "out")

  let step_perf ?conditions ?amplitude ?t_stop ?dt params =
    match step_response ?conditions ?amplitude ?t_stop ?dt params with
    | None -> None
    | Some (times, values) ->
        let conditions' = Option.value conditions ~default:default_conditions in
        let amplitude' = Option.value amplitude ~default:0.5 in
        let target = conditions'.vcm +. (amplitude' /. 2.) in
        Some
          {
            slew_v_per_us = Measure_tran.slew_rate ~times ~values /. 1e6;
            settling_1pct_s = Measure_tran.settling_time ~times ~values ();
            overshoot_pct = Measure_tran.overshoot_pct ~times ~values;
            final_error_v = Float.abs (Measure_tran.final_value ~values -. target);
          }
end
