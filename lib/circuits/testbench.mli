(** Generic amplifier characterisation.

    The measurement conditions, performance records and extraction logic are
    topology-independent; {!Make} instantiates the testbenches (open-loop AC,
    common-mode/supply variants, unity-gain follower transient, noise) for
    any {!Amplifier.S}.  {!Ota_testbench} is [Make (Ota)] plus the paper's
    defaults; {!Miller_testbench} is [Make (Miller)]. *)

type conditions = {
  tech : Yield_process.Tech.t;
  vcm : float;  (** input common-mode voltage, V *)
  load_cap : float;  (** F *)
  f_lo : float;
  f_hi : float;
  points_per_decade : int;
  min_unity_gain_hz : float;
      (** design constraint (paper eq. 1, g_j(x) >= 0): designs whose
          unity-gain frequency falls below this are infeasible *)
}

val default_conditions : conditions
(** The paper's §4 conditions: c35 technology, 1.65 V common mode, 3 pF
    load, 10 Hz - 1 GHz at 10 points/decade, 10 MHz bandwidth floor. *)

type perf = {
  gain_db : float;  (** open-loop gain at the lowest frequency *)
  phase_margin_deg : float;
  unity_gain_hz : float;
  f3db_hz : float;
  rout_est : float;
      (** single-pole output-resistance estimate
          [gain_lin / (2 pi f_u C_load)], the [ro] used by the behavioural
          model *)
}

type step_perf = {
  slew_v_per_us : float;
  settling_1pct_s : float option;
  overshoot_pct : float;
  final_error_v : float;  (** |final output - target|, the follower's gain error *)
}

val perf_of_bode : conditions -> Yield_spice.Ac.bode -> perf option
(** [None] when the response has no unity crossing. *)

val feasible : conditions -> perf -> bool
(** The eq. 1 constraint set: positive phase margin and unity-gain frequency
    above the floor. *)

val objectives : perf -> float array
(** [[| gain_db; phase_margin_deg |]] — the two paper objectives. *)

val freqs_of : conditions -> float array
(** The AC sweep grid the conditions describe. *)

module Make (A : Amplifier.S) : sig
  val build : ?conditions:conditions -> A.params -> Yield_spice.Circuit.t * string
  (** Open-loop testbench (DC feedback through a large resistor, AC ground
      through a large capacitor on the inverting input) and the output node
      name. *)

  val bode_of_circuit :
    ?conditions:conditions -> Yield_spice.Circuit.t ->
    Yield_spice.Ac.bode option
  (** Run the sweep on an externally perturbed copy of the testbench (the
      Monte Carlo path). *)

  val bode : ?conditions:conditions -> A.params -> Yield_spice.Ac.bode option

  val evaluate : ?conditions:conditions -> A.params -> perf option
  (** DC + AC + extraction; [None] on any failure.  The optimiser's
      objective function. *)

  val evaluate_sampled :
    ?conditions:conditions -> spec:Yield_process.Variation.spec ->
    rng:Yield_stats.Rng.t -> A.params -> perf option
  (** One Monte Carlo draw of process variation and mismatch applied to
      every transistor.  Rebuilds the testbench per call; the batch-first
      Monte Carlo loop uses {!session} + {!evaluate_in_session} instead,
      which is bit-identical under the default dense solver. *)

  type session
  (** One testbench instantiation pinned to a front point: the built
      circuit plus a compiled {!Yield_spice.Mna.sys} solver session.  The
      structural pattern / symbolic factorisation is compiled once per
      solver backend and cached for the functor's lifetime (every variant
      of one amplifier shares a topology); sessions are immutable and safe
      to share across domains. *)

  val session :
    ?conditions:conditions -> ?solver:Yield_numeric.Linsys.backend ->
    A.params -> session
  (** Build the open-loop testbench once for these parameters.  [solver]
      defaults to [Dense]. *)

  val session_circuit : session -> Yield_spice.Circuit.t

  val session_sys : session -> Yield_spice.Mna.sys

  val session_solver_name : session -> string

  val evaluate_in_session :
    session -> spec:Yield_process.Variation.spec ->
    rng:Yield_stats.Rng.t -> perf option
  (** One Monte Carlo sample through the session: draws
      {!Yield_process.Variation.overrides} and patches device models
      per-sample instead of rebuilding the circuit.  Consumes the same
      random deviates as {!evaluate_sampled} and, under the dense solver,
      returns bit-identical results. *)

  val evaluate_with_draw :
    ?conditions:conditions -> spec:Yield_process.Variation.spec ->
    draw:Yield_process.Variation.global_draw -> A.params -> perf option
  (** Deterministic evaluation under a specific global draw, mismatch
      disabled (sensitivity analysis hook). *)

  val cmrr_db : ?conditions:conditions -> A.params -> float option
  (** Low-frequency common-mode rejection: differential gain over the gain
      when both inputs move together. *)

  val psrr_db : ?conditions:conditions -> A.params -> float option
  (** Low-frequency positive-supply rejection. *)

  val input_referred_noise :
    ?conditions:conditions -> ?flicker:Yield_spice.Noise.flicker -> A.params ->
    ((float * float) array * float) option
  (** Input-referred noise PSD across the sweep and the integrated RMS from
      [f_lo] to the unity-gain frequency. *)

  val step_response :
    ?conditions:conditions -> ?amplitude:float -> ?t_stop:float -> ?dt:float ->
    A.params -> (float array * float array) option
  (** Unity-gain follower step response: (times, output voltage). *)

  val step_perf :
    ?conditions:conditions -> ?amplitude:float -> ?t_stop:float -> ?dt:float ->
    A.params -> step_perf option
end
