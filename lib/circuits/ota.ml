module Circuit = Yield_spice.Circuit
module Genome = Yield_ga.Genome
module Tech = Yield_process.Tech

type params = {
  w1 : float;
  l1 : float;
  w2 : float;
  l2 : float;
  w3 : float;
  l3 : float;
  w4 : float;
  l4 : float;
}

let w_min = 10e-6

let w_max = 60e-6

let l_min = 0.35e-6

let l_max = 4e-6

let param_names = [| "w1"; "l1"; "w2"; "l2"; "w3"; "l3"; "w4"; "l4" |]

let param_ranges =
  Array.map
    (fun name ->
      if name.[0] = 'w' then Genome.range name ~lo:w_min ~hi:w_max
      else Genome.range name ~lo:l_min ~hi:l_max)
    param_names

let params_of_array a =
  match a with
  | [| w1; l1; w2; l2; w3; l3; w4; l4 |] -> { w1; l1; w2; l2; w3; l3; w4; l4 }
  | _ -> invalid_arg "Ota.params_of_array: need 8 values"

let params_to_array p = [| p.w1; p.l1; p.w2; p.l2; p.w3; p.l3; p.w4; p.l4 |]

let default_params =
  {
    w1 = 30e-6;
    l1 = 1e-6;
    w2 = 30e-6;
    l2 = 1e-6;
    w3 = 30e-6;
    l3 = 1e-6;
    w4 = 30e-6;
    l4 = 1e-6;
  }

let clamp_params p =
  let w x = Float.max w_min (Float.min w_max x) in
  let l x = Float.max l_min (Float.min l_max x) in
  {
    w1 = w p.w1;
    l1 = l p.l1;
    w2 = w p.w2;
    l2 = l p.l2;
    w3 = w p.w3;
    l3 = l p.l3;
    w4 = w p.w4;
    l4 = l p.l4;
  }

let mirror_factor p = p.w2 /. p.l2 /. (p.w1 /. p.l1)

let input_pair_w = 30e-6

let input_pair_l = 1e-6

let bias_current = 20e-6

let symmetric_pairs =
  [ ("M1", "M2"); ("M3", "M4"); ("M5", "M6"); ("M7", "M8"); ("M9", "M10") ]

let add circuit ~prefix ~tech ~params:p ~inp ~inn ~out ~vdd ~vss =
  let nm = tech.Tech.nmos and pm = tech.Tech.pmos in
  let node suffix = prefix ^ suffix in
  let n1 = node "n1"
  and n2 = node "n2"
  and n3 = node "n3"
  and nbias = node "nbias"
  and ntail = node "ntail" in
  let mos name ~d ~g ~s ~b ~model ~w ~l =
    Circuit.add_mosfet circuit ~name:(prefix ^ name) ~d ~g ~s ~b ~model ~w ~l
  in
  (* differential pair *)
  mos "M1" ~d:n1 ~g:inp ~s:ntail ~b:vss ~model:nm ~w:input_pair_w
    ~l:input_pair_l;
  mos "M2" ~d:n2 ~g:inn ~s:ntail ~b:vss ~model:nm ~w:input_pair_w
    ~l:input_pair_l;
  (* PMOS diode loads *)
  mos "M3" ~d:n1 ~g:n1 ~s:vdd ~b:vdd ~model:pm ~w:p.w1 ~l:p.l1;
  mos "M4" ~d:n2 ~g:n2 ~s:vdd ~b:vdd ~model:pm ~w:p.w1 ~l:p.l1;
  (* PMOS mirror outputs: M5 feeds the NMOS mirror, M6 drives the output.
     The signal path from inp goes M1 -> n1 -> M5 -> n3 -> M8 -> out, and
     from inn goes M2 -> n2 -> M6 -> out. *)
  mos "M5" ~d:n3 ~g:n1 ~s:vdd ~b:vdd ~model:pm ~w:p.w2 ~l:p.l2;
  mos "M6" ~d:out ~g:n2 ~s:vdd ~b:vdd ~model:pm ~w:p.w2 ~l:p.l2;
  (* NMOS output mirror *)
  mos "M7" ~d:n3 ~g:n3 ~s:vss ~b:vss ~model:nm ~w:p.w3 ~l:p.l3;
  mos "M8" ~d:out ~g:n3 ~s:vss ~b:vss ~model:nm ~w:p.w3 ~l:p.l3;
  (* tail mirror *)
  mos "M9" ~d:nbias ~g:nbias ~s:vss ~b:vss ~model:nm ~w:p.w4 ~l:p.l4;
  mos "M10" ~d:ntail ~g:nbias ~s:vss ~b:vss ~model:nm ~w:p.w4 ~l:p.l4;
  Circuit.add_isource circuit ~name:(prefix ^ "IB") vdd nbias bias_current;
  (* initial guesses: PMOS gates one |vgs| below vdd, NMOS diodes near
     0.75 V, tail slightly below the input common mode *)
  let vdd_guess = tech.Tech.vdd in
  Circuit.nodeset circuit (Circuit.node circuit n1) (vdd_guess -. 1.0);
  Circuit.nodeset circuit (Circuit.node circuit n2) (vdd_guess -. 1.0);
  Circuit.nodeset circuit (Circuit.node circuit n3) 0.75;
  Circuit.nodeset circuit (Circuit.node circuit nbias) 0.75;
  Circuit.nodeset circuit (Circuit.node circuit ntail) 0.6
