include Testbench.Make (Miller)
