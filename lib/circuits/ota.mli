(** The symmetrical OTA benchmark circuit (paper §4, Figure 5).

    Canonical three-current-mirror topology:

    - M1/M2: NMOS differential input pair (fixed dimensions);
    - M3/M4: PMOS diode loads of the pair;
    - M5/M6: PMOS mirror outputs — mirror factor
      [B = (w2/l2) / (w1/l1)];
    - M7/M8: NMOS output mirror (returns M5's current to the output);
    - M9/M10: NMOS tail-current mirror fed by the bias current.

    The eight designable parameters are the shared W and L of each symmetric
    pair, constrained exactly as the paper's Table 1:
    W in [10 um, 60 um], L in [0.35 um, 4 um]. *)

type params = {
  w1 : float;  (** M3/M4 width, m *)
  l1 : float;
  w2 : float;  (** M5/M6 *)
  l2 : float;
  w3 : float;  (** M7/M8 *)
  l3 : float;
  w4 : float;  (** M9/M10 *)
  l4 : float;
}

val w_min : float
(** 10 um. *)

val w_max : float
(** 60 um. *)

val l_min : float
(** 0.35 um. *)

val l_max : float
(** 4 um. *)

val param_ranges : Yield_ga.Genome.range array
(** Table 1 as GA ranges, order [w1; l1; w2; l2; w3; l3; w4; l4]. *)

val params_of_array : float array -> params
(** @raise Invalid_argument unless exactly 8 values. *)

val params_to_array : params -> float array

val param_names : string array

val default_params : params
(** A sensible mid-range starting design. *)

val clamp_params : params -> params
(** Clip every dimension into the Table 1 ranges. *)

val mirror_factor : params -> float
(** [B = (w2/l2) / (w1/l1)]. *)

val input_pair_w : float
(** Fixed M1/M2 width (30 um). *)

val input_pair_l : float
(** Fixed M1/M2 length (1 um). *)

val bias_current : float
(** Reference bias current (20 uA into the M9 diode). *)

val symmetric_pairs : (string * string) list
(** The topology's matched pairs — input pair, diode loads, mirror outputs,
    output mirror, tail mirror — asserted by the preflight netlist lint. *)

val add :
  Yield_spice.Circuit.t -> prefix:string -> tech:Yield_process.Tech.t ->
  params:params -> inp:string -> inn:string -> out:string -> vdd:string ->
  vss:string -> unit
(** Instantiate the OTA into a circuit.  Internal nodes and device names are
    prefixed with [prefix] (e.g. ["ota1."]).  Adds the bias current source.
    Nodesets for the internal nodes are registered to help DC convergence. *)
