(** The interface a circuit topology must provide to be characterised by the
    generic {!Testbench}: a parameter vector with designer-imposed ranges and
    a netlist builder.  {!Ota} (the paper's symmetrical OTA) and {!Miller}
    (a two-stage Miller-compensated OTA) both satisfy it. *)

module type S = sig
  type params

  val param_ranges : Yield_ga.Genome.range array

  val param_names : string array

  val params_of_array : float array -> params
  (** @raise Invalid_argument on arity mismatch. *)

  val params_to_array : params -> float array

  val default_params : params

  val symmetric_pairs : (string * string) list
  (** Device-name pairs (unprefixed, e.g. [("M3", "M4")]) whose W/L must
      match for the topology to be what it claims — the invariant the
      preflight netlist lint asserts on the built testbench. *)

  val add :
    Yield_spice.Circuit.t -> prefix:string -> tech:Yield_process.Tech.t ->
    params:params -> inp:string -> inn:string -> out:string -> vdd:string ->
    vss:string -> unit
  (** Instantiate the amplifier.  [inp] must be the {e inverting} input and
      [inn] the non-inverting one (matching {!Ota.add}). *)
end
