(** A two-stage Miller-compensated OTA (textbook Allen–Holberg topology):
    the second benchmark circuit, demonstrating that the paper's flow is not
    specific to the symmetrical OTA.

    - M1/M2: NMOS input pair (fixed dimensions);
    - M3/M4: PMOS mirror load (diode on the inverting side);
    - M5/M8: tail / bias mirror fed by the reference current;
    - M6: PMOS common-source second stage;
    - M7: NMOS output current sink (mirrored from M8);
    - Cc + Rz: Miller compensation with a nulling resistor (fixed values).

    Designable parameters, following the Table 1 style (W in [10, 60] um,
    L in [0.35, 4] um): (w1,l1) = M3/M4, (w2,l2) = M6, (w3,l3) = M7,
    (w4,l4) = M5/M8.

    The module satisfies {!Amplifier.S}; characterise it with
    {!Miller_testbench}. *)

type params = {
  w1 : float;  (** M3/M4, m *)
  l1 : float;
  w2 : float;  (** M6 *)
  l2 : float;
  w3 : float;  (** M7 *)
  l3 : float;
  w4 : float;  (** M5/M8 *)
  l4 : float;
}

val param_ranges : Yield_ga.Genome.range array

val param_names : string array

val params_of_array : float array -> params

val params_to_array : params -> float array

val default_params : params

val compensation_cap : float
(** Fixed Miller capacitor (4 pF). *)

val nulling_resistor : float
(** Fixed zero-nulling resistor (800 Ohm). *)

val bias_current : float
(** Reference current into the M8 diode (20 uA). *)

val symmetric_pairs : (string * string) list
(** Matched pairs (input pair, mirror loads, bias mirror) asserted by the
    preflight netlist lint. *)

val add :
  Yield_spice.Circuit.t -> prefix:string -> tech:Yield_process.Tech.t ->
  params:params -> inp:string -> inn:string -> out:string -> vdd:string ->
  vss:string -> unit
(** [inp] is the inverting input (M1's gate). *)
