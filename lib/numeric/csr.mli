(** Sparse LU over a compressed-sparse-row filled pattern.

    [analyse] runs once per circuit topology: it computes a row matching
    giving a zero-free diagonal, a greedy minimum-degree ordering, and the
    up-looking symbolic fill.  The per-sample numeric work ([rreset] /
    [radd] / [rsolve], and the complex [G + jwC] variant) only touches
    value slots of that fixed pattern.  No numeric pivoting is performed;
    a vanishing pivot raises {!Lu.Singular} like the dense path, and one
    iterative-refinement step against the assembled values recovers the
    accuracy partial pivoting would have bought. *)

type symbolic
(** Immutable result of the symbolic analysis; safe to share across
    domains.  Per-worker numeric state lives in {!rwork} / {!cwork}. *)

val analyse : ?strong_rows:int array array -> n:int -> int array array -> symbolic
(** [analyse ~n rows] analyses an [n]x[n] pattern whose row [i] has the
    (sorted, deduplicated) structural columns [rows.(i)].

    [strong_rows] (default: [rows]) restricts the zero-free-diagonal
    matching: pivots are drawn from these entries first, and the full
    pattern is only consulted for columns the strong entries cannot
    cover.  Callers pass the subset guaranteed numerically nonzero in
    every assembly (e.g. MNA conductance stamps, but not capacitor-only
    positions which vanish in a DC assembly) so the no-pivoting
    factorisation never routes a pivot through a zero.  Must be a
    row-wise subset of [rows].
    @raise Lu.Singular if the pattern is structurally singular. *)

val size : symbolic -> int
val nnz : symbolic -> int
(** Stored entries of the filled pattern (original entries + fill-in). *)

(** {1 Real systems} *)

type rwork
(** Mutable per-worker numeric state for one real system. *)

val rwork : symbolic -> rwork
val rreset : rwork -> unit
val radd : rwork -> int -> int -> float -> unit
(** Accumulate into an entry, in original (unpermuted) coordinates.
    @raise Invalid_argument for an entry outside the analysed pattern. *)

val rsolve : rwork -> float array -> float array
(** Factor the assembled values and solve; the assembled values are left
    intact so [rsolve] may be called repeatedly.
    @raise Lu.Singular on a vanishing pivot. *)

(** {1 Complex systems of the form G + jwC} *)

type cwork

val cwork : symbolic -> cwork
val creset : cwork -> unit
val cadd_g : cwork -> int -> int -> float -> unit
val cadd_c : cwork -> int -> int -> float -> unit

val cfactor : cwork -> omega:float -> Complex.t array -> Complex.t array
(** [cfactor w ~omega] factors [G + j*omega*C] once and returns a solver
    usable for many right-hand sides at that frequency.
    @raise Lu.Singular on a vanishing pivot. *)
