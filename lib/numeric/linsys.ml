(* Solver-agnostic linear-system seam: see linsys.mli for the contract.

   The Dense backend must stay byte-identical to the historical direct
   Mat/Lu/Cmat call sequence — reset is Mat.fill 0 (indistinguishable from
   a fresh Mat.create), solve is Lu.solve (Lu.factor m) b, and the complex
   factor is Cmat.of_real ~imag_scale:omega followed by Cmat.solve per
   right-hand side.  Do not "optimise" these closures. *)

module Pattern = struct
  (* [strong] rows hold the entries assembled to a nonzero value by every
     analysis sharing the pattern; weak entries ([add_weak]: capacitor-only
     positions, numerically zero in a DC assembly) are structurally present
     but must not carry a pivot — the csr transversal prefers strong
     entries so the no-pivoting factorisation never lands on one. *)
  type t = { n : int; rows : int array array; strong : int array array }

  type builder = { bn : int; seen : (int, bool) Hashtbl.t }

  let builder n =
    if n < 0 then invalid_arg "Linsys.Pattern.builder";
    { bn = n; seen = Hashtbl.create (8 * (n + 1)) }

  let add b i j =
    if i < 0 || j < 0 || i >= b.bn || j >= b.bn then
      invalid_arg "Linsys.Pattern.add: entry out of range";
    Hashtbl.replace b.seen ((i * b.bn) + j) true

  let add_weak b i j =
    if i < 0 || j < 0 || i >= b.bn || j >= b.bn then
      invalid_arg "Linsys.Pattern.add_weak: entry out of range";
    let key = (i * b.bn) + j in
    (* never downgrade a strong entry *)
    if not (Hashtbl.mem b.seen key) then Hashtbl.replace b.seen key false

  let build_count = Atomic.make 0

  let builds () = Atomic.get build_count

  let build b =
    Atomic.incr build_count;
    let per_row = Array.make b.bn [] in
    let strong_per_row = Array.make b.bn [] in
    Hashtbl.iter
      (fun key strong ->
        let i = key / b.bn and j = key mod b.bn in
        per_row.(i) <- j :: per_row.(i);
        if strong then strong_per_row.(i) <- j :: strong_per_row.(i))
      b.seen;
    let sorted = Array.map (fun cols -> Array.of_list (List.sort_uniq compare cols)) in
    { n = b.bn; rows = sorted per_row; strong = sorted strong_per_row }

  let size p = p.n

  let rows p = p.rows

  let strong_rows p = p.strong

  let mem p i j =
    i >= 0 && j >= 0 && i < p.n && j < p.n
    && Array.exists (fun c -> c = j) p.rows.(i)
end

type real = {
  rn : int;
  reset : unit -> unit;
  add : int -> int -> float -> unit;
  solve : float array -> float array;
}

type complex_sys = {
  cn : int;
  creset : unit -> unit;
  add_g : int -> int -> float -> unit;
  add_c : int -> int -> float -> unit;
  factor : omega:float -> Complex.t array -> Complex.t array;
}

module type S = sig
  type compiled

  val name : string
  val compile : Pattern.t -> compiled
  val real : compiled -> real
  val complex : compiled -> complex_sys
end

module Dense_backend = struct
  type compiled = int

  let name = "dense"

  let compile p = Pattern.size p

  let real n =
    let m = Mat.create n n in
    {
      rn = n;
      reset = (fun () -> Mat.fill m 0.);
      add = Mat.add_to m;
      solve = (fun b -> Lu.solve (Lu.factor m) b);
    }

  let complex n =
    let g = Mat.create n n in
    let c = Mat.create n n in
    {
      cn = n;
      creset =
        (fun () ->
          Mat.fill g 0.;
          Mat.fill c 0.);
      add_g = Mat.add_to g;
      add_c = Mat.add_to c;
      factor =
        (fun ~omega ->
          let m = Cmat.of_real ~imag_scale:omega g c in
          fun rhs -> Cmat.solve m rhs);
    }
end

module Csr_backend = struct
  type compiled = Csr.symbolic

  let name = "csr"

  let compile p =
    Csr.analyse
      ~strong_rows:(Pattern.strong_rows p)
      ~n:(Pattern.size p) (Pattern.rows p)

  let real sym =
    let w = Csr.rwork sym in
    {
      rn = Csr.size sym;
      reset = (fun () -> Csr.rreset w);
      add = Csr.radd w;
      solve = Csr.rsolve w;
    }

  let complex sym =
    let w = Csr.cwork sym in
    {
      cn = Csr.size sym;
      creset = (fun () -> Csr.creset w);
      add_g = Csr.cadd_g w;
      add_c = Csr.cadd_c w;
      factor = (fun ~omega -> Csr.cfactor w ~omega);
    }
end

type backend = Dense | Csr

let backend_name = function Dense -> "dense" | Csr -> "csr"

let backend_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "dense" -> Some Dense
  | "csr" | "sparse" -> Some Csr
  | _ -> None

let backend_names = [ "dense"; "csr" ]

let backend_module : backend -> (module S) = function
  | Dense -> (module Dense_backend)
  | Csr -> (module Csr_backend)

type t =
  | Compiled : (module S with type compiled = 'a) * 'a * int -> t

let compile backend pattern =
  let n = Pattern.size pattern in
  match backend with
  | Dense ->
      Compiled ((module Dense_backend), Dense_backend.compile pattern, n)
  | Csr -> Compiled ((module Csr_backend), Csr_backend.compile pattern, n)

let dense_of_size n = Compiled ((module Dense_backend), n, n)

let real (Compiled ((module B), c, _)) = B.real c

let complex (Compiled ((module B), c, _)) = B.complex c

let name (Compiled ((module B), _, _)) = B.name

let size (Compiled (_, _, n)) = n
