(** Solver-agnostic linear-system seam.

    Simulation engines describe the structural nonzeros of their MNA system
    once per topology as a {!Pattern.t}, compile it against a {!backend},
    and then assemble + solve through small records of closures
    ({!type-real} for DC/transient Newton systems, {!type-complex_sys} for
    AC systems of the form [G + jwC]).  Two backends exist:

    - [Dense] wraps {!Mat}/{!Lu}/{!Cmat} with exactly the operation
      sequence the engines used before this seam existed, so results are
      byte-identical to the historical dense path (it ignores the pattern
      beyond its size).
    - [Csr] uses {!Csr}: fill-reducing ordering and symbolic factorisation
      computed once per topology at [compile] time; per-sample work only
      refactors numeric values over the cached fill pattern.

    Compiled systems are immutable and safe to share across domains;
    {!val-real} / {!val-complex} allocate the mutable per-worker numeric
    workspaces. *)

(** Structural nonzero pattern of a square system. *)
module Pattern : sig
  type t
  (** Immutable pattern: deduplicated, sorted rows. *)

  type builder

  val builder : int -> builder
  (** [builder n] starts a pattern for an [n]x[n] system. *)

  val add : builder -> int -> int -> unit
  (** Record a strong structural entry — one assembled to a numerically
      nonzero value by every analysis sharing the pattern.  Duplicates are
      fine; [add] upgrades a previously weak entry. *)

  val add_weak : builder -> int -> int -> unit
  (** Record a weak structural entry: present in the pattern, but possibly
      zero in some assemblies (capacitor-only MNA positions vanish in a DC
      assembly).  The csr backend draws pivots from strong entries first,
      so the no-pivoting factorisation never lands on a weak zero.  Never
      downgrades an entry already recorded with [add]. *)

  val build : builder -> t

  val size : t -> int
  val rows : t -> int array array
  (** [rows p].(i) = sorted structural columns of row [i]. *)

  val strong_rows : t -> int array array
  (** Row-wise subset of {!rows} holding only the strong entries. *)

  val mem : t -> int -> int -> bool

  val builds : unit -> int
  (** Global count of [build] calls in this process — lets tests assert
      that a topology's pattern is built once and cached, not per sample. *)
end

type real = {
  rn : int;  (** system size *)
  reset : unit -> unit;  (** zero the assembled values *)
  add : int -> int -> float -> unit;  (** accumulate an entry *)
  solve : float array -> float array;
      (** factor the assembled system and solve; leaves assembled values
          intact. @raise Lu.Singular when the factorisation breaks down *)
}
(** Mutable workspace for one real system (DC / transient Newton step). *)

type complex_sys = {
  cn : int;
  creset : unit -> unit;  (** zero both assembled matrices *)
  add_g : int -> int -> float -> unit;  (** accumulate into G *)
  add_c : int -> int -> float -> unit;  (** accumulate into C *)
  factor : omega:float -> Complex.t array -> Complex.t array;
      (** factor [G + j*omega*C] once; the returned solver may be applied
          to many right-hand sides. @raise Lu.Singular on breakdown *)
}
(** Mutable workspace for one complex system of the form [G + jwC]. *)

(** A linear-solver backend as a first-class module. *)
module type S = sig
  type compiled
  (** Immutable per-topology state; safe to share across domains. *)

  val name : string
  val compile : Pattern.t -> compiled
  val real : compiled -> real
  val complex : compiled -> complex_sys
end

type backend = Dense | Csr

val backend_name : backend -> string
val backend_of_string : string -> backend option
val backend_names : string list
(** Valid [--solver] names, in display order. *)

val backend_module : backend -> (module S)

type t
(** A pattern compiled against a backend.  Immutable and domain-shareable;
    call {!val-real} / {!val-complex} per worker for numeric workspaces. *)

val compile : backend -> Pattern.t -> t
val dense_of_size : int -> t
(** Dense compiled system for an [n]x[n] pattern-less legacy call site;
    equivalent to compiling a [Dense] backend (which ignores structure). *)

val real : t -> real
val complex : t -> complex_sys
val name : t -> string
val size : t -> int
