(* Sparse LU over a compressed-sparse-row filled pattern.

   The analysis is split the way the Monte Carlo loop needs it: [analyse]
   runs once per circuit topology (row matching for a zero-free diagonal,
   minimum-degree ordering, symbolic fill), and the per-sample work —
   [rreset]/[radd]/[rsolve] — only touches the numeric value slots of that
   fixed pattern.  No numeric pivoting is performed (the pivot order is the
   symbolic one), so a vanishing pivot raises {!Lu.Singular} exactly like
   the dense path, and one iterative-refinement step against the assembled
   values recovers the accuracy partial pivoting would have bought on the
   diagonally-weak MNA systems this solves. *)

module ISet = Set.Make (Int)

let pivot_floor = 1e-300

(* mag2 floor matching Cmat.solve's complex pivot test *)
let cpivot_floor = 1e-280

type symbolic = {
  n : int;
  rowperm : int array;
      (* factored row i holds original row [rowperm.(i)] *)
  colperm : int array;
      (* factored column j is original column [colperm.(j)] *)
  f_rowptr : int array;  (* n + 1 entries into f_cols *)
  f_cols : int array;  (* filled pattern, sorted within each row *)
  f_diag : int array;  (* slot of the diagonal entry of each row *)
  slots : (int, int) Hashtbl.t;
      (* original (i * n + j) -> value slot; read-only after [analyse] *)
}

let size s = s.n

let nnz s = Array.length s.f_cols

(* maximum transversal: match every column to a distinct row holding a
   structural entry in it, via augmenting paths.  [rows.(i)] lists the
   columns of original row i.  The matching runs in two phases: first over
   [strong_rows] only (entries guaranteed numerically nonzero in every
   assembly), then — for any column the strong entries cannot cover — over
   the full pattern.  A pivot drawn from a weak entry (e.g. a
   capacitor-only position, zero in a DC assembly) would make the
   no-pivoting factorisation numerically singular, so weak entries are a
   last resort for structural completeness only. *)
let match_rows ~n ~rows ~strong_rows =
  let adj_of rs =
    let cols_adj = Array.make n [] in
    Array.iteri
      (fun i cols ->
        Array.iter (fun j -> cols_adj.(j) <- i :: cols_adj.(j)) cols)
      rs;
    cols_adj
  in
  let row_of_col = Array.make n (-1) in
  let col_of_row = Array.make n (-1) in
  let visited = Array.make n false in
  let run cols_adj on_fail =
    let rec augment j =
      List.exists
        (fun i ->
          if visited.(i) then false
          else begin
            visited.(i) <- true;
            if col_of_row.(i) < 0 || augment col_of_row.(i) then begin
              col_of_row.(i) <- j;
              row_of_col.(j) <- i;
              true
            end
            else false
          end)
        cols_adj.(j)
    in
    for j = 0 to n - 1 do
      if row_of_col.(j) < 0 then begin
        Array.fill visited 0 n false;
        if not (augment j) then on_fail j
      end
    done
  in
  run (adj_of strong_rows) (fun _ -> ());
  (* structurally singular when even the full pattern cannot put an entry
     on diagonal j *)
  run (adj_of rows) (fun j -> raise (Lu.Singular j));
  row_of_col

(* greedy minimum-degree on the symmetrised pattern: eliminate the vertex of
   smallest degree, then connect its remaining neighbours into a clique
   (the fill its elimination creates). *)
let min_degree ~n adj =
  let order = Array.make n 0 in
  let eliminated = Array.make n false in
  for step = 0 to n - 1 do
    let best = ref (-1) and best_deg = ref max_int in
    for v = 0 to n - 1 do
      if not eliminated.(v) then begin
        let d = ISet.cardinal adj.(v) in
        if d < !best_deg then begin
          best := v;
          best_deg := d
        end
      end
    done;
    let v = !best in
    order.(step) <- v;
    eliminated.(v) <- true;
    let neighbours = ISet.elements adj.(v) in
    List.iter
      (fun u ->
        adj.(u) <- ISet.remove v adj.(u);
        List.iter
          (fun w -> if w <> u then adj.(u) <- ISet.add w adj.(u))
          neighbours)
      neighbours
  done;
  order

let analyse ?strong_rows ~n rows =
  let strong_rows = Option.value strong_rows ~default:rows in
  if Array.length rows <> n then invalid_arg "Csr.analyse: ragged pattern";
  if Array.length strong_rows <> n then
    invalid_arg "Csr.analyse: ragged strong pattern";
  if n = 0 then
    {
      n;
      rowperm = [||];
      colperm = [||];
      f_rowptr = [| 0 |];
      f_cols = [||];
      f_diag = [||];
      slots = Hashtbl.create 1;
    }
  else begin
    let row_of_col = match_rows ~n ~rows ~strong_rows in
    (* B.(i) = pattern of A row [row_of_col.(i)]: zero-free diagonal *)
    let b_rows = Array.init n (fun i -> rows.(row_of_col.(i))) in
    let adj = Array.make n ISet.empty in
    Array.iteri
      (fun i cols ->
        Array.iter
          (fun j ->
            if i <> j then begin
              adj.(i) <- ISet.add j adj.(i);
              adj.(j) <- ISet.add i adj.(j)
            end)
          cols)
      b_rows;
    let order = min_degree ~n adj in
    let inv_order = Array.make n 0 in
    Array.iteri (fun pos v -> inv_order.(v) <- pos) order;
    let rowperm = Array.init n (fun i -> row_of_col.(order.(i))) in
    let colperm = Array.copy order in
    (* symbolic fill, up-looking: the final pattern of permuted row i is its
       assembled pattern united with the above-diagonal tails of every
       earlier row it eliminates against, in ascending pivot order *)
    let fill = Array.make n ISet.empty in
    for i = 0 to n - 1 do
      let start =
        Array.fold_left
          (fun acc j -> ISet.add inv_order.(j) acc)
          ISet.empty
          b_rows.(order.(i))
      in
      let pat = ref start in
      let todo = ref (ISet.filter (fun k -> k < i) start) in
      while not (ISet.is_empty !todo) do
        let k = ISet.min_elt !todo in
        todo := ISet.remove k !todo;
        ISet.iter
          (fun j ->
            if j > k && not (ISet.mem j !pat) then begin
              pat := ISet.add j !pat;
              if j < i then todo := ISet.add j !todo
            end)
          fill.(k)
      done;
      fill.(i) <- !pat
    done;
    let f_rowptr = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      f_rowptr.(i + 1) <- f_rowptr.(i) + ISet.cardinal fill.(i)
    done;
    let f_cols = Array.make f_rowptr.(n) 0 in
    let f_diag = Array.make n 0 in
    for i = 0 to n - 1 do
      let idx = ref f_rowptr.(i) in
      ISet.iter
        (fun j ->
          f_cols.(!idx) <- j;
          if j = i then f_diag.(i) <- !idx;
          incr idx)
        fill.(i)
    done;
    (* assembly map: original coordinates -> value slot of the permuted,
       filled pattern *)
    let inv_rowperm = Array.make n 0 in
    Array.iteri (fun i orig -> inv_rowperm.(orig) <- i) rowperm;
    let slots = Hashtbl.create (4 * n) in
    Array.iteri
      (fun orig_i cols ->
        let ri = inv_rowperm.(orig_i) in
        Array.iter
          (fun orig_j ->
            let cj = inv_order.(orig_j) in
            (* binary search for cj in F row ri *)
            let lo = ref f_rowptr.(ri) and hi = ref (f_rowptr.(ri + 1) - 1) in
            let slot = ref (-1) in
            while !slot < 0 && !lo <= !hi do
              let mid = (!lo + !hi) / 2 in
              let c = f_cols.(mid) in
              if c = cj then slot := mid
              else if c < cj then lo := mid + 1
              else hi := mid - 1
            done;
            if !slot < 0 then invalid_arg "Csr.analyse: fill pattern broken";
            Hashtbl.replace slots ((orig_i * n) + orig_j) !slot)
          cols)
      rows;
    { n; rowperm; colperm; f_rowptr; f_cols; f_diag; slots }
  end

let slot s i j =
  match Hashtbl.find_opt s.slots ((i * s.n) + j) with
  | Some k -> k
  | None -> invalid_arg "Csr: entry outside the analysed pattern"

(* ---------- real numeric kernel ---------- *)

type rwork = {
  sym : symbolic;
  values : float array;  (* assembled entries, by F slot *)
  luv : float array;  (* factor workspace, same slots *)
  work : float array;  (* scatter row, length n *)
}

let rwork sym =
  let m = Array.length sym.f_cols in
  {
    sym;
    values = Array.make m 0.;
    luv = Array.make m 0.;
    work = Array.make sym.n 0.;
  }

let rreset w = Array.fill w.values 0 (Array.length w.values) 0.

let radd w i j v =
  let k = slot w.sym i j in
  w.values.(k) <- w.values.(k) +. v

(* factor [values] into [luv] (packed LU over the filled pattern, no
   pivoting).  @raise Lu.Singular on a vanishing pivot. *)
let refactor w =
  let s = w.sym in
  let n = s.n in
  let rp = s.f_rowptr and cols = s.f_cols and diag = s.f_diag in
  let luv = w.luv and work = w.work in
  Array.blit w.values 0 luv 0 (Array.length luv);
  for i = 0 to n - 1 do
    let lo = rp.(i) and hi = rp.(i + 1) - 1 in
    for idx = lo to hi do
      work.(cols.(idx)) <- luv.(idx)
    done;
    for idx = lo to diag.(i) - 1 do
      let k = cols.(idx) in
      let lik = work.(k) /. luv.(diag.(k)) in
      work.(k) <- lik;
      if lik <> 0. then
        for jdx = diag.(k) + 1 to rp.(k + 1) - 1 do
          let j = cols.(jdx) in
          work.(j) <- work.(j) -. (lik *. luv.(jdx))
        done
    done;
    for idx = lo to hi do
      luv.(idx) <- work.(cols.(idx));
      work.(cols.(idx)) <- 0.
    done;
    if Float.abs luv.(diag.(i)) < pivot_floor then raise (Lu.Singular i)
  done

(* one triangular solve of the factored system; [y] is in permuted row
   coordinates on entry and permuted column coordinates on exit *)
let lu_apply w y =
  let s = w.sym in
  let n = s.n in
  let rp = s.f_rowptr and cols = s.f_cols and diag = s.f_diag in
  let luv = w.luv in
  for i = 0 to n - 1 do
    let acc = ref y.(i) in
    for idx = rp.(i) to diag.(i) - 1 do
      acc := !acc -. (luv.(idx) *. y.(cols.(idx)))
    done;
    y.(i) <- !acc
  done;
  for i = n - 1 downto 0 do
    let acc = ref y.(i) in
    for idx = diag.(i) + 1 to rp.(i + 1) - 1 do
      acc := !acc -. (luv.(idx) *. y.(cols.(idx)))
    done;
    y.(i) <- !acc /. luv.(diag.(i))
  done

let rsolve w b =
  let s = w.sym in
  let n = s.n in
  if Array.length b <> n then invalid_arg "Csr.rsolve: dimension mismatch";
  refactor w;
  let y = Array.init n (fun i -> b.(s.rowperm.(i))) in
  lu_apply w y;
  (* one refinement step against the assembled (unfactored) values: recovers
     the accuracy numeric pivoting would have provided *)
  let r = Array.make n 0. in
  for i = 0 to n - 1 do
    let acc = ref b.(s.rowperm.(i)) in
    for idx = s.f_rowptr.(i) to s.f_rowptr.(i + 1) - 1 do
      acc := !acc -. (w.values.(idx) *. y.(s.f_cols.(idx)))
    done;
    r.(i) <- !acc
  done;
  lu_apply w r;
  for i = 0 to n - 1 do
    y.(i) <- y.(i) +. r.(i)
  done;
  let x = Array.make n 0. in
  for i = 0 to n - 1 do
    x.(s.colperm.(i)) <- y.(i)
  done;
  x

(* ---------- complex numeric kernel (G + jwC) ---------- *)

type cwork = {
  csym : symbolic;
  gv : float array;  (* assembled G, by F slot *)
  cv : float array;  (* assembled C, by F slot *)
}

let cwork sym =
  let m = Array.length sym.f_cols in
  { csym = sym; gv = Array.make m 0.; cv = Array.make m 0. }

let creset w =
  Array.fill w.gv 0 (Array.length w.gv) 0.;
  Array.fill w.cv 0 (Array.length w.cv) 0.

let cadd_g w i j v =
  let k = slot w.csym i j in
  w.gv.(k) <- w.gv.(k) +. v

let cadd_c w i j v =
  let k = slot w.csym i j in
  w.cv.(k) <- w.cv.(k) +. v

let clu_apply s lre lim yr yi =
  let n = s.n in
  let rp = s.f_rowptr and cols = s.f_cols and diag = s.f_diag in
  for i = 0 to n - 1 do
    let ar = ref yr.(i) and ai = ref yi.(i) in
    for idx = rp.(i) to diag.(i) - 1 do
      let j = cols.(idx) in
      let lr = lre.(idx) and li = lim.(idx) in
      ar := !ar -. ((lr *. yr.(j)) -. (li *. yi.(j)));
      ai := !ai -. ((lr *. yi.(j)) +. (li *. yr.(j)))
    done;
    yr.(i) <- !ar;
    yi.(i) <- !ai
  done;
  for i = n - 1 downto 0 do
    let ar = ref yr.(i) and ai = ref yi.(i) in
    for idx = diag.(i) + 1 to rp.(i + 1) - 1 do
      let j = cols.(idx) in
      let ur = lre.(idx) and ui = lim.(idx) in
      ar := !ar -. ((ur *. yr.(j)) -. (ui *. yi.(j)));
      ai := !ai -. ((ur *. yi.(j)) +. (ui *. yr.(j)))
    done;
    let pr = lre.(diag.(i)) and pi = lim.(diag.(i)) in
    let pmag = (pr *. pr) +. (pi *. pi) in
    yr.(i) <- ((!ar *. pr) +. (!ai *. pi)) /. pmag;
    yi.(i) <- ((!ai *. pr) -. (!ar *. pi)) /. pmag
  done

(* factor G + jwC once, return a solver usable for many right-hand sides
   (the noise analysis solves one system per source per frequency) *)
let cfactor w ~omega =
  let s = w.csym in
  let n = s.n in
  let m = Array.length s.f_cols in
  let rp = s.f_rowptr and cols = s.f_cols and diag = s.f_diag in
  let lre = Array.make m 0. and lim = Array.make m 0. in
  for k = 0 to m - 1 do
    lre.(k) <- w.gv.(k);
    lim.(k) <- omega *. w.cv.(k)
  done;
  let wr = Array.make n 0. and wi = Array.make n 0. in
  for i = 0 to n - 1 do
    let lo = rp.(i) and hi = rp.(i + 1) - 1 in
    for idx = lo to hi do
      wr.(cols.(idx)) <- lre.(idx);
      wi.(cols.(idx)) <- lim.(idx)
    done;
    for idx = lo to diag.(i) - 1 do
      let k = cols.(idx) in
      let pr = lre.(diag.(k)) and pi = lim.(diag.(k)) in
      let pmag = (pr *. pr) +. (pi *. pi) in
      let ar = wr.(k) and ai = wi.(k) in
      let fr = ((ar *. pr) +. (ai *. pi)) /. pmag in
      let fi = ((ai *. pr) -. (ar *. pi)) /. pmag in
      wr.(k) <- fr;
      wi.(k) <- fi;
      if fr <> 0. || fi <> 0. then
        for jdx = diag.(k) + 1 to rp.(k + 1) - 1 do
          let j = cols.(jdx) in
          let ur = lre.(jdx) and ui = lim.(jdx) in
          wr.(j) <- wr.(j) -. ((fr *. ur) -. (fi *. ui));
          wi.(j) <- wi.(j) -. ((fr *. ui) +. (fi *. ur))
        done
    done;
    for idx = lo to hi do
      lre.(idx) <- wr.(cols.(idx));
      lim.(idx) <- wi.(cols.(idx));
      wr.(cols.(idx)) <- 0.;
      wi.(cols.(idx)) <- 0.
    done;
    let dr = lre.(diag.(i)) and di = lim.(diag.(i)) in
    if (dr *. dr) +. (di *. di) < cpivot_floor then raise (Lu.Singular i)
  done;
  let gv = w.gv and cv = w.cv in
  fun b ->
    if Array.length b <> n then invalid_arg "Csr.cfactor: dimension mismatch";
    let yr = Array.make n 0. and yi = Array.make n 0. in
    for i = 0 to n - 1 do
      let z = b.(s.rowperm.(i)) in
      yr.(i) <- z.Complex.re;
      yi.(i) <- z.Complex.im
    done;
    clu_apply s lre lim yr yi;
    (* one refinement step against the assembled G + jwC *)
    let rr = Array.make n 0. and ri = Array.make n 0. in
    for i = 0 to n - 1 do
      let z = b.(s.rowperm.(i)) in
      let ar = ref z.Complex.re and ai = ref z.Complex.im in
      for idx = rp.(i) to rp.(i + 1) - 1 do
        let j = cols.(idx) in
        let mr = gv.(idx) and mi = omega *. cv.(idx) in
        ar := !ar -. ((mr *. yr.(j)) -. (mi *. yi.(j)));
        ai := !ai -. ((mr *. yi.(j)) +. (mi *. yr.(j)))
      done;
      rr.(i) <- !ar;
      ri.(i) <- !ai
    done;
    clu_apply s lre lim rr ri;
    let x = Array.make n Complex.zero in
    for i = 0 to n - 1 do
      x.(s.colperm.(i)) <-
        { Complex.re = yr.(i) +. rr.(i); im = yi.(i) +. ri.(i) }
    done;
    x
