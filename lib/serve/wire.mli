(** The table-server's wire protocol: line-delimited JSON, one request per
    line, one response frame per request, on the same connection.

    Ordering: queued query responses come back in admission order per
    connection; admin ops and parse-level error frames are answered
    immediately by the control loop and may overtake queued query
    responses.  Pipelining clients correlate by the optional ["id"]
    member (any JSON value), echoed verbatim on the matching response;
    one-request-at-a-time clients need no ids.

    Responses are single lines too: [{"ok":true,"op":...,...}] on success,
    [{"ok":false,"error":{"code":...,"message":...},...}] on failure.  The
    code set below is the protocol's typed error surface — every hostile
    or unlucky input maps to one of these frames, never to a dead
    process. *)

type query =
  | Ping  (** protocol no-op: liveness and raw round-trip cost *)
  | Lookup of { gain_db : float; pm_deg : float }
      (** performance-model lookup: the paper's µs table query *)
  | Design of { min_gain_db : float; min_pm_deg : float }
      (** yield-targeted design: variation-inflated spec → sizing *)

type admin = Health | Ready | Reload | Shutdown

type request =
  | Query of query  (** queued, deadline-checked, pool-dispatched *)
  | Admin of admin  (** handled inline by the control loop, never queued *)

type error_code =
  | Bad_json  (** the line is not valid JSON *)
  | Bad_request  (** valid JSON, wrong shape (missing/ill-typed fields) *)
  | Unknown_op
  | Oversized  (** line longer than the server's [max_line] *)
  | Overloaded  (** bounded queue full — load was shed *)
  | Timeout  (** deadline expired before (or while) handling *)
  | Out_of_range  (** query outside the model tables ("3E": no extrapolation) *)
  | Reload_rejected  (** candidate tables failed lint; old snapshot kept *)
  | Draining  (** server is shutting down; no new queries *)
  | Internal  (** handler failure (incl. injected faults) after retries *)

val code_to_string : error_code -> string
(** Stable snake_case names ([bad_json], [overloaded], ...). *)

type err = { code : error_code; message : string }

val parse : string -> (request * Yield_obs.Json.t option, err) result
(** Parse one request line (without the newline).  The second component is
    the echoed ["id"], when present — it is returned alongside errors'
    frames too, via {!error_frame}'s [?id]. *)

val request_to_json : request -> Yield_obs.Json.t
(** Render a request (the client side of {!parse}). *)

val ok_frame :
  ?id:Yield_obs.Json.t -> op:string -> (string * Yield_obs.Json.t) list ->
  string
(** One newline-terminated success line: [{"ok":true,"op":OP,FIELDS...}]
    plus the echoed [id]. *)

val error_frame :
  ?id:Yield_obs.Json.t ->
  ?extra:(string * Yield_obs.Json.t) list ->
  error_code -> string -> string
(** One newline-terminated failure line; [extra] fields (e.g. lint
    findings on a rejected reload) land at the top level of the frame. *)
