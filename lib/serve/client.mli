(** A minimal blocking client for the wire protocol — what [loadgen], the
    CI smoke probe and the end-to-end tests talk through.

    One connection, synchronous request/response.  Pipelining is just
    calling {!send_line} several times before reading; frames come back in
    request order (the server's per-connection ordering guarantee). *)

type t

val connect : ?timeout_s:float -> Addr.t -> t
(** Blocking connect; [timeout_s] (default 5 s) bounds every subsequent
    receive via [SO_RCVTIMEO].
    @raise Unix.Unix_error when nothing is listening. *)

val close : t -> unit

val send_line : t -> string -> unit
(** Write one raw request line (the newline is appended).
    @raise Unix.Unix_error when the peer is gone. *)

val send_raw : t -> string -> unit
(** Write bytes verbatim, {e without} a newline — for tests that need to
    present truncated or unframed input to the server. *)

val recv_line : t -> string option
(** Next response line (without the newline); [None] on EOF.
    @raise Unix.Unix_error ([EAGAIN]) when the receive timeout expires. *)

val request : t -> Yield_obs.Json.t -> Yield_obs.Json.t
(** Send one JSON request and parse the matching response frame.
    @raise Failure on EOF or an unparseable frame. *)
