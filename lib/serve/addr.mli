(** Server addresses: Unix-domain sockets for same-host serving, TCP for
    the network.  One grammar everywhere ([--listen], [--addr]):
    [unix:PATH] or [tcp:HOST:PORT]. *)

type t =
  | Unix_sock of string  (** filesystem path *)
  | Tcp of { host : string; port : int }

val parse : string -> (t, string) result
(** [unix:PATH] or [tcp:HOST:PORT].  The error is a usable message. *)

val to_string : t -> string
(** Round-trips through {!parse}. *)

val listen : ?backlog:int -> t -> Unix.file_descr
(** Bind and listen (default backlog 128).  A stale Unix-socket file left
    by a killed server is unlinked first; TCP listeners set [SO_REUSEADDR].
    @raise Unix.Unix_error when the address cannot be bound. *)

val connect : t -> Unix.file_descr
(** Blocking client connect.
    @raise Unix.Unix_error when nothing is listening. *)

val unlink : t -> unit
(** Remove a Unix socket's filesystem entry (no-op for TCP and missing
    files) — the listener's cleanup on shutdown. *)
