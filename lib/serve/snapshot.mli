(** An immutable, lint-gated view of the loaded [.tbl] models.

    The server never mutates a snapshot: a (re)load builds a complete new
    one off to the side — running {!Yield_core.Flow.lint_models} first and
    refusing on error-severity findings — and only then swaps one atomic
    reference.  Requests capture the reference at admission, so in-flight
    work always finishes against the models it was admitted under and a
    rejected reload leaves the old snapshot serving untouched. *)

type t = {
  generation : int;  (** 1 at startup, +1 per successful reload *)
  dir : string;
  control : string;
  perf : Yield_behavioural.Perf_model.t;
  var : Yield_behavioural.Var_model.t;
  macromodel : Yield_behavioural.Macromodel.t;
  findings : Yield_analyse.Diagnostic.t list;
      (** the lint findings this snapshot was admitted with (warnings /
          infos — errors would have refused the load); surfaced verbatim
          on the [health] endpoint *)
  loaded_at_s : float;  (** {!Yield_obs.Clock.now_s} at load *)
}

val load :
  generation:int -> dir:string -> control:string ->
  (t, string * Yield_analyse.Diagnostic.t list) result
(** Lint the candidate tables ({!Yield_core.Flow.lint_models}), then load
    them ({!Yield_core.Flow.load_models}).  [Error] carries both a message
    and the findings (the lint findings on rejection; whatever the lint
    produced before a load-time failure otherwise) so [health] can report
    why the last reload was refused. *)
