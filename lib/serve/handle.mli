(** Pure query evaluation against one model snapshot.

    No IO, no clocks, no shared state: given the same snapshot and query,
    the same answer — which is what lets the server fan request handling
    out over the {!Yield_exec.Pool} without ordering concerns, and what
    the unit tests exercise without a socket in sight. *)

val query :
  Snapshot.t -> Wire.query ->
  (string * (string * Yield_obs.Json.t) list, Wire.err) result
(** [Ok (op, fields)] is rendered by {!Wire.ok_frame}; [Error] maps table
    domain misses to [out_of_range] (the ["3E"] no-extrapolation controls)
    and anything unexpected to [internal]. *)
