module Flow = Yield_core.Flow
module Diagnostic = Yield_analyse.Diagnostic
module Macromodel = Yield_behavioural.Macromodel

type t = {
  generation : int;
  dir : string;
  control : string;
  perf : Yield_behavioural.Perf_model.t;
  var : Yield_behavioural.Var_model.t;
  macromodel : Macromodel.t;
  findings : Diagnostic.t list;
  loaded_at_s : float;
}

let load ~generation ~dir ~control =
  let findings = Flow.lint_models ~dir ~control () in
  if Diagnostic.count Diagnostic.Error findings > 0 then
    Error ("lint rejected the candidate tables", findings)
  else begin
    match Flow.load_models ~dir ~control with
    | exception Failure msg -> Error (msg, findings)
    | exception Sys_error msg -> Error (msg, findings)
    | perf, var ->
        Ok
          {
            generation;
            dir;
            control;
            perf;
            var;
            macromodel = Macromodel.create perf var;
            findings;
            loaded_at_s = Yield_obs.Clock.now_s ();
          }
  end
