(** The long-lived table server: the paper's "µs table lookup instead of
    hours of simulation", operationalised behind a socket — engineered for
    its worst minute, not its best.

    One control domain owns all IO (accept, line framing, response
    writes) in a [select] loop; request {e handling} fans out over a
    shared {!Yield_exec.Pool} of [jobs] domains.  Every robustness
    property is structural:

    - {b Deadlines}: each admitted query carries its admission timestamp
      ({!Yield_obs.Clock.now_s}, monotonic); one that expires in the queue
      or under handling answers with a typed [timeout] frame.  Transient
      handler failures are retried under a deadline-aware
      {!Yield_resilience.Retry} budget — a retry that cannot finish in
      time is not launched.
    - {b Backpressure}: admission goes through a bounded {!Bqueue}; when
      it is full the request is shed {e immediately} with an [overloaded]
      frame (counted in [serve.shed]) instead of growing memory.  Slow
      readers are bounded too: a connection whose unsent output exceeds
      [max_out_buffer] is dropped, not buffered forever.
    - {b Hot reload} (SIGHUP or [{"op":"reload"}]): the candidate tables
      are linted ({!Snapshot.load}) and an immutable new snapshot swapped
      in atomically only if lint passes.  Requests capture the snapshot
      reference at admission, so in-flight work finishes on the old
      models and a rejected reload changes nothing — zero dropped
      queries either way.
    - {b Health/drain}: [health] reports uptime, generation, queue depth,
      counters and the current snapshot's lint findings (plus the last
      rejected reload's); [ready] is the load-balancer probe.  SIGTERM
      (or [{"op":"shutdown"}]) drains: stop accepting, answer everything
      in flight, flush, exit 0.
    - {b Hostile input}: oversized lines, invalid JSON, unknown ops and
      truncated frames each get a typed error frame (or a silent close
      when no frame boundary exists) and never kill the process.
    - {b Chaos}: the [serve.handler] / [serve.accept] / [serve.reload]
      fault points ({!Yield_resilience.Fault}, [--fault-spec]) inject
      deterministic failures into each of those paths. *)

type config = {
  addr : Addr.t;
  tables_dir : string;
  control : string;  (** table-model control string, e.g. ["3E"] *)
  jobs : int;  (** pool width for request handling *)
  deadline_s : float;  (** per-request deadline; [<= 0] disables *)
  queue_capacity : int;  (** admission queue bound (backpressure) *)
  max_line : int;  (** request lines longer than this are [oversized] *)
  max_out_buffer : int;  (** unsent bytes before a slow client is dropped *)
  max_conns : int;  (** concurrent connections accepted *)
  tick_s : float;  (** select timeout: flag-polling latency bound *)
  drain_grace_s : float;  (** max time to finish in-flight work on drain *)
  handler_attempts : int;  (** retry bound for transient handler failures *)
  log : string -> unit;
}

val default : addr:Addr.t -> tables_dir:string -> config
(** 250 ms deadline, queue 1024, 64 KiB lines, 4 MiB out-buffer, 1024
    conns, 20 ms tick, 5 s drain grace, 3 handler attempts, silent log. *)

val run : ?on_ready:(unit -> unit) -> ?signals:bool -> config -> int
(** Load the initial snapshot (refusing to start — exit 1 — when lint
    finds errors), bind, call [on_ready], serve until drained; returns the
    process exit code.  [signals] (default [true]) installs SIGHUP →
    reload, SIGTERM → drain, SIGPIPE → ignore for the duration (tests
    pass [~signals:false] and drive everything over the wire).

    Counters ([serve.requests] / [.served] / [.rejected] / [.shed] /
    [.timeouts] / [.failed] / [.bad_input] / [.oversized] / [.reloads.*] /
    [.conns.*] / [.slow_client_drops] / [.accept_failures]) and the
    [serve.latency_us] histogram land in the process-wide
    {!Yield_obs.Metrics} registry — the [health] endpoint reports the
    registry values (cumulative per process, like every other metric). *)
