module Json = Yield_obs.Json

type query =
  | Ping
  | Lookup of { gain_db : float; pm_deg : float }
  | Design of { min_gain_db : float; min_pm_deg : float }

type admin = Health | Ready | Reload | Shutdown

type request = Query of query | Admin of admin

type error_code =
  | Bad_json
  | Bad_request
  | Unknown_op
  | Oversized
  | Overloaded
  | Timeout
  | Out_of_range
  | Reload_rejected
  | Draining
  | Internal

let code_to_string = function
  | Bad_json -> "bad_json"
  | Bad_request -> "bad_request"
  | Unknown_op -> "unknown_op"
  | Oversized -> "oversized"
  | Overloaded -> "overloaded"
  | Timeout -> "timeout"
  | Out_of_range -> "out_of_range"
  | Reload_rejected -> "reload_rejected"
  | Draining -> "draining"
  | Internal -> "internal"

type err = { code : error_code; message : string }

let number name obj =
  match Json.member name obj with
  | Some j -> begin
      match Json.number_value j with
      | Some v when Float.is_finite v -> Ok v
      | Some _ | None ->
          Error { code = Bad_request; message = name ^ " must be a finite number" }
    end
  | None -> Error { code = Bad_request; message = "missing field " ^ name }

let ( let* ) = Result.bind

let parse line =
  match Json.parse line with
  | exception Json.Parse_error msg ->
      Error { code = Bad_json; message = msg }
  | Json.Obj _ as obj -> begin
      let id = Json.member "id" obj in
      let tag r = Result.map (fun req -> (req, id)) r in
      match Json.member "op" obj with
      | Some (Json.String op) -> begin
          match op with
          | "ping" -> tag (Ok (Query Ping))
          | "lookup" ->
              tag
                (let* gain_db = number "gain" obj in
                 let* pm_deg = number "pm" obj in
                 Ok (Query (Lookup { gain_db; pm_deg })))
          | "design" ->
              tag
                (let* min_gain_db = number "min_gain" obj in
                 let* min_pm_deg = number "min_pm" obj in
                 Ok (Query (Design { min_gain_db; min_pm_deg })))
          | "health" -> tag (Ok (Admin Health))
          | "ready" -> tag (Ok (Admin Ready))
          | "reload" -> tag (Ok (Admin Reload))
          | "shutdown" -> tag (Ok (Admin Shutdown))
          | other ->
              Error { code = Unknown_op; message = "unknown op " ^ other }
        end
      | Some _ ->
          Error { code = Bad_request; message = "op must be a string" }
      | None -> Error { code = Bad_request; message = "missing field op" }
    end
  | _ -> Error { code = Bad_request; message = "request must be a JSON object" }

let request_to_json = function
  | Query Ping -> Json.Obj [ ("op", Json.String "ping") ]
  | Query (Lookup { gain_db; pm_deg }) ->
      Json.Obj
        [
          ("op", Json.String "lookup");
          ("gain", Json.Float gain_db);
          ("pm", Json.Float pm_deg);
        ]
  | Query (Design { min_gain_db; min_pm_deg }) ->
      Json.Obj
        [
          ("op", Json.String "design");
          ("min_gain", Json.Float min_gain_db);
          ("min_pm", Json.Float min_pm_deg);
        ]
  | Admin Health -> Json.Obj [ ("op", Json.String "health") ]
  | Admin Ready -> Json.Obj [ ("op", Json.String "ready") ]
  | Admin Reload -> Json.Obj [ ("op", Json.String "reload") ]
  | Admin Shutdown -> Json.Obj [ ("op", Json.String "shutdown") ]

let with_id id fields =
  match id with None -> fields | Some i -> fields @ [ ("id", i) ]

let ok_frame ?id ~op fields =
  Json.to_string
    (Json.Obj
       (with_id id ((("ok", Json.Bool true) :: ("op", Json.String op) :: fields))))
  ^ "\n"

let error_frame ?id ?(extra = []) code message =
  Json.to_string
    (Json.Obj
       (with_id id
          ([
             ("ok", Json.Bool false);
             ( "error",
               Json.Obj
                 [
                   ("code", Json.String (code_to_string code));
                   ("message", Json.String message);
                 ] );
           ]
          @ extra)))
  ^ "\n"
