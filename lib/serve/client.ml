module Json = Yield_obs.Json

type t = { fd : Unix.file_descr; inbuf : Buffer.t; mutable eof : bool }

let connect ?(timeout_s = 5.) addr =
  let fd = Addr.connect addr in
  (* SO_RCVTIMEO is not settable on every socket family/platform combo;
     a client without a receive timeout still works, it just blocks *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  { fd; inbuf = Buffer.create 256; eof = false }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_raw t s =
  let len = String.length s in
  let rec push off =
    if off < len then begin
      match Unix.write_substring t.fd s off (len - off) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> push off
      | n -> push (off + n)
    end
  in
  push 0

let send_line t line = send_raw t (line ^ "\n")

let take_line t =
  let data = Buffer.contents t.inbuf in
  match String.index_opt data '\n' with
  | None -> None
  | Some nl ->
      Buffer.clear t.inbuf;
      Buffer.add_substring t.inbuf data (nl + 1)
        (String.length data - nl - 1);
      Some (String.sub data 0 nl)

let recv_line t =
  let chunk = Bytes.create 8192 in
  let rec go () =
    match take_line t with
    | Some line -> Some line
    | None ->
        if t.eof then None
        else begin
          match Unix.read t.fd chunk 0 (Bytes.length chunk) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | 0 ->
              t.eof <- true;
              go ()
          | n ->
              Buffer.add_subbytes t.inbuf chunk 0 n;
              go ()
        end
  in
  go ()

let request t json =
  send_line t (Json.to_string json);
  match recv_line t with
  | None -> failwith "client: connection closed before the response"
  | Some line -> (
      try Json.parse line
      with Json.Parse_error msg ->
        failwith ("client: unparseable response frame: " ^ msg))
