module Json = Yield_obs.Json
module Clock = Yield_obs.Clock
module Metrics = Yield_obs.Metrics
module Span = Yield_obs.Span
module Fault = Yield_resilience.Fault
module Retry = Yield_resilience.Retry
module Pool = Yield_exec.Pool
module Diagnostic = Yield_analyse.Diagnostic
module Perf_model = Yield_behavioural.Perf_model

(* chaos surface: one point per structurally distinct failure path *)
let fp_handler = Fault.point "serve.handler"

let fp_accept = Fault.point "serve.accept"

let fp_reload = Fault.point "serve.reload"

let c_requests = Metrics.counter "serve.requests"

let c_served = Metrics.counter "serve.served"

let c_rejected = Metrics.counter "serve.rejected"

let c_shed = Metrics.counter "serve.shed"

let c_timeouts = Metrics.counter "serve.timeouts"

let c_failed = Metrics.counter "serve.failed"

let c_bad_input = Metrics.counter "serve.bad_input"

let c_oversized = Metrics.counter "serve.oversized"

let c_conns_opened = Metrics.counter "serve.conns.opened"

let c_conns_closed = Metrics.counter "serve.conns.closed"

let c_reloads_ok = Metrics.counter "serve.reloads.ok"

let c_reloads_failed = Metrics.counter "serve.reloads.failed"

let c_slow_client = Metrics.counter "serve.slow_client_drops"

let c_accept_failed = Metrics.counter "serve.accept_failures"

let h_latency = Metrics.histogram "serve.latency_us"

type config = {
  addr : Addr.t;
  tables_dir : string;
  control : string;
  jobs : int;
  deadline_s : float;
  queue_capacity : int;
  max_line : int;
  max_out_buffer : int;
  max_conns : int;
  tick_s : float;
  drain_grace_s : float;
  handler_attempts : int;
  log : string -> unit;
}

let default ~addr ~tables_dir =
  {
    addr;
    tables_dir;
    control = "3E";
    jobs = 1;
    deadline_s = 0.25;
    queue_capacity = 1024;
    max_line = 65536;
    max_out_buffer = 4 * 1024 * 1024;
    max_conns = 1024;
    tick_s = 0.02;
    drain_grace_s = 5.;
    handler_attempts = 3;
    log = ignore;
  }

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  outbuf : Buffer.t;
  mutable out_pos : int;  (** bytes of [outbuf] already on the wire *)
  mutable eof : bool;  (** client half-closed; close once flushed *)
  mutable closed : bool;
  cid : int;
}

type job = {
  conn : conn;
  snapshot : Snapshot.t;
  jquery : Wire.query;
  rid : Json.t option;
  admitted_s : float;
}

type state = {
  cfg : config;
  mutable listener : Unix.file_descr option;
  conns : (int, conn) Hashtbl.t;
  queue : job Bqueue.t;
  snapshot : Snapshot.t Atomic.t;
  pool : Pool.t;
  policy : Retry.policy;
  mutable last_reload_error : (string * Diagnostic.t list) option;
  mutable draining : bool;
  mutable drain_started_s : float;
  started_s : float;
  mutable next_cid : int;
}

(* signal flags are necessarily process-global; [run] resets them on entry *)
let sighup_flag = Atomic.make false

let sigterm_flag = Atomic.make false

(* ---------- connection IO (control domain only) ---------- *)

let pending_out conn = Buffer.length conn.outbuf - conn.out_pos

let close_conn st conn =
  if not conn.closed then begin
    conn.closed <- true;
    Hashtbl.remove st.conns conn.cid;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Metrics.incr c_conns_closed
  end

let flush_conn st conn =
  if (not conn.closed) && pending_out conn > 0 then begin
    let s = Buffer.contents conn.outbuf in
    let rec push () =
      let remaining = String.length s - conn.out_pos in
      if remaining > 0 then begin
        match Unix.write_substring conn.fd s conn.out_pos remaining with
        | exception
            Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
          ->
            ()
        | exception Unix.Unix_error _ -> close_conn st conn
        | n ->
            conn.out_pos <- conn.out_pos + n;
            if n > 0 && conn.out_pos < String.length s then push ()
      end
    in
    push ();
    if (not conn.closed) && pending_out conn = 0 then begin
      Buffer.clear conn.outbuf;
      conn.out_pos <- 0;
      if conn.eof then close_conn st conn
    end
  end

let send st conn frame =
  if not conn.closed then begin
    Buffer.add_string conn.outbuf frame;
    flush_conn st conn;
    (* a reader that cannot keep up must not become our memory problem *)
    if (not conn.closed) && pending_out conn > st.cfg.max_out_buffer then begin
      Metrics.incr c_slow_client;
      st.cfg.log (Printf.sprintf "conn %d dropped: slow client" conn.cid);
      close_conn st conn
    end
  end

(* ---------- query handling (pool workers; everything is caught) ---------- *)

let observe_latency job =
  Metrics.observe h_latency ((Clock.now_s () -. job.admitted_s) *. 1e6)

let handle_job st job =
  let deadline =
    if st.cfg.deadline_s > 0. then Some (job.admitted_s +. st.cfg.deadline_s)
    else None
  in
  let expired () =
    match deadline with Some d -> Clock.now_s () > d | None -> false
  in
  let frame =
    if expired () then begin
      Metrics.incr c_timeouts;
      Wire.error_frame ?id:job.rid Wire.Timeout "deadline expired in queue"
    end
    else begin
      let classify (e : Wire.err) =
        (* injected/unexpected handler failures are worth retrying inside
           the deadline; semantic answers (out_of_range, ...) are final *)
        match e.Wire.code with
        | Wire.Internal -> Retry.Transient
        | _ -> Retry.Permanent
      in
      let result =
        Retry.with_retries ?deadline_s:deadline st.policy ~classify
          (fun ~attempt:_ ->
            if Fault.fire fp_handler then
              Error
                {
                  Wire.code = Wire.Internal;
                  message = "injected handler failure";
                }
            else begin
              try Handle.query job.snapshot job.jquery
              with e ->
                Error
                  {
                    Wire.code = Wire.Internal;
                    message = "handler exception: " ^ Printexc.to_string e;
                  }
            end)
      in
      match result with
      | Ok (op, fields) ->
          if expired () then begin
            (* the answer exists but the contract is the deadline: a late
               success is still a timeout to the client *)
            Metrics.incr c_timeouts;
            Wire.error_frame ?id:job.rid Wire.Timeout "deadline expired"
          end
          else begin
            Metrics.incr c_served;
            Wire.ok_frame ?id:job.rid ~op fields
          end
      | Error ({ Wire.code = Wire.Internal; _ } as e) ->
          Metrics.incr c_failed;
          Wire.error_frame ?id:job.rid e.Wire.code e.Wire.message
      | Error e ->
          Metrics.incr c_rejected;
          Wire.error_frame ?id:job.rid e.Wire.code e.Wire.message
    end
  in
  observe_latency job;
  frame

let dispatch st =
  let batch = Bqueue.pop_up_to st.queue ~max:(Stdlib.max 1 (st.cfg.jobs * 4)) in
  match batch with
  | [] -> ()
  | jobs ->
      let arr = Array.of_list jobs in
      let n = Array.length arr in
      let frames =
        Span.with_ ~name:"serve.batch" ~key:(Span.next_key "serve.batch")
          (fun () -> Pool.map st.pool ~n (fun i -> handle_job st arr.(i)))
      in
      Array.iteri (fun i frame -> send st arr.(i).conn frame) frames

(* ---------- admin ops (inline on the control domain) ---------- *)

let counters_json () =
  let value c = Json.Int (Metrics.value c) in
  Json.Obj
    [
      ("requests", value c_requests);
      ("served", value c_served);
      ("rejected", value c_rejected);
      ("shed", value c_shed);
      ("timeouts", value c_timeouts);
      ("failed", value c_failed);
      ("bad_input", value c_bad_input);
      ("oversized", value c_oversized);
      ("conns_opened", value c_conns_opened);
      ("conns_closed", value c_conns_closed);
      ("reloads_ok", value c_reloads_ok);
      ("reloads_failed", value c_reloads_failed);
      ("slow_client_drops", value c_slow_client);
      ("accept_failures", value c_accept_failed);
    ]

let health_fields st =
  let snap = Atomic.get st.snapshot in
  let glo, ghi = Perf_model.gain_range snap.Snapshot.perf in
  let plo, phi = Perf_model.pm_range snap.Snapshot.perf in
  [
    ("uptime_s", Json.Float (Clock.now_s () -. st.started_s));
    ("generation", Json.Int snap.Snapshot.generation);
    ("tables_dir", Json.String snap.Snapshot.dir);
    ("control", Json.String snap.Snapshot.control);
    ("draining", Json.Bool st.draining);
    ("jobs", Json.Int st.cfg.jobs);
    ( "queue",
      Json.Obj
        [
          ("depth", Json.Int (Bqueue.length st.queue));
          ("capacity", Json.Int (Bqueue.capacity st.queue));
        ] );
    ( "model",
      Json.Obj
        [
          ("points", Json.Int (Perf_model.size snap.Snapshot.perf));
          ("gain_range", Json.List [ Json.Float glo; Json.Float ghi ]);
          ("pm_range", Json.List [ Json.Float plo; Json.Float phi ]);
        ] );
    ("counters", counters_json ());
    ("lint", Diagnostic.list_to_json snap.Snapshot.findings);
    ( "last_reload_error",
      match st.last_reload_error with
      | None -> Json.Null
      | Some (msg, findings) ->
          Json.Obj
            [
              ("message", Json.String msg);
              ("findings", Diagnostic.list_to_json findings);
            ] );
  ]

let do_reload st ~respond =
  let current = Atomic.get st.snapshot in
  let fail msg findings =
    Metrics.incr c_reloads_failed;
    st.last_reload_error <- Some (msg, findings);
    st.cfg.log ("reload rejected: " ^ msg);
    respond
      (Wire.error_frame
         ~extra:[ ("findings", Diagnostic.list_to_json findings) ]
         Wire.Reload_rejected msg)
  in
  if Fault.fire fp_reload then fail "injected reload failure" []
  else begin
    match
      Snapshot.load
        ~generation:(current.Snapshot.generation + 1)
        ~dir:st.cfg.tables_dir ~control:st.cfg.control
    with
    | Error (msg, findings) -> fail msg findings
    | Ok snap ->
        (* the swap is the whole commit: requests admitted before this
           instant keep the old snapshot they captured, requests admitted
           after it see the new one — nothing in between *)
        Atomic.set st.snapshot snap;
        st.last_reload_error <- None;
        Metrics.incr c_reloads_ok;
        st.cfg.log
          (Printf.sprintf "reloaded: generation %d (%d findings)"
             snap.Snapshot.generation
             (List.length snap.Snapshot.findings));
        respond
          (Wire.ok_frame ~op:"reload"
             [
               ("generation", Json.Int snap.Snapshot.generation);
               ("findings", Diagnostic.list_to_json snap.Snapshot.findings);
             ])
  end

let begin_drain st reason =
  if not st.draining then begin
    st.draining <- true;
    st.drain_started_s <- Clock.now_s ();
    st.cfg.log ("draining: " ^ reason);
    (match st.listener with
    | Some fd ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Addr.unlink st.cfg.addr
    | None -> ());
    st.listener <- None
  end

let handle_admin st conn id admin =
  let respond frame = send st conn frame in
  match admin with
  | Wire.Health -> respond (Wire.ok_frame ?id ~op:"health" (health_fields st))
  | Wire.Ready ->
      let snap = Atomic.get st.snapshot in
      respond
        (Wire.ok_frame ?id ~op:"ready"
           [
             ("ready", Json.Bool (not st.draining));
             ("generation", Json.Int snap.Snapshot.generation);
           ])
  | Wire.Reload -> do_reload st ~respond:(fun frame -> send st conn frame)
  | Wire.Shutdown ->
      respond (Wire.ok_frame ?id ~op:"shutdown" [ ("draining", Json.Bool true) ]);
      begin_drain st "shutdown op"

(* ---------- request admission ---------- *)

let process_line st conn line =
  let line =
    (* tolerate CRLF clients *)
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  if line <> "" then begin
    match Wire.parse line with
    | Error err ->
        Metrics.incr c_bad_input;
        send st conn (Wire.error_frame err.Wire.code err.Wire.message)
    | Ok (Wire.Admin admin, id) -> handle_admin st conn id admin
    | Ok (Wire.Query q, rid) ->
        if st.draining then
          send st conn
            (Wire.error_frame ?id:rid Wire.Draining "server is draining")
        else begin
          Metrics.incr c_requests;
          let job =
            {
              conn;
              snapshot = Atomic.get st.snapshot;
              jquery = q;
              rid;
              admitted_s = Clock.now_s ();
            }
          in
          if not (Bqueue.try_push st.queue job) then begin
            Metrics.incr c_shed;
            send st conn
              (Wire.error_frame ?id:rid Wire.Overloaded
                 "request queue is full — load shed")
          end
        end
  end

let drain_lines st conn =
  let data = Buffer.contents conn.inbuf in
  Buffer.clear conn.inbuf;
  let len = String.length data in
  let rec go start =
    if start >= len then ()
    else begin
      match String.index_from_opt data start '\n' with
      | Some nl ->
          let line = String.sub data start (nl - start) in
          if String.length line > st.cfg.max_line then begin
            Metrics.incr c_oversized;
            send st conn
              (Wire.error_frame Wire.Oversized
                 (Printf.sprintf "request line exceeds %d bytes" st.cfg.max_line))
          end
          else process_line st conn line;
          go (nl + 1)
      | None ->
          let rest = len - start in
          if rest > st.cfg.max_line then begin
            (* no frame boundary in sight: answer and cut the connection,
               or the buffer grows without limit *)
            Metrics.incr c_oversized;
            send st conn
              (Wire.error_frame Wire.Oversized
                 (Printf.sprintf "request line exceeds %d bytes" st.cfg.max_line));
            close_conn st conn
          end
          else Buffer.add_substring conn.inbuf data start rest
    end
  in
  go 0

let read_conn st conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()
  | exception Unix.Unix_error _ -> close_conn st conn
  | 0 ->
      conn.eof <- true;
      if pending_out conn = 0 then close_conn st conn
  | n ->
      Buffer.add_subbytes conn.inbuf chunk 0 n;
      drain_lines st conn

let accept_ready st =
  match st.listener with
  | None -> ()
  | Some lfd ->
      if Fault.fire fp_accept then begin
        (* simulated accept failure: the pending connection stays queued in
           the kernel and is retried on the next wake *)
        Metrics.incr c_accept_failed;
        st.cfg.log "accept failed (injected)"
      end
      else begin
        let rec go () =
          match Unix.accept lfd with
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
              ()
          | exception Unix.Unix_error _ -> Metrics.incr c_accept_failed
          | fd, _ ->
              if Hashtbl.length st.conns >= st.cfg.max_conns then begin
                Metrics.incr c_shed;
                let frame =
                  Wire.error_frame Wire.Overloaded "connection limit reached"
                in
                (try
                   ignore
                     (Unix.write_substring fd frame 0 (String.length frame))
                 with Unix.Unix_error _ -> ());
                try Unix.close fd with Unix.Unix_error _ -> ()
              end
              else begin
                Unix.set_nonblock fd;
                let cid = st.next_cid in
                st.next_cid <- cid + 1;
                Hashtbl.replace st.conns cid
                  {
                    fd;
                    inbuf = Buffer.create 256;
                    outbuf = Buffer.create 256;
                    out_pos = 0;
                    eof = false;
                    closed = false;
                    cid;
                  };
                Metrics.incr c_conns_opened;
                go ()
              end
        in
        go ()
      end

(* ---------- the control loop ---------- *)

let run ?(on_ready = fun () -> ()) ?(signals = true) cfg =
  Atomic.set sighup_flag false;
  Atomic.set sigterm_flag false;
  match Snapshot.load ~generation:1 ~dir:cfg.tables_dir ~control:cfg.control with
  | Error (msg, findings) ->
      cfg.log ("cannot load models: " ^ msg);
      cfg.log (Diagnostic.list_to_text findings);
      1
  | Ok snap0 -> begin
      match Addr.listen cfg.addr with
      | exception Unix.Unix_error (e, _, arg) ->
          cfg.log
            (Printf.sprintf "cannot listen on %s: %s %s"
               (Addr.to_string cfg.addr) (Unix.error_message e) arg);
          1
      | lfd ->
          Unix.set_nonblock lfd;
          let restore_signals =
            if signals then begin
              let prev_hup =
                Sys.signal Sys.sighup
                  (Sys.Signal_handle (fun _ -> Atomic.set sighup_flag true))
              in
              let prev_term =
                Sys.signal Sys.sigterm
                  (Sys.Signal_handle (fun _ -> Atomic.set sigterm_flag true))
              in
              let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
              fun () ->
                Sys.set_signal Sys.sighup prev_hup;
                Sys.set_signal Sys.sigterm prev_term;
                Sys.set_signal Sys.sigpipe prev_pipe
            end
            else begin
              (* SIGPIPE would still kill us on a peer reset mid-write *)
              let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
              fun () -> Sys.set_signal Sys.sigpipe prev_pipe
            end
          in
          let pool = Pool.create ~jobs:cfg.jobs () in
          let st =
            {
              cfg;
              listener = Some lfd;
              conns = Hashtbl.create 64;
              queue = Bqueue.create ~capacity:cfg.queue_capacity ();
              snapshot = Atomic.make snap0;
              pool;
              policy =
                Retry.policy ~max_attempts:cfg.handler_attempts "serve.handler";
              last_reload_error = None;
              draining = false;
              drain_started_s = 0.;
              started_s = Clock.now_s ();
              next_cid = 0;
            }
          in
          cfg.log
            (Printf.sprintf "serving %s on %s (jobs %d, deadline %g ms)"
               cfg.tables_dir (Addr.to_string cfg.addr) cfg.jobs
               (cfg.deadline_s *. 1e3));
          on_ready ();
          let conn_list () = Hashtbl.fold (fun _ c acc -> c :: acc) st.conns [] in
          let finished = ref false in
          while not !finished do
            let conns = conn_list () in
            let rds =
              (match st.listener with Some fd -> [ fd ] | None -> [])
              @ List.filter_map
                  (fun c -> if c.eof || c.closed then None else Some c.fd)
                  conns
            in
            let wrs =
              List.filter_map
                (fun c ->
                  if (not c.closed) && pending_out c > 0 then Some c.fd
                  else None)
                conns
            in
            let readable, writable =
              match Unix.select rds wrs [] cfg.tick_s with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
              | r, w, _ -> (r, w)
            in
            (match st.listener with
            | Some fd when List.memq fd readable -> accept_ready st
            | Some _ | None -> ());
            List.iter
              (fun c ->
                if (not c.closed) && List.memq c.fd readable then
                  read_conn st c)
              conns;
            if Atomic.exchange sighup_flag false then
              do_reload st ~respond:(fun _frame -> ());
            if Atomic.get sigterm_flag then begin_drain st "SIGTERM";
            dispatch st;
            List.iter
              (fun c ->
                if (not c.closed) && List.memq c.fd writable then
                  flush_conn st c)
              conns;
            if st.draining then begin
              let all_flushed =
                Hashtbl.fold
                  (fun _ c acc -> acc && pending_out c = 0)
                  st.conns true
              in
              if
                (Bqueue.length st.queue = 0 && all_flushed)
                || Clock.now_s () -. st.drain_started_s > cfg.drain_grace_s
              then finished := true
            end
          done;
          (* drained: everything admitted was answered and flushed *)
          Hashtbl.iter (fun _ c -> close_conn st c) (Hashtbl.copy st.conns);
          (match st.listener with
          | Some fd ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              Addr.unlink cfg.addr
          | None -> ());
          Pool.shutdown pool;
          restore_signals ();
          cfg.log
            (Printf.sprintf
               "drained: %d served, %d shed, %d timeouts, %d failed"
               (Metrics.value c_served) (Metrics.value c_shed)
               (Metrics.value c_timeouts) (Metrics.value c_failed));
          0
    end
