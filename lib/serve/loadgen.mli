(** Closed-loop load generator for the table server — the bench behind
    [BENCH_serve.json] and the CI smoke job.

    [clients] domains each hold one connection and issue synchronous
    requests back-to-back (closed loop: offered load adapts to observed
    latency).  The op mix is drawn from a per-client deterministic RNG
    seeded with [seed + client index], and lookup/design arguments are
    sampled {e inside} the served model's ranges (read from the [health]
    endpoint up front), so a healthy run has zero [out_of_range] noise.

    Every response is classified by its frame ([ok] / [overloaded] /
    [timeout] / other error) and timed; latencies are exact (every request
    kept, merged and sorted across clients), not reservoir-sampled. *)

type mix = { ping : int; lookup : int; design : int }
(** Relative op weights; at least one must be positive. *)

type result = {
  clients : int;
  elapsed_s : float;
  sent : int;
  ok : int;
  errors : int;  (** failure frames other than overloaded/timeout *)
  overloaded : int;
  timeouts : int;
  throughput_rps : float;  (** ok frames per second *)
  latency_us : float array;  (** sorted, one entry per response *)
}

val run :
  ?seed:int ->
  ?mix:mix ->
  addr:Addr.t ->
  clients:int ->
  duration_s:float ->
  unit ->
  (result, string) Stdlib.result
(** Probe [health] for the model ranges, then drive [clients] connections
    for [duration_s].  Default mix [{ping = 1; lookup = 6; design = 3}],
    default [seed] 42.  [Error] when the server cannot be reached or the
    health probe fails. *)

val to_json : result -> Yield_obs.Json.t
(** The [BENCH_serve.json] document ([yieldlab-bench-serve/v1]):
    [requests {sent; ok; errors; overloaded; timeouts}], [throughput_rps]
    and [latency_us {count; mean; min; max; p50; p90; p95; p99}] (via
    {!Yield_obs.Histogram.quantile_of_sorted} over the exact latencies). *)

val to_text : result -> string
(** Human-readable one-screen summary for the CLI. *)
