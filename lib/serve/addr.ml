type t = Unix_sock of string | Tcp of { host : string; port : int }

let parse s =
  let prefix p = String.length s > String.length p && String.sub s 0 (String.length p) = p in
  let after p = String.sub s (String.length p) (String.length s - String.length p) in
  if prefix "unix:" then begin
    match after "unix:" with
    | "" -> Error "unix: needs a socket path"
    | path -> Ok (Unix_sock path)
  end
  else if prefix "tcp:" then begin
    let rest = after "tcp:" in
    match String.rindex_opt rest ':' with
    | None -> Error "tcp: needs HOST:PORT"
    | Some i -> begin
        let host = String.sub rest 0 i in
        let port = String.sub rest (i + 1) (String.length rest - i - 1) in
        match (host, int_of_string_opt port) with
        | "", _ -> Error "tcp: needs a host (e.g. tcp:127.0.0.1:7878)"
        | _, Some p when p > 0 && p < 65536 -> Ok (Tcp { host; port = p })
        | _, (Some _ | None) -> Error ("bad tcp port " ^ port)
      end
  end
  else
    Error
      (Printf.sprintf "bad address %S: expected unix:PATH or tcp:HOST:PORT" s)

let to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp { host; port } -> Printf.sprintf "tcp:%s:%d" host port

let unlink = function
  | Tcp _ -> ()
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

let sockaddr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp { host; port } ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ ->
          (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.ADDR_INET (ip, port)

let domain = function Unix_sock _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET

let listen ?(backlog = 128) t =
  unlink t;
  let fd = Unix.socket (domain t) Unix.SOCK_STREAM 0 in
  (try
     (match t with
     | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
     | Unix_sock _ -> ());
     Unix.bind fd (sockaddr t);
     Unix.listen fd backlog
   with e ->
     Unix.close fd;
     raise e);
  fd

let connect t =
  let fd = Unix.socket (domain t) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (sockaddr t)
   with e ->
     Unix.close fd;
     raise e);
  fd
