module Json = Yield_obs.Json
module Clock = Yield_obs.Clock
module Histogram = Yield_obs.Histogram

type mix = { ping : int; lookup : int; design : int }

type result = {
  clients : int;
  elapsed_s : float;
  sent : int;
  ok : int;
  errors : int;
  overloaded : int;
  timeouts : int;
  throughput_rps : float;
  latency_us : float array;
}

type ranges = {
  gain_lo : float;
  gain_hi : float;
  pm_lo : float;
  pm_hi : float;
}

let probe_ranges addr =
  match Client.connect addr with
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cannot reach %s: %s" (Addr.to_string addr)
           (Unix.error_message e))
  | c -> (
      let frame =
        try Ok (Client.request c (Json.Obj [ ("op", Json.String "health") ]))
        with Failure msg | Unix.Unix_error (_, msg, _) -> Error msg
      in
      Client.close c;
      match frame with
      | Error msg -> Error ("health probe failed: " ^ msg)
      | Ok frame -> (
          let pair path =
            match Json.member "model" frame with
            | Some model -> (
                match Json.member path model with
                | Some (Json.List [ a; b ]) -> (
                    match (Json.number_value a, Json.number_value b) with
                    | Some lo, Some hi -> Some (lo, hi)
                    | _ -> None)
                | _ -> None)
            | None -> None
          in
          match (pair "gain_range", pair "pm_range") with
          | Some (gain_lo, gain_hi), Some (pm_lo, pm_hi) ->
              Ok { gain_lo; gain_hi; pm_lo; pm_hi }
          | _ -> Error "health probe failed: no model ranges in the frame"))

type tally = {
  mutable t_sent : int;
  mutable t_ok : int;
  mutable t_errors : int;
  mutable t_overloaded : int;
  mutable t_timeouts : int;
  lat : float list ref;
}

let classify tally frame lat_us =
  tally.lat := lat_us :: !(tally.lat);
  match Json.member "ok" frame with
  | Some (Json.Bool true) -> tally.t_ok <- tally.t_ok + 1
  | _ -> (
      let code =
        match Json.member "error" frame with
        | Some err -> (
            match Json.member "code" err with
            | Some (Json.String c) -> c
            | _ -> "")
        | None -> ""
      in
      match code with
      | "overloaded" -> tally.t_overloaded <- tally.t_overloaded + 1
      | "timeout" -> tally.t_timeouts <- tally.t_timeouts + 1
      | _ -> tally.t_errors <- tally.t_errors + 1)

(* inner 80% of each range: stay clear of the edges so interpolation
   noise at the table boundary cannot turn into out_of_range chatter *)
let sample_in rng lo hi =
  let span = hi -. lo in
  lo +. (span *. 0.1) +. (Random.State.float rng (span *. 0.8))

let pick_op rng mix ranges =
  let total = mix.ping + mix.lookup + mix.design in
  let r = Random.State.int rng total in
  if r < mix.ping then Json.Obj [ ("op", Json.String "ping") ]
  else if r < mix.ping + mix.lookup then
    Json.Obj
      [
        ("op", Json.String "lookup");
        ("gain", Json.Float (sample_in rng ranges.gain_lo ranges.gain_hi));
        ("pm", Json.Float (sample_in rng ranges.pm_lo ranges.pm_hi));
      ]
  else
    Json.Obj
      [
        ("op", Json.String "design");
        ("min_gain", Json.Float (sample_in rng ranges.gain_lo ranges.gain_hi));
        ("min_pm", Json.Float (sample_in rng ranges.pm_lo ranges.pm_hi));
      ]

let client_loop ~addr ~seed ~mix ~ranges ~until_s =
  let tally =
    {
      t_sent = 0;
      t_ok = 0;
      t_errors = 0;
      t_overloaded = 0;
      t_timeouts = 0;
      lat = ref [];
    }
  in
  (match Client.connect addr with
  | exception Unix.Unix_error _ -> ()
  | c ->
      let rng = Random.State.make [| seed |] in
      (try
         while Clock.now_s () < until_s do
           let req = pick_op rng mix ranges in
           let t0 = Clock.now_s () in
           tally.t_sent <- tally.t_sent + 1;
           let frame = Client.request c req in
           classify tally frame ((Clock.now_s () -. t0) *. 1e6)
         done
       with Failure _ | Unix.Unix_error _ ->
         (* server drained or dropped us mid-run: keep what we measured *)
         ());
      Client.close c);
  tally

let default_mix = { ping = 1; lookup = 6; design = 3 }

let run ?(seed = 42) ?(mix = default_mix) ~addr ~clients ~duration_s () =
  if clients < 1 then invalid_arg "Loadgen.run: clients < 1";
  if mix.ping + mix.lookup + mix.design <= 0 then
    invalid_arg "Loadgen.run: empty op mix";
  match probe_ranges addr with
  | Error _ as e -> e
  | Ok ranges ->
      let started = Clock.now_s () in
      let until_s = started +. duration_s in
      let domains =
        List.init (clients - 1) (fun i ->
            Domain.spawn (fun () ->
                client_loop ~addr ~seed:(seed + i + 1) ~mix ~ranges ~until_s))
      in
      let own = client_loop ~addr ~seed ~mix ~ranges ~until_s in
      let tallies = own :: List.map Domain.join domains in
      let elapsed_s = Clock.now_s () -. started in
      let sum f = List.fold_left (fun acc t -> acc + f t) 0 tallies in
      let ok = sum (fun t -> t.t_ok) in
      let latency_us =
        Array.of_list (List.concat_map (fun t -> !(t.lat)) tallies)
      in
      Array.sort Float.compare latency_us;
      Ok
        {
          clients;
          elapsed_s;
          sent = sum (fun t -> t.t_sent);
          ok;
          errors = sum (fun t -> t.t_errors);
          overloaded = sum (fun t -> t.t_overloaded);
          timeouts = sum (fun t -> t.t_timeouts);
          throughput_rps =
            (if elapsed_s > 0. then float_of_int ok /. elapsed_s else 0.);
          latency_us;
        }

let latency_json r =
  let n = Array.length r.latency_us in
  let q p = Histogram.quantile_of_sorted r.latency_us p in
  let mean =
    if n = 0 then Float.nan
    else Array.fold_left ( +. ) 0. r.latency_us /. float_of_int n
  in
  Json.Obj
    [
      ("count", Json.Int n);
      ("mean", Json.Float mean);
      ("min", Json.Float (if n = 0 then Float.nan else r.latency_us.(0)));
      ("max", Json.Float (if n = 0 then Float.nan else r.latency_us.(n - 1)));
      ("p50", Json.Float (q 0.5));
      ("p90", Json.Float (q 0.9));
      ("p95", Json.Float (q 0.95));
      ("p99", Json.Float (q 0.99));
    ]

let to_json r =
  Json.Obj
    [
      ("schema", Json.String "yieldlab-bench-serve/v1");
      ("clients", Json.Int r.clients);
      ("elapsed_s", Json.Float r.elapsed_s);
      ( "requests",
        Json.Obj
          [
            ("sent", Json.Int r.sent);
            ("ok", Json.Int r.ok);
            ("errors", Json.Int r.errors);
            ("overloaded", Json.Int r.overloaded);
            ("timeouts", Json.Int r.timeouts);
          ] );
      ("throughput_rps", Json.Float r.throughput_rps);
      ("latency_us", latency_json r);
    ]

let to_text r =
  let n = Array.length r.latency_us in
  let q p =
    if n = 0 then "-"
    else
      Printf.sprintf "%.0f" (Histogram.quantile_of_sorted r.latency_us p)
  in
  Printf.sprintf
    "loadgen: %d clients, %.2f s\n\
    \  sent %d | ok %d | errors %d | overloaded %d | timeouts %d\n\
    \  throughput %.0f req/s\n\
    \  latency_us p50 %s | p95 %s | p99 %s"
    r.clients r.elapsed_s r.sent r.ok r.errors r.overloaded r.timeouts
    r.throughput_rps (q 0.5) (q 0.95) (q 0.99)
