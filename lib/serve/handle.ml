module Json = Yield_obs.Json
module Perf_model = Yield_behavioural.Perf_model
module Yield_target = Yield_behavioural.Yield_target

let design_json (p : Perf_model.point) =
  Json.Obj
    [
      ("gain", Json.Float p.Perf_model.gain_db);
      ("pm", Json.Float p.Perf_model.pm_deg);
      ( "params",
        Json.List
          (Array.to_list (Array.map (fun v -> Json.Float v) p.Perf_model.params))
      );
      ("rout", Json.Float p.Perf_model.rout);
      ("fu", Json.Float p.Perf_model.unity_gain_hz);
    ]

let query (snap : Snapshot.t) q =
  match q with
  | Wire.Ping -> Ok ("ping", [])
  | Wire.Lookup { gain_db; pm_deg } -> begin
      (* [Perf_model.lookup] projects the query onto the front curve, so it
         would silently clamp a wild query; the server speaks the "3E"
         no-extrapolation contract and refuses outside the table domain *)
      let out_of name value (lo, hi) =
        if value < lo || value > hi then
          Some
            (Printf.sprintf "%s %g outside the model domain [%g, %g]" name
               value lo hi)
        else None
      in
      let domain_miss =
        match out_of "gain" gain_db (Perf_model.gain_range snap.Snapshot.perf)
        with
        | Some _ as m -> m
        | None -> out_of "pm" pm_deg (Perf_model.pm_range snap.Snapshot.perf)
      in
      match domain_miss with
      | Some message -> Error { Wire.code = Wire.Out_of_range; message }
      | None -> begin
          match Perf_model.lookup snap.Snapshot.perf ~gain_db ~pm_deg with
          | point -> Ok ("lookup", [ ("design", design_json point) ])
          | exception Yield_table.Table1d.Out_of_range { value; lo; hi } ->
              Error
                {
                  Wire.code = Wire.Out_of_range;
                  message =
                    Printf.sprintf "%g outside the model domain [%g, %g]"
                      value lo hi;
                }
        end
    end
  | Wire.Design { min_gain_db; min_pm_deg } -> begin
      let spec = { Yield_target.min_gain_db; min_pm_deg } in
      match Yield_target.plan snap.Snapshot.macromodel spec with
      | Error msg -> Error { Wire.code = Wire.Out_of_range; message = msg }
      | Ok plan ->
          let p = plan.Yield_target.proposal in
          let m = p.Yield_behavioural.Macromodel.design in
          Ok
            ( "design",
              [
                ( "proposal",
                  Json.Obj
                    [
                      ( "gain_delta_pct",
                        Json.Float p.Yield_behavioural.Macromodel.gain_delta_pct
                      );
                      ( "pm_delta_pct",
                        Json.Float p.Yield_behavioural.Macromodel.pm_delta_pct );
                      ( "proposed_gain",
                        Json.Float
                          p.Yield_behavioural.Macromodel.proposed_gain_db );
                      ( "proposed_pm",
                        Json.Float p.Yield_behavioural.Macromodel.proposed_pm_deg
                      );
                    ] );
                ("design", design_json m);
                ( "worst_case",
                  Json.Obj
                    [
                      ("gain", Json.Float plan.Yield_target.worst_case_gain_db);
                      ("pm", Json.Float plan.Yield_target.worst_case_pm_deg);
                    ] );
                ( "predicted_yield",
                  Json.Float (Yield_target.predicted_yield plan) );
              ] )
    end
