(** A bounded FIFO with explicit rejection — the server's admission queue.

    The bound is the backpressure policy: once [capacity] requests are
    waiting, {!try_push} refuses and the caller sheds the load with a typed
    [overloaded] frame instead of growing memory without limit.  Mutex-
    protected, so depth can be read (for [health]) while the control loop
    pushes and pops. *)

type 'a t

val create : capacity:int -> unit -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int

val try_push : 'a t -> 'a -> bool
(** [false] when the queue is full — the item was {e not} admitted. *)

val pop_up_to : 'a t -> max:int -> 'a list
(** Remove and return up to [max] items in FIFO order ([[]] when empty). *)
