type 'a t = {
  capacity : int;
  q : 'a Queue.t;
  lock : Mutex.t;
}

let create ~capacity () =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity < 1";
  { capacity; q = Queue.create (); lock = Mutex.create () }

let capacity t = t.capacity

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let length t = locked t (fun () -> Queue.length t.q)

let try_push t x =
  locked t (fun () ->
      if Queue.length t.q >= t.capacity then false
      else begin
        Queue.push x t.q;
        true
      end)

let pop_up_to t ~max =
  locked t (fun () ->
      let rec go n acc =
        if n >= max || Queue.is_empty t.q then List.rev acc
        else go (n + 1) (Queue.pop t.q :: acc)
      in
      go 0 [])
