type event = {
  name : string;
  ts_us : float;
  dur_us : float;
  tid : int;
  depth : int;
  key : int;
}

type phase = Opened | Closed

(* event timestamps are relative to the first use of the library, keeping
   them small enough to survive float printing exactly *)
let epoch_us = Clock.now_us ()

(* per-domain nesting state only; events themselves go to the global ring *)
type local = { mutable depth : int; tid : int }

let dls_key =
  Domain.DLS.new_key (fun () -> { depth = 0; tid = (Domain.self () :> int) })

(* ---------- the bounded ring (what the text summary and exit-time sinks
   read): a constant-size window over the most recent kept events, so
   in-process telemetry memory is O(1) in run length ---------- *)

let registry_lock = Mutex.create ()

let default_ring_capacity = 4096

type ring = {
  store : event array;
  mutable head : int;  (** next write position *)
  mutable size : int;
  mutable dropped : int;  (** events overwritten since the last [clear] *)
}

let make_ring capacity =
  if capacity <= 0 then invalid_arg "Span.set_ring_capacity: capacity <= 0";
  {
    store =
      Array.make capacity
        { name = ""; ts_us = 0.; dur_us = 0.; tid = 0; depth = 0; key = 0 };
    head = 0;
    size = 0;
    dropped = 0;
  }

let ring = ref (make_ring default_ring_capacity)

let set_ring_capacity capacity =
  let fresh = make_ring capacity in
  Mutex.lock registry_lock;
  ring := fresh;
  Mutex.unlock registry_lock

let ring_capacity () = Array.length !ring.store

let push e =
  Mutex.lock registry_lock;
  let r = !ring in
  let cap = Array.length r.store in
  r.store.(r.head) <- e;
  r.head <- (r.head + 1) mod cap;
  if r.size < cap then r.size <- r.size + 1 else r.dropped <- r.dropped + 1;
  Mutex.unlock registry_lock

let events () =
  Mutex.lock registry_lock;
  let r = !ring in
  let cap = Array.length r.store in
  let out =
    List.init r.size (fun i -> r.store.((r.head - r.size + i + (2 * cap)) mod cap))
  in
  Mutex.unlock registry_lock;
  List.sort (fun a b -> Float.compare a.ts_us b.ts_us) out

let dropped () =
  Mutex.lock registry_lock;
  let d = !ring.dropped in
  Mutex.unlock registry_lock;
  d

let clear () =
  Mutex.lock registry_lock;
  let r = !ring in
  r.head <- 0;
  r.size <- 0;
  r.dropped <- 0;
  Mutex.unlock registry_lock

(* ---------- the live event bus: registered sinks see every kept span as
   it opens and closes, so telemetry can stream to disk instead of
   accumulating in memory ---------- *)

type listener = { id : int; f : phase -> event -> unit }

let listeners : listener list Atomic.t = Atomic.make []

let next_listener_id = Atomic.make 0

let subscribe f =
  let id = Atomic.fetch_and_add next_listener_id 1 in
  let rec add () =
    let cur = Atomic.get listeners in
    if not (Atomic.compare_and_set listeners cur ({ id; f } :: cur)) then add ()
  in
  add ();
  id

let unsubscribe id =
  let rec remove () =
    let cur = Atomic.get listeners in
    let next = List.filter (fun l -> l.id <> id) cur in
    if not (Atomic.compare_and_set listeners cur next) then remove ()
  in
  remove ()

let emit phase e =
  List.iter (fun l -> l.f phase e) (Atomic.get listeners)

(* deterministic per-name ordinals for span keys: the instrumentation site
   asks for the next ordinal *before* fanning work out, so the key — and
   with it the sampling decision — is independent of the jobs count *)
let seq_lock = Mutex.create ()

let seqs : (string, int ref) Hashtbl.t = Hashtbl.create 8

let next_key name =
  Mutex.lock seq_lock;
  let r =
    match Hashtbl.find_opt seqs name with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add seqs name r;
        r
  in
  let k = !r in
  incr r;
  Mutex.unlock seq_lock;
  k

let reset_keys () =
  Mutex.lock seq_lock;
  Hashtbl.reset seqs;
  Mutex.unlock seq_lock

let c_sampled_out = lazy (Metrics.counter "span.sampled_out")

let timed ~name ?(key = 0) f =
  let b = Domain.DLS.get dls_key in
  let depth = b.depth in
  b.depth <- depth + 1;
  let kept = Sampler.keep ~name ~key in
  let t0 = Clock.now_us () in
  if kept then
    emit Opened
      { name; ts_us = t0 -. epoch_us; dur_us = 0.; tid = b.tid; depth; key };
  let finish () =
    let t1 = Clock.now_us () in
    b.depth <- depth;
    let dur_s = (t1 -. t0) /. 1e6 in
    (* metrics see every span — sampling thins the event stream, never the
       statistics *)
    Metrics.observe (Metrics.histogram ("span." ^ name)) dur_s;
    if kept then begin
      let e =
        { name; ts_us = t0 -. epoch_us; dur_us = t1 -. t0; tid = b.tid; depth; key }
      in
      push e;
      emit Closed e
    end
    else Metrics.incr (Lazy.force c_sampled_out);
    dur_s
  in
  match f () with
  | v -> (v, finish ())
  | exception exn ->
      ignore (finish ());
      raise exn

let with_ ~name ?key f = fst (timed ~name ?key f)
