type event = {
  name : string;
  ts_us : float;
  dur_us : float;
  tid : int;
  depth : int;
}

(* event timestamps are relative to the first use of the library, keeping
   them small enough to survive float printing exactly *)
let epoch_us = Clock.now_us ()

type buffer = { mutable events : event list; mutable depth : int; tid : int }

let registry_lock = Mutex.create ()

(* every domain's buffer, living past the domain itself (merged "at join") *)
let buffers : buffer list ref = ref []

let key =
  Domain.DLS.new_key (fun () ->
      let b =
        { events = []; depth = 0; tid = (Domain.self () :> int) }
      in
      Mutex.lock registry_lock;
      buffers := b :: !buffers;
      Mutex.unlock registry_lock;
      b)

let on_close : (event -> unit) ref = ref ignore

let set_on_close f = on_close := (match f with Some f -> f | None -> ignore)

let timed ~name f =
  let b = Domain.DLS.get key in
  let depth = b.depth in
  b.depth <- depth + 1;
  let t0 = Clock.now_us () in
  let finish () =
    let t1 = Clock.now_us () in
    b.depth <- depth;
    let e =
      { name; ts_us = t0 -. epoch_us; dur_us = t1 -. t0; tid = b.tid; depth }
    in
    b.events <- e :: b.events;
    let dur_s = (t1 -. t0) /. 1e6 in
    Metrics.observe (Metrics.histogram ("span." ^ name)) dur_s;
    !on_close e;
    dur_s
  in
  match f () with
  | v -> (v, finish ())
  | exception exn ->
      ignore (finish ());
      raise exn

let with_ ~name f = fst (timed ~name f)

let events () =
  Mutex.lock registry_lock;
  let all = List.concat_map (fun b -> b.events) !buffers in
  Mutex.unlock registry_lock;
  List.sort (fun a b -> Float.compare a.ts_us b.ts_us) all

let clear () =
  Mutex.lock registry_lock;
  List.iter (fun b -> b.events <- []) !buffers;
  Mutex.unlock registry_lock
