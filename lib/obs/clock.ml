external monotonic_ns : unit -> int64 = "yieldlab_clock_monotonic_ns"

let now_s () = Int64.to_float (monotonic_ns ()) /. 1e9

let now_us () = Int64.to_float (monotonic_ns ()) /. 1e3

let wall_s () = Unix.gettimeofday ()
