let now_s () = Unix.gettimeofday ()

let now_us () = Unix.gettimeofday () *. 1e6
