(** Deterministic span sampling for high-frequency spans.

    A sampling spec is a list of [NAME=RATE] items separated by [,] or
    [;], e.g. ["mc.batch=0.1;ga.generation=0.5"].  [NAME] is an exact span
    name, or a prefix when it ends in [*] (["mc.*=0.1"]).  [RATE] is the
    kept fraction in [[0, 1]]; spans with no matching rule are always kept.
    The most specific rule wins (exact over prefix, longer prefix over
    shorter).

    The keep/drop decision for a span is a pure FNV-1a hash of its
    [(name, key)] identity compared against the rate — never a shared RNG
    or a sequence position observed at run time.  Keys are assigned by the
    instrumentation sites before any fan-out (batch ordinal, generation
    number), following the same split-before-fan-out discipline as the
    fault-injection schedules, so the sampled span set is byte-identical at
    any [--jobs] count and across repeated runs. *)

val configure : string -> (unit, string) result
(** Replace the active rule set by parsing a spec.  On [Error] the previous
    rules stay in force. *)

val parse : string -> (unit, string) result
(** Validate a spec without installing it (the static check the CLI and
    config lint use). *)

val clear : unit -> unit
(** Drop all rules: every span is kept again. *)

val active : unit -> bool

val keep : name:string -> key:int -> bool
(** The deterministic decision for one span.  [true] when no rule
    matches. *)

val decide : rate:float -> name:string -> key:int -> bool
(** The raw hash decision, exposed for tests and for callers that manage
    their own rate tables. *)
