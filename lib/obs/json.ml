type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---------- emission ---------- *)

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_float b f =
  if not (Float.is_finite f) then Buffer.add_string b "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.1f" f)
  else Buffer.add_string b (Printf.sprintf "%.17g" f)

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> add_float b f
  | String s ->
      Buffer.add_char b '"';
      add_escaped b s;
      Buffer.add_char b '"'
  | List xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          add_escaped b k;
          Buffer.add_string b "\":";
          write b v)
        kvs;
      Buffer.add_char b '}'

let to_string t =
  let b = Buffer.create 256 in
  write b t;
  Buffer.contents b

(* ---------- parsing ---------- *)

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then begin
      pos := !pos + len;
      v
    end
    else fail "malformed literal"
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    h
  in
  let add_utf8 b code =
    (* enough for round-tripping our own escapes; surrogate pairs are not
       produced by the emitter *)
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then fail "truncated escape";
          let c = s.[!pos] in
          incr pos;
          (match c with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'n' -> Buffer.add_char b '\n'
          | 'r' -> Buffer.add_char b '\r'
          | 't' -> Buffer.add_char b '\t'
          | 'u' -> add_utf8 b (hex4 ())
          | _ -> fail "unknown escape");
          loop ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && number_char s.[!pos] do
      incr pos
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "malformed number")
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elements (v :: acc)
            | Some ']' ->
                incr pos;
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (elements [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

(* ---------- accessors ---------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let number_value = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let string_value = function String s -> Some s | _ -> None
