(** Export sinks for the recorded telemetry.

    Three formats: human-readable text, a JSONL event log (one JSON object
    per line: counters, histogram summaries and span events), and a Chrome
    [trace_event] JSON array that loads directly in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}.

    The pure [*_of_*] functions exist so serialisation can be tested
    without touching the global registries; the [write_*] functions
    snapshot the registries and write files. *)

val chrome_trace_of_events : Span.event list -> Json.t
(** A JSON array of complete ([ph = "X"]) events with [name], [cat], [ph],
    [ts], [dur], [pid], [tid] fields; [ts]/[dur] in microseconds. *)

val histogram_fields : Histogram.summary -> (string * Json.t) list
(** The canonical JSON field list of a histogram summary
    (count/sum/mean/min/max/p50/p90/p95/p99) — the single definition every
    sink and the bench harness share.  Non-finite values (the nan
    min/max/quantiles of an empty histogram) serialise as [null]. *)

val counter_json : string * int -> Json.t
(** One [{"type":"counter",...}] line object. *)

val histogram_json : string * Histogram.summary -> Json.t
(** One [{"type":"histogram",...}] line object (fields from
    {!histogram_fields}). *)

val span_json : Span.event -> Json.t
(** One [{"type":"span",...}] line object, as the JSONL sinks emit it. *)

val span_of_json : Json.t -> Span.event option
(** Inverse of {!span_json}; [None] when required fields are missing.  A
    missing [key] (logs from before span keys existed) decodes as 0. *)

val jsonl_of : ?spans:Span.event list -> Metrics.snapshot -> string
(** One line per counter ([{"type":"counter","name",...,"value":...}]),
    histogram ([{"type":"histogram",...}], with count/sum/mean/min/max and
    p50/p90/p95/p99) and span event ([{"type":"span",...}]). *)

val text_of : ?spans:Span.event list -> Metrics.snapshot -> string
(** An aligned human-readable summary of the same data. *)

val write_chrome_trace : path:string -> unit -> unit
(** Serialise {!Span.events} to [path]. *)

val write_metrics_jsonl : path:string -> unit -> unit
(** Serialise the {!Metrics.snapshot} and {!Span.events} to [path]. *)

val write_file : path:string -> string -> unit
