(** Export sinks for the recorded telemetry.

    Three formats: human-readable text, a JSONL event log (one JSON object
    per line: counters, histogram summaries and span events), and a Chrome
    [trace_event] JSON array that loads directly in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}.

    The pure [*_of_*] functions exist so serialisation can be tested
    without touching the global registries; the [write_*] functions
    snapshot the registries and write files. *)

val chrome_trace_of_events : Span.event list -> Json.t
(** A JSON array of complete ([ph = "X"]) events with [name], [cat], [ph],
    [ts], [dur], [pid], [tid] fields; [ts]/[dur] in microseconds. *)

val jsonl_of : ?spans:Span.event list -> Metrics.snapshot -> string
(** One line per counter ([{"type":"counter","name",...,"value":...}]),
    histogram ([{"type":"histogram",...}], with count/sum/mean/min/max and
    p50/p90/p99) and span event ([{"type":"span",...}]). *)

val text_of : ?spans:Span.event list -> Metrics.snapshot -> string
(** An aligned human-readable summary of the same data. *)

val write_chrome_trace : path:string -> unit -> unit
(** Serialise {!Span.events} to [path]. *)

val write_metrics_jsonl : path:string -> unit -> unit
(** Serialise the {!Metrics.snapshot} and {!Span.events} to [path]. *)

val write_file : path:string -> string -> unit
