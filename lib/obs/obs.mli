(** Facade over the telemetry subsystem: the pieces an entry point needs.

    Recording (spans, counters, histograms) is always on — it is cheap
    enough that the fast-scale flow pays well under 2 % — and memory is
    bounded regardless of run length: span events live in a fixed-size
    ring ({!Span.set_ring_capacity}).  Nothing is written anywhere unless
    a streaming sink is armed ({!start_stream}) or {!flush} is called
    with explicit paths at exit. *)

val set_verbose : bool -> unit
(** When on, every kept span prints a line to stderr as it closes (an
    indented live trace). *)

val verbose : unit -> bool

val set_span_sample : string -> (unit, string) result
(** Install a sampling spec ([NAME=RATE;...], trailing [*] for prefix
    match — see {!Sampler.configure}).  [Error] describes the bad clause;
    nothing is installed on error. *)

val start_stream : ?snapshot_every_s:float -> path:string -> unit -> unit
(** Arm the streaming sink: every kept span event is appended to [path]
    as it happens ([.jsonl] → JSONL, other [.json] → Chrome trace; see
    {!Stream}).  With [snapshot_every_s], periodic metrics-delta
    snapshots ride the same stream.  A no-op when a stream is already
    active (first caller wins, so CLI flags beat env/config).
    @raise Sys_error when the path is unwritable. *)

val stream_active : unit -> bool

val stop_stream : unit -> unit
(** Final snapshot, final counter/histogram lines (JSONL format only),
    close the file.  A no-op when no stream is active. *)

val ensure_telemetry :
  ?trace_stream:string ->
  ?span_sample:string ->
  ?snapshot_every_s:float ->
  unit ->
  unit
(** Idempotently arm telemetry from config/env values: the sampler is only
    configured when no spec is installed, the stream only started when
    none is active — so explicit CLI flags (applied earlier) always win.
    A malformed [span_sample] spec warns on stderr instead of raising
    (config telemetry must not kill a run). *)

val flush : ?trace:string -> ?metrics:string -> unit -> unit
(** Write the Chrome trace and/or the JSONL metric+event log to the given
    paths (see {!Sink}).  Omitted sinks write nothing.  These exit-time
    sinks see only the span ring window; a {!start_stream} file has the
    complete event log. *)

val summary : unit -> string
(** Human-readable dump of the current metric snapshot and span events,
    with a note when the ring has rotated events out. *)

val reset : unit -> unit
(** Clear span events, restart span-key sequences and zero all metrics: a
    fresh slate between independent runs in one process.  Listeners and
    any active stream stay armed. *)
