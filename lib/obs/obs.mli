(** Facade over the telemetry subsystem: the pieces an entry point needs.

    Recording (spans, counters, histograms) is always on — it is cheap
    enough that the fast-scale flow pays well under 2 % — and nothing is
    written anywhere until {!flush} is called with explicit paths, so a
    run without [--trace]/[--metrics] only ever buffers in memory. *)

val set_verbose : bool -> unit
(** When on, every span prints a line to stderr as it closes (an indented
    live trace). *)

val verbose : unit -> bool

val flush : ?trace:string -> ?metrics:string -> unit -> unit
(** Write the Chrome trace and/or the JSONL metric+event log to the given
    paths (see {!Sink}).  Omitted sinks write nothing. *)

val summary : unit -> string
(** Human-readable dump of the current metric snapshot and span events. *)

val reset : unit -> unit
(** Clear span events and zero all metrics: a fresh slate between
    independent runs in one process. *)
