(** A minimal JSON representation: enough to emit and re-read the metric
    snapshots, JSONL event logs and Chrome traces without pulling in an
    external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact (single-line) serialisation.  Non-finite floats become [null]
    (JSON has no representation for them). *)

val parse : string -> t
(** Inverse of {!to_string} for the subset this module emits, plus
    whitespace and [\uXXXX] escapes.  Numbers without [.], [e] or [E] parse
    as [Int].  @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** [member key json] is the value bound to [key] when [json] is an [Obj]. *)

val number_value : t -> float option
(** [Int] or [Float] payload as a float. *)

val string_value : t -> string option
