type t = {
  every_s : float;
  emit : Json.t -> unit;
  lock : Mutex.t;
  mutable seq : int;
  mutable next_due : float;
  mutable last_counters : (string * int) list;
  mutable last_hist_counts : (string * int) list;
}

let create ~every_s ~emit =
  if every_s <= 0. then invalid_arg "Snapshot.create: every_s <= 0";
  {
    every_s;
    emit;
    lock = Mutex.create ();
    seq = 0;
    next_due = Clock.now_s () +. every_s;
    last_counters = [];
    last_hist_counts = [];
  }

(* the registry snapshot is sorted by name, so a single merge pass finds
   everything that moved since the last emission *)
let changed ~last now =
  let rec go last now acc =
    match (last, now) with
    | _, [] -> List.rev acc
    | [], (n, v) :: now' -> go [] now' ((n, v, v) :: acc)
    | (ln, _) :: last', ((n, _) :: _ as now') when ln < n -> go last' now' acc
    | ((ln, _) :: _ as last'), (n, v) :: now' when n < ln ->
        go last' now' ((n, v, v) :: acc)
    | (_, lv) :: last', (n, v) :: now' ->
        go last' now' (if v <> lv then (n, v, v - lv) :: acc else acc)
  in
  go last now []

let emit_now ?(reason = "interval") t =
  Mutex.lock t.lock;
  let snap = Metrics.snapshot () in
  let hist_counts =
    List.map
      (fun (n, (s : Histogram.summary)) -> (n, s.Histogram.count))
      snap.Metrics.histograms
  in
  let counter_deltas = changed ~last:t.last_counters snap.Metrics.counters in
  let hist_deltas = changed ~last:t.last_hist_counts hist_counts in
  let j =
    Json.Obj
      [
        ("type", Json.String "snapshot");
        ("seq", Json.Int t.seq);
        ("reason", Json.String reason);
        ("t_s", Json.Float (Clock.now_s ()));
        ( "counters",
          Json.Obj
            (List.map
               (fun (n, v, d) ->
                 (n, Json.Obj [ ("value", Json.Int v); ("delta", Json.Int d) ]))
               counter_deltas) );
        ( "histograms",
          Json.Obj
            (List.filter_map
               (fun (name, (s : Histogram.summary)) ->
                 match
                   List.find_opt (fun (n, _, _) -> n = name) hist_deltas
                 with
                 | None -> None
                 | Some (_, _, d) ->
                     Some
                       ( name,
                         Json.Obj
                           (("delta", Json.Int d) :: Sink.histogram_fields s) ))
               snap.Metrics.histograms) );
      ]
  in
  t.seq <- t.seq + 1;
  t.next_due <- Clock.now_s () +. t.every_s;
  t.last_counters <- snap.Metrics.counters;
  t.last_hist_counts <- hist_counts;
  Mutex.unlock t.lock;
  (* outside the lock: the emit target (a stream) takes its own lock *)
  t.emit j

let tick t = if Clock.now_s () >= t.next_due then emit_now t

let force t = emit_now ~reason:"final" t

let emitted t =
  Mutex.lock t.lock;
  let n = t.seq in
  Mutex.unlock t.lock;
  n
