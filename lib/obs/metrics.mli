(** The process-wide metrics registry: named counters and histograms.

    Handles are cheap to hold and O(1) to record through; look them up once
    (at module initialisation for hot paths) and keep them.  Two lookups of
    the same name return the same instrument, so independent modules share
    a metric by naming convention (e.g. [Flow] reads the
    ["wbga.evaluations"] counter that [Wbga] bumps).

    Counters are atomic and histograms lock internally, so recording from
    multiple domains is safe. *)

type counter

val counter : string -> counter
(** Find-or-create the named counter. *)

val incr : counter -> unit

val add : counter -> int -> unit

val value : counter -> int

val histogram : ?capacity:int -> string -> Histogram.t
(** Find-or-create the named histogram ([capacity] only applies on
    creation). *)

val observe : Histogram.t -> float -> unit

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  histograms : (string * Histogram.summary) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every counter and empty every histogram.  Handles stay valid (the
    registry keeps the instruments); intended for tests and for isolating
    consecutive runs inside one process. *)
