let verbose_flag = ref false

let set_verbose v =
  verbose_flag := v;
  Span.set_on_close
    (if v then
       Some
         (fun (e : Span.event) ->
           Printf.eprintf "[span] %*s%s %.3f ms\n%!" (2 * e.Span.depth) ""
             e.Span.name (e.Span.dur_us /. 1e3))
     else None)

let verbose () = !verbose_flag

let flush ?trace ?metrics () =
  Option.iter (fun path -> Sink.write_chrome_trace ~path ()) trace;
  Option.iter (fun path -> Sink.write_metrics_jsonl ~path ()) metrics

let summary () = Sink.text_of ~spans:(Span.events ()) (Metrics.snapshot ())

let reset () =
  Span.clear ();
  Metrics.reset ()
