let verbose_flag = ref false

let verbose_sub : int option ref = ref None

let set_verbose v =
  verbose_flag := v;
  match (v, !verbose_sub) with
  | true, None ->
      verbose_sub :=
        Some
          (Span.subscribe (fun phase (e : Span.event) ->
               match phase with
               | Span.Opened -> ()
               | Span.Closed ->
                   Printf.eprintf "[span] %*s%s %.3f ms\n%!" (2 * e.Span.depth)
                     "" e.Span.name (e.Span.dur_us /. 1e3)))
  | false, Some id ->
      Span.unsubscribe id;
      verbose_sub := None
  | _ -> ()

let verbose () = !verbose_flag

(* ---------- span sampling ---------- *)

let set_span_sample spec = Sampler.configure spec

(* ---------- the streaming sink ---------- *)

type stream_state = {
  stream : Stream.t;
  sub : int;
  snapshot : Snapshot.t option;
}

let active : stream_state option ref = ref None

let stream_active () = Option.is_some !active

let start_stream ?snapshot_every_s ~path () =
  match !active with
  | Some _ -> () (* first stream wins; CLI flags are applied before config *)
  | None ->
      let stream = Stream.create ~path () in
      let snapshot =
        Option.map
          (fun every_s ->
            Snapshot.create ~every_s ~emit:(Stream.write_json stream))
          snapshot_every_s
      in
      let sub =
        Span.subscribe (fun phase e ->
            Stream.write_event stream phase e;
            (* snapshots ride span closes: no timer thread needed, and a
               run busy enough to need snapshots closes spans constantly *)
            if phase = Span.Closed then Option.iter Snapshot.tick snapshot)
      in
      active := Some { stream; sub; snapshot }

let stop_stream () =
  match !active with
  | None -> ()
  | Some { stream; sub; snapshot } ->
      active := None;
      Span.unsubscribe sub;
      Option.iter Snapshot.force snapshot;
      (* final registry state as ordinary metric lines, so the stream alone
         reconstructs what the exit-time JSONL sink would have written *)
      if Stream.format stream = Stream.Jsonl then begin
        let snap = Metrics.snapshot () in
        List.iter
          (fun c -> Stream.write_json stream (Sink.counter_json c))
          snap.Metrics.counters;
        List.iter
          (fun h -> Stream.write_json stream (Sink.histogram_json h))
          snap.Metrics.histograms
      end;
      Stream.close stream

(* ---------- idempotent env/config arming (CLI flags win) ---------- *)

let ensure_telemetry ?trace_stream ?span_sample ?snapshot_every_s () =
  (match span_sample with
  | Some spec when not (Sampler.active ()) -> (
      match Sampler.configure spec with
      | Ok () -> ()
      | Error msg ->
          Printf.eprintf "warning: ignoring span-sample spec %S: %s\n%!" spec
            msg)
  | _ -> ());
  match trace_stream with
  | Some path when not (stream_active ()) ->
      start_stream ?snapshot_every_s ~path ()
  | _ -> ()

(* ---------- exit-time sinks ---------- *)

let flush ?trace ?metrics () =
  Option.iter (fun path -> Sink.write_chrome_trace ~path ()) trace;
  Option.iter (fun path -> Sink.write_metrics_jsonl ~path ()) metrics

let summary () =
  let base = Sink.text_of ~spans:(Span.events ()) (Metrics.snapshot ()) in
  match Span.dropped () with
  | 0 -> base
  | n ->
      Printf.sprintf
        "%s(span ring: %d older events rotated out; the full log is only in \
         a --trace-stream file)\n"
        base n

let reset () =
  Span.clear ();
  Span.reset_keys ();
  Metrics.reset ()
