(** Periodic metrics-registry deltas for the streaming sinks.

    A snapshot emitter is armed with an interval and an emit target
    (normally {!Stream.write_json}); {!tick} is cheap and is called
    opportunistically from span-close listeners, so snapshots ride the
    event stream without a dedicated timer thread.  Each emission is one
    [{"type":"snapshot",...}] line carrying only the counters and
    histograms that changed since the previous snapshot — current value
    plus delta — so a consumer can follow progress (simulations run, GA
    generations, cache hits) from the stream alone, even if the process
    later dies before the exit-time sinks run. *)

type t

val create : every_s:float -> emit:(Json.t -> unit) -> t
(** Arm an emitter; the first snapshot is due [every_s] seconds from now.
    @raise Invalid_argument when [every_s <= 0]. *)

val tick : t -> unit
(** Emit a snapshot when the interval has elapsed, otherwise return
    immediately (one monotonic-clock read). *)

val force : t -> unit
(** Emit unconditionally, with [reason = "final"]; used on stream
    shutdown so the last deltas are never lost. *)

val emitted : t -> int
(** Snapshots emitted so far. *)
