type format = Jsonl | Chrome

type t = {
  path : string;
  format : format;
  oc : out_channel;
  lock : Mutex.t;
  mutable chrome_events : int;  (** separators written so far *)
  mutable closed : bool;
}

let format_of_path path =
  if Filename.check_suffix path ".jsonl" then Jsonl
  else if Filename.check_suffix path ".json" then Chrome
  else Jsonl

let create ?format ~path () =
  let format =
    match format with Some f -> f | None -> format_of_path path
  in
  let oc = open_out path in
  let t =
    { path; format; oc; lock = Mutex.create (); chrome_events = 0; closed = false }
  in
  (* the Chrome trace_event array format tolerates a missing closing
     bracket, so an incrementally grown file is loadable even after a
     crash *)
  if format = Chrome then begin
    output_string oc "[\n";
    flush oc
  end;
  t

let path t = t.path

let format t = t.format

(* one event = one line = one buffered write + flush, so a crash can lose
   at most a partial final line — which [read_jsonl] tolerates on re-read *)
let write_json t j =
  Mutex.lock t.lock;
  if not t.closed then begin
    (match t.format with
    | Jsonl ->
        output_string t.oc (Json.to_string j);
        output_char t.oc '\n'
    | Chrome ->
        if t.chrome_events > 0 then output_string t.oc ",\n";
        t.chrome_events <- t.chrome_events + 1;
        output_string t.oc (Json.to_string j));
    flush t.oc
  end;
  Mutex.unlock t.lock

let chrome_event (e : Span.event) =
  Json.Obj
    [
      ("name", Json.String e.Span.name);
      ("cat", Json.String "yieldlab");
      ("ph", Json.String "X");
      ("ts", Json.Float e.Span.ts_us);
      ("dur", Json.Float e.Span.dur_us);
      ("pid", Json.Int 1);
      ("tid", Json.Int e.Span.tid);
    ]

let write_event t phase (e : Span.event) =
  match (t.format, phase) with
  | Jsonl, Span.Closed -> write_json t (Sink.span_json e)
  | Jsonl, Span.Opened ->
      write_json t
        (match Sink.span_json e with
        | Json.Obj (("type", _) :: rest) ->
            Json.Obj (("type", Json.String "span.open") :: rest)
        | other -> other)
  | Chrome, Span.Closed -> write_json t (chrome_event e)
  | Chrome, Span.Opened -> () (* complete ("X") events are close-time only *)

let close t =
  Mutex.lock t.lock;
  if not t.closed then begin
    t.closed <- true;
    if t.format = Chrome then output_string t.oc "\n]\n";
    (try flush t.oc with Sys_error _ -> ());
    try close_out t.oc with Sys_error _ -> ()
  end;
  Mutex.unlock t.lock

(* ---------- re-reading ---------- *)

type reread = { lines : Json.t list; truncated : bool }

let read_jsonl ~path =
  let text =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let complete, last =
    match String.rindex_opt text '\n' with
    | None -> ("", text)
    | Some i ->
        (String.sub text 0 i, String.sub text (i + 1) (String.length text - i - 1))
  in
  let lines =
    String.split_on_char '\n' complete |> List.filter (fun l -> l <> "")
  in
  (* every complete line must parse — mid-file corruption is a real error,
     not crash debris; only the unterminated tail is forgiven *)
  let parsed = List.map Json.parse lines in
  if last = "" then { lines = parsed; truncated = false }
  else
    match Json.parse last with
    | j -> { lines = parsed @ [ j ]; truncated = false }
    | exception Json.Parse_error _ -> { lines = parsed; truncated = true }

let spans_of_lines lines =
  List.filter_map
    (fun j ->
      match Json.member "type" j with
      | Some (Json.String "span") -> Sink.span_of_json j
      | _ -> None)
    lines
