(** Streaming telemetry sinks: events are appended to disk as they happen,
    so a long run's telemetry memory stays O(1) while the full event log
    lives in the file.

    Two formats:
    - [Jsonl] — one JSON object per line, the same line shapes as
      {!Sink.jsonl_of} ([{"type":"span",...}]) plus ["span.open"] lines
      (when the caller forwards [Opened] phases) and ["snapshot"] lines
      from {!Snapshot}.
    - [Chrome] — an incrementally grown [trace_event] array.  The opening
      [\[] is written eagerly and the closing bracket only on {!close};
      Chrome and Perfetto load the unterminated array a crash leaves
      behind.

    Write discipline: one event is one buffered write followed by a flush,
    so a kill loses at most a partial final line.  {!read_jsonl} tolerates
    exactly that — an unterminated, unparseable tail is dropped and
    reported, while a corrupt line in the middle of the file still raises
    (that is damage, not crash debris). *)

type format = Jsonl | Chrome

type t

val format_of_path : string -> format
(** [.jsonl] streams JSONL; any other [.json] suffix streams a Chrome
    trace; everything else defaults to JSONL. *)

val create : ?format:format -> path:string -> unit -> t
(** Truncate-and-open [path] for streaming.  [format] defaults to
    {!format_of_path}.  @raise Sys_error when the path is unwritable. *)

val path : t -> string

val format : t -> format

val write_json : t -> Json.t -> unit
(** Append one line (JSONL) or one array element (Chrome).  Thread-safe;
    a no-op after {!close}. *)

val write_event : t -> Span.phase -> Span.event -> unit
(** Append a span event in the stream's format.  Chrome streams ignore
    [Opened] phases (complete events carry the duration at close). *)

val close : t -> unit
(** Flush, terminate the Chrome array, and close the fd.  Idempotent. *)

type reread = {
  lines : Json.t list;
  truncated : bool;  (** a partial final line was dropped *)
}

val read_jsonl : path:string -> reread
(** Parse a streamed JSONL file back, dropping an unterminated final line.
    @raise Json.Parse_error on a malformed {e complete} line.
    @raise Sys_error when the file cannot be read. *)

val spans_of_lines : Json.t list -> Span.event list
(** The [{"type":"span"}] lines of a re-read stream, decoded (in file
    order, i.e. span-close order). *)
