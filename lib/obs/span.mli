(** Hierarchical timed spans, streamed over a live event bus.

    A span's close feeds three consumers:

    - the ["span.<name>"] histogram of {!Metrics} (always, even for
      sampled-out spans), so per-stage statistics are complete;
    - the global bounded ring — a constant-size window over the most
      recent events that backs the text summary and the exit-time sinks,
      keeping in-process telemetry memory O(1) in run length;
    - every {!subscribe}d live listener (the streaming sinks), which also
      sees an [Opened] event when the span begins.

    Nesting is tracked per domain ([Domain.DLS]) and carried on the event;
    events from worker domains go to the same ring and bus, so nothing is
    lost when a domain is joined.

    High-frequency spans carry a deterministic [key] (batch ordinal,
    generation number, worker slot) assigned before any fan-out;
    {!Sampler} decides keep/drop from the pure [(name, key)] hash, so the
    kept span set is identical at any [--jobs] count. *)

type event = {
  name : string;
  ts_us : float;  (** start, microseconds since the process epoch *)
  dur_us : float;  (** 0 on [Opened] bus events *)
  tid : int;  (** recording domain's id *)
  depth : int;  (** nesting depth within that domain *)
  key : int;  (** sampling identity; 0 for unkeyed spans *)
}

type phase = Opened | Closed

val with_ : name:string -> ?key:int -> (unit -> 'a) -> 'a
(** Run the thunk inside a span.  The event is recorded even when the thunk
    raises. *)

val timed : name:string -> ?key:int -> (unit -> 'a) -> 'a * float
(** Like {!with_} but also returns the measured duration in seconds. *)

val next_key : string -> int
(** The next per-name ordinal (0, 1, 2, ...), for instrumentation sites
    whose span has no natural index.  Call it in the coordinator before
    fanning out, so the key is interleaving-independent.  {!reset_keys}
    restarts every sequence. *)

val reset_keys : unit -> unit

val events : unit -> event list
(** The ring contents — the most recent kept events (up to
    {!ring_capacity}), across every domain, sorted by start time. *)

val dropped : unit -> int
(** Events overwritten in the ring since the last {!clear}.  The streaming
    sinks still saw them; only the in-memory window forgot them. *)

val clear : unit -> unit
(** Empty the ring and zero {!dropped} (the ["span.*"] histograms are
    untouched; listeners stay subscribed). *)

val set_ring_capacity : int -> unit
(** Replace the ring with an empty one of the given capacity (default
    4096).  @raise Invalid_argument when [capacity <= 0]. *)

val ring_capacity : unit -> int

val subscribe : (phase -> event -> unit) -> int
(** Register a live sink called on every kept span open and close, from
    the recording domain.  Returns an id for {!unsubscribe}.  Listeners
    must be fast and must not raise. *)

val unsubscribe : int -> unit
