(** Hierarchical timed spans.

    Each domain records into its own buffer (registered globally on first
    use, so nothing is lost when a worker domain is joined and dies);
    {!events} merges all buffers.  Nesting is tracked per domain and
    carried on the event, and is also implied by the timestamp containment
    the Chrome trace viewer uses.

    A span additionally feeds its duration (in seconds) into the
    ["span.<name>"] histogram of {!Metrics}, so per-stage statistics
    survive {!clear} and appear in metric snapshots. *)

type event = {
  name : string;
  ts_us : float;  (** start, microseconds since the process epoch *)
  dur_us : float;
  tid : int;  (** recording domain's id *)
  depth : int;  (** nesting depth within that domain *)
}

val with_ : name:string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span.  The event is recorded even when the thunk
    raises. *)

val timed : name:string -> (unit -> 'a) -> 'a * float
(** Like {!with_} but also returns the measured duration in seconds. *)

val events : unit -> event list
(** All events recorded so far, across every domain, sorted by start
    time. *)

val clear : unit -> unit
(** Drop the recorded events (the ["span.*"] histograms are untouched). *)

val set_on_close : (event -> unit) option -> unit
(** Install a hook called on every span close (used by the verbose text
    sink).  [None] removes it. *)
