type rule = { prefix : bool; pattern : string; rate : float }

(* the active rule set; replaced wholesale by [configure]/[clear].  Reads
   are lock-free (immutable list behind an Atomic) because [keep] sits on
   the span-open path of every domain. *)
let rules : rule list Atomic.t = Atomic.make []

let clear () = Atomic.set rules []

let parse_rule item =
  match String.index_opt item '=' with
  | None ->
      Error
        (Printf.sprintf "'%s': expected NAME=RATE (e.g. mc.batch=0.1)" item)
  | Some i -> begin
      let name = String.trim (String.sub item 0 i) in
      let rate_s =
        String.trim (String.sub item (i + 1) (String.length item - i - 1))
      in
      if name = "" then Error (Printf.sprintf "'%s': empty span name" item)
      else
        match float_of_string_opt rate_s with
        | None -> Error (Printf.sprintf "'%s': rate '%s' is not a number" item rate_s)
        | Some rate when not (rate >= 0. && rate <= 1.) ->
            Error (Printf.sprintf "'%s': rate %g outside [0, 1]" item rate)
        | Some rate ->
            if String.length name >= 1 && name.[String.length name - 1] = '*'
            then
              Ok
                {
                  prefix = true;
                  pattern = String.sub name 0 (String.length name - 1);
                  rate;
                }
            else Ok { prefix = false; pattern = name; rate }
    end

let parse_rules spec =
  let items =
    String.split_on_char ';' spec
    |> List.concat_map (String.split_on_char ',')
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if items = [] then Error "empty sampling spec"
  else
    List.fold_left
      (fun acc item ->
        match (acc, parse_rule item) with
        | Error _, _ -> acc
        | Ok rs, Ok r -> Ok (r :: rs)
        | Ok _, Error e -> Error e)
      (Ok []) items
    |> Result.map List.rev

let parse spec = Result.map ignore (parse_rules spec)

let configure spec = Result.map (Atomic.set rules) (parse_rules spec)

let active () = Atomic.get rules <> []

(* most specific rule wins: exact match beats any prefix, longer prefix
   beats shorter; among equals the first spec entry wins *)
let rule_for name =
  let better (current : rule option) (r : rule) =
    let matches =
      if r.prefix then
        String.length name >= String.length r.pattern
        && String.sub name 0 (String.length r.pattern) = r.pattern
      else name = r.pattern
    in
    if not matches then current
    else
      match current with
      | None -> Some r
      | Some c ->
          if c.prefix && not r.prefix then Some r (* exact beats prefix *)
          else if c.prefix = r.prefix
                  && String.length r.pattern > String.length c.pattern
          then Some r (* longer prefix beats shorter *)
          else Some c (* first spec entry wins among equals *)
  in
  List.fold_left better None (Atomic.get rules)

(* FNV-1a over the span name then the key's 8 little-endian bytes: a pure
   function of (name, key), so the decision is identical in any process,
   at any --jobs count and under any domain interleaving *)
let fnv_offset = 0xcbf29ce484222325L

let fnv_prime = 0x100000001b3L

let hash ~name ~key =
  let h = ref fnv_offset in
  let step byte =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (byte land 0xff))) fnv_prime
  in
  String.iter (fun c -> step (Char.code c)) name;
  for shift = 0 to 7 do
    step (key asr (8 * shift))
  done;
  !h

(* top 53 bits as a float in [0, 1) *)
let unit_float h =
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.

let decide ~rate ~name ~key =
  if rate >= 1. then true
  else if rate <= 0. then false
  else unit_float (hash ~name ~key) < rate

let keep ~name ~key =
  match rule_for name with
  | None -> true
  | Some r -> decide ~rate:r.rate ~name ~key
