let chrome_trace_of_events events =
  Json.List
    (List.map
       (fun (e : Span.event) ->
         Json.Obj
           [
             ("name", Json.String e.Span.name);
             ("cat", Json.String "yieldlab");
             ("ph", Json.String "X");
             ("ts", Json.Float e.Span.ts_us);
             ("dur", Json.Float e.Span.dur_us);
             ("pid", Json.Int 1);
             ("tid", Json.Int e.Span.tid);
           ])
       events)

let counter_json (name, v) =
  Json.Obj
    [
      ("type", Json.String "counter");
      ("name", Json.String name);
      ("value", Json.Int v);
    ]

let histogram_fields (s : Histogram.summary) =
  [
    ("count", Json.Int s.Histogram.count);
    ("sum", Json.Float s.Histogram.sum);
    ("mean", Json.Float s.Histogram.mean);
    ("min", Json.Float s.Histogram.min);
    ("max", Json.Float s.Histogram.max);
    ("p50", Json.Float s.Histogram.p50);
    ("p90", Json.Float s.Histogram.p90);
    ("p95", Json.Float s.Histogram.p95);
    ("p99", Json.Float s.Histogram.p99);
  ]

let histogram_json (name, summary) =
  Json.Obj
    (("type", Json.String "histogram")
    :: ("name", Json.String name)
    :: histogram_fields summary)

let span_json (e : Span.event) =
  Json.Obj
    [
      ("type", Json.String "span");
      ("name", Json.String e.Span.name);
      ("ts_us", Json.Float e.Span.ts_us);
      ("dur_us", Json.Float e.Span.dur_us);
      ("tid", Json.Int e.Span.tid);
      ("depth", Json.Int e.Span.depth);
      ("key", Json.Int e.Span.key);
    ]

(* inverse of [span_json], tolerant of a missing [key] (older logs) *)
let span_of_json j =
  let number k = Option.bind (Json.member k j) Json.number_value in
  let int k = Option.map int_of_float (number k) in
  match
    (Option.bind (Json.member "name" j) Json.string_value,
     number "ts_us", number "dur_us", int "tid", int "depth")
  with
  | Some name, Some ts_us, Some dur_us, Some tid, Some depth ->
      Some
        {
          Span.name;
          ts_us;
          dur_us;
          tid;
          depth;
          key = Option.value (int "key") ~default:0;
        }
  | _ -> None

let jsonl_of ?(spans = []) (snap : Metrics.snapshot) =
  let b = Buffer.create 1024 in
  let line j =
    Buffer.add_string b (Json.to_string j);
    Buffer.add_char b '\n'
  in
  List.iter (fun c -> line (counter_json c)) snap.Metrics.counters;
  List.iter (fun h -> line (histogram_json h)) snap.Metrics.histograms;
  List.iter (fun e -> line (span_json e)) spans;
  Buffer.contents b

let text_of ?(spans = []) (snap : Metrics.snapshot) =
  let b = Buffer.create 1024 in
  if snap.Metrics.counters <> [] then begin
    Buffer.add_string b "counters:\n";
    List.iter
      (fun (name, v) -> Printf.bprintf b "  %-32s %12d\n" name v)
      snap.Metrics.counters
  end;
  if snap.Metrics.histograms <> [] then begin
    Buffer.add_string b "histograms:\n";
    List.iter
      (fun (name, (s : Histogram.summary)) ->
        if s.Histogram.count = 0 then
          Printf.bprintf b "  %-32s n=0        (empty)\n" name
        else
          Printf.bprintf b
            "  %-32s n=%-8d mean=%-10.4g p50=%-10.4g p95=%-10.4g p99=%-10.4g \
             min=%-10.4g max=%.4g\n"
            name s.Histogram.count s.Histogram.mean s.Histogram.p50
            s.Histogram.p95 s.Histogram.p99 s.Histogram.min s.Histogram.max)
      snap.Metrics.histograms
  end;
  if spans <> [] then begin
    Printf.bprintf b "spans (%d events):\n" (List.length spans);
    List.iter
      (fun (e : Span.event) ->
        Printf.bprintf b "  %*s%-28s %10.3f ms (tid %d)\n" (2 * e.Span.depth)
          "" e.Span.name (e.Span.dur_us /. 1e3) e.Span.tid)
      spans
  end;
  Buffer.contents b

(* atomic (temp + rename), open-coded: [Yield_resilience.Atomic_io] is the
   shared implementation but depends on this library, so the sink cannot
   use it without a cycle *)
let write_file ~path s =
  let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  (match
     Out_channel.with_open_text tmp (fun oc -> Out_channel.output_string oc s)
   with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp path

let write_chrome_trace ~path () =
  write_file ~path (Json.to_string (chrome_trace_of_events (Span.events ())))

let write_metrics_jsonl ~path () =
  write_file ~path (jsonl_of ~spans:(Span.events ()) (Metrics.snapshot ()))
