(** Timestamps for the telemetry subsystem.

    OCaml's stdlib exposes no monotonic clock, so this wraps
    [Unix.gettimeofday] behind a single chokepoint: every obs timestamp
    flows through here, and swapping in a true monotonic source (mtime,
    clock_gettime bindings) is a one-file change. *)

val now_s : unit -> float
(** Seconds since the Unix epoch. *)

val now_us : unit -> float
(** Microseconds since the Unix epoch (the unit of Chrome trace [ts]). *)
