(** Timestamps for the telemetry subsystem.

    Every obs timestamp flows through this single chokepoint.  {!now_s} and
    {!now_us} read [CLOCK_MONOTONIC] through the repo's one C stub
    ([clock_stubs.c]), so span durations and stream timestamps are immune
    to NTP steps and wall-clock adjustments — the failure mode the old
    [Unix.gettimeofday] wrapper documented.  The monotonic epoch is
    unspecified (typically boot time); only differences are meaningful, and
    {!Span} already rebases everything on the first use of the library. *)

val now_s : unit -> float
(** Monotonic seconds.  Arbitrary epoch; use differences only. *)

val now_us : unit -> float
(** Monotonic microseconds (the unit of Chrome trace [ts]). *)

val wall_s : unit -> float
(** Seconds since the Unix epoch ([Unix.gettimeofday]), for the few places
    that need an absolute civil timestamp rather than a duration. *)
