(** A streaming histogram with O(1) record cost.

    Exact count/sum/min/max plus quantile estimates from a fixed-size
    reservoir (uniform sampling with a deterministic generator, so repeated
    runs summarise identically).  Safe to record from multiple domains. *)

type t

type summary = {
  count : int;
  sum : float;
  mean : float;  (** nan when empty *)
  min : float;  (** nan when empty (so JSON sinks emit null, not a fake 0) *)
  max : float;  (** nan when empty *)
  p50 : float;  (** nan when empty *)
  p90 : float;
  p95 : float;
  p99 : float;
}

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the quantile reservoir (default 2048).  Up to
    [capacity] observations the quantiles are exact. *)

val observe : t -> float -> unit

val count : t -> int

val summarize : t -> summary

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0, 1]; linear interpolation between order
    statistics of the reservoir.  0. when empty. *)

val quantile_of_sorted : float array -> float -> float
(** The interpolation rule behind {!quantile} and {!summarize}, exposed for
    consumers holding their own exact sorted sample (e.g. the load
    generator's latency array): linear interpolation between order
    statistics, 0. on an empty array. *)

val reset : t -> unit
