type t = {
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  store : float array;  (** reservoir; the first [stored] cells are live *)
  mutable lcg : int;  (** deterministic replacement stream *)
  lock : Mutex.t;
}

type summary = {
  count : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}

let create ?(capacity = 2048) () =
  if capacity <= 0 then invalid_arg "Histogram.create: capacity <= 0";
  {
    count = 0;
    sum = 0.;
    vmin = infinity;
    vmax = neg_infinity;
    store = Array.make capacity 0.;
    lcg = 0x2545F49;
    lock = Mutex.create ();
  }

let observe t v =
  Mutex.lock t.lock;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  let cap = Array.length t.store in
  if t.count <= cap then t.store.(t.count - 1) <- v
  else begin
    (* reservoir sampling: keep each observation with probability cap/count *)
    t.lcg <- ((t.lcg * 1103515245) + 12345) land 0x3FFFFFFF;
    let j = t.lcg mod t.count in
    if j < cap then t.store.(j) <- v
  end;
  Mutex.unlock t.lock

let count t =
  Mutex.lock t.lock;
  let c = t.count in
  Mutex.unlock t.lock;
  c

(* snapshot of the live reservoir plus the exact moments, under the lock *)
let snapshot t =
  Mutex.lock t.lock;
  let stored = Stdlib.min t.count (Array.length t.store) in
  let values = Array.sub t.store 0 stored in
  let count = t.count and sum = t.sum and vmin = t.vmin and vmax = t.vmax in
  Mutex.unlock t.lock;
  (count, sum, vmin, vmax, values)

let quantile_of_sorted xs q =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let h = q *. float_of_int (n - 1) in
    let clamp i = Stdlib.max 0 (Stdlib.min (n - 1) i) in
    let lo = clamp (int_of_float (Float.floor h)) in
    let hi = clamp (int_of_float (Float.ceil h)) in
    xs.(lo) +. ((h -. float_of_int lo) *. (xs.(hi) -. xs.(lo)))
  end

let summarize t =
  let count, sum, vmin, vmax, values = snapshot t in
  if count = 0 then
    (* nan, not 0.: an empty histogram must be distinguishable from one
       that really observed zeros — the JSON sinks turn nan into null *)
    {
      count = 0;
      sum = 0.;
      mean = Float.nan;
      min = Float.nan;
      max = Float.nan;
      p50 = Float.nan;
      p90 = Float.nan;
      p95 = Float.nan;
      p99 = Float.nan;
    }
  else begin
    Array.sort Float.compare values;
    {
      count;
      sum;
      mean = sum /. float_of_int count;
      min = vmin;
      max = vmax;
      p50 = quantile_of_sorted values 0.5;
      p90 = quantile_of_sorted values 0.9;
      p95 = quantile_of_sorted values 0.95;
      p99 = quantile_of_sorted values 0.99;
    }
  end

let quantile t q =
  let _, _, _, _, values = snapshot t in
  Array.sort Float.compare values;
  quantile_of_sorted values q

let reset t =
  Mutex.lock t.lock;
  t.count <- 0;
  t.sum <- 0.;
  t.vmin <- infinity;
  t.vmax <- neg_infinity;
  Mutex.unlock t.lock
