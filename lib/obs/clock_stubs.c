/* Monotonic time for the telemetry subsystem.

   The OCaml 5.1 stdlib exposes no monotonic clock, so this is the one
   binding the repo carries: CLOCK_MONOTONIC as integer nanoseconds.  The
   epoch is unspecified (typically boot time); only differences are
   meaningful, which is exactly what span durations and stream timestamps
   need.  */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value yieldlab_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
