type counter = int Atomic.t

let lock = Mutex.create ()

let counters : (string, counter) Hashtbl.t = Hashtbl.create 32

let histograms : (string, Histogram.t) Hashtbl.t = Hashtbl.create 32

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counter name =
  with_lock (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = Atomic.make 0 in
          Hashtbl.add counters name c;
          c)

let incr c = Atomic.incr c

let add c n = ignore (Atomic.fetch_and_add c n)

let value c = Atomic.get c

let histogram ?capacity name =
  with_lock (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
          let h = Histogram.create ?capacity () in
          Hashtbl.add histograms name h;
          h)

let observe h v = Histogram.observe h v

type snapshot = {
  counters : (string * int) list;
  histograms : (string * Histogram.summary) list;
}

let sorted_bindings tbl f =
  Hashtbl.fold (fun name v acc -> (name, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () =
  with_lock (fun () ->
      {
        counters = sorted_bindings counters Atomic.get;
        histograms = sorted_bindings histograms Histogram.summarize;
      })

let reset () =
  with_lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c 0) counters;
      Hashtbl.iter (fun _ h -> Histogram.reset h) histograms)
