module Rng = Yield_stats.Rng
module Summary = Yield_stats.Summary
module Metrics = Yield_obs.Metrics
module Span = Yield_obs.Span
module Fault = Yield_resilience.Fault
module Pool = Yield_exec.Pool

type 'a counted = { results : 'a array; attempted : int; failed : int }

let c_attempted = Metrics.counter "mc.samples.attempted"

let c_failed = Metrics.counter "mc.samples.failed"

(* [mc.sample] fault: the sample is lost (as if the simulation under it had
   failed).  Each batch reserves a block of hit indices up front and decides
   per global sample index, so the serial and parallel paths — and any
   domain interleaving — inject on exactly the same samples. *)
let fp_sample = Fault.point "mc.sample"

let record ~attempted ~failed =
  Metrics.add c_attempted attempted;
  Metrics.add c_failed failed

let run_counted ~samples ~rng f =
  (* batch ordinal as span key, taken by the (always sequential) caller
     before any work runs — the sampling identity is jobs-independent *)
  Span.with_ ~name:"mc.batch" ~key:(Span.next_key "mc.batch") (fun () ->
      let base = Fault.advance fp_sample ~by:samples in
      let results = ref [] in
      let failed = ref 0 in
      for i = 0 to samples - 1 do
        (* always split the child stream, even for an injected sample, so
           injection never shifts the streams of the samples after it *)
        let child = Rng.split rng in
        match if Fault.fire_at fp_sample ~index:(base + i) then None else f child with
        | Some r -> results := r :: !results
        | None -> incr failed
      done;
      record ~attempted:samples ~failed:!failed;
      {
        results = Array.of_list (List.rev !results);
        attempted = samples;
        failed = !failed;
      })

let run ~samples ~rng f = (run_counted ~samples ~rng f).results

let run_pool_counted ~pool ~samples ~rng f =
  if Pool.jobs pool <= 1 || samples <= 1 then run_counted ~samples ~rng f
  else
    (* same key sequence as the serial path: one ordinal per batch *)
    Span.with_ ~name:"mc.batch" ~key:(Span.next_key "mc.batch") (fun () ->
        (* split all child streams sequentially first, so the sample streams
           are identical to the serial path *)
        let children = Array.init samples (fun _ -> Rng.split rng) in
        let c =
          Pool.map_counted pool ~fault:fp_sample ~n:samples (fun i ->
              f children.(i))
        in
        record ~attempted:c.Pool.attempted ~failed:c.Pool.failed;
        {
          results = c.Pool.results;
          attempted = c.Pool.attempted;
          failed = c.Pool.failed;
        })

let run_pool ~pool ~samples ~rng f = (run_pool_counted ~pool ~samples ~rng f).results

type yield_estimate = {
  pass : int;
  total : int;
  yield : float;
  ci_low : float;
  ci_high : float;
}

let estimate_yield ~pass ~total =
  if total <= 0 then invalid_arg "Montecarlo.estimate_yield: empty sample";
  if pass < 0 || pass > total then
    invalid_arg "Montecarlo.estimate_yield: pass outside [0, total]";
  let n = float_of_int total and k = float_of_int pass in
  let p = k /. n in
  (* Wilson score interval, z = 1.96 *)
  let z = 1.96 in
  let z2 = z *. z in
  let denom = 1. +. (z2 /. n) in
  let centre = (p +. (z2 /. (2. *. n))) /. denom in
  let half =
    z /. denom *. sqrt ((p *. (1. -. p) /. n) +. (z2 /. (4. *. n *. n)))
  in
  {
    pass;
    total;
    yield = p;
    ci_low = Float.max 0. (centre -. half);
    ci_high = Float.min 1. (centre +. half);
  }

let yield_of ok results =
  let pass = Array.fold_left (fun acc r -> if ok r then acc + 1 else acc) 0 results in
  estimate_yield ~pass ~total:(Array.length results)

type yield_outcome =
  | Estimate of yield_estimate
  | No_valid_samples of { attempted : int; failed : int }

let yield_of_counted ok counted =
  if Array.length counted.results = 0 then
    No_valid_samples { attempted = counted.attempted; failed = counted.failed }
  else Estimate (yield_of ok counted.results)

let yield_outcome_to_string = function
  | Estimate e ->
      Printf.sprintf "%.1f %% (%d/%d, 95 %% CI %.1f–%.1f %%)" (100. *. e.yield)
        e.pass e.total (100. *. e.ci_low) (100. *. e.ci_high)
  | No_valid_samples { attempted; failed } ->
      Printf.sprintf "yield unknown (0 valid samples, %d/%d failed)" failed
        attempted

let spread_pct xs ~nominal =
  if Array.length xs = 0 then invalid_arg "Montecarlo.spread_pct: empty sample";
  if nominal = 0. then invalid_arg "Montecarlo.spread_pct: zero nominal";
  (* robust location/scale (median, IQR/1.349): a circuit sample can jump to
     a different operating branch and land far outside the main mode, and a
     plain 3-sigma envelope would be dominated by that single sample *)
  let centre = Summary.median xs in
  let iqr = Summary.quantile xs 0.75 -. Summary.quantile xs 0.25 in
  let sd = iqr /. 1.349 in
  let hi = centre +. (3. *. sd) and lo = centre -. (3. *. sd) in
  let dev = Float.max (Float.abs (hi -. nominal)) (Float.abs (nominal -. lo)) in
  100. *. dev /. Float.abs nominal
