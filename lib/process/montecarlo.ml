module Rng = Yield_stats.Rng
module Summary = Yield_stats.Summary
module Metrics = Yield_obs.Metrics
module Span = Yield_obs.Span

type 'a counted = { results : 'a array; attempted : int; failed : int }

let c_attempted = Metrics.counter "mc.samples.attempted"

let c_failed = Metrics.counter "mc.samples.failed"

let record ~attempted ~failed =
  Metrics.add c_attempted attempted;
  Metrics.add c_failed failed

let run_counted ~samples ~rng f =
  Span.with_ ~name:"mc.batch" (fun () ->
      let results = ref [] in
      let failed = ref 0 in
      for _ = 1 to samples do
        let child = Rng.split rng in
        match f child with
        | Some r -> results := r :: !results
        | None -> incr failed
      done;
      record ~attempted:samples ~failed:!failed;
      {
        results = Array.of_list (List.rev !results);
        attempted = samples;
        failed = !failed;
      })

let run ~samples ~rng f = (run_counted ~samples ~rng f).results

let run_parallel_counted ?domains ~samples ~rng f =
  let domains =
    match domains with
    | Some d -> Stdlib.max 1 d
    | None -> Stdlib.min 8 (Domain.recommended_domain_count ())
  in
  if domains <= 1 || samples <= 1 then run_counted ~samples ~rng f
  else
    Span.with_ ~name:"mc.batch" (fun () ->
        (* split all child streams sequentially first, so the sample streams
           are identical to the serial path *)
        let children = Array.init samples (fun _ -> Rng.split rng) in
        let slots = Array.make samples None in
        let next = Atomic.make 0 in
        let worker () =
          (* one span per domain: its duration against the batch span is the
             per-domain utilisation *)
          Span.with_ ~name:"mc.worker" (fun () ->
              let rec loop () =
                let i = Atomic.fetch_and_add next 1 in
                if i < samples then begin
                  slots.(i) <- f children.(i);
                  loop ()
                end
              in
              loop ())
        in
        let spawned = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
        worker ();
        Array.iter Domain.join spawned;
        let failed =
          Array.fold_left
            (fun acc s -> match s with None -> acc + 1 | Some _ -> acc)
            0 slots
        in
        record ~attempted:samples ~failed;
        {
          results = Array.of_list (List.filter_map Fun.id (Array.to_list slots));
          attempted = samples;
          failed;
        })

let run_parallel ?domains ~samples ~rng f =
  (run_parallel_counted ?domains ~samples ~rng f).results

type yield_estimate = {
  pass : int;
  total : int;
  yield : float;
  ci_low : float;
  ci_high : float;
}

let estimate_yield ~pass ~total =
  if total <= 0 then invalid_arg "Montecarlo.estimate_yield: empty sample";
  if pass < 0 || pass > total then
    invalid_arg "Montecarlo.estimate_yield: pass outside [0, total]";
  let n = float_of_int total and k = float_of_int pass in
  let p = k /. n in
  (* Wilson score interval, z = 1.96 *)
  let z = 1.96 in
  let z2 = z *. z in
  let denom = 1. +. (z2 /. n) in
  let centre = (p +. (z2 /. (2. *. n))) /. denom in
  let half =
    z /. denom *. sqrt ((p *. (1. -. p) /. n) +. (z2 /. (4. *. n *. n)))
  in
  {
    pass;
    total;
    yield = p;
    ci_low = Float.max 0. (centre -. half);
    ci_high = Float.min 1. (centre +. half);
  }

let yield_of ok results =
  let pass = Array.fold_left (fun acc r -> if ok r then acc + 1 else acc) 0 results in
  estimate_yield ~pass ~total:(Array.length results)

let spread_pct xs ~nominal =
  if Array.length xs = 0 then invalid_arg "Montecarlo.spread_pct: empty sample";
  if nominal = 0. then invalid_arg "Montecarlo.spread_pct: zero nominal";
  (* robust location/scale (median, IQR/1.349): a circuit sample can jump to
     a different operating branch and land far outside the main mode, and a
     plain 3-sigma envelope would be dominated by that single sample *)
  let centre = Summary.median xs in
  let iqr = Summary.quantile xs 0.75 -. Summary.quantile xs 0.25 in
  let sd = iqr /. 1.349 in
  let hi = centre +. (3. *. sd) and lo = centre -. (3. *. sd) in
  let dev = Float.max (Float.abs (hi -. nominal)) (Float.abs (nominal -. lo)) in
  100. *. dev /. Float.abs nominal
