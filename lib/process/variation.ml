module Mosfet = Yield_spice.Mosfet
module Circuit = Yield_spice.Circuit
module Device = Yield_spice.Device
module Rng = Yield_stats.Rng

type global_spec = {
  sigma_vth_n : float;
  sigma_vth_p : float;
  sigma_kp_rel_n : float;
  sigma_kp_rel_p : float;
  sigma_lambda_rel : float;
}

type mismatch_spec = {
  avt_n : float;
  avt_p : float;
  abeta_n : float;
  abeta_p : float;
}

type spec = { global : global_spec; mismatch : mismatch_spec }

(* The paper's foundry statistical deck is proprietary; these sigmas keep
   the standard structure (global lot variation + Pelgrom mismatch) with
   magnitudes calibrated so that the OTA performance spreads land in the
   order the paper reports in Table 2 (dGain ~ 0.5 %, dPM ~ 1.5-2 % at the
   3-sigma envelope).  See DESIGN.md §2. *)
let default_spec =
  {
    global =
      {
        sigma_vth_n = 0.005;
        sigma_vth_p = 0.007;
        sigma_kp_rel_n = 0.01;
        sigma_kp_rel_p = 0.01;
        sigma_lambda_rel = 0.015;
      };
    mismatch =
      {
        avt_n = 3.5e-9;
        avt_p = 5.0e-9;
        abeta_n = 3.5e-9;
        abeta_p = 3.5e-9;
      };
  }

let zero_spec =
  {
    global =
      {
        sigma_vth_n = 0.;
        sigma_vth_p = 0.;
        sigma_kp_rel_n = 0.;
        sigma_kp_rel_p = 0.;
        sigma_lambda_rel = 0.;
      };
    mismatch = { avt_n = 0.; avt_p = 0.; abeta_n = 0.; abeta_p = 0. };
  }

let scale_spec k spec =
  {
    global =
      {
        sigma_vth_n = k *. spec.global.sigma_vth_n;
        sigma_vth_p = k *. spec.global.sigma_vth_p;
        sigma_kp_rel_n = k *. spec.global.sigma_kp_rel_n;
        sigma_kp_rel_p = k *. spec.global.sigma_kp_rel_p;
        sigma_lambda_rel = k *. spec.global.sigma_lambda_rel;
      };
    mismatch =
      {
        avt_n = k *. spec.mismatch.avt_n;
        avt_p = k *. spec.mismatch.avt_p;
        abeta_n = k *. spec.mismatch.abeta_n;
        abeta_p = k *. spec.mismatch.abeta_p;
      };
  }

type global_draw = {
  dvth_n : float;
  dvth_p : float;
  dkp_rel_n : float;
  dkp_rel_p : float;
  dlambda_rel : float;
}

let nominal_global =
  { dvth_n = 0.; dvth_p = 0.; dkp_rel_n = 0.; dkp_rel_p = 0.; dlambda_rel = 0. }

let draw_global spec rng =
  let g = spec.global in
  {
    dvth_n = Rng.normal rng ~mean:0. ~sigma:g.sigma_vth_n;
    dvth_p = Rng.normal rng ~mean:0. ~sigma:g.sigma_vth_p;
    dkp_rel_n = Rng.normal rng ~mean:0. ~sigma:g.sigma_kp_rel_n;
    dkp_rel_p = Rng.normal rng ~mean:0. ~sigma:g.sigma_kp_rel_p;
    dlambda_rel = Rng.normal rng ~mean:0. ~sigma:g.sigma_lambda_rel;
  }

let global_dims = 5

let global_draw_of_normals spec z =
  if Array.length z <> global_dims then
    invalid_arg "Variation.global_draw_of_normals: need 5 deviates";
  let g = spec.global in
  {
    dvth_n = z.(0) *. g.sigma_vth_n;
    dvth_p = z.(1) *. g.sigma_vth_p;
    dkp_rel_n = z.(2) *. g.sigma_kp_rel_n;
    dkp_rel_p = z.(3) *. g.sigma_kp_rel_p;
    dlambda_rel = z.(4) *. g.sigma_lambda_rel;
  }

let mismatch_sigma_vth spec polarity ~w ~l =
  let avt =
    match polarity with
    | Mosfet.Nmos -> spec.mismatch.avt_n
    | Mosfet.Pmos -> spec.mismatch.avt_p
  in
  avt /. sqrt (w *. l)

let mismatch_sigma_beta spec polarity ~w ~l =
  let ab =
    match polarity with
    | Mosfet.Nmos -> spec.mismatch.abeta_n
    | Mosfet.Pmos -> spec.mismatch.abeta_p
  in
  ab /. sqrt (w *. l)

let perturb_model spec draw rng ~w ~l (model : Mosfet.model) =
  let dvth_global, dkp_global =
    match model.Mosfet.polarity with
    | Mosfet.Nmos -> (draw.dvth_n, draw.dkp_rel_n)
    | Mosfet.Pmos -> (draw.dvth_p, draw.dkp_rel_p)
  in
  let sigma_vth = mismatch_sigma_vth spec model.Mosfet.polarity ~w ~l in
  let sigma_beta = mismatch_sigma_beta spec model.Mosfet.polarity ~w ~l in
  let dvth = dvth_global +. Rng.normal rng ~mean:0. ~sigma:sigma_vth in
  let dkp_rel = dkp_global +. Rng.normal rng ~mean:0. ~sigma:sigma_beta in
  Mosfet.with_deltas model ~dvth ~dkp_rel ~dlambda_rel:draw.dlambda_rel

let perturb_circuit_with_draw spec draw rng circuit =
  Circuit.map_devices circuit (fun dev ->
      match dev with
      | Device.Mosfet m ->
          let model = perturb_model spec draw rng ~w:m.w ~l:m.l m.model in
          Device.Mosfet { m with model }
      | Device.Resistor _ | Device.Capacitor _ | Device.Vsource _
      | Device.Isource _ | Device.Vccs _ ->
          dev)

let perturb_circuit spec rng circuit =
  perturb_circuit_with_draw spec (draw_global spec rng) rng circuit

(* ---------- batch-first per-sample overrides ----------

   [Circuit.map_devices] applies its function through [List.rev_map] over
   the reversed device list, i.e. in REVERSE device-array order (index
   n-1 down to 0).  The overrides builders below must consume mismatch
   deviates in exactly that order so that the per-sample patching path is
   bit-identical to the historical full-rebuild path. *)

let overrides_with_draw spec draw rng circuit =
  let devices = Circuit.devices circuit in
  let n = Array.length devices in
  let out : Yield_spice.Mna.models = Array.make n None in
  for di = n - 1 downto 0 do
    match devices.(di) with
    | Device.Mosfet m ->
        out.(di) <- Some (perturb_model spec draw rng ~w:m.w ~l:m.l m.model)
    | Device.Resistor _ | Device.Capacitor _ | Device.Vsource _
    | Device.Isource _ | Device.Vccs _ ->
        ()
  done;
  out

let overrides spec rng circuit =
  overrides_with_draw spec (draw_global spec rng) rng circuit

let overrides_gen spec z circuit =
  let g = spec.global in
  (* field-by-field lets pin the deviate order the interface documents *)
  let zvn = z () in
  let zvp = z () in
  let zkn = z () in
  let zkp = z () in
  let zl = z () in
  let draw =
    {
      dvth_n = zvn *. g.sigma_vth_n;
      dvth_p = zvp *. g.sigma_vth_p;
      dkp_rel_n = zkn *. g.sigma_kp_rel_n;
      dkp_rel_p = zkp *. g.sigma_kp_rel_p;
      dlambda_rel = zl *. g.sigma_lambda_rel;
    }
  in
  let devices = Circuit.devices circuit in
  let n = Array.length devices in
  let out : Yield_spice.Mna.models = Array.make n None in
  for di = n - 1 downto 0 do
    match devices.(di) with
    | Device.Mosfet m ->
        let dvth_global, dkp_global =
          match m.model.Mosfet.polarity with
          | Mosfet.Nmos -> (draw.dvth_n, draw.dkp_rel_n)
          | Mosfet.Pmos -> (draw.dvth_p, draw.dkp_rel_p)
        in
        let sigma_vth =
          mismatch_sigma_vth spec m.model.Mosfet.polarity ~w:m.w ~l:m.l
        in
        let sigma_beta =
          mismatch_sigma_beta spec m.model.Mosfet.polarity ~w:m.w ~l:m.l
        in
        let dvth = dvth_global +. (z () *. sigma_vth) in
        let dkp_rel = dkp_global +. (z () *. sigma_beta) in
        out.(di) <-
          Some
            (Mosfet.with_deltas m.model ~dvth ~dkp_rel
               ~dlambda_rel:draw.dlambda_rel)
    | Device.Resistor _ | Device.Capacitor _ | Device.Vsource _
    | Device.Isource _ | Device.Vccs _ ->
        ()
  done;
  out

let apply_overrides circuit (models : Yield_spice.Mna.models) =
  let n = Array.length (Circuit.devices circuit) in
  (* map_devices visits devices in reverse array order; walk the index
     alongside it *)
  let di = ref n in
  Circuit.map_devices circuit (fun dev ->
      decr di;
      match dev with
      | Device.Mosfet m -> (
          match models.(!di) with
          | Some model -> Device.Mosfet { m with model }
          | None -> dev)
      | Device.Resistor _ | Device.Capacitor _ | Device.Vsource _
      | Device.Isource _ | Device.Vccs _ ->
          dev)
