(** Statistical process variation: the foundry-model substitute.

    Two components, following the standard structure of foundry statistical
    decks (and the paper's ref [11]):

    - {b global} (inter-die) variation: one draw per Monte Carlo sample shifts
      VTH0, KP and lambda of all devices of a polarity together;
    - {b local mismatch} (intra-die): each transistor additionally receives an
      independent threshold and beta perturbation following Pelgrom's law,
      [sigma(dVth) = avt / sqrt (W L)], [sigma(dBeta/Beta) = abeta / sqrt (W L)].

    The default coefficients keep this standard structure but are calibrated
    so the resulting OTA performance spreads match the order of magnitude the
    paper's Table 2 reports (the actual foundry deck being proprietary);
    see DESIGN.md §2. *)

type global_spec = {
  sigma_vth_n : float;  (** V, one-sigma NMOS threshold shift *)
  sigma_vth_p : float;
  sigma_kp_rel_n : float;  (** relative one-sigma on NMOS kp *)
  sigma_kp_rel_p : float;
  sigma_lambda_rel : float;  (** relative one-sigma on lambda, both polarities *)
}

type mismatch_spec = {
  avt_n : float;  (** V * m  (e.g. 9.5 mV*um = 9.5e-9 V*m) *)
  avt_p : float;
  abeta_n : float;  (** m  (relative mismatch coefficient) *)
  abeta_p : float;
}

type spec = { global : global_spec; mismatch : mismatch_spec }

val default_spec : spec

val zero_spec : spec
(** All sigmas zero; Monte Carlo through it reproduces nominal exactly. *)

val scale_spec : float -> spec -> spec
(** Multiply every sigma by a factor (for sensitivity/ablation studies). *)

type global_draw = {
  dvth_n : float;
  dvth_p : float;
  dkp_rel_n : float;
  dkp_rel_p : float;
  dlambda_rel : float;
}

val draw_global : spec -> Yield_stats.Rng.t -> global_draw

val global_dims : int
(** Number of independent global components (for stratified sampling). *)

val global_draw_of_normals : spec -> float array -> global_draw
(** Build a global draw from [global_dims] standard-normal deviates — the
    hook for Latin-hypercube (or quasi-Monte Carlo) global sampling.
    @raise Invalid_argument on arity mismatch. *)

val nominal_global : global_draw
(** All-zero draw. *)

val mismatch_sigma_vth :
  spec -> Yield_spice.Mosfet.polarity -> w:float -> l:float -> float
(** Pelgrom sigma for a device geometry (exposed for tests). *)

val perturb_model :
  spec -> global_draw -> Yield_stats.Rng.t ->
  w:float -> l:float -> Yield_spice.Mosfet.model -> Yield_spice.Mosfet.model
(** Apply the global draw plus a freshly sampled local mismatch to a device
    model. *)

val perturb_circuit :
  spec -> Yield_stats.Rng.t -> Yield_spice.Circuit.t -> Yield_spice.Circuit.t
(** One Monte Carlo instance of the circuit: draws a global sample, then an
    independent mismatch for every MOSFET.  The input circuit is unchanged. *)

val perturb_circuit_with_draw :
  spec -> global_draw -> Yield_stats.Rng.t -> Yield_spice.Circuit.t ->
  Yield_spice.Circuit.t
(** Like {!perturb_circuit} but with an externally supplied global draw
    (stratified/LHS sampling); mismatch is still drawn from [rng]. *)

(** {1 Batch-first per-sample overrides}

    The Monte Carlo inner loop instantiates a circuit once per front point
    and patches device models per sample ({!Yield_spice.Mna.models})
    instead of rebuilding the circuit.  The builders below consume random
    deviates in exactly the order the historical rebuild path
    ({!perturb_circuit} through [Circuit.map_devices]) did — reverse
    device-array order — so patching is bit-identical to rebuilding
    (test-pinned). *)

val overrides :
  spec -> Yield_stats.Rng.t -> Yield_spice.Circuit.t -> Yield_spice.Mna.models
(** One Monte Carlo sample as a per-device model override array: draws a
    global sample, then an independent mismatch for every MOSFET.  Consumes
    the same deviates as {!perturb_circuit}; feeding the result to
    {!apply_overrides} reproduces its output exactly. *)

val overrides_with_draw :
  spec -> global_draw -> Yield_stats.Rng.t -> Yield_spice.Circuit.t ->
  Yield_spice.Mna.models
(** Like {!overrides} but with an externally supplied global draw
    (stratified/LHS sampling); mismatch is still drawn from [rng]. *)

val overrides_gen :
  spec -> (unit -> float) -> Yield_spice.Circuit.t -> Yield_spice.Mna.models
(** Like {!overrides} but with every standard-normal deviate supplied by
    the callback: the five global components (vth_n, vth_p, kp_n, kp_p,
    lambda) first, then a threshold and a beta mismatch deviate per MOSFET
    in the order {!perturb_circuit} visits devices (reverse device-array
    order).  The hook for truncated or quasi-random sampling — the
    corner-soundness property tests draw deviates conditioned to the
    ±k·sigma box this way.  (Replaces the retired [perturb_circuit_gen];
    compose with {!apply_overrides} for a full circuit.) *)

val apply_overrides :
  Yield_spice.Circuit.t -> Yield_spice.Mna.models -> Yield_spice.Circuit.t
(** Bake an override array into a fresh circuit (the input is unchanged).
    [apply_overrides c (overrides spec rng c)] is bit-identical to
    [perturb_circuit spec rng c] at equal RNG state. *)
