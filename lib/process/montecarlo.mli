(** Generic Monte Carlo driver and yield estimation.

    Every batch is instrumented: a ["mc.batch"] span (plus one
    ["exec.worker"] span per participating domain on the pool path, whose
    durations give the per-domain utilisation) and the
    ["mc.samples.attempted"] / ["mc.samples.failed"] counters in
    {!Yield_obs.Metrics}. *)

type 'a counted = {
  results : 'a array;  (** the successful samples, in sample order *)
  attempted : int;  (** how many samples were drawn ([= samples]) *)
  failed : int;  (** how many returned [None] (e.g. DC non-convergence) *)
}
(** A batch outcome that keeps the failure accounting: [attempted] is the
    honest denominator a yield estimate needs, which the bare result array
    of {!run} silently loses. *)

val run_counted :
  samples:int -> rng:Yield_stats.Rng.t -> (Yield_stats.Rng.t -> 'a option) ->
  'a counted
(** [run_counted ~samples ~rng f] calls [f] with an independent child
    stream per sample and collects the successful results together with the
    attempted/failed counts. *)

val run_pool_counted :
  pool:Yield_exec.Pool.t -> samples:int -> rng:Yield_stats.Rng.t ->
  (Yield_stats.Rng.t -> 'a option) -> 'a counted
(** Like {!run_counted} but fanned out over a shared {!Yield_exec.Pool}.
    Child streams are split sequentially {e before} the fan-out and results
    are collected in sample order, so the outcome is {e identical} to
    {!run_counted} with the same [rng] — including which samples a fault
    schedule injects away.  Delegates to {!run_counted} (the exact serial
    code path) when the pool has one participant or [samples <= 1].  [f]
    must not share mutable state across calls. *)

val run :
  samples:int -> rng:Yield_stats.Rng.t -> (Yield_stats.Rng.t -> 'a option) ->
  'a array
(** [run_counted] keeping only the successful results; the result array may
    be shorter than [samples].  Prefer {!run_counted} when the caller needs
    a denominator. *)

val run_pool :
  pool:Yield_exec.Pool.t -> samples:int -> rng:Yield_stats.Rng.t ->
  (Yield_stats.Rng.t -> 'a option) -> 'a array
(** [run_pool_counted] keeping only the successful results. *)

type yield_estimate = {
  pass : int;
  total : int;
  yield : float;  (** pass / total *)
  ci_low : float;  (** 95 % Wilson confidence bounds *)
  ci_high : float;
}

val estimate_yield : pass:int -> total:int -> yield_estimate
(** @raise Invalid_argument when [total = 0] or [pass] outside [0, total]. *)

val yield_of : ('a -> bool) -> 'a array -> yield_estimate
(** @raise Invalid_argument on an empty result array — prefer
    {!yield_of_counted}, which degrades instead of raising. *)

type yield_outcome =
  | Estimate of yield_estimate
  | No_valid_samples of { attempted : int; failed : int }
      (** every sample failed: there is no denominator, so the flow reports
          the yield as unknown instead of crashing *)

val yield_of_counted : ('a -> bool) -> 'a counted -> yield_outcome
(** Total-failure-safe yield estimate over a counted batch. *)

val yield_outcome_to_string : yield_outcome -> string

val spread_pct : float array -> nominal:float -> float
(** The paper's variation measure: the larger one-sided deviation of the
    sample 3-sigma envelope from the nominal value, as a percentage of the
    nominal — i.e. the dGain/dPM columns of Table 2.  Location and scale are
    estimated robustly (median, IQR/1.349) so a single sample jumping to a
    different operating branch does not dominate the envelope.
    @raise Invalid_argument on empty samples or zero nominal. *)
