type telemetry = {
  trace_stream : string option;
  span_sample : string option;
  snapshot_every_s : float option;
}

type t = {
  conditions : Yield_circuits.Ota_testbench.conditions;
  variation : Yield_process.Variation.spec;
  ga : Yield_ga.Ga.config;
  mc_samples : int;
  front_stride : int;
  control : string;
  seed : int;
  jobs : int;
  telemetry : telemetry;
}

let no_telemetry =
  { trace_stream = None; span_sample = None; snapshot_every_s = None }

let paper_scale =
  {
    conditions = Yield_circuits.Ota_testbench.default_conditions;
    variation = Yield_process.Variation.default_spec;
    ga =
      {
        Yield_ga.Ga.default_config with
        Yield_ga.Ga.population_size = 100;
        generations = 100;
      };
    mc_samples = 200;
    front_stride = 1;
    control = "3E";
    seed = 2008;
    jobs = 1;
    telemetry = no_telemetry;
  }

let fast_scale =
  {
    paper_scale with
    ga =
      {
        Yield_ga.Ga.default_config with
        Yield_ga.Ga.population_size = 40;
        generations = 25;
      };
    mc_samples = 40;
    front_stride = 4;
  }

let telemetry_of_env () =
  let nonempty k =
    match Sys.getenv_opt k with Some "" | None -> None | Some v -> Some v
  in
  {
    trace_stream = nonempty "YIELDLAB_TRACE_STREAM";
    span_sample = nonempty "YIELDLAB_SPAN_SAMPLE";
    snapshot_every_s =
      Option.bind (nonempty "YIELDLAB_SNAPSHOT_EVERY") (fun v ->
          match float_of_string_opt v with
          | Some s when s > 0. -> Some s
          | Some _ | None -> None);
  }

let of_env () =
  let base =
    match Sys.getenv_opt "YIELDLAB_FAST" with
    | Some v when v <> "" && v <> "0" -> fast_scale
    | Some _ | None -> paper_scale
  in
  {
    base with
    jobs = Yield_exec.Jobs.resolve ();
    telemetry = telemetry_of_env ();
  }

let fingerprint t =
  (* everything the checkpointed stages' determinism depends on; resuming
     under a different fingerprint is refused.  [jobs] and [telemetry] are
     deliberately absent: results are jobs-independent and observability
     never feeds back into them, so a serial checkpoint may be resumed
     under a pool, with or without a trace stream *)
  Printf.sprintf "v1;seed=%d;pop=%d;gens=%d;mc=%d;stride=%d;control=%s"
    t.seed t.ga.Yield_ga.Ga.population_size t.ga.Yield_ga.Ga.generations
    t.mc_samples t.front_stride t.control

let scale_name t =
  if
    t.ga.Yield_ga.Ga.population_size = paper_scale.ga.Yield_ga.Ga.population_size
    && t.ga.Yield_ga.Ga.generations = paper_scale.ga.Yield_ga.Ga.generations
    && t.mc_samples = paper_scale.mc_samples
  then "paper-scale"
  else "reduced-scale"
