type telemetry = {
  trace_stream : string option;
  span_sample : string option;
  snapshot_every_s : float option;
}

type prescreen = {
  enabled : bool;
  k_sigma : float;
  min_gain_db : float;
  min_pm_deg : float;
  pass_budget_frac : float;
}

type t = {
  conditions : Yield_circuits.Ota_testbench.conditions;
  variation : Yield_process.Variation.spec;
  ga : Yield_ga.Ga.config;
  mc_samples : int;
  front_stride : int;
  control : string;
  seed : int;
  jobs : int;
  solver : string;
  telemetry : telemetry;
  prescreen : prescreen;
}

let no_telemetry =
  { trace_stream = None; span_sample = None; snapshot_every_s = None }

let no_prescreen =
  {
    enabled = false;
    k_sigma = 3.;
    min_gain_db = 0.;
    min_pm_deg = 0.;
    pass_budget_frac = 1.;
  }

let paper_scale =
  {
    conditions = Yield_circuits.Ota_testbench.default_conditions;
    variation = Yield_process.Variation.default_spec;
    ga =
      {
        Yield_ga.Ga.default_config with
        Yield_ga.Ga.population_size = 100;
        generations = 100;
      };
    mc_samples = 200;
    front_stride = 1;
    control = "3E";
    seed = 2008;
    jobs = 1;
    solver = "dense";
    telemetry = no_telemetry;
    prescreen = no_prescreen;
  }

let fast_scale =
  {
    paper_scale with
    ga =
      {
        Yield_ga.Ga.default_config with
        Yield_ga.Ga.population_size = 40;
        generations = 25;
      };
    mc_samples = 40;
    front_stride = 4;
  }

let telemetry_of_env () =
  let nonempty k =
    match Sys.getenv_opt k with Some "" | None -> None | Some v -> Some v
  in
  {
    trace_stream = nonempty "YIELDLAB_TRACE_STREAM";
    span_sample = nonempty "YIELDLAB_SPAN_SAMPLE";
    snapshot_every_s =
      Option.bind (nonempty "YIELDLAB_SNAPSHOT_EVERY") (fun v ->
          match float_of_string_opt v with
          | Some s when s > 0. -> Some s
          | Some _ | None -> None);
  }

let prescreen_of_env () =
  let flag k =
    match Sys.getenv_opt k with
    | Some v when v <> "" && v <> "0" -> true
    | Some _ | None -> false
  in
  let num k default =
    match Option.bind (Sys.getenv_opt k) float_of_string_opt with
    | Some v -> v
    | None -> default
  in
  let d = no_prescreen in
  if not (flag "YIELDLAB_PRESCREEN") then d
  else
    {
      enabled = true;
      k_sigma = num "YIELDLAB_PRESCREEN_K" d.k_sigma;
      min_gain_db = num "YIELDLAB_PRESCREEN_MIN_GAIN" d.min_gain_db;
      min_pm_deg = num "YIELDLAB_PRESCREEN_MIN_PM" d.min_pm_deg;
      pass_budget_frac =
        (let f = num "YIELDLAB_PRESCREEN_PASS_BUDGET" d.pass_budget_frac in
         if f > 0. && f <= 1. then f else d.pass_budget_frac);
    }

(* the raw name, not a parsed backend: Config_lint (C007) reports unknown
   names as preflight errors with the original spelling *)
let solver_of_env () =
  match Sys.getenv_opt "YIELDLAB_SOLVER" with
  | Some v when v <> "" -> v
  | Some _ | None -> "dense"

let of_env () =
  let base =
    match Sys.getenv_opt "YIELDLAB_FAST" with
    | Some v when v <> "" && v <> "0" -> fast_scale
    | Some _ | None -> paper_scale
  in
  {
    base with
    jobs = Yield_exec.Jobs.resolve ();
    solver = solver_of_env ();
    telemetry = telemetry_of_env ();
    prescreen = prescreen_of_env ();
  }

let fingerprint t =
  (* everything the checkpointed stages' determinism depends on; resuming
     under a different fingerprint is refused.  [jobs] and [telemetry] are
     deliberately absent: results are jobs-independent and observability
     never feeds back into them, so a serial checkpoint may be resumed
     under a pool, with or without a trace stream *)
  let base =
    Printf.sprintf "v1;seed=%d;pop=%d;gens=%d;mc=%d;stride=%d;control=%s"
      t.seed t.ga.Yield_ga.Ga.population_size t.ga.Yield_ga.Ga.generations
      t.mc_samples t.front_stride t.control
  in
  (* the prescreen changes which points consume Monte Carlo budget, so it
     is part of the fingerprint — but only when enabled, so every
     pre-existing checkpoint stays resumable *)
  let base =
    if not t.prescreen.enabled then base
    else
      Printf.sprintf "%s;prescreen=k:%g,g:%g,pm:%g,b:%g" base
        t.prescreen.k_sigma t.prescreen.min_gain_db t.prescreen.min_pm_deg
        t.prescreen.pass_budget_frac
  in
  (* the solver changes the numeric kernel the Monte Carlo stage runs
     through, so it is part of the fingerprint — but only when it departs
     from the default, so every pre-existing checkpoint stays resumable *)
  if t.solver = "dense" then base else base ^ ";solver=" ^ t.solver

let scale_name t =
  if
    t.ga.Yield_ga.Ga.population_size = paper_scale.ga.Yield_ga.Ga.population_size
    && t.ga.Yield_ga.Ga.generations = paper_scale.ga.Yield_ga.Ga.generations
    && t.mc_samples = paper_scale.mc_samples
  then "paper-scale"
  else "reduced-scale"
