(** Configuration of the full model-generation flow (Figure 3). *)

type telemetry = {
  trace_stream : string option;
      (** stream span events incrementally to this path
          ([.jsonl] → JSONL, other [.json] → Chrome trace) *)
  span_sample : string option;
      (** deterministic span-sampling spec, e.g. ["mc.batch=0.1;exec.*=0"] *)
  snapshot_every_s : float option;
      (** periodic metrics-delta snapshots into the stream *)
}
(** Runtime observability knobs — never part of {!fingerprint}, since they
    cannot affect results.  {!Flow.run} arms them idempotently
    ({!Yield_obs.Obs.ensure_telemetry}), so CLI flags applied earlier
    always win over env-derived values. *)

type prescreen = {
  enabled : bool;
  k_sigma : float;
      (** truncation of the parameter box handed to {!Corner_lint} — the
          proofs hold over the ±k·sigma box, and [Provably_pass]/[_fail]
          claims about unbounded Monte Carlo hold up to the normal mass
          outside it (DESIGN.md §4a) *)
  min_gain_db : float;  (** spec window the Y-code verdicts compare against *)
  min_pm_deg : float;
  pass_budget_frac : float;
      (** fraction of [mc_samples] a [Provably_pass] point still runs
          (1.0 = no shrink); clamped to (0, 1] *)
}
(** Opt-in corner-proof Monte Carlo pre-screen (see {!Corner_lint}):
    [Provably_fail] points skip MC entirely, [Provably_pass] points may run
    a reduced budget, [Undecided] points are untouched. *)

type t = {
  conditions : Yield_circuits.Ota_testbench.conditions;
  variation : Yield_process.Variation.spec;
  ga : Yield_ga.Ga.config;
  mc_samples : int;  (** Monte Carlo samples per Pareto point (paper: 200) *)
  front_stride : int;
      (** analyse every k-th Pareto point in the variation step (1 = all,
          the paper's setting) *)
  control : string;  (** table-model control string (paper: "3E") *)
  seed : int;
  jobs : int;
      (** domain-pool size every parallel stage of {!Flow.run} obeys (WBGA
          evaluation, Pareto-front re-simulation, Monte Carlo batches);
          [1] takes the exact serial code path.  Results are
          jobs-independent, so [jobs] is excluded from {!fingerprint}. *)
  solver : string;
      (** linear-solver backend name for the Monte Carlo inner loop
          (["dense"] or ["csr"]; see {!Yield_numeric.Linsys.backend_of_string}).
          Kept as the raw string so {!Config_lint} can report unknown names
          (C007).  Part of {!fingerprint} only when it departs from
          ["dense"].  The optimisation and nominal-front stages always run
          dense, so [perf_model.tbl] is solver-independent. *)
  telemetry : telemetry;
  prescreen : prescreen;
}

val no_telemetry : telemetry
(** All knobs off — what {!paper_scale} and {!fast_scale} carry. *)

val no_prescreen : prescreen
(** Disabled; defaults [k_sigma = 3.], window [(0, 0)], budget fraction 1. *)

val paper_scale : t
(** The paper's §4 settings: population 100 x 100 generations (10,000
    evaluation samples), 200 MC samples on every Pareto point.
    [jobs = 1] (serial): callers opt into parallelism explicitly. *)

val fast_scale : t
(** Reduced settings for smoke runs: 40 x 25 optimisation, 40 MC samples on
    every 4th Pareto point.  [jobs = 1], as for {!paper_scale}. *)

val of_env : unit -> t
(** [paper_scale], or [fast_scale] when the environment variable
    [YIELDLAB_FAST] is set to a non-empty value other than ["0"]; [jobs] is
    resolved through {!Yield_exec.Jobs.resolve} (CLI request >
    [YIELDLAB_JOBS] > recommended domain count); [solver] from
    {!solver_of_env}; [telemetry] from {!telemetry_of_env}; [prescreen]
    from {!prescreen_of_env}. *)

val solver_of_env : unit -> string
(** [YIELDLAB_SOLVER], verbatim (empty counts as unset → ["dense"]).
    Deliberately unvalidated: preflight lint (C007) owns the error
    message. *)

val prescreen_of_env : unit -> prescreen
(** Enabled by [YIELDLAB_PRESCREEN] (non-empty, non-["0"]); then
    [YIELDLAB_PRESCREEN_K], [YIELDLAB_PRESCREEN_MIN_GAIN],
    [YIELDLAB_PRESCREEN_MIN_PM] and [YIELDLAB_PRESCREEN_PASS_BUDGET]
    override the {!no_prescreen} defaults (non-numeric values are ignored;
    the budget fraction must land in (0, 1]). *)

val telemetry_of_env : unit -> telemetry
(** [YIELDLAB_TRACE_STREAM] (path), [YIELDLAB_SPAN_SAMPLE] (spec) and
    [YIELDLAB_SNAPSHOT_EVERY] (seconds; non-numeric or [<= 0] values are
    ignored).  Empty variables count as unset. *)

val scale_name : t -> string

val fingerprint : t -> string
(** Identity of a checkpointed run (seed, GA/MC scale, control string, plus
    prescreen and solver when non-default): {!Flow.run} refuses to resume a
    checkpoint directory recorded under a different fingerprint. *)
