(** Configuration of the full model-generation flow (Figure 3). *)

type t = {
  conditions : Yield_circuits.Ota_testbench.conditions;
  variation : Yield_process.Variation.spec;
  ga : Yield_ga.Ga.config;
  mc_samples : int;  (** Monte Carlo samples per Pareto point (paper: 200) *)
  front_stride : int;
      (** analyse every k-th Pareto point in the variation step (1 = all,
          the paper's setting) *)
  control : string;  (** table-model control string (paper: "3E") *)
  seed : int;
  jobs : int;
      (** domain-pool size every parallel stage of {!Flow.run} obeys (WBGA
          evaluation, Pareto-front re-simulation, Monte Carlo batches);
          [1] takes the exact serial code path.  Results are
          jobs-independent, so [jobs] is excluded from {!fingerprint}. *)
}

val paper_scale : t
(** The paper's §4 settings: population 100 x 100 generations (10,000
    evaluation samples), 200 MC samples on every Pareto point.
    [jobs = 1] (serial): callers opt into parallelism explicitly. *)

val fast_scale : t
(** Reduced settings for smoke runs: 40 x 25 optimisation, 40 MC samples on
    every 4th Pareto point.  [jobs = 1], as for {!paper_scale}. *)

val of_env : unit -> t
(** [paper_scale], or [fast_scale] when the environment variable
    [YIELDLAB_FAST] is set to a non-empty value other than ["0"]; [jobs] is
    resolved through {!Yield_exec.Jobs.resolve} (CLI request >
    [YIELDLAB_JOBS] > recommended domain count). *)

val scale_name : t -> string

val fingerprint : t -> string
(** Identity of a checkpointed run (seed, GA/MC scale, control string):
    {!Flow.run} refuses to resume a checkpoint directory recorded under a
    different fingerprint. *)
