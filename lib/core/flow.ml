module Ota = Yield_circuits.Ota
module Gtb = Yield_circuits.Testbench
module Wbga = Yield_ga.Wbga
module Rng = Yield_stats.Rng
module Montecarlo = Yield_process.Montecarlo
module Variation = Yield_process.Variation
module Perf_model = Yield_behavioural.Perf_model
module Var_model = Yield_behavioural.Var_model
module Macromodel = Yield_behavioural.Macromodel
module Yield_target = Yield_behavioural.Yield_target
module Metrics = Yield_obs.Metrics
module Span = Yield_obs.Span

(* the flow's public accounting is derived from the metrics registry: the
   same counters every sink exports ("wbga.evaluations" is the one [Wbga]
   bumps, "mc.samples.attempted" the one [Montecarlo] bumps) *)
let c_front_sims = Metrics.counter "flow.front_sims"

let c_wbga_evaluations = Metrics.counter "wbga.evaluations"

let c_mc_attempted = Metrics.counter "mc.samples.attempted"

type counts = {
  optimisation_sims : int;
  front_sims : int;
  mc_sims : int;
}

let total_sims c = c.optimisation_sims + c.front_sims + c.mc_sims

type timings = { optimisation_s : float; mc_s : float; total_s : float }

type t = {
  config : Config.t;
  wbga : Wbga.result;
  front_points : Perf_model.point array;
  var_points : Var_model.point array;
  perf_model : Perf_model.t;
  var_model : Var_model.t;
  macromodel : Macromodel.t;
  counts : counts;
  timings : timings;
}

let nop _ = ()

type verification = {
  nominal : Gtb.perf;
  yield : Montecarlo.yield_estimate;
  gains : float array;
  pms : float array;
}

let design_for_spec t spec = Yield_target.plan t.macromodel spec

let save_tables t ~dir =
  let perf_path = Filename.concat dir "perf_model.tbl" in
  let var_path = Filename.concat dir "variation_model.tbl" in
  Yield_table.Tbl_io.write ~path:perf_path (Perf_model.to_table t.perf_model);
  Yield_table.Tbl_io.write ~path:var_path (Var_model.to_table t.var_model);
  [ perf_path; var_path ]

let load_models ~dir ~control =
  let perf =
    Perf_model.of_table ~control
      (Yield_table.Tbl_io.read ~path:(Filename.concat dir "perf_model.tbl"))
  in
  let var =
    Var_model.of_table ~control
      (Yield_table.Tbl_io.read
         ~path:(Filename.concat dir "variation_model.tbl"))
  in
  (perf, var)

module Make (A : Yield_circuits.Amplifier.S) = struct
  module T = Gtb.Make (A)

  let run ?(log = nop) (config : Config.t) =
    let conditions = config.Config.conditions in
    (* counter baselines: the per-run counts are registry deltas *)
    let evaluations0 = Metrics.value c_wbga_evaluations in
    let front_sims0 = Metrics.value c_front_sims in
    let mc_attempted0 = Metrics.value c_mc_attempted in
    let optimisation_s = ref 0. in
    let mc_s = ref 0. in
    let build () =
      (* --- step 1-2: netlist generation + WBGA optimisation --- *)
      let evaluate params =
        match T.evaluate ~conditions (A.params_of_array params) with
        | Some perf when Gtb.feasible conditions perf ->
            Some (Gtb.objectives perf)
        | Some _ | None -> None
      in
      let rng = Rng.create config.Config.seed in
      log
        (Printf.sprintf "flow: WBGA %d x %d"
           config.Config.ga.Yield_ga.Ga.population_size
           config.Config.ga.Yield_ga.Ga.generations);
      let wbga, wbga_s =
        Span.timed ~name:"flow.wbga" (fun () ->
            Wbga.run ~config:config.Config.ga ~param_ranges:A.param_ranges
              ~objectives:
                [|
                  { Wbga.name = "gain"; maximise = true };
                  { Wbga.name = "pm"; maximise = true };
                |]
              ~rng ~evaluate ())
      in
      optimisation_s := wbga_s;
      log
        (Printf.sprintf "flow: %d evaluations, %d infeasible, front %d"
           wbga.Wbga.evaluations wbga.Wbga.failures
           (Array.length wbga.Wbga.front));
      if Array.length wbga.Wbga.front < 2 then
        failwith "Flow.run: optimisation produced no usable Pareto front";
      (* --- step 3: performance model: nominal re-simulation of the front
         for the auxiliary columns (rout, fu) --- *)
      let front_points =
        Span.with_ ~name:"flow.front-resim" (fun () ->
            Array.to_list wbga.Wbga.front
            |> List.filter_map (fun (e : Wbga.entry) ->
                   Metrics.incr c_front_sims;
                   match
                     T.evaluate ~conditions (A.params_of_array e.Wbga.params)
                   with
                   | Some perf ->
                       Some
                         {
                           Perf_model.gain_db = perf.Gtb.gain_db;
                           pm_deg = perf.Gtb.phase_margin_deg;
                           params = e.Wbga.params;
                           rout = perf.Gtb.rout_est;
                           unity_gain_hz = perf.Gtb.unity_gain_hz;
                         }
                   | None -> None)
            |> Array.of_list)
      in
      (* --- step 4: variation model: Monte Carlo on (a stride of) the
         front --- *)
      let var_points, var_mc_s =
        Span.timed ~name:"flow.mc" (fun () ->
            let stride = Stdlib.max 1 config.Config.front_stride in
            let mc_rng = Rng.create (config.Config.seed + 1) in
            let var_points = ref [] in
            Array.iteri
              (fun i (p : Perf_model.point) ->
                if i mod stride = 0 then begin
                  let params = A.params_of_array p.Perf_model.params in
                  let outcome =
                    Montecarlo.run_parallel_counted
                      ~samples:config.Config.mc_samples ~rng:mc_rng
                      (fun sample_rng ->
                        T.evaluate_sampled ~conditions
                          ~spec:config.Config.variation ~rng:sample_rng params)
                  in
                  let results = outcome.Montecarlo.results in
                  if Array.length results >= 8 then begin
                    let gains = Array.map (fun r -> r.Gtb.gain_db) results in
                    let pms =
                      Array.map (fun r -> r.Gtb.phase_margin_deg) results
                    in
                    let dgain =
                      Montecarlo.spread_pct gains ~nominal:p.Perf_model.gain_db
                    in
                    let dpm =
                      Montecarlo.spread_pct pms ~nominal:p.Perf_model.pm_deg
                    in
                    var_points :=
                      {
                        Var_model.gain_db = p.Perf_model.gain_db;
                        pm_deg = p.Perf_model.pm_deg;
                        dgain_pct = dgain;
                        dpm_pct = dpm;
                        mc_samples = Array.length results;
                      }
                      :: !var_points
                  end
                end)
              front_points;
            Array.of_list (List.rev !var_points))
      in
      mc_s := var_mc_s;
      log
        (Printf.sprintf "flow: variation model from %d points x %d MC samples"
           (Array.length var_points) config.Config.mc_samples);
      (* --- step 5: table models --- *)
      let perf_model, var_model, macromodel =
        Span.with_ ~name:"flow.tables" (fun () ->
            let perf_model =
              Perf_model.create ~control:config.Config.control front_points
            in
            let var_model =
              Var_model.create ~control:config.Config.control var_points
            in
            let macromodel = Macromodel.create perf_model var_model in
            (perf_model, var_model, macromodel))
      in
      (wbga, front_points, var_points, perf_model, var_model, macromodel)
    in
    let (wbga, front_points, var_points, perf_model, var_model, macromodel),
        total_s =
      Span.timed ~name:"flow.run" build
    in
    {
      config;
      wbga;
      front_points;
      var_points;
      perf_model;
      var_model;
      macromodel;
      counts =
        {
          optimisation_sims = Metrics.value c_wbga_evaluations - evaluations0;
          front_sims = Metrics.value c_front_sims - front_sims0;
          mc_sims = Metrics.value c_mc_attempted - mc_attempted0;
        };
      timings =
        { optimisation_s = !optimisation_s; mc_s = !mc_s; total_s };
    }

  let verify_design t ?(samples = 500) ?(seed = 77) ~spec params =
    let conditions = t.config.Config.conditions in
    match T.evaluate ~conditions params with
    | None -> Error "verify_design: nominal evaluation failed"
    | Some nominal ->
        let rng = Rng.create seed in
        let outcome =
          Montecarlo.run_parallel_counted ~samples ~rng (fun sample_rng ->
              T.evaluate_sampled ~conditions ~spec:t.config.Config.variation
                ~rng:sample_rng params)
        in
        let results = outcome.Montecarlo.results in
        if Array.length results = 0 then
          Error
            (Printf.sprintf
               "verify_design: all samples failed (%d attempted, %d failed)"
               outcome.Montecarlo.attempted outcome.Montecarlo.failed)
        else begin
          let gains = Array.map (fun r -> r.Gtb.gain_db) results in
          let pms = Array.map (fun r -> r.Gtb.phase_margin_deg) results in
          let ok r =
            Yield_target.meets spec ~gain_db:r.Gtb.gain_db
              ~pm_deg:r.Gtb.phase_margin_deg
          in
          Ok { nominal; yield = Montecarlo.yield_of ok results; gains; pms }
        end
end

module Ota_flow = Make (Ota)

let run = Ota_flow.run

let verify_design = Ota_flow.verify_design
