module Ota = Yield_circuits.Ota
module Gtb = Yield_circuits.Testbench
module Mna = Yield_spice.Mna
module Linsys = Yield_numeric.Linsys
module Wbga = Yield_ga.Wbga
module Rng = Yield_stats.Rng
module Montecarlo = Yield_process.Montecarlo
module Perf_model = Yield_behavioural.Perf_model
module Var_model = Yield_behavioural.Var_model
module Macromodel = Yield_behavioural.Macromodel
module Yield_target = Yield_behavioural.Yield_target
module Metrics = Yield_obs.Metrics
module Span = Yield_obs.Span
module Obs = Yield_obs.Obs
module Json = Yield_obs.Json
module Fault = Yield_resilience.Fault
module Pool = Yield_exec.Pool
module Codec = Yield_resilience.Codec
module Checkpoint = Yield_resilience.Checkpoint
module Diagnostic = Yield_analyse.Diagnostic
module Config_lint = Yield_analyse.Config_lint
module Corner_lint = Yield_analyse.Corner_lint
module Netlist_lint = Yield_analyse.Netlist_lint
module Table_lint = Yield_analyse.Table_lint
module Va_lint = Yield_analyse.Va_lint

(* the flow's public accounting is derived from the metrics registry: the
   same counters every sink exports ("wbga.evaluations" is the one [Wbga]
   bumps, "mc.samples.attempted" the one [Montecarlo] bumps) *)
let c_front_sims = Metrics.counter "flow.front_sims"

let c_wbga_evaluations = Metrics.counter "wbga.evaluations"

let c_mc_attempted = Metrics.counter "mc.samples.attempted"

let c_degraded = Metrics.counter "flow.points.degraded"

let c_preflight_findings = Metrics.counter "preflight.findings"

let c_preflight_errors = Metrics.counter "preflight.errors"

(* the corner-proof Monte Carlo pre-screen (Config.prescreen) *)
let c_ps_points = Metrics.counter "flow.prescreen.points"

let c_ps_skipped = Metrics.counter "flow.prescreen.skipped"

let c_ps_shrunk = Metrics.counter "flow.prescreen.shrunk"

let c_ps_passed = Metrics.counter "flow.prescreen.passed"

let c_ps_undecided = Metrics.counter "flow.prescreen.undecided"

(* crash points for the checkpoint/resume tests: each fires just after the
   corresponding stage persisted its state, simulating a kill there *)
let fp_wbga_gen = Fault.point "flow.wbga.generation"

let fp_mc_point = Fault.point "flow.mc.point"

type counts = {
  optimisation_sims : int;
  front_sims : int;
  mc_sims : int;
}

let total_sims c = c.optimisation_sims + c.front_sims + c.mc_sims

type prescreen_counts = {
  analysed : int;
  fail_skipped : int;
  pass_shrunk : int;
  provably_passed : int;
  undecided : int;
}

type timings = { optimisation_s : float; mc_s : float; total_s : float }

type t = {
  config : Config.t;
  wbga : Wbga.result;
  front_points : Perf_model.point array;
  var_points : Var_model.point array;
  perf_model : Perf_model.t;
  var_model : Var_model.t;
  macromodel : Macromodel.t;
  counts : counts;
  prescreen : prescreen_counts option;
  timings : timings;
}

let nop _ = ()

type verification = {
  nominal : Gtb.perf;
  yield : Montecarlo.yield_estimate;
  gains : float array;
  pms : float array;
}

let design_for_spec t spec = Yield_target.plan t.macromodel spec

let save_tables t ~dir =
  Yield_resilience.Atomic_io.mkdir_p dir;
  let perf_path = Filename.concat dir "perf_model.tbl" in
  let var_path = Filename.concat dir "variation_model.tbl" in
  Yield_table.Tbl_io.write ~path:perf_path (Perf_model.to_table t.perf_model);
  Yield_table.Tbl_io.write ~path:var_path (Var_model.to_table t.var_model);
  [ perf_path; var_path ]

let load_models ~dir ~control =
  let perf_table =
    (* strict load: the gain column feeds spline knots, so the same
       monotonicity the preflight linter checks (T003) is enforced here *)
    match
      Yield_table.Tbl_io.read_strict
        ~path:(Filename.concat dir "perf_model.tbl")
        ~axes:[ "gain" ]
    with
    | Ok t -> t
    | Error e -> failwith (Yield_table.Tbl_io.read_error_to_string e)
  in
  let perf = Perf_model.of_table ~control perf_table in
  let var =
    Var_model.of_table ~control
      (Yield_table.Tbl_io.read
         ~path:(Filename.concat dir "variation_model.tbl"))
  in
  (perf, var)

(* preflight for the table-consuming entry points (design / export-va):
   everything [load_models] would die on, plus what it would silently
   accept and then answer badly.  The perf table is linted with the same
   strict gain axis [load_models] enforces; the variation table with no
   axis constraint, matching the tolerant [Tbl_io.read] path.  [spec]
   additionally runs the T007 coverage check, and the Verilog-A module
   that [export-va] would emit with this control is linted structurally. *)
let lint_models ?spec ~dir ~control () =
  let perf_path = Filename.concat dir "perf_model.tbl" in
  let var_path = Filename.concat dir "variation_model.tbl" in
  let column_range table_path column =
    match Yield_table.Tbl_io.read_result ~path:table_path with
    | Error _ -> None (* already a T001 from check_file *)
    | Ok t -> begin
        match Yield_table.Tbl_io.column_opt t column with
        | Some xs when Array.length xs > 0 ->
            Some
              ( Array.fold_left Float.min xs.(0) xs,
                Array.fold_left Float.max xs.(0) xs )
        | Some _ | None -> None
      end
  in
  let coverage =
    match spec with
    | None -> []
    | Some (s : Yield_target.spec) ->
        let against table_path column query =
          match column_range table_path column with
          | None -> []
          | Some (lo, hi) ->
              Table_lint.spec_coverage ~file:table_path ~control ~axis:column
                ~lo ~hi ~query ()
        in
        against perf_path "gain" s.Yield_target.min_gain_db
        @ against var_path "pm" s.Yield_target.min_pm_deg
  in
  Table_lint.check_file ~axes:[ "gain" ] ~control perf_path
  @ Table_lint.check_file ~axes:[] var_path
  @ coverage
  @ Va_lint.check (Yield_behavioural.Verilog_a.module_ast ~control ())

(* ---------- checkpoint codecs for the flow's stage payloads ---------- *)

let perf_point_to_json (p : Perf_model.point) =
  Json.Obj
    [
      ("gain_db", Codec.float_ p.Perf_model.gain_db);
      ("pm_deg", Codec.float_ p.Perf_model.pm_deg);
      ("params", Codec.float_array p.Perf_model.params);
      ("rout", Codec.float_ p.Perf_model.rout);
      ("unity_gain_hz", Codec.float_ p.Perf_model.unity_gain_hz);
    ]

let perf_point_of_json j =
  {
    Perf_model.gain_db = Codec.to_float (Codec.member "gain_db" j);
    pm_deg = Codec.to_float (Codec.member "pm_deg" j);
    params = Codec.to_float_array (Codec.member "params" j);
    rout = Codec.to_float (Codec.member "rout" j);
    unity_gain_hz = Codec.to_float (Codec.member "unity_gain_hz" j);
  }

let var_point_to_json (p : Var_model.point) =
  Json.Obj
    [
      ("gain_db", Codec.float_ p.Var_model.gain_db);
      ("pm_deg", Codec.float_ p.Var_model.pm_deg);
      ("dgain_pct", Codec.float_ p.Var_model.dgain_pct);
      ("dpm_pct", Codec.float_ p.Var_model.dpm_pct);
      ("mc_samples", Codec.int_ p.Var_model.mc_samples);
    ]

let var_point_of_json j =
  {
    Var_model.gain_db = Codec.to_float (Codec.member "gain_db" j);
    pm_deg = Codec.to_float (Codec.member "pm_deg" j);
    dgain_pct = Codec.to_float (Codec.member "dgain_pct" j);
    dpm_pct = Codec.to_float (Codec.member "dpm_pct" j);
    mc_samples = Codec.to_int (Codec.member "mc_samples" j);
  }

type mc_state = {
  next_i : int;  (** next front index the variation loop will visit *)
  done_points : Var_model.point list;  (** chronological *)
  mc_rng : Rng.state;
}

let mc_state_to_json s =
  Json.Obj
    [
      ("next_i", Codec.int_ s.next_i);
      ("points", Codec.list var_point_to_json s.done_points);
      ("rng", Codec.rng_state s.mc_rng);
    ]

let mc_state_of_json j =
  {
    next_i = Codec.to_int (Codec.member "next_i" j);
    done_points = Codec.to_list var_point_of_json (Codec.member "points" j);
    mc_rng = Codec.to_rng_state (Codec.member "rng" j);
  }

(* a decode failure on any stage payload just means the stage is recomputed *)
let decode_opt of_json j =
  match of_json j with v -> Some v | exception Codec.Decode _ -> None

let load_stage ckpt ~key decode =
  match ckpt with
  | None -> None
  | Some c -> Option.bind (Checkpoint.load c ~key) decode

let store_stage ckpt ~key to_json v =
  match ckpt with
  | None -> ()
  | Some c -> Checkpoint.store c ~key (to_json v)

module Make (A : Yield_circuits.Amplifier.S) = struct
  module T = Gtb.Make (A)

  (* the preflight stage: everything that can doom the run and is knowable
     before the first simulation — config cross-field checks, a checkpoint
     fingerprint dry-run, and a netlist lint of the amplifier's own
     testbench at its default sizing *)
  let preflight_check ?checkpoint_dir ~resume ~log (config : Config.t) =
    Span.with_ ~name:"flow.preflight" (fun () ->
        let circuit, _out =
          T.build ~conditions:config.Config.conditions A.default_params
        in
        let view =
          {
            Config_lint.population =
              config.Config.ga.Yield_ga.Ga.population_size;
            generations = config.Config.ga.Yield_ga.Ga.generations;
            mc_samples = config.Config.mc_samples;
            front_stride = config.Config.front_stride;
            control = config.Config.control;
            seed = config.Config.seed;
            jobs = config.Config.jobs;
            solver = config.Config.solver;
            system_size = Some (Mna.size (Mna.layout circuit));
            fingerprint = Config.fingerprint config;
          }
        in
        let config_diags = Config_lint.check ?checkpoint_dir ~resume view in
        let netlist_diags =
          Netlist_lint.check
            ~tech:config.Config.conditions.Gtb.tech
            ~pairs:A.symmetric_pairs circuit
        in
        let diags = Diagnostic.sort (config_diags @ netlist_diags) in
        Metrics.add c_preflight_findings (List.length diags);
        let errors = Diagnostic.count Diagnostic.Error diags in
        let warnings = Diagnostic.count Diagnostic.Warning diags in
        Metrics.add c_preflight_errors errors;
        List.iter
          (fun d -> log ("flow: preflight " ^ Diagnostic.to_text d))
          diags;
        if errors > 0 then
          failwith
            (Printf.sprintf
               "Flow.run: preflight found %d error(s) — fix the \
                configuration or pass ~preflight:false\n%s"
               errors (Diagnostic.list_to_text diags))
        else if warnings > 0 then
          log
            (Printf.sprintf "flow: preflight passed with %d warning(s)"
               warnings))

  let run ?(log = nop) ?(preflight = true) ?checkpoint_dir ?(resume = false)
      (config : Config.t) =
    (* idempotent: a stream/sampler armed by CLI flags stays in charge *)
    Obs.ensure_telemetry
      ?trace_stream:config.Config.telemetry.Config.trace_stream
      ?span_sample:config.Config.telemetry.Config.span_sample
      ?snapshot_every_s:config.Config.telemetry.Config.snapshot_every_s ();
    if preflight then preflight_check ?checkpoint_dir ~resume ~log config;
    let conditions = config.Config.conditions in
    (* the Monte Carlo inner loop's numeric backend; an unknown name is a
       preflight error (C007), so past that gate this can only fall back
       when the caller disabled preflight — then dense, the safe default *)
    let solver_backend =
      Option.value
        (Linsys.backend_of_string config.Config.solver)
        ~default:Linsys.Dense
    in
    let ckpt =
      match checkpoint_dir with
      | None -> None
      | Some dir ->
          let c = Checkpoint.create ~dir in
          (match Checkpoint.check_fingerprint c (Config.fingerprint config) with
          | Ok `Fresh -> ()
          | Ok `Resumable when resume -> log ("flow: resuming from " ^ dir)
          | Ok `Resumable ->
              (* same configuration but a fresh run was asked for: drop the
                 stale stage state *)
              List.iter
                (fun key -> Checkpoint.remove c ~key)
                [ "wbga.state"; "wbga.result"; "front"; "mc.state" ]
          | Error msg -> failwith ("Flow.run: " ^ msg));
          Some c
    in
    (* counter baselines: the per-run counts are registry deltas *)
    let evaluations0 = Metrics.value c_wbga_evaluations in
    let front_sims0 = Metrics.value c_front_sims in
    let mc_attempted0 = Metrics.value c_mc_attempted in
    let ps_points0 = Metrics.value c_ps_points in
    let ps_skipped0 = Metrics.value c_ps_skipped in
    let ps_shrunk0 = Metrics.value c_ps_shrunk in
    let ps_passed0 = Metrics.value c_ps_passed in
    let ps_undecided0 = Metrics.value c_ps_undecided in
    let optimisation_s = ref 0. in
    let mc_s = ref 0. in
    (* one pool serves every parallel stage of the run (WBGA evaluation,
       front re-simulation, MC batches), so the domain start-up cost is
       paid once; jobs = 1 spawns nothing and every map is the serial loop *)
    let pool = Pool.create ~jobs:config.Config.jobs () in
    if Pool.jobs pool > 1 then
      log (Printf.sprintf "flow: domain pool with %d jobs" (Pool.jobs pool));
    let build () =
      (* --- step 1-2: netlist generation + WBGA optimisation --- *)
      let evaluate params =
        match T.evaluate ~conditions (A.params_of_array params) with
        | Some perf when Gtb.feasible conditions perf ->
            Some (Gtb.objectives perf)
        | Some _ | None -> None
      in
      let rng = Rng.create config.Config.seed in
      log
        (Printf.sprintf "flow: WBGA %d x %d"
           config.Config.ga.Yield_ga.Ga.population_size
           config.Config.ga.Yield_ga.Ga.generations);
      let wbga, wbga_s =
        Span.timed ~name:"flow.wbga" (fun () ->
            match
              load_stage ckpt ~key:"wbga.result" (fun j ->
                  Result.to_option (Wbga.result_of_json j))
            with
            | Some r ->
                log "flow: WBGA stage restored from checkpoint";
                r
            | None ->
                let wbga_resume =
                  load_stage ckpt ~key:"wbga.state" (fun j ->
                      Result.to_option (Wbga.snapshot_of_json j))
                in
                (match wbga_resume with
                | Some s ->
                    log
                      (Printf.sprintf "flow: WBGA resuming at generation %d"
                         s.Wbga.ga.Yield_ga.Ga.next_generation)
                | None -> ());
                let on_generation =
                  Option.map
                    (fun c s ->
                      Checkpoint.store c ~key:"wbga.state"
                        (Wbga.snapshot_to_json s);
                      Fault.raise_if fp_wbga_gen)
                    ckpt
                in
                let r =
                  Wbga.run ~config:config.Config.ga ~pool
                    ?checkpoint:on_generation
                    ?resume:wbga_resume ~param_ranges:A.param_ranges
                    ~objectives:
                      [|
                        { Wbga.name = "gain"; maximise = true };
                        { Wbga.name = "pm"; maximise = true };
                      |]
                    ~rng ~evaluate ()
                in
                store_stage ckpt ~key:"wbga.result" Wbga.result_to_json r;
                r)
      in
      optimisation_s := wbga_s;
      log
        (Printf.sprintf "flow: %d evaluations, %d infeasible, front %d"
           wbga.Wbga.evaluations wbga.Wbga.failures
           (Array.length wbga.Wbga.front));
      if Array.length wbga.Wbga.front < 2 then
        failwith "Flow.run: optimisation produced no usable Pareto front";
      (* --- step 3: performance model: nominal re-simulation of the front
         for the auxiliary columns (rout, fu) --- *)
      let front_points =
        Span.with_ ~name:"flow.front-resim" (fun () ->
            match
              load_stage ckpt ~key:"front"
                (decode_opt (Codec.to_array perf_point_of_json))
            with
            | Some points ->
                log "flow: front re-simulation restored from checkpoint";
                points
            | None ->
                let entries = wbga.Wbga.front in
                let n = Array.length entries in
                Metrics.add c_front_sims n;
                (* nominal re-simulations are independent, so they fan out
                   over the pool; the filter below keeps front order *)
                let perfs =
                  Pool.map pool ~n (fun i ->
                      T.evaluate ~conditions
                        (A.params_of_array entries.(i).Wbga.params))
                in
                let points =
                  Array.to_list (Array.map2 (fun e p -> (e, p)) entries perfs)
                  |> List.filter_map (fun ((e : Wbga.entry), perf) ->
                         match perf with
                         | Some perf ->
                             Some
                               {
                                 Perf_model.gain_db = perf.Gtb.gain_db;
                                 pm_deg = perf.Gtb.phase_margin_deg;
                                 params = e.Wbga.params;
                                 rout = perf.Gtb.rout_est;
                                 unity_gain_hz = perf.Gtb.unity_gain_hz;
                               }
                         | None -> None)
                  |> Array.of_list
                in
                store_stage ckpt ~key:"front"
                  (Codec.array perf_point_to_json)
                  points;
                points)
      in
      (* --- step 4: variation model: Monte Carlo on (a stride of) the
         front --- *)
      let var_points, var_mc_s =
        Span.timed ~name:"flow.mc" (fun () ->
            let stride = Stdlib.max 1 config.Config.front_stride in
            let mc_rng = Rng.create (config.Config.seed + 1) in
            let start_i, var_points =
              match load_stage ckpt ~key:"mc.state" (decode_opt mc_state_of_json) with
              | Some s ->
                  log
                    (Printf.sprintf
                       "flow: variation model resuming at front point %d/%d"
                       s.next_i
                       (Array.length front_points));
                  Rng.restore mc_rng s.mc_rng;
                  (s.next_i, ref (List.rev s.done_points))
              | None -> (0, ref [])
            in
            let ps = config.Config.prescreen in
            let enclosure_text (r : Corner_lint.report) =
              let itv name = function
                | None -> name ^ " unbounded"
                | Some (iv : Yield_analyse.Interval.t) ->
                    Printf.sprintf "%s [%.2f, %.2f]" name iv.lo iv.hi
              in
              itv "gain" r.Corner_lint.enclosure.Corner_lint.gain_db
              ^ ", "
              ^ itv "pm" r.Corner_lint.enclosure.Corner_lint.pm_deg
            in
            (* decide this point's Monte Carlo budget: the full
               [mc_samples], a shrunk budget (provably inside the spec
               window over the truncated box), or none at all (provably
               outside).  Deterministic — no RNG — so a resumed run makes
               the same decisions for the points it re-visits. *)
            let prescreen_budget i (p : Perf_model.point) params =
              if not ps.Config.enabled then Some config.Config.mc_samples
              else begin
                Metrics.incr c_ps_points;
                let circuit, out = T.build ~conditions params in
                let report =
                  Corner_lint.analyse_circuit ~k_sigma:ps.Config.k_sigma
                    ~spec:config.Config.variation
                    ~window:
                      {
                        Corner_lint.min_gain_db = ps.Config.min_gain_db;
                        min_pm_deg = ps.Config.min_pm_deg;
                      }
                    ~freqs:(Gtb.freqs_of conditions) ~out circuit
                in
                match report.Corner_lint.verdict with
                | Corner_lint.Provably_fail ->
                    Metrics.incr c_ps_skipped;
                    log
                      (Printf.sprintf
                         "flow: prescreen front point %d (gain %.1f dB): \
                          provably outside the spec window over the \
                          %.2f-sigma box (%s) — yield 0, %d MC samples \
                          skipped"
                         i p.Perf_model.gain_db ps.Config.k_sigma
                         (enclosure_text report) config.Config.mc_samples);
                    None
                | Corner_lint.Provably_pass ->
                    Metrics.incr c_ps_passed;
                    let budget =
                      Stdlib.max Config_lint.min_valid_mc_samples
                        (int_of_float
                           (ceil
                              (ps.Config.pass_budget_frac
                              *. float_of_int config.Config.mc_samples)))
                    in
                    let budget = Stdlib.min budget config.Config.mc_samples in
                    if budget < config.Config.mc_samples then begin
                      Metrics.incr c_ps_shrunk;
                      log
                        (Printf.sprintf
                           "flow: prescreen front point %d (gain %.1f dB): \
                            provably inside the spec window (%s) — MC budget \
                            %d -> %d"
                           i p.Perf_model.gain_db (enclosure_text report)
                           config.Config.mc_samples budget)
                    end;
                    Some budget
                | Corner_lint.Undecided ->
                    Metrics.incr c_ps_undecided;
                    Some config.Config.mc_samples
              end
            in
            for i = start_i to Array.length front_points - 1 do
              if i mod stride = 0 then begin
                let p = front_points.(i) in
                let params = A.params_of_array p.Perf_model.params in
                match prescreen_budget i p params with
                | None -> begin
                    (* provably outside spec: yield 0 with the enclosure as
                       provenance (logged above); no variation point, no MC *)
                    store_stage ckpt ~key:"mc.state" mc_state_to_json
                      {
                        next_i = i + 1;
                        done_points = List.rev !var_points;
                        mc_rng = Rng.save mc_rng;
                      };
                    Fault.raise_if fp_mc_point
                  end
                | Some samples ->
                (* batch-first: one testbench instantiation per front point;
                   each sample only patches device models (bit-identical to
                   rebuilding under the dense default).  The compiled
                   session is immutable, so sharing it across the pool's
                   domains is safe. *)
                let session =
                  T.session ~conditions ~solver:solver_backend params
                in
                let outcome =
                  Montecarlo.run_pool_counted ~pool ~samples ~rng:mc_rng
                    (fun sample_rng ->
                      T.evaluate_in_session session
                        ~spec:config.Config.variation ~rng:sample_rng)
                in
                let results = outcome.Montecarlo.results in
                if Array.length results >= Config_lint.min_valid_mc_samples
                then begin
                  let gains = Array.map (fun r -> r.Gtb.gain_db) results in
                  let pms =
                    Array.map (fun r -> r.Gtb.phase_margin_deg) results
                  in
                  let dgain =
                    Montecarlo.spread_pct gains ~nominal:p.Perf_model.gain_db
                  in
                  let dpm =
                    Montecarlo.spread_pct pms ~nominal:p.Perf_model.pm_deg
                  in
                  var_points :=
                    {
                      Var_model.gain_db = p.Perf_model.gain_db;
                      pm_deg = p.Perf_model.pm_deg;
                      dgain_pct = dgain;
                      dpm_pct = dpm;
                      mc_samples = Array.length results;
                    }
                    :: !var_points
                end
                else begin
                  (* too few valid samples to estimate a spread: drop the
                     point and keep going rather than poisoning the model
                     or crashing the flow *)
                  Metrics.incr c_degraded;
                  log
                    (Printf.sprintf
                       "flow: degraded front point %d (gain %.1f dB): %d/%d \
                        MC samples failed, %d valid — variation point skipped"
                       i p.Perf_model.gain_db outcome.Montecarlo.failed
                       outcome.Montecarlo.attempted (Array.length results))
                end;
                store_stage ckpt ~key:"mc.state" mc_state_to_json
                  {
                    next_i = i + 1;
                    done_points = List.rev !var_points;
                    mc_rng = Rng.save mc_rng;
                  };
                Fault.raise_if fp_mc_point
              end
            done;
            Array.of_list (List.rev !var_points))
      in
      mc_s := var_mc_s;
      if config.Config.prescreen.Config.enabled then
        log
          (Printf.sprintf
             "flow: prescreen analysed %d front points: %d provably-fail (MC \
              skipped), %d provably-pass (%d budget-shrunk), %d undecided"
             (Metrics.value c_ps_points - ps_points0)
             (Metrics.value c_ps_skipped - ps_skipped0)
             (Metrics.value c_ps_passed - ps_passed0)
             (Metrics.value c_ps_shrunk - ps_shrunk0)
             (Metrics.value c_ps_undecided - ps_undecided0));
      log
        (Printf.sprintf "flow: variation model from %d points x %d MC samples"
           (Array.length var_points) config.Config.mc_samples);
      if Array.length var_points < 2 then
        failwith
          (Printf.sprintf
             "Flow.run: variation model starved — only %d of %d analysed \
              front points kept enough valid MC samples (see the \
              flow.points.degraded counter)"
             (Array.length var_points)
             (1 + ((Array.length front_points - 1)
                   / Stdlib.max 1 config.Config.front_stride)));
      (* --- step 5: table models --- *)
      let perf_model, var_model, macromodel =
        Span.with_ ~name:"flow.tables" (fun () ->
            let perf_model =
              Perf_model.create ~control:config.Config.control front_points
            in
            let var_model =
              Var_model.create ~control:config.Config.control var_points
            in
            let macromodel = Macromodel.create perf_model var_model in
            (perf_model, var_model, macromodel))
      in
      (wbga, front_points, var_points, perf_model, var_model, macromodel)
    in
    let (wbga, front_points, var_points, perf_model, var_model, macromodel),
        total_s =
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () -> Span.timed ~name:"flow.run" build)
    in
    {
      config;
      wbga;
      front_points;
      var_points;
      perf_model;
      var_model;
      macromodel;
      counts =
        {
          optimisation_sims = Metrics.value c_wbga_evaluations - evaluations0;
          front_sims = Metrics.value c_front_sims - front_sims0;
          mc_sims = Metrics.value c_mc_attempted - mc_attempted0;
        };
      prescreen =
        (if not config.Config.prescreen.Config.enabled then None
         else
           Some
             {
               analysed = Metrics.value c_ps_points - ps_points0;
               fail_skipped = Metrics.value c_ps_skipped - ps_skipped0;
               pass_shrunk = Metrics.value c_ps_shrunk - ps_shrunk0;
               provably_passed = Metrics.value c_ps_passed - ps_passed0;
               undecided = Metrics.value c_ps_undecided - ps_undecided0;
             });
      timings =
        { optimisation_s = !optimisation_s; mc_s = !mc_s; total_s };
    }

  let verify_design t ?(samples = 500) ?(seed = 77) ~spec params =
    let conditions = t.config.Config.conditions in
    match T.evaluate ~conditions params with
    | None -> Error "verify_design: nominal evaluation failed"
    | Some nominal ->
        let rng = Rng.create seed in
        let solver_backend =
          Option.value
            (Linsys.backend_of_string t.config.Config.solver)
            ~default:Linsys.Dense
        in
        let session = T.session ~conditions ~solver:solver_backend params in
        let outcome =
          (* a transient pool: verification runs outside Flow.run, so the
             run's own pool is already shut down *)
          Pool.with_pool ~jobs:t.config.Config.jobs (fun pool ->
              Montecarlo.run_pool_counted ~pool ~samples ~rng
                (fun sample_rng ->
                  T.evaluate_in_session session
                    ~spec:t.config.Config.variation ~rng:sample_rng))
        in
        let results = outcome.Montecarlo.results in
        if Array.length results = 0 then
          Error
            (Printf.sprintf
               "verify_design: all samples failed (%d attempted, %d failed)"
               outcome.Montecarlo.attempted outcome.Montecarlo.failed)
        else begin
          let gains = Array.map (fun r -> r.Gtb.gain_db) results in
          let pms = Array.map (fun r -> r.Gtb.phase_margin_deg) results in
          let ok r =
            Yield_target.meets spec ~gain_db:r.Gtb.gain_db
              ~pm_deg:r.Gtb.phase_margin_deg
          in
          Ok { nominal; yield = Montecarlo.yield_of ok results; gains; pms }
        end
end

module Ota_flow = Make (Ota)

let run = Ota_flow.run

let verify_design = Ota_flow.verify_design
