module Json = Yield_obs.Json

type tolerance = { frac : float; abs_s : float }

let default_tolerance = { frac = 0.10; abs_s = 0. }

let baseline_tolerance = { frac = 0.10; abs_s = 2.0 }

type finding = { field : string; detail : string }

let to_string f = Printf.sprintf "%s: %s" f.field f.detail

let obj_fields = function Json.Obj kvs -> kvs | _ -> []

let tolerance_of baseline =
  match Json.member "tolerance" baseline with
  | None -> default_tolerance
  | Some t ->
      let field k fallback =
        Option.value
          (Option.bind (Json.member k t) Json.number_value)
          ~default:fallback
      in
      {
        frac = field "frac" default_tolerance.frac;
        abs_s = field "abs_s" default_tolerance.abs_s;
      }

(* every baseline key must exist in the bench and vice versa: a counter or
   stage appearing or vanishing is drift the baseline must acknowledge,
   not something to silently skip *)
let identity ~field ~base ~bench compare_value =
  let base = obj_fields base and bench = obj_fields bench in
  let missing =
    List.filter_map
      (fun (k, bv) ->
        match List.assoc_opt k bench with
        | None ->
            Some
              {
                field = field ^ "." ^ k;
                detail = "in the baseline but missing from the bench run";
              }
        | Some av -> compare_value k bv av)
      base
  in
  let extra =
    List.filter_map
      (fun (k, _) ->
        if List.mem_assoc k base then None
        else
          Some
            {
              field = field ^ "." ^ k;
              detail =
                "new in the bench run but absent from the baseline (refresh \
                 it: bench --write-baseline)";
            })
      bench
  in
  missing @ extra

let check ~baseline ~bench =
  let tol = tolerance_of baseline in
  let member name j = Json.member name j in
  (* run identity: comparing different scales or pool sizes is meaningless *)
  let run_identity =
    List.filter_map
      (fun key ->
        match (member key baseline, member key bench) with
        | Some a, Some b when a <> b ->
            Some
              {
                field = key;
                detail =
                  Printf.sprintf "baseline %s vs bench %s" (Json.to_string a)
                    (Json.to_string b);
              }
        | Some _, None ->
            Some { field = key; detail = "missing from the bench run" }
        | _ -> None)
      [ "scale"; "jobs" ]
  in
  let section key = function
    | Some j -> member key j |> Option.value ~default:(Json.Obj [])
    | None -> Json.Obj []
  in
  let timings =
    identity ~field:"stage_s"
      ~base:(section "stage_s" (Some baseline))
      ~bench:(section "stage_s" (Some bench))
      (fun k bv av ->
        match (Json.number_value bv, Json.number_value av) with
        | Some base_s, Some actual_s ->
            let limit = (base_s *. (1. +. tol.frac)) +. tol.abs_s in
            if actual_s > limit then
              Some
                {
                  field = "stage_s." ^ k;
                  detail =
                    Printf.sprintf
                      "%.3f s vs baseline %.3f s (limit %.3f s = base x %g + \
                       %g s)"
                      actual_s base_s limit (1. +. tol.frac) tol.abs_s;
                }
            else None
        | _ -> Some { field = "stage_s." ^ k; detail = "not a number" })
  in
  let exact field_name base bench =
    identity ~field:field_name ~base ~bench (fun k bv av ->
        if bv = av then None
        else
          Some
            {
              field = field_name ^ "." ^ k;
              detail =
                Printf.sprintf "baseline %s vs bench %s" (Json.to_string bv)
                  (Json.to_string av);
            })
  in
  let sim_counts =
    exact "sim_counts"
      (section "sim_counts" (Some baseline))
      (section "sim_counts" (Some bench))
  in
  let counters =
    exact "counters"
      (section "counters" (Some baseline))
      (section "counters" (Some bench))
  in
  run_identity @ timings @ sim_counts @ counters

let baseline_of_bench ?(tolerance = baseline_tolerance) bench =
  let pick k = match Json.member k bench with Some v -> [ (k, v) ] | None -> [] in
  Json.Obj
    ([ ("schema", Json.String "yieldlab-bench-baseline/v1") ]
    @ pick "scale" @ pick "jobs"
    @ [
        ( "tolerance",
          Json.Obj
            [
              ("frac", Json.Float tolerance.frac);
              ("abs_s", Json.Float tolerance.abs_s);
            ] );
      ]
    @ pick "stage_s" @ pick "sim_counts" @ pick "counters")
