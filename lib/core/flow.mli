(** The proposed algorithm end-to-end (Figure 3):

    netlist + objectives -> WBGA multi-objective optimisation -> Pareto-front
    performance model -> per-point Monte Carlo variation model -> combined
    table-based behavioural model -> yield-targeted design queries. *)

type counts = {
  optimisation_sims : int;  (** transistor evaluations inside the WBGA *)
  front_sims : int;  (** nominal re-evaluations of the Pareto points *)
  mc_sims : int;  (** Monte Carlo evaluations of the variation step *)
}
(** The paper's cost accounting, derived from the {!Yield_obs.Metrics}
    registry (deltas of the ["wbga.evaluations"], ["flow.front_sims"] and
    ["mc.samples.attempted"] counters over the run). *)

val total_sims : counts -> int

type prescreen_counts = {
  analysed : int;  (** front points the corner proof ran on *)
  fail_skipped : int;
      (** [Provably_fail] points — their whole MC batch was skipped *)
  pass_shrunk : int;  (** [Provably_pass] points that ran a reduced budget *)
  provably_passed : int;
  undecided : int;  (** ran their full budget, unchanged *)
}
(** Accounting of the opt-in {!Config.prescreen} stage, derived from the
    ["flow.prescreen.*"] counters ([points], [skipped], [shrunk], [passed],
    [undecided]) over the run. *)

type timings = {
  optimisation_s : float;
  mc_s : float;
  total_s : float;
}
(** Stage wall-clock, measured by the ["flow.wbga"], ["flow.mc"] and
    ["flow.run"] spans (the full per-stage set — including the front
    re-simulation and table build — is in the span events and the
    ["span.flow.*"] histograms). *)

type t = {
  config : Config.t;
  wbga : Yield_ga.Wbga.result;
  front_points : Yield_behavioural.Perf_model.point array;
      (** Pareto designs with their nominal small-signal data *)
  var_points : Yield_behavioural.Var_model.point array;
  perf_model : Yield_behavioural.Perf_model.t;
  var_model : Yield_behavioural.Var_model.t;
  macromodel : Yield_behavioural.Macromodel.t;
  counts : counts;
  prescreen : prescreen_counts option;
      (** [Some] iff [Config.prescreen.enabled] *)
  timings : timings;
}

val run :
  ?log:(string -> unit) -> ?preflight:bool -> ?checkpoint_dir:string ->
  ?resume:bool -> Config.t -> t
(** The paper's flow on its benchmark circuit (the symmetrical OTA).

    The run owns one {!Yield_exec.Pool} of [Config.jobs] domains, shared by
    every parallel stage — WBGA population evaluation, Pareto-front
    re-simulation and the per-point Monte Carlo batches.  Results are
    independent of [jobs]: RNG streams are split before each fan-out and
    every order-sensitive reduction runs on the calling domain, so a
    [jobs = n] run (including its checkpoints) is bit-identical to the
    serial one.  [jobs = 1] takes the exact serial code path.

    Unless [~preflight:false], the run opens with a static-analysis stage
    ({!Yield_analyse}): config cross-field checks, a checkpoint-fingerprint
    dry-run, and a netlist lint of the amplifier's testbench at its default
    sizing.  Error-severity findings abort the run before any simulation;
    warnings are logged.  The stage is timed by the ["flow.preflight"] span
    and counted in ["preflight.findings"] / ["preflight.errors"].

    With [checkpoint_dir], every stage persists its progress there
    ({!Yield_resilience.Checkpoint}): the WBGA state per generation
    ([wbga.state]), the finished optimisation ([wbga.result]), the
    re-simulated front ([front]) and the per-Pareto-point Monte Carlo
    progress ([mc.state]).  With [resume] (default [false]) the run
    continues from whatever those keys hold — bit-identically to an
    uninterrupted run, because the checkpoints carry the RNG stream states
    and hex-exact floats.  Without [resume], stale stage state under the
    same directory is discarded.  A directory recorded under a different
    {!Config.fingerprint} is refused.

    A front point whose Monte Carlo batch yields fewer than
    {!Yield_analyse.Config_lint.min_valid_mc_samples} valid samples is
    skipped (logged, counted in ["flow.points.degraded"]) instead of
    crashing the flow or poisoning the variation model.

    With [Config.prescreen.enabled], each analysed front point is first
    pushed through the {!Yield_analyse.Corner_lint} corner proof before its
    Monte Carlo batch: [Provably_fail] points skip MC entirely (yield 0,
    the enclosure logged as provenance, no variation point),
    [Provably_pass] points may run a budget shrunk to
    [pass_budget_frac * mc_samples], and [Undecided] points run unchanged.
    The decision is deterministic, and the prescreen settings join the
    checkpoint fingerprint, so resumed runs repeat it bit-identically.
    Accounting lands in {!prescreen_counts} / the ["flow.prescreen.*"]
    counters.

    @raise Failure when the preflight finds error-severity problems, when
    the optimisation produces no usable front, or on a checkpoint
    fingerprint mismatch. *)

val design_for_spec :
  t -> Yield_behavioural.Yield_target.spec ->
  (Yield_behavioural.Yield_target.plan, string) result

type verification = {
  nominal : Yield_circuits.Ota_testbench.perf;
  yield : Yield_process.Montecarlo.yield_estimate;
  gains : float array;  (** per-sample measured gains *)
  pms : float array;
}

val verify_design :
  t -> ?samples:int -> ?seed:int -> spec:Yield_behavioural.Yield_target.spec ->
  Yield_circuits.Ota.params -> (verification, string) result
(** Transistor-level Monte Carlo check of a design against a spec (the
    paper's 500-sample verification). *)

val save_tables : t -> dir:string -> string list
(** Write [perf_model.tbl], [gain_delta.tbl] (variation model) into [dir];
    returns the paths written. *)

val load_models :
  dir:string -> control:string ->
  Yield_behavioural.Perf_model.t * Yield_behavioural.Var_model.t

val lint_models :
  ?spec:Yield_behavioural.Yield_target.spec ->
  dir:string -> control:string -> unit -> Yield_analyse.Diagnostic.t list
(** Preflight for {!load_models} consumers ([yieldlab design] /
    [yieldlab export-va]): the perf table under the same strict gain axis
    {!load_models} enforces, the variation table under the tolerant read it
    actually gets, [spec]-window coverage (T007) against both tables, and a
    structural {!Yield_analyse.Va_lint} pass over the Verilog-A module that
    would be emitted with [control].  Error-severity findings predict a
    {!load_models} failure or a runtime rejection. *)

(** The same pipeline for any {!Yield_circuits.Amplifier.S} topology
    ([run] above is [Make (Ota)]): note that [Config.conditions] should be
    adapted to the topology (e.g. the Miller stage wants a lower
    [min_unity_gain_hz]). *)
module Make (A : Yield_circuits.Amplifier.S) : sig
  val run :
    ?log:(string -> unit) -> ?preflight:bool -> ?checkpoint_dir:string ->
    ?resume:bool -> Config.t -> t

  val verify_design :
    t -> ?samples:int -> ?seed:int -> spec:Yield_behavioural.Yield_target.spec ->
    A.params -> (verification, string) result
end
