(** The perf-regression gate: diff a fresh [BENCH_flow.json] against a
    checked-in baseline.

    What is compared, and how:
    - [scale] and [jobs] — exact; a mismatch means the two runs are not
      comparable at all.
    - [stage_s.*] — wall-clock with tolerance: a stage regresses when
      [actual > base * (1 + frac) + abs_s].  The [frac]/[abs_s] pair lives
      {e in the baseline file} ([tolerance] object), so the checked-in
      baseline can carry a generous absolute slack (different CI machines)
      while a same-machine fixture can pin [abs_s = 0].
    - [sim_counts.*] and [counters.*] — exact values, and exact {e key
      identity} in both directions: a simulation-count drift or a counter
      appearing/vanishing fails the gate, since those are determinism
      regressions no timing tolerance should forgive.

    Histograms are deliberately not compared (their quantiles are timing
    distributions — pure noise across machines). *)

type tolerance = { frac : float; abs_s : float }

val default_tolerance : tolerance
(** [frac = 0.10], [abs_s = 0.] — what {!check} assumes when the baseline
    file carries no [tolerance] object. *)

val baseline_tolerance : tolerance
(** [frac = 0.10], [abs_s = 2.0] — what {!baseline_of_bench} stamps by
    default: slack enough to absorb machine-to-machine constant factors
    while still catching the counts/identity drift exactly. *)

type finding = { field : string; detail : string }

val to_string : finding -> string

val check : baseline:Yield_obs.Json.t -> bench:Yield_obs.Json.t -> finding list
(** Empty when the bench run is within tolerance of the baseline; one
    finding per violated field otherwise. *)

val baseline_of_bench :
  ?tolerance:tolerance -> Yield_obs.Json.t -> Yield_obs.Json.t
(** Distil a [BENCH_flow.json] document into a baseline: scale, jobs, the
    tolerance block, stage timings, sim counts and counters (histograms
    and the jobs sweep are dropped). *)
