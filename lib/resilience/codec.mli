(** JSON codecs for checkpoint payloads.

    Floats are serialised as hexadecimal literals ([%h]) and 64-bit RNG
    words as decimal strings, so every value round-trips bit-exactly —
    the foundation of the resume-determinism guarantee. *)

exception Decode of string
(** Raised by every [to_*] on a shape or literal mismatch. *)

val float_ : float -> Yield_obs.Json.t

val to_float : Yield_obs.Json.t -> float

val int_ : int -> Yield_obs.Json.t

val to_int : Yield_obs.Json.t -> int

val int64_ : int64 -> Yield_obs.Json.t

val to_int64 : Yield_obs.Json.t -> int64

val list : ('a -> Yield_obs.Json.t) -> 'a list -> Yield_obs.Json.t

val to_list : (Yield_obs.Json.t -> 'a) -> Yield_obs.Json.t -> 'a list

val array : ('a -> Yield_obs.Json.t) -> 'a array -> Yield_obs.Json.t

val to_array : (Yield_obs.Json.t -> 'a) -> Yield_obs.Json.t -> 'a array

val float_array : float array -> Yield_obs.Json.t

val to_float_array : Yield_obs.Json.t -> float array

val option : ('a -> Yield_obs.Json.t) -> 'a option -> Yield_obs.Json.t

val to_option : (Yield_obs.Json.t -> 'a) -> Yield_obs.Json.t -> 'a option

val member : string -> Yield_obs.Json.t -> Yield_obs.Json.t
(** @raise Decode when the member is absent. *)

val rng_state : Yield_stats.Rng.state -> Yield_obs.Json.t

val to_rng_state : Yield_obs.Json.t -> Yield_stats.Rng.state
