let temp_path path = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())

let write_file ~path contents =
  let tmp = temp_path path in
  (try
     Out_channel.with_open_bin tmp (fun oc ->
         Out_channel.output_string oc contents)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let read_file ~path =
  In_channel.with_open_bin path (fun ic ->
      really_input_string ic (in_channel_length ic))

let mkdir_p dir =
  let rec walk d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      walk (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  walk dir
