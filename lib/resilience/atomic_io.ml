let temp_path path = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ())

(* Directory entries are metadata of the *parent*: after a rename, the new
   name only survives a power loss once the directory itself is synced.
   Best-effort — some filesystems refuse fsync on a directory fd (EINVAL),
   which is fine: they are the ones that do not need it. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let write_file ~path contents =
  let tmp = temp_path path in
  (try
     Out_channel.with_open_bin tmp (fun oc ->
         Out_channel.output_string oc contents;
         Out_channel.flush oc;
         (* the data must be durable before the rename publishes the name:
            rename-then-sync can survive a crash as a complete name pointing
            at unwritten blocks *)
         try Unix.fsync (Unix.descr_of_out_channel oc)
         with Unix.Unix_error _ -> ())
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

let read_file ~path =
  In_channel.with_open_bin path (fun ic ->
      really_input_string ic (in_channel_length ic))

let mkdir_p dir =
  let rec walk d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      walk (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  walk dir
