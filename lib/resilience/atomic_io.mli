(** Crash-safe file writes.

    [write_file] writes the full contents to a process-unique temporary
    sibling and renames it over the target, so a crash (or an injected
    fault) at any instant leaves either the old file or the new one on
    disk — never a torn mixture.  Every persistent artefact of the flow
    ([.tbl] tables, checkpoints, telemetry sinks) goes through this
    pattern. *)

val write_file : path:string -> string -> unit
(** Atomic whole-file write (temp + rename).  On failure the temporary is
    removed and the target is untouched. *)

val read_file : path:string -> string

val mkdir_p : string -> unit
(** Create the directory and any missing parents. *)

val temp_path : string -> string
(** The temporary sibling name [write_file] uses (exposed for tests). *)
