(** Crash-safe file writes.

    [write_file] writes the full contents to a process-unique temporary
    sibling and renames it over the target, so a crash (or an injected
    fault) at any instant leaves either the old file or the new one on
    disk — never a torn mixture.  Every persistent artefact of the flow
    ([.tbl] tables, checkpoints, telemetry sinks) goes through this
    pattern.

    Durability, not just atomicity: the temporary is [fsync]ed before the
    rename (the data must be on disk before the name points at it) and the
    parent directory is [fsync]ed after it (the directory entry is the
    parent's metadata) — so a published write also survives power loss,
    not only process kills.  Both syncs are best-effort: filesystems that
    reject them are treated as not needing them. *)

val write_file : path:string -> string -> unit
(** Atomic, durable whole-file write (temp + fsync + rename + parent-dir
    fsync).  On failure the temporary is removed and the target is
    untouched. *)

val read_file : path:string -> string

val mkdir_p : string -> unit
(** Create the directory and any missing parents. *)

val temp_path : string -> string
(** The temporary sibling name [write_file] uses (exposed for tests). *)
