module Metrics = Yield_obs.Metrics

type classification = Transient | Permanent

type policy = {
  name : string;
  max_attempts : int;
  h_attempts : Yield_obs.Histogram.t;
  c_retries : Metrics.counter;
  c_recovered : Metrics.counter;
  c_exhausted : Metrics.counter;
  c_permanent : Metrics.counter;
  c_deadline : Metrics.counter;
}

let policy ?(max_attempts = 3) name =
  if max_attempts < 1 then invalid_arg "Retry.policy: max_attempts < 1";
  {
    name;
    max_attempts;
    h_attempts = Metrics.histogram ("retry." ^ name ^ ".attempts");
    c_retries = Metrics.counter ("retry." ^ name ^ ".retries");
    c_recovered = Metrics.counter ("retry." ^ name ^ ".recovered");
    c_exhausted = Metrics.counter ("retry." ^ name ^ ".exhausted");
    c_permanent = Metrics.counter ("retry." ^ name ^ ".permanent");
    c_deadline = Metrics.counter ("retry." ^ name ^ ".deadline_stopped");
  }

let name p = p.name

let max_attempts p = p.max_attempts

let with_retries ?deadline_s p ~classify f =
  let finish attempts outcome =
    Metrics.observe p.h_attempts (float_of_int attempts);
    outcome
  in
  (* a retry is only worth starting when it can plausibly finish inside the
     deadline; the previous attempt's duration is the estimate.  Giving up
     here counts as exhaustion, so the [injected = retries + exhausted]
     accounting identity survives the deadline cut. *)
  let deadline_blocks_retry ~attempt_s =
    match deadline_s with
    | None -> false
    | Some d -> Yield_obs.Clock.now_s () +. attempt_s > d
  in
  let rec go attempt =
    let t0 = Yield_obs.Clock.now_s () in
    match f ~attempt with
    | Ok _ as ok ->
        if attempt > 1 then Metrics.incr p.c_recovered;
        finish attempt ok
    | Error e as err -> begin
        match classify e with
        | Permanent ->
            Metrics.incr p.c_permanent;
            finish attempt err
        | Transient ->
            if attempt >= p.max_attempts then begin
              Metrics.incr p.c_exhausted;
              finish attempt err
            end
            else if
              deadline_blocks_retry ~attempt_s:(Yield_obs.Clock.now_s () -. t0)
            then begin
              Metrics.incr p.c_deadline;
              Metrics.incr p.c_exhausted;
              finish attempt err
            end
            else begin
              Metrics.incr p.c_retries;
              go (attempt + 1)
            end
      end
  in
  go 1
