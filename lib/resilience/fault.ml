module Metrics = Yield_obs.Metrics

exception Injected of string

type mode =
  | Rate of { p : float; seed : int }
  | Count of int
  | Every of int
  | At of int

type point = {
  name : string;
  mutable mode : mode option;
  hits : int Atomic.t;
  c_injected : Metrics.counter;
  c_hits : Metrics.counter;
}

let lock = Mutex.create ()

let points : (string, point) Hashtbl.t = Hashtbl.create 16

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let point name =
  with_lock (fun () ->
      match Hashtbl.find_opt points name with
      | Some p -> p
      | None ->
          let p =
            {
              name;
              mode = None;
              hits = Atomic.make 0;
              c_injected = Metrics.counter ("fault." ^ name ^ ".injected");
              c_hits = Metrics.counter ("fault." ^ name ^ ".hits");
            }
          in
          Hashtbl.add points name p;
          p)

let name p = p.name

let arm pname mode = (point pname).mode <- Some mode

let disarm pname =
  match with_lock (fun () -> Hashtbl.find_opt points pname) with
  | Some p -> p.mode <- None
  | None -> ()

let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ p ->
          p.mode <- None;
          Atomic.set p.hits 0)
        points)

let known () =
  with_lock (fun () -> Hashtbl.fold (fun name _ acc -> name :: acc) points [])
  |> List.sort String.compare

let is_known name = with_lock (fun () -> Hashtbl.mem points name)

let armed () =
  with_lock (fun () ->
      Hashtbl.fold
        (fun name p acc ->
          match p.mode with Some m -> (name, m) :: acc | None -> acc)
        points [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* splitmix64 finaliser: the decision for hit [n] of a rate-armed point is a
   pure function of (seed, point name, n), so an injection schedule replays
   identically regardless of domain interleaving *)
let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let hash01 ~seed ~salt n =
  let z =
    Int64.add
      (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
      (Int64.add (Int64.mul (Int64.of_int salt) 0xD1B54A32D192ED03L)
         (Int64.of_int n))
  in
  let bits = Int64.shift_right_logical (mix z) 11 in
  Int64.to_float bits *. 0x1.0p-53

let salt_of_name s =
  (* stable across processes (Hashtbl.hash is not guaranteed to be) *)
  String.fold_left (fun acc c -> (acc * 131) + Char.code c) 7 s land 0x3FFFFFFF

let decide p ~index:n =
  match p.mode with
  | None -> false
  | Some (Rate { p = prob; seed }) ->
      hash01 ~seed ~salt:(salt_of_name p.name) n < prob
  | Some (Count k) -> n < k
  | Some (Every k) -> k > 0 && (n + 1) mod k = 0
  | Some (At k) -> n + 1 = k

let record p fired =
  Metrics.incr p.c_hits;
  if fired then Metrics.incr p.c_injected;
  fired

let fire_at p ~index = record p (decide p ~index)

let fire p =
  let n = Atomic.fetch_and_add p.hits 1 in
  record p (decide p ~index:n)

let advance p ~by = Atomic.fetch_and_add p.hits by

let raise_if p = if fire p then raise (Injected p.name)

(* ---------- the --fault-spec grammar ---------- *)

let parse_entry entry =
  match String.index_opt entry ':' with
  | None ->
      Error
        (Printf.sprintf
           "fault-spec entry %S: expected NAME:key=value[,key=value]" entry)
  | Some i -> begin
      let name = String.trim (String.sub entry 0 i) in
      if name = "" then Error "fault-spec: empty injection-point name"
      else begin
        let kvs =
          String.sub entry (i + 1) (String.length entry - i - 1)
          |> String.split_on_char ','
          |> List.map String.trim
          |> List.filter (fun s -> s <> "")
        in
        let rate = ref None
        and count = ref None
        and every = ref None
        and at = ref None
        and seed = ref 1 in
        let bad = ref None in
        List.iter
          (fun kv ->
            match String.index_opt kv '=' with
            | None -> bad := Some (Printf.sprintf "bad key=value %S" kv)
            | Some j -> begin
                let k = String.sub kv 0 j in
                let v = String.sub kv (j + 1) (String.length kv - j - 1) in
                match k with
                | "rate" -> begin
                    match float_of_string_opt v with
                    | Some r when r >= 0. && r <= 1. -> rate := Some r
                    | _ -> bad := Some (Printf.sprintf "bad rate %S" v)
                  end
                | "count" | "every" | "at" -> begin
                    match int_of_string_opt v with
                    | Some n when n > 0 ->
                        let slot =
                          match k with
                          | "count" -> count
                          | "every" -> every
                          | _ -> at
                        in
                        slot := Some n
                    | _ -> bad := Some (Printf.sprintf "bad %s %S" k v)
                  end
                | "seed" -> begin
                    match int_of_string_opt v with
                    | Some s -> seed := s
                    | None -> bad := Some (Printf.sprintf "bad seed %S" v)
                  end
                | _ -> bad := Some (Printf.sprintf "unknown key %S" k)
              end)
          kvs;
        match !bad with
        | Some msg -> Error (Printf.sprintf "fault-spec %S: %s" name msg)
        | None -> begin
            match (!rate, !count, !every, !at) with
            | Some p, None, None, None -> Ok (name, Rate { p; seed = !seed })
            | None, Some n, None, None -> Ok (name, Count n)
            | None, None, Some n, None -> Ok (name, Every n)
            | None, None, None, Some n -> Ok (name, At n)
            | None, None, None, None ->
                Error
                  (Printf.sprintf
                     "fault-spec %S: one of rate/count/every/at is required"
                     name)
            | _ ->
                Error
                  (Printf.sprintf
                     "fault-spec %S: rate, count, every and at are mutually \
                      exclusive"
                     name)
          end
      end
    end

let parse_spec spec =
  let entries =
    String.split_on_char ';' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if entries = [] then
    Error "fault-spec: no entries (expected NAME:key=value[;NAME:...])"
  else
  let rec walk acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest -> begin
        match parse_entry e with
        | Ok pair -> walk (pair :: acc) rest
        | Error _ as err -> err
      end
  in
  walk [] entries

let arm_spec spec =
  match parse_spec spec with
  | Error _ as err -> err
  | Ok pairs ->
      List.iter (fun (name, mode) -> arm name mode) pairs;
      Ok ()

let mode_to_string = function
  | Rate { p; seed } -> Printf.sprintf "rate=%g,seed=%d" p seed
  | Count n -> Printf.sprintf "count=%d" n
  | Every n -> Printf.sprintf "every=%d" n
  | At n -> Printf.sprintf "at=%d" n
