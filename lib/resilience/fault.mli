(** Deterministic fault injection.

    Every degradation path in the flow sits behind a named injection point
    ([dcop.solve], [ac.solve], [mc.sample], [tbl.write], ...).  Tests and
    the [--fault-spec] CLI flag arm points with a failure schedule; the code
    hosting the point consults it on every hit and simulates the failure
    (non-convergence, torn write, lost sample) when it fires.

    Schedules are deterministic: a rate-armed point decides hit [n] by a
    pure hash of (seed, point name, n), so an injection run replays
    identically — including across the serial and parallel Monte Carlo
    paths, which index hits identically (see {!fire_at} / {!advance}).

    Every point also feeds two counters into {!Yield_obs.Metrics}:
    [fault.<name>.hits] (times consulted) and [fault.<name>.injected]
    (times it fired), so a test can assert that the retry/degradation
    machinery accounted for every injected fault. *)

exception Injected of string
(** Raised by {!raise_if}: a simulated crash at the named point. *)

type mode =
  | Rate of { p : float; seed : int }
      (** each hit fails independently with probability [p] *)
  | Count of int  (** the first [n] hits fail *)
  | Every of int  (** hits [k], [2k], [3k], ... fail (1-based) *)
  | At of int  (** exactly hit [k] fails (1-based) *)

type point

val point : string -> point
(** Find-or-create the named injection point (same registry semantics as
    {!Yield_obs.Metrics}: two lookups share the instrument).  Resolve once
    and keep the handle on hot paths. *)

val name : point -> string

val arm : string -> mode -> unit

val disarm : string -> unit

val reset : unit -> unit
(** Disarm every point and zero every hit counter (tests). *)

val armed : unit -> (string * mode) list
(** The armed points, sorted by name. *)

val known : unit -> string list
(** Every registered point name, sorted.  Modules host their points in
    top-level bindings, so by the time [main] runs the registry lists every
    injection point linked into the program — the set a [--fault-spec]
    string is validated against.  Note {!arm} registers its point too:
    validate names {e before} arming. *)

val is_known : string -> bool

val fire : point -> bool
(** Consume one hit of the point's schedule: [true] when armed and this hit
    fails.  The hit index is the point's internal atomic counter. *)

val fire_at : point -> index:int -> bool
(** Decide hit [index] without consuming the internal counter — for callers
    that own a deterministic index (e.g. a Monte Carlo sample number), so
    the decision is independent of domain interleaving. *)

val advance : point -> by:int -> int
(** Atomically reserve a block of [by] hit indices and return the first,
    for batched {!fire_at} use. *)

val raise_if : point -> unit
(** [fire] and raise {!Injected} when it fires — a simulated crash for
    checkpoint/resume tests. *)

val parse_spec : string -> ((string * mode) list, string) result
(** Parse a [--fault-spec] string:
    [NAME:key=value[,key=value][;NAME:...]] with keys [rate] (in [0, 1],
    optionally with [seed]), [count], [every], [at].  Example:
    ["dcop.solve:rate=0.2,seed=42;tbl.write:at=1"]. *)

val arm_spec : string -> (unit, string) result
(** Parse and arm in one step. *)

val mode_to_string : mode -> string
