(** The flow's checkpoint store: a run directory of keyed JSON blobs.

    Each stage of the flow persists its progress under a key ([wbga.state]
    per generation, [wbga.result] and [front] at stage boundaries,
    [mc.state] per Monte Carlo batch).  All writes are atomic
    ({!Atomic_io}), so a kill at any instant leaves the directory in the
    last consistent state; payloads use the bit-exact {!Codec}, so a
    resumed run continues the RNG streams and float state identically to
    an uninterrupted one.

    Feeds the [checkpoint.writes] and [checkpoint.corrupt] counters of
    {!Yield_obs.Metrics}. *)

type t

val create : dir:string -> t
(** Open (creating if needed) the run directory. *)

val dir : t -> string

val store : t -> key:string -> Yield_obs.Json.t -> unit
(** Atomically (over)write [<dir>/<key>.ckpt.json].
    @raise Invalid_argument on keys with characters outside
    [[A-Za-z0-9._-]]. *)

val load : t -> key:string -> Yield_obs.Json.t option
(** [None] when the key is absent {e or} unreadable/corrupt (the stage is
    then recomputed; the [checkpoint.corrupt] counter records it). *)

val remove : t -> key:string -> unit

val check_fingerprint : t -> string -> ([ `Fresh | `Resumable ], string) result
(** Guard against resuming with a different configuration: on a fresh
    directory, record [fp] and return [`Fresh]; on a directory holding the
    same fingerprint return [`Resumable]; otherwise return a descriptive
    error. *)
