module Json = Yield_obs.Json
module Metrics = Yield_obs.Metrics

let c_writes = Metrics.counter "checkpoint.writes"

let c_corrupt = Metrics.counter "checkpoint.corrupt"

type t = { dir : string }

let create ~dir =
  Atomic_io.mkdir_p dir;
  { dir }

let dir t = t.dir

let valid_key key =
  key <> ""
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_' -> true
         | _ -> false)
       key

let path t ~key =
  if not (valid_key key) then invalid_arg "Checkpoint: bad key";
  Filename.concat t.dir (key ^ ".ckpt.json")

let store t ~key json =
  Atomic_io.write_file ~path:(path t ~key) (Json.to_string json ^ "\n");
  Metrics.incr c_writes

let load t ~key =
  let path = path t ~key in
  if not (Sys.file_exists path) then None
  else begin
    match Json.parse (String.trim (Atomic_io.read_file ~path)) with
    | json -> Some json
    | exception (Json.Parse_error _ | Sys_error _) ->
        (* a corrupt checkpoint degrades to "recompute that stage"; the
           atomic writes make this unreachable short of external damage *)
        Metrics.incr c_corrupt;
        None
  end

let remove t ~key =
  let path = path t ~key in
  if Sys.file_exists path then Sys.remove path

(* ---------- run fingerprint ---------- *)

let store_fingerprint t fp =
  store t ~key:"meta"
    (Json.Obj [ ("version", Json.Int 1); ("fingerprint", Json.String fp) ])

let check_fingerprint t fp =
  match load t ~key:"meta" with
  | None ->
      store_fingerprint t fp;
      Ok `Fresh
  | Some json -> begin
      match Json.member "fingerprint" json with
      | Some (Json.String existing) when existing = fp -> Ok `Resumable
      | Some (Json.String existing) ->
          Error
            (Printf.sprintf
               "checkpoint %s was written by a different run configuration \
                (%s, this run is %s)"
               t.dir existing fp)
      | _ -> Error (Printf.sprintf "checkpoint %s: malformed meta" t.dir)
    end
