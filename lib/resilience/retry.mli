(** Bounded retries with failure classification.

    A policy names the operation and bounds its attempts; {!with_retries}
    re-runs the operation on {e transient} failures (the attempt number is
    passed so the caller can perturb, e.g. jitter the DC initial guess) and
    gives up immediately on {e permanent} ones.

    Each policy feeds {!Yield_obs.Metrics}: the [retry.<name>.attempts]
    histogram (attempts per call) and the [retry.<name>.retries] /
    [.recovered] / [.exhausted] / [.permanent] counters.  When fault
    injection is the only transient-failure source, the accounting identity

    [fault.<point>.injected = retry.<name>.retries + retry.<name>.exhausted]

    holds exactly, which is how the tests prove no injected fault goes
    unaccounted. *)

type classification = Transient | Permanent

type policy

val policy : ?max_attempts:int -> string -> policy
(** [policy name] with [max_attempts] total attempts (default 3: the first
    try plus two retries).  @raise Invalid_argument when [max_attempts < 1]. *)

val name : policy -> string

val max_attempts : policy -> int

val with_retries :
  ?deadline_s:float ->
  policy ->
  classify:('e -> classification) ->
  (attempt:int -> ('a, 'e) result) ->
  ('a, 'e) result
(** [with_retries p ~classify f] calls [f ~attempt:1], retrying transient
    errors with increasing [attempt] up to the policy bound.  Returns the
    first success or the last failure.

    [deadline_s] is an {e absolute} monotonic deadline (the
    {!Yield_obs.Clock.now_s} timebase): after a transient failure, a retry
    is launched only when it can plausibly finish before the deadline —
    [now + previous attempt's duration <= deadline_s].  Stopping on the
    deadline counts into [retry.<name>.exhausted] (so the accounting
    identity above still holds) and additionally into
    [retry.<name>.deadline_stopped].  The first attempt always runs;
    callers enforce admission deadlines themselves. *)
