module Json = Yield_obs.Json
module Rng = Yield_stats.Rng

exception Decode of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode s)) fmt

(* floats are stored as hexadecimal literals ("%h"): exact bit round-trip,
   which the resume-determinism guarantee depends on *)
let float_ f = Json.String (Printf.sprintf "%h" f)

let to_float = function
  | Json.String s -> begin
      match float_of_string_opt s with
      | Some f -> f
      | None -> fail "bad float literal %S" s
    end
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | _ -> fail "expected a float"

let int_ i = Json.Int i

let to_int = function Json.Int i -> i | _ -> fail "expected an int"

let int64_ i = Json.String (Int64.to_string i)

let to_int64 = function
  | Json.String s -> begin
      match Int64.of_string_opt s with
      | Some i -> i
      | None -> fail "bad int64 literal %S" s
    end
  | _ -> fail "expected an int64 string"

let list f xs = Json.List (List.map f xs)

let to_list f = function
  | Json.List xs -> List.map f xs
  | _ -> fail "expected a list"

let array f xs = Json.List (Array.to_list (Array.map f xs))

let to_array f j = Array.of_list (to_list f j)

let float_array = array float_

let to_float_array = to_array to_float

let option f = function None -> Json.Null | Some v -> f v

let to_option f = function Json.Null -> None | j -> Some (f j)

let member key j =
  match Json.member key j with
  | Some v -> v
  | None -> fail "missing member %S" key

let rng_state (s : Rng.state) =
  Json.Obj
    [
      ("s0", int64_ s.Rng.s0);
      ("s1", int64_ s.Rng.s1);
      ("s2", int64_ s.Rng.s2);
      ("s3", int64_ s.Rng.s3);
      ("cached", option float_ s.Rng.cached_gaussian);
    ]

let to_rng_state j =
  {
    Rng.s0 = to_int64 (member "s0" j);
    s1 = to_int64 (member "s1" j);
    s2 = to_int64 (member "s2" j);
    s3 = to_int64 (member "s3" j);
    cached_gaussian = to_option to_float (member "cached" j);
  }
