(** The one resolution rule for the flow's degree of parallelism.

    Every parallel stage (WBGA population evaluation, Pareto-front
    re-simulation, Monte Carlo batches) obeys a single [jobs] setting,
    resolved here with one precedence chain:

    + an explicit request (the [--jobs N] / [-j N] CLI flag, or the [?cli]
      argument of {!resolve}),
    + the [YIELDLAB_JOBS] environment variable,
    + [Domain.recommended_domain_count] (the whole machine).

    This replaces the previous scattered
    [min 8 (Domain.recommended_domain_count ())] defaults: there is no
    hidden cap any more — {!Yield_analyse.Config_lint} warns instead when
    the resolved count exceeds the recommended one.  [jobs = 1] always
    means the exact serial code path. *)

val env_var : string
(** ["YIELDLAB_JOBS"].  Parsed as a positive integer; anything else is
    ignored (the chain falls through to the recommended count). *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val set_requested : int option -> unit
(** Record the global CLI flag ([--jobs N]).  The CLI front-end calls this
    once, before any subcommand body runs; libraries never do. *)

val requested : unit -> int option
(** The value recorded by {!set_requested}, if any. *)

val resolve : ?cli:int -> unit -> int
(** Resolve the jobs count: [cli] > {!requested} > [YIELDLAB_JOBS] >
    {!recommended}.  Always at least 1. *)
