let env_var = "YIELDLAB_JOBS"

let recommended () = Domain.recommended_domain_count ()

let requested_ref = ref None

let set_requested v = requested_ref := Option.map (fun n -> Stdlib.max 1 n) v

let requested () = !requested_ref

let of_env () =
  match Sys.getenv_opt env_var with
  | None -> None
  | Some s -> begin
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None -> None
    end

let resolve ?cli () =
  match cli with
  | Some n -> Stdlib.max 1 n
  | None -> begin
      match !requested_ref with
      | Some n -> n
      | None -> begin
          match of_env () with Some n -> n | None -> recommended ()
        end
    end
