(** A reusable OCaml 5 domain pool with deterministic reduction.

    One pool serves a whole flow run: the WBGA evaluates each generation's
    population through it, the Pareto-front re-simulation fans its nominal
    evaluations out over it, and every Monte Carlo batch chunks its samples
    across the same worker domains.  Spawning the workers once (instead of
    a throwaway pool per batch) amortises the domain start-up cost over the
    100+ batches of a run.

    {2 Determinism contract}

    [map]/[map_counted] assign items to workers dynamically (an atomic
    work-stealing index), but results are always written to the item's own
    slot and reduced in item order, so the output is independent of the
    interleaving.  The caller keeps every order-sensitive side effect
    (RNG stream splitting, fitness normalisation, archive updates, metric
    baselines) outside the mapped function: split per-item child RNG
    streams {e before} the fan-out and fold over the results {e after} it.
    With a deterministic per-item function, a [jobs = n] map is
    bit-identical to the serial loop.

    A pool created with [jobs = 1] spawns no domains and runs every map as
    a plain in-order loop on the caller's domain — the exact serial code
    path, with no atomics and no worker spans.

    {2 Observability and fault injection}

    Each participating domain (the workers and the calling domain, which
    always takes part) records one ["exec.worker"] span per parallel map;
    their durations against the enclosing batch span give the per-domain
    utilisation.  {!map_counted} can consult a
    {!Yield_resilience.Fault.point} per item: a block of hit indices is
    reserved up front and each item's fate is decided by its own global
    index, so an injection schedule fires on exactly the same items
    whatever the interleaving — and identically to the serial path. *)

type t

type 'a counted = {
  results : 'a array;  (** the successful items, in item order *)
  attempted : int;
  failed : int;  (** items that returned [None] or were injected away *)
}

val create : jobs:int -> unit -> t
(** [create ~jobs ()] spawns [max 1 jobs - 1] worker domains (the caller is
    the remaining participant).  The pool must be released with
    {!shutdown}; prefer {!with_pool} where the lifetime is a scope. *)

val jobs : t -> int
(** The participant count the pool was created with (always >= 1). *)

val map : t -> n:int -> (int -> 'a) -> 'a array
(** [map t ~n f] computes [|f 0; ...; f (n-1)|], fanning the calls out over
    the pool's domains.  [f] must not share unsynchronised mutable state
    across items.  If any call raises, the first exception (in completion
    order) is re-raised in the caller after all workers have quiesced;
    remaining items may be skipped. *)

val map_counted :
  t -> ?fault:Yield_resilience.Fault.point -> n:int -> (int -> 'a option) ->
  'a counted
(** [map_counted t ~n f] is {!map} for partial per-item functions: [None]
    results are dropped and counted as [failed], successes are collected in
    item order.  With [?fault], a block of [n] hit indices of the point is
    reserved ({!Yield_resilience.Fault.advance}) and an item whose index
    fires ({!Yield_resilience.Fault.fire_at}) is lost — [f] is not called —
    exactly as the serial Monte Carlo loop decides it. *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent; the pool must not be used
    afterwards. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exceptions). *)
