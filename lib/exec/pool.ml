module Span = Yield_obs.Span
module Fault = Yield_resilience.Fault

type 'a counted = { results : 'a array; attempted : int; failed : int }

(* One parallel map in flight.  Items are claimed with [next]; every
   participant (workers + caller) decrements [pending] exactly once when it
   runs out of items, and the last one wakes the caller. *)
type job = {
  run : int -> unit;
  count : int;
  next : int Atomic.t;
  pending : int Atomic.t;
  failure : exn option Atomic.t;
}

type t = {
  jobs : int;
  lock : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  (* the job workers should be running, tagged with an epoch so a worker
     never re-enters a job it already finished *)
  mutable current : (int * job) option;
  mutable epoch : int;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.jobs

(* claim and run items until the job is drained (or poisoned by a raise);
   the per-participant span durations give the domain utilisation.  [slot]
   is the participant's fixed ordinal (caller 0, workers 1..jobs-1): a
   stable span key, so sampling keeps the same slots at any interleaving *)
let run_items ~slot job =
  Span.with_ ~name:"exec.worker" ~key:slot (fun () ->
      let rec loop () =
        let i = Atomic.fetch_and_add job.next 1 in
        if i < job.count && Atomic.get job.failure = None then begin
          (match job.run i with
          | () -> ()
          | exception exn ->
              ignore (Atomic.compare_and_set job.failure None (Some exn)));
          loop ()
        end
      in
      loop ())

let finish_participation t job =
  if Atomic.fetch_and_add job.pending (-1) = 1 then begin
    Mutex.lock t.lock;
    Condition.broadcast t.work_done;
    Mutex.unlock t.lock
  end

let rec worker_loop t ~slot last_epoch =
  Mutex.lock t.lock;
  let rec await () =
    if t.stop then `Stop
    else
      match t.current with
      | Some (epoch, job) when epoch <> last_epoch -> `Job (epoch, job)
      | Some _ | None ->
          Condition.wait t.work_ready t.lock;
          await ()
  in
  let next = await () in
  Mutex.unlock t.lock;
  match next with
  | `Stop -> ()
  | `Job (epoch, job) ->
      run_items ~slot job;
      finish_participation t job;
      worker_loop t ~slot epoch

let create ~jobs () =
  let jobs = Stdlib.max 1 jobs in
  let t =
    {
      jobs;
      lock = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      current = None;
      epoch = 0;
      stop = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (jobs - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop t ~slot:(i + 1) 0));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~jobs f =
  let t = create ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let run_job t ~count run =
  if count = 0 then ()
  else if t.jobs <= 1 || count <= 1 then
    (* the exact serial code path: in-order, no atomics, no worker spans *)
    for i = 0 to count - 1 do
      run i
    done
  else begin
    let job =
      {
        run;
        count;
        next = Atomic.make 0;
        pending = Atomic.make t.jobs;
        failure = Atomic.make None;
      }
    in
    Mutex.lock t.lock;
    t.epoch <- t.epoch + 1;
    t.current <- Some (t.epoch, job);
    Condition.broadcast t.work_ready;
    Mutex.unlock t.lock;
    (* the caller is a participant too, so [jobs = 2] means two busy
       domains, not one worker plus an idle coordinator *)
    run_items ~slot:0 job;
    finish_participation t job;
    Mutex.lock t.lock;
    while Atomic.get job.pending > 0 do
      Condition.wait t.work_done t.lock
    done;
    Mutex.unlock t.lock;
    match Atomic.get job.failure with Some exn -> raise exn | None -> ()
  end

let map t ~n f =
  let slots = Array.make n None in
  run_job t ~count:n (fun i -> slots.(i) <- Some (f i));
  Array.map
    (function
      | Some v -> v
      | None -> invalid_arg "Pool.map: item skipped without an exception")
    slots

let map_counted t ?fault ~n f =
  (* reserve the fault-index block before any item runs, so the schedule
     decides by global sample index — identical serial and parallel *)
  let base = match fault with None -> 0 | Some p -> Fault.advance p ~by:n in
  let slots = Array.make n None in
  run_job t ~count:n (fun i ->
      slots.(i) <-
        (match fault with
        | Some p when Fault.fire_at p ~index:(base + i) -> None
        | Some _ | None -> f i));
  let failed =
    Array.fold_left (fun acc s -> match s with None -> acc + 1 | Some _ -> acc) 0 slots
  in
  {
    results = Array.of_list (List.filter_map Fun.id (Array.to_list slots));
    attempted = n;
    failed;
  }
