(** SARIF 2.1.0 rendering of lint findings, for CI upload and code-scanning
    ingestion.

    One run, one [tool.driver] named ["yieldlab"], one rule per distinct
    code present in the findings (with a short description from the built-in
    catalogue).  Every result carries a
    [partialFingerprints."yieldlab/v1"] entry equal to
    {!Baseline.fingerprint}, so SARIF consumers and the baseline file agree
    on identity; findings passed as [suppressed] are emitted with
    [suppressions: [{"kind": "external"}]] as SARIF prescribes for
    baseline-suppressed results. *)

val rule_descriptions : (string * string) list
(** The rule registry: one [(code, one-line description)] pair per stable
    code, in catalogue order.  This is the single source the SARIF [rules]
    array and the generated README code table are built from
    ([yieldlab lint codes]). *)

val render :
  ?tool_version:string ->
  ?suppressed:Diagnostic.t list ->
  Diagnostic.t list ->
  Yield_obs.Json.t
(** Severities map to SARIF levels [error]/[warning]/[note].  Findings with
    {!Diagnostic.related} spans carry SARIF [relatedLocations] (secondary
    spans default to the finding's own file). *)

val save :
  ?tool_version:string ->
  ?suppressed:Diagnostic.t list ->
  path:string ->
  Diagnostic.t list ->
  unit
