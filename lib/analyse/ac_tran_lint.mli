(** Analysis-card preconditions: can the declared [.ac] / [.tran] sweep
    actually observe anything, given the circuit structure and the interval
    enclosure of its time constants?

    Codes (A = AC sweep, R = transient):

    - [A001] (error)   [.ac] with no AC-excited source — zero transfer
    - [A002] (error)   [.ac] output node unknown (warning when it is ground)
    - [A003] (error)   output node provably unreachable from every
                       AC-excited source through the signal-flow graph
    - [A004] (error)   malformed sweep ([per_decade <= 0] or not
                       [0 < f_lo < f_hi]) — {!Ac.default_freqs} would raise
    - [A005] (warning) sweep band provably disjoint from the interval hull
                       of the circuit's pole frequencies
    - [R001] (error)   degenerate [.tran] card (not [0 < dt < t_stop])
    - [R002] (warning) timestep provably exceeds the fastest time constant
    - [R003] (warning) no time-varying stimulus — the waveform is a decay to
                       the operating point
    - [R004] (error)   [.tran] output node unknown

    "Provably" is backed by {!Interval}: reachability is a fixpoint over the
    signal-flow graph, and time constants are outward-rounded [C/G]
    enclosures per voltage-source-merged component (exact R/C values, MOS
    contributions bounded above by geometry and below by cutoff). *)

val check :
  ?file:string ->
  Yield_spice.Circuit.t ->
  Yield_spice.Netlist.analysis list ->
  Diagnostic.t list
(** Findings for every [.ac] / [.tran] card, in card order; [.op] and [.dc]
    cards produce nothing. *)

val check_file : string -> Diagnostic.t list
(** Parse to the AST, elaborate and {!check} one netlist file; every
    finding carries the source span of the analysis card it is about.
    Unreadable or unparseable input yields [[]] —
    {!Netlist_lint.check_file} owns the [N000] diagnostic for that; run
    both, as [yieldlab lint netlist] does. *)
