module Circuit = Yield_spice.Circuit
module Device = Yield_spice.Device
module Ast = Yield_spice.Netlist_ast
module Parser = Yield_spice.Netlist_parser
module Elab = Yield_spice.Netlist_elab
module Topology = Yield_spice.Topology
module Tech = Yield_process.Tech

let diag = Diagnostic.make

(* spans for circuit-level findings come from the elaboration provenance
   tables, when the circuit was read from a file *)
let node_span origin name =
  Option.bind origin (fun (o : Elab.origin) ->
      Option.map Diagnostic.span_of_ast (Hashtbl.find_opt o.Elab.nodes name))

let device_span origin name =
  Option.bind origin (fun (o : Elab.origin) ->
      Option.map Diagnostic.span_of_ast (Hashtbl.find_opt o.Elab.devices name))

let structural ?file ?origin circuit =
  List.map
    (fun issue ->
      match issue with
      | Topology.No_dc_path { node } ->
          diag ?file ?span:(node_span origin node) ~code:"N002"
            ~severity:Diagnostic.Error ~subject:node
            (Topology.issue_to_string issue
            ^ " — the MNA system is singular; Dcop will fail")
      | Topology.No_ac_path { node } ->
          (* dc_issues never produces this (AC edges are a superset of DC
             edges, so an AC-floating node is DC-floating too and reported
             as N002); keep the match exhaustive for the strict build *)
          diag ?file ?span:(node_span origin node) ~code:"N002"
            ~severity:Diagnostic.Error ~subject:node
            (Topology.issue_to_string issue
            ^ " — the MNA system is singular; Dcop will fail")
      | Topology.Vsource_loop { through } ->
          diag ?file ?span:(device_span origin through) ~code:"N003"
            ~severity:Diagnostic.Error ~subject:through
            (Topology.issue_to_string issue
            ^ " — the MNA system is singular; Dcop will fail"))
    (Topology.dc_issues circuit)

let dangling ?file ?origin circuit =
  List.map
    (fun (node, device) ->
      diag ?file ?span:(node_span origin node) ~code:"N001"
        ~severity:Diagnostic.Warning ~subject:node
        (Printf.sprintf
           "node %s is referenced only by device %s — dangling terminal?"
           node device))
    (Topology.dangling_nodes circuit)

let device_values ?file ?origin ?tech circuit =
  let out = ref [] in
  let push d = out := d :: !out in
  Array.iter
    (fun dev ->
      match dev with
      | Device.Mosfet { name; w; l; _ } ->
          let span = device_span origin name in
          if w <= 0. || l <= 0. then
            push
              (diag ?file ?span ~code:"N004" ~severity:Diagnostic.Error
                 ~subject:name
                 (Printf.sprintf
                    "MOSFET %s has non-positive geometry (w=%g m, l=%g m)" name
                    w l))
          else begin
            match tech with
            | Some t when l < t.Tech.l_min || w < t.Tech.l_min ->
                push
                  (diag ?file ?span ~code:"N007" ~severity:Diagnostic.Warning
                     ~subject:name
                     (Printf.sprintf
                        "MOSFET %s (w=%g m, l=%g m) is below the %s minimum \
                         channel length %g m"
                        name w l t.Tech.name t.Tech.l_min))
            | Some _ | None -> ()
          end
      | Device.Resistor { name; ohms; _ } ->
          if ohms <= 0. then
            push
              (diag ?file
                 ?span:(device_span origin name)
                 ~code:"N005" ~severity:Diagnostic.Error ~subject:name
                 (Printf.sprintf
                    "resistor %s has non-positive resistance %g Ohm" name ohms))
      | Device.Capacitor { name; farads; _ } ->
          if farads < 0. then
            push
              (diag ?file
                 ?span:(device_span origin name)
                 ~code:"N006" ~severity:Diagnostic.Error ~subject:name
                 (Printf.sprintf "capacitor %s has negative capacitance %g F"
                    name farads))
      | Device.Vsource _ | Device.Isource _ | Device.Vccs _ -> ())
    (Circuit.devices circuit);
  List.rev !out

(* a pair name matches the device called exactly that, or with any
   "<prefix>." in front (builder and subckt-flattening prefixes) *)
let name_matches ~pair_name device_name =
  device_name = pair_name
  ||
  let np = String.length pair_name and nd = String.length device_name in
  nd > np + 1
  && device_name.[nd - np - 1] = '.'
  && String.sub device_name (nd - np) np = pair_name

let mosfets_named circuit pair_name =
  Array.to_list (Circuit.devices circuit)
  |> List.filter_map (fun dev ->
         match dev with
         | Device.Mosfet { name; w; l; _ } when name_matches ~pair_name name ->
             Some (name, w, l)
         | _ -> None)

let symmetric_pairs ?file ?origin circuit pairs =
  List.concat_map
    (fun (a, b) ->
      match (mosfets_named circuit a, mosfets_named circuit b) with
      | (na, wa, la) :: _, (nb, wb, lb) :: _ when wa <> wb || la <> lb ->
          [
            diag ?file
              ?span:(device_span origin na)
              ~code:"N008" ~severity:Diagnostic.Warning
              ~subject:(na ^ "/" ^ nb)
              (Printf.sprintf
                 "symmetric pair %s/%s mismatched: w=%g/%g m, l=%g/%g m" na nb
                 wa wb la lb);
          ]
      | _ -> [])
    pairs

let check ?file ?origin ?tech ?(pairs = []) circuit =
  structural ?file ?origin circuit
  @ device_values ?file ?origin ?tech circuit
  @ dangling ?file ?origin circuit
  @ symmetric_pairs ?file ?origin circuit pairs

(* ---------- AST checks: hierarchy and parameters, pre-elaboration ---------- *)

let at span = Printf.sprintf "line %d:%d" span.Ast.start_line span.Ast.start_col

(* every card of the netlist with the scope it appears in: "" for top level,
   the subckt name otherwise *)
let scoped_cards (ast : Ast.t) =
  List.concat_map
    (fun stmt ->
      match stmt with
      | Ast.Card { card; span } -> [ ("", card, span) ]
      | Ast.Subckt { name; body; _ } ->
          List.filter_map
            (fun s ->
              match s with
              | Ast.Card { card; span } -> Some (name.id, card, span)
              | Ast.Subckt _ -> None)
            body)
    ast.statements

let duplicate_devices ?file ast =
  (* (scope, name) -> first definition span; a second definition in the same
     scope is a hard error — elaboration would refuse the flat circuit *)
  let seen : (string * string, Ast.span) Hashtbl.t = Hashtbl.create 32 in
  List.filter_map
    (fun (scope, card, span) ->
      match Ast.card_name card with
      | None -> None
      | Some name -> begin
          let key = (scope, name.Ast.id) in
          match Hashtbl.find_opt seen key with
          | None ->
              Hashtbl.add seen key span;
              None
          | Some first ->
              Some
                (diag ?file
                   ~span:(Diagnostic.span_of_ast name.Ast.ispan)
                   ~related:
                     [
                       {
                         Diagnostic.rel_file = None;
                         rel_span = Diagnostic.span_of_ast first;
                         note = "first definition";
                       };
                     ]
                   ~code:"N009" ~severity:Diagnostic.Error ~subject:name.Ast.id
                   (Printf.sprintf
                      "duplicate device name %s%s (first defined at %s)"
                      name.Ast.id
                      (if scope = "" then "" else " in .subckt " ^ scope)
                      (at first)))
        end)
    (scoped_cards ast)

let subckt_checks ?file (ast : Ast.t) =
  let defs =
    List.filter_map
      (fun stmt ->
        match stmt with
        | Ast.Subckt { name; ports; _ } -> Some (name, ports)
        | Ast.Card _ -> None)
      ast.statements
  in
  let instances =
    List.filter_map
      (fun (_, card, span) ->
        match card with
        | Ast.Instance { name; conns; sub } -> Some (name, conns, sub, span)
        | _ -> None)
      (scoped_cards ast)
  in
  let find_def sub =
    List.find_opt (fun ((n : Ast.ident), _) -> n.id = sub) defs
  in
  let undefined_or_arity =
    List.filter_map
      (fun ((name : Ast.ident), conns, (sub : Ast.ident), _span) ->
        match find_def sub.id with
        | None ->
            Some
              (diag ?file
                 ~span:(Diagnostic.span_of_ast sub.ispan)
                 ~code:"N010" ~severity:Diagnostic.Error ~subject:sub.id
                 (Printf.sprintf "%s instantiates undefined .subckt %s"
                    name.id sub.id))
        | Some (_, ports) ->
            let nc = List.length conns and np = List.length ports in
            if nc <> np then
              Some
                (diag ?file
                   ~span:(Diagnostic.span_of_ast name.ispan)
                   ~code:"N012" ~severity:Diagnostic.Error ~subject:name.id
                   (Printf.sprintf
                      "%s wires %d connection(s) to .subckt %s, which has %d \
                       port(s)"
                      name.id nc sub.id np))
            else None)
      instances
  in
  let used =
    List.fold_left
      (fun acc (_, _, (sub : Ast.ident), _) -> sub.id :: acc)
      [] instances
  in
  let unused =
    List.filter_map
      (fun ((name : Ast.ident), _) ->
        if List.mem name.id used then None
        else
          Some
            (diag ?file
               ~span:(Diagnostic.span_of_ast name.ispan)
               ~code:"N011" ~severity:Diagnostic.Warning ~subject:name.id
               (Printf.sprintf ".subckt %s is never instantiated" name.id)))
      defs
  in
  undefined_or_arity @ unused

let param_checks ?file ast =
  (* definitions in card order, tagged with scope; references are every
     parameter name any value expression mentions *)
  let cards = scoped_cards ast in
  let defs =
    List.concat_map
      (fun (scope, card, _) ->
        match card with
        | Ast.Param assigns ->
            List.map
              (fun (a : Ast.assign) ->
                (scope, String.lowercase_ascii a.key.Ast.id, a.key.Ast.ispan))
              assigns
        | _ -> [])
      cards
  in
  let refs =
    let values_of card =
      match (card : Ast.card) with
      | Ast.Resistor { r; _ } -> [ r ]
      | Ast.Capacitor { c; _ } -> [ c ]
      | Ast.Vsource { dc; ac; _ } | Ast.Isource { dc; ac; _ } ->
          dc :: Option.to_list ac
      | Ast.Vccs { gm; _ } -> [ gm ]
      | Ast.Mosfet { params; _ } | Ast.Model { params; _ } ->
          List.map (fun (a : Ast.assign) -> a.v) params
      | Ast.Param assigns -> List.map (fun (a : Ast.assign) -> a.v) assigns
      | Ast.Nodeset entries -> List.map snd entries
      | Ast.Analysis (Ast.Ac { per_decade; f_lo; f_hi; _ }) ->
          [ per_decade; f_lo; f_hi ]
      | Ast.Analysis (Ast.Tran { dt; t_stop; _ }) -> [ dt; t_stop ]
      | Ast.Analysis (Ast.Dc { start; stop; step; _ }) -> [ start; stop; step ]
      | Ast.Analysis Ast.Op | Ast.Instance _ | Ast.End -> []
    in
    List.concat_map
      (fun (_, card, _) -> List.concat_map Ast.value_refs (values_of card))
      cards
  in
  let unused =
    List.filter_map
      (fun (scope, name, span) ->
        if List.mem name refs then None
        else
          Some
            (diag ?file
               ~span:(Diagnostic.span_of_ast span)
               ~code:"N013" ~severity:Diagnostic.Warning ~subject:name
               (Printf.sprintf ".param %s%s is never referenced" name
                  (if scope = "" then "" else " (in .subckt " ^ scope ^ ")"))))
      defs
  in
  let shadowed =
    let seen : (string, string * Ast.span) Hashtbl.t = Hashtbl.create 8 in
    List.filter_map
      (fun (scope, name, span) ->
        match Hashtbl.find_opt seen name with
        | None ->
            Hashtbl.add seen name (scope, span);
            None
        | Some (first_scope, first) ->
            (* a top-level redefinition shadows for every later card; a
               subckt-local one shadows the outer binding inside the body *)
            Some
              (diag ?file
                 ~span:(Diagnostic.span_of_ast span)
                 ~code:"N014" ~severity:Diagnostic.Warning ~subject:name
                 (Printf.sprintf
                    ".param %s shadows the assignment at %s%s" name (at first)
                    (if first_scope = scope then ""
                     else " (outer scope)"))))
      defs
  in
  unused @ shadowed

let check_ast ?file ast =
  duplicate_devices ?file ast @ subckt_checks ?file ast @ param_checks ?file ast

(* ---------- whole-file entry point ---------- *)

let n000 ~path ?span message =
  diag ~file:path ?span ~code:"N000" ~severity:Diagnostic.Error ~subject:path
    message

let check_file ?tech ?pairs path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> [ n000 ~path msg ]
  | text -> begin
      match Parser.parse text with
      | exception Ast.Parse_error { span; message } ->
          [ n000 ~path ~span:(Diagnostic.span_of_ast span) message ]
      | exception Failure message ->
          (* the frontend contract is typed errors only; if it is ever
             broken, degrade to a spanless N000 instead of a backtrace *)
          [ n000 ~path message ]
      | ast -> begin
          let ast_diags = check_ast ~file:path ast in
          let origin = Elab.create_origin () in
          match Elab.elaborate ~origin ast with
          | exception Ast.Parse_error { span; message } ->
              (* an AST-level error (undefined subckt, arity, duplicate)
                 already explains most elaboration failures; only surface
                 N000 when it would say something new *)
              if List.exists (fun d -> d.Diagnostic.severity = Diagnostic.Error) ast_diags
              then ast_diags
              else
                ast_diags @ [ n000 ~path ~span:(Diagnostic.span_of_ast span) message ]
          | exception Failure message -> ast_diags @ [ n000 ~path message ]
          | circuit, _ ->
              ast_diags @ check ~file:path ~origin ?tech ?pairs circuit
        end
    end
