module Circuit = Yield_spice.Circuit
module Device = Yield_spice.Device
module Netlist = Yield_spice.Netlist
module Topology = Yield_spice.Topology
module Tech = Yield_process.Tech

let diag = Diagnostic.make

let structural ?file circuit =
  List.map
    (fun issue ->
      match issue with
      | Topology.No_dc_path { node } ->
          diag ?file ~code:"N002" ~severity:Diagnostic.Error ~subject:node
            (Topology.issue_to_string issue
            ^ " — the MNA system is singular; Dcop will fail")
      | Topology.No_ac_path { node } ->
          (* dc_issues never produces this (AC edges are a superset of DC
             edges, so an AC-floating node is DC-floating too and reported
             as N002); keep the match exhaustive for the strict build *)
          diag ?file ~code:"N002" ~severity:Diagnostic.Error ~subject:node
            (Topology.issue_to_string issue
            ^ " — the MNA system is singular; Dcop will fail")
      | Topology.Vsource_loop { through } ->
          diag ?file ~code:"N003" ~severity:Diagnostic.Error ~subject:through
            (Topology.issue_to_string issue
            ^ " — the MNA system is singular; Dcop will fail"))
    (Topology.dc_issues circuit)

let dangling ?file circuit =
  List.map
    (fun (node, device) ->
      diag ?file ~code:"N001" ~severity:Diagnostic.Warning ~subject:node
        (Printf.sprintf
           "node %s is referenced only by device %s — dangling terminal?"
           node device))
    (Topology.dangling_nodes circuit)

let device_values ?file ?tech circuit =
  let out = ref [] in
  let push d = out := d :: !out in
  Array.iter
    (fun dev ->
      match dev with
      | Device.Mosfet { name; w; l; _ } ->
          if w <= 0. || l <= 0. then
            push
              (diag ?file ~code:"N004" ~severity:Diagnostic.Error ~subject:name
                 (Printf.sprintf
                    "MOSFET %s has non-positive geometry (w=%g m, l=%g m)" name
                    w l))
          else begin
            match tech with
            | Some t when l < t.Tech.l_min || w < t.Tech.l_min ->
                push
                  (diag ?file ~code:"N007" ~severity:Diagnostic.Warning
                     ~subject:name
                     (Printf.sprintf
                        "MOSFET %s (w=%g m, l=%g m) is below the %s minimum \
                         channel length %g m"
                        name w l t.Tech.name t.Tech.l_min))
            | Some _ | None -> ()
          end
      | Device.Resistor { name; ohms; _ } ->
          if ohms <= 0. then
            push
              (diag ?file ~code:"N005" ~severity:Diagnostic.Error ~subject:name
                 (Printf.sprintf
                    "resistor %s has non-positive resistance %g Ohm" name ohms))
      | Device.Capacitor { name; farads; _ } ->
          if farads < 0. then
            push
              (diag ?file ~code:"N006" ~severity:Diagnostic.Error ~subject:name
                 (Printf.sprintf "capacitor %s has negative capacitance %g F"
                    name farads))
      | Device.Vsource _ | Device.Isource _ | Device.Vccs _ -> ())
    (Circuit.devices circuit);
  List.rev !out

(* a pair name matches the device called exactly that, or with any
   "<prefix>." in front (builder and subckt-flattening prefixes) *)
let name_matches ~pair_name device_name =
  device_name = pair_name
  ||
  let np = String.length pair_name and nd = String.length device_name in
  nd > np + 1
  && device_name.[nd - np - 1] = '.'
  && String.sub device_name (nd - np) np = pair_name

let mosfets_named circuit pair_name =
  Array.to_list (Circuit.devices circuit)
  |> List.filter_map (fun dev ->
         match dev with
         | Device.Mosfet { name; w; l; _ } when name_matches ~pair_name name ->
             Some (name, w, l)
         | _ -> None)

let symmetric_pairs ?file circuit pairs =
  List.concat_map
    (fun (a, b) ->
      match (mosfets_named circuit a, mosfets_named circuit b) with
      | (na, wa, la) :: _, (nb, wb, lb) :: _ when wa <> wb || la <> lb ->
          [
            diag ?file ~code:"N008" ~severity:Diagnostic.Warning
              ~subject:(na ^ "/" ^ nb)
              (Printf.sprintf
                 "symmetric pair %s/%s mismatched: w=%g/%g m, l=%g/%g m" na nb
                 wa wb la lb);
          ]
      | _ -> [])
    pairs

let check ?file ?tech ?(pairs = []) circuit =
  structural ?file circuit
  @ device_values ?file ?tech circuit
  @ dangling ?file circuit
  @ symmetric_pairs ?file circuit pairs

let check_file ?tech ?pairs path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg ->
      [
        diag ~file:path ~code:"N000" ~severity:Diagnostic.Error ~subject:path
          msg;
      ]
  | text -> begin
      match Netlist.parse text with
      | exception Netlist.Parse_error { line; message } ->
          [
            diag ~file:path ~line ~code:"N000" ~severity:Diagnostic.Error
              ~subject:path message;
          ]
      | circuit -> check ~file:path ?tech ?pairs circuit
    end
