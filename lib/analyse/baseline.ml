module Json = Yield_obs.Json

(* FNV-1a 64-bit over the identity fields only — code, file, subject.  The
   message and line are deliberately excluded: editing a message or shifting
   a line must not orphan a baselined finding. *)
let fnv_offset = 0xcbf29ce484222325L

let fnv_prime = 0x100000001b3L

let fnv1a_string h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let fingerprint (d : Diagnostic.t) =
  let h = fnv_offset in
  let h = fnv1a_string h d.Diagnostic.code in
  let h = fnv1a_string h "\x00" in
  let h = fnv1a_string h (Option.value d.Diagnostic.file ~default:"") in
  let h = fnv1a_string h "\x00" in
  let h = fnv1a_string h d.Diagnostic.subject in
  Printf.sprintf "%016Lx" h

type t = (string, unit) Hashtbl.t

let empty () : t = Hashtbl.create 16

let mem (t : t) d = Hashtbl.mem t (fingerprint d)

let of_diags diags =
  let t = empty () in
  List.iter (fun d -> Hashtbl.replace t (fingerprint d) ()) diags;
  t

let fingerprints (t : t) =
  Hashtbl.fold (fun fp () acc -> fp :: acc) t [] |> List.sort String.compare

let partition (t : t) diags =
  List.partition (fun d -> not (mem t d)) diags

let to_json (t : t) =
  Json.Obj
    [
      ("version", Json.Int 1);
      ( "fingerprints",
        Json.List (List.map (fun fp -> Json.String fp) (fingerprints t)) );
    ]

let save ~path (t : t) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (to_json t) ^ "\n"))

let load ~path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> begin
      match Json.parse text with
      | exception Json.Parse_error msg -> Error (path ^ ": " ^ msg)
      | json -> begin
          match Json.member "version" json with
          | Some (Json.Int 1) -> begin
              match Json.member "fingerprints" json with
              | Some (Json.List fps) ->
                  let t = empty () in
                  let bad = ref None in
                  List.iter
                    (fun fp ->
                      match fp with
                      | Json.String s -> Hashtbl.replace t s ()
                      | _ -> bad := Some "non-string fingerprint")
                    fps;
                  (match !bad with
                  | Some msg -> Error (path ^ ": " ^ msg)
                  | None -> Ok t)
              | _ -> Error (path ^ ": missing \"fingerprints\" list")
            end
          | Some _ -> Error (path ^ ": unsupported baseline version")
          | None -> Error (path ^ ": missing \"version\" field")
        end
    end
