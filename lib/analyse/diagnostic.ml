module Json = Yield_obs.Json

type severity = Info | Warning | Error

type span = {
  start_line : int;
  start_col : int;
  end_line : int;
  end_col : int;
}

type related = {
  rel_file : string option;
  rel_span : span;
  note : string;
}

type t = {
  code : string;
  severity : severity;
  subject : string;
  message : string;
  file : string option;
  line : int option;
  span : span option;
  related : related list;
}

let span_of_ast (s : Yield_spice.Netlist_ast.span) =
  {
    start_line = s.Yield_spice.Netlist_ast.start_line;
    start_col = s.start_col;
    end_line = s.end_line;
    end_col = s.end_col;
  }

let make ?file ?line ?span ?(related = []) ~code ~severity ~subject message =
  let line =
    match (line, span) with
    | (Some _ as l), _ -> l
    | None, Some s -> Some s.start_line
    | None, None -> None
  in
  { code; severity; subject; message; file; line; span; related }

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> begin
      match String.compare a.code b.code with
      | 0 -> String.compare a.subject b.subject
      | c -> c
    end
  | c -> c

let sort diags = List.stable_sort compare diags

let worst diags =
  List.fold_left
    (fun acc d ->
      match acc with
      | None -> Some d.severity
      | Some w ->
          if severity_rank d.severity < severity_rank w then Some d.severity
          else acc)
    None diags

let exit_code diags =
  match worst diags with
  | Some Error -> 2
  | Some Warning -> 1
  | Some Info | None -> 0

let count severity diags =
  List.length (List.filter (fun d -> d.severity = severity) diags)

let to_text d =
  let where =
    match (d.file, d.line, d.span) with
    | Some f, _, Some s -> Printf.sprintf "%s:%d:%d: " f s.start_line s.start_col
    | Some f, Some l, None -> Printf.sprintf "%s:%d: " f l
    | Some f, None, None -> f ^ ": "
    | None, _, Some s -> Printf.sprintf "line %d:%d: " s.start_line s.start_col
    | None, Some l, None -> Printf.sprintf "line %d: " l
    | None, None, None -> ""
  in
  Printf.sprintf "%s%s %s [%s]: %s" where
    (severity_to_string d.severity)
    d.code d.subject d.message

let list_to_text diags =
  let sorted = sort diags in
  let summary =
    Printf.sprintf "%d error(s), %d warning(s), %d info" (count Error diags)
      (count Warning diags) (count Info diags)
  in
  String.concat "\n" (List.map to_text sorted @ [ summary ])

let span_to_json s =
  Json.Obj
    [
      ("start_line", Json.Int s.start_line);
      ("start_col", Json.Int s.start_col);
      ("end_line", Json.Int s.end_line);
      ("end_col", Json.Int s.end_col);
    ]

let related_to_json r =
  Json.Obj
    [
      ( "file",
        match r.rel_file with Some f -> Json.String f | None -> Json.Null );
      ("span", span_to_json r.rel_span);
      ("note", Json.String r.note);
    ]

let to_json d =
  Json.Obj
    ([
       ("code", Json.String d.code);
       ("severity", Json.String (severity_to_string d.severity));
       ("subject", Json.String d.subject);
       ("message", Json.String d.message);
       ( "file",
         match d.file with Some f -> Json.String f | None -> Json.Null );
       ("line", match d.line with Some l -> Json.Int l | None -> Json.Null);
       ("span", match d.span with Some s -> span_to_json s | None -> Json.Null);
     ]
    @
    (* emitted only when present, so reports without secondary spans stay
       byte-identical to version-2 output before the field existed *)
    match d.related with
    | [] -> []
    | rs -> [ ("related", Json.List (List.map related_to_json rs)) ])

let list_to_json diags =
  Json.Obj
    [
      ("version", Json.Int 2);
      ("findings", Json.List (List.map to_json (sort diags)));
      ("errors", Json.Int (count Error diags));
      ("warnings", Json.Int (count Warning diags));
      ("infos", Json.Int (count Info diags));
      ( "worst",
        match worst diags with
        | Some w -> Json.String (severity_to_string w)
        | None -> Json.Null );
    ]
