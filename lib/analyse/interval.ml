(* Outward-rounded interval arithmetic.

   Every arithmetic operation computes in double precision and then widens
   the result by one ulp on each side (Float.pred / Float.succ), so the
   returned interval always encloses the exact real result even though the
   intermediate rounding mode is round-to-nearest.  That makes "provably"
   claims in lint messages sound: if [contains i x] is false for an
   outward-rounded [i], no real evaluation of the modelled quantity can
   equal [x]. *)

type t = { lo : float; hi : float }

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi || lo > hi then
    invalid_arg (Printf.sprintf "Interval.make: [%g, %g]" lo hi)
  else { lo; hi }

let point x = make x x

let whole = { lo = neg_infinity; hi = infinity }

let zero = point 0.

let of_bounds a b = if a <= b then make a b else make b a

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let hull_list = function
  | [] -> invalid_arg "Interval.hull_list: empty"
  | i :: rest -> List.fold_left hull i rest

let is_point i = i.lo = i.hi

let width i = i.hi -. i.lo

let contains i x = i.lo <= x && x <= i.hi

let subset a b = b.lo <= a.lo && a.hi <= b.hi

let disjoint a b = a.hi < b.lo || b.hi < a.lo

let intersect a b =
  if disjoint a b then None
  else Some { lo = Float.max a.lo b.lo; hi = Float.min a.hi b.hi }

(* one-ulp outward widening; infinities stay put *)
let down x = if Float.is_finite x then Float.pred x else x

let up x = if Float.is_finite x then Float.succ x else x

let out lo hi = { lo = down lo; hi = up hi }

let add a b = out (a.lo +. b.lo) (a.hi +. b.hi)

let neg a = { lo = -.a.hi; hi = -.a.lo }

let sub a b = add a (neg b)

(* 0 * inf arises when a zero bound meets an unbounded one; the convention
   0 * inf = 0 keeps the product an enclosure (the zero factor is exact) *)
let prod x y =
  let p = x *. y in
  if Float.is_nan p then 0. else p

let mul a b =
  let p1 = prod a.lo b.lo and p2 = prod a.lo b.hi in
  let p3 = prod a.hi b.lo and p4 = prod a.hi b.hi in
  out
    (Float.min (Float.min p1 p2) (Float.min p3 p4))
    (Float.max (Float.max p1 p2) (Float.max p3 p4))

let inv a =
  if a.lo = 0. && a.hi = 0. then whole
  else if a.lo > 0. || a.hi < 0. then out (1. /. a.hi) (1. /. a.lo)
  else if a.lo = 0. then out (1. /. a.hi) infinity
  else if a.hi = 0. then out neg_infinity (1. /. a.lo)
  else whole

(* inf / inf arises when both operands are unbounded on matching sides; as
   with [prod], collapsing the indeterminate quotient to 0 only ever widens
   the hull (the other three corner quotients carry the unbounded sides) *)
let quot x y =
  let q = x /. y in
  if Float.is_nan q then 0. else q

(* Direct endpoint case analysis instead of [mul a (inv b)]: one outward
   rounding instead of two, and a divisor that touches zero only at an
   endpoint yields a half-line scaled by the finite endpoint directly
   rather than through the rounded reciprocal. *)
let div a b =
  if b.lo > 0. || b.hi < 0. then
    let q1 = quot a.lo b.lo and q2 = quot a.lo b.hi in
    let q3 = quot a.hi b.lo and q4 = quot a.hi b.hi in
    out
      (Float.min (Float.min q1 q2) (Float.min q3 q4))
      (Float.max (Float.max q1 q2) (Float.max q3 q4))
  else if b.lo = 0. && b.hi = 0. then whole
  else if b.lo = 0. then
    (* b = [0, hi], hi > 0: magnitudes are bounded below by |a| / b.hi only *)
    if a.lo >= 0. then { lo = down (a.lo /. b.hi); hi = infinity }
    else if a.hi <= 0. then { lo = neg_infinity; hi = up (a.hi /. b.hi) }
    else whole
  else if b.hi = 0. then
    (* b = [lo, 0], lo < 0: mirror image of the case above *)
    if a.lo >= 0. then { lo = neg_infinity; hi = up (a.lo /. b.lo) }
    else if a.hi <= 0. then { lo = down (a.hi /. b.lo); hi = infinity }
    else whole
  else whole

(* n-ulp outward widening for library functions whose rounding error may
   exceed the half-ulp of the basic operations *)
let rec down_n k x = if k <= 0 then x else down_n (k - 1) (down x)

let rec up_n k x = if k <= 0 then x else up_n (k - 1) (up x)

let out_n k lo hi = { lo = down_n k lo; hi = up_n k hi }

let pow_int a n =
  if n = min_int then invalid_arg "Interval.pow_int: exponent out of range";
  let rec go a n =
    if n = 0 then point 1.
    else if n < 0 then inv (go a (-n))
    else
      let f x = Float.pow x (float_of_int n) in
      (* libm pow is not guaranteed correctly rounded; widen by 2 ulps *)
      if n land 1 = 1 || a.lo >= 0. then out_n 2 (f a.lo) (f a.hi)
      else if a.hi <= 0. then out_n 2 (f a.hi) (f a.lo)
      else { lo = 0.; hi = up_n 2 (Float.max (f a.lo) (f a.hi)) }
  in
  go a n

let monotone_incr ?(ulps = 4) f i =
  let a = f i.lo and b = f i.hi in
  if Float.is_nan a || Float.is_nan b then
    invalid_arg "Interval.monotone_incr: map returned NaN";
  (* min/max guards against rounding inverting a nearly-flat map *)
  { lo = down_n ulps (Float.min a b); hi = up_n ulps (Float.max a b) }

let widen ~ulps i = { lo = down_n ulps i.lo; hi = up_n ulps i.hi }

let monotone_decr ?(ulps = 4) f i =
  let a = f i.hi and b = f i.lo in
  if Float.is_nan a || Float.is_nan b then
    invalid_arg "Interval.monotone_decr: map returned NaN";
  { lo = down_n ulps (Float.min a b); hi = up_n ulps (Float.max a b) }

let scale k a = mul (point k) a

let offset k a = add (point k) a

let to_string i =
  if is_point i then Printf.sprintf "%g" i.lo
  else Printf.sprintf "[%g, %g]" i.lo i.hi

(* ---------- dataflow driver ---------- *)

module Fixpoint = struct
  type 'a edge = { src : int; dst : int; f : 'a -> 'a }

  let edge ?f src dst =
    { src; dst; f = (match f with Some f -> f | None -> Fun.id) }

  let solve ~size ~edges ~init ~join ~equal =
    if Array.length init <> size then
      invalid_arg "Interval.Fixpoint.solve: init size mismatch";
    let state = Array.copy init in
    let out_edges = Array.make size [] in
    List.iter
      (fun e ->
        if e.src < 0 || e.src >= size || e.dst < 0 || e.dst >= size then
          invalid_arg "Interval.Fixpoint.solve: edge endpoint out of range";
        out_edges.(e.src) <- e :: out_edges.(e.src))
      edges;
    let on_queue = Array.make size true in
    let q = Queue.create () in
    for i = 0 to size - 1 do
      Queue.add i q
    done;
    while not (Queue.is_empty q) do
      let i = Queue.pop q in
      on_queue.(i) <- false;
      List.iter
        (fun e ->
          let v = join state.(e.dst) (e.f state.(i)) in
          if not (equal v state.(e.dst)) then begin
            state.(e.dst) <- v;
            if not on_queue.(e.dst) then begin
              on_queue.(e.dst) <- true;
              Queue.add e.dst q
            end
          end)
        out_edges.(i)
    done;
    state

  let reachable ~size ~edges ~seeds =
    let init = Array.make size false in
    List.iter
      (fun s ->
        if s >= 0 && s < size then init.(s) <- true)
      seeds;
    solve ~size ~edges ~init ~join:( || ) ~equal:Bool.equal
end
