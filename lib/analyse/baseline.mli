(** Baseline suppression: accept a known set of findings so CI only fails
    on {e new} ones.

    A finding's identity is its {!fingerprint} — an FNV-1a hash of code,
    file and subject.  Messages and line numbers are excluded on purpose:
    rewording a diagnostic or inserting a line above a finding must not
    orphan its suppression.  Two findings that genuinely collide (same code,
    same file, same subject) are treated as one, which is the useful
    behaviour for repeated structural findings.

    The on-disk format is one JSON object,
    [{"version": 1, "fingerprints": ["<16 hex chars>", ...]}], sorted, so
    baselines diff cleanly in review. *)

type t

val fingerprint : Diagnostic.t -> string
(** 16 lowercase hex characters, stable across sessions and platforms. *)

val empty : unit -> t

val of_diags : Diagnostic.t list -> t

val mem : t -> Diagnostic.t -> bool

val fingerprints : t -> string list
(** Sorted. *)

val partition : t -> Diagnostic.t list -> Diagnostic.t list * Diagnostic.t list
(** [partition t diags] is [(fresh, suppressed)], preserving order.  Exit
    codes and CI gates should be computed from [fresh] only. *)

val to_json : t -> Yield_obs.Json.t

val save : path:string -> t -> unit

val load : path:string -> (t, string) result
(** [Error] carries a human-readable reason (unreadable file, bad JSON,
    wrong version). *)
