module Tbl_io = Yield_table.Tbl_io
module Control = Yield_table.Control

let diag = Diagnostic.make

let check_cells ?file (t : Tbl_io.table) =
  let out = ref [] in
  Array.iteri
    (fun r row ->
      Array.iteri
        (fun c v ->
          if not (Float.is_finite v) then
            out :=
              diag ?file ~code:"T002" ~severity:Diagnostic.Error
                ~subject:t.Tbl_io.columns.(c)
                (Printf.sprintf "non-finite cell %g at row %d, column %s" v
                   (r + 1) t.Tbl_io.columns.(c))
              :: !out)
        row)
    t.Tbl_io.rows;
  List.rev !out

let check_axis ?file (t : Tbl_io.table) name =
  match Tbl_io.column_opt t name with
  | None ->
      [
        diag ?file ~code:"T003" ~severity:Diagnostic.Error ~subject:name
          (Printf.sprintf "axis column %s not present in the table" name);
      ]
  | Some xs ->
      let out = ref [] in
      for i = 1 to Array.length xs - 1 do
        if not (xs.(i) > xs.(i - 1)) then
          out :=
            diag ?file ~code:"T003" ~severity:Diagnostic.Error ~subject:name
              (Printf.sprintf
                 "axis column %s not strictly increasing at row %d: %g after \
                  %g (%s)"
                 name (i + 1) xs.(i)
                 xs.(i - 1)
                 (if xs.(i) = xs.(i - 1) then "duplicate abscissa"
                  else "decreasing"))
            :: !out
      done;
      List.rev !out

let check_control ?file ~n_axes control =
  match Control.parse control with
  | exception Invalid_argument msg ->
      [
        diag ?file ~code:"T004" ~severity:Diagnostic.Error ~subject:control msg;
      ]
  | axes_spec ->
      if List.length axes_spec <> n_axes then
        [
          diag ?file ~code:"T004" ~severity:Diagnostic.Error ~subject:control
            (Printf.sprintf
               "control string %S names %d dimension(s) but the table has %d \
                axis column(s)"
               control (List.length axes_spec) n_axes);
        ]
      else []

let duplicate_columns ?file (t : Tbl_io.table) =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  Array.iter
    (fun c ->
      if Hashtbl.mem seen c then
        out :=
          diag ?file ~code:"T006" ~severity:Diagnostic.Warning ~subject:c
            (Printf.sprintf
               "duplicate column name %s — lookups by name only reach the \
                first"
               c)
          :: !out
      else Hashtbl.add seen c ())
    t.Tbl_io.columns;
  List.rev !out

let check ?file ?axes ?control (t : Tbl_io.table) =
  let axes =
    match axes with
    | Some a -> a
    | None ->
        if Array.length t.Tbl_io.columns > 0 then [ t.Tbl_io.columns.(0) ]
        else []
  in
  let size =
    if Array.length t.Tbl_io.rows < 2 then
      [
        diag ?file ~code:"T005" ~severity:Diagnostic.Error ~subject:"rows"
          (Printf.sprintf "only %d data row(s) — nothing to interpolate"
             (Array.length t.Tbl_io.rows));
      ]
    else []
  in
  let control_diags =
    match control with
    | Some c -> check_control ?file ~n_axes:(List.length axes) c
    | None -> []
  in
  size
  @ check_cells ?file t
  @ List.concat_map (check_axis ?file t) axes
  @ control_diags
  @ duplicate_columns ?file t

let check_file ?axes ?control path =
  match Tbl_io.read_result ~path with
  | Error e ->
      [
        diag ~file:path ?line:e.Tbl_io.line ~code:"T001"
          ~severity:Diagnostic.Error ~subject:path e.Tbl_io.message;
      ]
  | Ok t -> check ~file:path ?axes ?control t

let spec_coverage ?file ~control ~axis ~lo ~hi ~query () =
  let first_axis =
    match Control.parse control with
    | spec :: _ -> Some spec
    | [] -> None
    | exception Invalid_argument _ -> None
  in
  match first_axis with
  | Some (Control.Interpolate { extrapolation = Control.Error; _ })
    when query < lo || query > hi ->
      [
        diag ?file ~code:"T007" ~severity:Diagnostic.Warning ~subject:axis
          (Printf.sprintf
             "spec point %s=%g lies outside the table domain [%g, %g]: the \
              %S control rejects extrapolation, so this yield target cannot \
              be answered"
             axis query lo hi control);
      ]
  | _ -> []
