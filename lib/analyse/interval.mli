(** Outward-rounded interval arithmetic and a small dataflow driver — the
    abstract-interpretation core shared by the lint passes.

    Arithmetic results are widened by one ulp on each side, so an interval
    computed here always encloses the exact real result; a lint message that
    says "provably outside" on the strength of {!disjoint} or {!subset} is
    sound against floating-point rounding.  {!Ac_tran_lint} uses intervals
    to bound RC/gm-C time constants from device value ranges; {!Va_lint}
    uses them to prove an inflated spec window stays inside a table domain. *)

type t = private { lo : float; hi : float }

val make : float -> float -> t
(** @raise Invalid_argument when [lo > hi] or either bound is NaN. *)

val point : float -> t

val whole : t
(** [[-inf, +inf]]. *)

val zero : t

val of_bounds : float -> float -> t
(** Like {!make} but order-insensitive. *)

val hull : t -> t -> t
(** Smallest interval containing both (exact, no widening). *)

val hull_list : t list -> t
(** @raise Invalid_argument on an empty list. *)

val is_point : t -> bool

val width : t -> float

val contains : t -> float -> bool

val subset : t -> t -> bool
(** [subset a b] is true when [a] lies entirely inside [b]. *)

val disjoint : t -> t -> bool

val intersect : t -> t -> t option

val add : t -> t -> t

val neg : t -> t

val sub : t -> t -> t

val mul : t -> t -> t
(** [0 * inf] is taken as [0] (the zero factor is exact). *)

val inv : t -> t
(** An interval spanning zero inverts to a half-line or {!whole}. *)

val div : t -> t -> t
(** Direct endpoint case analysis (single outward rounding).  A divisor that
    touches zero only at an endpoint yields the tight half-line; a divisor
    spanning zero in its interior yields {!whole}. *)

val pow_int : t -> int -> t
(** [pow_int a n] encloses [{x^n | x in a}]; even powers of a zero-spanning
    interval bottom out at exactly [0.].  Negative [n] goes through {!inv}.
    @raise Invalid_argument when [n] is [min_int]. *)

val monotone_incr : ?ulps:int -> (float -> float) -> t -> t
(** Push an interval through a monotone non-decreasing map by evaluating the
    endpoints, widening the result by [ulps] (default 4) ulps per side to
    cover the map's own rounding error.  Soundness is the caller's burden:
    the map must really be monotone over the interval, and [ulps] must bound
    its evaluation error.  @raise Invalid_argument when the map returns NaN. *)

val monotone_decr : ?ulps:int -> (float -> float) -> t -> t
(** {!monotone_incr} for monotone non-increasing maps. *)

val widen : ulps:int -> t -> t
(** Widen both bounds outward by [ulps] ulps — slack for values produced by
    library code (e.g. [Complex.norm], [atan2]) whose rounding error exceeds
    the half-ulp of the basic operations. *)

val scale : float -> t -> t

val offset : float -> t -> t

val to_string : t -> string
(** ["3.3"] for points, ["[1e-9, 2e-6]"] otherwise. *)

(** Generic worklist fixpoint over a finite node graph: node values start at
    [init], every edge propagates [f src_value] into its destination through
    [join], until nothing changes.  Termination requires the usual monotone
    transfer functions over a finite-height lattice (booleans for
    reachability; widen intervals yourself if you iterate over them). *)
module Fixpoint : sig
  type 'a edge = { src : int; dst : int; f : 'a -> 'a }

  val edge : ?f:('a -> 'a) -> int -> int -> 'a edge
  (** [f] defaults to the identity. *)

  val solve :
    size:int ->
    edges:'a edge list ->
    init:'a array ->
    join:('a -> 'a -> 'a) ->
    equal:('a -> 'a -> bool) ->
    'a array
  (** @raise Invalid_argument on a size mismatch or out-of-range edge. *)

  val reachable : size:int -> edges:bool edge list -> seeds:int list -> bool array
  (** Boolean propagation from [seeds] along [edges] (out-of-range seeds are
      ignored — callers pass ground as a non-node). *)
end
