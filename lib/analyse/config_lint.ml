module Control = Yield_table.Control
module Fault = Yield_resilience.Fault
module Checkpoint = Yield_resilience.Checkpoint

let diag = Diagnostic.make

type view = {
  population : int;
  generations : int;
  mc_samples : int;
  front_stride : int;
  control : string;
  seed : int;
  jobs : int;
  solver : string;
  system_size : int option;
  fingerprint : string;
}

let min_valid_mc_samples = 8

let csr_min_size = 8

let scale_checks v =
  let positive name value =
    if value <= 0 then
      [
        diag ~code:"C001" ~severity:Diagnostic.Error ~subject:name
          (Printf.sprintf "%s must be positive (got %d)" name value);
      ]
    else []
  in
  positive "ga.population_size" v.population
  @ positive "ga.generations" v.generations
  @ positive "mc_samples" v.mc_samples
  @ positive "front_stride" v.front_stride

let mc_checks v =
  if v.mc_samples <= 0 then []
  else if v.mc_samples < min_valid_mc_samples then
    [
      diag ~code:"C002" ~severity:Diagnostic.Error ~subject:"mc_samples"
        (Printf.sprintf
           "mc_samples=%d is below the degradation threshold %d: every front \
            point will be skipped and the variation model is guaranteed to \
            starve"
           v.mc_samples min_valid_mc_samples);
    ]
  else if v.mc_samples < 4 * min_valid_mc_samples then
    [
      diag ~code:"C002" ~severity:Diagnostic.Warning ~subject:"mc_samples"
        (Printf.sprintf
           "mc_samples=%d leaves little headroom over the degradation \
            threshold %d: a modest sample-failure rate will starve the \
            variation model"
           v.mc_samples min_valid_mc_samples);
    ]
  else []

let stride_checks v =
  (* the Pareto front holds at most [population] points; the variation model
     needs at least two analysed points or Flow.run fails as starved *)
  if v.front_stride <= 0 || v.population <= 0 then []
  else begin
    let analysable = 1 + ((v.population - 1) / v.front_stride) in
    if analysable <= 2 then
      [
        diag ~code:"C003" ~severity:Diagnostic.Warning ~subject:"front_stride"
          (Printf.sprintf
             "front_stride=%d analyses at most %d of <=%d front points: the \
              variation model needs more than two to be useful"
             v.front_stride analysable v.population);
      ]
    else []
  end

let jobs_checks v =
  if v.jobs < 1 then
    [
      diag ~code:"C006" ~severity:Diagnostic.Error ~subject:"jobs"
        (Printf.sprintf
           "jobs must be at least 1 (got %d); 1 means the serial code path"
           v.jobs);
    ]
  else begin
    let recommended = Domain.recommended_domain_count () in
    if v.jobs > recommended then
      [
        diag ~code:"C006" ~severity:Diagnostic.Warning ~subject:"jobs"
          (Printf.sprintf
             "jobs=%d exceeds the recommended domain count %d: the extra \
              domains will contend for cores rather than add throughput"
             v.jobs recommended);
      ]
    else []
  end

let solver_checks v =
  let module Linsys = Yield_numeric.Linsys in
  match Linsys.backend_of_string v.solver with
  | None ->
      [
        diag ~code:"C007" ~severity:Diagnostic.Error ~subject:v.solver
          (Printf.sprintf "unknown solver %S (known: %s)" v.solver
             (String.concat ", " Linsys.backend_names));
      ]
  | Some Linsys.Dense -> []
  | Some Linsys.Csr -> begin
      match v.system_size with
      | Some n when n < csr_min_size ->
          [
            diag ~code:"C007" ~severity:Diagnostic.Warning ~subject:v.solver
              (Printf.sprintf
                 "solver=csr on a %d-unknown system (below %d): symbolic \
                  analysis overhead will dominate — dense is faster here"
                 n csr_min_size);
          ]
      | Some _ | None -> []
    end

let control_checks v =
  match Control.parse v.control with
  | _ -> []
  | exception Invalid_argument msg ->
      [ diag ~code:"C004" ~severity:Diagnostic.Error ~subject:v.control msg ]

let checkpoint_checks ?checkpoint_dir ?(resume = false) v =
  match checkpoint_dir with
  | None -> []
  | Some dir ->
      if not (Sys.file_exists dir) then
        [
          diag ~code:"C005" ~severity:Diagnostic.Info ~subject:dir
            "fresh checkpoint directory (will be created)";
        ]
      else begin
        let c = Checkpoint.create ~dir in
        match Checkpoint.check_fingerprint c v.fingerprint with
        | Error msg ->
            [ diag ~code:"C005" ~severity:Diagnostic.Error ~subject:dir msg ]
        | Ok `Resumable when not resume ->
            [
              diag ~code:"C005" ~severity:Diagnostic.Info ~subject:dir
                "checkpoint state present but --resume not given: stale \
                 stage state will be discarded";
            ]
        | Ok (`Resumable | `Fresh) -> []
      end

let check ?checkpoint_dir ?resume v =
  scale_checks v @ mc_checks v @ stride_checks v @ jobs_checks v
  @ solver_checks v @ control_checks v
  @ checkpoint_checks ?checkpoint_dir ?resume v

let never_fires mode =
  match mode with
  | Fault.Rate { p; _ } -> p = 0.
  | Fault.Count _ | Fault.Every _ | Fault.At _ -> false

let check_fault_spec ?known spec =
  match Fault.parse_spec spec with
  | Error msg ->
      [ diag ~code:"F001" ~severity:Diagnostic.Error ~subject:spec msg ]
  | Ok entries ->
      let known = match known with Some k -> k | None -> Fault.known () in
      List.concat_map
        (fun (name, mode) ->
          let unknown =
            if List.mem name known then []
            else
              [
                diag ~code:"F002" ~severity:Diagnostic.Error ~subject:name
                  (Printf.sprintf
                     "unknown injection point %s — the schedule would never \
                      fire (known: %s)"
                     name (String.concat ", " known));
              ]
          in
          let dead =
            if never_fires mode then
              [
                diag ~code:"F003" ~severity:Diagnostic.Warning ~subject:name
                  (Printf.sprintf
                     "schedule %s can never fire"
                     (Fault.mode_to_string mode));
              ]
            else []
          in
          unknown @ dead)
        entries
