(** Corner-aware abstract interpretation over the process-variation box.

    Where {!Ac_tran_lint} bounds time constants from device {e value} ranges,
    this pass pushes the {e statistical parameter box} — every per-device
    (dVth, dKp/Kp, dLambda/Lambda) combination within [k_sigma] sigmas of
    nominal, global and Pelgrom mismatch included — through interval transfer
    functions of the full DC operating point and AC small-signal model:

    - a parametric Krawczyk operator verifies an enclosure of the DC solution
      over the whole box (existence + uniqueness near nominal);
    - per-device operating-region proofs follow ({b D-codes}): a MOSFET is
      provably saturated when its overdrive and [vds - vdsat] margins stay
      positive over the box;
    - a residual-iteration (Krawczyk/Rump) interval solve of [(G + jwC) x = b]
      per frequency yields enclosures of the AC response, hence of the
      DC gain, unity-gain bracket and phase margin;
    - comparing those enclosures against a spec window gives a {b Y-code}
      verdict: {!Provably_fail} (yield 0 — every sample in the box misses the
      window), {!Provably_pass} (yield 1 up to the mass outside the truncated
      box; see DESIGN.md §4a), or {!Undecided}.

    Soundness contract (property-tested): every Monte Carlo sample whose
    normal deviates all lie within [k_sigma] produces (gain, PM) inside the
    predicted enclosure.  Samples are {e floating-point} evaluations, so all
    interval steps mirror the float pipeline's operation trees with outward
    rounding, and the DC/AC enclosures carry small documented pads for the
    Newton tolerance and LU forward error of the sampled solves.

    {!Flow} uses the verdicts as an opt-in Monte Carlo pre-screen; the
    [yieldlab lint corners] command surfaces them as diagnostics. *)

type window = {
  min_gain_db : float;  (** pass iff DC gain >= this *)
  min_pm_deg : float;  (** pass iff phase margin >= this *)
}

type verdict = Provably_fail | Provably_pass | Undecided

val verdict_to_string : verdict -> string

type enclosure = {
  gain_db : Interval.t option;  (** DC gain enclosure, dB *)
  unity_gain_hz : Interval.t option;  (** bracket of the 0 dB crossing *)
  pm_deg : Interval.t option;  (** phase-margin enclosure, degrees *)
}
(** [None] components could not be bounded (the interval solve failed at a
    needed frequency, the phase rectangle touched the atan2 branch cut, or
    the magnitude never provably crosses 0 dB). *)

type device_proof = {
  device : string;
  proved : bool;  (** provably in saturation across the whole box *)
  detail : string;  (** margins when proved; binding corner when not *)
}

type report = {
  verdict : verdict;
  enclosure : enclosure;
  dc_verified : bool;  (** Krawczyk found a DC enclosure over the box *)
  devices : device_proof list;  (** one entry per MOSFET, device order *)
  slices : (Interval.t * Interval.t) list;
      (** the verified decomposition of the global (dVth NMOS, dVth PMOS)
          plane.  The Krawczyk contraction fails over the whole [k_sigma]
          box (EKV currents are exponential in vth), so the global Vth axes
          are subdivided adaptively; every other axis rides along whole.  A
          sample is covered when some slice contains its global vth draws —
          equivalently, when for some listed slice every device's
          parameters lie in that slice's per-device box (what the soundness
          test conditions on). *)
  notes : string list;  (** why components of the analysis gave up *)
}

val analyse_circuit :
  ?k_sigma:float ->
  ?spec:Yield_process.Variation.spec ->
  window:window ->
  freqs:float array ->
  out:string ->
  Yield_spice.Circuit.t ->
  report
(** Analyse one circuit against [window].  [k_sigma] (default 3) truncates
    the per-device parameter boxes; [spec] defaults to
    {!Yield_process.Variation.default_spec}.  [freqs] and [out] name the AC
    sweep and probe node, exactly as {!Yield_spice.Ac.transfer_by_name}
    would receive them; an empty [freqs] (or unknown/ground [out]) skips the
    AC half and reports D-codes only.  Never raises: solver failures
    degrade to {!Undecided} with a note. *)

val diagnostics :
  ?file:string ->
  ?origin:Yield_spice.Netlist_elab.origin ->
  ?y_span:Diagnostic.span ->
  ?emit_verdict:bool ->
  subject:string ->
  window:window ->
  report ->
  Diagnostic.t list
(** Render a report as lint findings: one D-code per MOSFET (D001 info when
    proved, D002 warning when not), D003 when no DC enclosure was verified,
    and — unless [emit_verdict] is [false] — one Y-code for the verdict
    (Y001 warning, Y002/Y003 info) carrying the enclosures as evidence, the
    [y_span] (typically the [.ac] card) as its span, and the unproved
    devices as related locations.  [origin] supplies device card spans. *)

val check_file :
  ?k_sigma:float ->
  ?spec:Yield_process.Variation.spec ->
  ?window:window ->
  string ->
  Diagnostic.t list
(** Lint a netlist file: parse, elaborate with provenance, then run
    {!analyse_circuit} against the first [.ac] card's sweep and probe
    (D-codes only when the deck has no [.ac] card).  [window] defaults to
    [{ min_gain_db = 0.; min_pm_deg = 0. }].  Unreadable or unparseable
    files yield the standard [N000] finding. *)
