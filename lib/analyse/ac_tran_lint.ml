module Circuit = Yield_spice.Circuit
module Device = Yield_spice.Device

let diag = Diagnostic.make

(* conservative bound on any node-to-node bias voltage: nothing in the
   supported netlists runs above a 5 V rail, and the bound only has to cap
   the MOS overdrive used for the channel-conductance upper limit *)
let supply_bound = 5.0

(* ---------- shared circuit views ---------- *)

let known_node_names circuit =
  let seen = Hashtbl.create 32 in
  List.iter (fun g -> Hashtbl.replace seen g ()) [ "0"; "gnd"; "GND" ];
  Array.iter
    (fun dev ->
      List.iter
        (fun n -> Hashtbl.replace seen (Circuit.node_name circuit n) ())
        (Device.nodes dev))
    (Circuit.devices circuit);
  seen

let is_ground_name name = name = "0" || name = "gnd" || name = "GND"

let ac_excited_sources circuit =
  Array.to_list (Circuit.devices circuit)
  |> List.filter_map (fun dev ->
         match dev with
         | Device.Vsource { name; npos; nneg; ac; _ }
         | Device.Isource { name; npos; nneg; ac; _ }
           when ac <> 0. ->
             Some (name, npos, nneg)
         | _ -> None)

(* AC signal-flow graph over non-ground nodes: resistors, capacitors,
   voltage sources and every MOS coupling path carry signal both ways; a
   VCCS carries it only from its control pair to its output pair.  Edges
   touching ground are dropped — ground is the reference, not a signal
   path. *)
let signal_edges circuit =
  let open Interval.Fixpoint in
  let push acc (a, b) =
    if a = Device.ground || b = Device.ground then acc
    else edge a b :: edge b a :: acc
  in
  let push_dir acc (a, b) =
    if a = Device.ground || b = Device.ground then acc else edge a b :: acc
  in
  Array.fold_left
    (fun acc dev ->
      match dev with
      | Device.Resistor { n1; n2; _ } | Device.Capacitor { n1; n2; _ } ->
          push acc (n1, n2)
      | Device.Vsource { npos; nneg; _ } -> push acc (npos, nneg)
      | Device.Mosfet { d; g; s; b; _ } ->
          List.fold_left push acc [ (d, s); (g, d); (g, s); (b, d); (b, s) ]
      | Device.Vccs { out_p; out_n; in_p; in_n; _ } ->
          List.fold_left push_dir acc
            [ (in_p, out_p); (in_p, out_n); (in_n, out_p); (in_n, out_n) ]
      | Device.Isource _ -> acc)
    [] (Circuit.devices circuit)

(* ---------- interval time-constant bounds ---------- *)

(* union-find for merging vsource-tied nodes into one dynamic component *)
let rec uf_find parent i =
  let p = parent.(i) in
  if p = i then i
  else begin
    parent.(i) <- parent.(p);
    uf_find parent parent.(i)
  end

let uf_union parent a b =
  let ra = uf_find parent a and rb = uf_find parent b in
  if ra <> rb then parent.(ra) <- rb

(* Per-component RC/gm-C time-constant enclosures.

   Each non-ground node accumulates an interval of capacitance-to-anywhere
   and an interval of conductance-to-anywhere; nodes tied together by a
   voltage source share one voltage and are merged into a single component
   (a node pinned to ground by a source has no time constant of its own and
   its component is skipped).  Explicit R and C values are exact; MOS
   contributions are sound upper bounds with 0 as the lower bound, since a
   device in cutoff contributes nothing:

   - gate capacitance   <= cox*w*l + (cgso + cgdo)*w
   - drain/source cap   <= overlap + zero-bias junction (cj*w*ext bottom
                           plate, cjsw sidewall around the w x ext diffusion)
   - channel conductance <= kp*(w/l)*supply_bound (triode bound at the
                           largest overdrive any supported supply allows)

   tau = C/G per component, outward-rounded, so [tau.lo, tau.hi] encloses
   every achievable time constant of that component. *)
let time_constants circuit =
  let n = Circuit.node_count circuit + 1 in
  let czero = Interval.zero in
  let caps = Array.make n czero in
  let conds = Array.make n czero in
  let parent = Array.init n Fun.id in
  let acc arr node i =
    if node <> Device.ground then arr.(node) <- Interval.add arr.(node) i
  in
  Array.iter
    (fun dev ->
      match dev with
      | Device.Capacitor { n1; n2; farads; _ } ->
          let c = Interval.point farads in
          acc caps n1 c;
          acc caps n2 c
      | Device.Resistor { n1; n2; ohms; _ } ->
          if ohms > 0. then begin
            let g = Interval.inv (Interval.point ohms) in
            acc conds n1 g;
            acc conds n2 g
          end
      | Device.Vsource { npos; nneg; _ } -> uf_union parent npos nneg
      | Device.Mosfet { d; g; s; b; model; w; l; _ } ->
          let open Yield_spice.Mosfet in
          let up hi = Interval.make 0. (Float.max 0. hi) in
          acc caps g (up ((model.cox *. w *. l) +. ((model.cgso +. model.cgdo) *. w)));
          let junction =
            (model.cj *. w *. model.ext)
            +. (model.cjsw *. 2. *. (w +. model.ext))
          in
          acc caps d (up ((model.cgdo *. w) +. junction));
          acc caps s (up ((model.cgso *. w) +. junction));
          ignore b;
          if l > 0. then begin
            let gch = up (model.kp *. (w /. l) *. supply_bound) in
            acc conds d gch;
            acc conds s gch
          end
      | Device.Isource _ | Device.Vccs _ -> ())
    (Circuit.devices circuit);
  let ground_root = uf_find parent Device.ground in
  let comp_c = Hashtbl.create 8 and comp_g = Hashtbl.create 8 in
  for node = 1 to n - 1 do
    let root = uf_find parent node in
    if root <> ground_root then begin
      let get tbl = Option.value (Hashtbl.find_opt tbl root) ~default:czero in
      Hashtbl.replace comp_c root (Interval.add (get comp_c) caps.(node));
      Hashtbl.replace comp_g root (Interval.add (get comp_g) conds.(node))
    end
  done;
  Hashtbl.fold
    (fun root c acc ->
      let g = Option.value (Hashtbl.find_opt comp_g root) ~default:czero in
      if c.Interval.hi > 0. && g.Interval.hi > 0. then
        Interval.div c g :: acc
      else acc)
    comp_c []

(* ---------- checks ---------- *)

let check_ac ?file ?span circuit ~known ~per_decade ~f_lo ~f_hi ~out =
  let findings = ref [] in
  let push d = findings := d :: !findings in
  let diag ?file = diag ?file ?span in
  if per_decade <= 0 || f_lo <= 0. || f_hi <= f_lo then
    push
      (diag ?file ~code:"A004" ~severity:Diagnostic.Error ~subject:out
         (Printf.sprintf
            ".ac sweep is malformed (dec %d, %g Hz to %g Hz): needs \
             per-decade > 0 and 0 < f_lo < f_hi"
            per_decade f_lo f_hi));
  let sources = ac_excited_sources circuit in
  if sources = [] then
    push
      (diag ?file ~code:"A001" ~severity:Diagnostic.Error ~subject:out
         ".ac analysis with no AC-excited source (no V/I card carries ac=) \
          — the transfer is identically zero");
  if not (Hashtbl.mem known out) then
    push
      (diag ?file ~code:"A002" ~severity:Diagnostic.Error ~subject:out
         (Printf.sprintf
            ".ac output node %s is not referenced by any device" out))
  else if is_ground_name out then
    push
      (diag ?file ~code:"A002" ~severity:Diagnostic.Warning ~subject:out
         ".ac output node is ground — the measured transfer is identically \
          zero")
  else if sources <> [] then begin
    (* reachability: can the declared excitation move the measured node? *)
    let size = Circuit.node_count circuit + 1 in
    let seeds =
      List.concat_map (fun (_, npos, nneg) -> [ npos; nneg ]) sources
      |> List.filter (fun n -> n <> Device.ground)
    in
    let reach =
      Interval.Fixpoint.reachable ~size ~edges:(signal_edges circuit) ~seeds
    in
    let out_idx = Circuit.node circuit out in
    if not reach.(out_idx) then
      push
        (diag ?file ~code:"A003" ~severity:Diagnostic.Error ~subject:out
           (Printf.sprintf
              ".ac output node %s is provably unreachable from any \
               AC-excited source — no signal path exists, the measured \
               transfer is identically zero"
              out))
  end;
  (if f_lo > 0. && f_hi > f_lo then
     match time_constants circuit with
     | [] -> ()
     | taus ->
         let two_pi = 2. *. Float.pi in
         let pole_band =
           Interval.hull_list
             (List.map
                (fun tau -> Interval.inv (Interval.scale two_pi tau))
                taus)
         in
         let sweep = Interval.make f_lo f_hi in
         if Interval.disjoint sweep pole_band then
           push
             (diag ?file ~code:"A005" ~severity:Diagnostic.Warning ~subject:out
                (Printf.sprintf
                   ".ac sweep [%g, %g] Hz is provably disjoint from the \
                    circuit's pole band %s Hz — the sweep cannot observe \
                    any pole"
                   f_lo f_hi
                   (Interval.to_string pole_band))));
  List.rev !findings

let has_time_varying_stimulus circuit =
  Array.exists
    (fun dev ->
      match dev with
      | Device.Vsource { wave; _ } | Device.Isource { wave; _ } ->
          wave <> Device.Constant
      | _ -> false)
    (Circuit.devices circuit)

let check_tran ?file ?span circuit ~known ~dt ~t_stop ~out =
  let findings = ref [] in
  let push d = findings := d :: !findings in
  let diag ?file = diag ?file ?span in
  if dt <= 0. || t_stop <= 0. || dt >= t_stop then
    push
      (diag ?file ~code:"R001" ~severity:Diagnostic.Error ~subject:out
         (Printf.sprintf
            ".tran card is degenerate (dt=%g s, t_stop=%g s): needs \
             0 < dt < t_stop"
            dt t_stop))
  else begin
    let taus = time_constants circuit in
    let min_tau_hi =
      List.fold_left
        (fun m tau -> Float.min m tau.Interval.hi)
        infinity taus
    in
    if dt > min_tau_hi then
      push
        (diag ?file ~code:"R002" ~severity:Diagnostic.Warning ~subject:out
           (Printf.sprintf
              ".tran timestep %g s provably oversteps the fastest circuit \
               time constant (at most %g s) — the integrator will smear or \
               alias that pole"
              dt min_tau_hi))
  end;
  if not (has_time_varying_stimulus circuit) then
    push
      (diag ?file ~code:"R003" ~severity:Diagnostic.Warning ~subject:out
         ".tran analysis with only constant sources — the response decays \
          to the DC operating point and the waveform carries no information");
  if not (Hashtbl.mem known out) then
    push
      (diag ?file ~code:"R004" ~severity:Diagnostic.Error ~subject:out
         (Printf.sprintf
            ".tran output node %s is not referenced by any device" out));
  List.rev !findings

let check_one ?file ?span circuit ~known analysis =
  match (analysis : Yield_spice.Netlist_elab.analysis) with
  | Ac_analysis { per_decade; f_lo; f_hi; out } ->
      check_ac ?file ?span circuit ~known ~per_decade ~f_lo ~f_hi ~out
  | Tran_analysis { dt; t_stop; out } ->
      check_tran ?file ?span circuit ~known ~dt ~t_stop ~out
  | Op | Dc_analysis _ -> []

let check ?file circuit analyses =
  let known = known_node_names circuit in
  List.concat_map (check_one ?file circuit ~known) analyses

let check_file path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> []
  | text -> begin
      match
        let ast = Yield_spice.Netlist_parser.parse text in
        Yield_spice.Netlist_elab.elaborate ast
      with
      | exception Yield_spice.Netlist_ast.Parse_error _ ->
          (* unreadable / unparseable input is Netlist_lint's N000; this
             pass only speaks about analysis cards of a valid netlist *)
          []
      | circuit, analyses ->
          let known = known_node_names circuit in
          List.concat_map
            (fun (analysis, card_span) ->
              check_one ~file:path
                ~span:(Diagnostic.span_of_ast card_span)
                circuit ~known analysis)
            analyses
    end
