module Va = Yield_behavioural.Verilog_a
module Tbl_io = Yield_table.Tbl_io
module Control = Yield_table.Control

let diag = Diagnostic.make

(* ---------- V001: ports and disciplines ---------- *)

let port_diags ?file (m : Va.module_def) =
  let out = ref [] in
  let push d = out := d :: !out in
  let directed = Hashtbl.create 8 in
  let disciplined = Hashtbl.create 8 in
  List.iter
    (fun item ->
      match item with
      | Va.Port_decl (_, names) ->
          List.iter
            (fun n ->
              if Hashtbl.mem directed n then
                push
                  (diag ?file ~code:"V001" ~severity:Diagnostic.Error ~subject:n
                     (Printf.sprintf
                        "port %s has more than one direction declaration" n))
              else Hashtbl.add directed n ();
              if not (List.mem n m.Va.ports) then
                push
                  (diag ?file ~code:"V001" ~severity:Diagnostic.Error ~subject:n
                     (Printf.sprintf
                        "direction declared for %s, which is not in module \
                         %s's port list"
                        n m.Va.module_name)))
            names
      | Va.Discipline_decl (_, names) ->
          List.iter (fun n -> Hashtbl.replace disciplined n ()) names
      | _ -> ())
    m.Va.items;
  List.iter
    (fun p ->
      if not (Hashtbl.mem directed p) then
        push
          (diag ?file ~code:"V001" ~severity:Diagnostic.Error ~subject:p
             (Printf.sprintf "port %s has no input/output/inout declaration" p));
      if not (Hashtbl.mem disciplined p) then
        push
          (diag ?file ~code:"V001" ~severity:Diagnostic.Warning ~subject:p
             (Printf.sprintf
                "port %s has no discipline (e.g. electrical) declaration — \
                 branch access through it will not elaborate"
                p)))
    m.Va.ports;
  (* branch accesses must target a disciplined net *)
  let rec expr_accesses acc = function
    | Va.Access (_, node) -> node :: acc
    | Va.Call (_, args) -> List.fold_left expr_accesses acc args
    | Va.Neg e | Va.Paren e -> expr_accesses acc e
    | Va.Bin (_, a, b) -> expr_accesses (expr_accesses acc a) b
    | Va.Num _ | Va.Ident _ | Va.Str _ -> acc
  in
  let stmt_accesses acc = function
    | Va.Assign_group binds ->
        List.fold_left (fun acc (_, e) -> expr_accesses acc e) acc binds
    | Va.Sys_call (_, args) -> List.fold_left expr_accesses acc args
    | Va.Contribution { node; rhs; _ } -> expr_accesses (node :: acc) rhs
    | Va.Comment _ -> acc
  in
  let accesses =
    List.fold_left
      (fun acc item ->
        match item with
        | Va.Analog stmts -> List.fold_left stmt_accesses acc stmts
        | _ -> acc)
      [] m.Va.items
  in
  let reported = Hashtbl.create 4 in
  List.iter
    (fun node ->
      if not (Hashtbl.mem disciplined node) && not (Hashtbl.mem reported node)
      then begin
        Hashtbl.add reported node ();
        push
          (diag ?file ~code:"V001" ~severity:Diagnostic.Error ~subject:node
             (Printf.sprintf
                "branch access references %s, which has no discipline \
                 declaration"
                node))
      end)
    (List.rev accesses);
  List.rev !out

(* ---------- V007/V008: straight-line use-def over the analog block ---------- *)

let use_def_diags ?file (m : Va.module_def) =
  let out = ref [] in
  let push d = out := d :: !out in
  let params = Hashtbl.create 8 in
  let declared = Hashtbl.create 8 in
  let assigned = Hashtbl.create 8 in
  let read = Hashtbl.create 8 in
  List.iter
    (fun item ->
      match item with
      | Va.Param_group ps ->
          List.iter (fun p -> Hashtbl.replace params p.Va.pname ()) ps
      | Va.Real_decl names | Va.Integer_decl names ->
          List.iter (fun n -> Hashtbl.replace declared n ()) names
      | _ -> ())
    m.Va.items;
  let read_ident n =
    Hashtbl.replace read n ();
    if Hashtbl.mem params n then ()
    else if Hashtbl.mem declared n then begin
      if not (Hashtbl.mem assigned n) then
        push
          (diag ?file ~code:"V007" ~severity:Diagnostic.Error ~subject:n
             (Printf.sprintf "%s is read before any assignment reaches it" n))
    end
    else
      push
        (diag ?file ~code:"V007" ~severity:Diagnostic.Error ~subject:n
           (Printf.sprintf "%s is read but never declared" n))
  in
  let rec eval_reads = function
    | Va.Ident n -> read_ident n
    | Va.Call (_, args) -> List.iter eval_reads args
    | Va.Neg e | Va.Paren e -> eval_reads e
    | Va.Bin (_, a, b) ->
        eval_reads a;
        eval_reads b
    | Va.Num _ | Va.Str _ | Va.Access _ -> ()
  in
  let do_stmt = function
    | Va.Comment _ -> ()
    | Va.Assign_group binds ->
        List.iter
          (fun (lhs, rhs) ->
            eval_reads rhs;
            if Hashtbl.mem declared lhs then Hashtbl.replace assigned lhs ()
            else
              push
                (diag ?file ~code:"V007" ~severity:Diagnostic.Error ~subject:lhs
                   (if Hashtbl.mem params lhs then
                      Printf.sprintf
                        "%s is a parameter — parameters cannot be assigned \
                         in the analog block"
                        lhs
                    else
                      Printf.sprintf "%s is assigned but never declared" lhs)))
          binds
    | Va.Sys_call (_, args) -> List.iter eval_reads args
    | Va.Contribution { rhs; _ } -> eval_reads rhs
  in
  List.iter
    (fun item -> match item with Va.Analog stmts -> List.iter do_stmt stmts | _ -> ())
    m.Va.items;
  Hashtbl.iter
    (fun n () ->
      if not (Hashtbl.mem read n) then
        push
          (diag ?file ~code:"V008" ~severity:Diagnostic.Warning ~subject:n
             (Printf.sprintf "%s is declared but never read" n)))
    declared;
  List.rev !out |> Diagnostic.sort

(* ---------- V002..V006: table-model calls, interval-evaluated ---------- *)

(* pow with a positive constant base is monotone in the exponent *)
let pow_interval base (e : Interval.t) =
  if base > 0. then
    Interval.of_bounds (Float.pred (base ** e.Interval.lo)) (Float.succ (base ** e.Interval.hi))
  else Interval.whole

let column_hull rows c =
  let lo = ref infinity and hi = ref neg_infinity in
  Array.iter
    (fun row ->
      let v = row.(c) in
      if v < !lo then lo := v;
      if v > !hi then hi := v)
    rows;
  if !lo <= !hi then Some (Interval.of_bounds !lo !hi) else None

type table_env = {
  file : string option;  (** the .va path, for diagnostics *)
  dir : string option;  (** where referenced [.tbl] files live *)
  cache : (string, Tbl_io.table option) Hashtbl.t;
  mutable findings : Diagnostic.t list;
}

let push env d = env.findings <- d :: env.findings

(* load a referenced table once; V005 on missing/malformed, then the full
   Table_lint pass on its contents (axis checks only for 1-D tables — the
   2-D tables are scattered Pareto points, deliberately unsorted) *)
let load_table env ~arity name =
  match Hashtbl.find_opt env.cache name with
  | Some t -> t
  | None ->
      let result =
        match env.dir with
        | None -> None
        | Some dir -> begin
            let path = Filename.concat dir name in
            match Tbl_io.read_result ~path with
            | Error e ->
                push env
                  (diag ?file:env.file ~code:"V005" ~severity:Diagnostic.Error
                     ~subject:name
                     (Printf.sprintf "referenced table %s is unusable: %s" name
                        (Tbl_io.read_error_to_string e)));
                None
            | Ok t ->
                let axes =
                  if arity = 1 && Array.length t.Tbl_io.columns > 0 then
                    Some [ t.Tbl_io.columns.(0) ]
                  else Some []
                in
                env.findings <-
                  List.rev_append (Table_lint.check ~file:path ?axes t)
                    env.findings;
                if Array.length t.Tbl_io.columns < arity + 1 then begin
                  push env
                    (diag ?file:env.file ~code:"V005" ~severity:Diagnostic.Error
                       ~subject:name
                       (Printf.sprintf
                          "%s has %d column(s) but the $table_model call \
                           queries %d dimension(s) and reads one output"
                          name
                          (Array.length t.Tbl_io.columns)
                          arity));
                  None
                end
                else Some t
          end
      in
      Hashtbl.add env.cache name result;
      result

let control_axes env ~subject control =
  match Control.parse control with
  | exception Invalid_argument msg ->
      push env
        (diag ?file:env.file ~code:"V003" ~severity:Diagnostic.Error ~subject msg);
      None
  | axes -> Some axes

let table_model_call env vars queries file_arg control_arg =
  let arity = List.length queries in
  let q_intervals =
    List.map (fun q -> Option.value q ~default:Interval.whole) queries
  in
  let axes =
    match control_axes env ~subject:file_arg control_arg with
    | None -> []
    | Some axes ->
        if List.length axes <> arity then begin
          push env
            (diag ?file:env.file ~code:"V004" ~severity:Diagnostic.Error
               ~subject:file_arg
               (Printf.sprintf
                  "$table_model call on %s passes %d query argument(s) but \
                   control string %S has %d token(s)"
                  file_arg arity control_arg (List.length axes)));
          []
        end
        else axes
  in
  match load_table env ~arity file_arg with
  | None -> Interval.whole
  | Some t ->
      (* V006: each query window must stay inside the sampled domain of its
         axis column whenever that dimension's policy is E (reject) *)
      List.iteri
        (fun dim q ->
          let rejects =
            match List.nth_opt axes dim with
            | Some (Control.Interpolate { extrapolation = Control.Error; _ }) ->
                true
            | _ -> false
          in
          match column_hull t.Tbl_io.rows dim with
          | None -> ()
          | Some domain ->
              if rejects && not (Interval.subset q domain) then
                push env
                  (diag ?file:env.file ~code:"V006"
                     ~severity:Diagnostic.Warning ~subject:file_arg
                     (Printf.sprintf
                        "query window %s on axis %s of %s %s the sampled \
                         domain %s — the \"E\" policy rejects out-of-range \
                         queries at runtime"
                        (Interval.to_string q)
                        t.Tbl_io.columns.(dim) file_arg
                        (if Interval.disjoint q domain then
                           "is provably outside"
                         else "is not provably inside")
                        (Interval.to_string domain))))
        q_intervals;
      ignore vars;
      Option.value (column_hull t.Tbl_io.rows arity) ~default:Interval.whole

(* abstract interpretation of the straight-line analog block: every
   variable carries an interval; parameters start at their spec window
   (when given) or their declared default.  Table outputs are approximated
   by the hull of the sampled output column — splines can overshoot that
   hull slightly, so V006 speaks about the sampled domain, which is exact. *)
let rec eval_expr env vars e =
  match e with
  | Va.Num s -> begin
      match float_of_string_opt s with
      | Some v -> Interval.point v
      | None -> Interval.whole
    end
  | Va.Ident n -> (
      match Hashtbl.find_opt vars n with Some i -> i | None -> Interval.whole)
  | Va.Str _ | Va.Access _ -> Interval.whole
  | Va.Neg e -> Interval.neg (eval_expr env vars e)
  | Va.Paren e -> eval_expr env vars e
  | Va.Bin (op, a, b) -> (
      let ia = eval_expr env vars a and ib = eval_expr env vars b in
      match op with
      | Va.Add -> Interval.add ia ib
      | Va.Sub -> Interval.sub ia ib
      | Va.Mul -> Interval.mul ia ib
      | Va.Div -> Interval.div ia ib)
  | Va.Call (name, args) -> eval_call env vars name args

and eval_call env vars name args =
  match (name, args) with
  | "$table_model", _ -> begin
      match List.rev args with
      | Va.Str control_arg :: Va.Str file_arg :: rev_queries
        when rev_queries <> [] ->
          let queries =
            List.rev_map (fun q -> Some (eval_expr env vars q)) rev_queries
          in
          table_model_call env vars queries file_arg control_arg
      | _ ->
          push env
            (diag ?file:env.file ~code:"V002" ~severity:Diagnostic.Error
               ~subject:name
               "$table_model call is malformed: expected query argument(s) \
                followed by a table-file string and a control string");
          Interval.whole
    end
  | "pow", [ Va.Num base; e ] -> begin
      match float_of_string_opt base with
      | Some b when b > 0. -> pow_interval b (eval_expr env vars e)
      | _ ->
          List.iter (fun a -> ignore (eval_expr env vars a)) args;
          Interval.whole
    end
  | _ ->
      List.iter (fun a -> ignore (eval_expr env vars a)) args;
      Interval.whole

let table_diags ?file ?dir ?(specs = []) (m : Va.module_def) =
  let env = { file; dir; cache = Hashtbl.create 8; findings = [] } in
  let vars : (string, Interval.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun item ->
      match item with
      | Va.Param_group ps ->
          List.iter
            (fun p ->
              let window =
                match List.assoc_opt p.Va.pname specs with
                | Some (lo, hi) -> Some (Interval.of_bounds lo hi)
                | None ->
                    Option.map Interval.point
                      (float_of_string_opt p.Va.default)
              in
              match window with
              | Some w -> Hashtbl.replace vars p.Va.pname w
              | None -> ())
            ps
      | _ -> ())
    m.Va.items;
  let do_stmt = function
    | Va.Comment _ -> ()
    | Va.Assign_group binds ->
        List.iter
          (fun (lhs, rhs) -> Hashtbl.replace vars lhs (eval_expr env vars rhs))
          binds
    | Va.Sys_call (_, args) ->
        List.iter (fun a -> ignore (eval_expr env vars a)) args
    | Va.Contribution { rhs; _ } -> ignore (eval_expr env vars rhs)
  in
  List.iter
    (fun item -> match item with Va.Analog stmts -> List.iter do_stmt stmts | _ -> ())
    m.Va.items;
  List.rev env.findings

let check ?file ?dir ?specs (src : Va.source) =
  List.concat_map
    (fun m ->
      port_diags ?file m @ use_def_diags ?file m @ table_diags ?file ?dir ?specs m)
    src.Va.modules

let check_file ?dir ?specs path =
  let dir = match dir with Some d -> d | None -> Filename.dirname path in
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg ->
      [ diag ~file:path ~code:"V000" ~severity:Diagnostic.Error ~subject:path msg ]
  | text -> begin
      match Va.parse text with
      | exception Va.Parse_error { line; message } ->
          [
            diag ~file:path ~line ~code:"V000" ~severity:Diagnostic.Error
              ~subject:path message;
          ]
      | src -> check ~file:path ~dir ?specs src
    end
