(* Corner-aware abstract interpretation: interval transfer functions of the
   DC operating point and the AC small-signal model over the process
   variation box.

   Soundness strategy.  The Monte Carlo pipeline is a floating-point
   program; the claim "every sample in the box lands inside the enclosure"
   is about ITS results, not about exact real arithmetic.  So every step
   here mirrors the float pipeline's operation tree with outward-rounded
   intervals ({!Interval}): if each float input of an operation lies inside
   the corresponding interval, the float result (one rounding of the exact
   result of contained operands) lies inside the one-ulp-widened interval
   result, and the containment survives by induction through the whole
   pipeline.  Library transcendentals (exp/log/atan2/Complex.norm) are not
   correctly rounded, so their interval images carry a few extra ulps of
   widening.  Two steps are not elementwise float operations and carry
   small documented pads instead:

   - the sampled DC solve is a damped Newton iteration converging to vtol
     (1e-9 V); the Krawczyk enclosure bounds the true solutions over the
     box and is padded by 1e-6 per unknown to cover the Newton truncation;
   - the sampled AC solve is an LU factorisation; the residual-iteration
     enclosure bounds the true solutions over the box and the response
     rectangle is padded by 1e-5 relative to cover the LU forward error.

   Both pads are validated by the seeded soundness property test
   (test/t_corner.ml) against thousands of Monte Carlo evaluations. *)

module I = Interval
module Vec = Yield_numeric.Vec
module Mat = Yield_numeric.Mat
module Lu = Yield_numeric.Lu
module Cmat = Yield_numeric.Cmat
module Circuit = Yield_spice.Circuit
module Device = Yield_spice.Device
module Mosfet = Yield_spice.Mosfet
module Mna = Yield_spice.Mna
module Dcop = Yield_spice.Dcop
module Ac = Yield_spice.Ac
module Ast = Yield_spice.Netlist_ast
module Parser = Yield_spice.Netlist_parser
module Elab = Yield_spice.Netlist_elab
module Variation = Yield_process.Variation

type window = { min_gain_db : float; min_pm_deg : float }

type verdict = Provably_fail | Provably_pass | Undecided

let verdict_to_string = function
  | Provably_fail -> "provably-fail"
  | Provably_pass -> "provably-pass"
  | Undecided -> "undecided"

type enclosure = {
  gain_db : I.t option;
  unity_gain_hz : I.t option;
  pm_deg : I.t option;
}

type device_proof = { device : string; proved : bool; detail : string }

type report = {
  verdict : verdict;
  enclosure : enclosure;
  dc_verified : bool;
  devices : device_proof list;
  slices : (I.t * I.t) list;
  notes : string list;
}

(* ---------- interval scalar helpers ---------- *)

let ipt = I.point

let mag (i : I.t) = Float.max (Float.abs i.I.lo) (Float.abs i.I.hi)

(* Float.max endpointwise: mirrors [Float.max c x] applied to a contained
   float (Float.max is exact, no extra widening needed) *)
let i_max_const c (i : I.t) = I.make (Float.max c i.I.lo) (Float.max c i.I.hi)

let pad_abs d (i : I.t) = I.make (i.I.lo -. d) (i.I.hi +. d)

(* ---------- complex rectangles ---------- *)

(* a rectangle { re + j im } with interval components; enough structure for
   the residual iteration of the AC solve *)
type ci = { cre : I.t; cim : I.t }

let ci_zero = { cre = I.zero; cim = I.zero }

let ci_of_complex (z : Complex.t) = { cre = ipt z.Complex.re; cim = ipt z.Complex.im }

let ci_add a b = { cre = I.add a.cre b.cre; cim = I.add a.cim b.cim }

let ci_sub a b = { cre = I.sub a.cre b.cre; cim = I.sub a.cim b.cim }

let ci_mul a b =
  {
    cre = I.sub (I.mul a.cre b.cre) (I.mul a.cim b.cim);
    cim = I.add (I.mul a.cre b.cim) (I.mul a.cim b.cre);
  }

(* ---------- interval EKV (mirrors Mosfet.eval bit-for-bit at endpoints) ---------- *)

(* local mirrors of Mosfet's private helpers; the monotone interval images
   below evaluate exactly these floats at the endpoints *)
let softplus x = if x > 40. then x else if x < -40. then exp x else log (1. +. exp x)

let sigmoid x =
  if x > 40. then 1. else if x < -40. then exp x else 1. /. (1. +. exp (-.x))

let ekv_f x =
  let s = softplus (x /. 2.) in
  s *. s

let ekv_f' x = softplus (x /. 2.) *. sigmoid (x /. 2.)

(* all maps below are monotone non-decreasing; 8 ulps covers two chained
   libm calls plus the inner divisions/multiplications *)
let i_sigmoid = I.monotone_incr ~ulps:8 sigmoid

let i_ekv_f = I.monotone_incr ~ulps:8 ekv_f

(* F' is a product of two positive non-decreasing factors, so monotone too *)
let i_ekv_f' = I.monotone_incr ~ulps:8 ekv_f'

let i_sqrt = I.monotone_incr ~ulps:2 sqrt

(* per-device model parameters as intervals over the truncated variation box *)
type imodel = { base : Mosfet.model; m_vth0 : I.t; m_kp : I.t; m_lambda0 : I.t }

(* One sub-box of the variation space.  The global dVth axes are the wide,
   shared ones — they move every threshold of a polarity together and are
   what breaks the Krawczyk contraction when taken whole (the EKV currents
   are exponential in vth near weak inversion, so the interval Jacobian
   blows up as e^(k sigma / nVT)).  They are the axes worth subdividing;
   the mismatch, kp and lambda axes are narrow and ride along whole. *)
type slice = { s_n : I.t; s_p : I.t }

let imodel_of ~k ~spec ~slice (m : Mosfet.model) ~w ~l =
  let g = spec.Variation.global in
  let mm = spec.Variation.mismatch in
  let gvth, sg_kp, a_beta =
    match m.Mosfet.polarity with
    | Mosfet.Nmos -> (slice.s_n, g.Variation.sigma_kp_rel_n, mm.Variation.abeta_n)
    | Mosfet.Pmos -> (slice.s_p, g.Variation.sigma_kp_rel_p, mm.Variation.abeta_p)
  in
  let sm_vth = Variation.mismatch_sigma_vth spec m.Mosfet.polarity ~w ~l in
  (* same float expression perturb_model uses (mismatch_sigma_beta is not
     exported); the box must contain the sigma the sampler multiplies by *)
  let sm_beta = a_beta /. sqrt (w *. l) in
  let kk = I.of_bounds (-.k) k in
  (* a sample's delta is z_g * sigma_g +. z_m * sigma_m with |z| <= k; the
     global vth part is restricted to this slice's range *)
  let dvth = I.add gvth (I.mul kk (ipt sm_vth)) in
  let dkp_rel = I.add (I.mul kk (ipt sg_kp)) (I.mul kk (ipt sm_beta)) in
  let dlambda_rel = I.mul kk (ipt g.Variation.sigma_lambda_rel) in
  {
    base = m;
    (* mirrors Mosfet.with_deltas *)
    m_vth0 = I.add (ipt m.Mosfet.vth0) dvth;
    m_kp = I.mul (ipt m.Mosfet.kp) (I.add (ipt 1.) dkp_rel);
    m_lambda0 = I.mul (ipt m.Mosfet.lambda0) (I.add (ipt 1.) dlambda_rel);
  }

(* interval operating point; [o_strong]/[o_sat] are the operating-region
   margins of the forward branch, for the D-code proofs.  [o_dlam] is the
   partial derivative of the drain current w.r.t. the relative lambda
   delta, for the parametric residual form. *)
type iop = {
  o_ids : I.t;
  o_gm : I.t;
  o_gds : I.t;
  o_gmb : I.t;
  o_cgs : I.t;
  o_cgd : I.t;
  o_cdb : I.t;
  o_csb : I.t;
  o_dlam : I.t;
  o_strong : I.t;
  o_sat : I.t;
  o_reversible : bool;
}

(* mirrors Mosfet.eval_forward (vds >= 0, NMOS convention) *)
let eval_forward_i (im : imodel) ~w ~l ~vgs ~vds ~vbs =
  let m = im.base in
  let vt = Mosfet.temperature_voltage in
  let n = m.Mosfet.n_slope in
  let sarg = i_max_const 0.05 (I.sub (ipt m.Mosfet.phi) vbs) in
  let vth =
    I.add im.m_vth0
      (I.mul (ipt m.Mosfet.gamma) (I.sub (i_sqrt sarg) (i_sqrt (ipt m.Mosfet.phi))))
  in
  let dvth_dvbs = I.neg (I.div (ipt m.Mosfet.gamma) (I.mul (ipt 2.) (i_sqrt sarg))) in
  let lambda = I.div im.m_lambda0 (I.mul (ipt l) (ipt 1e6)) in
  let beta = I.div (I.mul im.m_kp (ipt w)) (ipt l) in
  let i0 = I.mul (I.mul (I.mul (I.mul (ipt 2.) (ipt n)) beta) (ipt vt)) (ipt vt) in
  let nvt = I.mul (ipt n) (ipt vt) in
  let ov = I.sub vgs vth in
  let a = I.div ov nvt in
  let b = I.div (I.sub ov (I.mul (ipt n) vds)) nvt in
  let fa = i_ekv_f a and fb = i_ekv_f b in
  let fa' = i_ekv_f' a and fb' = i_ekv_f' b in
  let clm = I.add (ipt 1.) (I.mul lambda vds) in
  let base = I.mul i0 (I.sub fa fb) in
  let ids = I.mul base clm in
  let gm = I.mul (I.div (I.mul i0 (I.sub fa' fb')) nvt) clm in
  let gds = I.add (I.mul (I.div (I.mul i0 fb') (ipt vt)) clm) (I.mul base lambda) in
  let gmb = I.neg (I.mul gm dvth_dvbs) in
  (* d ids / d dlambda_rel: ids = base (1 + lambda0 (1+dlam) vds / (l 1e6)) *)
  let dlam = I.mul (I.mul base vds) (ipt (m.Mosfet.lambda0 /. (l *. 1e6))) in
  let vdsat = i_max_const (2. *. vt) (I.div ov (ipt n)) in
  let strong = I.sub ov (I.mul (I.mul (ipt 3.) (ipt n)) (ipt vt)) in
  let sat = I.sub vds vdsat in
  (ids, gm, gds, gmb, vth, vdsat, strong, sat, dlam)

(* mirrors the Meyer-style capacitances of Mosfet.eval (forward values) *)
let caps_i (im : imodel) ~w ~l ~vgs' ~vds' ~vth ~vdsat =
  let m = im.base in
  let vt = Mosfet.temperature_voltage in
  let cox_total = I.mul (I.mul (ipt m.Mosfet.cox) (ipt w)) (ipt l) in
  let inversion =
    i_sigmoid (I.div (I.sub vgs' vth) (I.mul (I.mul (ipt 2.) (ipt m.Mosfet.n_slope)) (ipt vt)))
  in
  let saturated = i_sigmoid (I.div (I.sub vds' vdsat) (I.mul (ipt 2.) (ipt vt))) in
  let split =
    I.add
      (I.mul (I.div (ipt 2.) (ipt 3.)) saturated)
      (I.mul (ipt 0.5) (I.sub (ipt 1.) saturated))
  in
  let cgs_i = I.mul (I.mul cox_total inversion) split in
  let cgd_i = I.mul (I.mul (I.mul cox_total inversion) (ipt 0.5)) (I.sub (ipt 1.) saturated) in
  let cgs = I.add cgs_i (I.mul (ipt m.Mosfet.cgso) (ipt w)) in
  let cgd = I.add cgd_i (I.mul (ipt m.Mosfet.cgdo) (ipt w)) in
  let cj =
    I.add
      (I.mul (I.mul (ipt m.Mosfet.cj) (ipt w)) (ipt m.Mosfet.ext))
      (I.mul (ipt m.Mosfet.cjsw) (I.add (I.mul (ipt 2.) (ipt m.Mosfet.ext)) (ipt w)))
  in
  (cgs, cgd, cj)

let hull_iop p q =
  {
    o_ids = I.hull p.o_ids q.o_ids;
    o_gm = I.hull p.o_gm q.o_gm;
    o_gds = I.hull p.o_gds q.o_gds;
    o_gmb = I.hull p.o_gmb q.o_gmb;
    o_cgs = I.hull p.o_cgs q.o_cgs;
    o_cgd = I.hull p.o_cgd q.o_cgd;
    o_cdb = I.hull p.o_cdb q.o_cdb;
    o_csb = I.hull p.o_csb q.o_csb;
    o_dlam = I.hull p.o_dlam q.o_dlam;
    o_strong = I.hull p.o_strong q.o_strong;
    o_sat = I.hull p.o_sat q.o_sat;
    o_reversible = true;
  }

(* mirrors Mosfet.eval: a vds range straddling zero is split into the
   forward branch and the source-drain-reversed branch, each pushed through
   eval_forward with the reversal transform, then hulled *)
let eval_i (im : imodel) ~w ~l ~vgs ~vds ~vbs =
  let branch ~reversed vds_b =
    let vgs_b, vds_b, vbs_b =
      if reversed then (I.sub vgs vds_b, I.neg vds_b, I.sub vbs vds_b)
      else (vgs, vds_b, vbs)
    in
    let ids, gm, gds, gmb, vth, vdsat, strong, sat, dlam =
      eval_forward_i im ~w ~l ~vgs:vgs_b ~vds:vds_b ~vbs:vbs_b
    in
    let cgs_f, cgd_f, cj = caps_i im ~w ~l ~vgs':vgs_b ~vds':vds_b ~vth ~vdsat in
    let ids, gm, gds, gmb, dlam =
      if reversed then
        (I.neg ids, I.neg gm, I.add (I.add gm gds) gmb, I.neg gmb, I.neg dlam)
      else (ids, gm, gds, gmb, dlam)
    in
    let cgs, cgd = if reversed then (cgd_f, cgs_f) else (cgs_f, cgd_f) in
    {
      o_ids = ids;
      o_gm = gm;
      o_gds = gds;
      o_gmb = gmb;
      o_cgs = cgs;
      o_cgd = cgd;
      o_cdb = cj;
      o_csb = cj;
      o_dlam = dlam;
      o_strong = strong;
      o_sat = sat;
      o_reversible = reversed;
    }
  in
  (* the float pipeline reverses on vds < 0 strictly; letting both branches
     claim the vds = 0 endpoint only widens the hull *)
  let fwd =
    match I.intersect vds (I.make 0. infinity) with
    | Some v -> Some (branch ~reversed:false v)
    | None -> None
  in
  let rev =
    match I.intersect vds (I.make neg_infinity 0.) with
    | Some v -> Some (branch ~reversed:true v)
    | None -> None
  in
  match (fwd, rev) with
  | Some a, Some b -> hull_iop a b
  | Some a, None -> a
  | None, Some b -> b
  | None, None -> assert false

(* ---------- MOS entries and interval MNA assembly ---------- *)

type mos_entry = {
  e_name : string;
  e_d : Device.node;
  e_g : Device.node;
  e_s : Device.node;
  e_b : Device.node;
  e_model : Mosfet.model;
  e_w : float;
  e_l : float;
  e_imodel : imodel;
}

let mos_entries ~k ~spec ~slice circuit =
  Array.to_list (Circuit.devices circuit)
  |> List.filter_map (fun dev ->
         match dev with
         | Device.Mosfet { name; d; g; s; b; model; w; l } ->
             Some
               {
                 e_name = name;
                 e_d = d;
                 e_g = g;
                 e_s = s;
                 e_b = b;
                 e_model = model;
                 e_w = w;
                 e_l = l;
                 e_imodel = imodel_of ~k ~spec ~slice model ~w ~l;
               }
         | Device.Resistor _ | Device.Capacitor _ | Device.Vsource _
         | Device.Isource _ | Device.Vccs _ ->
             None)

(* normalised terminal intervals and the device-convention drain current,
   mirroring Mna.mos_linearise *)
let mos_iop_at (e : mos_entry) (x : I.t array) =
  let v n = if n = Device.ground then I.zero else x.(n - 1) in
  let vd = v e.e_d and vg = v e.e_g and vs = v e.e_s and vb = v e.e_b in
  let vgs, vds, vbs =
    match e.e_model.Mosfet.polarity with
    | Mosfet.Nmos -> (I.sub vg vs, I.sub vd vs, I.sub vb vs)
    | Mosfet.Pmos -> (I.sub vs vg, I.sub vs vd, I.sub vs vb)
  in
  let op = eval_i e.e_imodel ~w:e.e_w ~l:e.e_l ~vgs ~vds ~vbs in
  let ids_eff =
    match e.e_model.Mosfet.polarity with
    | Mosfet.Nmos -> op.o_ids
    | Mosfet.Pmos -> I.neg op.o_ids
  in
  (op, ids_eff)

let imat n = Array.init n (fun _ -> Array.make n I.zero)

let istamp_g m a b g =
  let add i j v = m.(i).(j) <- I.add m.(i).(j) v in
  if a <> Device.ground then add (a - 1) (a - 1) g;
  if b <> Device.ground then add (b - 1) (b - 1) g;
  if a <> Device.ground && b <> Device.ground then begin
    add (a - 1) (b - 1) (I.neg g);
    add (b - 1) (a - 1) (I.neg g)
  end

let istamp_gm m op_node on_node cp cn g =
  let entry row col v =
    if row <> Device.ground && col <> Device.ground then
      m.(row - 1).(col - 1) <- I.add m.(row - 1).(col - 1) v
  in
  entry op_node cp g;
  entry op_node cn (I.neg g);
  entry on_node cp (I.neg g);
  entry on_node cn g

let iinject rhs node v =
  if node <> Device.ground then rhs.(node - 1) <- I.add rhs.(node - 1) v

(* the parameter-independent DC system: gmin leaks, resistors, source
   branches/injections and VCCS.  MOSFETs enter the residual and the
   Jacobian separately. *)
let assemble_linear_dc circuit layout ~gmin =
  let n = Mna.size layout in
  let a = imat n in
  let b = Array.make n I.zero in
  for i = 0 to Mna.n_nodes layout - 1 do
    a.(i).(i) <- I.add a.(i).(i) (ipt gmin)
  done;
  Array.iter
    (fun dev ->
      match dev with
      | Device.Resistor { n1; n2; ohms; _ } -> istamp_g a n1 n2 (I.div (ipt 1.) (ipt ohms))
      | Device.Capacitor _ -> ()
      | Device.Vsource { name; npos; nneg; dc; _ } ->
          let br = Mna.branch_index layout name in
          if npos <> Device.ground then begin
            a.(npos - 1).(br) <- I.add a.(npos - 1).(br) (ipt 1.);
            a.(br).(npos - 1) <- I.add a.(br).(npos - 1) (ipt 1.)
          end;
          if nneg <> Device.ground then begin
            a.(nneg - 1).(br) <- I.add a.(nneg - 1).(br) (ipt (-1.));
            a.(br).(nneg - 1) <- I.add a.(br).(nneg - 1) (ipt (-1.))
          end;
          b.(br) <- I.add b.(br) (ipt dc)
      | Device.Isource { npos; nneg; dc; _ } ->
          iinject b npos (ipt (-.dc));
          iinject b nneg (ipt dc)
      | Device.Vccs { out_p; out_n; in_p; in_n; gm; _ } ->
          istamp_gm a out_p out_n in_p in_n (ipt gm)
      | Device.Mosfet _ -> ())
    (Circuit.devices circuit);
  (a, b)

(* interval KCL residual F(x) = A0 x - b0 + sum ids_eff (e_d - e_s) *)
let residual ~lin:(a0, b0) ~moses x =
  let n = Array.length b0 in
  let r =
    Array.init n (fun i ->
        let acc = ref (I.neg b0.(i)) in
        for j = 0 to n - 1 do
          acc := I.add !acc (I.mul a0.(i).(j) x.(j))
        done;
        !acc)
  in
  List.iter
    (fun e ->
      let _, ids_eff = mos_iop_at e x in
      iinject r e.e_d ids_eff;
      iinject r e.e_s (I.neg ids_eff))
    moses;
  r

(* slop on the verified DC enclosure: the sampled Newton solves stop at
   vtol = 1e-9 V of step size, so their iterates sit near but not exactly
   on the true solutions the Krawczyk box bounds *)
let dc_pad = 1e-6

(* entries whose parameter boxes are the (already slice-centred) model
   points: evaluating the residual with these at the Newton solution x0
   yields F(x0, p_mid), which is rounding-noise wide *)
let point_entries circuit =
  Array.to_list (Circuit.devices circuit)
  |> List.filter_map (fun dev ->
         match dev with
         | Device.Mosfet { name; d; g; s; b; model; w; l } ->
             Some
               {
                 e_name = name;
                 e_d = d;
                 e_g = g;
                 e_s = s;
                 e_b = b;
                 e_model = model;
                 e_w = w;
                 e_l = l;
                 e_imodel =
                   {
                     base = model;
                     m_vth0 = ipt model.Mosfet.vth0;
                     m_kp = ipt model.Mosfet.kp;
                     m_lambda0 = ipt model.Mosfet.lambda0;
                   };
               }
         | Device.Resistor _ | Device.Capacitor _ | Device.Vsource _
         | Device.Isource _ | Device.Vccs _ ->
             None)

(* One independent direction of the parameter box: [a_delta] is its centred
   range and [a_dev] the enclosure of d ids_eff / d axis for each MOS
   entry (moses order; zero when the device does not depend on the axis).
   A device's current enters KCL rows d and s with opposite signs, so any
   Y-weighted sum over such a direction collapses to (Y_id - Y_is) times
   one shared interval per device — the structure that keeps the widths
   below second order instead of multiplying them by the circuit gain. *)
type dcontrib = { c_gm : float; c_rest : I.t }
type daxis = { a_delta : I.t; a_dev : dcontrib list }

let c_zero = { c_gm = 0.; c_rest = I.zero }

(* The interval operating point of every entry at [x], plus the parameter
   axes with their partials there, for the residual's mean-value form
   F(x0, p) in F(x0, p_mid) + sum_q dF/dp_q(box) (p_q - p_mid_q).
   Per-device partials: d ids_eff / d dvth = -s gm (EKV currents depend on
   vth only through vgs - vth), d ids_eff / d dkp_rel = ids_eff / (1 +
   dkp_rel_total) (currents are linear in kp), d ids_eff / d dlambda_rel
   from the channel-length-modulation term; s = +/-1 is the polarity sign
   of Mna's ids_eff = s * ids convention, and every partial is evaluated
   through the same branch split/hull as the currents themselves. *)
let axis_data ~k ~spec ~slice ~moses ~x =
  let kk = I.of_bounds (-.k) k in
  let g = spec.Variation.global in
  let mm = spec.Variation.mismatch in
  let per_dev =
    List.map
      (fun e ->
        let op0, ids_eff0 = mos_iop_at e x in
        let s_pol, sg_kp, a_beta =
          match e.e_model.Mosfet.polarity with
          | Mosfet.Nmos -> (1., g.Variation.sigma_kp_rel_n, mm.Variation.abeta_n)
          | Mosfet.Pmos -> (-1., g.Variation.sigma_kp_rel_p, mm.Variation.abeta_p)
        in
        let sm_vth =
          Variation.mismatch_sigma_vth spec e.e_model.Mosfet.polarity ~w:e.e_w
            ~l:e.e_l
        in
        let sm_beta = a_beta /. sqrt (e.e_w *. e.e_l) in
        let dkp_tot = I.add (I.mul kk (ipt sg_kp)) (I.mul kk (ipt sm_beta)) in
        (* d ids_eff / d dvth = -s gm is kept factored as a coefficient on
           the device's own gm ([c_gm]): in the mean-value weights it then
           merges with the gm stamp term gm (s_g - s_s), whose true value
           nearly cancels against it for diode-connected devices -- two
           separate interval products would double the width instead *)
        let d_vth = { c_gm = -.s_pol; c_rest = I.zero } in
        let d_kp =
          { c_gm = 0.; c_rest = I.div ids_eff0 (I.add (ipt 1.) dkp_tot) }
        in
        let d_lam = { c_gm = 0.; c_rest = I.scale s_pol op0.o_dlam } in
        (e, op0, sm_vth, sm_beta, d_vth, d_kp, d_lam))
      moses
  in
  let pol (e : mos_entry) = e.e_model.Mosfet.polarity in
  let d_vth_of (_, _, _, _, d, _, _) = d in
  let d_kp_of (_, _, _, _, _, d, _) = d in
  let by_pol want delta sel =
    if List.exists (fun (e, _, _, _, _, _, _) -> pol e = want) per_dev then
      [
        {
          a_delta = delta;
          a_dev =
            List.map
              (fun ((e, _, _, _, _, _, _) as pd) ->
                if pol e = want then sel pd else c_zero)
              per_dev;
        };
      ]
    else []
  in
  let lam =
    if per_dev = [] then []
    else
      [
        {
          a_delta = I.mul kk (ipt g.Variation.sigma_lambda_rel);
          a_dev = List.map (fun (_, _, _, _, _, _, d) -> d) per_dev;
        };
      ]
  in
  let mism =
    List.concat_map
      (fun (e, _, sm_vth, sm_beta, d_vth, d_kp, _) ->
        let solo d =
          List.map
            (fun (e', _, _, _, _, _, _) -> if e' == e then d else c_zero)
            per_dev
        in
        [
          { a_delta = I.mul kk (ipt sm_vth); a_dev = solo d_vth };
          { a_delta = I.mul kk (ipt sm_beta); a_dev = solo d_kp };
        ])
      per_dev
  in
  (* same midpoint expression shift_circuit centred the models at, so the
     centred global ranges line up with F(x0, p_mid) *)
  let mid (i : I.t) = ipt (0.5 *. (i.I.lo +. i.I.hi)) in
  let axes =
    by_pol Mosfet.Nmos (I.sub slice.s_n (mid slice.s_n)) d_vth_of
    @ by_pol Mosfet.Pmos (I.sub slice.s_p (mid slice.s_p)) d_vth_of
    @ by_pol Mosfet.Nmos (I.mul kk (ipt g.Variation.sigma_kp_rel_n)) d_kp_of
    @ by_pol Mosfet.Pmos (I.mul kk (ipt g.Variation.sigma_kp_rel_p)) d_kp_of
    @ lam @ mism
  in
  (List.map (fun (_, op, _, _, _, _, _) -> op) per_dev, axes)

(* Parametric Krawczyk verification of the DC solution over the box, in
   first-order Taylor-model form.  A plain box Krawczyk cannot contract
   here: the candidate box must contain the genuine solution spread (the
   mismatch axes drive node voltages tens of millivolts), and over a box
   that wide the interval term (I - Y J(X)) (X - x0) amplifies instead of
   contracting.  So the first-order parameter dependence is peeled off
   analytically: substitute

     x = x0 + S dp + u,   S = -Y dF/dp|_mid  (float sensitivity columns)

   and verify only the second-order remainder u with the Krawczyk operator

     K(U) = -Y G0 + (I - Y J(X' )) U,   X' = x0 + S dp + U,

   where Y G0 encloses Y F(x0 + S dp, p) axis by axis through the
   mean-value form: Y F(x0, p_mid) + sum_q Y (J(X0') s_q + dF/dp_q) dp_q.
   The bracket is a near-cancellation (Y J s_q ~ -s_q ~ -Y dF/dp_q), so
   the residual really is second order; summing through Y per axis before
   multiplying by the shared axis range also keeps the correlation of the
   global axes (a common-mode vth shift largely cancels through matched
   structures).  K(U) strictly inside U proves each parameter combination
   in the box has exactly one solution through the tube, and the box hull
   x0 + S dp + K(U) encloses them all. *)
let krawczyk circuit layout ~lin ~moses ~k ~spec ~slice ~x0 =
  let n = Mna.size layout in
  let gmat, _ = Mna.assemble_dc circuit layout ~x:x0 ~source_scale:1. ~gmin:1e-12 in
  let lu = Lu.factor gmat in
  let ycols =
    Array.init n (fun j ->
        let e = Vec.create n in
        e.(j) <- 1.;
        Lu.solve lu e)
  in
  let yv i j = ycols.(j).(i) in
  let yat i node = if node = Device.ground then 0. else yv i (node - 1) in
  let ydiff i (e : mos_entry) = I.sub (ipt (yat i e.e_d)) (ipt (yat i e.e_s)) in
  let x0i = Array.map ipt x0 in
  let pts = point_entries circuit in
  let f0mid = residual ~lin ~moses:pts x0i in
  let yf0mid =
    Array.init n (fun i ->
        let acc = ref I.zero in
        for j = 0 to n - 1 do
          acc := I.add !acc (I.scale (yv i j) f0mid.(j))
        done;
        !acc)
  in
  (* axis partials at the centre point give the float sensitivities S *)
  let ops_c, axes0 = axis_data ~k ~spec ~slice ~moses ~x:x0i in
  let sens =
    List.map
      (fun ax ->
        let s = Array.make n 0. in
        List.iter2
          (fun ((e : mos_entry), (op : iop)) (c : dcontrib) ->
            let mid (i : I.t) = 0.5 *. (i.I.lo +. i.I.hi) in
            let dm = (c.c_gm *. mid op.o_gm) +. mid c.c_rest in
            if dm <> 0. then
              for i = 0 to n - 1 do
                s.(i) <- s.(i) -. ((yat i e.e_d -. yat i e.e_s) *. dm)
              done)
          (List.combine moses ops_c)
          ax.a_dev;
        (ax, s))
      axes0
  in
  (* the first-order tube x0 + S dp, as a box *)
  let xspan =
    Array.init n (fun m ->
        List.fold_left
          (fun acc (ax, s) -> I.add acc (I.scale s.(m) ax.a_delta))
          (ipt x0.(m)) sens)
  in
  (* mean-value partials and operating points over the tube (the segments
     from (x0, p_mid) to (x0 + S dp, p) all live inside xspan x box) *)
  let ops_sp, axes_sp = axis_data ~k ~spec ~slice ~moses ~x:xspan in
  let a0 = fst lin in
  let yg0 =
    (* w_q = Y (J(X0') s_q + dF/dp_q(X0')): the A0 part of J goes through
       Y entrywise (its width is rounding noise), while the MOS stamps and
       the partial collapse per device to (Y_id - Y_is) [gm (s_g - s_s) +
       gds (s_d - s_s) + gmb (s_b - s_s) + d_dev]; the midpoints cancel
       against the A0 part (J0 s_q ~ -dF/dp_q by construction of s_q),
       leaving genuinely second-order widths *)
    let wqs =
      List.map2
        (fun (ax0, s) ax_sp ->
          let t =
            Array.init n (fun j ->
                let acc = ref I.zero in
                for m = 0 to n - 1 do
                  acc := I.add !acc (I.scale s.(m) a0.(j).(m))
                done;
                !acc)
          in
          let sv node = ipt (if node = Device.ground then 0. else s.(node - 1)) in
          let dev_terms =
            List.map2
              (fun ((e : mos_entry), (op : iop)) (c : dcontrib) ->
                let v =
                  I.add
                    (I.add
                       (I.mul op.o_gm
                          (I.add
                             (I.sub (sv e.e_g) (sv e.e_s))
                             (ipt c.c_gm)))
                       (I.mul op.o_gds (I.sub (sv e.e_d) (sv e.e_s))))
                    (I.add
                       (I.mul op.o_gmb (I.sub (sv e.e_b) (sv e.e_s)))
                       c.c_rest)
                in
                (e, v))
              (List.combine moses ops_sp) ax_sp.a_dev
          in
          let w =
            Array.init n (fun i ->
                let acc = ref I.zero in
                for j = 0 to n - 1 do
                  acc := I.add !acc (I.scale (yv i j) t.(j))
                done;
                List.fold_left
                  (fun acc (e, v) -> I.add acc (I.mul (ydiff i e) v))
                  !acc dev_terms)
          in
          (ax0.a_delta, w))
        sens axes_sp
    in
    Array.init n (fun i ->
        List.fold_left
          (fun acc (delta, w) -> I.add acc (I.mul w.(i) delta))
          yf0mid.(i) wqs)
  in
  (* E0 = I - Y J0 at the float Jacobian the preconditioner inverted *)
  let e0 =
    Array.init n (fun i ->
        Array.init n (fun kcol ->
            let acc = ref (if i = kcol then ipt 1. else I.zero) in
            for j = 0 to n - 1 do
              acc := I.sub !acc (I.mul (ipt (yv i j)) (ipt (Mat.get gmat j kcol)))
            done;
            !acc))
  in
  (* centre operating points the Delta-stamps subtract; the interval
     mirrors at point inputs contain the floats gmat was stamped from *)
  let ops0 = List.map (fun e -> fst (mos_iop_at e x0i)) pts in
  (* one Krawczyk image of a remainder box [u] (centred at zero):
     (I - Y J(X')) U = E0 U - Y (J(X') - J0) U, with the Delta-stamps
     collapsed per device like above *)
  let image u =
    let xq = Array.init n (fun m -> I.add xspan.(m) u.(m)) in
    let uv node = if node = Device.ground then I.zero else u.(node - 1) in
    let dev_terms =
      List.map2
        (fun (e : mos_entry) (op0 : iop) ->
          let op, _ = mos_iop_at e xq in
          let v =
            I.add
              (I.add
                 (I.mul (I.sub op.o_gm op0.o_gm) (I.sub (uv e.e_g) (uv e.e_s)))
                 (I.mul (I.sub op.o_gds op0.o_gds) (I.sub (uv e.e_d) (uv e.e_s))))
              (I.mul (I.sub op.o_gmb op0.o_gmb) (I.sub (uv e.e_b) (uv e.e_s)))
          in
          (e, v))
        moses ops0
    in
    Array.init n (fun i ->
        let acc = ref (I.neg yg0.(i)) in
        for kcol = 0 to n - 1 do
          acc := I.add !acc (I.mul e0.(i).(kcol) u.(kcol))
        done;
        List.fold_left
          (fun acc (e, v) -> I.sub acc (I.mul (ydiff i e) v))
          !acc dev_terms)
  in
  let interior k u =
    let ok = ref true in
    Array.iteri
      (fun i (ki : I.t) ->
        if not (ki.I.lo > u.(i).I.lo && ki.I.hi < u.(i).I.hi) then ok := false)
      k;
    !ok
  in
  (* epsilon-inflation (Rump): start at the residual radii and let the
     image rebalance them across rows -- the iteration converges to (a
     slight inflation of) the Perron-scaled fixed point r* = |yg0| +
     |A| r* whenever it exists, which a uniform scaling of |yg0| can
     miss entirely when rows contract at different rates *)
  let verify () =
    let u =
      ref
        (Array.init n (fun i ->
             let r = mag yg0.(i) +. 1e-12 in
             I.make (-.r) r))
    in
    let result = ref None in
    (try
       for _ = 1 to 25 do
         let k = image !u in
         if interior k !u then begin
           result := Some (k, !u);
           raise Exit
         end;
         u :=
           Array.init n (fun i ->
               let r = (mag k.(i) *. 1.05) +. 1e-12 in
               I.make (-.r) r)
       done
     with Exit -> ());
    !result
  in
  match verify () with
  | None -> None
  | Some (k0, u_ok) ->
      (* contract: K(U) cap U keeps enclosing every remainder; two rounds
         recover most of the over-inflation *)
      let tighten cur =
        let k = image cur in
        Array.init n (fun i ->
            match I.intersect k.(i) cur.(i) with Some t -> t | None -> cur.(i))
      in
      let b1 =
        Array.init n (fun i ->
            match I.intersect k0.(i) u_ok.(i) with Some t -> t | None -> u_ok.(i))
      in
      let b2 = tighten b1 in
      let b3 = tighten b2 in
      Some (Array.init n (fun m -> pad_abs dc_pad (I.add xspan.(m) b3.(m))))

(* ---------- AC interval solve ---------- *)

(* relative slop on the response rectangle: the sampled Cmat.solve is a
   float LU whose forward error (cond * n * eps) can reach ~1e-6 on the
   stiffest low-frequency systems; 1e-5 covers it with margin *)
let ac_slop_rel = 1e-5

(* interval G/C/rhs mirroring Mna.assemble_ac, with the MOS small-signal
   parameters taken from the interval operating points *)
let assemble_ac_intervals circuit layout ~iops =
  let n = Mna.size layout in
  let g = imat n in
  let c = imat n in
  let rhs = Array.make n ci_zero in
  Array.iter
    (fun dev ->
      match dev with
      | Device.Resistor { n1; n2; ohms; _ } -> istamp_g g n1 n2 (I.div (ipt 1.) (ipt ohms))
      | Device.Capacitor { n1; n2; farads; _ } -> istamp_g c n1 n2 (ipt farads)
      | Device.Vsource { name; npos; nneg; ac; _ } ->
          let br = Mna.branch_index layout name in
          if npos <> Device.ground then begin
            g.(npos - 1).(br) <- I.add g.(npos - 1).(br) (ipt 1.);
            g.(br).(npos - 1) <- I.add g.(br).(npos - 1) (ipt 1.)
          end;
          if nneg <> Device.ground then begin
            g.(nneg - 1).(br) <- I.add g.(nneg - 1).(br) (ipt (-1.));
            g.(br).(nneg - 1) <- I.add g.(br).(nneg - 1) (ipt (-1.))
          end;
          rhs.(br) <- { cre = ipt ac; cim = I.zero }
      | Device.Isource { npos; nneg; ac; _ } ->
          if npos <> Device.ground then
            rhs.(npos - 1) <- ci_add rhs.(npos - 1) { cre = ipt (-.ac); cim = I.zero };
          if nneg <> Device.ground then
            rhs.(nneg - 1) <- ci_add rhs.(nneg - 1) { cre = ipt ac; cim = I.zero }
      | Device.Vccs { out_p; out_n; in_p; in_n; gm; _ } ->
          istamp_gm g out_p out_n in_p in_n (ipt gm)
      | Device.Mosfet _ -> ())
    (Circuit.devices circuit);
  List.iter
    (fun ((e : mos_entry), (op : iop)) ->
      istamp_gm g e.e_d e.e_s e.e_g e.e_s op.o_gm;
      istamp_g g e.e_d e.e_s op.o_gds;
      istamp_gm g e.e_d e.e_s e.e_b e.e_s op.o_gmb;
      istamp_g c e.e_g e.e_s op.o_cgs;
      istamp_g c e.e_g e.e_d op.o_cgd;
      istamp_g c e.e_d e.e_b op.o_cdb;
      istamp_g c e.e_s e.e_b op.o_csb)
    iops;
  for i = 0 to Mna.n_nodes layout - 1 do
    g.(i).(i) <- I.add g.(i).(i) (ipt 1e-12)
  done;
  (g, c, rhs)

let midpoint_mat n (a : I.t array array) =
  let m = Mat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Mat.set m i j (0.5 *. (a.(i).(j).I.lo +. a.(i).(j).I.hi))
    done
  done;
  m

(* Rump-style verified solve of (G + jwC) x = b over the intervals at one
   frequency: xm = midpoint solve, E' = Yc (b - A xm) + (I - Yc A) E with
   epsilon inflation until E' is interior; then x in xm + E'. Returns the
   response rectangle at [out_idx], or None when verification fails. *)
let solve_freq ~n ~gint ~cint ~gmid ~cmid ~rhs_i ~rhs_c ~out_idx freq =
  let omega_f = 2. *. Float.pi *. freq in
  let omega_i = I.mul (I.mul (ipt 2.) (ipt Float.pi)) (ipt freq) in
  match
    let m = Cmat.of_real ~imag_scale:omega_f gmid cmid in
    let xm = Cmat.solve m rhs_c in
    let ycols =
      Array.init n (fun j ->
          let e = Array.make n Complex.zero in
          e.(j) <- Complex.one;
          Cmat.solve m e)
    in
    (xm, ycols)
  with
  | exception Lu.Singular _ -> None
  | xm, ycols ->
      let a i j = { cre = gint.(i).(j); cim = I.mul omega_i cint.(i).(j) } in
      let yc i j = ycols.(j).(i) in
      let z0 =
        Array.init n (fun i ->
            let acc = ref rhs_i.(i) in
            for j = 0 to n - 1 do
              acc := ci_sub !acc (ci_mul (a i j) (ci_of_complex xm.(j)))
            done;
            !acc)
      in
      let z =
        Array.init n (fun i ->
            let acc = ref ci_zero in
            for j = 0 to n - 1 do
              acc := ci_add !acc (ci_mul (ci_of_complex (yc i j)) z0.(j))
            done;
            !acc)
      in
      let r =
        Array.init n (fun i ->
            Array.init n (fun k ->
                let acc = ref (if i = k then ci_of_complex Complex.one else ci_zero) in
                for j = 0 to n - 1 do
                  acc := ci_sub !acc (ci_mul (ci_of_complex (yc i j)) (a j k))
                done;
                !acc))
      in
      let inflate (i : I.t) =
        let d = (0.05 *. I.width i) +. (1e-12 *. mag i) +. 1e-300 in
        I.make (i.I.lo -. d) (i.I.hi +. d)
      in
      let interior (a : I.t) (b : I.t) = a.I.lo > b.I.lo && a.I.hi < b.I.hi in
      let rec iterate e count =
        if count > 12 then None
        else begin
          let ei = Array.map (fun v -> { cre = inflate v.cre; cim = inflate v.cim }) e in
          let e' =
            Array.init n (fun i ->
                let acc = ref z.(i) in
                for k = 0 to n - 1 do
                  acc := ci_add !acc (ci_mul r.(i).(k) ei.(k))
                done;
                !acc)
          in
          let ok = ref true in
          Array.iteri
            (fun i v ->
              if not (interior v.cre ei.(i).cre && interior v.cim ei.(i).cim) then
                ok := false)
            e';
          if !ok then Some e' else iterate e' (count + 1)
        end
      in
      (match iterate z 0 with
      | None -> None
      | Some e ->
          let h = ci_add (ci_of_complex xm.(out_idx)) e.(out_idx) in
          let s = (ac_slop_rel *. Float.max (mag h.cre) (mag h.cim)) +. 1e-300 in
          Some { cre = pad_abs s h.cre; cim = pad_abs s h.cim })

(* ---------- measures: gain, unity-gain bracket, phase margin ---------- *)

(* |H| enclosure with slack for Complex.norm's scaled evaluation *)
let norm_i (h : ci) =
  let s = I.add (I.pow_int h.cre 2) (I.pow_int h.cim 2) in
  (* outward rounding can push the lower bound of a square sum a hair
     below zero; clamp before the sqrt *)
  let s = i_max_const 0. s in
  I.widen ~ulps:8 (i_sqrt s)

(* dB enclosure mirroring Measure.magnitude_db (non-positive magnitudes
   collapse to -inf there) *)
let mag_db_i (norm : I.t) =
  let f m = 20. *. log10 m in
  let lo = if norm.I.lo <= 0. then neg_infinity else f norm.I.lo in
  let hi = if norm.I.hi <= 0. then neg_infinity else f norm.I.hi in
  I.widen ~ulps:8 (I.make lo hi)

(* phase enclosure via the four corners of the rectangle; valid only when
   the rectangle avoids the origin and the atan2 branch cut (left real
   axis): strictly right half-plane, or imaginary part sign-definite.  On
   such rectangles arg is edgewise monotone, so corners are extremal. *)
let iarg (h : ci) =
  if not (h.cre.I.lo > 0. || h.cim.I.lo > 0. || h.cim.I.hi < 0.) then None
  else begin
    let f re im = Float.atan2 im re *. 180. /. Float.pi in
    let vs =
      [
        f h.cre.I.lo h.cim.I.lo;
        f h.cre.I.lo h.cim.I.hi;
        f h.cre.I.hi h.cim.I.lo;
        f h.cre.I.hi h.cim.I.hi;
      ]
    in
    let lo = List.fold_left Float.min infinity vs in
    let hi = List.fold_left Float.max neg_infinity vs in
    Some (I.widen ~ulps:8 (I.make lo hi))
  end

(* interval version of Measure.phases_deg_unwrapped: sound only when the
   wrap count is provably the same for every sample at every step *)
let unwrap_i (ph : I.t array) =
  let n = Array.length ph in
  let out = Array.make n ph.(0) in
  match
    for i = 1 to n - 1 do
      let d = I.sub ph.(i) out.(i - 1) in
      let q_lo = d.I.lo /. 360. and q_hi = d.I.hi /. 360. in
      let w = Float.round q_lo in
      (* the margin from the nearest half-integer keeps Float.round of any
         contained sample diff equal to w despite the division rounding *)
      if
        Float.round q_hi <> w
        || q_lo <= w -. 0.499999
        || q_hi >= w +. 0.499999
      then raise Exit;
      out.(i) <- I.sub ph.(i) (ipt (360. *. w))
    done
  with
  | exception Exit -> None
  | () -> Some out

type measured = {
  m_gain : I.t option;
  m_fu : I.t option;
  m_pm : I.t option;
}

(* From per-frequency response rectangles to (gain, fu bracket, PM)
   enclosures, mirroring Measure's crossing/interp pipeline:
   - gain is the dB magnitude at the first frequency;
   - if index a is the first with mag.lo < 0 dB (a >= 1) and index b the
     first with mag.hi < 0 dB, every sample's first 0 dB crossing lies in
     [freqs.(a-1), freqs.(b)];
   - the sample's PM interpolates its unwrapped phase inside that bracket,
     so PM lies in 180 + hull(unwrapped phase over indices a-1 .. b). *)
let measures ~freqs (resp : ci option array) =
  let n = Array.length resp in
  let mags = Array.map (Option.map (fun h -> mag_db_i (norm_i h))) resp in
  let gain = if n = 0 then None else mags.(0) in
  let rec find_first pred i =
    if i >= n then None
    else
      match mags.(i) with
      | None -> None
      | Some (m : I.t) -> if pred m then Some i else find_first pred (i + 1)
  in
  let bracket =
    match find_first (fun m -> m.I.lo < 0.) 0 with
    | None | Some 0 -> None
    | Some a -> (
        match find_first (fun m -> m.I.hi < 0.) a with
        | None -> None
        | Some b -> Some (a, b))
  in
  match bracket with
  | None -> { m_gain = gain; m_fu = None; m_pm = None }
  | Some (a, b) ->
      (* the sampled crossing interpolates through float exp/log; a few
         ulps of widening keeps the bracket an enclosure at its endpoints *)
      let fu = I.widen ~ulps:4 (I.of_bounds freqs.(a - 1) freqs.(b)) in
      let phases =
        let arr = Array.make (b + 1) None in
        for i = 0 to b do
          arr.(i) <- Option.bind resp.(i) iarg
        done;
        if Array.for_all Option.is_some arr then
          Some (Array.map (fun o -> Option.get o) arr)
        else None
      in
      let pm =
        match phases with
        | None -> None
        | Some ph -> (
            match unwrap_i ph with
            | None -> None
            | Some unwrapped ->
                let hull = ref unwrapped.(a - 1) in
                for i = a to b do
                  hull := I.hull !hull unwrapped.(i)
                done;
                (* 1e-9 deg absolute pad: the sampled fu can exit its
                   bracket segment by an ulp, dragging a crumb of the next
                   segment's phase into the interpolation *)
                Some (pad_abs 1e-9 (I.offset 180. !hull)))
      in
      { m_gain = gain; m_fu = Some fu; m_pm = pm }

(* ---------- verdict and top-level analysis ---------- *)

let verdict_of window (enc : enclosure) =
  let fail =
    (match enc.gain_db with
    | Some (g : I.t) -> g.I.hi < window.min_gain_db
    | None -> false)
    ||
    match enc.pm_deg with
    | Some (p : I.t) -> p.I.hi < window.min_pm_deg
    | None -> false
  in
  let pass =
    match (enc.gain_db, enc.pm_deg) with
    | Some (g : I.t), Some (p : I.t) ->
        g.I.lo >= window.min_gain_db && p.I.lo >= window.min_pm_deg
    | _ -> false
  in
  if fail then Provably_fail else if pass then Provably_pass else Undecided

let proof_of k (e : mos_entry) (op : iop) =
  if op.o_reversible then
    {
      device = e.e_name;
      proved = false;
      detail = "drain-source voltage can reverse sign across the box";
    }
  else if not (op.o_strong.I.lo > 0.) then
    {
      device = e.e_name;
      proved = false;
      detail =
        Printf.sprintf
          "overdrive margin (vgs - vth - 3nVT) reaches %.3g V toward the dVth = +%g-sigma corner"
          op.o_strong.I.lo k;
    }
  else if not (op.o_sat.I.lo > 0.) then
    {
      device = e.e_name;
      proved = false;
      detail =
        Printf.sprintf
          "saturation margin (vds - vdsat) reaches %.3g V toward the dVth = -%g-sigma corner"
          op.o_sat.I.lo k;
    }
  else
    {
      device = e.e_name;
      proved = true;
      detail =
        Printf.sprintf "overdrive margin >= %.3g V, vds - vdsat >= %.3g V"
          op.o_strong.I.lo op.o_sat.I.lo;
    }

let empty_enclosure = { gain_db = None; unity_gain_hz = None; pm_deg = None }

(* ---------- global-Vth slicing ---------- *)

let has_polarity circuit pol =
  Array.exists
    (function
      | Device.Mosfet { model; _ } -> model.Mosfet.polarity = pol
      | _ -> false)
    (Circuit.devices circuit)

(* cut [range] into [m] touching sub-ranges; shared interior endpoints are
   the same floats, so the union covers the range with no gaps *)
let cut (range : I.t) m =
  let edges =
    Array.init (m + 1) (fun i ->
        if i = 0 then range.I.lo
        else if i = m then range.I.hi
        else range.I.lo +. (I.width range *. (float_of_int i /. float_of_int m)))
  in
  Array.init m (fun i -> I.of_bounds edges.(i) edges.(i + 1))

let slice_grid ~k ~spec ~need_n ~need_p m =
  let g = spec.Variation.global in
  let range sigma = I.mul (I.of_bounds (-.k) k) (ipt sigma) in
  let cuts need sigma = if need then cut (range sigma) m else [| range sigma |] in
  let ns = cuts need_n g.Variation.sigma_vth_n in
  let ps = cuts need_p g.Variation.sigma_vth_p in
  Array.to_list ns
  |> List.concat_map (fun sn ->
         Array.to_list ps |> List.map (fun sp -> { s_n = sn; s_p = sp }))

(* re-centre the circuit's models at a slice's midpoint so the per-slice
   Newton solve (and the Krawczyk preconditioner built from it) sits in the
   middle of the sub-box *)
let shift_circuit circuit slice =
  let mid (i : I.t) = 0.5 *. (i.I.lo +. i.I.hi) in
  let cn = mid slice.s_n and cp = mid slice.s_p in
  Circuit.map_devices circuit (fun dev ->
      match dev with
      | Device.Mosfet ({ model; _ } as r) ->
          let dvth =
            match model.Mosfet.polarity with Mosfet.Nmos -> cn | Mosfet.Pmos -> cp
          in
          Device.Mosfet
            { r with model = Mosfet.with_deltas model ~dvth ~dkp_rel:0. ~dlambda_rel:0. }
      | d -> d)

(* hull the per-slice interval operating points of one device, for the
   D-code proof over the whole box *)
let merge_device_iops = function
  | [] -> invalid_arg "Corner_lint.merge_device_iops: empty"
  | op :: rest ->
      List.fold_left
        (fun acc o -> { (hull_iop acc o) with o_reversible = acc.o_reversible || o.o_reversible })
        op rest

let hull_opt a b =
  match (a, b) with Some a, Some b -> Some (I.hull a b) | _ -> None

let hull_enclosure a b =
  {
    gain_db = hull_opt a.gain_db b.gain_db;
    unity_gain_hz = hull_opt a.unity_gain_hz b.unity_gain_hz;
    pm_deg = hull_opt a.pm_deg b.pm_deg;
  }

let ac_enclosures circuit layout ~iops ~freqs ~out_idx ~note =
  let n = Mna.size layout in
  let gint, cint, rhs_i = assemble_ac_intervals circuit layout ~iops in
  let gmid = midpoint_mat n gint in
  let cmid = midpoint_mat n cint in
  let rhs_c =
    Array.map
      (fun (v : ci) ->
        {
          Complex.re = 0.5 *. (v.cre.I.lo +. v.cre.I.hi);
          im = 0.5 *. (v.cim.I.lo +. v.cim.I.hi);
        })
      rhs_i
  in
  let resp =
    Array.map
      (fun freq -> solve_freq ~n ~gint ~cint ~gmid ~cmid ~rhs_i ~rhs_c ~out_idx freq)
      freqs
  in
  let missing = Array.fold_left (fun acc r -> if r = None then acc + 1 else acc) 0 resp in
  if missing > 0 then
    note
      (Printf.sprintf "AC interval solve unverified at %d of %d frequencies"
         missing (Array.length freqs));
  let m = measures ~freqs resp in
  if m.m_fu = None then note "0 dB crossing not provably bracketed";
  if m.m_fu <> None && m.m_pm = None then
    note "phase enclosure unavailable over the crossing bracket";
  { gain_db = m.m_gain; unity_gain_hz = m.m_fu; pm_deg = m.m_pm }

let analyse_circuit ?(k_sigma = 3.) ?(spec = Variation.default_spec) ~window
    ~freqs ~out circuit =
  let notes = ref [] in
  let note s = notes := s :: !notes in
  (* per-slice analyses repeat the same complaint; collapse duplicates
     (order-preserving) with a count *)
  let dedup ns =
    let seen = Hashtbl.create 8 in
    let order =
      List.filter
        (fun n ->
          if Hashtbl.mem seen n then false
          else begin
            Hashtbl.add seen n ();
            true
          end)
        ns
    in
    List.map
      (fun n ->
        let c = List.length (List.filter (( = ) n) ns) in
        if c > 1 then Printf.sprintf "%s (x%d)" n c else n)
      order
  in
  let finish ?(dc = false) ?(devices = []) ?(enclosure = empty_enclosure)
      ?(slices = []) () =
    {
      verdict = verdict_of window enclosure;
      enclosure;
      dc_verified = dc;
      devices;
      slices;
      notes = dedup (List.rev !notes);
    }
  in
  try
    let layout = Mna.layout circuit in
    let lin = assemble_linear_dc circuit layout ~gmin:1e-12 in
    let need_n = has_polarity circuit Mosfet.Nmos in
    let need_p = has_polarity circuit Mosfet.Pmos in
    (* verify one slice: Newton at the slice's re-centred models, then the
       parametric Krawczyk over the slice's parameter sub-box *)
    let verify slice =
      let moses = mos_entries ~k:k_sigma ~spec ~slice circuit in
      let shifted = shift_circuit circuit slice in
      match Dcop.solve_with_retry shifted with
      | Error e -> Error ("per-slice DC solve failed: " ^ Dcop.error_to_string e)
      | Ok sol -> (
          match
            krawczyk shifted layout ~lin ~moses ~k:k_sigma ~spec ~slice
              ~x0:sol.Dcop.x
          with
          | None -> Error "Krawczyk operator did not contract"
          | Some xbox -> Ok (slice, moses, xbox))
    in
    (* verify every slice of an m x m grid; Error carries the first
       failure, tagged with the level *)
    let attempt m =
      let slices = slice_grid ~k:k_sigma ~spec ~need_n ~need_p m in
      let results = List.map verify slices in
      match
        List.find_map (function Error e -> Some e | Ok _ -> None) results
      with
      | None ->
          Ok (List.map (function Ok v -> v | Error _ -> assert false) results)
      | Some err ->
          Error
            (Printf.sprintf
               "%s at %dx global-Vth subdivision: no verified DC enclosure" err
               m)
    in
    (* turn one verified level into (devices, enclosure, slices, notes);
       notes stay local so abandoned levels leave no trace *)
    let realise verified =
      let lnotes = ref [] in
      let note s = lnotes := s :: !lnotes in
      let slices = List.map (fun (s, _, _) -> (s.s_n, s.s_p)) verified in
      let per_slice_iops =
        List.map
          (fun (_, moses, xbox) ->
            List.map (fun e -> (e, fst (mos_iop_at e xbox))) moses)
          verified
      in
      (* D-proofs must hold over the union of slices: hull each device's
         interval operating point before judging it *)
      let devices =
        match per_slice_iops with
        | [] -> []
        | first :: _ ->
            List.mapi
              (fun i (e, _) ->
                let ops =
                  List.map (fun sl -> snd (List.nth sl i)) per_slice_iops
                in
                proof_of k_sigma e (merge_device_iops ops))
              first
      in
      let enclosure =
        if Array.length freqs = 0 then begin
          note "no AC sweep requested: D-codes only";
          empty_enclosure
        end
        else begin
          let nc = Circuit.node_count circuit in
          let out_node = Circuit.node circuit out in
          if out_node = Device.ground || out_node > nc then begin
            note (Printf.sprintf "AC probe node %s unknown or ground" out);
            empty_enclosure
          end
          else
            (* each slice gets its own AC enclosure (tighter small-signal
               intervals); any sample lives in some slice, so the hull
               encloses them all *)
            match
              List.map
                (fun iops ->
                  ac_enclosures circuit layout ~iops ~freqs
                    ~out_idx:(out_node - 1) ~note)
                per_slice_iops
            with
            | [] -> empty_enclosure
            | e0 :: rest -> List.fold_left hull_enclosure e0 rest
        end
      in
      (devices, enclosure, slices, List.rev !lnotes)
    in
    (* escalate the global-Vth subdivision until every slice verifies AND
       the AC enclosure is usable: a coarse grid can pass the DC Krawczyk
       yet leave small-signal intervals too wide to bracket the 0 dB
       crossing, where a finer grid succeeds -- but a coarse usable
       answer is still better than a deeper level that fails DC *)
    let rec ladder = function
      | [] -> assert false
      | m :: rest -> (
          match attempt m with
          | Error err -> if rest = [] then Error err else ladder rest
          | Ok verified ->
              let ((_, enclosure, _, _) as r) = realise verified in
              let usable =
                Array.length freqs = 0
                || (enclosure.gain_db <> None && enclosure.pm_deg <> None)
              in
              if usable || rest = [] then Ok r
              else (
                match ladder rest with Ok deeper -> Ok deeper | Error _ -> Ok r)
          )
    in
    let levels = if need_n || need_p then [ 1; 2; 4; 8 ] else [ 1 ] in
    match ladder levels with
    | Error msg ->
        note msg;
        finish ()
    | Ok (devices, enclosure, slices, lnotes) ->
        List.iter note lnotes;
        finish ~dc:true ~devices ~enclosure ~slices ()
  with
  | Lu.Singular _ ->
      note "linear solve hit a singular pivot";
      finish ()
  | Invalid_argument m ->
      note ("analysis degraded: " ^ m);
      finish ()
  | Failure m ->
      note ("analysis degraded: " ^ m);
      finish ()
  | Not_found ->
      note "analysis degraded: missing layout entry";
      finish ()

(* ---------- diagnostics rendering ---------- *)

let ostr = function Some i -> I.to_string i | None -> "unbounded"

let diagnostics ?file ?origin ?y_span ?(emit_verdict = true) ~subject ~window
    report =
  let dev_span name =
    match origin with
    | None -> None
    | Some (o : Elab.origin) ->
        Option.map Diagnostic.span_of_ast (Hashtbl.find_opt o.Elab.devices name)
  in
  let dcodes =
    if not report.dc_verified then
      [
        Diagnostic.make ?file ?span:y_span ~code:"D003"
          ~severity:Diagnostic.Warning ~subject
          (Printf.sprintf
             "no verified DC operating-point enclosure for the variation box%s"
             (match report.notes with [] -> "" | n :: _ -> ": " ^ n));
      ]
    else
      List.map
        (fun p ->
          if p.proved then
            Diagnostic.make ?file ?span:(dev_span p.device) ~code:"D001"
              ~severity:Diagnostic.Info ~subject:p.device
              ("provably in saturation across the variation box: " ^ p.detail)
          else
            Diagnostic.make ?file ?span:(dev_span p.device) ~code:"D002"
              ~severity:Diagnostic.Warning ~subject:p.device
              ("not provably in saturation across the variation box: " ^ p.detail))
        report.devices
  in
  let ycode =
    if not emit_verdict then []
    else begin
      let enc = report.enclosure in
      let evidence =
        Printf.sprintf
          "gain %s dB, PM %s deg, unity-gain %s Hz vs window (gain >= %g dB, PM >= %g deg)"
          (ostr enc.gain_db) (ostr enc.pm_deg) (ostr enc.unity_gain_hz)
          window.min_gain_db window.min_pm_deg
      in
      let related =
        List.filter_map
          (fun p ->
            if p.proved then None
            else
              Option.map
                (fun s ->
                  {
                    Diagnostic.rel_file = None;
                    rel_span = s;
                    note = p.device ^ ": " ^ p.detail;
                  })
                (dev_span p.device))
          report.devices
      in
      let code, severity, text =
        match report.verdict with
        | Provably_fail ->
            ( "Y001",
              Diagnostic.Warning,
              "every sample in the variation box provably misses the spec window (yield 0): "
              ^ evidence )
        | Provably_pass ->
            ( "Y002",
              Diagnostic.Info,
              "spec window provably met across the truncated variation box: "
              ^ evidence )
        | Undecided ->
            ( "Y003",
              Diagnostic.Info,
              Printf.sprintf "corner verdict undecided: %s%s" evidence
                (match report.notes with
                | [] -> ""
                | ns -> " (" ^ String.concat "; " ns ^ ")") )
      in
      [ Diagnostic.make ?file ?span:y_span ~related ~code ~severity ~subject text ]
    end
  in
  dcodes @ ycode

(* ---------- file entry point ---------- *)

let default_window = { min_gain_db = 0.; min_pm_deg = 0. }

let n000 ~path ?span message =
  Diagnostic.make ~file:path ?span ~code:"N000" ~severity:Diagnostic.Error
    ~subject:path message

let check_file ?k_sigma ?spec ?(window = default_window) path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> [ n000 ~path msg ]
  | text -> (
      match Parser.parse text with
      | exception Ast.Parse_error { span; message } ->
          [ n000 ~path ~span:(Diagnostic.span_of_ast span) message ]
      | exception Failure message -> [ n000 ~path message ]
      | ast -> (
          let origin = Elab.create_origin () in
          match Elab.elaborate ~origin ast with
          | exception Ast.Parse_error { span; message } ->
              [ n000 ~path ~span:(Diagnostic.span_of_ast span) message ]
          | exception Failure message -> [ n000 ~path message ]
          | circuit, analyses -> (
              let ac_card =
                List.find_map
                  (fun (a, span) ->
                    match a with
                    | Elab.Ac_analysis { per_decade; f_lo; f_hi; out } ->
                        Some (per_decade, f_lo, f_hi, out, span)
                    | Elab.Op | Elab.Tran_analysis _ | Elab.Dc_analysis _ -> None)
                  analyses
              in
              match ac_card with
              | None ->
                  let report =
                    analyse_circuit ?k_sigma ?spec ~window ~freqs:[||] ~out:"0"
                      circuit
                  in
                  diagnostics ~file:path ~origin ~emit_verdict:false
                    ~subject:(Filename.basename path) ~window report
              | Some (per_decade, f_lo, f_hi, out, span) ->
                  let freqs =
                    try Ac.default_freqs ~per_decade ~f_lo ~f_hi ()
                    with Invalid_argument _ -> [||]
                  in
                  let report =
                    analyse_circuit ?k_sigma ?spec ~window ~freqs ~out circuit
                  in
                  diagnostics ~file:path ~origin
                    ~y_span:(Diagnostic.span_of_ast span) ~subject:out ~window
                    report)))
