(** Table-model lint: validate [.tbl] data before a spline ever sees it.

    Codes:
    - [T001] (error) unreadable or malformed [.tbl] file
    - [T002] (error) NaN or infinite cell
    - [T003] (error) axis column not strictly increasing (duplicate or
      decreasing abscissa — cubic-spline knots must be distinct and sorted)
    - [T004] (error) malformed control string, or token count inconsistent
      with the axis count
    - [T005] (error) fewer than two data rows (nothing to interpolate)
    - [T006] (warning) duplicate column name (column lookup is by name;
      later duplicates are unreachable)
    - [T007] (warning) spec point outside the table domain — under an
      ["E"]-policy control (the paper's ["3E"]) the query would be rejected
      at runtime instead of extrapolated *)

val check :
  ?file:string ->
  ?axes:string list ->
  ?control:string ->
  Yield_table.Tbl_io.table ->
  Diagnostic.t list
(** [axes] names the columns that serve as interpolation abscissae (default:
    the first column); each must exist, be strictly increasing, and agree
    with [control]'s token count when [control] is given. *)

val check_file :
  ?axes:string list -> ?control:string -> string -> Diagnostic.t list
(** Read the file, then {!check}; IO/parse failures become a [T001] error
    diagnostic. *)

val spec_coverage :
  ?file:string ->
  control:string ->
  axis:string ->
  lo:float ->
  hi:float ->
  query:float ->
  unit ->
  Diagnostic.t list
(** The no-extrapolation coverage check: empty when [query] lies inside
    [[lo, hi]], or when [control]'s first token extrapolates (clamp/linear);
    a [T007] warning when an ["E"] policy would reject the query. *)
