module Json = Yield_obs.Json

let schema_uri = "https://json.schemastore.org/sarif-2.1.0.json"

let sarif_version = "2.1.0"

(* one line per stable code; the authoritative prose lives in README.md and
   the .mli of the pass that owns the family *)
let rule_descriptions =
  [
    ("N000", "netlist file unreadable or unparseable");
    ("N001", "node referenced by only one device terminal");
    ("N002", "node with no DC path to ground (singular MNA system)");
    ("N003", "voltage sources forming a loop (singular MNA system)");
    ("N004", "MOSFET with non-positive geometry");
    ("N005", "resistor with non-positive resistance");
    ("N006", "capacitor with negative capacitance");
    ("N007", "MOSFET below the technology's minimum channel length");
    ("N008", "symmetric pair with mismatched geometry");
    ("N009", "duplicate device name in one scope");
    ("N010", "instantiation of an undefined .subckt");
    ("N011", ".subckt defined but never instantiated");
    ("N012", "X-instance connection count differing from the port count");
    ("N013", ".param assigned but never referenced");
    ("N014", ".param assignment shadowing an earlier one");
    ("T001", "table file unreadable or malformed");
    ("T002", "non-finite table cell");
    ("T003", "axis column not strictly increasing");
    ("T004", "malformed or inconsistent table-model control string");
    ("T005", "too few data rows to interpolate");
    ("T006", "duplicate table column name");
    ("T007", "spec point outside the table domain under an E policy");
    ("C001", "non-positive GA/MC scale field");
    ("C002", "mc_samples at or below the degradation threshold");
    ("C003", "front_stride leaving two or fewer front points");
    ("C004", "malformed table-model control string in config");
    ("C005", "checkpoint dry-run failure");
    ("C006", "jobs below 1 or above the recommended domain count");
    ("C007", "unknown solver name, or csr on a tiny system");
    ("F001", "unparseable fault spec");
    ("F002", "fault spec naming an unknown injection point");
    ("F003", "fault schedule that can never fire");
    ("A001", ".ac analysis with no AC-excited source");
    ("A002", ".ac output node unknown or ground");
    ("A003", ".ac output node unreachable from every AC-excited source");
    ("A004", "malformed .ac sweep");
    ("A005", ".ac sweep provably disjoint from the circuit's pole band");
    ("R001", "degenerate .tran card");
    ("R002", ".tran timestep provably overstepping the fastest time constant");
    ("R003", ".tran analysis with no time-varying stimulus");
    ("R004", ".tran output node unknown");
    ("V000", "Verilog-A file unreadable or unparseable");
    ("V001", "port, direction or discipline inconsistency");
    ("V002", "malformed $table_model call");
    ("V003", "unparseable table-model control string");
    ("V004", "query arity disagreeing with the control token count");
    ("V005", "referenced table missing, malformed or mis-shaped");
    ("V006", "query window not provably inside the sampled table domain");
    ("V007", "use of an unassigned or undeclared identifier");
    ("V008", "variable declared but never read");
    ("D001", "MOSFET provably in saturation across the variation box");
    ("D002", "MOSFET not provably in saturation across the variation box");
    ("D003", "no verified DC operating-point enclosure for the variation box");
    ("Y001", "spec window provably missed across the variation box (yield 0)");
    ("Y002", "spec window provably met across the truncated variation box");
    ("Y003", "corner verdict undecided (enclosure straddles the spec window)");
  ]

let level_of_severity = function
  | Diagnostic.Error -> "error"
  | Diagnostic.Warning -> "warning"
  | Diagnostic.Info -> "note"

let rule json_code =
  let text =
    match List.assoc_opt json_code rule_descriptions with
    | Some d -> d
    | None -> "yieldlab preflight finding"
  in
  Json.Obj
    [
      ("id", Json.String json_code);
      ("shortDescription", Json.Obj [ ("text", Json.String text) ]);
    ]

let location (d : Diagnostic.t) =
  match d.Diagnostic.file with
  | None -> []
  | Some file ->
      let physical =
        ("artifactLocation", Json.Obj [ ("uri", Json.String file) ])
        ::
        (match (d.Diagnostic.span, d.Diagnostic.line) with
        | Some s, _ ->
            [
              ( "region",
                Json.Obj
                  [
                    ("startLine", Json.Int s.Diagnostic.start_line);
                    ("startColumn", Json.Int s.Diagnostic.start_col);
                    ("endLine", Json.Int s.Diagnostic.end_line);
                    ("endColumn", Json.Int s.Diagnostic.end_col);
                  ] );
            ]
        | None, Some line ->
            [ ("region", Json.Obj [ ("startLine", Json.Int line) ]) ]
        | None, None -> [])
      in
      [
        ( "locations",
          Json.List [ Json.Obj [ ("physicalLocation", Json.Obj physical) ] ] );
      ]

(* secondary spans (N009's first definition, a D-code's device card) become
   SARIF relatedLocations so viewers can jump to both ends of the finding *)
let related_locations (d : Diagnostic.t) =
  match d.Diagnostic.related with
  | [] -> []
  | rs ->
      let one (r : Diagnostic.related) =
        let file =
          match (r.Diagnostic.rel_file, d.Diagnostic.file) with
          | Some f, _ -> Some f
          | None, f -> f
        in
        match file with
        | None -> None
        | Some file ->
            let s = r.Diagnostic.rel_span in
            Some
              (Json.Obj
                 [
                   ( "physicalLocation",
                     Json.Obj
                       [
                         ( "artifactLocation",
                           Json.Obj [ ("uri", Json.String file) ] );
                         ( "region",
                           Json.Obj
                             [
                               ("startLine", Json.Int s.Diagnostic.start_line);
                               ("startColumn", Json.Int s.Diagnostic.start_col);
                               ("endLine", Json.Int s.Diagnostic.end_line);
                               ("endColumn", Json.Int s.Diagnostic.end_col);
                             ] );
                       ] );
                   ( "message",
                     Json.Obj [ ("text", Json.String r.Diagnostic.note) ] );
                 ])
      in
      begin
        match List.filter_map one rs with
        | [] -> []
        | locs -> [ ("relatedLocations", Json.List locs) ]
      end

let result ~suppressed (d : Diagnostic.t) =
  Json.Obj
    ([
       ("ruleId", Json.String d.Diagnostic.code);
       ("level", Json.String (level_of_severity d.Diagnostic.severity));
       ( "message",
         Json.Obj
           [
             ( "text",
               Json.String
                 (Printf.sprintf "[%s] %s" d.Diagnostic.subject
                    d.Diagnostic.message) );
           ] );
       ( "partialFingerprints",
         Json.Obj [ ("yieldlab/v1", Json.String (Baseline.fingerprint d)) ] );
     ]
    @ location d
    @ related_locations d
    @
    if suppressed then
      [
        ( "suppressions",
          Json.List [ Json.Obj [ ("kind", Json.String "external") ] ] );
      ]
    else [])

let render ?(tool_version = "") ?(suppressed = []) diags =
  let all = Diagnostic.sort diags @ Diagnostic.sort suppressed in
  let codes =
    List.sort_uniq String.compare (List.map (fun d -> d.Diagnostic.code) all)
  in
  let driver =
    [ ("name", Json.String "yieldlab") ]
    @ (if tool_version <> "" then
         [ ("version", Json.String tool_version) ]
       else [])
    @ [ ("rules", Json.List (List.map rule codes)) ]
  in
  Json.Obj
    [
      ("$schema", Json.String schema_uri);
      ("version", Json.String sarif_version);
      ( "runs",
        Json.List
          [
            Json.Obj
              [
                ("tool", Json.Obj [ ("driver", Json.Obj driver) ]);
                ( "results",
                  Json.List
                    (List.map (result ~suppressed:false) (Diagnostic.sort diags)
                    @ List.map (result ~suppressed:true)
                        (Diagnostic.sort suppressed)) );
              ];
          ] );
    ]

let save ?tool_version ?suppressed ~path diags =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (Json.to_string (render ?tool_version ?suppressed diags) ^ "\n"))
