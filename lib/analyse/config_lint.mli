(** Config and flow preflight: cross-field validation of the flow's
    configuration, a checkpoint-fingerprint dry-run, and static validation
    of [--fault-spec] strings — everything that can doom a multi-hour run
    and is knowable before the first simulation.

    The pass works on a {!view} (a plain projection of
    [Yield_core.Config.t]) so this library stays below [yield_core] in the
    dependency order and [Flow.run] can call it as its preflight stage.

    Codes:
    - [C001] (error) non-positive GA/MC scale field
    - [C002] mc_samples vs. the degradation threshold: below
      {!min_valid_mc_samples} every front point is skipped and the flow is
      guaranteed to starve (error); below four times it, a realistic
      failure rate starves it (warning)
    - [C003] (warning) front_stride so large that two or fewer front points
      can be analysed — the variation model needs at least two
    - [C004] (error) malformed table-model control string
    - [C006] jobs below 1 (error: there is no zero-domain execution), or
      above [Domain.recommended_domain_count] (warning: over-subscription
      contends for cores instead of adding throughput)
    - [C005] checkpoint dry-run: fingerprint mismatch (error), resumable
      state present without [--resume] (info: it will be discarded)
    - [C007] solver name not known to
      {!Yield_numeric.Linsys.backend_of_string} (error), or [csr] requested
      on a system smaller than {!csr_min_size} unknowns (warning: symbolic
      overhead dominates, dense is faster)
    - [F001] (error) unparseable [--fault-spec]
    - [F002] (error) fault-spec names an unknown injection point — the
      schedule would silently never fire
    - [F003] (warning) schedule that can never fire ([rate=0]) *)

type view = {
  population : int;
  generations : int;
  mc_samples : int;
  front_stride : int;
  control : string;
  seed : int;
  jobs : int;
  solver : string;
      (** raw [--solver] / [YIELDLAB_SOLVER] name, unvalidated by [Config] *)
  system_size : int option;
      (** MNA unknown count of the testbench when the caller has built it
          (the flow preflight has; a bare config lint has not) *)
  fingerprint : string;
}

val min_valid_mc_samples : int
(** The flow's degradation threshold (8): a front point whose Monte Carlo
    batch keeps fewer valid samples is skipped.  [Flow] reads it from here
    so the linter and the runtime can never disagree. *)

val csr_min_size : int
(** Below this many unknowns the csr backend's per-topology symbolic
    analysis outweighs any per-sample gain; C007 warns. *)

val check : ?checkpoint_dir:string -> ?resume:bool -> view -> Diagnostic.t list

val check_fault_spec : ?known:string list -> string -> Diagnostic.t list
(** [known] defaults to {!Yield_resilience.Fault.known} — every injection
    point registered in the running program. *)
