(** Netlist lint: predict {!Yield_spice.Dcop} failures statically.

    Runs the connectivity analysis of {!Yield_spice.Topology} plus per-device
    value checks over a built {!Yield_spice.Circuit}, in milliseconds —
    before the flow burns thousands of transistor-level evaluations on a
    netlist that can only produce singular MNA systems.

    Codes:
    - [N001] (warning) node referenced by exactly one device terminal
    - [N002] (error) node has no DC path to ground — {!Yield_spice.Dcop}
      fails this circuit with [Singular_system]
    - [N003] (error) voltage-source loop — likewise [Singular_system]
    - [N004] (error) MOSFET with non-positive W or L —
      {!Yield_spice.Mosfet.eval} raises on it
    - [N005] (error) non-positive resistance (stamps an infinite
      conductance)
    - [N006] (error) negative capacitance
    - [N007] (warning) MOSFET W or L below the technology's minimum channel
      length
    - [N008] (warning) symmetric-pair W/L mismatch (OTA/Miller topology
      invariant) *)

val check :
  ?file:string ->
  ?tech:Yield_process.Tech.t ->
  ?pairs:(string * string) list ->
  Yield_spice.Circuit.t ->
  Diagnostic.t list
(** [tech] enables the N007 range check; [pairs] names device pairs (e.g.
    [("M3", "M4")]) whose W and L must match exactly — a pair name matches a
    device called exactly that or with any [<prefix>.] in front (netlist
    subcircuit and builder prefixes).  A pair with fewer than two matching
    MOSFETs is skipped. *)

val check_file :
  ?tech:Yield_process.Tech.t ->
  ?pairs:(string * string) list ->
  string ->
  Diagnostic.t list
(** Read and parse a netlist file, then {!check}.  Unreadable files and
    parse errors come back as a single [N000] error diagnostic carrying the
    file/line context instead of raising. *)
