(** Netlist lint: predict {!Yield_spice.Dcop} failures statically.

    Two layers, run together by {!check_file}:

    - {!check_ast} walks the typed {!Yield_spice.Netlist_ast.t} before
      elaboration, so hierarchy and parameter problems are reported at the
      card that wrote them — with a precise source span — instead of after
      flattening (or not at all, when elaboration refuses the deck).
    - {!check} runs the connectivity analysis of {!Yield_spice.Topology}
      plus per-device value checks over the built {!Yield_spice.Circuit},
      in milliseconds — before the flow burns thousands of transistor-level
      evaluations on a netlist that can only produce singular MNA systems.
      With an [origin] provenance table from {!Yield_spice.Netlist_elab},
      circuit-level findings carry the span of the card (or first node
      reference) they are about.

    Circuit codes:
    - [N001] (warning) node referenced by exactly one device terminal
    - [N002] (error) node has no DC path to ground — {!Yield_spice.Dcop}
      fails this circuit with [Singular_system]
    - [N003] (error) voltage-source loop — likewise [Singular_system]
    - [N004] (error) MOSFET with non-positive W or L —
      {!Yield_spice.Mosfet.eval} raises on it
    - [N005] (error) non-positive resistance (stamps an infinite
      conductance)
    - [N006] (error) negative capacitance
    - [N007] (warning) MOSFET W or L below the technology's minimum channel
      length
    - [N008] (warning) symmetric-pair W/L mismatch (OTA/Miller topology
      invariant)

    AST codes:
    - [N009] (error) duplicate device name in one scope (top level or one
      [.subckt] body) — the message points at the first definition
    - [N010] (error) [X] instance of an undefined [.subckt]
    - [N011] (warning) [.subckt] defined but never instantiated
    - [N012] (error) [X] instance whose connection count differs from the
      [.subckt]'s port count, reported at the instantiation site
    - [N013] (warning) [.param] assigned but never referenced by any value
      expression
    - [N014] (warning) [.param] re-assignment shadowing an earlier one *)

val check :
  ?file:string ->
  ?origin:Yield_spice.Netlist_elab.origin ->
  ?tech:Yield_process.Tech.t ->
  ?pairs:(string * string) list ->
  Yield_spice.Circuit.t ->
  Diagnostic.t list
(** [origin] (from {!Yield_spice.Netlist_elab.elaborate}) maps flattened
    device and node names back to source spans; [tech] enables the N007
    range check; [pairs] names device pairs (e.g. [("M3", "M4")]) whose W
    and L must match exactly — a pair name matches a device called exactly
    that or with any [<prefix>.] in front (netlist subcircuit and builder
    prefixes).  A pair with fewer than two matching MOSFETs is skipped. *)

val check_ast : ?file:string -> Yield_spice.Netlist_ast.t -> Diagnostic.t list
(** The pre-elaboration checks (N009–N014).  Every finding carries a span. *)

val check_file :
  ?tech:Yield_process.Tech.t ->
  ?pairs:(string * string) list ->
  string ->
  Diagnostic.t list
(** Read, parse ({!check_ast}), elaborate and {!check} a netlist file.
    Unreadable files and parse errors come back as a single [N000] error
    diagnostic carrying file, line and column instead of raising; when
    elaboration fails but an AST-level error already explains why (undefined
    subckt, arity mismatch, duplicate device), the N000 is suppressed in
    favour of the precise findings. *)
