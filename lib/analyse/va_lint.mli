(** Verilog-A module lint over the {!Yield_behavioural.Verilog_a} AST.

    Codes:
    - [V000] (error)   unreadable or unparseable [.va] file
    - [V001] (error)   port/direction/discipline inconsistency (missing
                       discipline on a port is a warning)
    - [V002] (error)   malformed [$table_model] call shape
    - [V003] (error)   control string that {!Yield_table.Control.parse}
                       rejects
    - [V004] (error)   query arity disagreeing with the control token count
    - [V005] (error)   referenced [.tbl] missing, malformed, or with too few
                       columns for the call's arity (readable tables also
                       get the full {!Table_lint} pass, reported under their
                       own [T] codes against the table path)
    - [V006] (warning) a query window that the interval evaluation cannot
                       prove inside the sampled axis domain, under an ["E"]
                       (reject out-of-range) control policy
    - [V007] (error)   identifier read before assignment, read or assigned
                       without declaration, or a parameter assigned
    - [V008] (warning) variable declared but never read

    [V006] runs a small abstract interpretation of the analog block:
    parameters start at their spec window ([specs]) or declared default,
    assignments propagate outward-rounded intervals ({!Interval}), and
    [$table_model] results are approximated by the hull of the sampled
    output column.  The emitted module re-ingested with the windows it was
    built for lints clean. *)

val check :
  ?file:string ->
  ?dir:string ->
  ?specs:(string * (float * float)) list ->
  Yield_behavioural.Verilog_a.source ->
  Diagnostic.t list
(** [dir] is where referenced [.tbl] files live; without it, table-content
    checks (V005/V006 and the T pass) are skipped.  [specs] maps parameter
    names to the [lo, hi] window the model must serve (e.g.
    [("gain", (50., 60.))]). *)

val check_file :
  ?dir:string ->
  ?specs:(string * (float * float)) list ->
  string ->
  Diagnostic.t list
(** Read, parse and {!check} one [.va] file; [dir] defaults to the file's
    directory. *)
