(** Preflight diagnostics: stable codes, severities, renderers.

    Every finding any lint pass can produce carries a stable code — [Nxxx]
    for netlist checks, [Txxx] for table-model checks, [Cxxx]/[Fxxx] for
    config and fault-spec checks — so scripts, CI jobs and golden tests can
    match on codes while messages stay free to improve.  The catalogue lives
    in README.md §"Preflight static analysis"; codes are never reused or
    renumbered, only retired. *)

type severity = Info | Warning | Error

type span = {
  start_line : int;
  start_col : int;
  end_line : int;
  end_col : int;
}
(** A source region: 1-based line and column, [end_col] one past the last
    character (the SARIF convention). *)

type related = {
  rel_file : string option;  (** defaults to the finding's own file *)
  rel_span : span;
  note : string;  (** what this span is, e.g. ["first definition"] *)
}
(** A secondary source location a finding refers to — the first definition a
    duplicate shadows, the device whose operating region breaks a proof.
    Rendered as SARIF [relatedLocations] and as the lint-JSON ["related"]
    array (omitted when empty, so old reports are unchanged). *)

type t = {
  code : string;  (** stable, e.g. ["N002"] *)
  severity : severity;
  subject : string;  (** node/device/column/field the finding is about *)
  message : string;
  file : string option;  (** source file, when linting one *)
  line : int option;  (** 1-based, when known; [span]'s start line if set *)
  span : span option;  (** precise source region, when the pass knows one *)
  related : related list;  (** secondary locations, possibly empty *)
}

val span_of_ast : Yield_spice.Netlist_ast.span -> span
(** Convert a frontend span (same shape, different module). *)

val make :
  ?file:string -> ?line:int -> ?span:span -> ?related:related list ->
  code:string -> severity:severity -> subject:string -> string -> t
(** When [span] is given and [line] is not, [line] defaults to the span's
    start line, so line-oriented consumers keep working.  [related] defaults
    to empty. *)

val severity_to_string : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val compare : t -> t -> int
(** Worst severity first, then code, then subject — the rendering order. *)

val sort : t list -> t list

val worst : t list -> severity option
(** [None] for an empty list. *)

val exit_code : t list -> int
(** Worst-severity process exit: 2 with any error, 1 with any warning,
    0 otherwise (info-only lists are clean). *)

val count : severity -> t list -> int

val to_text : t -> string
(** ["file:12:5: error N002 [g]: node g has no DC path to ground"] with a
    span, ["file:12: ..."] with only a line. *)

val list_to_text : t list -> string
(** Sorted findings one per line, followed by a summary line. *)

val to_json : t -> Yield_obs.Json.t

val list_to_json : t list -> Yield_obs.Json.t
(** [{"version": 2, "findings": [...], "errors": n, "warnings": n,
    "infos": n, "worst": "error"|"warning"|"info"|null}] with findings
    sorted; each finding carries a ["span"] object (or [null]) next to
    ["line"].  The schema is documented in [docs/lint-json-schema.json];
    [version] is bumped on any incompatible change. *)
