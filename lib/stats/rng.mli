(** Deterministic pseudo-random number generation.

    Every stochastic stage of the flow (GA, Monte Carlo, mismatch sampling)
    takes an explicit [Rng.t] so that runs are reproducible and independent
    streams can be split off for parallel-in-spirit subtasks without
    correlations.  The generator is xoshiro256++ seeded through splitmix64. *)

type t

val create : int -> t
(** [create seed] builds a generator from an integer seed; equal seeds give
    equal streams. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator and advances
    [t].  Used to give each Monte Carlo sample / GA island its own stream. *)

val copy : t -> t

type state = {
  s0 : int64;
  s1 : int64;
  s2 : int64;
  s3 : int64;
  cached_gaussian : float option;
      (** the unemitted second Box–Muller deviate, if any — without it a
          restored stream would diverge at the next [gaussian] call *)
}
(** A complete, serialisable snapshot of a generator.  Used by the
    checkpoint/resume machinery: restoring the state continues the stream
    bit-identically. *)

val save : t -> state

val restore : t -> state -> unit
(** Overwrite [t] in place with the saved state. *)

val of_state : state -> t

val uint64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1) with 53-bit resolution. *)

val uniform : t -> float -> float -> float
(** [uniform t a b] is uniform in [a, b). *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n).  @raise Invalid_argument if [n <= 0]. *)

val bool : t -> bool

val gaussian : t -> float
(** Standard normal deviate (Box–Muller, one value per call, cached pair). *)

val normal : t -> mean:float -> sigma:float -> float

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element.  @raise Invalid_argument on empty array. *)
