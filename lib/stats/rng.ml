(* xoshiro256++ by Blackman & Vigna (public domain reference implementation),
   seeded via splitmix64 so that small integer seeds still give
   well-distributed initial state. *)

type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable cached_gaussian : float option;
}

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3; cached_gaussian = None }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let uint64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  (* derive a child stream by hashing fresh output through splitmix64 *)
  let state = ref (uint64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3; cached_gaussian = None }

let copy t = { t with cached_gaussian = t.cached_gaussian }

let float t =
  (* take the top 53 bits *)
  let bits = Int64.shift_right_logical (uint64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let uniform t a b = a +. ((b -. a) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* rejection-free for our purposes: 53-bit float scaled; n is always far
     below 2^53 in this library *)
  Stdlib.int_of_float (float t *. Stdlib.float_of_int n)

let bool t = Int64.logand (uint64 t) 1L = 1L

let gaussian t =
  match t.cached_gaussian with
  | Some g ->
      t.cached_gaussian <- None;
      g
  | None ->
      (* Box–Muller on (0,1] uniforms to avoid log 0 *)
      let u1 = 1. -. float t in
      let u2 = float t in
      let r = sqrt (-2. *. log u1) in
      let theta = 2. *. Float.pi *. u2 in
      t.cached_gaussian <- Some (r *. sin theta);
      r *. cos theta

let normal t ~mean ~sigma = mean +. (sigma *. gaussian t)

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

(* serialisable snapshot for checkpoint/resume; defined last so its fields
   do not shadow [t]'s in the functions above *)
type state = {
  s0 : int64;
  s1 : int64;
  s2 : int64;
  s3 : int64;
  cached_gaussian : float option;
}

let save (t : t) : state =
  {
    s0 = t.s0;
    s1 = t.s1;
    s2 = t.s2;
    s3 = t.s3;
    cached_gaussian = t.cached_gaussian;
  }

let restore (t : t) (s : state) =
  t.s0 <- s.s0;
  t.s1 <- s.s1;
  t.s2 <- s.s2;
  t.s3 <- s.s3;
  t.cached_gaussian <- s.cached_gaussian

let of_state (s : state) : t =
  {
    s0 = s.s0;
    s1 = s.s1;
    s2 = s.s2;
    s3 = s.s3;
    cached_gaussian = s.cached_gaussian;
  }
