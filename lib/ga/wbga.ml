module Metrics = Yield_obs.Metrics

let c_evaluations = Metrics.counter "wbga.evaluations"

let c_infeasible = Metrics.counter "wbga.infeasible"

type objective = { name : string; maximise : bool }

type entry = {
  params : float array;
  objectives : float array;
  weights : float array;
  fitness : float;
}

type result = {
  archive : entry array;
  front : entry array;
  evaluations : int;
  failures : int;
  history : float array;
}

let run ?(config = Ga.default_config) ~param_ranges ~objectives ~rng ~evaluate () =
  let n_obj = Array.length objectives in
  if n_obj = 0 then invalid_arg "Wbga.run: no objectives";
  let encoding = Genome.encoding param_ranges ~n_weights:n_obj in
  let normalizer = Fitness.create n_obj in
  let failures = ref 0 in
  (* orient so that larger is always better inside the normaliser *)
  let oriented raw =
    Array.mapi
      (fun j v -> if objectives.(j).maximise then v else -.v)
      raw
  in
  let score population =
    let raw_results =
      Array.map
        (fun genome ->
          let params = Genome.params encoding genome in
          match evaluate params with
          | Some raw when Array.length raw = n_obj ->
              let o = oriented raw in
              Fitness.observe normalizer o;
              Some (params, raw, o)
          | Some _ -> invalid_arg "Wbga.run: evaluate returned wrong arity"
          | None ->
              incr failures;
              None)
        population
    in
    (* second pass: fitness under the bounds updated by the whole batch *)
    Array.map2
      (fun genome result ->
        let weights = Genome.weights encoding genome in
        match result with
        | Some (params, raw, o) ->
            let fitness = Fitness.weighted_sum normalizer ~weights o in
            (Some { params; objectives = raw; weights; fitness }, fitness)
        | None -> (None, neg_infinity))
      population raw_results
  in
  let ga_result = Ga.run config encoding rng ~score in
  Metrics.add c_evaluations ga_result.Ga.evaluations;
  Metrics.add c_infeasible !failures;
  let archive =
    Array.of_list
      (List.filter_map
         (fun (e : _ Ga.evaluated) -> e.Ga.payload)
         (Array.to_list ga_result.Ga.archive))
  in
  let points = Array.map (fun e -> e.objectives) archive in
  let maximise = Array.map (fun o -> o.maximise) objectives in
  let front_indices =
    if n_obj = 2 && Array.for_all Fun.id maximise then Pareto.front_2d points
    else Pareto.non_dominated ~maximise points
  in
  let front = Array.of_list (List.map (fun i -> archive.(i)) front_indices) in
  Array.sort (fun a b -> Float.compare a.objectives.(0) b.objectives.(0)) front;
  {
    archive;
    front;
    evaluations = ga_result.Ga.evaluations;
    failures = !failures;
    history = ga_result.Ga.history;
  }
