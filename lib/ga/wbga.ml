module Metrics = Yield_obs.Metrics
module Json = Yield_obs.Json
module Codec = Yield_resilience.Codec
module Pool = Yield_exec.Pool

let c_evaluations = Metrics.counter "wbga.evaluations"

let c_infeasible = Metrics.counter "wbga.infeasible"

type objective = { name : string; maximise : bool }

type entry = {
  params : float array;
  objectives : float array;
  weights : float array;
  fitness : float;
}

type result = {
  archive : entry array;
  front : entry array;
  evaluations : int;
  failures : int;
  history : float array;
}

type snapshot = {
  ga : entry option Ga.snapshot;
  snap_failures : int;
  normalizer : Fitness.state;
}

let run ?(config = Ga.default_config) ?pool ?checkpoint ?resume ~param_ranges
    ~objectives ~rng ~evaluate () =
  let n_obj = Array.length objectives in
  if n_obj = 0 then invalid_arg "Wbga.run: no objectives";
  let encoding = Genome.encoding param_ranges ~n_weights:n_obj in
  let normalizer = Fitness.create n_obj in
  let failures = ref 0 in
  let prior_evaluations = ref 0 in
  let ga_resume =
    match resume with
    | None -> None
    | Some s ->
        Fitness.restore normalizer s.normalizer;
        failures := s.snap_failures;
        prior_evaluations := s.ga.Ga.snap_evaluations;
        Some s.ga
  in
  (* orient so that larger is always better inside the normaliser *)
  let oriented raw =
    Array.mapi
      (fun j v -> if objectives.(j).maximise then v else -.v)
      raw
  in
  (* Parallel evaluation keeps only the RNG-free [evaluate] calls on the
     pool; everything order-sensitive — normaliser bounds, the failure
     count, archive updates — runs in the deterministic in-order pass
     below, so the [jobs = n] result is bit-identical to the serial one. *)
  let evaluate_population population =
    match pool with
    | Some pool when Pool.jobs pool > 1 && Array.length population > 1 ->
        let params = Array.map (Genome.params encoding) population in
        let raws =
          Pool.map pool ~n:(Array.length population) (fun i ->
              evaluate params.(i))
        in
        Array.map2 (fun p raw -> (p, raw)) params raws
    | Some _ | None ->
        Array.map
          (fun genome ->
            let p = Genome.params encoding genome in
            (p, evaluate p))
          population
  in
  let score population =
    let evaluated = evaluate_population population in
    let raw_results =
      Array.map
        (fun (params, raw) ->
          match raw with
          | Some raw when Array.length raw = n_obj ->
              let o = oriented raw in
              Fitness.observe normalizer o;
              Some (params, raw, o)
          | Some _ -> invalid_arg "Wbga.run: evaluate returned wrong arity"
          | None ->
              incr failures;
              None)
        evaluated
    in
    (* second pass: fitness under the bounds updated by the whole batch *)
    Array.map2
      (fun genome result ->
        let weights = Genome.weights encoding genome in
        match result with
        | Some (params, raw, o) ->
            let fitness = Fitness.weighted_sum normalizer ~weights o in
            (Some { params; objectives = raw; weights; fitness }, fitness)
        | None -> (None, neg_infinity))
      population raw_results
  in
  let on_generation =
    Option.map
      (fun hook ga_snap ->
        hook
          {
            ga = ga_snap;
            snap_failures = !failures;
            normalizer = Fitness.save normalizer;
          })
      checkpoint
  in
  let ga_result = Ga.run ?on_generation ?resume:ga_resume config encoding rng ~score in
  (* the registry counts work done by this process: a resumed run only adds
     its own evaluations, while [result.evaluations] stays cumulative *)
  Metrics.add c_evaluations (ga_result.Ga.evaluations - !prior_evaluations);
  Metrics.add c_infeasible !failures;
  let archive =
    Array.of_list
      (List.filter_map
         (fun (e : _ Ga.evaluated) -> e.Ga.payload)
         (Array.to_list ga_result.Ga.archive))
  in
  let points = Array.map (fun e -> e.objectives) archive in
  let maximise = Array.map (fun o -> o.maximise) objectives in
  let front_indices =
    if n_obj = 2 && Array.for_all Fun.id maximise then Pareto.front_2d points
    else Pareto.non_dominated ~maximise points
  in
  let front = Array.of_list (List.map (fun i -> archive.(i)) front_indices) in
  Array.sort (fun a b -> Float.compare a.objectives.(0) b.objectives.(0)) front;
  {
    archive;
    front;
    evaluations = ga_result.Ga.evaluations;
    failures = !failures;
    history = ga_result.Ga.history;
  }

(* ---------- checkpoint serialisation (bit-exact: Codec floats) ---------- *)

let entry_to_json e =
  Json.Obj
    [
      ("params", Codec.float_array e.params);
      ("objectives", Codec.float_array e.objectives);
      ("weights", Codec.float_array e.weights);
      ("fitness", Codec.float_ e.fitness);
    ]

let entry_of_json j =
  {
    params = Codec.to_float_array (Codec.member "params" j);
    objectives = Codec.to_float_array (Codec.member "objectives" j);
    weights = Codec.to_float_array (Codec.member "weights" j);
    fitness = Codec.to_float (Codec.member "fitness" j);
  }

let evaluated_to_json (e : entry option Ga.evaluated) =
  Json.Obj
    [
      ("genome", Codec.float_array e.Ga.genome);
      ("fitness", Codec.float_ e.Ga.fitness);
      ("entry", Codec.option entry_to_json e.Ga.payload);
    ]

let evaluated_of_json j =
  {
    Ga.genome = Codec.to_float_array (Codec.member "genome" j);
    fitness = Codec.to_float (Codec.member "fitness" j);
    payload = Codec.to_option entry_of_json (Codec.member "entry" j);
  }

let snapshot_to_json s =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("next_generation", Codec.int_ s.ga.Ga.next_generation);
      ("evaluations", Codec.int_ s.ga.Ga.snap_evaluations);
      ("failures", Codec.int_ s.snap_failures);
      ("rng", Codec.rng_state s.ga.Ga.rng_state);
      ("history", Codec.float_array s.ga.Ga.snap_history);
      ("population", Codec.array Codec.float_array s.ga.Ga.population);
      ("archive", Codec.list evaluated_to_json s.ga.Ga.archive_rev);
      ("best", Codec.option evaluated_to_json s.ga.Ga.snap_best);
      ( "normalizer",
        Json.Obj
          [
            ("mins", Codec.float_array s.normalizer.Fitness.mins);
            ("maxs", Codec.float_array s.normalizer.Fitness.maxs);
            ("seen", Codec.int_ s.normalizer.Fitness.seen);
          ] );
    ]

let snapshot_of_json j =
  match
    let norm = Codec.member "normalizer" j in
    {
      ga =
        {
          Ga.next_generation = Codec.to_int (Codec.member "next_generation" j);
          population =
            Codec.to_array Codec.to_float_array (Codec.member "population" j);
          archive_rev = Codec.to_list evaluated_of_json (Codec.member "archive" j);
          snap_best = Codec.to_option evaluated_of_json (Codec.member "best" j);
          snap_history = Codec.to_float_array (Codec.member "history" j);
          snap_evaluations = Codec.to_int (Codec.member "evaluations" j);
          rng_state = Codec.to_rng_state (Codec.member "rng" j);
        };
      snap_failures = Codec.to_int (Codec.member "failures" j);
      normalizer =
        {
          Fitness.mins = Codec.to_float_array (Codec.member "mins" norm);
          maxs = Codec.to_float_array (Codec.member "maxs" norm);
          seen = Codec.to_int (Codec.member "seen" norm);
        };
    }
  with
  | s -> Ok s
  | exception Codec.Decode msg -> Error ("Wbga.snapshot_of_json: " ^ msg)

let result_to_json r =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("evaluations", Codec.int_ r.evaluations);
      ("failures", Codec.int_ r.failures);
      ("history", Codec.float_array r.history);
      ("archive", Codec.array entry_to_json r.archive);
      ("front", Codec.array entry_to_json r.front);
    ]

let result_of_json j =
  match
    {
      archive = Codec.to_array entry_of_json (Codec.member "archive" j);
      front = Codec.to_array entry_of_json (Codec.member "front" j);
      evaluations = Codec.to_int (Codec.member "evaluations" j);
      failures = Codec.to_int (Codec.member "failures" j);
      history = Codec.to_float_array (Codec.member "history" j);
    }
  with
  | r -> Ok r
  | exception Codec.Decode msg -> Error ("Wbga.result_of_json: " ^ msg)
