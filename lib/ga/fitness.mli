(** The paper's fitness: a min–max-normalised weighted summation of the
    objective values (equation 5), with the normalisation bounds tracked over
    every evaluation seen so far. *)

type normalizer

val create : int -> normalizer
(** [create m] tracks bounds for [m] objectives. *)

val observe : normalizer -> float array -> unit
(** Extend the per-objective min/max bounds.  Non-finite entries are
    ignored. *)

val observed : normalizer -> int
(** Number of (finite) observations folded in. *)

val bounds : normalizer -> (float * float) array

type state = { mins : float array; maxs : float array; seen : int }
(** Serialisable snapshot of the normalisation bounds, for WBGA
    checkpoint/resume: the bounds are folded over every evaluation seen, so
    a resumed run must restore them to score identically. *)

val save : normalizer -> state

val restore : normalizer -> state -> unit
(** @raise Invalid_argument on objective-count mismatch. *)

val normalise : normalizer -> float array -> float array
(** [(f_j - min_j) / (max_j - min_j)] per objective; an objective whose
    bounds are still degenerate normalises to 0.5. *)

val weighted_sum : normalizer -> weights:float array -> float array -> float
(** Equation (5).  Non-finite objective vectors score [neg_infinity]. *)
