(** The generational genetic-algorithm engine.

    The engine is payload-polymorphic: scoring a population returns, for each
    genome, an application payload (e.g. raw objective values) and a scalar
    fitness to be maximised.  Batch scoring lets the caller normalise
    fitnesses across the whole generation, as the WBGA requires. *)

type config = {
  population_size : int;
  generations : int;
  selection : Operators.selection;
  crossover : Operators.crossover;
  crossover_rate : float;  (** probability a pair is crossed at all *)
  mutation : Operators.mutation;
  elite_count : int;  (** best-of-generation individuals copied unchanged *)
}

val default_config : config
(** Population 100 x 100 generations (the paper's setting), binary
    tournament, one-point crossover at 0.9, gaussian mutation. *)

type 'a evaluated = { genome : Genome.t; payload : 'a; fitness : float }

type 'a result = {
  archive : 'a evaluated array;
      (** every individual ever evaluated, in evaluation order *)
  best : 'a evaluated;
  history : float array;  (** best fitness per generation *)
  evaluations : int;
}

type 'a snapshot = {
  next_generation : int;  (** first generation still to run *)
  population : Genome.t array;
      (** population that generation will evaluate (treat as read-only) *)
  archive_rev : 'a evaluated list;  (** accumulated archive, newest first *)
  snap_best : 'a evaluated option;
  snap_history : float array;  (** filled up to [next_generation - 1] *)
  snap_evaluations : int;
  rng_state : Yield_stats.Rng.state;
      (** generator state at the boundary — restoring it makes the resumed
          run bit-identical to an uninterrupted one *)
}
(** Everything needed to continue the loop from a generation boundary. *)

val run :
  ?on_generation:('a snapshot -> unit) ->
  ?resume:'a snapshot ->
  config -> Genome.encoding -> Yield_stats.Rng.t ->
  score:(Genome.t array -> ('a * float) array) ->
  'a result
(** [on_generation] is called after every completed generation with a
    snapshot that resumes from the next one; [resume] restarts from such a
    snapshot (the passed [rng] is overwritten with the saved state, and the
    result's [evaluations]/[history] count the whole logical run).

    [score] receives the whole population at once and may evaluate the
    genomes concurrently (e.g. over a {!Yield_exec.Pool}); the engine only
    requires that the returned array is in population order and that any
    effect of [score] is deterministic in that order.  The engine itself
    never consumes RNG while [score] runs, so a concurrent [score] cannot
    perturb the evolution stream.
    @raise Invalid_argument for non-positive population/generations, if
    [score] returns the wrong number of results, or if [resume] disagrees
    with [config] on population size or generation count. *)
