(** The paper's weight-based genetic algorithm (§3.2).

    Each GA string carries the designable parameters {e and} the objective
    weights; the weights evolve with the design, so the population explores
    many scalarisation directions at once and its evaluation archive samples
    the whole performance trade-off.  The Pareto front is then extracted from
    the archive (§3.3). *)

type objective = { name : string; maximise : bool }

type entry = {
  params : float array;  (** decoded designable parameters *)
  objectives : float array;  (** raw objective values *)
  weights : float array;  (** decoded, normalised weights (eq. 4) *)
  fitness : float;  (** eq. 5 weighted normalised sum *)
}

type result = {
  archive : entry array;  (** every successfully evaluated individual *)
  front : entry array;
      (** non-dominated subset of the archive, sorted by the first
          objective *)
  evaluations : int;  (** total evaluation calls, including failed ones *)
  failures : int;  (** evaluations that returned [None] *)
  history : float array;  (** best fitness per generation *)
}

type snapshot = {
  ga : entry option Ga.snapshot;
  snap_failures : int;
  normalizer : Fitness.state;
}
(** Generation-boundary state: the GA loop state plus the WBGA-level
    failure count and fitness-normalisation bounds.  Restoring all three
    makes a resumed run bit-identical to an uninterrupted one. *)

val run :
  ?config:Ga.config ->
  ?pool:Yield_exec.Pool.t ->
  ?checkpoint:(snapshot -> unit) ->
  ?resume:snapshot ->
  param_ranges:Genome.range array ->
  objectives:objective array ->
  rng:Yield_stats.Rng.t ->
  evaluate:(float array -> float array option) ->
  unit ->
  result
(** [evaluate params] returns the raw objective values, or [None] when the
    underlying simulation fails; failed individuals receive [neg_infinity]
    fitness and are excluded from the archive and front.

    With [?pool], each generation's [evaluate] calls fan out over the
    pool's domains ([evaluate] must therefore be safe to call concurrently
    and must not depend on call order); the GA's own RNG consumption,
    fitness normalisation and archive updates stay on the calling domain in
    deterministic order, so [result] and every checkpoint are bit-identical
    to the serial path.  A pool with one participant (or no pool) takes the
    exact serial code path.

    [checkpoint] is invoked after every completed generation; [resume]
    restarts from such a snapshot.  A resumed run only adds the evaluations
    it actually performs to the [wbga.evaluations] metric, while the
    returned [result.evaluations] counts the whole logical run. *)

(** {2 Checkpoint serialisation}

    Bit-exact JSON codecs (floats as [%h] hex literals via
    {!Yield_resilience.Codec}). *)

val snapshot_to_json : snapshot -> Yield_obs.Json.t

val snapshot_of_json : Yield_obs.Json.t -> (snapshot, string) Stdlib.result

val result_to_json : result -> Yield_obs.Json.t

val result_of_json : Yield_obs.Json.t -> (result, string) Stdlib.result
