module Rng = Yield_stats.Rng
module Span = Yield_obs.Span

type config = {
  population_size : int;
  generations : int;
  selection : Operators.selection;
  crossover : Operators.crossover;
  crossover_rate : float;
  mutation : Operators.mutation;
  elite_count : int;
}

let default_config =
  {
    population_size = 100;
    generations = 100;
    selection = Operators.Tournament 2;
    crossover = Operators.One_point;
    crossover_rate = 0.9;
    mutation = Operators.Gaussian { sigma = 0.08; rate = 0.15 };
    elite_count = 2;
  }

type 'a evaluated = { genome : Genome.t; payload : 'a; fitness : float }

type 'a result = {
  archive : 'a evaluated array;
  best : 'a evaluated;
  history : float array;
  evaluations : int;
}

type 'a snapshot = {
  next_generation : int;
  population : Genome.t array;
  archive_rev : 'a evaluated list;
  snap_best : 'a evaluated option;
  snap_history : float array;
  snap_evaluations : int;
  rng_state : Rng.state;
}

let run ?on_generation ?resume config encoding rng ~score =
  if config.population_size <= 0 then invalid_arg "Ga.run: empty population";
  if config.generations <= 0 then invalid_arg "Ga.run: no generations";
  let pop_size = config.population_size in
  let archive, evaluations, history, resumed_best, start_population, start_gen =
    match resume with
    | Some s ->
        if Array.length s.snap_history <> config.generations then
          invalid_arg "Ga.run: resume snapshot from a different generation count";
        if Array.length s.population <> pop_size then
          invalid_arg "Ga.run: resume snapshot from a different population size";
        Rng.restore rng s.rng_state;
        ( ref s.archive_rev,
          ref s.snap_evaluations,
          Array.copy s.snap_history,
          s.snap_best,
          s.population,
          s.next_generation )
    | None ->
        ( ref [],
          ref 0,
          Array.make config.generations neg_infinity,
          None,
          [||],
          0 )
  in
  let evaluate population =
    (* [score] may fan the evaluations out over domains; the engine touches
       no RNG until it returns, and folds the results in population order,
       so a concurrent score cannot perturb the evolution stream *)
    let scored = score population in
    if Array.length scored <> Array.length population then
      invalid_arg "Ga.run: score returned wrong number of results";
    let evaluated =
      Array.map2
        (fun genome (payload, fitness) -> { genome; payload; fitness })
        population scored
    in
    evaluations := !evaluations + Array.length evaluated;
    Array.iter (fun e -> archive := e :: !archive) evaluated;
    evaluated
  in
  let next_generation evaluated =
    let fitness = Array.map (fun e -> e.fitness) evaluated in
    let order = Array.init pop_size Fun.id in
    Array.sort (fun a b -> Float.compare fitness.(b) fitness.(a)) order;
    let children = ref [] in
    let n_children = ref 0 in
    (* elitism: carry over the top individuals unchanged *)
    let elites = Stdlib.min config.elite_count pop_size in
    for k = 0 to elites - 1 do
      children := Array.copy evaluated.(order.(k)).genome :: !children;
      incr n_children
    done;
    while !n_children < pop_size do
      let i = Operators.select config.selection rng ~fitness in
      let j = Operators.select config.selection rng ~fitness in
      let c1, c2 =
        if Rng.float rng < config.crossover_rate then
          Operators.cross config.crossover rng evaluated.(i).genome
            evaluated.(j).genome
        else (Array.copy evaluated.(i).genome, Array.copy evaluated.(j).genome)
      in
      Operators.mutate config.mutation rng c1;
      Operators.mutate config.mutation rng c2;
      children := c1 :: !children;
      incr n_children;
      if !n_children < pop_size then begin
        children := c2 :: !children;
        incr n_children
      end
    done;
    Array.of_list (List.rev !children)
  in
  let population =
    ref
      (if start_gen > 0 then start_population
       else Array.init pop_size (fun _ -> Genome.random encoding rng))
  in
  let best = ref resumed_best in
  for gen = start_gen to config.generations - 1 do
    (* the generation number is the span key: a natural, jobs-independent
       sampling identity *)
    Span.with_ ~name:"ga.generation" ~key:gen (fun () ->
        let evaluated = evaluate !population in
        Array.iter
          (fun e ->
            match !best with
            | Some b when b.fitness >= e.fitness -> ()
            | _ -> best := Some e)
          evaluated;
        history.(gen) <-
          (match !best with Some b -> b.fitness | None -> neg_infinity);
        if gen < config.generations - 1 then
          population := next_generation evaluated;
        match on_generation with
        | None -> ()
        | Some hook ->
            hook
              {
                next_generation = gen + 1;
                population = !population;
                archive_rev = !archive;
                snap_best = !best;
                snap_history = Array.copy history;
                snap_evaluations = !evaluations;
                rng_state = Rng.save rng;
              })
  done;
  let best =
    match !best with
    | Some b -> b
    | None -> invalid_arg "Ga.run: nothing evaluated"
  in
  {
    archive = Array.of_list (List.rev !archive);
    best;
    history;
    evaluations = !evaluations;
  }
