type normalizer = {
  mins : float array;
  maxs : float array;
  mutable seen : int;
}

let create m =
  if m <= 0 then invalid_arg "Fitness.create: need at least one objective";
  { mins = Array.make m infinity; maxs = Array.make m neg_infinity; seen = 0 }

let observe t objectives =
  if Array.length objectives <> Array.length t.mins then
    invalid_arg "Fitness.observe: objective count mismatch";
  if Array.for_all Float.is_finite objectives then begin
    Array.iteri
      (fun j v ->
        t.mins.(j) <- Float.min t.mins.(j) v;
        t.maxs.(j) <- Float.max t.maxs.(j) v)
      objectives;
    t.seen <- t.seen + 1
  end

let observed t = t.seen

let bounds t = Array.init (Array.length t.mins) (fun j -> (t.mins.(j), t.maxs.(j)))

let normalise t objectives =
  Array.mapi
    (fun j v ->
      let lo = t.mins.(j) and hi = t.maxs.(j) in
      if not (Float.is_finite lo) || not (Float.is_finite hi) || hi <= lo then 0.5
      else (v -. lo) /. (hi -. lo))
    objectives

let weighted_sum t ~weights objectives =
  if Array.length weights <> Array.length objectives then
    invalid_arg "Fitness.weighted_sum: weight count mismatch";
  if not (Array.for_all Float.is_finite objectives) then neg_infinity
  else begin
    let normed = normalise t objectives in
    let acc = ref 0. in
    Array.iteri (fun j w -> acc := !acc +. (w *. normed.(j))) weights;
    !acc
  end

(* serialisable snapshot for checkpoint/resume; defined last so its fields
   do not shadow [normalizer]'s in the functions above *)
type state = { mins : float array; maxs : float array; seen : int }

let save (t : normalizer) : state =
  { mins = Array.copy t.mins; maxs = Array.copy t.maxs; seen = t.seen }

let restore (t : normalizer) (s : state) =
  if Array.length s.mins <> Array.length t.mins then
    invalid_arg "Fitness.restore: objective count mismatch";
  Array.blit s.mins 0 t.mins 0 (Array.length t.mins);
  Array.blit s.maxs 0 t.maxs 0 (Array.length t.maxs);
  t.seen <- s.seen
