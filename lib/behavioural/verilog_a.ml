module Tbl_io = Yield_table.Tbl_io

let param_names = [| "lp1"; "lp2"; "lp3"; "lp4"; "lp5"; "lp6"; "lp7"; "lp8" |]

(* ---------- typed AST ---------- *)

type binop = Add | Sub | Mul | Div

type expr =
  | Num of string
  | Ident of string
  | Str of string
  | Access of string * string
  | Call of string * expr list
  | Neg of expr
  | Paren of expr
  | Bin of binop * expr * expr

type stmt =
  | Comment of string
  | Assign_group of (string * expr) list
  | Sys_call of string * expr list
  | Contribution of { access : string; node : string; rhs : expr }

type port_dir = Input | Output | Inout

type param = { pname : string; default : string; pcomment : string option }

type item =
  | Port_decl of port_dir * string list
  | Discipline_decl of string * string list
  | Param_group of param list
  | Real_decl of string list
  | Integer_decl of string list
  | Blank
  | Analog of stmt list

type module_def = { module_name : string; ports : string list; items : item list }

type source = {
  header : string list;
  includes : string list;
  modules : module_def list;
}

(* ---------- printer ---------- *)

let rec expr_to_string = function
  | Num s | Ident s -> s
  | Str s -> "\"" ^ s ^ "\""
  | Access (f, n) -> f ^ "(" ^ n ^ ")"
  | Call (f, args) ->
      f ^ "(" ^ String.concat ", " (List.map expr_to_string args) ^ ")"
  | Neg e -> "-" ^ expr_to_string e
  | Paren e -> "(" ^ expr_to_string e ^ ")"
  | Bin (op, a, b) ->
      let glue =
        match op with Add -> " + " | Sub -> " - " | Mul -> "*" | Div -> "/"
      in
      expr_to_string a ^ glue ^ expr_to_string b

let pad width s = s ^ String.make (width - String.length s) ' '

let max_width names =
  List.fold_left (fun m s -> Stdlib.max m (String.length s)) 0 names

let stmt_lines = function
  | Comment text -> [ "    // " ^ text ]
  | Assign_group binds ->
      let width = max_width (List.map fst binds) in
      List.map
        (fun (lhs, rhs) ->
          Printf.sprintf "    %s = %s;" (pad width lhs) (expr_to_string rhs))
        binds
  | Sys_call (f, args) ->
      [
        Printf.sprintf "    %s(%s);" f
          (String.concat ", " (List.map expr_to_string args));
      ]
  | Contribution { access; node; rhs } ->
      [ Printf.sprintf "    %s(%s) <+ %s;" access node (expr_to_string rhs) ]

let dir_keyword = function Input -> "input" | Output -> "output" | Inout -> "inout"

let item_lines = function
  | Port_decl (dir, names) ->
      [ Printf.sprintf "  %s %s;" (dir_keyword dir) (String.concat ", " names) ]
  | Discipline_decl (discipline, names) ->
      [ Printf.sprintf "  %s %s;" discipline (String.concat ", " names) ]
  | Param_group params ->
      let width = max_width (List.map (fun p -> p.pname) params) in
      List.map
        (fun p ->
          let comment =
            match p.pcomment with Some c -> "  // " ^ c | None -> ""
          in
          Printf.sprintf "  parameter real %s = %s;%s" (pad width p.pname)
            p.default comment)
        params
  | Real_decl names -> [ Printf.sprintf "  real %s;" (String.concat ", " names) ]
  | Integer_decl names ->
      [ Printf.sprintf "  integer %s;" (String.concat ", " names) ]
  | Blank -> [ "" ]
  | Analog stmts ->
      ("  analog begin" :: List.concat_map stmt_lines stmts) @ [ "  end" ]

let module_lines m =
  Printf.sprintf "module %s(%s);" m.module_name (String.concat ", " m.ports)
  :: (List.concat_map item_lines m.items @ [ "endmodule" ])

let print_source src =
  let lines =
    List.map (fun c -> "// " ^ c) src.header
    @ List.map (fun inc -> Printf.sprintf "`include \"%s\"" inc) src.includes
    @ [ "" ]
    @ List.concat (List.map module_lines src.modules)
  in
  String.concat "\n" lines ^ "\n"

(* ---------- the paper's module, as an AST ---------- *)

let table_model_1d ~axis ~file ~control =
  Call ("$table_model", [ Ident axis; Str file; Str control ])

let table_model_2d ~file ~control =
  Call
    ( "$table_model",
      [ Ident "gain_prop"; Ident "pm_prop"; Str file; Str (control ^ "," ^ control) ] )

let module_ast ?(name = "ota_behavioural") ~control () =
  let lps = Array.to_list param_names in
  let inflate delta base =
    Bin
      ( Add,
        Paren (Bin (Mul, Paren (Bin (Div, Ident delta, Num "100")), Ident base)),
        Ident base )
  in
  let analog =
    [
      Comment "variation interpolated at the requested performance";
      Assign_group
        [
          ("gain_delta", table_model_1d ~axis:"gain" ~file:"gain_delta.tbl" ~control);
          ("pm_delta", table_model_1d ~axis:"pm" ~file:"pm_delta.tbl" ~control);
        ];
      Comment "proposed performance: inflate so the spec survives variation";
      Assign_group
        [
          ("gain_prop", inflate "gain_delta" "gain");
          ("pm_prop", inflate "pm_delta" "pm");
        ];
      Sys_call ("$display", [ Str "Propose Gain : %e"; Ident "gain_prop" ]);
      Sys_call ("$display", [ Str "Propose PM   : %e"; Ident "pm_prop" ]);
      Comment "designable parameters interpolated from the Pareto tables";
      Assign_group
        (List.mapi
           (fun i p ->
             (p, table_model_2d ~file:(Printf.sprintf "lp%d_data.tbl" (i + 1)) ~control))
           lps);
      Assign_group [ ("ro", table_model_2d ~file:"ro_data.tbl" ~control) ];
      Assign_group [ ("fptr", Call ("$fopen", [ Str "params.dat" ])) ];
      Sys_call
        ("$fwrite", [ Ident "fptr"; Str "\\n Generated Design Parameters\\n " ]);
      Sys_call
        ( "$fwrite",
          Ident "fptr" :: Str "%e %e %e %e %e %e %e %e"
          :: List.map (fun p -> Ident p) lps );
      Sys_call ("$fclose", [ Ident "fptr" ]);
      Comment "output stage";
      Assign_group
        [
          ( "gain_in_v",
            Call ("pow", [ Num "10"; Bin (Div, Ident "gain_prop", Num "20") ]) );
        ];
      Contribution
        {
          access = "V";
          node = "out";
          rhs =
            Bin
              ( Sub,
                Bin (Mul, Access ("V", "inp"), Paren (Neg (Ident "gain_in_v"))),
                Bin (Mul, Access ("I", "out"), Ident "ro") );
        };
    ]
  in
  {
    header =
      [
        "generated by yieldlab: combined performance and variation model";
        "(paper section 4.4)";
      ];
    includes = [ "constants.vams"; "disciplines.vams" ];
    modules =
      [
        {
          module_name = name;
          ports = [ "inp"; "out" ];
          items =
            [
              Port_decl (Input, [ "inp" ]);
              Port_decl (Output, [ "out" ]);
              Discipline_decl ("electrical", [ "inp"; "out" ]);
              Blank;
              Param_group
                [
                  {
                    pname = "gain";
                    default = "50.0";
                    pcomment = Some "requested open-loop gain, dB";
                  };
                  {
                    pname = "pm";
                    default = "70.0";
                    pcomment = Some "requested phase margin, deg";
                  };
                ];
              Blank;
              Real_decl [ "gain_delta"; "pm_delta"; "gain_prop"; "pm_prop" ];
            ]
            @ List.map (fun p -> Real_decl [ p ]) lps
            @ [
                Real_decl [ "ro"; "gain_in_v" ];
                Integer_decl [ "fptr" ];
                Blank;
                Analog analog;
              ];
        };
      ];
  }

let module_text ?(name = "ota_behavioural") ~control () =
  print_source (module_ast ~name ~control ())

(* ---------- parser for the emitted subset ---------- *)

exception Parse_error of { line : int; message : string }

type token =
  | Tok_ident of string
  | Tok_num of string
  | Tok_str of string
  | Tok_punct of string
  | Tok_directive of string

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '.'

let is_digit c = c >= '0' && c <= '9'

(* tokenize, keeping the line of each token; comments are skipped (the
   parser is for linting, not for byte-faithful round-trips of foreign
   files — only {!module_ast} + {!print_source} make that guarantee) *)
let tokenize text =
  let n = String.length text in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = toks := (t, !line) :: !toks in
  while !i < n do
    let c = text.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '/' then begin
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '`' then begin
      incr i;
      let start = !i in
      while !i < n && is_ident_char text.[!i] do
        incr i
      done;
      if !i = start then fail !line "dangling ` directive marker";
      push (Tok_directive (String.sub text start (!i - start)))
    end
    else if c = '"' then begin
      incr i;
      let start = !i in
      while
        !i < n && text.[!i] <> '"'
        && not (text.[!i] = '\n')
      do
        if text.[!i] = '\\' && !i + 1 < n then i := !i + 2 else incr i
      done;
      if !i >= n || text.[!i] <> '"' then fail !line "unterminated string";
      push (Tok_str (String.sub text start (!i - start)));
      incr i
    end
    else if is_ident_start c then begin
      let start = !i in
      incr i;
      while !i < n && is_ident_char text.[!i] do
        incr i
      done;
      push (Tok_ident (String.sub text start (!i - start)))
    end
    else if is_digit c then begin
      let start = !i in
      while
        !i < n
        && (is_digit text.[!i]
           || text.[!i] = '.'
           || text.[!i] = 'e'
           || text.[!i] = 'E'
           || ((text.[!i] = '+' || text.[!i] = '-')
              && !i > start
              && (text.[!i - 1] = 'e' || text.[!i - 1] = 'E')))
      do
        incr i
      done;
      push (Tok_num (String.sub text start (!i - start)))
    end
    else if c = '<' && !i + 1 < n && text.[!i + 1] = '+' then begin
      push (Tok_punct "<+");
      i := !i + 2
    end
    else if String.contains "(),;=*/+-" c then begin
      push (Tok_punct (String.make 1 c));
      incr i
    end
    else fail !line "unexpected character %C" c
  done;
  Array.of_list (List.rev !toks)

type cursor = { toks : (token * int) array; mutable pos : int }

let cur_line cur =
  if cur.pos < Array.length cur.toks then snd cur.toks.(cur.pos)
  else if Array.length cur.toks = 0 then 1
  else snd cur.toks.(Array.length cur.toks - 1)

let peek cur =
  if cur.pos < Array.length cur.toks then Some (fst cur.toks.(cur.pos)) else None

let advance cur = cur.pos <- cur.pos + 1

let token_desc = function
  | Tok_ident s | Tok_num s | Tok_punct s -> s
  | Tok_str s -> "\"" ^ s ^ "\""
  | Tok_directive s -> "`" ^ s

let expect_punct cur p =
  match peek cur with
  | Some (Tok_punct q) when q = p -> advance cur
  | Some t -> fail (cur_line cur) "expected %S, found %S" p (token_desc t)
  | None -> fail (cur_line cur) "expected %S, found end of input" p

let expect_ident cur =
  match peek cur with
  | Some (Tok_ident s) ->
      advance cur;
      s
  | Some t -> fail (cur_line cur) "expected identifier, found %S" (token_desc t)
  | None -> fail (cur_line cur) "expected identifier, found end of input"

let accept_punct cur p =
  match peek cur with
  | Some (Tok_punct q) when q = p ->
      advance cur;
      true
  | _ -> false

let ident_list cur =
  let first = expect_ident cur in
  let rec more acc =
    if accept_punct cur "," then more (expect_ident cur :: acc)
    else List.rev acc
  in
  let names = more [ first ] in
  expect_punct cur ";";
  names

let rec parse_expr cur = parse_additive cur

and parse_additive cur =
  let lhs = parse_multiplicative cur in
  let rec loop lhs =
    if accept_punct cur "+" then loop (Bin (Add, lhs, parse_multiplicative cur))
    else if accept_punct cur "-" then
      loop (Bin (Sub, lhs, parse_multiplicative cur))
    else lhs
  in
  loop lhs

and parse_multiplicative cur =
  let lhs = parse_unary cur in
  let rec loop lhs =
    if accept_punct cur "*" then loop (Bin (Mul, lhs, parse_unary cur))
    else if accept_punct cur "/" then loop (Bin (Div, lhs, parse_unary cur))
    else lhs
  in
  loop lhs

and parse_unary cur =
  if accept_punct cur "-" then Neg (parse_unary cur) else parse_primary cur

and parse_primary cur =
  match peek cur with
  | Some (Tok_num s) ->
      advance cur;
      Num s
  | Some (Tok_str s) ->
      advance cur;
      Str s
  | Some (Tok_punct "(") ->
      advance cur;
      let e = parse_expr cur in
      expect_punct cur ")";
      Paren e
  | Some (Tok_ident f) ->
      advance cur;
      if accept_punct cur "(" then begin
        let args = parse_args cur in
        match (f, args) with
        | ("V" | "I"), [ Ident node ] -> Access (f, node)
        | _ -> Call (f, args)
      end
      else Ident f
  | Some t -> fail (cur_line cur) "expected expression, found %S" (token_desc t)
  | None -> fail (cur_line cur) "expected expression, found end of input"

and parse_args cur =
  if accept_punct cur ")" then []
  else begin
    let first = parse_expr cur in
    let rec more acc =
      if accept_punct cur "," then more (parse_expr cur :: acc)
      else begin
        expect_punct cur ")";
        List.rev acc
      end
    in
    more [ first ]
  end

let parse_stmt cur name =
  if name.[0] = '$' then begin
    expect_punct cur "(";
    let args = parse_args cur in
    expect_punct cur ";";
    Sys_call (name, args)
  end
  else if accept_punct cur "=" then begin
    let rhs = parse_expr cur in
    expect_punct cur ";";
    Assign_group [ (name, rhs) ]
  end
  else if accept_punct cur "(" then begin
    let node = expect_ident cur in
    expect_punct cur ")";
    expect_punct cur "<+";
    let rhs = parse_expr cur in
    expect_punct cur ";";
    Contribution { access = name; node; rhs }
  end
  else
    fail (cur_line cur) "expected '=', '(' or a system call after %S" name

let parse_analog cur =
  let begin_kw = expect_ident cur in
  if begin_kw <> "begin" then
    fail (cur_line cur) "expected 'begin' after 'analog', found %S" begin_kw;
  let rec stmts acc =
    match peek cur with
    | Some (Tok_ident "end") ->
        advance cur;
        List.rev acc
    | Some (Tok_ident name) ->
        advance cur;
        stmts (parse_stmt cur name :: acc)
    | Some t ->
        fail (cur_line cur) "expected statement or 'end', found %S"
          (token_desc t)
    | None -> fail (cur_line cur) "unterminated analog block"
  in
  Analog (stmts [])

let parse_item cur name =
  match name with
  | "input" -> Port_decl (Input, ident_list cur)
  | "output" -> Port_decl (Output, ident_list cur)
  | "inout" -> Port_decl (Inout, ident_list cur)
  | "real" -> Real_decl (ident_list cur)
  | "integer" -> Integer_decl (ident_list cur)
  | "analog" -> parse_analog cur
  | "parameter" ->
      let kind = expect_ident cur in
      if kind <> "real" then
        fail (cur_line cur) "only 'parameter real' is supported, found %S" kind;
      let pname = expect_ident cur in
      expect_punct cur "=";
      let default =
        match peek cur with
        | Some (Tok_num s) ->
            advance cur;
            s
        | Some (Tok_punct "-") ->
            advance cur;
            (match peek cur with
            | Some (Tok_num s) ->
                advance cur;
                "-" ^ s
            | _ -> fail (cur_line cur) "expected number after '-'")
        | _ -> fail (cur_line cur) "expected default value for parameter %S" pname
      in
      expect_punct cur ";";
      Param_group [ { pname; default; pcomment = None } ]
  | discipline -> Discipline_decl (discipline, ident_list cur)

let parse_module cur =
  let module_name = expect_ident cur in
  expect_punct cur "(";
  let first = expect_ident cur in
  let rec more acc =
    if accept_punct cur "," then more (expect_ident cur :: acc)
    else begin
      expect_punct cur ")";
      List.rev acc
    end
  in
  let ports = more [ first ] in
  expect_punct cur ";";
  let rec items acc =
    match peek cur with
    | Some (Tok_ident "endmodule") ->
        advance cur;
        List.rev acc
    | Some (Tok_ident name) ->
        advance cur;
        items (parse_item cur name :: acc)
    | Some t ->
        fail (cur_line cur) "expected declaration or 'endmodule', found %S"
          (token_desc t)
    | None -> fail (cur_line cur) "unterminated module %S" module_name
  in
  { module_name; ports; items = items [] }

let parse text =
  let cur = { toks = tokenize text; pos = 0 } in
  let rec includes acc =
    match peek cur with
    | Some (Tok_directive "include") ->
        advance cur;
        (match peek cur with
        | Some (Tok_str s) ->
            advance cur;
            includes (s :: acc)
        | _ -> fail (cur_line cur) "expected a quoted path after `include")
    | Some (Tok_directive d) -> fail (cur_line cur) "unsupported directive `%s" d
    | _ -> List.rev acc
  in
  let includes = includes [] in
  let rec modules acc =
    match peek cur with
    | None -> List.rev acc
    | Some (Tok_ident "module") ->
        advance cur;
        modules (parse_module cur :: acc)
    | Some t ->
        fail (cur_line cur) "expected 'module', found %S" (token_desc t)
  in
  let modules = modules [] in
  { header = []; includes; modules }

(* ---------- data files ---------- *)

(* the 1-D delta tables are interpolation tables: their axis must be
   strictly increasing for any $table_model consumer (and for the T003
   lint), so sort by abscissa and pool duplicates by averaging — the same
   treatment Var_model applies when it builds its own splines *)
let sorted_1d ~columns pairs =
  let pairs = Array.copy pairs in
  Array.sort (fun (xa, _) (xb, _) -> Float.compare xa xb) pairs;
  let merged = ref [] in
  Array.iter
    (fun (x, y) ->
      match !merged with
      | (px, py, pn) :: rest when px = x ->
          merged := (px, py +. y, pn + 1) :: rest
      | _ -> merged := (x, y, 1) :: !merged)
    pairs;
  let rows =
    List.rev_map (fun (x, y, n) -> [| x; y /. float_of_int n |]) !merged
    |> Array.of_list
  in
  Tbl_io.create ~columns ~rows

let data_files model =
  let perf = Macromodel.perf_model model in
  let var = Macromodel.var_model model in
  let var_points = Var_model.points var in
  let gain_delta =
    sorted_1d ~columns:[| "gain"; "gain_delta" |]
      (Array.map
         (fun (p : Var_model.point) ->
           (p.Var_model.gain_db, p.Var_model.dgain_pct))
         var_points)
  in
  let pm_delta =
    sorted_1d ~columns:[| "pm"; "pm_delta" |]
      (Array.map
         (fun (p : Var_model.point) ->
           (p.Var_model.pm_deg, p.Var_model.dpm_pct))
         var_points)
  in
  let perf_points = Perf_model.points perf in
  let lp i =
    Tbl_io.create ~columns:[| "gain"; "pm"; param_names.(i) |]
      ~rows:
        (Array.map
           (fun (p : Perf_model.point) ->
             [| p.Perf_model.gain_db; p.Perf_model.pm_deg; p.Perf_model.params.(i) |])
           perf_points)
  in
  let ro =
    Tbl_io.create ~columns:[| "gain"; "pm"; "ro" |]
      ~rows:
        (Array.map
           (fun (p : Perf_model.point) ->
             [| p.Perf_model.gain_db; p.Perf_model.pm_deg; p.Perf_model.rout |])
           perf_points)
  in
  [ ("gain_delta.tbl", gain_delta); ("pm_delta.tbl", pm_delta) ]
  @ List.init (Array.length param_names) (fun i ->
        (Printf.sprintf "lp%d_data.tbl" (i + 1), lp i))
  @ [ ("ro_data.tbl", ro) ]

let save ?(name = "ota_behavioural") ?(control = "3E") model ~dir =
  let module_path = Filename.concat dir (name ^ ".va") in
  let oc = open_out module_path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (module_text ~name ~control ()));
  let table_paths =
    List.map
      (fun (filename, table) ->
        let path = Filename.concat dir filename in
        Tbl_io.write ~path table;
        path)
      (data_files model)
  in
  module_path :: table_paths
