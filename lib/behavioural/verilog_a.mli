(** Verilog-A emission: render the combined behavioural model as the
    Verilog-A module of the paper's §4.4 listing, together with the [.tbl]
    data files its [$table_model] calls reference.

    Emission goes through a small typed AST rather than string
    concatenation: {!module_ast} builds the paper's module, {!print_source}
    renders any AST, and {!parse} re-ingests the emitted subset so
    {!Yield_analyse.Va_lint} can check modules (including ones written by
    hand) structurally.  [print_source (module_ast ())] is byte-for-byte the
    text the old string emitter produced — a golden test holds this.

    The emitted module is textual output for use in a Verilog-A capable
    simulator; this library's own simulations use {!Macromodel} directly. *)

(** {1 AST} *)

type binop = Add | Sub | Mul | Div

type expr =
  | Num of string  (** numeral, verbatim source text *)
  | Ident of string
  | Str of string  (** contents between the quotes, escapes kept verbatim *)
  | Access of string * string  (** branch access: [V(out)], [I(out)] *)
  | Call of string * expr list  (** [pow(...)], [$table_model(...)], ... *)
  | Neg of expr
  | Paren of expr  (** explicit parentheses, preserved by the printer *)
  | Bin of binop * expr * expr

type stmt =
  | Comment of string
  | Assign_group of (string * expr) list
      (** assignments whose left-hand sides are padded to a common width *)
  | Sys_call of string * expr list  (** [$display], [$fwrite], [$fclose] *)
  | Contribution of { access : string; node : string; rhs : expr }
      (** [V(node) <+ rhs;] *)

type port_dir = Input | Output | Inout

type param = { pname : string; default : string; pcomment : string option }

type item =
  | Port_decl of port_dir * string list
  | Discipline_decl of string * string list  (** [electrical inp, out;] *)
  | Param_group of param list
      (** [parameter real] declarations, names padded to a common width *)
  | Real_decl of string list
  | Integer_decl of string list
  | Blank
  | Analog of stmt list

type module_def = { module_name : string; ports : string list; items : item list }

type source = {
  header : string list;  (** leading [//] comment lines, without the slashes *)
  includes : string list;  (** [`include] paths *)
  modules : module_def list;
}

(** {1 Building, printing, parsing} *)

val param_names : string array
(** [lp1] .. [lp8], the designable-parameter table names. *)

val module_ast : ?name:string -> control:string -> unit -> source
(** The paper's module (default name ["ota_behavioural"]): variation lookup,
    performance proposal, parameter interpolation and the output stage
    [V(out) <+ -gain * V(inp) - I(out) * ro], mirroring the paper line for
    line.  [control] is the table-model control string (["3E"]). *)

val print_source : source -> string

val module_text : ?name:string -> control:string -> unit -> string
(** [print_source (module_ast ~name ~control ())]. *)

exception Parse_error of { line : int; message : string }

val parse : string -> source
(** Parse the emitted Verilog-A subset (includes, one or more modules with
    port/discipline/parameter/real/integer declarations and an [analog]
    block of assignments, system calls and contributions).  Comments and
    alignment grouping are not preserved — only
    [print_source (module_ast ())] is byte-faithful, not [parse] round
    trips.  @raise Parse_error with a line number on malformed input. *)

(** {1 Data files} *)

val data_files : Macromodel.t -> (string * Yield_table.Tbl_io.table) list
(** The tables the module references: [gain_delta.tbl], [pm_delta.tbl] and
    [lp1_data.tbl] .. [lp8_data.tbl] (performance to designable-parameter
    maps), plus [ro_data.tbl] for the output stage. *)

val save : ?name:string -> ?control:string -> Macromodel.t -> dir:string -> string list
(** Write the module ([<name>.va]) and every data file into [dir]; returns
    the paths written. *)
