(** A circuit under construction: a node name table, a device list and
    optional initial-guess hints ([nodeset]) for the DC solver. *)

type t

val create : unit -> t

val node : t -> string -> Device.node
(** [node c name] interns [name], creating a fresh node index on first use.
    The names ["0"], ["gnd"] and ["GND"] all map to ground. *)

val node_name : t -> Device.node -> string
(** Inverse lookup.  @raise Not_found for unknown indices. *)

val node_count : t -> int
(** Number of non-ground nodes. *)

val add : t -> Device.t -> unit
(** @raise Invalid_argument if a device with the same name already exists. *)

val nodeset : t -> Device.node -> float -> unit
(** Provide an initial guess for the DC solve. *)

val nodesets : t -> (Device.node * float) list

val devices : t -> Device.t array
(** Devices in insertion order. *)

val name_model : t -> string -> Mosfet.model -> unit
(** Record a user-visible [.model] name for [model].  The netlist reader
    registers every [.model] card here so {!Netlist.to_string} can emit the
    original names instead of generated [modN] ones. *)

val model_names : t -> (string * Mosfet.model) list
(** Registered names in registration order. *)

val model_name : t -> Mosfet.model -> string option
(** First registered name whose model structurally equals [model]. *)

val find_device : t -> string -> Device.t
(** @raise Not_found if absent. *)

val replace_device : t -> string -> (Device.t -> Device.t) -> unit
(** [replace_device c name f] substitutes the named device with [f dev];
    used to apply Monte Carlo parameter overrides without rebuilding the
    topology.  @raise Not_found if absent. *)

val map_devices : t -> (Device.t -> Device.t) -> t
(** [map_devices c f] is a fresh circuit with the same node table and
    nodesets, and devices [f dev] in order; [c] is left untouched.  Used to
    apply per-sample Monte Carlo perturbations without rebuilding topology. *)

(** Convenience builders; node arguments are names. *)

val add_resistor : t -> name:string -> string -> string -> float -> unit

val add_capacitor : t -> name:string -> string -> string -> float -> unit

val add_vsource :
  t -> name:string -> ?ac:float -> ?wave:Device.waveform -> string -> string ->
  float -> unit

val add_isource :
  t -> name:string -> ?ac:float -> ?wave:Device.waveform -> string -> string ->
  float -> unit

val add_vccs :
  t -> name:string -> out_p:string -> out_n:string -> in_p:string -> in_n:string ->
  float -> unit

val add_mosfet :
  t -> name:string -> d:string -> g:string -> s:string -> b:string ->
  model:Mosfet.model -> w:float -> l:float -> unit
