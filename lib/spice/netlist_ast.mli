(** Typed netlist AST with source spans.

    The SPICE frontend is three passes — {!Netlist_lexer} (spanned tokens,
    continuation lines, comments), {!Netlist_parser} (this AST) and
    {!Netlist_elab} (hierarchy flattening and [.param] evaluation into a
    {!Circuit.t}) — with {!Netlist_printer} closing the loop: the printer is
    byte-idempotent, [print (parse (print (parse text)))] equals
    [print (parse text)] for every parseable input, because every name and
    value node carries its source text verbatim.

    Every node carries a {!span} (1-based line and column; [end_col] points
    one past the last character, SARIF-style), so lint diagnostics and parse
    errors can point at precise source regions. *)

type span = {
  start_line : int;
  start_col : int;
  end_line : int;
  end_col : int;
}

exception Parse_error of { span : span; message : string }
(** The only exception the frontend raises on malformed input — lexer,
    parser and elaborator alike.  Re-exported as
    {!Yield_spice.Netlist.Parse_error}. *)

val dummy_span : span
(** All-zero span for programmatically built nodes. *)

val span_to_string : span -> string
(** ["3:5-12"] within one line, ["3:5-4:2"] across lines. *)

val hull : span -> span -> span
(** Smallest span covering both. *)

val error : span -> string -> 'a
(** @raise Parse_error *)

val float_of_spice : string -> float option
(** Engineering-notation scalar ("10k", "3.3", "120p", "2meg"), or [None]. *)

type ident = { id : string; ispan : span }
(** A name or node token, original spelling preserved. *)

type binop = Add | Sub | Mul | Div

type expr =
  | Num of float
  | Ref of string  (** parameter reference, lowercased *)
  | Bin of binop * expr * expr
  | Neg of expr

type value = { text : string; expr : expr; vspan : span }
(** A numeric field: the verbatim source text (what the printer emits) plus
    the parsed expression ([Num] for plain scalars, a tree for
    [{w*2+1u}]-style parameter arithmetic). *)

val value_refs : value -> string list
(** Lowercased parameter names the value's expression references. *)

val value_of_float : float -> value
(** A value with no source: compact engineering text when it reads back
    exactly, full ["%.17g"] precision otherwise — print-stable either way. *)

val engineering : float -> string
(** The compact engineering rendering ("10k", "1.5u", ...). *)

type assign = { key : ident; v : value }  (** one [key=value] field *)

type analysis =
  | Op
  | Ac of { per_decade : value; f_lo : value; f_hi : value; out : ident }
  | Tran of { dt : value; t_stop : value; out : ident }
  | Dc of {
      source : ident;
      start : value;
      stop : value;
      step : value;
      out : ident;
    }

type card =
  | Resistor of { name : ident; n1 : ident; n2 : ident; r : value }
  | Capacitor of { name : ident; n1 : ident; n2 : ident; c : value }
  | Vsource of {
      name : ident;
      npos : ident;
      nneg : ident;
      dc : value;
      ac : value option;
    }
  | Isource of {
      name : ident;
      npos : ident;
      nneg : ident;
      dc : value;
      ac : value option;
    }
  | Vccs of {
      name : ident;
      out_p : ident;
      out_n : ident;
      in_p : ident;
      in_n : ident;
      gm : value;
    }
  | Mosfet of {
      name : ident;
      d : ident;
      g : ident;
      s : ident;
      b : ident;
      model : ident;
      params : assign list;  (** [w=], [l=] *)
    }
  | Instance of { name : ident; conns : ident list; sub : ident }
      (** [X<id> <node>... <subckt-name>] — unresolved until elaboration *)
  | Model of { name : ident; kind : ident; params : assign list }
  | Param of assign list
  | Nodeset of (ident * value) list
  | Analysis of analysis
  | End

type statement =
  | Card of { card : card; span : span }
  | Subckt of {
      name : ident;
      ports : ident list;
      body : statement list;  (** cards only — definitions do not nest *)
      span : span;
    }

type t = { statements : statement list }

val statement_span : statement -> span

val card_name : card -> ident option
(** The device name of an element card, [None] for directives. *)
