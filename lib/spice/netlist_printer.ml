module Ast = Netlist_ast

(* The canonical layout: one card per logical line, single spaces, directives
   lowercased, every identifier and value emitted as its verbatim source
   text.  Because parsing preserves those texts and the layout is a pure
   function of the AST, print-of-parse is a byte fixpoint: the first print
   normalises whitespace, comments, continuations and directive case, and
   every later parse/print cycle reproduces it exactly. *)

let assign (a : Ast.assign) = a.key.id ^ "=" ^ a.v.text

let analysis = function
  | Ast.Op -> ".op"
  | Ast.Ac { per_decade; f_lo; f_hi; out } ->
      String.concat " "
        [ ".ac"; "dec"; per_decade.text; f_lo.text; f_hi.text; out.id ]
  | Ast.Tran { dt; t_stop; out } ->
      String.concat " " [ ".tran"; dt.text; t_stop.text; out.id ]
  | Ast.Dc { source; start; stop; step; out } ->
      String.concat " "
        [ ".dc"; source.id; start.text; stop.text; step.text; out.id ]

let card = function
  | Ast.Resistor { name; n1; n2; r } ->
      String.concat " " [ name.id; n1.id; n2.id; r.text ]
  | Ast.Capacitor { name; n1; n2; c } ->
      String.concat " " [ name.id; n1.id; n2.id; c.text ]
  | Ast.Vsource { name; npos; nneg; dc; ac }
  | Ast.Isource { name; npos; nneg; dc; ac } ->
      String.concat " "
        ([ name.id; npos.id; nneg.id; dc.text ]
        @ match ac with Some a -> [ "ac=" ^ a.text ] | None -> [])
  | Ast.Vccs { name; out_p; out_n; in_p; in_n; gm } ->
      String.concat " "
        [ name.id; out_p.id; out_n.id; in_p.id; in_n.id; gm.text ]
  | Ast.Mosfet { name; d; g; s; b; model; params } ->
      String.concat " "
        ([ name.id; d.id; g.id; s.id; b.id; model.id ]
        @ List.map assign params)
  | Ast.Instance { name; conns; sub } ->
      String.concat " "
        ((name.id :: List.map (fun (i : Ast.ident) -> i.id) conns) @ [ sub.id ])
  | Ast.Model { name; kind; params } ->
      String.concat " "
        ((".model" :: name.id :: kind.id :: []) @ List.map assign params)
  | Ast.Param assigns ->
      String.concat " " (".param" :: List.map assign assigns)
  | Ast.Nodeset entries ->
      String.concat " "
        (".nodeset"
        :: List.map
             (fun ((n : Ast.ident), (v : Ast.value)) ->
               "v(" ^ n.id ^ ")=" ^ v.text)
             entries)
  | Ast.Analysis a -> analysis a
  | Ast.End -> ".end"

let rec statement buf = function
  | Ast.Card { card = c; _ } ->
      Buffer.add_string buf (card c);
      Buffer.add_char buf '\n'
  | Ast.Subckt { name; ports; body; _ } ->
      Buffer.add_string buf
        (String.concat " "
           (".subckt" :: name.id
           :: List.map (fun (p : Ast.ident) -> p.id) ports));
      Buffer.add_char buf '\n';
      List.iter (statement buf) body;
      Buffer.add_string buf ".ends\n"

let to_string (ast : Ast.t) =
  let buf = Buffer.create 1024 in
  List.iter (statement buf) ast.statements;
  Buffer.contents buf
