(** Canonical netlist pretty-printer.

    [to_string (parse text)] normalises layout (single spaces, one card per
    line, lowercased directives, comments and continuations dropped) while
    emitting every name and value as its verbatim source text — so
    print-of-parse is byte-idempotent:
    [to_string (parse (to_string (parse text))) = to_string (parse text)]
    for every parseable [text].  Pinned by the round-trip suites in
    [test/t_netlist.ml] and the CI idempotence job. *)

val to_string : Netlist_ast.t -> string

val card : Netlist_ast.card -> string
(** One card, without the trailing newline. *)
