module Ast = Netlist_ast
module Lexer = Netlist_lexer

let lower = String.lowercase_ascii

let ident_of (tok : Lexer.token) : Ast.ident =
  { id = tok.text; ispan = tok.span }

(* ---------- {..} expression parsing ---------- *)

(* The character stream of a brace expression, with [base] locating the
   whole token so errors can point at it.  Individual sub-expressions keep
   the token's span — column precision inside a brace is not worth a second
   position tracker. *)

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_num_start c = (c >= '0' && c <= '9') || c = '.'

type etok = Enum of float | Eref of string | Eop of char

let expr_lex span s =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then incr i
    else if is_num_start c then begin
      (* a number with optional engineering suffix: digits, '.', letters,
         and a sign right after an exponent 'e' *)
      let start = !i in
      let prev_e = ref false in
      let continue = ref true in
      while !continue && !i < n do
        let d = s.[!i] in
        if
          is_ident_char d || d = '.'
          || ((d = '+' || d = '-') && !prev_e)
        then begin
          prev_e := d = 'e' || d = 'E';
          incr i
        end
        else continue := false
      done;
      let text = String.sub s start (!i - start) in
      match Ast.float_of_spice text with
      | Some v -> out := Enum v :: !out
      | None -> Ast.error span ("cannot parse number " ^ text ^ " in expression")
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        incr i
      done;
      out := Eref (lower (String.sub s start (!i - start))) :: !out
    end
    else if c = '+' || c = '-' || c = '*' || c = '/' || c = '(' || c = ')'
    then begin
      out := Eop c :: !out;
      incr i
    end
    else
      Ast.error span
        (Printf.sprintf "unexpected character %C in expression" c)
  done;
  List.rev !out

(* recursive descent with a depth bound so hostile input ("(((((...") can
   never overflow the stack *)
let max_expr_depth = 100

let parse_expr span toks =
  let toks = ref toks in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let advance () = match !toks with [] -> () | _ :: rest -> toks := rest in
  let rec atom depth =
    if depth > max_expr_depth then
      Ast.error span "expression too deeply nested";
    match peek () with
    | Some (Enum v) ->
        advance ();
        Ast.Num v
    | Some (Eref r) ->
        advance ();
        Ast.Ref r
    | Some (Eop '-') ->
        advance ();
        Ast.Neg (atom (depth + 1))
    | Some (Eop '+') ->
        advance ();
        atom (depth + 1)
    | Some (Eop '(') ->
        advance ();
        let e = sum (depth + 1) in
        (match peek () with
        | Some (Eop ')') -> advance ()
        | _ -> Ast.error span "expected ) in expression");
        e
    | Some (Eop c) ->
        Ast.error span (Printf.sprintf "unexpected %C in expression" c)
    | None -> Ast.error span "truncated expression"
  and product depth =
    let left = atom depth in
    let rec go acc =
      match peek () with
      | Some (Eop '*') ->
          advance ();
          go (Ast.Bin (Ast.Mul, acc, atom depth))
      | Some (Eop '/') ->
          advance ();
          go (Ast.Bin (Ast.Div, acc, atom depth))
      | _ -> acc
    in
    go left
  and sum depth =
    let left = product depth in
    let rec go acc =
      match peek () with
      | Some (Eop '+') ->
          advance ();
          go (Ast.Bin (Ast.Add, acc, product depth))
      | Some (Eop '-') ->
          advance ();
          go (Ast.Bin (Ast.Sub, acc, product depth))
      | _ -> acc
    in
    go left
  in
  let e = sum 0 in
  (match peek () with
  | Some _ -> Ast.error span "trailing tokens in expression"
  | None -> ());
  e

(* ---------- values and key=value fields ---------- *)

let value_of_text span text : Ast.value =
  let n = String.length text in
  if n >= 2 && text.[0] = '{' && text.[n - 1] = '}' then
    let inner = String.sub text 1 (n - 2) in
    { text; expr = parse_expr span (expr_lex span inner); vspan = span }
  else
    match Ast.float_of_spice text with
    | Some v -> { text; expr = Ast.Num v; vspan = span }
    | None -> Ast.error span ("cannot parse value " ^ text)

let value_of (tok : Lexer.token) = value_of_text tok.span tok.text

(* split "key=value" at the first '=' outside braces (there are no braces
   before the '=' in practice, so the first '=' is it) *)
let assign_of (tok : Lexer.token) : Ast.assign =
  match String.index_opt tok.text '=' with
  | None | Some 0 ->
      Ast.error tok.span ("expected key=value, got " ^ tok.text)
  | Some i ->
      let key = String.sub tok.text 0 i in
      let v = String.sub tok.text (i + 1) (String.length tok.text - i - 1) in
      if v = "" then Ast.error tok.span ("missing value in " ^ tok.text);
      let kspan = { tok.span with Ast.end_col = tok.span.Ast.start_col + i } in
      let vspan =
        { tok.span with Ast.start_col = tok.span.Ast.start_col + i + 1 }
      in
      { key = { id = key; ispan = kspan }; v = value_of_text vspan v }

let assigns_of toks = List.map assign_of toks

(* ---------- cards ---------- *)

let nodeset_entry (tok : Lexer.token) : Ast.ident * Ast.value =
  match String.index_opt tok.text '=' with
  | None -> Ast.error tok.span "malformed .nodeset entry (want v(<node>)=<volts>)"
  | Some eq ->
      let lhs = String.sub tok.text 0 eq in
      let rhs =
        String.sub tok.text (eq + 1) (String.length tok.text - eq - 1)
      in
      let len = String.length lhs in
      if
        len < 4
        || lower (String.sub lhs 0 2) <> "v("
        || lhs.[len - 1] <> ')'
      then
        Ast.error tok.span
          "malformed .nodeset entry (want v(<node>)=<volts>)"
      else begin
        let node = String.sub lhs 2 (len - 3) in
        let nspan =
          {
            tok.span with
            Ast.start_col = tok.span.Ast.start_col + 2;
            end_col = tok.span.Ast.start_col + len - 1;
          }
        in
        let vspan =
          { tok.span with Ast.start_col = tok.span.Ast.start_col + eq + 1 }
        in
        ({ Ast.id = node; ispan = nspan }, value_of_text vspan rhs)
      end

(* the ac= tail of a V/I card: only the [ac] key is defined *)
let source_tail opts =
  List.fold_left
    (fun ac (a : Ast.assign) ->
      match lower a.key.id with
      | "ac" -> begin
          match ac with
          | None -> Some a.v
          | Some _ -> Ast.error a.key.ispan "duplicate ac= on source card"
        end
      | other ->
          Ast.error a.key.ispan
            (Printf.sprintf "unknown source option %s (only ac= is defined)"
               other))
    None (assigns_of opts)

let analysis_of span (head : Lexer.token) rest : Ast.analysis =
  match (lower head.text, (rest : Lexer.token list)) with
  | ".op", [] -> Ast.Op
  | ".ac", [ mode; pts; f_lo; f_hi; out ] when lower mode.text = "dec" ->
      Ast.Ac
        {
          per_decade = value_of pts;
          f_lo = value_of f_lo;
          f_hi = value_of f_hi;
          out = ident_of out;
        }
  | ".tran", [ dt; t_stop; out ] ->
      Ast.Tran
        { dt = value_of dt; t_stop = value_of t_stop; out = ident_of out }
  | ".dc", [ source; start; stop; step; out ] ->
      Ast.Dc
        {
          source = ident_of source;
          start = value_of start;
          stop = value_of stop;
          step = value_of step;
          out = ident_of out;
        }
  | _ ->
      Ast.error span
        ("malformed analysis card: "
        ^ String.concat " " (List.map (fun (t : Lexer.token) -> t.text) (head :: rest)))

let is_analysis_card l = l = ".op" || l = ".ac" || l = ".tran" || l = ".dc"

let card_of_line ~in_subckt (line : Lexer.line) : Ast.card =
  match line.tokens with
  | [] -> assert false (* the lexer never yields an empty logical line *)
  | head :: rest -> begin
      let l = lower head.text in
      let span = line.lspan in
      let need_name () = ident_of head in
      match l.[0] with
      | '.' when is_analysis_card l ->
          if in_subckt then
            Ast.error span "analysis cards are not allowed inside .subckt"
          else Ast.Analysis (analysis_of span head rest)
      | '.' when l = ".model" -> begin
          match rest with
          | name :: kind :: opts ->
              Ast.Model
                {
                  name = ident_of name;
                  kind = ident_of kind;
                  params = assigns_of opts;
                }
          | _ -> Ast.error span "malformed .model card"
        end
      | '.' when l = ".param" -> begin
          match rest with
          | [] -> Ast.error span ".param without assignments"
          | opts -> Ast.Param (assigns_of opts)
        end
      | '.' when l = ".nodeset" -> begin
          match rest with
          | [] -> Ast.error span ".nodeset without entries"
          | entries -> Ast.Nodeset (List.map nodeset_entry entries)
        end
      | '.' when l = ".end" ->
          if in_subckt then
            Ast.error span "unexpected .end inside .subckt (expected .ends)"
          else Ast.End
      | '.' -> Ast.error head.span ("unknown directive " ^ head.text)
      | 'r' -> begin
          match rest with
          | [ n1; n2; r ] ->
              Ast.Resistor
                {
                  name = need_name ();
                  n1 = ident_of n1;
                  n2 = ident_of n2;
                  r = value_of r;
                }
          | _ -> Ast.error span ("malformed resistor card " ^ head.text)
        end
      | 'c' -> begin
          match rest with
          | [ n1; n2; c ] ->
              Ast.Capacitor
                {
                  name = need_name ();
                  n1 = ident_of n1;
                  n2 = ident_of n2;
                  c = value_of c;
                }
          | _ -> Ast.error span ("malformed capacitor card " ^ head.text)
        end
      | 'v' | 'i' -> begin
          match rest with
          | npos :: nneg :: dc :: opts ->
              let name = need_name ()
              and npos = ident_of npos
              and nneg = ident_of nneg
              and dc = value_of dc
              and ac = source_tail opts in
              if l.[0] = 'v' then Ast.Vsource { name; npos; nneg; dc; ac }
              else Ast.Isource { name; npos; nneg; dc; ac }
          | _ -> Ast.error span ("malformed source card " ^ head.text)
        end
      | 'g' -> begin
          match rest with
          | [ op; on; ip; inn; gm ] ->
              Ast.Vccs
                {
                  name = need_name ();
                  out_p = ident_of op;
                  out_n = ident_of on;
                  in_p = ident_of ip;
                  in_n = ident_of inn;
                  gm = value_of gm;
                }
          | _ -> Ast.error span ("malformed VCCS card " ^ head.text)
        end
      | 'm' -> begin
          match rest with
          | d :: g :: s :: b :: model :: opts ->
              Ast.Mosfet
                {
                  name = need_name ();
                  d = ident_of d;
                  g = ident_of g;
                  s = ident_of s;
                  b = ident_of b;
                  model = ident_of model;
                  params = assigns_of opts;
                }
          | _ -> Ast.error span ("malformed MOSFET card " ^ head.text)
        end
      | 'x' -> begin
          match List.rev rest with
          | [] -> Ast.error span ("malformed instance: " ^ head.text)
          | sub :: rev_conns ->
              Ast.Instance
                {
                  name = need_name ();
                  conns = List.rev_map ident_of rev_conns;
                  sub = ident_of sub;
                }
        end
      | _ ->
          Ast.error span
            ("malformed card: "
            ^ String.concat " "
                (List.map (fun (t : Lexer.token) -> t.text) line.tokens))
    end

(* ---------- statements ---------- *)

let parse text : Ast.t =
  let lines = Lexer.tokenize text in
  let rec top acc = function
    | [] -> List.rev acc
    | (line : Lexer.line) :: rest -> begin
        match line.tokens with
        | [] -> top acc rest
        | head :: args -> begin
            match lower head.text with
            | ".subckt" -> begin
                match args with
                | name :: (_ :: _ as ports) ->
                    let body, ends_span, rest' = body line.lspan [] rest in
                    let stmt =
                      Ast.Subckt
                        {
                          name = ident_of name;
                          ports = List.map ident_of ports;
                          body;
                          span = Ast.hull line.lspan ends_span;
                        }
                    in
                    top (stmt :: acc) rest'
                | _ ->
                    Ast.error line.lspan
                      "malformed .subckt header (want .subckt <name> <port>...)"
              end
            | ".ends" -> Ast.error line.lspan ".ends without .subckt"
            | _ ->
                let card = card_of_line ~in_subckt:false line in
                top (Ast.Card { card; span = line.lspan } :: acc) rest
          end
      end
  and body opening acc = function
    | [] ->
        Ast.error opening
          "unterminated .subckt (missing .ends before end of input)"
    | (line : Lexer.line) :: rest -> begin
        match line.tokens with
        | [] -> body opening acc rest
        | head :: _ -> begin
            match lower head.text with
            | ".ends" -> (List.rev acc, line.lspan, rest)
            | ".subckt" ->
                Ast.error line.lspan
                  "nested .subckt definitions are not supported"
            | _ ->
                let card = card_of_line ~in_subckt:true line in
                body opening (Ast.Card { card; span = line.lspan } :: acc) rest
          end
      end
  in
  { statements = top [] lines }
