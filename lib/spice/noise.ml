module Linsys = Yield_numeric.Linsys

type flicker = { kf_n : float; kf_p : float }

let default_flicker = { kf_n = 1e-24; kf_p = 3e-25 }

let no_flicker = { kf_n = 0.; kf_p = 0. }

type contribution = {
  device : string;
  kind : [ `Thermal | `Flicker ];
  psd_v2_per_hz : float;
}

type point = {
  freq : float;
  total_v2_per_hz : float;
  contributions : contribution list;
}

let temperature = 300.

let boltzmann = 1.380649e-23

(* a current-noise source between two nodes with PSD (A^2/Hz); [kind]
   carries a frequency dependence for flicker *)
type source = {
  name : string;
  from_node : Device.node;
  to_node : Device.node;
  psd : float -> float;  (* A^2/Hz at a given frequency *)
  src_kind : [ `Thermal | `Flicker ];
}

let collect_sources ?models flicker circuit (op : Dcop.t) =
  let four_kt = 4. *. boltzmann *. temperature in
  let acc = ref [] in
  Array.iteri
    (fun di dev ->
      match dev with
      | Device.Resistor { name; n1; n2; ohms; _ } ->
          acc :=
            {
              name;
              from_node = n1;
              to_node = n2;
              psd = (fun _ -> four_kt /. ohms);
              src_kind = `Thermal;
            }
            :: !acc
      | Device.Mosfet { name; d; s; model; w; l; _ } ->
          let model = Mna.model_override models di model in
          let mos = Dcop.mos_op op name in
          let gm = mos.Mosfet.gm in
          let thermal = four_kt *. (2. /. 3.) *. gm in
          acc :=
            {
              name;
              from_node = d;
              to_node = s;
              psd = (fun _ -> thermal);
              src_kind = `Thermal;
            }
            :: !acc;
          let kf =
            match model.Mosfet.polarity with
            | Mosfet.Nmos -> flicker.kf_n
            | Mosfet.Pmos -> flicker.kf_p
          in
          if kf > 0. then begin
            let scale = kf *. gm *. gm /. (model.Mosfet.cox *. w *. l) in
            acc :=
              {
                name;
                from_node = d;
                to_node = s;
                psd = (fun f -> scale /. Float.max f 1e-3);
                src_kind = `Flicker;
              }
              :: !acc
          end
      | Device.Capacitor _ | Device.Vsource _ | Device.Isource _
      | Device.Vccs _ ->
          ())
    (Circuit.devices circuit);
  List.rev !acc

let output_noise ?(flicker = default_flicker) ?sys ?models circuit op ~out
    ~freqs =
  let s =
    match sys with Some s -> s | None -> Mna.dense_sys_of_layout op.Dcop.layout
  in
  let layout = Mna.sys_layout s in
  let cs = Mna.sys_complex s in
  let ops name = Dcop.mos_op op name in
  let _ = Mna.assemble_ac_into cs circuit layout ~ops in
  let sources = collect_sources ?models flicker circuit op in
  let size = Mna.size layout in
  Array.map
    (fun freq ->
      let omega = 2. *. Float.pi *. freq in
      let solve = cs.Linsys.factor ~omega in
      let transfer_mag2 src =
        (* unit current injected from [from_node] into [to_node] *)
        let rhs = Array.make size Complex.zero in
        if src.from_node <> Device.ground then
          rhs.(src.from_node - 1) <- { Complex.re = -1.; im = 0. };
        if src.to_node <> Device.ground then
          rhs.(src.to_node - 1) <- { Complex.re = 1.; im = 0. };
        let x = solve rhs in
        if out = Device.ground then 0.
        else begin
          let z = x.(out - 1) in
          (z.Complex.re *. z.Complex.re) +. (z.Complex.im *. z.Complex.im)
        end
      in
      let contributions =
        List.map
          (fun src ->
            {
              device = src.name;
              kind = src.src_kind;
              psd_v2_per_hz = src.psd freq *. transfer_mag2 src;
            })
          sources
      in
      let total =
        List.fold_left (fun acc c -> acc +. c.psd_v2_per_hz) 0. contributions
      in
      let sorted =
        List.sort
          (fun a b -> Float.compare b.psd_v2_per_hz a.psd_v2_per_hz)
          contributions
      in
      { freq; total_v2_per_hz = total; contributions = sorted })
    freqs

let input_referred points ~gain =
  if Array.length points <> Array.length gain.Ac.freqs then
    invalid_arg "Noise.input_referred: frequency grids differ";
  Array.mapi
    (fun i p ->
      if p.freq <> gain.Ac.freqs.(i) then
        invalid_arg "Noise.input_referred: frequency grids differ";
      let h = gain.Ac.response.(i) in
      let mag2 = (h.Complex.re *. h.Complex.re) +. (h.Complex.im *. h.Complex.im) in
      (p.freq, if mag2 > 0. then p.total_v2_per_hz /. mag2 else infinity))
    points

let integrate_rms pairs =
  let n = Array.length pairs in
  if n < 2 then invalid_arg "Noise.integrate_rms: need at least two points";
  let acc = ref 0. in
  for i = 1 to n - 1 do
    let f0, p0 = pairs.(i - 1) and f1, p1 = pairs.(i) in
    acc := !acc +. (0.5 *. (p0 +. p1) *. (f1 -. f0))
  done;
  sqrt !acc
