(** Netlist lexer: physical lines to logical lines of spanned tokens.

    - ['*'] as the first non-blank character comments out the physical line;
      [';'] comments out the rest of one (outside braces).
    - ['+'] as the first non-blank character continues the previous logical
      line; the joined tokens keep their own physical-line spans.
    - Tokens are whitespace-separated byte strings, except that a ['{']
      swallows everything up to its matching ['}'] (spaces included), so
      [.param] expressions like [{w * 2 + 1u}] stay single tokens.  Braces
      must close on the same physical line.

    The lexer never raises anything but {!Netlist_ast.Parse_error}, and
    accepts arbitrary bytes — garbage becomes tokens for the parser to
    reject with a span. *)

type token = { text : string; span : Netlist_ast.span }

type line = { tokens : token list; lspan : Netlist_ast.span }
(** One logical line: at least one token; [lspan] hulls all of them. *)

val tokenize : string -> line list
(** @raise Netlist_ast.Parse_error on an unterminated brace or a leading
    continuation line. *)
