module Vec = Yield_numeric.Vec
module Mat = Yield_numeric.Mat
module Linsys = Yield_numeric.Linsys

type layout = {
  n_nodes : int;
  size : int;
  branches : (string, int) Hashtbl.t;
}

let layout circuit =
  let n_nodes = Circuit.node_count circuit in
  let branches = Hashtbl.create 8 in
  let next = ref n_nodes in
  Array.iter
    (fun dev ->
      match dev with
      | Device.Vsource { name; _ } ->
          Hashtbl.replace branches name !next;
          incr next
      | Device.Resistor _ | Device.Capacitor _ | Device.Isource _
      | Device.Vccs _ | Device.Mosfet _ ->
          ())
    (Circuit.devices circuit);
  { n_nodes; size = !next; branches }

let size l = l.size

let n_nodes l = l.n_nodes

let branch_index l name = Hashtbl.find l.branches name

let voltage x n = if n = Device.ground then 0. else x.(n - 1)

(* Per-sample model overrides: [models.(di)] replaces the MOSFET model of
   device index [di] (position in [Circuit.devices]) when set.  [None] (or
   a [None] slot) means the nominal model baked into the circuit — this is
   the batch-first Monte Carlo patching path, which must apply the exact
   model the full-rebuild path would have baked in. *)
type models = Mosfet.model option array

let model_override models di default =
  match models with
  | None -> default
  | Some arr -> ( match arr.(di) with Some m -> m | None -> default)

(* Stamping helpers, generic over an [add row col value] accumulator so the
   same arithmetic lands in a dense matrix or a sparse value slot; ground
   rows and columns are skipped. *)

let stamp_g_into add a b g =
  if a <> Device.ground then add (a - 1) (a - 1) g;
  if b <> Device.ground then add (b - 1) (b - 1) g;
  if a <> Device.ground && b <> Device.ground then begin
    add (a - 1) (b - 1) (-.g);
    add (b - 1) (a - 1) (-.g)
  end

(* transconductance: current [g * v(cp, cn)] leaves node [op] and enters
   node [on] *)
let stamp_gm_into add op_node on_node cp cn g =
  let entry row col sign =
    if row <> Device.ground && col <> Device.ground then
      add (row - 1) (col - 1) (sign *. g)
  in
  entry op_node cp 1.;
  entry op_node cn (-1.);
  entry on_node cp (-1.);
  entry on_node cn 1.

let stamp_g m a b g = stamp_g_into (Mat.add_to m) a b g

let stamp_gm m op_node on_node cp cn g =
  stamp_gm_into (Mat.add_to m) op_node on_node cp cn g

let inject rhs node value =
  if node <> Device.ground then rhs.(node - 1) <- rhs.(node - 1) +. value

(* NMOS-normalised linearisation of a MOSFET at the guess [x].  Returns the
   operating point plus the device-convention drain current [ids_eff] (the
   current entering the drain terminal). *)
let mos_linearise ~model ~w ~l ~d ~g ~s ~b x =
  let vd = voltage x d
  and vg = voltage x g
  and vs = voltage x s
  and vb = voltage x b in
  let vgs, vds, vbs =
    match model.Mosfet.polarity with
    | Mosfet.Nmos -> (vg -. vs, vd -. vs, vb -. vs)
    | Mosfet.Pmos -> (vs -. vg, vs -. vd, vs -. vb)
  in
  let op = Mosfet.eval model ~w ~l ~vgs ~vds ~vbs in
  let ids_eff =
    match model.Mosfet.polarity with
    | Mosfet.Nmos -> op.Mosfet.ids
    | Mosfet.Pmos -> -.op.Mosfet.ids
  in
  (op, ids_eff)

let stamp_conductance_into = stamp_g_into

let stamp_conductance = stamp_g

let stamp_transconductance_into add ~out_p ~out_n ~in_p ~in_n g =
  stamp_gm_into add out_p out_n in_p in_n g

let stamp_transconductance m ~out_p ~out_n ~in_p ~in_n g =
  stamp_gm m out_p out_n in_p in_n g

let stamp_branch_into add l ~name ~npos ~nneg =
  let br = Hashtbl.find l.branches name in
  if npos <> Device.ground then begin
    add (npos - 1) br 1.;
    add br (npos - 1) 1.
  end;
  if nneg <> Device.ground then begin
    add (nneg - 1) br (-1.);
    add br (nneg - 1) (-1.)
  end

let stamp_branch m l ~name ~npos ~nneg =
  stamp_branch_into (Mat.add_to m) l ~name ~npos ~nneg

let stamp_mosfet_dc_into add rhs ~x ~d ~g:gate ~s ~b ~model ~w ~l =
  let op, ids_eff = mos_linearise ~model ~w ~l ~d ~g:gate ~s ~b x in
  let gm = op.Mosfet.gm and gds = op.Mosfet.gds and gmb = op.Mosfet.gmb in
  stamp_gm_into add d s gate s gm;
  stamp_g_into add d s gds;
  stamp_gm_into add d s b s gmb;
  let vd = voltage x d
  and vg = voltage x gate
  and vs = voltage x s
  and vb = voltage x b in
  let linear_current =
    (gm *. (vg -. vs)) +. (gds *. (vd -. vs)) +. (gmb *. (vb -. vs))
  in
  let ieq = linear_current -. ids_eff in
  inject rhs d ieq;
  inject rhs s (-.ieq);
  op

let stamp_mosfet_dc mat rhs ~x ~d ~g ~s ~b ~model ~w ~l =
  stamp_mosfet_dc_into (Mat.add_to mat) rhs ~x ~d ~g ~s ~b ~model ~w ~l

(* ---------- structural pattern, built once per topology ---------- *)

(* Union of every structural position any analysis stamps for this circuit:
   the DC Newton system (gmin node diagonal, conductances, branch rows,
   transconductances), the AC system (capacitor and MOS-capacitance
   positions, leak diagonal), and the transient companion models (the same
   capacitive pairs as conductances).  One superset pattern per topology
   keeps a single cached symbolic factorisation valid for all of them at
   the cost of a little extra fill. *)
let pattern circuit l =
  let bld = Linsys.Pattern.builder l.size in
  let add i j = Linsys.Pattern.add bld i j in
  (* capacitor-only positions are numerically zero in a DC assembly, so
     they enter the pattern as weak entries: structurally present (the AC
     and transient assemblies fill them) but never eligible as a pivot of
     the csr transversal *)
  let add_weak i j = Linsys.Pattern.add_weak bld i j in
  let pg a b = stamp_g_into (fun i j _ -> add i j) a b 1. in
  let pc a b = stamp_g_into (fun i j _ -> add_weak i j) a b 1. in
  let pgm op_node on_node cp cn =
    stamp_gm_into (fun i j _ -> add i j) op_node on_node cp cn 1.
  in
  for i = 0 to l.n_nodes - 1 do
    add i i
  done;
  Array.iter
    (fun dev ->
      match dev with
      | Device.Resistor { n1; n2; _ } -> pg n1 n2
      | Device.Capacitor { n1; n2; _ } -> pc n1 n2
      | Device.Vsource { name; npos; nneg; _ } ->
          stamp_branch_into (fun i j _ -> add i j) l ~name ~npos ~nneg
      | Device.Isource _ -> ()
      | Device.Vccs { out_p; out_n; in_p; in_n; _ } -> pgm out_p out_n in_p in_n
      | Device.Mosfet { d; g; s; b; _ } ->
          pgm d s g s;
          pg d s;
          pgm d s b s;
          (* capacitive pairs: AC C stamps and transient companion models *)
          pc g s;
          pc g d;
          pc d b;
          pc s b)
    (Circuit.devices circuit);
  Linsys.Pattern.build bld

type sys = { sys_layout : layout; compiled : Linsys.t }

let sys ?(backend = Linsys.Dense) circuit =
  let l = layout circuit in
  { sys_layout = l; compiled = Linsys.compile backend (pattern circuit l) }

let dense_sys_of_layout l =
  { sys_layout = l; compiled = Linsys.dense_of_size l.size }

let sys_layout s = s.sys_layout

let sys_real s = Linsys.real s.compiled

let sys_complex s = Linsys.complex s.compiled

let sys_solver_name s = Linsys.name s.compiled

(* ---------- assembly ---------- *)

let assemble_dc_core add rhs ?models circuit l ~x ~source_scale ~gmin =
  for i = 0 to l.n_nodes - 1 do
    add i i gmin
  done;
  let stamp_device di dev =
    match dev with
    | Device.Resistor { n1; n2; ohms; _ } -> stamp_g_into add n1 n2 (1. /. ohms)
    | Device.Capacitor _ -> ()
    | Device.Vsource { name; npos; nneg; dc; _ } ->
        stamp_branch_into add l ~name ~npos ~nneg;
        rhs.(Hashtbl.find l.branches name) <- dc *. source_scale
    | Device.Isource { npos; nneg; dc; _ } ->
        inject rhs npos (-.dc *. source_scale);
        inject rhs nneg (dc *. source_scale)
    | Device.Vccs { out_p; out_n; in_p; in_n; gm; _ } ->
        stamp_gm_into add out_p out_n in_p in_n gm
    | Device.Mosfet { d; g = gate; s; b; model; w; l = len; _ } ->
        (* For both polarities, in node-voltage terms:
             d ids_eff/d vg = gm, d/d vd = gds, d/d vb = gmb,
             d/d vs = -(gm + gds + gmb).
           (For PMOS the two sign flips cancel.) *)
        let model = model_override models di model in
        ignore
          (stamp_mosfet_dc_into add rhs ~x ~d ~g:gate ~s ~b ~model ~w ~l:len)
  in
  Array.iteri stamp_device (Circuit.devices circuit)

let assemble_dc ?models circuit l ~x ~source_scale ~gmin =
  let g = Mat.create l.size l.size in
  let rhs = Vec.create l.size in
  assemble_dc_core (Mat.add_to g) rhs ?models circuit l ~x ~source_scale ~gmin;
  (g, rhs)

let assemble_dc_into (rs : Linsys.real) ?models circuit l ~x ~source_scale
    ~gmin =
  rs.Linsys.reset ();
  let rhs = Vec.create l.size in
  assemble_dc_core rs.Linsys.add rhs ?models circuit l ~x ~source_scale ~gmin;
  rhs

let mos_operating_points ?models circuit ~x =
  let acc = ref [] in
  Array.iteri
    (fun di dev ->
      match dev with
      | Device.Mosfet { name; d; g; s; b; model; w; l } ->
          let model = model_override models di model in
          let op, _ = mos_linearise ~model ~w ~l ~d ~g ~s ~b x in
          acc := (name, op) :: !acc
      | Device.Resistor _ | Device.Capacitor _ | Device.Vsource _
      | Device.Isource _ | Device.Vccs _ ->
          ())
    (Circuit.devices circuit);
  List.rev !acc

let assemble_ac_core add_g add_c rhs circuit l ~ops =
  let stamp_device dev =
    match dev with
    | Device.Resistor { n1; n2; ohms; _ } -> stamp_g_into add_g n1 n2 (1. /. ohms)
    | Device.Capacitor { n1; n2; farads; _ } -> stamp_g_into add_c n1 n2 farads
    | Device.Vsource { name; npos; nneg; ac; _ } ->
        stamp_branch_into add_g l ~name ~npos ~nneg;
        rhs.(Hashtbl.find l.branches name) <- { Complex.re = ac; im = 0. }
    | Device.Isource { npos; nneg; ac; _ } ->
        if npos <> Device.ground then
          rhs.(npos - 1) <-
            Complex.add rhs.(npos - 1) { Complex.re = -.ac; im = 0. };
        if nneg <> Device.ground then
          rhs.(nneg - 1) <-
            Complex.add rhs.(nneg - 1) { Complex.re = ac; im = 0. }
    | Device.Vccs { out_p; out_n; in_p; in_n; gm; _ } ->
        stamp_gm_into add_g out_p out_n in_p in_n gm
    | Device.Mosfet { name; d; g = gate; s; b; _ } ->
        let op = ops name in
        stamp_gm_into add_g d s gate s op.Mosfet.gm;
        stamp_g_into add_g d s op.Mosfet.gds;
        stamp_gm_into add_g d s b s op.Mosfet.gmb;
        stamp_g_into add_c gate s op.Mosfet.cgs;
        stamp_g_into add_c gate d op.Mosfet.cgd;
        stamp_g_into add_c d b op.Mosfet.cdb;
        stamp_g_into add_c s b op.Mosfet.csb
  in
  Array.iter stamp_device (Circuit.devices circuit);
  (* small leak keeps floating nodes (e.g. pure-capacitive) solvable *)
  for i = 0 to l.n_nodes - 1 do
    add_g i i 1e-12
  done

let assemble_ac circuit l ~ops =
  let g = Mat.create l.size l.size in
  let c = Mat.create l.size l.size in
  let rhs = Array.make l.size Complex.zero in
  assemble_ac_core (Mat.add_to g) (Mat.add_to c) rhs circuit l ~ops;
  (g, c, rhs)

let assemble_ac_into (cs : Linsys.complex_sys) circuit l ~ops =
  cs.Linsys.creset ();
  let rhs = Array.make l.size Complex.zero in
  assemble_ac_core cs.Linsys.add_g cs.Linsys.add_c rhs circuit l ~ops;
  rhs
