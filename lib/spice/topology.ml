type issue =
  | No_dc_path of { node : string }
  | No_ac_path of { node : string }
  | Vsource_loop of { through : string }

let issue_to_string = function
  | No_dc_path { node } ->
      Printf.sprintf "node %s has no DC path to ground" node
  | No_ac_path { node } ->
      Printf.sprintf "node %s has no AC path to ground" node
  | Vsource_loop { through } ->
      Printf.sprintf "voltage source %s closes a loop of voltage sources"
        through

(* union-find over node indices, path-halving *)
let rec find parent i =
  let p = parent.(i) in
  if p = i then i
  else begin
    parent.(i) <- parent.(p);
    find parent parent.(i)
  end

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then parent.(ra) <- rb

(* DC-conductive edges of a device: pairs of terminals a DC current can flow
   between.  Gates, bulks, capacitors and current sources conduct none. *)
let conductive_edges = function
  | Device.Resistor { n1; n2; _ } -> [ (n1, n2) ]
  | Device.Vsource { npos; nneg; _ } -> [ (npos, nneg) ]
  | Device.Mosfet { d; s; _ } -> [ (d, s) ]
  | Device.Capacitor _ | Device.Isource _ | Device.Vccs _ -> []

(* AC-conductive edges: at nonzero frequency capacitors conduct, and the MOS
   gate and bulk couple into the channel through the intrinsic/overlap and
   junction capacitance stamps.  Current sources still pin nothing, and a
   VCCS constrains neither of its own terminal voltages (its stamps sit in
   other rows/columns), so neither contributes an edge. *)
let ac_conductive_edges = function
  | Device.Resistor { n1; n2; _ } | Device.Capacitor { n1; n2; _ } ->
      [ (n1, n2) ]
  | Device.Vsource { npos; nneg; _ } -> [ (npos, nneg) ]
  | Device.Mosfet { d; g; s; b; _ } ->
      [ (d, s); (g, d); (g, s); (b, d); (b, s) ]
  | Device.Isource _ | Device.Vccs _ -> []

let referenced_nodes circuit =
  let seen = Hashtbl.create 32 in
  Array.iter
    (fun dev ->
      List.iter
        (fun n -> if not (Hashtbl.mem seen n) then Hashtbl.add seen n ())
        (Device.nodes dev))
    (Circuit.devices circuit);
  seen

let issues_with ~edges ~unreachable circuit =
  let n = Circuit.node_count circuit + 1 in
  let parent = Array.init n Fun.id in
  let vparent = Array.init n Fun.id in
  let loops = ref [] in
  Array.iter
    (fun dev ->
      List.iter (fun (a, b) -> union parent a b) (edges dev);
      match dev with
      | Device.Vsource { name; npos; nneg; _ } ->
          if find vparent npos = find vparent nneg then
            loops := Vsource_loop { through = name } :: !loops
          else union vparent npos nneg
      | _ -> ())
    (Circuit.devices circuit);
  let referenced = referenced_nodes circuit in
  let ground_root = find parent Device.ground in
  let floating = ref [] in
  for node = n - 1 downto 1 do
    if Hashtbl.mem referenced node && find parent node <> ground_root then
      floating := unreachable (Circuit.node_name circuit node) :: !floating
  done;
  List.rev !loops @ !floating

let dc_issues circuit =
  issues_with ~edges:conductive_edges
    ~unreachable:(fun node -> No_dc_path { node })
    circuit

let ac_issues circuit =
  issues_with ~edges:ac_conductive_edges
    ~unreachable:(fun node -> No_ac_path { node })
    circuit

let dangling_nodes circuit =
  let n = Circuit.node_count circuit + 1 in
  let count = Array.make n 0 in
  let owner = Array.make n "" in
  Array.iter
    (fun dev ->
      List.iter
        (fun node ->
          count.(node) <- count.(node) + 1;
          owner.(node) <- Device.name dev)
        (Device.nodes dev))
    (Circuit.devices circuit);
  let out = ref [] in
  for node = n - 1 downto 1 do
    if count.(node) = 1 then
      out := (Circuit.node_name circuit node, owner.(node)) :: !out
  done;
  !out
