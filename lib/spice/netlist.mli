(** SPICE-like netlist text format — the frontend facade.

    The paper's flow starts at "netlist and objective function generation";
    this module gives circuits a concrete textual form.  [parse] is a thin
    wrapper over the real frontend: {!Netlist_lexer} (spanned tokens,
    [+] continuation lines, [*] and [;] comments, case-insensitivity,
    engineering suffixes f p n u m k meg g t), {!Netlist_parser} (typed AST,
    every node carrying a source span), and {!Netlist_elab} (hierarchy
    flattening, [.param] arithmetic).

    Supported cards:

    {v
    .param <name>=<value|{expr}> ...     arithmetic over earlier parameters
    .model <name> nmos|pmos vth0=.. kp=.. gamma=.. phi=.. lambda0=.. n=..
                  cox=.. cgso=.. cgdo=.. cj=.. cjsw=.. ext=..
    R<id> n1 n2 <ohms>
    C<id> n1 n2 <farads>
    V<id> n+ n- <dc> [ac=<mag>]
    I<id> n+ n- <dc> [ac=<mag>]
    G<id> out+ out- in+ in- <gm>
    M<id> d g s b <model> w=<m> l=<m>
    .subckt <name> <port>...
      <cards>
    .ends
    X<id> <node>... <subckt-name>
    .nodeset v(<node>)=<volts>
    .op
    .ac dec <points-per-decade> <f_lo> <f_hi> <out-node>
    .tran <dt> <t_stop> <out-node>
    .dc <source> <start> <stop> <step> <out-node>
    .end
    v}

    Any card may continue on following lines that start with [+].  Value
    fields accept [{...}] expressions over previously assigned parameters
    ([+ - * / ( )], engineering suffixes).  Subcircuits are kept
    hierarchical in the AST and expanded at elaboration: internal nodes and
    device names of instance [X1] of subckt [amp] appear as [X1.<name>].
    Nested subcircuit definitions are not supported; instantiating a subckt
    from inside another is. *)

exception Parse_error of { span : Netlist_ast.span; message : string }
(** Every malformed input — lexical, syntactic or semantic — surfaces as
    this one typed error with a precise source {!Netlist_ast.span}.  It is
    the same exception as {!Netlist_ast.Parse_error} (a rebinding), so
    matching either name catches both. *)

type analysis = Netlist_elab.analysis =
  | Op  (** [.op] — DC operating point *)
  | Ac_analysis of { per_decade : int; f_lo : float; f_hi : float; out : string }
      (** [.ac dec <pts> <f_lo> <f_hi> <node>] *)
  | Tran_analysis of { dt : float; t_stop : float; out : string }
      (** [.tran <dt> <t_stop> <node>] *)
  | Dc_analysis of {
      source : string;
      start : float;
      stop : float;
      step : float;
      out : string;
    }  (** [.dc <source> <start> <stop> <step> <node>] *)

val parse_value : string -> float
(** Engineering-notation scalar ("10k", "3.3", "120p", "2meg").
    @raise Failure on malformed input. *)

val parse : string -> Circuit.t
(** @raise Parse_error with a source span on malformed input.  Analysis
    cards are accepted and ignored; use {!parse_with_analyses} to get
    them. *)

val parse_with_analyses : string -> Circuit.t * analysis list
(** Like {!parse} but also returns the analysis cards, in order.  Analysis
    cards are only allowed at the top level (not inside [.subckt]). *)

val print_canonical : string -> string
(** Parse to the AST and print back in the canonical layout — the
    byte-idempotent normal form ([print_canonical] of its own output is the
    identity).  @raise Parse_error on malformed input. *)

val to_string : Circuit.t -> string
(** Render a circuit back to netlist text.  MOS models registered via
    {!Circuit.name_model} (every [.model] card the reader saw) keep their
    original names; only unnamed, programmatically built models are
    deduplicated into generated [mod1], [mod2], ... cards. *)
