(** Small-signal noise analysis.

    Models the standard sources — resistor thermal noise [4kT/R], MOSFET
    channel thermal noise [4 k T gamma gm] (gamma = 2/3) and optional 1/f
    noise [kf gm^2 / (Cox W L f)] — and propagates each to the output
    through the linearised network, one AC solve per source per frequency.
    Output PSDs add as uncorrelated powers. *)

type flicker = {
  kf_n : float;  (** NMOS flicker coefficient, V^2 F (typ. 1e-24) *)
  kf_p : float;
}

val default_flicker : flicker

val no_flicker : flicker

type contribution = {
  device : string;
  kind : [ `Thermal | `Flicker ];
  psd_v2_per_hz : float;  (** contribution to the output PSD, V^2/Hz *)
}

type point = {
  freq : float;
  total_v2_per_hz : float;
  contributions : contribution list;  (** sorted, largest first *)
}

val output_noise :
  ?flicker:flicker -> ?sys:Mna.sys -> ?models:Mna.models -> Circuit.t ->
  Dcop.t -> out:Device.node -> freqs:float array -> point array
(** Output-referred noise spectral density at each frequency.  [sys] reuses
    a pre-compiled {!Mna.sys} solver session; [models] applies per-sample
    MOSFET model overrides (they set the flicker polarity/Cox scaling —
    the small-signal network itself comes from the operating points in the
    {!Dcop.t}). *)

val input_referred :
  point array -> gain:Ac.bode -> (float * float) array
(** [(freq, PSD_in)] pairs: output PSD divided by the squared transfer
    magnitude at each frequency.
    @raise Invalid_argument when the frequency grids differ. *)

val integrate_rms : (float * float) array -> float
(** Root of the PSD integrated over the grid (trapezoidal in linear
    frequency), in volts RMS. *)

val temperature : float
(** Analysis temperature, K (300). *)
