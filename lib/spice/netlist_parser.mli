(** Recursive-descent netlist parser: logical lines to the typed AST.

    Dispatches on the first token of each logical line (element letter or
    directive, case-insensitive), keeps [.subckt] definitions hierarchical
    (bodies are parsed eagerly but not instantiated — {!Netlist_elab} does
    that), and parses [{...}] parameter arithmetic into expression trees.

    All failures raise {!Netlist_ast.Parse_error} with the precise span of
    the offending token or card — never [Failure], never a crash, on any
    byte sequence. *)

val parse : string -> Netlist_ast.t
(** @raise Netlist_ast.Parse_error on malformed input. *)

val value_of_text : Netlist_ast.span -> string -> Netlist_ast.value
(** Parse one value field ("10k" or "{w*2+1u}") — exposed for tests. *)
