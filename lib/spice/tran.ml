module Vec = Yield_numeric.Vec
module Lu = Yield_numeric.Lu
module Linsys = Yield_numeric.Linsys

type options = {
  t_stop : float;
  dt : float;
  max_newton : int;
  vtol : float;
}

let options ?(max_newton = 60) ?(vtol = 1e-7) ~t_stop ~dt () =
  if t_stop <= 0. || dt <= 0. then invalid_arg "Tran.options: non-positive times";
  if dt > t_stop then invalid_arg "Tran.options: dt exceeds t_stop";
  { t_stop; dt; max_newton; vtol }

type t = {
  times : float array;
  solutions : float array array;
  layout : Mna.layout;
}

type error = Dc_failed of Dcop.error | Step_failed of { time : float }

let error_to_string = function
  | Dc_failed e -> "tran: initial " ^ Dcop.error_to_string e
  | Step_failed { time } -> Printf.sprintf "tran: Newton failed at t = %g s" time

(* A capacitive branch tracked through the integration: explicit capacitors
   keep a fixed value; MOS intrinsic/junction capacitances are refreshed
   from the operating point at the start of every step. *)
type cap_slot = {
  a : Device.node;
  b : Device.node;
  mutable c : float;
  mutable i_prev : float;  (* branch current at the last accepted point *)
}

(* slots for one device, in a fixed order so state survives across steps *)
let slots_of_device dev =
  match dev with
  | Device.Capacitor { n1; n2; farads; _ } ->
      [ { a = n1; b = n2; c = farads; i_prev = 0. } ]
  | Device.Mosfet { d; g; s; b; _ } ->
      [
        { a = g; b = s; c = 0.; i_prev = 0. };
        { a = g; b = d; c = 0.; i_prev = 0. };
        { a = d; b; c = 0.; i_prev = 0. };
        { a = s; b; c = 0.; i_prev = 0. };
      ]
  | Device.Resistor _ | Device.Vsource _ | Device.Isource _ | Device.Vccs _ ->
      []

let refresh_mos_slots slots (op : Mosfet.op) =
  match slots with
  | [ gs; gd; db; sb ] ->
      gs.c <- op.Mosfet.cgs;
      gd.c <- op.Mosfet.cgd;
      db.c <- op.Mosfet.cdb;
      sb.c <- op.Mosfet.csb
  | _ -> invalid_arg "Tran: malformed MOS slots"

let source_value_at ~dc ~wave t = Device.waveform_value wave ~dc t

(* initial operating point with every waveform frozen at t = 0 *)
let initial_circuit circuit =
  Circuit.map_devices circuit (fun dev ->
      match dev with
      | Device.Vsource ({ dc; wave; _ } as v) ->
          Device.Vsource { v with dc = source_value_at ~dc ~wave 0. }
      | Device.Isource ({ dc; wave; _ } as i) ->
          Device.Isource { i with dc = source_value_at ~dc ~wave 0. }
      | Device.Resistor _ | Device.Capacitor _ | Device.Vccs _
      | Device.Mosfet _ ->
          dev)

let run ?sys ?models options circuit =
  let layout =
    match sys with Some s -> Mna.sys_layout s | None -> Mna.layout circuit
  in
  let size = Mna.size layout in
  let devices = Circuit.devices circuit in
  (* one numeric workspace reused across all steps and Newton iterations; a
     dense one reproduces the historical fresh-matrix path byte-for-byte *)
  let rs =
    match sys with
    | Some s -> Mna.sys_real s
    | None -> Linsys.real (Linsys.dense_of_size size)
  in
  match Dcop.solve ?sys ?models (initial_circuit circuit) with
  | Error e -> Error (Dc_failed e)
  | Ok op0 -> begin
      let slots = Array.map slots_of_device devices in
      (* prime MOS capacitances from the DC operating point *)
      Array.iteri
        (fun di dev ->
          match dev with
          | Device.Mosfet { name; _ } ->
              refresh_mos_slots slots.(di) (List.assoc name op0.Dcop.mos_ops)
          | Device.Resistor _ | Device.Capacitor _ | Device.Vsource _
          | Device.Isource _ | Device.Vccs _ ->
              ())
        devices;
      let n_steps = int_of_float (Float.ceil (options.t_stop /. options.dt)) in
      let times = Array.make (n_steps + 1) 0. in
      let solutions = Array.make (n_steps + 1) [||] in
      times.(0) <- 0.;
      solutions.(0) <- Array.copy op0.Dcop.x;
      let x_prev = ref (Array.copy op0.Dcop.x) in
      let failed = ref None in
      (* One Newton solve of the companion-model system at time [t]. *)
      let step ~first t =
        let h = options.dt in
        let integ_g c = if first then c /. h else 2. *. c /. h in
        let x = Array.copy !x_prev in
        let rec newton iter =
          if iter > options.max_newton then None
          else begin
            rs.Linsys.reset ();
            let add = rs.Linsys.add in
            let rhs = Vec.create size in
            for i = 0 to Mna.n_nodes layout - 1 do
              add i i 1e-12
            done;
            Array.iteri
              (fun di dev ->
                match dev with
                | Device.Resistor { n1; n2; ohms; _ } ->
                    Mna.stamp_conductance_into add n1 n2 (1. /. ohms)
                | Device.Capacitor _ | Device.Mosfet _ ->
                    (* caps handled via slots below; MOS conductive part
                       stamped here *)
                    (match dev with
                    | Device.Mosfet { d; g; s; b; model; w; l; name = _ } ->
                        let model = Mna.model_override models di model in
                        ignore
                          (Mna.stamp_mosfet_dc_into add rhs ~x ~d ~g ~s ~b
                             ~model ~w ~l)
                    | _ -> ());
                    List.iter
                      (fun slot ->
                        let geq = integ_g slot.c in
                        let v_old =
                          Mna.voltage !x_prev slot.a -. Mna.voltage !x_prev slot.b
                        in
                        let i_hist =
                          if first then geq *. v_old
                          else (geq *. v_old) +. slot.i_prev
                        in
                        Mna.stamp_conductance_into add slot.a slot.b geq;
                        Mna.inject rhs slot.a i_hist;
                        Mna.inject rhs slot.b (-.i_hist))
                      slots.(di)
                | Device.Vsource { name; npos; nneg; dc; wave; _ } ->
                    Mna.stamp_branch_into add layout ~name ~npos ~nneg;
                    rhs.(Mna.branch_index layout name) <-
                      source_value_at ~dc ~wave t
                | Device.Isource { npos; nneg; dc; wave; _ } ->
                    let value = source_value_at ~dc ~wave t in
                    Mna.inject rhs npos (-.value);
                    Mna.inject rhs nneg value
                | Device.Vccs { out_p; out_n; in_p; in_n; gm; _ } ->
                    Mna.stamp_transconductance_into add ~out_p ~out_n ~in_p
                      ~in_n gm)
              devices;
            match rs.Linsys.solve rhs with
            | exception Lu.Singular _ -> None
            | x_new ->
                let delta = ref 0. in
                for k = 0 to size - 1 do
                  let dk = x_new.(k) -. x.(k) in
                  delta := Float.max !delta (Float.abs dk);
                  let limit = 0.5 in
                  let dk =
                    if k < Mna.n_nodes layout then
                      Float.max (-.limit) (Float.min limit dk)
                    else dk
                  in
                  x.(k) <- x.(k) +. dk
                done;
                if not (Array.for_all Float.is_finite x) then None
                else if !delta < options.vtol then Some x
                else newton (iter + 1)
          end
        in
        newton 0
      in
      (try
         for n = 1 to n_steps do
           let t = float_of_int n *. options.dt in
           match step ~first:(n = 1) t with
           | None ->
               failed := Some t;
               raise Exit
           | Some x ->
               (* accept: update capacitor branch currents and MOS caps *)
               let h = options.dt in
               Array.iteri
                 (fun di dev ->
                   List.iter
                     (fun slot ->
                       let geq =
                         if n = 1 then slot.c /. h else 2. *. slot.c /. h
                       in
                       let v_old =
                         Mna.voltage !x_prev slot.a -. Mna.voltage !x_prev slot.b
                       in
                       let v_new = Mna.voltage x slot.a -. Mna.voltage x slot.b in
                       let i_hist =
                         if n = 1 then geq *. v_old
                         else (geq *. v_old) +. slot.i_prev
                       in
                       slot.i_prev <- (geq *. v_new) -. i_hist)
                     slots.(di);
                   match dev with
                   | Device.Mosfet { d; g; s; b; model; w; l; name = _ } ->
                       let model = Mna.model_override models di model in
                       let vgs, vds, vbs =
                         let vd = Mna.voltage x d
                         and vg = Mna.voltage x g
                         and vs = Mna.voltage x s
                         and vb = Mna.voltage x b in
                         match model.Mosfet.polarity with
                         | Mosfet.Nmos -> (vg -. vs, vd -. vs, vb -. vs)
                         | Mosfet.Pmos -> (vs -. vg, vs -. vd, vs -. vb)
                       in
                       let op = Mosfet.eval model ~w ~l ~vgs ~vds ~vbs in
                       refresh_mos_slots slots.(di) op
                   | Device.Resistor _ | Device.Capacitor _ | Device.Vsource _
                   | Device.Isource _ | Device.Vccs _ ->
                       ())
                 devices;
               times.(n) <- t;
               solutions.(n) <- Array.copy x;
               x_prev := x
         done
       with Exit -> ());
      match !failed with
      | Some time -> Error (Step_failed { time })
      | None -> Ok { times; solutions; layout }
    end

let voltage result node =
  Array.map (fun x -> Mna.voltage x node) result.solutions

let voltage_by_name result circuit name =
  voltage result (Circuit.node circuit name)
