type t = {
  names : (string, Device.node) Hashtbl.t;
  mutable index_to_name : string array;  (* position i holds node i's name *)
  mutable next : Device.node;
  mutable devices_rev : Device.t list;
  device_names : (string, unit) Hashtbl.t;
  mutable nodesets : (Device.node * float) list;
  mutable cache : Device.t array option;
  (* user-visible .model names in registration order; Netlist.to_string
     prefers these over generated modN names *)
  mutable model_names_rev : (string * Mosfet.model) list;
}

let create () =
  let names = Hashtbl.create 32 in
  Hashtbl.replace names "0" Device.ground;
  Hashtbl.replace names "gnd" Device.ground;
  Hashtbl.replace names "GND" Device.ground;
  {
    names;
    index_to_name = [| "0" |];
    next = 1;
    devices_rev = [];
    device_names = Hashtbl.create 32;
    nodesets = [];
    cache = None;
    model_names_rev = [];
  }

let name_model c name model =
  c.model_names_rev <- (name, model) :: c.model_names_rev

let model_names c = List.rev c.model_names_rev

let model_name c model =
  List.find_map
    (fun (name, m) -> if m = model then Some name else None)
    (List.rev c.model_names_rev)

let node c name =
  match Hashtbl.find_opt c.names name with
  | Some n -> n
  | None ->
      let n = c.next in
      c.next <- n + 1;
      Hashtbl.replace c.names name n;
      if n >= Array.length c.index_to_name then begin
        let grown = Array.make (2 * (n + 1)) "" in
        Array.blit c.index_to_name 0 grown 0 (Array.length c.index_to_name);
        c.index_to_name <- grown
      end;
      c.index_to_name.(n) <- name;
      n

let node_name c n =
  if n < 0 || n >= c.next || (n > 0 && c.index_to_name.(n) = "") then
    raise Not_found;
  c.index_to_name.(n)

let node_count c = c.next - 1

let add c dev =
  let dname = Device.name dev in
  if Hashtbl.mem c.device_names dname then
    invalid_arg ("Circuit.add: duplicate device name " ^ dname);
  Hashtbl.replace c.device_names dname ();
  c.devices_rev <- dev :: c.devices_rev;
  c.cache <- None

let nodeset c n v = c.nodesets <- (n, v) :: c.nodesets

let nodesets c = c.nodesets

let devices c =
  match c.cache with
  | Some a -> a
  | None ->
      let a = Array.of_list (List.rev c.devices_rev) in
      c.cache <- Some a;
      a

let find_device c name =
  let rec search = function
    | [] -> raise Not_found
    | dev :: rest -> if Device.name dev = name then dev else search rest
  in
  search c.devices_rev

let replace_device c name f =
  if not (Hashtbl.mem c.device_names name) then raise Not_found;
  c.devices_rev <-
    List.map
      (fun dev -> if Device.name dev = name then f dev else dev)
      c.devices_rev;
  c.cache <- None

let map_devices c f =
  let devs = List.rev_map f c.devices_rev in
  {
    names = Hashtbl.copy c.names;
    index_to_name = Array.copy c.index_to_name;
    next = c.next;
    devices_rev = List.rev devs;
    device_names = Hashtbl.copy c.device_names;
    nodesets = c.nodesets;
    cache = None;
    model_names_rev = c.model_names_rev;
  }

let add_resistor c ~name n1 n2 ohms =
  add c (Device.Resistor { name; n1 = node c n1; n2 = node c n2; ohms })

let add_capacitor c ~name n1 n2 farads =
  add c (Device.Capacitor { name; n1 = node c n1; n2 = node c n2; farads })

let add_vsource c ~name ?(ac = 0.) ?(wave = Device.Constant) npos nneg dc =
  add c
    (Device.Vsource
       { name; npos = node c npos; nneg = node c nneg; dc; ac; wave })

let add_isource c ~name ?(ac = 0.) ?(wave = Device.Constant) npos nneg dc =
  add c
    (Device.Isource
       { name; npos = node c npos; nneg = node c nneg; dc; ac; wave })

let add_vccs c ~name ~out_p ~out_n ~in_p ~in_n gm =
  add c
    (Device.Vccs
       {
         name;
         out_p = node c out_p;
         out_n = node c out_n;
         in_p = node c in_p;
         in_n = node c in_n;
         gm;
       })

let add_mosfet c ~name ~d ~g ~s ~b ~model ~w ~l =
  add c
    (Device.Mosfet
       {
         name;
         d = node c d;
         g = node c g;
         s = node c s;
         b = node c b;
         model;
         w;
         l;
       })
