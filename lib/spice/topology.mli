(** Structural (pre-numeric) analysis of a circuit's DC connectivity.

    The MNA system is singular — independent of device values — when a node
    has no DC-conductive path to ground (nothing pins its voltage: gates,
    capacitor plates and current-source terminals conduct no DC current) or
    when voltage sources form a loop (their branch equations are linearly
    dependent or contradictory).  {!Dcop.solve} consults {!dc_issues} before
    factoring anything, turning what used to be a 150-iteration
    non-convergence into an immediate, correctly-classified
    [Singular_system]; the preflight linter reports the same issues with
    stable diagnostic codes. *)

type issue =
  | No_dc_path of { node : string }
      (** the node is not connected to ground through any DC-conductive
          device (resistor, voltage source, MOSFET channel) *)
  | No_ac_path of { node : string }
      (** the node is not connected to ground through any AC-conductive
          device — capacitors conduct here, so this is strictly rarer than
          {!No_dc_path} *)
  | Vsource_loop of { through : string }
      (** adding this voltage source's branch closes a loop of voltage
          sources *)

val issue_to_string : issue -> string

val dc_issues : Circuit.t -> issue list
(** All structural singularities, in deterministic order: voltage-source
    loops in device order, then unreachable nodes in node order.  Only nodes
    referenced by at least one device terminal are considered ([.nodeset]
    hints may intern extra names). *)

val ac_issues : Circuit.t -> issue list
(** The same analysis with the AC edge set (capacitors conduct; the MOS
    gate and bulk couple capacitively into the channel): nodes the
    small-signal matrix [G + jwC] cannot constrain at any frequency, plus
    voltage-source loops.  {!Ac.transfer} and {!Ac.solve_at} consult this
    before assembling anything, mirroring the {!Dcop.solve} pre-check. *)

val dangling_nodes : Circuit.t -> (string * string) list
(** Nodes referenced by exactly one device terminal, as
    [(node, device)] pairs in node order — not singular (the device may
    still bias it), but almost always a netlist typo. *)
