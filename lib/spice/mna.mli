(** Modified nodal analysis: system layout, structural pattern, and matrix
    stamping.

    Unknown vector layout: entries [0 .. n_nodes-1] are the voltages of nodes
    [1 .. n_nodes] (ground is eliminated), followed by one branch current per
    voltage source, in device order. *)

type layout

val layout : Circuit.t -> layout

val size : layout -> int

val n_nodes : layout -> int

val branch_index : layout -> string -> int
(** Unknown-vector index of the branch current of the named voltage source.
    @raise Not_found if there is no such source. *)

val voltage : Yield_numeric.Vec.t -> Device.node -> float
(** Node voltage under the layout convention; ground reads 0. *)

(** {1 Per-sample model overrides}

    The batch-first Monte Carlo loop instantiates a circuit once per front
    point and patches device models per sample instead of rebuilding the
    circuit.  [models.(di)] (indexed by position in [Circuit.devices])
    replaces the MOSFET model of that device when [Some]; [None] slots — and
    an absent array — mean the nominal model baked into the circuit. *)

type models = Mosfet.model option array

val model_override : models option -> int -> Mosfet.model -> Mosfet.model
(** [model_override models di nominal] resolves the effective model of
    device index [di]. *)

(** {1 Solver sessions}

    A [sys] pairs a layout with a compiled {!Yield_numeric.Linsys} system:
    the structural pattern is built and symbolically analysed once per
    topology, then every sample only re-assembles numeric values.  A [sys]
    is immutable and safe to share across domains; the per-worker numeric
    workspaces come from {!sys_real} / {!sys_complex}. *)

type sys

val pattern : Circuit.t -> layout -> Yield_numeric.Linsys.Pattern.t
(** Union of every structural position any analysis stamps for this
    topology (DC Newton, AC, transient companion models), so one cached
    symbolic factorisation serves them all. *)

val sys : ?backend:Yield_numeric.Linsys.backend -> Circuit.t -> sys
(** Build the layout, the pattern, and compile it.  [backend] defaults to
    [Dense].  Valid for every circuit sharing this topology (any
    [Circuit.map_devices] image: same nodes, same device order). *)

val dense_sys_of_layout : layout -> sys
(** Pattern-less dense session for legacy single-shot call sites; behaves
    exactly like the historical direct [Mat]/[Lu]/[Cmat] path. *)

val sys_layout : sys -> layout

val sys_real : sys -> Yield_numeric.Linsys.real
(** Allocate a mutable real workspace (call once per worker). *)

val sys_complex : sys -> Yield_numeric.Linsys.complex_sys
(** Allocate a mutable complex workspace (call once per worker). *)

val sys_solver_name : sys -> string

(** {1 Assembly} *)

val assemble_dc :
  ?models:models ->
  Circuit.t -> layout -> x:Yield_numeric.Vec.t -> source_scale:float ->
  gmin:float -> Yield_numeric.Mat.t * Yield_numeric.Vec.t
(** Newton-linearised DC system around the guess [x]: returns [(g, rhs)] such
    that solving [g x' = rhs] yields the next iterate.  [source_scale] scales
    all independent sources (for source-stepping homotopy); [gmin] is a
    conductance added from every node to ground. *)

val assemble_dc_into :
  Yield_numeric.Linsys.real ->
  ?models:models ->
  Circuit.t -> layout -> x:Yield_numeric.Vec.t -> source_scale:float ->
  gmin:float -> Yield_numeric.Vec.t
(** Same stamps through a {!Yield_numeric.Linsys.real} workspace (resetting
    it first); returns the right-hand side.  With a dense workspace this is
    byte-identical to {!assemble_dc}. *)

val mos_operating_points :
  ?models:models ->
  Circuit.t -> x:Yield_numeric.Vec.t -> (string * Mosfet.op) list
(** Device-convention operating point of every MOSFET at the solution [x]
    (PMOS currents and voltages reported NMOS-normalised, as produced by
    {!Mosfet.eval} on the flipped bias). *)

val assemble_ac :
  Circuit.t -> layout -> ops:(string -> Mosfet.op) ->
  Yield_numeric.Mat.t * Yield_numeric.Mat.t * Complex.t array
(** Small-signal system pieces: [(g, c, rhs)] with the full system
    [ (g + jw c) x = rhs ], where [rhs] carries the AC magnitudes of the
    independent sources.  [ops] maps MOSFET names to their DC operating
    points. *)

val assemble_ac_into :
  Yield_numeric.Linsys.complex_sys ->
  Circuit.t -> layout -> ops:(string -> Mosfet.op) -> Complex.t array
(** Same stamps through a {!Yield_numeric.Linsys.complex_sys} workspace
    (resetting it first); returns the right-hand side. *)

(** {1 Low-level stamping primitives, shared with the transient engine}

    Each exists in two forms: stamping into a dense matrix, and the
    [_into] form stamping through a generic [add row col value]
    accumulator (a {!Yield_numeric.Linsys} workspace). *)

val stamp_conductance : Yield_numeric.Mat.t -> Device.node -> Device.node -> float -> unit
(** Two-terminal conductance between two nodes (ground rows skipped). *)

val stamp_conductance_into :
  (int -> int -> float -> unit) -> Device.node -> Device.node -> float -> unit

val stamp_transconductance :
  Yield_numeric.Mat.t -> out_p:Device.node -> out_n:Device.node ->
  in_p:Device.node -> in_n:Device.node -> float -> unit
(** Current [g * v(in_p, in_n)] leaving [out_p], entering [out_n]. *)

val stamp_transconductance_into :
  (int -> int -> float -> unit) -> out_p:Device.node -> out_n:Device.node ->
  in_p:Device.node -> in_n:Device.node -> float -> unit

val stamp_branch :
  Yield_numeric.Mat.t -> layout -> name:string -> npos:Device.node ->
  nneg:Device.node -> unit
(** Voltage-source branch rows/columns (without the RHS value). *)

val stamp_branch_into :
  (int -> int -> float -> unit) -> layout -> name:string ->
  npos:Device.node -> nneg:Device.node -> unit

val inject : Yield_numeric.Vec.t -> Device.node -> float -> unit
(** Add a current injection into a node's KCL right-hand side. *)

val stamp_mosfet_dc :
  Yield_numeric.Mat.t -> Yield_numeric.Vec.t -> x:Yield_numeric.Vec.t ->
  d:Device.node -> g:Device.node -> s:Device.node -> b:Device.node ->
  model:Mosfet.model -> w:float -> l:float -> Mosfet.op
(** Newton-linearised MOSFET stamp around the guess [x]; returns the
    normalised operating point used. *)

val stamp_mosfet_dc_into :
  (int -> int -> float -> unit) -> Yield_numeric.Vec.t ->
  x:Yield_numeric.Vec.t -> d:Device.node -> g:Device.node -> s:Device.node ->
  b:Device.node -> model:Mosfet.model -> w:float -> l:float -> Mosfet.op
