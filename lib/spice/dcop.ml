module Vec = Yield_numeric.Vec
module Lu = Yield_numeric.Lu
module Linsys = Yield_numeric.Linsys
module Metrics = Yield_obs.Metrics
module Fault = Yield_resilience.Fault
module Retry = Yield_resilience.Retry
module Rng = Yield_stats.Rng

(* static handles: [solve] sits under every Monte Carlo sample, so the
   instruments are resolved once and each record is O(1) *)
let h_newton_iterations = Metrics.histogram "dcop.newton_iterations"

let h_gmin_steps = Metrics.histogram "dcop.gmin_steps"

let h_recovery_attempts = Metrics.histogram "dcop.recovery_attempts"

let c_convergence_failures = Metrics.counter "dcop.convergence_failures"

(* injection points: [dcop.solve] fails the whole solve (a transient
   non-convergence the retry layer can absorb); [dcop.newton] / [dcop.gmin]
   fail one homotopy stage, forcing the next fallback in the chain *)
let fp_solve = Fault.point "dcop.solve"

let fp_newton = Fault.point "dcop.newton"

let fp_gmin = Fault.point "dcop.gmin"

type t = {
  x : Vec.t;
  layout : Mna.layout;
  mos_ops : (string * Mosfet.op) list;
  iterations : int;
}

type options = {
  max_iterations : int;
  vtol : float;
  max_step : float;
  gmin : float;
}

let default_options =
  { max_iterations = 150; vtol = 1e-9; max_step = 0.5; gmin = 1e-12 }

type error =
  | No_convergence of { attempts : string list }
  | Singular_system of string

let error_to_string = function
  | No_convergence { attempts } ->
      "dcop: no convergence after " ^ String.concat ", " attempts
  | Singular_system what -> "dcop: singular system in " ^ what

(* One damped-Newton run at fixed gmin and source scaling.  Returns the
   solution and iteration count, or None on failure.  [rs] is the solver
   workspace reused across iterations (a dense workspace reproduces the
   historical fresh-matrix-per-iteration path byte-for-byte). *)
let newton rs ?models circuit layout options ~source_scale ~gmin ~x0 =
  let n = Mna.size layout in
  let x = Array.copy x0 in
  let rec iterate i =
    if i >= options.max_iterations then None
    else begin
      let rhs =
        Mna.assemble_dc_into rs ?models circuit layout ~x ~source_scale ~gmin
      in
      match rs.Linsys.solve rhs with
      | exception Lu.Singular _ -> None
      | x_new ->
          let delta = ref 0. in
          for k = 0 to n - 1 do
            let dk = x_new.(k) -. x.(k) in
            let node_unknown = k < Mna.n_nodes layout in
            (* clamp only node voltages; branch currents may move freely *)
            let dk_clamped =
              if node_unknown then
                Float.max (-.options.max_step) (Float.min options.max_step dk)
              else dk
            in
            delta := Float.max !delta (Float.abs dk);
            x.(k) <- x.(k) +. dk_clamped
          done;
          if
            !delta < options.vtol
            && Float.is_finite !delta
          then Some (x, i + 1)
          else if not (Array.for_all Float.is_finite x) then None
          else iterate (i + 1)
    end
  in
  iterate 0

let initial_guess circuit layout =
  let x = Vec.create (Mna.size layout) in
  List.iter
    (fun (node, v) -> if node <> Device.ground then x.(node - 1) <- v)
    (Circuit.nodesets circuit);
  x

let solve ?(options = default_options) ?x0_jitter ?sys ?models circuit =
  match Topology.dc_issues circuit with
  | issue :: _ ->
      (* structurally singular: no gmin or homotopy can make the answer
         meaningful, so fail as Permanent before factoring anything *)
      Metrics.incr c_convergence_failures;
      Error (Singular_system (Topology.issue_to_string issue))
  | [] ->
  let layout =
    match sys with Some s -> Mna.sys_layout s | None -> Mna.layout circuit
  in
  (* per-call numeric workspace: the compiled session (if any) is shared
     across domains, the mutable assembly/factor state is not *)
  let rs =
    match sys with
    | Some s -> Mna.sys_real s
    | None -> Linsys.real (Linsys.dense_of_size (Mna.size layout))
  in
  let newton = newton rs ?models in
  let x0 = initial_guess circuit layout in
  (match x0_jitter with
  | None -> ()
  | Some jitter -> Array.iteri (fun k v -> x0.(k) <- v +. jitter k) x0);
  let attempts = ref [] in
  let note what = attempts := what :: !attempts in
  let finish (x, iterations) =
    Metrics.observe h_newton_iterations (float_of_int iterations);
    Metrics.observe h_recovery_attempts (float_of_int (List.length !attempts));
    Ok
      {
        x;
        layout;
        mos_ops = Mna.mos_operating_points ?models circuit ~x;
        iterations;
      }
  in
  let no_convergence () =
    Metrics.incr c_convergence_failures;
    Metrics.observe h_recovery_attempts (float_of_int (List.length !attempts));
    Error (No_convergence { attempts = List.rev !attempts })
  in
  if Fault.fire fp_solve then begin
    note "injected-fault";
    no_convergence ()
  end
  else begin
  note "newton";
  match
    (if Fault.fire fp_newton then None
     else newton circuit layout options ~source_scale:1. ~gmin:options.gmin ~x0)
  with
  | Some result -> finish result
  | None -> begin
      (* gmin stepping: converge a heavily damped system, then relax *)
      note "gmin-stepping";
      let steps = [ 1e-3; 1e-5; 1e-7; 1e-9; 1e-11; options.gmin ] in
      let gmin_steps = ref 0 in
      let rec gmin_walk x = function
        | [] -> Some x
        | gmin :: rest -> begin
            incr gmin_steps;
            match newton circuit layout options ~source_scale:1. ~gmin ~x0:x with
            | Some (x', _) -> gmin_walk x' rest
            | None -> None
          end
      in
      let gmin_result =
        if Fault.fire fp_gmin then None
        else
          match gmin_walk x0 steps with
          | Some x ->
              newton circuit layout options ~source_scale:1. ~gmin:options.gmin
                ~x0:x
          | None -> None
      in
      Metrics.observe h_gmin_steps (float_of_int !gmin_steps);
      match gmin_result with
      | Some result -> finish result
      | None -> begin
          (* source stepping: ramp the supplies *)
          note "source-stepping";
          let scales = [ 0.05; 0.1; 0.2; 0.4; 0.6; 0.8; 0.9; 1.0 ] in
          let rec ramp x = function
            | [] -> Some x
            | scale :: rest -> begin
                match
                  newton circuit layout options ~source_scale:scale
                    ~gmin:options.gmin ~x0:x
                with
                | Some (x', _) -> ramp x' rest
                | None -> None
              end
          in
          match ramp x0 scales with
          | Some x -> begin
              match
                newton circuit layout options ~source_scale:1. ~gmin:options.gmin
                  ~x0:x
              with
              | Some result -> finish result
              | None -> no_convergence ()
            end
          | None -> no_convergence ()
        end
    end
  end

let classify_error = function
  | No_convergence _ -> Retry.Transient
  | Singular_system _ -> Retry.Permanent

let retry_policy = Retry.policy "dcop.solve"

let solve_with_retry ?options ?budget_s ?sys ?models circuit =
  let deadline_s =
    Option.map (fun b -> Yield_obs.Clock.now_s () +. b) budget_s
  in
  Retry.with_retries ?deadline_s retry_policy ~classify:classify_error
    (fun ~attempt ->
      let x0_jitter =
        if attempt <= 1 then None
        else begin
          (* deterministic per-attempt perturbation of the initial guess:
             nudging the starting point is often enough to escape a basin
             where damped Newton stalls *)
          let rng = Rng.create (0x5eed + attempt) in
          Some (fun _k -> Rng.normal rng ~mean:0. ~sigma:0.05)
        end
      in
      solve ?options ?x0_jitter ?sys ?models circuit)

let voltage t node = Mna.voltage t.x node

let voltage_by_name t circuit name = voltage t (Circuit.node circuit name)

let branch_current t name = t.x.(Mna.branch_index t.layout name)

let mos_op t name = List.assoc name t.mos_ops

let pp circuit ppf t =
  Format.fprintf ppf "@[<v>operating point (%d Newton iterations)@," t.iterations;
  for n = 1 to Mna.n_nodes t.layout do
    match Circuit.node_name circuit n with
    | name -> Format.fprintf ppf "  v(%s) = %.6g V@," name (voltage t n)
    | exception Not_found -> ()
  done;
  List.iter
    (fun (name, op) ->
      Format.fprintf ppf
        "  %s: %s ids=%.4g gm=%.4g gds=%.4g vgs=%.4g vds=%.4g vdsat=%.4g@,"
        name
        (Mosfet.region_to_string op.Mosfet.region)
        op.Mosfet.ids op.Mosfet.gm op.Mosfet.gds op.Mosfet.vgs op.Mosfet.vds
        op.Mosfet.vdsat)
    t.mos_ops;
  Format.fprintf ppf "@]"
