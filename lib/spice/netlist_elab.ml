module Ast = Netlist_ast

type analysis =
  | Op
  | Ac_analysis of { per_decade : int; f_lo : float; f_hi : float; out : string }
  | Tran_analysis of { dt : float; t_stop : float; out : string }
  | Dc_analysis of {
      source : string;
      start : float;
      stop : float;
      step : float;
      out : string;
    }

type origin = {
  devices : (string, Ast.span) Hashtbl.t;
  nodes : (string, Ast.span) Hashtbl.t;
}

let create_origin () = { devices = Hashtbl.create 32; nodes = Hashtbl.create 32 }

let is_ground name = name = "0" || name = "gnd" || name = "GND"

(* ---------- parameter environments ---------- *)

(* newest binding first, so a redefinition shadows *)
type env = (string * float) list

let rec eval (env : env) span = function
  | Ast.Num v -> v
  | Ast.Ref name -> begin
      match List.assoc_opt name env with
      | Some v -> v
      | None -> Ast.error span ("unknown parameter " ^ name ^ " in expression")
    end
  | Ast.Bin (op, a, b) ->
      let va = eval env span a and vb = eval env span b in
      (match op with
      | Ast.Add -> va +. vb
      | Ast.Sub -> va -. vb
      | Ast.Mul -> va *. vb
      | Ast.Div -> va /. vb)
  | Ast.Neg e -> -.eval env span e

let eval_value env (v : Ast.value) = eval env v.vspan v.expr

(* ---------- .model cards ---------- *)

let model_of_card env (kind : Ast.ident) (params : Ast.assign list) =
  let polarity =
    match String.lowercase_ascii kind.id with
    | "nmos" -> Mosfet.Nmos
    | "pmos" -> Mosfet.Pmos
    | other -> Ast.error kind.ispan ("unknown model kind " ^ other)
  in
  let find key =
    List.find_map
      (fun (a : Ast.assign) ->
        if String.lowercase_ascii a.key.id = key then Some (eval_value env a.v)
        else None)
      params
  in
  let get key default = Option.value (find key) ~default in
  let required span key =
    match find key with
    | Some v -> v
    | None -> Ast.error span ("missing model parameter " ^ key)
  in
  fun span ->
    {
      Mosfet.polarity;
      vth0 = required span "vth0";
      kp = required span "kp";
      gamma = get "gamma" 0.5;
      phi = get "phi" 0.7;
      lambda0 = get "lambda0" 0.05;
      n_slope = get "n" 1.3;
      cox = get "cox" 4.5e-3;
      cgso = get "cgso" 1.2e-10;
      cgdo = get "cgdo" 1.2e-10;
      cj = get "cj" 9e-4;
      cjsw = get "cjsw" 2.5e-10;
      ext = get "ext" 8.5e-7;
    }

(* ---------- elaboration ---------- *)

type subckt_def = { ports : Ast.ident list; body : Ast.statement list }

let elaborate ?origin (ast : Ast.t) =
  let circuit = Circuit.create () in
  let analyses = ref [] in
  let models : (string, Mosfet.model) Hashtbl.t = Hashtbl.create 8 in
  let subckts : (string, subckt_def) Hashtbl.t = Hashtbl.create 4 in
  (* definitions are collected up front (forward references from X cards are
     allowed, matching the original reader); a redefinition wins *)
  List.iter
    (fun stmt ->
      match stmt with
      | Ast.Subckt { name; ports; body; _ } ->
          Hashtbl.replace subckts name.id { ports; body }
      | Ast.Card _ -> ())
    ast.statements;
  let record tbl name span =
    match origin with
    | Some o ->
        let t = match tbl with `Device -> o.devices | `Node -> o.nodes in
        if not (Hashtbl.mem t name) then Hashtbl.add t name span
    | None -> ()
  in
  let add span dev =
    match Circuit.add circuit dev with
    | () -> ()
    | exception Invalid_argument msg -> Ast.error span msg
  in
  (* [rename] maps node names (instance ports to outer nodes, internals to
     prefixed names); [prefix] is prepended to device names *)
  let rec handle_card ~env ~rename ~prefix span card =
    let node (i : Ast.ident) =
      let name = rename i.id in
      record `Node name i.ispan;
      Circuit.node circuit name
    in
    let device_name (i : Ast.ident) =
      let name = prefix ^ i.id in
      record `Device name span;
      name
    in
    let ev v = eval_value !env v in
    match card with
    | Ast.Resistor { name; n1; n2; r } ->
        add span
          (Device.Resistor
             { name = device_name name; n1 = node n1; n2 = node n2; ohms = ev r })
    | Ast.Capacitor { name; n1; n2; c } ->
        add span
          (Device.Capacitor
             { name = device_name name; n1 = node n1; n2 = node n2; farads = ev c })
    | Ast.Vsource { name; npos; nneg; dc; ac } ->
        add span
          (Device.Vsource
             {
               name = device_name name;
               npos = node npos;
               nneg = node nneg;
               dc = ev dc;
               ac = (match ac with Some a -> ev a | None -> 0.);
               wave = Device.Constant;
             })
    | Ast.Isource { name; npos; nneg; dc; ac } ->
        add span
          (Device.Isource
             {
               name = device_name name;
               npos = node npos;
               nneg = node nneg;
               dc = ev dc;
               ac = (match ac with Some a -> ev a | None -> 0.);
               wave = Device.Constant;
             })
    | Ast.Vccs { name; out_p; out_n; in_p; in_n; gm } ->
        add span
          (Device.Vccs
             {
               name = device_name name;
               out_p = node out_p;
               out_n = node out_n;
               in_p = node in_p;
               in_n = node in_n;
               gm = ev gm;
             })
    | Ast.Mosfet { name; d; g; s; b; model; params } -> begin
        match Hashtbl.find_opt models model.id with
        | None -> Ast.error model.ispan ("unknown model " ^ model.id)
        | Some m ->
            let w = ref None and l = ref None in
            List.iter
              (fun (a : Ast.assign) ->
                match String.lowercase_ascii a.key.id with
                | "w" -> w := Some (ev a.v)
                | "l" -> l := Some (ev a.v)
                | other ->
                    Ast.error a.key.ispan
                      ("unknown MOSFET instance parameter " ^ other))
              params;
            let geom which r =
              match !r with
              | Some v -> v
              | None ->
                  Ast.error span ("missing " ^ which ^ " on " ^ name.id)
            in
            add span
              (Device.Mosfet
                 {
                   name = device_name name;
                   d = node d;
                   g = node g;
                   s = node s;
                   b = node b;
                   model = m;
                   w = geom "w" w;
                   l = geom "l" l;
                 })
      end
    | Ast.Instance { name; conns; sub } -> begin
        match Hashtbl.find_opt subckts sub.id with
        | None -> Ast.error sub.ispan ("unknown subcircuit " ^ sub.id)
        | Some { ports; body } ->
            if List.length conns <> List.length ports then
              Ast.error span
                (Printf.sprintf "%s: %d connections for %d ports" name.id
                   (List.length conns) (List.length ports));
            (* ports bind to the (renamed) outer nodes; everything else
               becomes instance-local *)
            let binding =
              List.map2
                (fun (p : Ast.ident) (n : Ast.ident) ->
                  let outer = rename n.id in
                  record `Node outer n.ispan;
                  (p.id, outer))
                ports conns
            in
            let inner_prefix = prefix ^ name.id ^ "." in
            let rename' node_name =
              if is_ground node_name then node_name
              else
                match List.assoc_opt node_name binding with
                | Some outer -> outer
                | None -> inner_prefix ^ node_name
            in
            (* the instance body evaluates under the environment in force at
               the instantiation point; its own .param cards stay local *)
            let env' = ref !env in
            List.iter
              (fun stmt ->
                match stmt with
                | Ast.Card { card; span } ->
                    handle_card ~env:env' ~rename:rename' ~prefix:inner_prefix
                      span card
                | Ast.Subckt { span; _ } ->
                    Ast.error span
                      "nested .subckt definitions are not supported")
              body
      end
    | Ast.Model { name; kind; params } ->
        let m = model_of_card !env kind params span in
        Hashtbl.replace models name.id m;
        Circuit.name_model circuit name.id m
    | Ast.Param assigns ->
        List.iter
          (fun (a : Ast.assign) ->
            env := (String.lowercase_ascii a.key.id, ev a.v) :: !env)
          assigns
    | Ast.Nodeset entries ->
        List.iter
          (fun ((n : Ast.ident), v) ->
            let name = rename n.id in
            record `Node name n.ispan;
            Circuit.nodeset circuit (Circuit.node circuit name) (ev v))
          entries
    | Ast.Analysis a ->
        let runtime =
          match a with
          | Ast.Op -> Op
          | Ast.Ac { per_decade; f_lo; f_hi; out } ->
              Ac_analysis
                {
                  per_decade = int_of_float (ev per_decade);
                  f_lo = ev f_lo;
                  f_hi = ev f_hi;
                  out = out.id;
                }
          | Ast.Tran { dt; t_stop; out } ->
              Tran_analysis { dt = ev dt; t_stop = ev t_stop; out = out.id }
          | Ast.Dc { source; start; stop; step; out } ->
              Dc_analysis
                {
                  source = source.id;
                  start = ev start;
                  stop = ev stop;
                  step = ev step;
                  out = out.id;
                }
        in
        analyses := (runtime, span) :: !analyses
    | Ast.End -> ()
  in
  let env = ref [] in
  List.iter
    (fun stmt ->
      match stmt with
      | Ast.Card { card; span } ->
          handle_card ~env ~rename:Fun.id ~prefix:"" span card
      | Ast.Subckt _ -> ())
    ast.statements;
  (circuit, List.rev !analyses)
