(** Netlist elaboration: AST to a flat {!Circuit.t}.

    A separate pass after parsing, so static analysis can run over the
    hierarchical AST first.  Elaboration walks top-level cards in order,
    evaluates [.param] arithmetic (sequential scoping: a parameter must be
    assigned before use; instance bodies inherit the environment in force at
    the instantiation point, and their own [.param] cards stay local),
    registers [.model] cards (names preserved via {!Circuit.name_model}),
    and expands every [X] instance: port nodes bind to the outer connection,
    internal nodes and device names gain an [X<id>.] prefix, exactly like
    the original flattening reader — so elaborated circuits are equivalent
    card for card.

    All failures (unknown model/subcircuit/parameter, port-arity mismatch,
    duplicate device names, missing [w]/[l]) raise
    {!Netlist_ast.Parse_error} with the offending card's span. *)

type analysis =
  | Op
  | Ac_analysis of { per_decade : int; f_lo : float; f_hi : float; out : string }
  | Tran_analysis of { dt : float; t_stop : float; out : string }
  | Dc_analysis of {
      source : string;
      start : float;
      stop : float;
      step : float;
      out : string;
    }

type origin = {
  devices : (string, Netlist_ast.span) Hashtbl.t;
      (** flattened device name -> defining card span *)
  nodes : (string, Netlist_ast.span) Hashtbl.t;
      (** flattened node name -> span of the first reference *)
}
(** Provenance side tables, filled during elaboration when requested, so
    circuit-level lint findings can point back at source regions. *)

val create_origin : unit -> origin

val elaborate :
  ?origin:origin -> Netlist_ast.t -> Circuit.t * (analysis * Netlist_ast.span) list
(** Analyses come back in card order, each with its card's span.
    @raise Netlist_ast.Parse_error on any semantic error. *)
