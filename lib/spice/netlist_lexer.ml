module Ast = Netlist_ast

type token = { text : string; span : Ast.span }

type line = { tokens : token list; lspan : Ast.span }

let is_space c = c = ' ' || c = '\t' || c = '\r'

(* Tokenize one physical line.  [lineno] is 1-based; columns are 1-based
   byte offsets into the line.  A ';' outside braces comments out the rest
   of the line; a '{' swallows everything (spaces included) up to its
   matching '}', so parameter expressions like [{w * 2}] stay one token. *)
let tokenize_line ~lineno s =
  let n = String.length s in
  let tokens = ref [] in
  let i = ref 0 in
  let stop = ref false in
  while (not !stop) && !i < n do
    if is_space s.[!i] then incr i
    else if s.[!i] = ';' then stop := true
    else begin
      let start = !i in
      let depth = ref 0 in
      let finished = ref false in
      while (not !finished) && !i < n do
        let c = s.[!i] in
        if c = '{' then begin
          incr depth;
          incr i
        end
        else if c = '}' then begin
          if !depth > 0 then decr depth;
          incr i
        end
        else if !depth > 0 then incr i
        else if is_space c || c = ';' then finished := true
        else incr i
      done;
      if !depth > 0 then
        Ast.error
          {
            start_line = lineno;
            start_col = start + 1;
            end_line = lineno;
            end_col = n + 1;
          }
          "unterminated { expression (braces must close on the same \
           physical line)";
      let text = String.sub s start (!i - start) in
      let span =
        {
          Ast.start_line = lineno;
          start_col = start + 1;
          end_line = lineno;
          end_col = !i + 1;
        }
      in
      tokens := { text; span } :: !tokens
    end
  done;
  List.rev !tokens

let line_of_tokens tokens =
  match tokens with
  | [] -> invalid_arg "Netlist_lexer.line_of_tokens: empty"
  | first :: _ ->
      let last = List.fold_left (fun _ t -> t) first tokens in
      { tokens; lspan = Ast.hull first.span last.span }

(* first non-blank character of a physical line, with its 0-based index *)
let first_nonblank s =
  let n = String.length s in
  let rec go i = if i < n && is_space s.[i] then go (i + 1) else i in
  let i = go 0 in
  if i < n then Some (i, s.[i]) else None

let tokenize text =
  let physical = String.split_on_char '\n' text in
  (* most-recent logical line sits at the head as a reversed token list *)
  let logical : token list list ref = ref [] in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      match first_nonblank raw with
      | None -> ()
      | Some (_, '*') -> ()
      | Some (at, '+') -> begin
          let rest =
            String.sub raw (at + 1) (String.length raw - at - 1)
            |> tokenize_line ~lineno
          in
          (* token columns shift by the stripped "+" prefix *)
          let rest =
            List.map
              (fun t ->
                {
                  t with
                  span =
                    {
                      t.span with
                      Ast.start_col = t.span.Ast.start_col + at + 1;
                      end_col = t.span.Ast.end_col + at + 1;
                    };
                })
              rest
          in
          match !logical with
          | [] ->
              Ast.error
                {
                  start_line = lineno;
                  start_col = at + 1;
                  end_line = lineno;
                  end_col = at + 2;
                }
                "continuation line with nothing to continue"
          | current :: older -> logical := List.rev_append rest current :: older
        end
      | Some (_, _) -> begin
          match tokenize_line ~lineno raw with
          | [] -> ()
          | tokens -> logical := List.rev tokens :: !logical
        end)
    physical;
  List.rev_map (fun rev -> line_of_tokens (List.rev rev)) !logical
