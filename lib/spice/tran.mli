(** Transient analysis: fixed-step trapezoidal integration with a
    backward-Euler start-up step, Newton iteration at every time point.

    Capacitors (explicit and MOS intrinsic/junction) are handled through
    companion models.  MOS capacitances are evaluated quasi-statically at
    the previous accepted time point: adequate for the slew-rate and
    settling measurements this library needs, and documented as an
    approximation relative to a charge-conserving formulation. *)

type options = {
  t_stop : float;  (** end time, s *)
  dt : float;  (** fixed step, s *)
  max_newton : int;  (** per-step Newton iterations (default 60) *)
  vtol : float;  (** Newton voltage tolerance (default 1e-7) *)
}

val options : ?max_newton:int -> ?vtol:float -> t_stop:float -> dt:float -> unit -> options
(** @raise Invalid_argument for non-positive times. *)

type t = {
  times : float array;
  solutions : float array array;  (** one unknown vector per time point *)
  layout : Mna.layout;
}

type error = Dc_failed of Dcop.error | Step_failed of { time : float }

val error_to_string : error -> string

val run :
  ?sys:Mna.sys -> ?models:Mna.models -> options -> Circuit.t ->
  (t, error) Stdlib.result
(** Solves the DC operating point (waveform values at t = 0), then
    integrates to [t_stop].  [sys] reuses a pre-compiled {!Mna.sys} solver
    session for the circuit's topology; [models] applies per-sample MOSFET
    model overrides (see {!Mna.models}). *)

val voltage : t -> Device.node -> float array
(** Waveform of one node voltage across all time points. *)

val voltage_by_name : t -> Circuit.t -> string -> float array
