(** DC operating-point analysis: damped Newton–Raphson on the MNA system,
    with gmin-stepping and source-stepping homotopies as fallbacks. *)

type t = {
  x : Yield_numeric.Vec.t;  (** converged unknown vector *)
  layout : Mna.layout;
  mos_ops : (string * Mosfet.op) list;
  iterations : int;  (** Newton iterations of the final (full-source) solve *)
}

type options = {
  max_iterations : int;  (** per Newton attempt; default 150 *)
  vtol : float;  (** voltage convergence tolerance; default 1e-9 *)
  max_step : float;  (** per-iteration voltage step clamp, V; default 0.5 *)
  gmin : float;  (** baseline node-to-ground conductance; default 1e-12 *)
}

val default_options : options

type error =
  | No_convergence of { attempts : string list }
  | Singular_system of string

val error_to_string : error -> string

val classify_error : error -> Yield_resilience.Retry.classification
(** [No_convergence] is transient (a different starting point may converge);
    [Singular_system] is permanent (the topology itself is broken). *)

val solve :
  ?options:options -> ?x0_jitter:(int -> float) -> ?sys:Mna.sys ->
  ?models:Mna.models -> Circuit.t -> (t, error) result
(** [x0_jitter k] is added to unknown [k] of the initial guess — the retry
    layer uses it to perturb the starting point between attempts.

    Structurally singular circuits ({!Topology.dc_issues}: a node with no DC
    path to ground, a loop of voltage sources) fail immediately with
    [Singular_system], before any factoring — previously gmin either masked
    them with a meaningless 0 V bias or burned the whole homotopy chain into
    a misclassified [No_convergence].

    The solve chain consults three fault-injection points
    ({!Yield_resilience.Fault}): [dcop.solve] fails the whole call with
    [No_convergence], while [dcop.newton] and [dcop.gmin] fail one homotopy
    stage each, forcing the gmin-stepping / source-stepping fallbacks.

    [sys] supplies a pre-compiled {!Mna.sys} solver session (layout +
    cached structural pattern) for the circuit's topology — the batch-first
    Monte Carlo path compiles it once per front point; without it a
    pattern-less dense session reproduces the historical path
    byte-for-byte.  [models] patches per-device MOSFET models for this
    sample (see {!Mna.models}). *)

val solve_with_retry :
  ?options:options -> ?budget_s:float -> ?sys:Mna.sys -> ?models:Mna.models ->
  Circuit.t -> (t, error) result
(** {!solve} under the [dcop.solve] retry policy (3 attempts): transient
    non-convergence is retried with a deterministic gaussian jitter
    (sigma 50 mV) on the initial guess; singular systems fail immediately.
    Accounting lands in the [retry.dcop.solve.*] metrics.

    [budget_s] is an overall wall-clock budget for the whole call
    (converted to the absolute deadline {!Yield_resilience.Retry} takes):
    a retry that would overrun it is not launched — the failure counts as
    exhausted, plus [retry.dcop.solve.deadline_stopped].  The table-server
    request path uses the same mechanism against its per-request
    deadline. *)

val voltage : t -> Device.node -> float

val voltage_by_name : t -> Circuit.t -> string -> float
(** @raise Not_found for an unknown node name. *)

val branch_current : t -> string -> float
(** Current through the named voltage source.
    @raise Not_found if there is no such source. *)

val mos_op : t -> string -> Mosfet.op
(** @raise Not_found for an unknown MOSFET. *)

val pp : Circuit.t -> Format.formatter -> t -> unit
(** Human-readable operating-point report (node voltages and device bias). *)
