type span = {
  start_line : int;
  start_col : int;
  end_line : int;
  end_col : int;
}

exception Parse_error of { span : span; message : string }

let dummy_span = { start_line = 0; start_col = 0; end_line = 0; end_col = 0 }

let span_to_string s =
  if s.start_line = s.end_line then
    Printf.sprintf "%d:%d-%d" s.start_line s.start_col s.end_col
  else
    Printf.sprintf "%d:%d-%d:%d" s.start_line s.start_col s.end_line s.end_col

let hull a b =
  let start_line, start_col =
    if
      a.start_line < b.start_line
      || (a.start_line = b.start_line && a.start_col <= b.start_col)
    then (a.start_line, a.start_col)
    else (b.start_line, b.start_col)
  in
  let end_line, end_col =
    if
      a.end_line > b.end_line
      || (a.end_line = b.end_line && a.end_col >= b.end_col)
    then (a.end_line, a.end_col)
    else (b.end_line, b.end_col)
  in
  { start_line; start_col; end_line; end_col }

let error span message = raise (Parse_error { span; message })

(* ---------- engineering-notation scalars ---------- *)

let suffixes =
  [
    ("meg", 1e6); ("t", 1e12); ("g", 1e9); ("k", 1e3); ("m", 1e-3);
    ("u", 1e-6); ("n", 1e-9); ("p", 1e-12); ("f", 1e-15);
  ]

let float_of_spice s =
  let s = String.lowercase_ascii (String.trim s) in
  let try_suffix (suffix, scale) =
    let ls = String.length s and lf = String.length suffix in
    if ls > lf && String.sub s (ls - lf) lf = suffix then
      match float_of_string_opt (String.sub s 0 (ls - lf)) with
      | Some v -> Some (v *. scale)
      | None -> None
    else None
  in
  match float_of_string_opt s with
  | Some v -> Some v
  | None -> List.find_map try_suffix suffixes

(* ---------- identifiers, expressions, values ---------- *)

type ident = { id : string; ispan : span }

type binop = Add | Sub | Mul | Div

type expr =
  | Num of float
  | Ref of string  (** parameter reference, lowercased *)
  | Bin of binop * expr * expr
  | Neg of expr

type value = { text : string; expr : expr; vspan : span }

let rec expr_refs acc = function
  | Num _ -> acc
  | Ref name -> name :: acc
  | Bin (_, a, b) -> expr_refs (expr_refs acc a) b
  | Neg e -> expr_refs acc e

let value_refs v = expr_refs [] v.expr

(* a stable engineering rendering: the text must read back as close to [v]
   as the format allows, and — because printed values travel as verbatim
   text through parse/print cycles — any text at all is print-stable.
   Prefer the compact engineering form; fall back to full precision when
   six significant digits would not read back exactly. *)
let engineering v =
  let abs = Float.abs v in
  if v = 0. then "0"
  else begin
    let scaled, suffix =
      if abs >= 1e12 then (v /. 1e12, "t")
      else if abs >= 1e6 then (v /. 1e6, "meg")
      else if abs >= 1e3 then (v /. 1e3, "k")
      else if abs >= 1. then (v, "")
      else if abs >= 1e-3 then (v /. 1e-3, "m")
      else if abs >= 1e-6 then (v /. 1e-6, "u")
      else if abs >= 1e-9 then (v /. 1e-9, "n")
      else if abs >= 1e-12 then (v /. 1e-12, "p")
      else (v /. 1e-15, "f")
    in
    Printf.sprintf "%.6g%s" scaled suffix
  end

let value_of_float v =
  let text =
    let compact = engineering v in
    match float_of_spice compact with
    | Some back when back = v -> compact
    | _ -> Printf.sprintf "%.17g" v
  in
  { text; expr = Num v; vspan = dummy_span }

(* ---------- cards ---------- *)

type assign = { key : ident; v : value }

type analysis =
  | Op
  | Ac of { per_decade : value; f_lo : value; f_hi : value; out : ident }
  | Tran of { dt : value; t_stop : value; out : ident }
  | Dc of {
      source : ident;
      start : value;
      stop : value;
      step : value;
      out : ident;
    }

type card =
  | Resistor of { name : ident; n1 : ident; n2 : ident; r : value }
  | Capacitor of { name : ident; n1 : ident; n2 : ident; c : value }
  | Vsource of {
      name : ident;
      npos : ident;
      nneg : ident;
      dc : value;
      ac : value option;
    }
  | Isource of {
      name : ident;
      npos : ident;
      nneg : ident;
      dc : value;
      ac : value option;
    }
  | Vccs of {
      name : ident;
      out_p : ident;
      out_n : ident;
      in_p : ident;
      in_n : ident;
      gm : value;
    }
  | Mosfet of {
      name : ident;
      d : ident;
      g : ident;
      s : ident;
      b : ident;
      model : ident;
      params : assign list;
    }
  | Instance of { name : ident; conns : ident list; sub : ident }
  | Model of { name : ident; kind : ident; params : assign list }
  | Param of assign list
  | Nodeset of (ident * value) list
  | Analysis of analysis
  | End

type statement =
  | Card of { card : card; span : span }
  | Subckt of { name : ident; ports : ident list; body : statement list; span : span }

type t = { statements : statement list }

let statement_span = function
  | Card { span; _ } -> span
  | Subckt { span; _ } -> span

let card_name = function
  | Resistor { name; _ }
  | Capacitor { name; _ }
  | Vsource { name; _ }
  | Isource { name; _ }
  | Vccs { name; _ }
  | Mosfet { name; _ }
  | Instance { name; _ } ->
      Some name
  | Model _ | Param _ | Nodeset _ | Analysis _ | End -> None
