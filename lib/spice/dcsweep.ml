type t = {
  sweep_values : float array;
  solutions : float array array;
  layout : Mna.layout;
}

let set_source_value circuit ~source value =
  Circuit.map_devices circuit (fun dev ->
      match dev with
      | Device.Vsource v when v.name = source ->
          Device.Vsource { v with dc = value }
      | Device.Isource i when i.name = source ->
          Device.Isource { i with dc = value }
      | Device.Resistor _ | Device.Capacitor _ | Device.Vsource _
      | Device.Isource _ | Device.Vccs _ | Device.Mosfet _ ->
          dev)

let validate_source circuit ~source =
  match Circuit.find_device circuit source with
  | Device.Vsource _ | Device.Isource _ -> ()
  | Device.Resistor _ | Device.Capacitor _ | Device.Vccs _ | Device.Mosfet _ ->
      invalid_arg ("Dcsweep.run: " ^ source ^ " is not a source")

let run ?options ?sys ?models circuit ~source ~values =
  if Array.length values = 0 then invalid_arg "Dcsweep.run: empty sweep";
  validate_source circuit ~source;
  let layout =
    match sys with Some s -> Mna.sys_layout s | None -> Mna.layout circuit
  in
  let solutions = Array.make (Array.length values) [||] in
  let exception Failed of Dcop.error in
  let previous = ref None in
  match
    Array.iteri
      (fun i value ->
        let swept = set_source_value circuit ~source value in
        (* warm start: seed the nodesets from the previous solution *)
        (match !previous with
        | None -> ()
        | Some x ->
            for node = 1 to Mna.n_nodes layout do
              Circuit.nodeset swept node (Mna.voltage x node)
            done);
        match Dcop.solve ?options ?sys ?models swept with
        | Error e -> raise (Failed e)
        | Ok op ->
            solutions.(i) <- Array.copy op.Dcop.x;
            previous := Some op.Dcop.x)
      values
  with
  | () -> Ok { sweep_values = Array.copy values; solutions; layout }
  | exception Failed e -> Error e

let voltage t node = Array.map (fun x -> Mna.voltage x node) t.solutions

let voltage_by_name t circuit name = voltage t (Circuit.node circuit name)

let crossing_input ~sweep ~output ~level =
  let n = Array.length sweep in
  if n <> Array.length output then
    invalid_arg "Dcsweep.crossing_input: length mismatch";
  let rec scan i =
    if i >= n - 1 then None
    else begin
      let a = output.(i) -. level and b = output.(i + 1) -. level in
      if a = 0. then Some sweep.(i)
      else if (a < 0. && b >= 0.) || (a > 0. && b <= 0.) then begin
        let u = a /. (a -. b) in
        Some (sweep.(i) +. (u *. (sweep.(i + 1) -. sweep.(i))))
      end
      else scan (i + 1)
    end
  in
  scan 0

let output_range output =
  if Array.length output = 0 then invalid_arg "Dcsweep.output_range: empty";
  ( Array.fold_left Float.min infinity output,
    Array.fold_left Float.max neg_infinity output )
