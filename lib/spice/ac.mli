(** Small-signal AC analysis around a converged DC operating point. *)

type bode = {
  freqs : float array;  (** Hz, strictly increasing *)
  response : Complex.t array;  (** complex transfer values, same length *)
}

exception Singular of string
(** Raised by {!solve_at} and {!transfer} when {!Topology.ac_issues} finds a
    structural singularity — a node [G + jwC] cannot constrain at any
    frequency, or a loop of voltage sources — before anything is
    assembled.  Mirrors the {!Dcop.solve} pre-check. *)

val solve_at : Circuit.t -> Dcop.t -> freq:float -> Complex.t array
(** Full small-signal solution vector at one frequency. *)

val transfer :
  ?sys:Mna.sys -> Circuit.t -> Dcop.t -> out:Device.node ->
  freqs:float array -> bode
(** Response observed at node [out] for each frequency, driven by the AC
    magnitudes declared on the circuit's independent sources.  [sys] reuses
    a pre-compiled {!Mna.sys} solver session (cached sparsity pattern /
    symbolic factorisation); without it a pattern-less dense session
    reproduces the historical path byte-for-byte. *)

val transfer_by_name :
  ?sys:Mna.sys -> Circuit.t -> Dcop.t -> out:string -> freqs:float array ->
  bode

val default_freqs : ?per_decade:int -> f_lo:float -> f_hi:float -> unit -> float array
(** Logarithmically spaced grid, default 10 points per decade. *)
