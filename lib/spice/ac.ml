module Cmat = Yield_numeric.Cmat
module Linsys = Yield_numeric.Linsys
module Fault = Yield_resilience.Fault

type bode = { freqs : float array; response : Complex.t array }

exception Singular of string

(* [ac.solve] fault: the transfer comes back all-NaN, which every measure
   downstream maps to a failed (not crashed) evaluation *)
let fp_solve = Fault.point "ac.solve"

(* mirror of the Dcop.solve structural pre-check: a node the AC matrix
   cannot constrain at any frequency makes [G + jwC] singular independent
   of device values, so fail loudly instead of returning the gmin-shaped
   garbage a nearly-singular factorisation would produce *)
let precheck circuit =
  match Topology.ac_issues circuit with
  | [] -> ()
  | issue :: _ -> raise (Singular (Topology.issue_to_string issue))

let system circuit (op : Dcop.t) =
  precheck circuit;
  let ops name = Dcop.mos_op op name in
  Mna.assemble_ac circuit op.Dcop.layout ~ops

let solve_pieces (g, c, rhs) ~freq =
  let omega = 2. *. Float.pi *. freq in
  let m = Cmat.of_real ~imag_scale:omega g c in
  Cmat.solve m rhs

let solve_at circuit op ~freq = solve_pieces (system circuit op) ~freq

let transfer ?sys circuit op ~out ~freqs =
  if Fault.fire fp_solve then
    { freqs; response = Array.map (fun _ -> Complex.{ re = nan; im = nan }) freqs }
  else begin
    precheck circuit;
    (* one code path for both solvers: without a session, a pattern-less
       dense workspace reproduces the historical of_real+solve sequence *)
    let s =
      match sys with
      | Some s -> s
      | None -> Mna.dense_sys_of_layout op.Dcop.layout
    in
    let cs = Mna.sys_complex s in
    let ops name = Dcop.mos_op op name in
    let rhs = Mna.assemble_ac_into cs circuit (Mna.sys_layout s) ~ops in
    let response =
      Array.map
        (fun freq ->
          let omega = 2. *. Float.pi *. freq in
          let solve = cs.Linsys.factor ~omega in
          let x = solve rhs in
          if out = Device.ground then Complex.zero else x.(out - 1))
        freqs
    in
    { freqs; response }
  end

let transfer_by_name ?sys circuit op ~out ~freqs =
  transfer ?sys circuit op ~out:(Circuit.node circuit out) ~freqs

let default_freqs ?(per_decade = 10) ~f_lo ~f_hi () =
  if f_lo <= 0. || f_hi <= f_lo then invalid_arg "Ac.default_freqs: bad range";
  let decades = log10 (f_hi /. f_lo) in
  let n = Stdlib.max 2 (1 + int_of_float (Float.ceil (decades *. float_of_int per_decade))) in
  Yield_numeric.Vec.logspace f_lo f_hi n
