(** DC sweep analysis: re-solve the operating point over a range of one
    source's value, warm-starting each step from the previous solution —
    transfer curves, input-offset and output-swing extraction. *)

type t = {
  sweep_values : float array;  (** the swept source's DC values *)
  solutions : float array array;  (** converged unknown vector per value *)
  layout : Mna.layout;
}

val run :
  ?options:Dcop.options -> ?sys:Mna.sys -> ?models:Mna.models -> Circuit.t ->
  source:string -> values:float array -> (t, Dcop.error) result
(** [run c ~source ~values] sweeps the DC value of the named V- or I-source.
    Fails on the first non-converging point.  [sys]/[models] are passed
    through to each {!Dcop.solve} (the swept circuits share one topology).
    @raise Not_found when the source does not exist.
    @raise Invalid_argument when the named device is not a source or
    [values] is empty. *)

val voltage : t -> Device.node -> float array

val voltage_by_name : t -> Circuit.t -> string -> float array

val crossing_input :
  sweep:float array -> output:float array -> level:float -> float option
(** Swept-source value at which the output first crosses [level]
    (linearly interpolated) — e.g. the input offset of a comparator-style
    transfer curve. *)

val output_range : float array -> float * float
(** Min and max of an output waveform: the swing over the sweep. *)
