(* Tests for the SPICE frontend: the spanned lexer, the typed AST parser,
   the byte-idempotent printer (shipped fixtures, a seeded random corpus,
   hostile bytes) and the AST-level lint codes N009-N014. *)

module Ast = Yield_spice.Netlist_ast
module Lexer = Yield_spice.Netlist_lexer
module Parser = Yield_spice.Netlist_parser
module Netlist = Yield_spice.Netlist
module Diagnostic = Yield_analyse.Diagnostic
module Netlist_lint = Yield_analyse.Netlist_lint

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* dune runtest runs inside _build/default/test and the example fixtures are
   not part of any dune target, so resolve them against the source root *)
let fixture rel =
  let rec go dir =
    let cand = Filename.concat dir rel in
    if Sys.file_exists cand then cand
    else
      let parent = Filename.dirname dir in
      if parent = dir then rel else go parent
  in
  go (Sys.getcwd ())

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_span name (expect : int * int) (s : Ast.span) =
  Alcotest.(check (pair int int))
    name expect
    (s.Ast.start_line, s.Ast.start_col)

(* ---------- lexer ---------- *)

let test_lexer_logical_lines () =
  let lines =
    Lexer.tokenize "R1 a b 1k\n+ 2k ; tail comment\n* whole-line comment\nC1 x 0 {1p * 2}\n"
  in
  Alcotest.(check int) "two logical lines" 2 (List.length lines);
  let l1 = List.nth lines 0 and l2 = List.nth lines 1 in
  Alcotest.(check (list string))
    "continuation joined, ; comment dropped"
    [ "R1"; "a"; "b"; "1k"; "2k" ]
    (List.map (fun (t : Lexer.token) -> t.text) l1.Lexer.tokens);
  (* the continued token keeps its own physical position *)
  let t2k = List.nth l1.Lexer.tokens 4 in
  check_span "2k span" (2, 3) t2k.Lexer.span;
  Alcotest.(check (list string))
    "braces swallow spaces"
    [ "C1"; "x"; "0"; "{1p * 2}" ]
    (List.map (fun (t : Lexer.token) -> t.text) l2.Lexer.tokens);
  let brace = List.nth l2.Lexer.tokens 3 in
  check_span "brace span" (4, 8) brace.Lexer.span

let test_lexer_errors () =
  (match Lexer.tokenize "+ orphan continuation\n" with
  | exception Ast.Parse_error { span; _ } ->
      Alcotest.(check int) "orphan + line" 1 span.Ast.start_line
  | _ -> Alcotest.fail "leading continuation must not lex");
  match Lexer.tokenize "R1 a 0 {1k\n" with
  | exception Ast.Parse_error { span; _ } ->
      Alcotest.(check int) "unterminated brace col" 8 span.Ast.start_col
  | _ -> Alcotest.fail "unterminated brace must not lex"

(* ---------- parser ---------- *)

let hier_deck =
  "* divider with hierarchy\n\
   .param rbase=1k\n\
   .subckt blk in out\n\
   Rtop in out {rbase}\n\
   Rbot out 0 {rbase*2}\n\
   .ends\n\
   V1 in 0 1.0 ac=1\n\
   X1 in mid blk\n\
   C1 mid 0 1p\n\
   .op\n\
   .ac dec 10 1 1meg mid\n\
   .end\n"

let test_parser_ast_shape () =
  let ast = Parser.parse hier_deck in
  Alcotest.(check int) "statement count" 8 (List.length ast.Ast.statements);
  (match List.nth ast.Ast.statements 1 with
  | Ast.Subckt { name; ports; body; span } ->
      Alcotest.(check string) "subckt name" "blk" name.Ast.id;
      check_span "subckt name span" (3, 9) name.Ast.ispan;
      Alcotest.(check (list string))
        "ports" [ "in"; "out" ]
        (List.map (fun (p : Ast.ident) -> p.Ast.id) ports);
      Alcotest.(check int) "body cards" 2 (List.length body);
      Alcotest.(check int) "subckt span reaches .ends" 6 span.Ast.end_line
  | _ -> Alcotest.fail "statement 1 should be the subckt");
  (match List.nth ast.Ast.statements 3 with
  | Ast.Card { card = Ast.Instance { name; conns; sub }; _ } ->
      Alcotest.(check string) "instance name" "X1" name.Ast.id;
      Alcotest.(check int) "connections" 2 (List.length conns);
      Alcotest.(check string) "subckt ref" "blk" sub.Ast.id
  | _ -> Alcotest.fail "statement 3 should be the X instance");
  match List.nth ast.Ast.statements 6 with
  | Ast.Card { card = Ast.Analysis (Ast.Ac { out; _ }); _ } ->
      Alcotest.(check string) "ac out" "mid" out.Ast.id
  | _ -> Alcotest.fail "statement 6 should be the .ac card"

let test_parser_expr_refs () =
  let v = Parser.value_of_text Ast.dummy_span "{w*2+1u}" in
  Alcotest.(check (list string)) "refs" [ "w" ] (Ast.value_refs v);
  Alcotest.(check string) "verbatim text" "{w*2+1u}" v.Ast.text

let expect_error_at name (line, col) text =
  match Parser.parse text with
  | exception Ast.Parse_error { span; _ } ->
      check_span name (line, col) span
  | _ -> Alcotest.failf "%s: expected a parse error" name

let test_parser_error_spans () =
  expect_error_at "unknown card letter" (1, 1) "Q1 a b c\n";
  expect_error_at "bad value column" (1, 8) "R1 a 0 bogus\n";
  expect_error_at "orphan .ends" (2, 1) "R1 a 0 1k\n.ends\n";
  expect_error_at "analysis inside subckt" (2, 1) ".subckt s a\n.op\nR1 a 0 1k\n.ends\n";
  expect_error_at "unterminated subckt" (1, 1) ".subckt s a\nR1 a 0 1k\n";
  expect_error_at "unknown source key" (1, 10) "V1 a 0 1 sin=2\n"

(* ---------- printer: canonical form and fixture idempotence ---------- *)

let test_print_canonical () =
  Alcotest.(check string)
    "normalises whitespace, comments, case"
    "R1 in out 1k\nC1 out 0 1p\n.ac dec 10 1 1meg out\n"
    (Netlist.print_canonical
       "R1  in   out  1k\nC1 out 0 1p ; load\n.AC dec 10 1 1meg out\n")

let assert_fixpoint name text =
  let c1 = Netlist.print_canonical text in
  let c2 = Netlist.print_canonical c1 in
  Alcotest.(check string) (name ^ " byte-fixpoint") c1 c2;
  (* the canonical form must also elaborate to the same flat circuit;
     negative fixtures (e.g. xarity_bad.cir) parse but refuse to
     elaborate, which is fine — idempotence already held above *)
  match Netlist.parse text with
  | exception Netlist.Parse_error _ -> ()
  | circuit ->
      Alcotest.(check string)
        (name ^ " same elaborated circuit")
        (Netlist.to_string circuit)
        (Netlist.to_string (Netlist.parse c1))

let test_fixture_idempotence () =
  let dir = fixture "examples/netlists" in
  let fixtures =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".cir")
    |> List.sort String.compare
  in
  Alcotest.(check bool) "found fixtures" true (List.length fixtures >= 3);
  List.iter
    (fun f -> assert_fixpoint f (read_file (Filename.concat dir f)))
    fixtures

let test_model_name_preserved () =
  let text =
    ".model mydev nmos vth0=0.5 kp=110u\n\
     V1 d 0 1\nV2 g 0 1\nM1 d g 0 0 mydev w=10u l=1u\n"
  in
  let printed = Netlist.to_string (Netlist.parse text) in
  Alcotest.(check bool)
    "original .model name survives" true
    (contains ~sub:".model mydev nmos" printed);
  Alcotest.(check bool)
    "no generated mod1 alias" false
    (contains ~sub:"mod1" printed);
  (* and the rendering itself round-trips *)
  assert_fixpoint "model-name deck" printed

(* ---------- seeded random corpus ---------- *)

let gen_deck st =
  let rnd n = Random.State.int st n in
  let pick arr = arr.(rnd (Array.length arr)) in
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let sp () = String.make (1 + rnd 3) ' ' in
  let rval () =
    pick [| "1k"; "2.2k"; "470"; "1meg"; "{rb}"; "{rb*2}"; "{rb+0.5k}" |]
  in
  let cval () = pick [| "1p"; "10p"; "{cl}"; "{cl/2}" |] in
  if rnd 2 = 0 then line "* corpus deck %d" (rnd 1000);
  (* parameters first so every {ref} is in scope, sometimes continued *)
  if rnd 2 = 0 then line ".param rb=1k cl=2p"
  else line ".PARAM rb=1k\n+ cl=2p";
  let with_mos = rnd 2 = 0 in
  if with_mos then line ".model m1 nmos vth0=0.5 kp=110u lambda0=0.04";
  let with_sub = rnd 2 = 0 in
  if with_sub then begin
    line ".subckt stage a b";
    line "R1 a%sb %s" (sp ()) (rval ());
    line "R2 b 0 %s" (rval ());
    if rnd 2 = 0 then line "C1 b 0 %s" (cval ());
    line ".ends"
  end;
  if rnd 2 = 0 then line "V1 in 0 1.0 ac=1" else line "v1 in%s0\n+ 1.0" (sp ());
  if with_sub then line "X1 in n1 stage"
  else begin
    line "Rt1 in n1 %s" (rval ());
    line "Rt2 n1 0 %s" (rval ())
  end;
  if rnd 2 = 0 then line "Ct1 n1 0 %s" (cval ());
  if with_mos then line "M1 n1 in 0 0 m1 w=10u l=1u";
  if rnd 2 = 0 then line ".op";
  if rnd 2 = 0 then line ".ac dec 10 1 1meg n1";
  if rnd 2 = 0 then line ".end";
  Buffer.contents buf

let test_corpus_roundtrip () =
  let st = Random.State.make [| 0x5f1ce |] in
  for i = 1 to 60 do
    let deck = gen_deck st in
    match assert_fixpoint (Printf.sprintf "corpus %d" i) deck with
    | () -> ()
    | exception Ast.Parse_error { span; message } ->
        Alcotest.failf "corpus %d must parse, got %s at %s:\n%s" i message
          (Ast.span_to_string span) deck
  done

(* ---------- hostile bytes ---------- *)

(* the frontend contract: any byte sequence either parses or raises the one
   typed Parse_error — no Failure, no Stack_overflow, no Invalid_argument *)
let assert_typed_failure name input =
  (match Parser.parse input with
  | _ -> ()
  | exception Ast.Parse_error _ -> ()
  | exception e ->
      Alcotest.failf "%s: parser leaked %s" name (Printexc.to_string e));
  match Netlist.parse input with
  | _ -> ()
  | exception Netlist.Parse_error _ -> ()
  | exception e ->
      Alcotest.failf "%s: elaborator leaked %s" name (Printexc.to_string e)

let test_hostile_cases () =
  List.iter
    (fun (name, input) -> assert_typed_failure name input)
    [
      ("orphan continuation", "+ a b c\n");
      ("truncated continuation", "R1 a 0 1k\n+");
      ("binary garbage", "\x00\x01\xffgarbage\xfe\n");
      ("unterminated brace", "R1 a 0 {1k\n");
      ("empty braces", "R1 a 0 {}\n");
      ("10k-char line", "R1 a 0 " ^ String.make 10_000 '9' ^ "\n");
      ("10k-char token soup", String.make 10_000 'x' ^ "\n");
      ( "deep parens",
        "R1 a 0 {" ^ String.make 400 '(' ^ "1" ^ String.make 400 ')' ^ "}\n" );
      ("unbalanced parens", "R1 a 0 {((((1}\n");
      ("empty ac value", "V1 a 0 1 ac=\n");
      ("duplicate device", "R1 a 0 1k\nR1 a 0 2k\nV1 a 0 1\n");
      ("unknown param", "R1 a 0 {nope}\n");
      ("truncated .ac", ".ac dec\n");
      ("nested subckt", ".subckt a x\n.subckt b y\n.ends\n.ends\n");
      ("division in expr", ".param z=0\nR1 a 0 {1k/z}\nV1 a 0 1\n");
    ]

let test_hostile_random_bytes () =
  let st = Random.State.make [| 0xbadca5e |] in
  for i = 1 to 300 do
    let len = Random.State.int st 120 in
    let input =
      String.init len (fun _ -> Char.chr (Random.State.int st 256))
    in
    assert_typed_failure (Printf.sprintf "random bytes %d" i) input
  done

(* ---------- AST lint: N009-N014 ---------- *)

let codes diags = List.map (fun d -> d.Diagnostic.code) (Diagnostic.sort diags)

let has_code code diags = List.exists (fun d -> d.Diagnostic.code = code) diags

let find_code code diags =
  match List.find_opt (fun d -> d.Diagnostic.code = code) diags with
  | Some d -> d
  | None -> Alcotest.failf "expected a %s finding, got [%s]" code
              (String.concat "; " (codes diags))

let lint text = Netlist_lint.check_ast (Parser.parse text)

let test_lint_duplicate_device () =
  let d = find_code "N009" (lint "R1 a 0 1k\nR1 a 0 2k\nV1 a 0 1\n") in
  Alcotest.(check string) "subject" "R1" d.Diagnostic.subject;
  (match d.Diagnostic.span with
  | Some s -> Alcotest.(check int) "at the second card" 2 s.Diagnostic.start_line
  | None -> Alcotest.fail "N009 must carry a span");
  Alcotest.(check bool)
    "message points at the first" true
    (contains ~sub:"line 1:1" d.Diagnostic.message);
  (* same name in different scopes is fine *)
  Alcotest.(check bool)
    "scopes are separate" false
    (has_code "N009"
       (lint ".subckt s a\nR1 a 0 1k\n.ends\nR1 b 0 1k\nV1 b 0 1\nX1 b s\n"))

let test_lint_subckt_codes () =
  let d = find_code "N010" (lint "V1 a 0 1\nR1 a 0 1k\nX1 a b nosuch\n") in
  Alcotest.(check string) "undefined subckt subject" "nosuch" d.Diagnostic.subject;
  let d =
    find_code "N011" (lint ".subckt s a\nR1 a 0 1k\n.ends\nV1 b 0 1\nR2 b 0 1k\n")
  in
  Alcotest.(check string) "unused subckt subject" "s" d.Diagnostic.subject;
  let d =
    find_code "N012"
      (lint ".subckt div in out com\nR1 in out 1k\nR2 out com 1k\n.ends\nV1 a 0 1\nX1 a b div\n")
  in
  Alcotest.(check string) "arity subject is the instance" "X1" d.Diagnostic.subject;
  match d.Diagnostic.span with
  | Some s ->
      Alcotest.(check int) "reported at the instantiation site" 6
        s.Diagnostic.start_line
  | None -> Alcotest.fail "N012 must carry a span"

let test_lint_param_codes () =
  let diags = lint ".param unused=1 used=2k\nV1 a 0 1\nR1 a 0 {used}\n" in
  let d = find_code "N013" diags in
  Alcotest.(check string) "unused param subject" "unused" d.Diagnostic.subject;
  Alcotest.(check bool) "used param not flagged" false
    (List.exists
       (fun d -> d.Diagnostic.code = "N013" && d.Diagnostic.subject = "used")
       diags);
  let d =
    find_code "N014" (lint ".param r=1k\n.param r=2k\nV1 a 0 1\nR1 a 0 {r}\n")
  in
  Alcotest.(check string) "shadowed subject" "r" d.Diagnostic.subject;
  match d.Diagnostic.span with
  | Some s -> Alcotest.(check int) "at the second .param" 2 s.Diagnostic.start_line
  | None -> Alcotest.fail "N014 must carry a span"

let test_lint_file_spans () =
  (* circuit-level findings acquire source spans through the elaboration
     provenance tables when linting a file *)
  let path = Filename.temp_file "yieldlab" ".cir" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "V1 in 0 1\nR1 in out 1k\nR2 out 0 1k\nC1 out flt 1p\n";
      close_out oc;
      let diags = Netlist_lint.check_file path in
      let d = find_code "N002" diags in
      match d.Diagnostic.span with
      | Some s ->
          Alcotest.(check int) "flt first referenced on line 4" 4
            s.Diagnostic.start_line
      | None -> Alcotest.fail "origin table should give N002 a span")

let test_lint_file_arity_fixture () =
  let diags = Netlist_lint.check_file (fixture "examples/netlists/xarity_bad.cir") in
  Alcotest.(check bool) "N012 found" true (has_code "N012" diags);
  Alcotest.(check bool) "no cascading N000" false (has_code "N000" diags);
  Alcotest.(check int) "exit code" 2 (Diagnostic.exit_code diags)

let suites =
  [
    ( "netlist.lexer",
      [
        Alcotest.test_case "logical lines and spans" `Quick
          test_lexer_logical_lines;
        Alcotest.test_case "lexical errors" `Quick test_lexer_errors;
      ] );
    ( "netlist.parser",
      [
        Alcotest.test_case "AST shape" `Quick test_parser_ast_shape;
        Alcotest.test_case "expression refs" `Quick test_parser_expr_refs;
        Alcotest.test_case "error spans" `Quick test_parser_error_spans;
      ] );
    ( "netlist.printer",
      [
        Alcotest.test_case "canonical form" `Quick test_print_canonical;
        Alcotest.test_case "fixture idempotence" `Quick test_fixture_idempotence;
        Alcotest.test_case "model names preserved" `Quick
          test_model_name_preserved;
        Alcotest.test_case "seeded corpus round-trip" `Quick
          test_corpus_roundtrip;
      ] );
    ( "netlist.fuzz",
      [
        Alcotest.test_case "hostile cases" `Quick test_hostile_cases;
        Alcotest.test_case "random bytes" `Quick test_hostile_random_bytes;
      ] );
    ( "netlist.astlint",
      [
        Alcotest.test_case "N009 duplicate device" `Quick
          test_lint_duplicate_device;
        Alcotest.test_case "N010/N011/N012 subckts" `Quick
          test_lint_subckt_codes;
        Alcotest.test_case "N013/N014 params" `Quick test_lint_param_codes;
        Alcotest.test_case "check_file origin spans" `Quick
          test_lint_file_spans;
        Alcotest.test_case "xarity fixture fails" `Quick
          test_lint_file_arity_fixture;
      ] );
  ]
