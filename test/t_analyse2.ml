(* Tests for the dataflow-lint layer added on top of the preflight passes:
   the interval / fixpoint core, the AC-connectivity view of Topology and
   the Ac.Singular pre-check, the A/R analysis-card lint, the Verilog-A AST
   round trip and its V-code lint, and the SARIF + baseline CI surface. *)

module Diagnostic = Yield_analyse.Diagnostic
module Interval = Yield_analyse.Interval
module Ac_tran_lint = Yield_analyse.Ac_tran_lint
module Va_lint = Yield_analyse.Va_lint
module Baseline = Yield_analyse.Baseline
module Sarif = Yield_analyse.Sarif
module Circuit = Yield_spice.Circuit
module Device = Yield_spice.Device
module Dcop = Yield_spice.Dcop
module Ac = Yield_spice.Ac
module Topology = Yield_spice.Topology
module Netlist = Yield_spice.Netlist
module Verilog_a = Yield_behavioural.Verilog_a
module Json = Yield_obs.Json

let codes diags = List.map (fun d -> d.Diagnostic.code) (Diagnostic.sort diags)

let has_code code diags =
  List.exists (fun d -> d.Diagnostic.code = code) diags

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* dune runtest runs inside _build/default/test and the example fixtures are
   not part of any dune target, so resolve them against the source root *)
let fixture rel =
  let rec go dir =
    let cand = Filename.concat dir rel in
    if Sys.file_exists cand then cand
    else
      let parent = Filename.dirname dir in
      if parent = dir then rel else go parent
  in
  go (Sys.getcwd ())

(* ---------- interval arithmetic ---------- *)

let test_interval_outward () =
  (* 0.1 +. 0.2 <> 0.3 in floats; the outward-rounded sum must still
     enclose the real-number result *)
  let s = Interval.add (Interval.point 0.1) (Interval.point 0.2) in
  Alcotest.(check bool) "encloses 0.3" true (Interval.contains s 0.3);
  Alcotest.(check bool) "strictly widened" true (Interval.width s > 0.);
  let p = Interval.mul (Interval.point 10e3) (Interval.point 1e-9) in
  Alcotest.(check bool) "encloses tau" true (Interval.contains p 1e-5);
  (* the zero factor is exact: 0 * [-inf, inf] must collapse to (an ulp
     around) 0, not NaN and not the whole line *)
  let z = Interval.mul Interval.zero Interval.whole in
  Alcotest.(check bool) "0 * whole contains 0" true (Interval.contains z 0.);
  Alcotest.(check bool) "0 * whole is an ulp around 0" true
    (z.Interval.hi < 1e-300 && z.Interval.lo > -1e-300)

let test_interval_sets () =
  let a = Interval.of_bounds 1. 2. and b = Interval.of_bounds 5. 3. in
  Alcotest.(check bool) "of_bounds reorders" true (Interval.contains b 4.);
  Alcotest.(check bool) "disjoint" true (Interval.disjoint a b);
  let h = Interval.hull a b in
  Alcotest.(check bool) "subset of hull" true (Interval.subset a h);
  Alcotest.(check bool) "hull is exact" true
    (h.Interval.lo = 1. && h.Interval.hi = 5.);
  Alcotest.(check bool) "intersect empty" true
    (Interval.intersect a b = None);
  (* an interval spanning zero inverts to the whole line *)
  let inv = Interval.inv (Interval.of_bounds (-1.) 1.) in
  Alcotest.(check bool) "inv through zero" true
    (Interval.subset Interval.whole inv);
  match Interval.make 2. 1. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "make accepted lo > hi"

let test_fixpoint () =
  (* reachability: 0 -> 1 -> 2, node 3 isolated; seed out of range ignored *)
  let edges =
    [ Interval.Fixpoint.edge 0 1; Interval.Fixpoint.edge 1 2 ]
  in
  let r = Interval.Fixpoint.reachable ~size:4 ~edges ~seeds:[ 0; 99 ] in
  Alcotest.(check (list bool)) "reachable" [ true; true; true; false ]
    (Array.to_list r);
  (* max-propagation through a cycle still terminates (finite lattice) *)
  let edges =
    [
      Interval.Fixpoint.edge 0 1;
      Interval.Fixpoint.edge 1 2;
      Interval.Fixpoint.edge 2 1;
    ]
  in
  let out =
    Interval.Fixpoint.solve ~size:3 ~edges ~init:[| 7; 0; 0 |] ~join:max
      ~equal:Int.equal
  in
  Alcotest.(check (list int)) "max flows" [ 7; 7; 7 ] (Array.to_list out)

(* ---------- AC topology + Ac.Singular pre-check ---------- *)

let test_ac_vs_dc_issues () =
  (* a node held only between capacitors has no DC path but a perfectly
     good AC one *)
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"V1" ~ac:1. "in" "0" 1.;
  Circuit.add_capacitor c ~name:"C1" "in" "mid" 1e-9;
  Circuit.add_capacitor c ~name:"C2" "mid" "0" 1e-9;
  Alcotest.(check bool) "DC sees the break" true
    (List.exists
       (function Topology.No_dc_path { node } -> node = "mid" | _ -> false)
       (Topology.dc_issues c));
  Alcotest.(check (list string)) "AC is clean" []
    (List.map Topology.issue_to_string (Topology.ac_issues c));
  (* a current-source-only node is singular in both views *)
  let c2 = Circuit.create () in
  Circuit.add_vsource c2 ~name:"V1" ~ac:1. "in" "0" 1.;
  Circuit.add_resistor c2 ~name:"R1" "in" "0" 1e3;
  Circuit.add_isource c2 ~name:"I1" "float" "0" 1e-6;
  Alcotest.(check bool) "AC sees the float" true
    (List.exists
       (function Topology.No_ac_path { node } -> node = "float" | _ -> false)
       (Topology.ac_issues c2))

let test_ac_transfer_singular () =
  (* a valid operating point from a healthy divider ... *)
  let good = Circuit.create () in
  Circuit.add_vsource good ~name:"V1" ~ac:1. "in" "0" 1.;
  Circuit.add_resistor good ~name:"R1" "in" "out" 1e3;
  Circuit.add_resistor good ~name:"R2" "out" "0" 1e3;
  let op =
    match Dcop.solve good with
    | Ok op -> op
    | Error _ -> Alcotest.fail "divider should solve"
  in
  let freqs = [| 10.; 100. |] in
  let bode = Ac.transfer good op ~out:(Circuit.node good "out") ~freqs in
  Alcotest.(check int) "healthy transfer" 2 (Array.length bode.Ac.response);
  (* ... and a structurally AC-singular circuit with the same node and
     vsource counts: transfer must refuse before assembling anything *)
  let bad = Circuit.create () in
  Circuit.add_vsource bad ~name:"V1" ~ac:1. "in" "0" 1.;
  Circuit.add_resistor bad ~name:"R1" "in" "0" 1e3;
  Circuit.add_isource bad ~name:"I1" "out" "0" 1e-6;
  match Ac.transfer bad op ~out:(Circuit.node bad "out") ~freqs with
  | exception Ac.Singular msg ->
      Alcotest.(check bool) "names the node" true (contains ~sub:"out" msg)
  | _ -> Alcotest.fail "AC-singular circuit accepted"

(* ---------- AC / transient analysis-card lint ---------- *)

let rc ?(ac = 1.) () =
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"V1" ~ac "in" "0" 1.;
  Circuit.add_resistor c ~name:"R1" "in" "out" 10e3;
  Circuit.add_capacitor c ~name:"C1" "out" "0" 1e-9;
  c

let ac_card ?(per_decade = 10) ?(f_lo = 10.) ?(f_hi = 1e6) out =
  Netlist.Ac_analysis { per_decade; f_lo; f_hi; out }

let test_ac_lint_codes () =
  let clean = Ac_tran_lint.check (rc ()) [ ac_card "out" ] in
  Alcotest.(check (list string)) "RC sweep is clean" [] (codes clean);
  Alcotest.(check (list string)) "no AC excitation" [ "A001" ]
    (codes (Ac_tran_lint.check (rc ~ac:0. ()) [ ac_card "out" ]));
  Alcotest.(check (list string)) "unknown out node" [ "A002" ]
    (codes (Ac_tran_lint.check (rc ()) [ ac_card "nope" ]));
  Alcotest.(check (list string)) "inverted sweep" [ "A004" ]
    (codes (Ac_tran_lint.check (rc ()) [ ac_card ~f_lo:1e6 ~f_hi:10. "out" ]));
  (* tau = 10k * 1n = 1e-5 s puts the pole near 16 kHz; a sweep parked
     nine decades above it can only see the asymptote *)
  let far = Ac_tran_lint.check (rc ()) [ ac_card ~f_lo:1e12 ~f_hi:1e13 "out" ] in
  Alcotest.(check (list string)) "sweep misses the pole" [ "A005" ] (codes far);
  Alcotest.(check int) "A005 is a warning" 1 (Diagnostic.exit_code far)

let test_ac_lint_unreachable_fixture () =
  let diags = Ac_tran_lint.check_file (fixture "examples/netlists/ac_bad_probe.cir") in
  Alcotest.(check bool) "proves the dead probe" true (has_code "A003" diags);
  Alcotest.(check int) "fixture fails" 2 (Diagnostic.exit_code diags);
  Alcotest.(check (list string)) "shipped lowpass stays clean" []
    (codes (Ac_tran_lint.check_file (fixture "examples/netlists/rc_lowpass.cir")))

let test_tran_lint_codes () =
  let pulse =
    Device.Pulse
      {
        v1 = 0.;
        v2 = 1.;
        delay = 1e-6;
        rise = 1e-7;
        fall = 1e-7;
        width = 1e-5;
        period = 0.;
      }
  in
  let driven () =
    let c = Circuit.create () in
    Circuit.add_vsource c ~name:"V1" ~wave:pulse "in" "0" 0.;
    Circuit.add_resistor c ~name:"R1" "in" "out" 10e3;
    Circuit.add_capacitor c ~name:"C1" "out" "0" 1e-9;
    c
  in
  let tran ?(dt = 1e-7) ?(t_stop = 1e-4) out =
    Netlist.Tran_analysis { dt; t_stop; out }
  in
  Alcotest.(check (list string)) "well-posed tran is clean" []
    (codes (Ac_tran_lint.check (driven ()) [ tran "out" ]));
  Alcotest.(check (list string)) "degenerate card" [ "R001" ]
    (codes (Ac_tran_lint.check (driven ()) [ tran ~dt:0. "out" ]));
  Alcotest.(check (list string)) "unknown node" [ "R004" ]
    (codes (Ac_tran_lint.check (driven ()) [ tran "nope" ]));
  (* dt = 1 ms against tau <= 1e-5 s: provably undersampled *)
  let coarse =
    Ac_tran_lint.check (driven ()) [ tran ~dt:1e-3 ~t_stop:1e-1 "out" ]
  in
  Alcotest.(check (list string)) "undersampled" [ "R002" ] (codes coarse);
  Alcotest.(check int) "R002 is a warning" 1 (Diagnostic.exit_code coarse);
  Alcotest.(check (list string)) "DC-only stimulus" [ "R003" ]
    (codes (Ac_tran_lint.check (rc ()) [ tran "out" ]))

(* ---------- Verilog-A AST: golden, printing, parsing ---------- *)

(* [print_source (module_ast ())] must reproduce the historical string
   emitter byte for byte; the digest pins the full 1980-byte text without
   embedding it here.  If an emission change is intentional, re-run
   [Digest.to_hex (Digest.string (module_text ~control:"3E" ()))]. *)
let test_va_golden () =
  let text = Verilog_a.module_text ~control:"3E" () in
  Alcotest.(check int) "golden length" 1980 (String.length text);
  Alcotest.(check string) "golden digest" "70cc11e0b905756ebb10decb3b97e03f"
    (Digest.to_hex (Digest.string text))

let test_va_printer_spacing () =
  let open Verilog_a in
  let expr =
    Bin
      ( Add,
        Bin (Mul, Neg (Ident "gain"), Access ("V", "inp")),
        Paren (Bin (Div, Ident "x", Num "2.0")) )
  in
  let src =
    {
      header = [];
      includes = [];
      modules =
        [
          {
            module_name = "m";
            ports = [ "inp" ];
            items =
              [
                Port_decl (Input, [ "inp" ]);
                Discipline_decl ("electrical", [ "inp" ]);
                Analog [ Contribution { access = "V"; node = "inp"; rhs = expr } ];
              ];
          };
        ];
    }
  in
  (* * and / are tight, + and - are spaced, parens survive *)
  Alcotest.(check bool) "operator spacing" true
    (contains ~sub:"V(inp) <+ -gain*V(inp) + (x/2.0);" (print_source src))

let test_va_parse_roundtrip () =
  let text = Verilog_a.module_text ~control:"3E" () in
  let ast = Verilog_a.parse text in
  (match ast.Verilog_a.modules with
  | [ m ] ->
      Alcotest.(check string) "module name" "ota_behavioural"
        m.Verilog_a.module_name;
      Alcotest.(check (list string)) "ports" [ "inp"; "out" ]
        m.Verilog_a.ports
  | _ -> Alcotest.fail "expected one module");
  Alcotest.(check int) "includes survive" 2
    (List.length ast.Verilog_a.includes);
  (* parse is lossy (comments, alignment), but print . parse must be a
     fixed point: re-parsing the re-print gives the same AST *)
  let printed = Verilog_a.print_source ast in
  Alcotest.(check bool) "parse/print fixed point" true
    (Verilog_a.parse printed = ast)

let test_va_parse_errors () =
  let try_parse s =
    match Verilog_a.parse s with
    | exception Verilog_a.Parse_error { line; _ } -> Some line
    | _ -> None
  in
  Alcotest.(check (option int)) "truncated module" (Some 1)
    (try_parse "module m(a);");
  Alcotest.(check bool) "garbage statement" true
    (try_parse "module m(a);\ninput a;\nanalog begin\n<+ 3;\nend\nendmodule\n"
    <> None)

(* ---------- Verilog-A lint ---------- *)

let parse_va = Verilog_a.parse

let test_va_lint_ports_and_defs () =
  (* no discipline on a port is a warning; branch access to an
     undisciplined net is an error *)
  let src =
    parse_va
      "module m(a);\ninput a;\nanalog begin\nV(a) <+ 1.0;\nend\nendmodule\n"
  in
  let diags = Va_lint.check src in
  Alcotest.(check bool) "V001 fires" true (has_code "V001" diags);
  Alcotest.(check int) "branch access makes it an error" 2
    (Diagnostic.exit_code diags);
  (* use before assignment, and a write to a parameter *)
  let src =
    parse_va
      (String.concat "\n"
         [
           "module m(a);";
           "input a;";
           "electrical a;";
           "parameter real g = 2.0;";
           "real x;";
           "real dead;";
           "analog begin";
           "x = x + 1.0;";
           "g = 3.0;";
           "dead = 1.0;";
           "V(a) <+ x;";
           "end";
           "endmodule";
         ]
      ^ "\n")
  in
  let diags = Va_lint.check src in
  Alcotest.(check bool) "use-before-assign / param write" true
    (has_code "V007" diags);
  Alcotest.(check bool) "declared-never-read" true (has_code "V008" diags)

let test_va_lint_fixture () =
  (* the shipped negative fixture carries exactly the three documented
     mistakes: 2-D query vs 1-token control, missing table, dead variable *)
  let diags = Va_lint.check_file (fixture "examples/va/ota_perf.va") in
  Alcotest.(check bool) "V004 arity" true (has_code "V004" diags);
  Alcotest.(check bool) "V005 missing table" true (has_code "V005" diags);
  Alcotest.(check bool) "V008 dead variable" true (has_code "V008" diags);
  Alcotest.(check int) "fixture fails without its baseline" 2
    (Diagnostic.exit_code diags);
  (* and its baseline accepts all of them, so CI sees a clean run.  The
     baseline was written from the repo root, so fingerprints carry the
     repo-relative path: normalise the resolved path back before matching,
     as running from the root (the CI call) does naturally *)
  let diags =
    List.map
      (fun d -> { d with Diagnostic.file = Some "examples/va/ota_perf.va" })
      diags
  in
  match Baseline.load ~path:(fixture "examples/va/ota_perf.baseline.json") with
  | Error e -> Alcotest.fail e
  | Ok base ->
      let fresh, suppressed = Baseline.partition base diags in
      Alcotest.(check int) "everything suppressed" 0 (List.length fresh);
      Alcotest.(check int) "three known findings" 3 (List.length suppressed)

let test_va_lint_emitted_module_clean () =
  Alcotest.(check (list string)) "emitted module lints clean" []
    (codes (Va_lint.check (Verilog_a.module_ast ~control:"3E" ())))

let with_temp_dir f =
  let dir = Filename.temp_file "yieldlab_va" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let test_va_lint_spec_window () =
  (* a 1-D table sampled on [0, 10]: a parameter whose spec window pokes
     outside that domain is exactly what V006 exists to catch *)
  with_temp_dir (fun dir ->
      let tbl =
        Yield_table.Tbl_io.create ~columns:[| "x"; "y" |]
          ~rows:
            (Array.init 11 (fun i -> [| float_of_int i; float_of_int i |]))
      in
      Yield_table.Tbl_io.write ~path:(Filename.concat dir "t.tbl") tbl;
      let src =
        parse_va
          (String.concat "\n"
             [
               "module m(a);";
               "input a;";
               "electrical a;";
               "parameter real p = 5.0;";
               "real y;";
               "analog begin";
               "y = $table_model(p, \"t.tbl\", \"3E\");";
               "V(a) <+ y;";
               "end";
               "endmodule";
             ]
          ^ "\n")
      in
      Alcotest.(check (list string)) "inside the domain: clean" []
        (codes (Va_lint.check ~dir ~specs:[ ("p", (1., 9.)) ] src));
      let diags = Va_lint.check ~dir ~specs:[ ("p", (5., 25.)) ] src in
      Alcotest.(check (list string)) "window escapes the domain" [ "V006" ]
        (codes diags);
      Alcotest.(check int) "V006 is a warning" 1 (Diagnostic.exit_code diags))

(* ---------- baseline ---------- *)

let diag ?(file = "a.cir") ?(code = "A003") ?(subject = "probe") message =
  Diagnostic.make ~file ~code ~severity:Diagnostic.Error ~subject message

let test_baseline_fingerprint () =
  (* pinned: fingerprints are an on-disk interface shared with SARIF *)
  Alcotest.(check string) "stable hash" "b0c0058c50009ce8"
    (Baseline.fingerprint (diag "unreachable"));
  Alcotest.(check string) "message is not part of identity"
    (Baseline.fingerprint (diag "unreachable"))
    (Baseline.fingerprint (diag "reworded message"));
  Alcotest.(check bool) "file is part of identity" true
    (Baseline.fingerprint (diag ~file:"b.cir" "unreachable")
    <> Baseline.fingerprint (diag "unreachable"))

let test_baseline_partition_roundtrip () =
  let known = diag "known" and fresh = diag ~subject:"new_node" "fresh" in
  let base = Baseline.of_diags [ known ] in
  let f, s = Baseline.partition base [ known; fresh ] in
  Alcotest.(check int) "one fresh" 1 (List.length f);
  Alcotest.(check int) "one suppressed" 1 (List.length s);
  with_temp_dir (fun dir ->
      let path = Filename.concat dir "base.json" in
      Baseline.save ~path base;
      (match Baseline.load ~path with
      | Error e -> Alcotest.fail e
      | Ok loaded ->
          Alcotest.(check (list string)) "round trip"
            (Baseline.fingerprints base)
            (Baseline.fingerprints loaded));
      (* a future-versioned file must be rejected, not half-read *)
      let oc = open_out path in
      output_string oc "{\"version\": 2, \"fingerprints\": []}";
      close_out oc;
      match Baseline.load ~path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "accepted an unknown baseline version")

(* ---------- SARIF ---------- *)

let test_sarif_render () =
  let d = diag "node probe is unreachable" in
  let s = Json.to_string (Sarif.render ~suppressed:[ diag ~code:"V008" "x" ] [ d ]) in
  List.iter
    (fun sub ->
      Alcotest.(check bool) ("has " ^ sub) true (contains ~sub s))
    [
      "\"version\":\"2.1.0\"";
      "sarif-2.1.0.json";
      "\"name\":\"yieldlab\"";
      "\"ruleId\":\"A003\"";
      "\"level\":\"error\"";
      "\"uri\":\"a.cir\"";
      "\"yieldlab/v1\":\"b0c0058c50009ce8\"";
      "\"suppressions\":[{\"kind\":\"external\"}]";
    ];
  Alcotest.(check bool) "empty report still renders a run" true
    (contains ~sub:"\"results\":[]" (Json.to_string (Sarif.render [])))

let suites =
  [
    ( "analyse.interval",
      [
        Alcotest.test_case "outward rounding" `Quick test_interval_outward;
        Alcotest.test_case "set operations" `Quick test_interval_sets;
        Alcotest.test_case "fixpoint driver" `Quick test_fixpoint;
      ] );
    ( "spice.ac_topology",
      [
        Alcotest.test_case "AC vs DC issue sets" `Quick test_ac_vs_dc_issues;
        Alcotest.test_case "transfer pre-check raises Singular" `Quick
          test_ac_transfer_singular;
      ] );
    ( "analyse.ac_tran",
      [
        Alcotest.test_case "A codes" `Quick test_ac_lint_codes;
        Alcotest.test_case "A003 fixture + clean lowpass" `Quick
          test_ac_lint_unreachable_fixture;
        Alcotest.test_case "R codes" `Quick test_tran_lint_codes;
      ] );
    ( "behavioural.verilog_a_ast",
      [
        Alcotest.test_case "golden emission digest" `Quick test_va_golden;
        Alcotest.test_case "printer spacing rules" `Quick
          test_va_printer_spacing;
        Alcotest.test_case "parse round trip" `Quick test_va_parse_roundtrip;
        Alcotest.test_case "parse errors carry lines" `Quick
          test_va_parse_errors;
      ] );
    ( "analyse.va",
      [
        Alcotest.test_case "ports and def-use" `Quick
          test_va_lint_ports_and_defs;
        Alcotest.test_case "negative fixture + baseline" `Quick
          test_va_lint_fixture;
        Alcotest.test_case "emitted module lints clean" `Quick
          test_va_lint_emitted_module_clean;
        Alcotest.test_case "V006 spec window vs domain" `Quick
          test_va_lint_spec_window;
      ] );
    ( "analyse.baseline",
      [
        Alcotest.test_case "fingerprint identity" `Quick
          test_baseline_fingerprint;
        Alcotest.test_case "partition and persistence" `Quick
          test_baseline_partition_roundtrip;
      ] );
    ( "analyse.sarif",
      [ Alcotest.test_case "render golden fields" `Quick test_sarif_render ] );
  ]
