(* Tests for the yield_serve table server: wire protocol parsing, the
   bounded admission queue, and end-to-end behaviour of a live server —
   queries, deadlines, load shedding, lint-gated hot reload under
   concurrent load, hostile wire input, injected chaos and the loadgen
   bench.  End-to-end tests run the server in its own domain over a Unix
   socket in a temp directory, with [~signals:false] (everything is driven
   over the wire) and drain it with the [shutdown] op. *)

module Addr = Yield_serve.Addr
module Wire = Yield_serve.Wire
module Bqueue = Yield_serve.Bqueue
module Snapshot = Yield_serve.Snapshot
module Server = Yield_serve.Server
module Client = Yield_serve.Client
module Loadgen = Yield_serve.Loadgen
module Json = Yield_obs.Json
module Metrics = Yield_obs.Metrics
module Fault = Yield_resilience.Fault
module Perf_model = Yield_behavioural.Perf_model
module Var_model = Yield_behavioural.Var_model
module Tbl_io = Yield_table.Tbl_io

let mval name = Metrics.value (Metrics.counter name)

(* ---------- fixtures: a small synthetic model family ---------- *)

(* eight Pareto points in one parametric family (smooth small steps, so
   the lookup's family guard never snaps), gain 45..59, pm 80..62.5 *)
let perf_points ?(gain0 = 45.) () =
  let base =
    [| 18e-6; 2.3e-6; 16e-6; 2.0e-6; 23e-6; 1.5e-6; 30e-6; 3.5e-6 |]
  in
  Array.init 8 (fun i ->
      let t = float_of_int i in
      {
        Perf_model.gain_db = gain0 +. (2. *. t);
        pm_deg = 80. -. (2.5 *. t);
        params = Array.map (fun v -> v *. (1. +. (0.02 *. t))) base;
        rout = 1.5e6 *. (1. +. (0.01 *. t));
        unity_gain_hz = 1e7 *. (1. +. (0.02 *. t));
      })

let var_points ?(gain0 = 45.) () =
  Array.init 8 (fun i ->
      let t = float_of_int i in
      {
        Var_model.gain_db = gain0 +. (2. *. t);
        pm_deg = 80. -. (2.5 *. t);
        dgain_pct = 2.0 +. (0.1 *. t);
        dpm_pct = 3.0;
        mc_samples = 200;
      })

let write_tables ?gain0 dir =
  let perf = Perf_model.create (perf_points ?gain0 ()) in
  let var = Var_model.create (var_points ?gain0 ()) in
  Tbl_io.write
    ~path:(Filename.concat dir "perf_model.tbl")
    (Perf_model.to_table perf);
  Tbl_io.write
    ~path:(Filename.concat dir "variation_model.tbl")
    (Var_model.to_table var)

let with_temp_dir f =
  let dir = Filename.temp_file "yieldlab_serve" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

(* start a server domain on a fresh socket in [dir]; returns the address
   and a join handle giving the exit code *)
let start_server ?(configure = fun c -> c) dir =
  let addr = Addr.Unix_sock (Filename.concat dir "s.sock") in
  let cfg = configure (Server.default ~addr ~tables_dir:dir) in
  let ready = Atomic.make false in
  let domain =
    Domain.spawn (fun () ->
        Server.run ~on_ready:(fun () -> Atomic.set ready true) ~signals:false
          cfg)
  in
  let rec wait n =
    if not (Atomic.get ready) then begin
      if n > 1000 then Alcotest.fail "server did not become ready";
      Unix.sleepf 0.005;
      wait (n + 1)
    end
  in
  wait 0;
  (addr, domain)

let shutdown_server addr domain =
  let c = Client.connect addr in
  let frame = Client.request c (Json.Obj [ ("op", Json.String "shutdown") ]) in
  Client.close c;
  (match Json.member "ok" frame with
  | Some (Json.Bool true) -> ()
  | _ -> Alcotest.failf "shutdown not acknowledged: %s" (Json.to_string frame));
  Alcotest.(check int) "drained exit code" 0 (Domain.join domain)

let with_server ?configure dir f =
  write_tables dir;
  let addr, domain = start_server ?configure dir in
  let finished = ref false in
  Fun.protect
    ~finally:(fun () -> if not !finished then ignore (Domain.join domain))
    (fun () ->
      let r = f addr in
      shutdown_server addr domain;
      finished := true;
      r)

let is_ok frame =
  match Json.member "ok" frame with Some (Json.Bool true) -> true | _ -> false

let error_code frame =
  match Json.member "error" frame with
  | Some err -> (
      match Json.member "code" err with
      | Some (Json.String c) -> c
      | _ -> "?")
  | None -> "?"

let op_obj op fields = Json.Obj (("op", Json.String op) :: fields)

(* ---------- wire protocol units ---------- *)

let test_wire_parse_ok () =
  (match Wire.parse {|{"op":"ping"}|} with
  | Ok (Wire.Query Wire.Ping, None) -> ()
  | _ -> Alcotest.fail "ping did not parse");
  (match Wire.parse {|{"op":"lookup","gain":50.5,"pm":70,"id":7}|} with
  | Ok (Wire.Query (Wire.Lookup { gain_db; pm_deg }), Some (Json.Int 7)) ->
      Alcotest.(check (float 1e-9)) "gain" 50.5 gain_db;
      Alcotest.(check (float 1e-9)) "pm" 70. pm_deg
  | _ -> Alcotest.fail "lookup did not parse");
  (match Wire.parse {|{"op":"design","min_gain":48,"min_pm":60}|} with
  | Ok (Wire.Query (Wire.Design _), None) -> ()
  | _ -> Alcotest.fail "design did not parse");
  List.iter
    (fun (line, want) ->
      match Wire.parse line with
      | Ok (Wire.Admin a, _) when a = want -> ()
      | _ -> Alcotest.failf "admin %s did not parse" line)
    [
      ({|{"op":"health"}|}, Wire.Health);
      ({|{"op":"ready"}|}, Wire.Ready);
      ({|{"op":"reload"}|}, Wire.Reload);
      ({|{"op":"shutdown"}|}, Wire.Shutdown);
    ]

let check_parse_error what line want =
  match Wire.parse line with
  | Error { Wire.code; _ } when code = want -> ()
  | Error { Wire.code; _ } ->
      Alcotest.failf "%s: got %s, want %s" what
        (Wire.code_to_string code) (Wire.code_to_string want)
  | Ok _ -> Alcotest.failf "%s: parsed successfully" what

let test_wire_parse_errors () =
  check_parse_error "garbage" "not json at all" Wire.Bad_json;
  check_parse_error "truncated" {|{"op":|} Wire.Bad_json;
  check_parse_error "non-object" {|[1,2,3]|} Wire.Bad_request;
  check_parse_error "no op" {|{"gain":1}|} Wire.Bad_request;
  check_parse_error "unknown op" {|{"op":"frobnicate"}|} Wire.Unknown_op;
  check_parse_error "missing field" {|{"op":"lookup","gain":50}|}
    Wire.Bad_request;
  check_parse_error "ill-typed field" {|{"op":"lookup","gain":"x","pm":1}|}
    Wire.Bad_request;
  (* 1e999 overflows to infinity: non-finite arguments are refused *)
  check_parse_error "non-finite field"
    {|{"op":"lookup","gain":1e999,"pm":60}|} Wire.Bad_request

let test_wire_frames () =
  let ok =
    Wire.ok_frame ~id:(Json.Int 3) ~op:"ping" [ ("extra", Json.Bool true) ]
  in
  Alcotest.(check bool) "newline-terminated" true (String.ends_with ~suffix:"\n" ok);
  let j = Json.parse (String.trim ok) in
  Alcotest.(check bool) "ok:true" true (is_ok j);
  (match Json.member "id" j with
  | Some (Json.Int 3) -> ()
  | _ -> Alcotest.fail "id not echoed");
  let err = Wire.error_frame ~id:(Json.String "a") Wire.Overloaded "full" in
  let je = Json.parse (String.trim err) in
  Alcotest.(check bool) "ok:false" true (not (is_ok je));
  Alcotest.(check string) "code" "overloaded" (error_code je);
  (* request_to_json round-trips through parse *)
  let req = Wire.Query (Wire.Lookup { gain_db = 50.; pm_deg = 70. }) in
  match Wire.parse (Json.to_string (Wire.request_to_json req)) with
  | Ok (r, None) when r = req -> ()
  | _ -> Alcotest.fail "request_to_json does not round-trip"

(* ---------- bounded queue ---------- *)

let test_bqueue () =
  (match Bqueue.create ~capacity:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 accepted");
  let q = Bqueue.create ~capacity:2 () in
  Alcotest.(check int) "capacity" 2 (Bqueue.capacity q);
  Alcotest.(check bool) "push 1" true (Bqueue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Bqueue.try_push q 2);
  Alcotest.(check bool) "push 3 refused" false (Bqueue.try_push q 3);
  Alcotest.(check int) "length" 2 (Bqueue.length q);
  Alcotest.(check (list int)) "fifo, bounded pop" [ 1 ]
    (Bqueue.pop_up_to q ~max:1);
  Alcotest.(check bool) "room again" true (Bqueue.try_push q 4);
  Alcotest.(check (list int)) "drain" [ 2; 4 ] (Bqueue.pop_up_to q ~max:10);
  Alcotest.(check (list int)) "empty" [] (Bqueue.pop_up_to q ~max:10)

(* ---------- addresses ---------- *)

let test_addr_parse () =
  (match Addr.parse "unix:/tmp/x.sock" with
  | Ok (Addr.Unix_sock "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix: did not parse");
  (match Addr.parse "tcp:127.0.0.1:4270" with
  | Ok (Addr.Tcp { host = "127.0.0.1"; port = 4270 }) -> ()
  | _ -> Alcotest.fail "tcp: did not parse");
  List.iter
    (fun bad ->
      match Addr.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s parsed" bad)
    [ "foo"; "tcp:localhost"; "tcp:localhost:notaport"; "unix:" ];
  List.iter
    (fun s ->
      match Addr.parse s with
      | Ok a -> Alcotest.(check string) "round-trip" s (Addr.to_string a)
      | Error e -> Alcotest.fail e)
    [ "unix:/tmp/y.sock"; "tcp:localhost:80" ]

(* ---------- snapshot loading ---------- *)

let test_snapshot_refuses_bad_dir () =
  with_temp_dir (fun dir ->
      (match Snapshot.load ~generation:1 ~dir ~control:"3E" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "loaded from an empty dir");
      write_tables dir;
      match Snapshot.load ~generation:1 ~dir ~control:"3E" with
      | Ok snap ->
          Alcotest.(check int) "generation" 1 snap.Snapshot.generation;
          Alcotest.(check int) "points" 8 (Perf_model.size snap.Snapshot.perf)
      | Error (msg, _) -> Alcotest.failf "refused good tables: %s" msg)

(* ---------- end-to-end: queries ---------- *)

let test_e2e_queries () =
  with_temp_dir (fun dir ->
      with_server dir (fun addr ->
          let c = Client.connect addr in
          Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
          let ping = Client.request c (op_obj "ping" []) in
          Alcotest.(check bool) "ping ok" true (is_ok ping);
          let lk =
            Client.request c
              (op_obj "lookup"
                 [ ("gain", Json.Float 50.); ("pm", Json.Float 70.) ])
          in
          Alcotest.(check bool) "lookup ok" true (is_ok lk);
          (match Json.member "design" lk with
          | Some (Json.Obj fields) ->
              Alcotest.(check bool) "8 params" true
                (match List.assoc_opt "params" fields with
                | Some (Json.List l) -> List.length l = 8
                | _ -> false)
          | _ -> Alcotest.fail "lookup carries no design");
          let miss =
            Client.request c
              (op_obj "lookup"
                 [ ("gain", Json.Float 200.); ("pm", Json.Float 70.) ])
          in
          Alcotest.(check string) "domain miss is typed" "out_of_range"
            (error_code miss);
          let dsg =
            Client.request c
              (op_obj "design"
                 [ ("min_gain", Json.Float 50.); ("min_pm", Json.Float 65.) ])
          in
          Alcotest.(check bool) "design ok" true (is_ok dsg);
          (match Json.member "predicted_yield" dsg with
          | Some y -> (
              match Json.number_value y with
              | Some v ->
                  Alcotest.(check bool) "yield in (0,1]" true
                    (v > 0. && v <= 1.)
              | None -> Alcotest.fail "predicted_yield not a number")
          | None -> Alcotest.fail "design carries no predicted_yield");
          let health = Client.request c (op_obj "health" []) in
          Alcotest.(check bool) "health ok" true (is_ok health);
          List.iter
            (fun field ->
              Alcotest.(check bool) (field ^ " present") true
                (Option.is_some (Json.member field health)))
            [
              "uptime_s"; "generation"; "draining"; "queue"; "model";
              "counters"; "lint"; "last_reload_error";
            ];
          let ready = Client.request c (op_obj "ready" []) in
          Alcotest.(check bool) "ready ok" true (is_ok ready)))

(* ---------- end-to-end: deadlines, shedding, hostile input ---------- *)

let test_e2e_deadline () =
  with_temp_dir (fun dir ->
      Metrics.reset ();
      (* a 1 ns deadline: admission-to-handling latency alone exceeds it,
         so every query answers with a typed timeout frame *)
      with_server
        ~configure:(fun c -> { c with Server.deadline_s = 1e-9 })
        dir
        (fun addr ->
          let c = Client.connect addr in
          Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
          let frame = Client.request c (op_obj "ping" []) in
          Alcotest.(check string) "timeout frame" "timeout" (error_code frame);
          Alcotest.(check bool) "timeout counted" true
            (mval "serve.timeouts" >= 1)))

let test_e2e_shed () =
  with_temp_dir (fun dir ->
      Metrics.reset ();
      with_server
        ~configure:(fun c -> { c with Server.queue_capacity = 2 })
        dir
        (fun addr ->
          let c = Client.connect addr in
          Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
          (* one burst write of 50 pipelined pings: the control loop reads
             them in one pass, so at most 2 fit the queue per tick and the
             rest shed deterministically with typed overloaded frames *)
          let n = 50 in
          let buf = Buffer.create 1024 in
          for i = 1 to n do
            Buffer.add_string buf
              (Json.to_string
                 (op_obj "ping" [ ("id", Json.Int i) ]));
            Buffer.add_char buf '\n'
          done;
          Client.send_line c (String.trim (Buffer.contents buf));
          let ok = ref 0 and overloaded = ref 0 in
          for _ = 1 to n do
            match Client.recv_line c with
            | None -> Alcotest.fail "connection closed mid-burst"
            | Some line -> (
                let j = Json.parse line in
                if is_ok j then incr ok
                else
                  match error_code j with
                  | "overloaded" -> incr overloaded
                  | other -> Alcotest.failf "unexpected error %s" other)
          done;
          Alcotest.(check int) "every request answered" n (!ok + !overloaded);
          Alcotest.(check bool) "most of the burst shed" true
            (!overloaded >= n - 10);
          Alcotest.(check int) "shed counter matches" !overloaded
            (mval "serve.shed")))

let test_e2e_hostile_input () =
  with_temp_dir (fun dir ->
      with_server
        ~configure:(fun c -> { c with Server.max_line = 256 })
        dir
        (fun addr ->
          let c = Client.connect addr in
          Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
          let expect what want line =
            Client.send_line c line;
            match Client.recv_line c with
            | None -> Alcotest.failf "%s: connection died" what
            | Some resp ->
                Alcotest.(check string) what want (error_code (Json.parse resp))
          in
          expect "oversized complete line" "oversized"
            (String.make 1000 'x');
          expect "binary garbage" "bad_json" "\x01\x02\xff\xfe";
          expect "truncated json" "bad_json" {|{"op":"loo|};
          expect "unknown op" "unknown_op" {|{"op":"drop table"}|};
          expect "null op" "bad_request" {|{"op":null}|};
          (* the same connection still serves after all of that *)
          let frame = Client.request c (op_obj "ping" []) in
          Alcotest.(check bool) "conn survives hostile input" true
            (is_ok frame);
          (* a newline-less flood past max_line gets a frame, then the
             connection is cut (the frame boundary is lost) *)
          let flood = Client.connect addr in
          Client.send_raw flood (String.make 600 'y');
          (match Client.recv_line flood with
          | Some resp ->
              Alcotest.(check string) "flood answered" "oversized"
                (error_code (Json.parse resp))
          | None -> Alcotest.fail "flood: no frame before close");
          Alcotest.(check (option string)) "flood conn closed" None
            (Client.recv_line flood);
          Client.close flood))

(* ---------- end-to-end: hot reload under load ---------- *)

let test_e2e_reload_under_load () =
  with_temp_dir (fun dir ->
      with_server dir (fun addr ->
          (* continuous lookups from a second domain while the model is
             swapped twice: the zero-drop claim is that every frame is a
             success — never an error, never a torn read *)
          let stop = Atomic.make false in
          let load =
            Domain.spawn (fun () ->
                let c = Client.connect addr in
                let ok = ref 0 and bad = ref 0 in
                while not (Atomic.get stop) do
                  let frame =
                    Client.request c
                      (op_obj "lookup"
                         [ ("gain", Json.Float 50.); ("pm", Json.Float 70.) ])
                  in
                  if is_ok frame then incr ok else incr bad
                done;
                Client.close c;
                (!ok, !bad))
          in
          let admin = Client.connect addr in
          Fun.protect ~finally:(fun () -> Client.close admin) @@ fun () ->
          Unix.sleepf 0.05;
          (* good reload: a slightly wider model, still covering the load *)
          write_tables ~gain0:44.5 dir;
          let r1 = Client.request admin (op_obj "reload" []) in
          Alcotest.(check bool) "reload accepted" true (is_ok r1);
          (match Json.member "generation" r1 with
          | Some (Json.Int 2) -> ()
          | _ -> Alcotest.fail "generation did not advance");
          Unix.sleepf 0.05;
          (* corrupt candidate: lint must reject it and the server must
             keep answering from the generation-2 snapshot *)
          Out_channel.with_open_text
            (Filename.concat dir "perf_model.tbl") (fun oc ->
              Out_channel.output_string oc "not a table at all\n");
          let r2 = Client.request admin (op_obj "reload" []) in
          Alcotest.(check string) "corrupt reload rejected" "reload_rejected"
            (error_code r2);
          let ready = Client.request admin (op_obj "ready" []) in
          (match Json.member "generation" ready with
          | Some (Json.Int 2) -> ()
          | _ -> Alcotest.fail "rejected reload changed the generation");
          let health = Client.request admin (op_obj "health" []) in
          (match Json.member "last_reload_error" health with
          | Some Json.Null | None ->
              Alcotest.fail "health hides the rejected reload"
          | Some _ -> ());
          Unix.sleepf 0.05;
          Atomic.set stop true;
          let ok, bad = Domain.join load in
          Alcotest.(check bool) "load saw traffic" true (ok > 0);
          Alcotest.(check int) "zero dropped or failed queries" 0 bad;
          (* leave a loadable model behind for the drain path *)
          write_tables dir))

(* ---------- end-to-end: injected chaos ---------- *)

let test_e2e_chaos () =
  with_temp_dir (fun dir ->
      Fun.protect ~finally:Fault.reset @@ fun () ->
      Metrics.reset ();
      with_server
        ~configure:(fun c -> { c with Server.handler_attempts = 3 })
        dir
        (fun addr ->
          let c = Client.connect addr in
          Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
          (* one injected failure: the deadline-aware retry budget absorbs
             it and the client still sees a success *)
          Fault.reset ();
          (match Fault.arm_spec "serve.handler:at=1" with
          | Ok () -> ()
          | Error e -> Alcotest.fail e);
          let frame = Client.request c (op_obj "ping" []) in
          Alcotest.(check bool) "one injection is absorbed" true (is_ok frame);
          Alcotest.(check bool) "retry accounted" true
            (mval "retry.serve.handler.retries" >= 1);
          (* persistent failure: every attempt injected — the client gets
             a typed internal frame and the server stays up *)
          Fault.reset ();
          Fault.arm "serve.handler" (Fault.Count 1000);
          let frame = Client.request c (op_obj "ping" []) in
          Alcotest.(check string) "typed internal frame" "internal"
            (error_code frame);
          Alcotest.(check bool) "failure counted" true
            (mval "serve.failed" >= 1);
          Fault.reset ();
          (* injected reload failure: typed frame, snapshot kept *)
          Fault.arm "serve.reload" (Fault.Count 1);
          let frame = Client.request c (op_obj "reload" []) in
          Alcotest.(check string) "reload chaos is typed" "reload_rejected"
            (error_code frame);
          Fault.reset ();
          let frame = Client.request c (op_obj "ping" []) in
          Alcotest.(check bool) "server survives the chaos" true
            (is_ok frame)))

(* ---------- end-to-end: loadgen ---------- *)

let test_e2e_loadgen () =
  with_temp_dir (fun dir ->
      with_server
        ~configure:(fun c -> { c with Server.jobs = 2 })
        dir
        (fun addr ->
          match Loadgen.run ~addr ~clients:2 ~duration_s:0.3 () with
          | Error msg -> Alcotest.fail msg
          | Ok r ->
              Alcotest.(check bool) "traffic flowed" true (r.Loadgen.sent > 0);
              Alcotest.(check int) "all requests succeeded" r.Loadgen.sent
                r.Loadgen.ok;
              let n = Array.length r.Loadgen.latency_us in
              Alcotest.(check int) "every response timed" r.Loadgen.sent n;
              let j = Loadgen.to_json r in
              (match Json.member "schema" j with
              | Some (Json.String "yieldlab-bench-serve/v1") -> ()
              | _ -> Alcotest.fail "bench schema tag missing");
              let pct p =
                match Json.member "latency_us" j with
                | Some lat -> (
                    match Json.member p lat with
                    | Some v -> Option.get (Json.number_value v)
                    | None -> Alcotest.failf "%s missing" p)
                | None -> Alcotest.fail "latency_us missing"
              in
              let p50 = pct "p50" and p95 = pct "p95" and p99 = pct "p99" in
              Alcotest.(check bool) "percentiles ordered" true
                (p50 <= p95 && p95 <= p99 && p50 > 0.)))

let suites =
  [
    ( "serve.wire",
      [
        Alcotest.test_case "parse ok" `Quick test_wire_parse_ok;
        Alcotest.test_case "parse errors" `Quick test_wire_parse_errors;
        Alcotest.test_case "frames" `Quick test_wire_frames;
      ] );
    ( "serve.bqueue",
      [ Alcotest.test_case "bounded fifo" `Quick test_bqueue ] );
    ( "serve.addr",
      [ Alcotest.test_case "parse/print" `Quick test_addr_parse ] );
    ( "serve.snapshot",
      [
        Alcotest.test_case "lint gate" `Quick test_snapshot_refuses_bad_dir;
      ] );
    ( "serve.e2e",
      [
        Alcotest.test_case "queries" `Quick test_e2e_queries;
        Alcotest.test_case "deadline" `Quick test_e2e_deadline;
        Alcotest.test_case "load shedding" `Quick test_e2e_shed;
        Alcotest.test_case "hostile input" `Quick test_e2e_hostile_input;
        Alcotest.test_case "hot reload under load" `Quick
          test_e2e_reload_under_load;
        Alcotest.test_case "injected chaos" `Quick test_e2e_chaos;
        Alcotest.test_case "loadgen bench" `Quick test_e2e_loadgen;
      ] );
  ]
