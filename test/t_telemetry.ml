(* End-to-end tests of the streaming telemetry path and the perf-regression
   gate: a reduced-scale flow streamed to disk with a deliberately tiny span
   ring (bounded memory, complete on-disk log), jobs-independence of the
   sampling decisions, and the Perf_gate tolerance/identity rules. *)

module Json = Yield_obs.Json
module Metrics = Yield_obs.Metrics
module Span = Yield_obs.Span
module Sampler = Yield_obs.Sampler
module Stream = Yield_obs.Stream
module Snapshot = Yield_obs.Snapshot
module Obs = Yield_obs.Obs
module Config = Yield_core.Config
module Flow = Yield_core.Flow
module Perf_gate = Yield_core.Perf_gate
module Ga = Yield_ga.Ga
module Montecarlo = Yield_process.Montecarlo
module Pool = Yield_exec.Pool
module Rng = Yield_stats.Rng

let temp_path suffix = Filename.temp_file "yieldlab_t_telemetry" suffix

let with_temp suffix f =
  let path = temp_path suffix in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

(* the t_core smoke configuration: the whole flow in a few seconds *)
let smoke_config =
  {
    Config.fast_scale with
    Config.ga =
      { Ga.default_config with Ga.population_size = 24; generations = 12 };
    mc_samples = 12;
    front_stride = 2;
    seed = 31;
  }

let span_id (e : Span.event) = (e.Span.name, e.Span.key, e.Span.ts_us)

(* ---------- streamed flow: bounded window, complete log ---------- *)

let test_flow_stream_bounded_and_complete () =
  with_temp ".jsonl" (fun path ->
      let saved = Span.ring_capacity () in
      Span.set_ring_capacity 8;
      Fun.protect
        ~finally:(fun () ->
          Obs.stop_stream ();
          Span.set_ring_capacity saved)
        (fun () ->
          Obs.start_stream ~snapshot_every_s:0.001 ~path ();
          Alcotest.(check bool) "stream active" true (Obs.stream_active ());
          ignore (Flow.run smoke_config);
          let window = Span.events () in
          Alcotest.(check bool)
            (Printf.sprintf "window bounded: %d <= 8" (List.length window))
            true
            (List.length window <= 8);
          Alcotest.(check bool) "a smoke flow overflows an 8-event ring" true
            (Span.dropped () > 0);
          Obs.stop_stream ();
          Alcotest.(check bool) "stream stopped" false (Obs.stream_active ());
          let r = Stream.read_jsonl ~path in
          Alcotest.(check bool) "clean shutdown, no truncation" false
            r.Stream.truncated;
          let streamed = Stream.spans_of_lines r.Stream.lines in
          Alcotest.(check bool) "every rotated-out event is on disk" true
            (List.length streamed >= List.length window + Span.dropped ());
          (* the in-memory window is a subset of the stream *)
          let streamed_ids = List.map span_id streamed in
          List.iter
            (fun e ->
              if not (List.mem (span_id e) streamed_ids) then
                Alcotest.failf "ring event %s missing from the stream"
                  e.Span.name)
            window;
          (* flow stage spans reached the file *)
          List.iter
            (fun stage ->
              Alcotest.(check bool) (stage ^ " streamed") true
                (List.exists
                   (fun (e : Span.event) -> e.Span.name = stage)
                   streamed))
            [ "flow.run"; "flow.wbga"; "flow.mc"; "ga.generation"; "mc.batch" ];
          (* snapshots rode the stream, and the final metric lines match the
             registry *)
          let of_type ty =
            List.filter
              (fun j -> Json.member "type" j = Some (Json.String ty))
              r.Stream.lines
          in
          Alcotest.(check bool) "snapshot lines present" true
            (List.length (of_type "snapshot") >= 1);
          let snap = Metrics.snapshot () in
          let counter_lines = of_type "counter" in
          Alcotest.(check int) "one final line per counter"
            (List.length snap.Metrics.counters)
            (List.length counter_lines);
          List.iter
            (fun (name, v) ->
              match
                List.find_opt
                  (fun j ->
                    Json.member "name" j = Some (Json.String name))
                  counter_lines
              with
              | None -> Alcotest.failf "counter %s missing from stream" name
              | Some j ->
                  Alcotest.(check bool) (name ^ " value") true
                    (Json.member "value" j = Some (Json.Int v)))
            snap.Metrics.counters))

(* the exit-time sink and the stream describe the same spans when the ring
   is large enough to hold them all *)
let test_stream_matches_exit_sink () =
  with_temp ".jsonl" (fun path ->
      Span.clear ();
      Obs.stop_stream ();
      Obs.start_stream ~path ();
      Fun.protect ~finally:Obs.stop_stream (fun () ->
          for i = 0 to 19 do
            Span.with_ ~name:"t.match" ~key:i (fun () ->
                Span.with_ ~name:"t.match.inner" (fun () -> ()))
          done;
          Obs.stop_stream ();
          let streamed =
            Stream.spans_of_lines (Stream.read_jsonl ~path).Stream.lines
          in
          let window = Span.events () in
          Alcotest.(check int) "same event count" (List.length window)
            (List.length streamed);
          let sort l =
            List.sort compare (List.map span_id l)
          in
          Alcotest.(check bool) "same span set" true
            (sort window = sort streamed)))

(* ---------- sampling is independent of the jobs count ---------- *)

let kept_mc_keys ~jobs =
  Span.clear ();
  Span.reset_keys ();
  let lock = Mutex.create () in
  let keys = ref [] in
  let sub =
    Span.subscribe (fun phase (e : Span.event) ->
        if phase = Span.Closed && e.Span.name = "mc.batch" then begin
          Mutex.lock lock;
          keys := e.Span.key :: !keys;
          Mutex.unlock lock
        end)
  in
  Fun.protect
    ~finally:(fun () -> Span.unsubscribe sub)
    (fun () ->
      Pool.with_pool ~jobs (fun pool ->
          for batch = 0 to 29 do
            ignore
              (Montecarlo.run_pool_counted ~pool ~samples:8
                 ~rng:(Rng.create (100 + batch)) (fun r ->
                   Some (Rng.float r))) [@warning "-5"]
          done);
      List.sort compare !keys)

let test_sampling_identical_across_jobs () =
  (match Sampler.configure "mc.batch=0.4;exec.*=0" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "spec rejected: %s" e);
  Fun.protect ~finally:Sampler.clear (fun () ->
      let serial = kept_mc_keys ~jobs:1 in
      let parallel = kept_mc_keys ~jobs:4 in
      Alcotest.(check bool) "sampling thinned the batches" true
        (List.length serial < 30 && List.length serial > 0);
      Alcotest.(check (list int)) "identical kept set at jobs 1 and 4" serial
        parallel;
      (* exec.worker fully sampled out even at jobs 4 *)
      Alcotest.(check int) "exec.worker suppressed" 0
        (List.length
           (List.filter
              (fun (e : Span.event) -> e.Span.name = "exec.worker")
              (Span.events ()))))

(* ---------- periodic snapshots ---------- *)

let test_snapshot_deltas () =
  let emitted = ref [] in
  let snap =
    Snapshot.create ~every_s:3600. ~emit:(fun j -> emitted := j :: !emitted)
  in
  Snapshot.tick snap;
  Alcotest.(check int) "not due yet" 0 (List.length !emitted);
  let c = Metrics.counter "t.snapshot.counter" in
  Metrics.add c 5;
  Snapshot.force snap;
  Metrics.add c 2;
  Snapshot.force snap;
  match List.rev !emitted with
  | [ first; second ] ->
      let delta_of j =
        match Json.member "counters" j with
        | Some counters ->
            Option.bind
              (Json.member "t.snapshot.counter" counters)
              (Json.member "delta")
        | None -> None
      in
      Alcotest.(check bool) "first snapshot carries the full value as delta"
        true
        (delta_of first = Some (Json.Int 5)
        || (* other suites may have touched the counter before us: the
              first delta is then value-relative, but the second is exact *)
        Option.is_some (delta_of first));
      Alcotest.(check bool) "second snapshot carries only the increment" true
        (delta_of second = Some (Json.Int 2));
      Alcotest.(check int) "two emissions counted" 2 (Snapshot.emitted snap)
  | l -> Alcotest.failf "expected 2 snapshots, got %d" (List.length l)

(* ---------- the perf-regression gate ---------- *)

let bench_fixture ?(opt_s = 10.) ?(mc_s = 4.) ?(total_s = 15.) ?(mc_sims = 840)
    ?(counters = [ ("mc.samples.attempted", 840); ("wbga.evaluations", 288) ])
    () =
  Json.Obj
    [
      ("scale", Json.String "reduced-scale");
      ("jobs", Json.Int 1);
      ( "stage_s",
        Json.Obj
          [
            ("optimisation", Json.Float opt_s);
            ("mc", Json.Float mc_s);
            ("total", Json.Float total_s);
          ] );
      ( "sim_counts",
        Json.Obj [ ("mc", Json.Int mc_sims); ("total", Json.Int 1128) ] );
      ( "counters",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) counters) );
      ("histograms", Json.Obj [ ("span.flow.run", Json.Obj []) ]);
    ]

let tight = { Perf_gate.frac = 0.10; abs_s = 0. }

let baseline ?tolerance fixture =
  Perf_gate.baseline_of_bench ?tolerance fixture

let fields findings = List.map (fun f -> f.Perf_gate.field) findings

let test_gate_passes_on_itself () =
  let fixture = bench_fixture () in
  Alcotest.(check (list string)) "no findings against itself" []
    (fields (Perf_gate.check ~baseline:(baseline ~tolerance:tight fixture)
               ~bench:fixture))

let test_gate_catches_timing_regression () =
  let base = baseline ~tolerance:tight (bench_fixture ()) in
  (* the acceptance fixture: a 20 % slowdown must fail a 10 % gate *)
  let slowed = bench_fixture ~opt_s:12. ~total_s:17. () in
  let found = fields (Perf_gate.check ~baseline:base ~bench:slowed) in
  Alcotest.(check bool) "optimisation flagged" true
    (List.mem "stage_s.optimisation" found);
  Alcotest.(check bool) "total flagged" true (List.mem "stage_s.total" found);
  Alcotest.(check bool) "mc untouched" false (List.mem "stage_s.mc" found);
  (* 5 % stays inside the 10 % tolerance *)
  Alcotest.(check (list string)) "5 % passes" []
    (fields
       (Perf_gate.check ~baseline:base ~bench:(bench_fixture ~opt_s:10.5 ())));
  (* a faster run never fails *)
  Alcotest.(check (list string)) "speedup passes" []
    (fields
       (Perf_gate.check ~baseline:base ~bench:(bench_fixture ~opt_s:5. ())))

let test_gate_absolute_slack () =
  (* the checked-in baseline carries abs_s slack for cross-machine noise:
     2 s of absolute drift passes, counts still gate exactly *)
  let base = baseline (bench_fixture ~opt_s:0.5 ()) in
  Alcotest.(check (list string)) "constant-factor drift absorbed" []
    (fields
       (Perf_gate.check ~baseline:base ~bench:(bench_fixture ~opt_s:2.2 ())));
  let drifted = bench_fixture ~opt_s:0.5 ~mc_sims:841 () in
  Alcotest.(check bool) "sim-count drift still fails" true
    (List.mem "sim_counts.mc"
       (fields (Perf_gate.check ~baseline:base ~bench:drifted)))

let test_gate_catches_count_and_counter_drift () =
  let base = baseline ~tolerance:tight (bench_fixture ()) in
  let value_drift =
    bench_fixture ~counters:[ ("mc.samples.attempted", 839); ("wbga.evaluations", 288) ] ()
  in
  Alcotest.(check bool) "counter value drift" true
    (List.mem "counters.mc.samples.attempted"
       (fields (Perf_gate.check ~baseline:base ~bench:value_drift)));
  let vanished =
    bench_fixture ~counters:[ ("mc.samples.attempted", 840) ] ()
  in
  Alcotest.(check bool) "vanished counter" true
    (List.mem "counters.wbga.evaluations"
       (fields (Perf_gate.check ~baseline:base ~bench:vanished)));
  let appeared =
    bench_fixture
      ~counters:
        [
          ("mc.samples.attempted", 840);
          ("wbga.evaluations", 288);
          ("span.sampled_out", 3);
        ]
      ()
  in
  Alcotest.(check bool) "new counter needs a baseline refresh" true
    (List.mem "counters.span.sampled_out"
       (fields (Perf_gate.check ~baseline:base ~bench:appeared)))

let test_gate_run_identity () =
  let base = baseline ~tolerance:tight (bench_fixture ()) in
  let other_scale =
    match bench_fixture () with
    | Json.Obj kvs ->
        Json.Obj
          (List.map
             (function
               | "scale", _ -> ("scale", Json.String "paper-scale")
               | kv -> kv)
             kvs)
    | j -> j
  in
  Alcotest.(check bool) "scale mismatch flagged" true
    (List.mem "scale"
       (fields (Perf_gate.check ~baseline:base ~bench:other_scale)))

let test_baseline_of_bench_shape () =
  let b = baseline (bench_fixture ()) in
  Alcotest.(check bool) "schema tag" true
    (Json.member "schema" b
    = Some (Json.String "yieldlab-bench-baseline/v1"));
  Alcotest.(check bool) "histograms dropped (timing noise)" true
    (Json.member "histograms" b = None);
  Alcotest.(check bool) "tolerance block present" true
    (Option.is_some (Json.member "tolerance" b));
  (* a written baseline round-trips through the parser *)
  let reparsed = Json.parse (Json.to_string b) in
  Alcotest.(check (list string)) "reparsed baseline accepts its own bench" []
    (fields (Perf_gate.check ~baseline:reparsed ~bench:(bench_fixture ())))

(* ---------- env-derived telemetry config ---------- *)

let test_telemetry_of_env () =
  let set k v = Unix.putenv k v in
  set "YIELDLAB_TRACE_STREAM" "/tmp/t.jsonl";
  set "YIELDLAB_SPAN_SAMPLE" "mc.batch=0.5";
  set "YIELDLAB_SNAPSHOT_EVERY" "2.5";
  let t = Config.telemetry_of_env () in
  Alcotest.(check (option string)) "stream path" (Some "/tmp/t.jsonl")
    t.Config.trace_stream;
  Alcotest.(check (option string)) "sample spec" (Some "mc.batch=0.5")
    t.Config.span_sample;
  Alcotest.(check bool) "snapshot seconds" true
    (t.Config.snapshot_every_s = Some 2.5);
  set "YIELDLAB_SNAPSHOT_EVERY" "nonsense";
  set "YIELDLAB_TRACE_STREAM" "";
  let t = Config.telemetry_of_env () in
  Alcotest.(check (option string)) "empty var is unset" None
    t.Config.trace_stream;
  Alcotest.(check bool) "malformed interval ignored" true
    (t.Config.snapshot_every_s = None);
  set "YIELDLAB_SPAN_SAMPLE" "";
  set "YIELDLAB_SNAPSHOT_EVERY" "";
  Alcotest.(check bool) "fingerprint ignores telemetry" true
    (Config.fingerprint smoke_config
    = Config.fingerprint
        {
          smoke_config with
          Config.telemetry =
            {
              Config.trace_stream = Some "x.jsonl";
              span_sample = Some "mc.batch=0";
              snapshot_every_s = Some 1.;
            };
        })

let suites =
  [
    ( "telemetry.stream",
      [
        Alcotest.test_case "flow: bounded window, complete log" `Slow
          test_flow_stream_bounded_and_complete;
        Alcotest.test_case "stream matches exit sink" `Quick
          test_stream_matches_exit_sink;
        Alcotest.test_case "snapshot deltas" `Quick test_snapshot_deltas;
      ] );
    ( "telemetry.sampling",
      [
        Alcotest.test_case "jobs-independent decisions" `Quick
          test_sampling_identical_across_jobs;
      ] );
    ( "telemetry.perf-gate",
      [
        Alcotest.test_case "passes on itself" `Quick test_gate_passes_on_itself;
        Alcotest.test_case "timing regression" `Quick
          test_gate_catches_timing_regression;
        Alcotest.test_case "absolute slack" `Quick test_gate_absolute_slack;
        Alcotest.test_case "count and counter drift" `Quick
          test_gate_catches_count_and_counter_drift;
        Alcotest.test_case "run identity" `Quick test_gate_run_identity;
        Alcotest.test_case "baseline shape" `Quick test_baseline_of_bench_shape;
      ] );
    ( "telemetry.config",
      [ Alcotest.test_case "env knobs" `Quick test_telemetry_of_env ] );
  ]
