(* Tests for the yield_analyse preflight static analysis: the diagnostics
   core, the three lint passes, and — most importantly — the lint<->runtime
   contracts: whatever the linter calls an error must actually fail in the
   corresponding runtime component, and vice versa. *)

module Diagnostic = Yield_analyse.Diagnostic
module Netlist_lint = Yield_analyse.Netlist_lint
module Table_lint = Yield_analyse.Table_lint
module Config_lint = Yield_analyse.Config_lint
module Circuit = Yield_spice.Circuit
module Dcop = Yield_spice.Dcop
module Topology = Yield_spice.Topology
module Tech = Yield_process.Tech
module Tbl_io = Yield_table.Tbl_io
module Fault = Yield_resilience.Fault
module Config = Yield_core.Config
module Flow = Yield_core.Flow

let codes diags = List.map (fun d -> d.Diagnostic.code) (Diagnostic.sort diags)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let has_code code diags =
  List.exists (fun d -> d.Diagnostic.code = code) diags

let check_codes what expected diags =
  Alcotest.(check (list string)) what expected (codes diags)

(* ---------- diagnostics core ---------- *)

let d ?file ?line code severity subject =
  Diagnostic.make ?file ?line ~code ~severity ~subject "msg"

let test_sort_and_exit_codes () =
  let info = d "C005" Diagnostic.Info "dir" in
  let warn = d "N001" Diagnostic.Warning "n" in
  let err = d "T003" Diagnostic.Error "gain" in
  check_codes "severity order" [ "T003"; "N001"; "C005" ] [ info; warn; err ];
  Alcotest.(check int) "clean" 0 (Diagnostic.exit_code []);
  Alcotest.(check int) "info only" 0 (Diagnostic.exit_code [ info ]);
  Alcotest.(check int) "warning" 1 (Diagnostic.exit_code [ info; warn ]);
  Alcotest.(check int) "error" 2 (Diagnostic.exit_code [ warn; err ]);
  Alcotest.(check int) "count" 1 (Diagnostic.count Diagnostic.Error [ warn; err ])

let test_text_rendering () =
  let diag =
    Diagnostic.make ~file:"a.cir" ~line:12 ~code:"N002"
      ~severity:Diagnostic.Error ~subject:"g" "node g has no DC path to ground"
  in
  Alcotest.(check string)
    "to_text" "a.cir:12: error N002 [g]: node g has no DC path to ground"
    (Diagnostic.to_text diag);
  Alcotest.(check string)
    "summary only" "0 error(s), 0 warning(s), 0 info"
    (Diagnostic.list_to_text [])

(* the JSON shape is a stable machine interface: CI jobs and scripts match
   on it, so any change here is a breaking change *)
let test_json_golden () =
  let diags =
    [
      d "N001" Diagnostic.Warning "nx";
      Diagnostic.make ~file:"m.tbl" ~line:3 ~code:"T003"
        ~severity:Diagnostic.Error ~subject:"gain" "duplicate abscissa";
    ]
  in
  Alcotest.(check string)
    "list_to_json"
    "{\"version\":2,\"findings\":[{\"code\":\"T003\",\"severity\":\"error\",\"subject\":\"gain\",\"message\":\"duplicate abscissa\",\"file\":\"m.tbl\",\"line\":3,\"span\":null},{\"code\":\"N001\",\"severity\":\"warning\",\"subject\":\"nx\",\"message\":\"msg\",\"file\":null,\"line\":null,\"span\":null}],\"errors\":1,\"warnings\":1,\"infos\":0,\"worst\":\"error\"}"
    (Yield_obs.Json.to_string (Diagnostic.list_to_json diags))

(* ---------- netlist lint <-> Dcop contract ---------- *)

(* a resistive divider with a MOSFET whose gate connects to nothing else:
   the gate node has no DC path to ground AND is referenced only once *)
let floating_gate_circuit () =
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"VDD" "vdd" "0" 3.3;
  Circuit.add_resistor c ~name:"R1" "vdd" "out" 10e3;
  Circuit.add_mosfet c ~name:"M1" ~d:"out" ~g:"gfloat" ~s:"0" ~b:"0"
    ~model:Tech.c35.Tech.nmos ~w:10e-6 ~l:1e-6;
  c

let test_floating_gate_contract () =
  let c = floating_gate_circuit () in
  let diags = Netlist_lint.check c in
  Alcotest.(check bool) "lint flags N002" true (has_code "N002" diags);
  Alcotest.(check bool) "lint flags N001" true (has_code "N001" diags);
  Alcotest.(check int) "exit code" 2 (Diagnostic.exit_code diags);
  (* the contract: what the linter calls an error must fail in Dcop, as a
     permanent (structural) failure, not a transient non-convergence *)
  match Dcop.solve c with
  | Ok _ -> Alcotest.fail "Dcop accepted a floating-gate circuit"
  | Error (Dcop.Singular_system _ as e) ->
      Alcotest.(check bool)
        "classified permanent" true
        (Dcop.classify_error e = Yield_resilience.Retry.Permanent)
  | Error (Dcop.No_convergence _) ->
      Alcotest.fail "structural failure misclassified as non-convergence"

let test_vsource_loop_contract () =
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"V1" "a" "0" 1.;
  Circuit.add_vsource c ~name:"V2" "a" "0" 2.;
  Circuit.add_resistor c ~name:"R1" "a" "0" 1e3;
  let diags = Netlist_lint.check c in
  Alcotest.(check bool) "lint flags N003" true (has_code "N003" diags);
  match Dcop.solve c with
  | Ok _ -> Alcotest.fail "Dcop accepted a voltage-source loop"
  | Error (Dcop.Singular_system _) -> ()
  | Error e -> Alcotest.failf "unexpected error %s" (Dcop.error_to_string e)

let test_clean_circuit_clean_lint () =
  (* the contract's other direction on a known-good netlist: lint is clean
     and Dcop converges *)
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"V1" "in" "0" 1.;
  Circuit.add_resistor c ~name:"R1" "in" "out" 1e3;
  Circuit.add_resistor c ~name:"R2" "out" "0" 1e3;
  check_codes "no findings" [] (Netlist_lint.check c);
  match Dcop.solve c with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "Dcop failed: %s" (Dcop.error_to_string e)

let test_device_value_lint () =
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"V1" "in" "0" 1.;
  Circuit.add_resistor c ~name:"R1" "in" "out" 0.;
  Circuit.add_resistor c ~name:"R2" "out" "0" 1e3;
  Circuit.add_mosfet c ~name:"M1" ~d:"out" ~g:"in" ~s:"0" ~b:"0"
    ~model:Tech.c35.Tech.nmos ~w:10e-6 ~l:0.1e-6;
  let diags = Netlist_lint.check ~tech:Tech.c35 c in
  Alcotest.(check bool) "N005 zero resistor" true (has_code "N005" diags);
  Alcotest.(check bool) "N007 sub-minimum L" true (has_code "N007" diags)

let test_symmetric_pair_lint () =
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"VDD" "vdd" "0" 3.3;
  Circuit.add_resistor c ~name:"RB" "vdd" "g" 100e3;
  Circuit.add_resistor c ~name:"RG" "g" "0" 100e3;
  Circuit.add_mosfet c ~name:"x1.M1" ~d:"vdd" ~g:"g" ~s:"0" ~b:"0"
    ~model:Tech.c35.Tech.nmos ~w:10e-6 ~l:1e-6;
  Circuit.add_mosfet c ~name:"x1.M2" ~d:"vdd" ~g:"g" ~s:"0" ~b:"0"
    ~model:Tech.c35.Tech.nmos ~w:20e-6 ~l:1e-6;
  let diags = Netlist_lint.check ~pairs:[ ("M1", "M2") ] c in
  Alcotest.(check bool)
    "N008 via prefixed names" true (has_code "N008" diags);
  (* matched dimensions: no finding *)
  let c2 = Circuit.create () in
  Circuit.add_mosfet c2 ~name:"M1" ~d:"0" ~g:"0" ~s:"0" ~b:"0"
    ~model:Tech.c35.Tech.nmos ~w:10e-6 ~l:1e-6;
  Circuit.add_mosfet c2 ~name:"M2" ~d:"0" ~g:"0" ~s:"0" ~b:"0"
    ~model:Tech.c35.Tech.nmos ~w:10e-6 ~l:1e-6;
  Alcotest.(check bool)
    "matched pair clean" false
    (has_code "N008" (Netlist_lint.check ~pairs:[ ("M1", "M2") ] c2))

let test_ota_testbench_lints_clean () =
  (* the flow's own preflight subject: the shipped OTA testbench at its
     default sizing must produce zero findings *)
  let circuit, _ = Yield_circuits.Ota_testbench.build Yield_circuits.Ota.default_params in
  check_codes "OTA testbench clean" []
    (Netlist_lint.check ~tech:Tech.c35
       ~pairs:Yield_circuits.Ota.symmetric_pairs circuit)

let test_netlist_check_file () =
  let path = Filename.temp_file "yieldlab" ".cir" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "V1 in 0 1.0\nR1 in out 1k\nR2 out 0 1k\n";
      close_out oc;
      check_codes "file clean" [] (Netlist_lint.check_file path);
      let oc = open_out path in
      output_string oc "V1 in 0 1.0\nR1 in out not-a-number\n";
      close_out oc;
      match Netlist_lint.check_file path with
      | [ diag ] ->
          Alcotest.(check string) "N000" "N000" diag.Diagnostic.code;
          Alcotest.(check (option int)) "line" (Some 2) diag.Diagnostic.line;
          (match diag.Diagnostic.span with
          | Some s ->
              Alcotest.(check int) "span line" 2 s.Diagnostic.start_line;
              Alcotest.(check bool) "span col" true (s.Diagnostic.start_col > 1)
          | None -> Alcotest.fail "N000 should carry a span")
      | diags -> Alcotest.failf "expected one N000, got %d findings" (List.length diags))

(* ---------- table lint <-> Tbl_io contract ---------- *)

let tbl ~columns rows =
  Tbl_io.create ~columns:(Array.of_list columns)
    ~rows:(Array.of_list (List.map Array.of_list rows))

let test_table_monotone_contract () =
  let bad =
    tbl ~columns:[ "gain"; "dgain" ]
      [ [ 50.; 1. ]; [ 52.; 2. ]; [ 52.; 3. ]; [ 55.; 4. ] ]
  in
  let diags = Table_lint.check ~axes:[ "gain" ] bad in
  Alcotest.(check bool) "lint flags T003" true (has_code "T003" diags);
  (* the contract: the linter and the strict reader agree, via the shared
     Tbl_io.monotone_column implementation *)
  let path = Filename.temp_file "yieldlab" ".tbl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Tbl_io.write ~path bad;
      (match Tbl_io.read_strict ~path ~axes:[ "gain" ] with
      | Ok _ -> Alcotest.fail "read_strict accepted a duplicate abscissa"
      | Error e ->
          Alcotest.(check bool)
            "error mentions the column" true
            (String.length (Tbl_io.read_error_to_string e) > 0));
      Alcotest.(check bool)
        "check_file agrees" true
        (has_code "T003" (Table_lint.check_file ~axes:[ "gain" ] path));
      (* and the good table passes both *)
      let good =
        tbl ~columns:[ "gain"; "dgain" ]
          [ [ 50.; 1. ]; [ 52.; 2. ]; [ 55.; 4. ] ]
      in
      Tbl_io.write ~path good;
      (match Tbl_io.read_strict ~path ~axes:[ "gain" ] with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "read_strict rejected a good table: %s"
                     (Tbl_io.read_error_to_string e));
      check_codes "good table clean" []
        (Table_lint.check_file ~axes:[ "gain" ] path))

let test_table_value_lints () =
  let nan_table =
    tbl ~columns:[ "x"; "y" ] [ [ 0.; 1. ]; [ 1.; Float.nan ] ]
  in
  Alcotest.(check bool)
    "T002 NaN cell" true
    (has_code "T002" (Table_lint.check nan_table));
  let short = tbl ~columns:[ "x" ] [ [ 0. ] ] in
  Alcotest.(check bool)
    "T005 single row" true
    (has_code "T005" (Table_lint.check short));
  let dup =
    tbl ~columns:[ "x"; "x" ] [ [ 0.; 1. ]; [ 1.; 2. ] ]
  in
  Alcotest.(check bool)
    "T006 duplicate column" true
    (has_code "T006" (Table_lint.check dup))

let test_table_control_lints () =
  let t = tbl ~columns:[ "x"; "y" ] [ [ 0.; 1. ]; [ 1.; 2. ] ] in
  Alcotest.(check bool)
    "consistent control clean" false
    (has_code "T004" (Table_lint.check ~axes:[ "x" ] ~control:"3E" t));
  Alcotest.(check bool)
    "token count mismatch" true
    (has_code "T004" (Table_lint.check ~axes:[ "x" ] ~control:"3E,1C" t));
  Alcotest.(check bool)
    "garbage control" true
    (has_code "T004" (Table_lint.check ~axes:[ "x" ] ~control:"9Z" t))

let test_spec_coverage () =
  let t007 =
    Table_lint.spec_coverage ~control:"3E" ~axis:"gain" ~lo:45. ~hi:60.
      ~query:70. ()
  in
  Alcotest.(check bool) "outside domain under 3E" true (has_code "T007" t007);
  check_codes "inside domain" []
    (Table_lint.spec_coverage ~control:"3E" ~axis:"gain" ~lo:45. ~hi:60.
       ~query:50. ());
  check_codes "clamping control extrapolates" []
    (Table_lint.spec_coverage ~control:"3C" ~axis:"gain" ~lo:45. ~hi:60.
       ~query:70. ())

(* ---------- config lint ---------- *)

let view =
  {
    Config_lint.population = 100;
    generations = 100;
    mc_samples = 200;
    front_stride = 1;
    control = "3E";
    seed = 2008;
    jobs = 1;
    solver = "dense";
    system_size = None;
    fingerprint = "v1;test";
  }

let test_config_lint () =
  check_codes "paper-scale clean" [] (Config_lint.check view);
  Alcotest.(check bool)
    "C001 non-positive" true
    (has_code "C001" (Config_lint.check { view with Config_lint.population = 0 }));
  (* C002: below the degradation threshold every point is skipped — error;
     just above it — warning *)
  let starved = Config_lint.check { view with Config_lint.mc_samples = 4 } in
  Alcotest.(check int) "C002 starved is an error" 2 (Diagnostic.exit_code starved);
  Alcotest.(check bool) "C002" true (has_code "C002" starved);
  let tight =
    Config_lint.check
      { view with Config_lint.mc_samples = Config_lint.min_valid_mc_samples }
  in
  Alcotest.(check int) "C002 tight is a warning" 1 (Diagnostic.exit_code tight);
  Alcotest.(check bool)
    "C003 oversized stride" true
    (has_code "C003" (Config_lint.check { view with Config_lint.front_stride = 60 }));
  Alcotest.(check bool)
    "C004 bad control" true
    (has_code "C004" (Config_lint.check { view with Config_lint.control = "bogus" }))

let test_config_lint_checkpoint () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "yieldlab-analyse-%d" (Unix.getpid ()))
  in
  Yield_resilience.Atomic_io.mkdir_p dir;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      (* missing dir: informational "fresh" finding *)
      let fresh =
        Config_lint.check ~checkpoint_dir:(dir ^ "-nonexistent") view
      in
      Alcotest.(check bool) "C005 fresh" true (has_code "C005" fresh);
      Alcotest.(check int) "fresh is clean" 0 (Diagnostic.exit_code fresh);
      (* a checkpoint recorded under a different fingerprint: error *)
      let c = Yield_resilience.Checkpoint.create ~dir in
      (match Yield_resilience.Checkpoint.check_fingerprint c "v1;other" with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "seeding the checkpoint failed: %s" e);
      let mismatch = Config_lint.check ~checkpoint_dir:dir view in
      Alcotest.(check bool) "C005 mismatch" true (has_code "C005" mismatch);
      Alcotest.(check int) "mismatch is an error" 2
        (Diagnostic.exit_code mismatch))

(* ---------- fault-spec lint ---------- *)

let test_fault_spec_lint () =
  (* the registry holds every point the host modules registered at module
     init: the documented CLI names must all be present *)
  let known = Fault.known () in
  List.iter
    (fun p ->
      Alcotest.(check bool) (p ^ " registered") true (List.mem p known))
    [
      "dcop.solve"; "dcop.newton"; "dcop.gmin"; "ac.solve"; "mc.sample";
      "tbl.write"; "flow.wbga.generation"; "flow.mc.point";
    ];
  check_codes "valid spec clean" []
    (Config_lint.check_fault_spec "dcop.solve:rate=0.2,seed=42;tbl.write:at=1");
  Alcotest.(check bool)
    "F001 parse error" true
    (has_code "F001" (Config_lint.check_fault_spec "dcop.solve:rate=???"));
  (let diags = Config_lint.check_fault_spec "dcop.solv:rate=0.1" in
   Alcotest.(check bool) "F002 typo" true (has_code "F002" diags);
   Alcotest.(check int) "typo is an error" 2 (Diagnostic.exit_code diags));
  let dead = Config_lint.check_fault_spec "dcop.solve:rate=0" in
  Alcotest.(check bool) "F003 never fires" true (has_code "F003" dead);
  Alcotest.(check int) "dead schedule is a warning" 1
    (Diagnostic.exit_code dead)

(* ---------- flow preflight ---------- *)

let test_flow_preflight_rejects () =
  (* mc_samples below the degradation threshold can only starve: the
     preflight must abort before any simulation runs *)
  let config = { Config.fast_scale with Config.mc_samples = 4 } in
  match Flow.run config with
  | exception Failure msg ->
      Alcotest.(check bool)
        "mentions preflight" true (contains ~sub:"preflight" msg);
      Alcotest.(check bool)
        "carries the finding" true (contains ~sub:"C002" msg)
  | _ -> Alcotest.fail "preflight accepted a starving configuration"

let suites =
  [
    ( "analyse.diagnostic",
      [
        Alcotest.test_case "sort and exit codes" `Quick
          test_sort_and_exit_codes;
        Alcotest.test_case "text rendering" `Quick test_text_rendering;
        Alcotest.test_case "JSON golden" `Quick test_json_golden;
      ] );
    ( "analyse.netlist",
      [
        Alcotest.test_case "floating gate: lint + Dcop agree" `Quick
          test_floating_gate_contract;
        Alcotest.test_case "vsource loop: lint + Dcop agree" `Quick
          test_vsource_loop_contract;
        Alcotest.test_case "clean circuit, clean lint" `Quick
          test_clean_circuit_clean_lint;
        Alcotest.test_case "device value checks" `Quick test_device_value_lint;
        Alcotest.test_case "symmetric pairs" `Quick test_symmetric_pair_lint;
        Alcotest.test_case "OTA testbench lints clean" `Quick
          test_ota_testbench_lints_clean;
        Alcotest.test_case "check_file" `Quick test_netlist_check_file;
      ] );
    ( "analyse.table",
      [
        Alcotest.test_case "monotone axis: lint + read_strict agree" `Quick
          test_table_monotone_contract;
        Alcotest.test_case "NaN / short / duplicate columns" `Quick
          test_table_value_lints;
        Alcotest.test_case "control consistency" `Quick
          test_table_control_lints;
        Alcotest.test_case "spec coverage under 3E" `Quick test_spec_coverage;
      ] );
    ( "analyse.config",
      [
        Alcotest.test_case "scale and control checks" `Quick test_config_lint;
        Alcotest.test_case "checkpoint dry-run" `Quick
          test_config_lint_checkpoint;
        Alcotest.test_case "fault-spec validation" `Quick test_fault_spec_lint;
      ] );
    ( "analyse.preflight",
      [
        Alcotest.test_case "Flow.run rejects a starving config" `Quick
          test_flow_preflight_rejects;
      ] );
  ]
