(* Tests for the yield_resilience library and its wiring through the flow:
   deterministic fault injection, retry accounting, atomic writes, hardened
   table parsing, bit-exact codecs, checkpoint/resume and graceful
   degradation.  The slow suite proves the headline guarantees: a flow
   killed mid-WBGA or mid-Monte-Carlo and resumed produces bit-identical
   tables, and a 20 % injected DC-failure rate is fully accounted for by
   the retry metrics. *)

module Fault = Yield_resilience.Fault
module Retry = Yield_resilience.Retry
module Atomic_io = Yield_resilience.Atomic_io
module Codec = Yield_resilience.Codec
module Checkpoint = Yield_resilience.Checkpoint
module Metrics = Yield_obs.Metrics
module Json = Yield_obs.Json
module Rng = Yield_stats.Rng
module Circuit = Yield_spice.Circuit
module Dcop = Yield_spice.Dcop
module Montecarlo = Yield_process.Montecarlo
module Pool = Yield_exec.Pool
module Tbl_io = Yield_table.Tbl_io
module Genome = Yield_ga.Genome
module Ga = Yield_ga.Ga
module Wbga = Yield_ga.Wbga
module Config = Yield_core.Config
module Flow = Yield_core.Flow

let mval name = Metrics.value (Metrics.counter name)

let hist_summary name =
  match List.assoc_opt name (Metrics.snapshot ()).Metrics.histograms with
  | Some s -> s
  | None -> Alcotest.failf "histogram %s not in the registry" name

(* every fault-arming test cleans up after itself so suites stay
   independent *)
let with_faults f = Fun.protect ~finally:Fault.reset f

let tmp_counter = ref 0

let fresh_dir prefix =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "yieldlab-%s-%d-%d" prefix (Unix.getpid ()) !tmp_counter)
  in
  Atomic_io.mkdir_p d;
  d

let check_bits what expected actual =
  if Int64.bits_of_float expected <> Int64.bits_of_float actual then
    Alcotest.failf "%s: expected %h, got %h" what expected actual

(* ---------- fault injection ---------- *)

let test_fault_parse_spec () =
  (match Fault.parse_spec "dcop.solve:rate=0.2,seed=42;tbl.write:at=1" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok entries ->
      Alcotest.(check int) "two entries" 2 (List.length entries);
      (match List.assoc "dcop.solve" entries with
      | Fault.Rate { p; seed } ->
          check_bits "rate" 0.2 p;
          Alcotest.(check int) "seed" 42 seed
      | m -> Alcotest.failf "unexpected mode %s" (Fault.mode_to_string m));
      match List.assoc "tbl.write" entries with
      | Fault.At 1 -> ()
      | m -> Alcotest.failf "unexpected mode %s" (Fault.mode_to_string m));
  let expect_error spec =
    match Fault.parse_spec spec with
    | Ok _ -> Alcotest.failf "expected parse error for %S" spec
    | Error _ -> ()
  in
  expect_error "";
  expect_error "dcop.solve";
  expect_error "dcop.solve:rate=1.5";
  expect_error "dcop.solve:bogus=3";
  expect_error "dcop.solve:count=1,at=2"

let test_fault_modes () =
  with_faults (fun () ->
      Fault.reset ();
      let p = Fault.point "test.mode" in
      Fault.arm "test.mode" (Fault.Count 2);
      let fires = List.init 5 (fun _ -> Fault.fire p) in
      Alcotest.(check (list bool)) "count 2" [ true; true; false; false; false ]
        fires;
      Fault.reset ();
      Fault.arm "test.mode" (Fault.Every 3);
      let fires = List.init 6 (fun _ -> Fault.fire p) in
      Alcotest.(check (list bool))
        "every 3"
        [ false; false; true; false; false; true ]
        fires;
      Fault.reset ();
      Fault.arm "test.mode" (Fault.At 2);
      let fires = List.init 4 (fun _ -> Fault.fire p) in
      Alcotest.(check (list bool)) "at 2" [ false; true; false; false ] fires;
      Fault.disarm "test.mode";
      Alcotest.(check bool) "disarmed" false (Fault.fire p))

let test_fault_rate_determinism () =
  with_faults (fun () ->
      Fault.reset ();
      let p = Fault.point "test.rate" in
      Fault.arm "test.rate" (Fault.Rate { p = 0.2; seed = 7 });
      let run () = List.init 1000 (fun i -> Fault.fire_at p ~index:i) in
      let a = run () and b = run () in
      Alcotest.(check (list bool)) "replayable" a b;
      let hits = List.length (List.filter Fun.id a) in
      Alcotest.(check bool)
        (Printf.sprintf "rate ~ 0.2 (%d/1000)" hits)
        true
        (hits > 120 && hits < 280))

let test_fault_advance_blocks () =
  with_faults (fun () ->
      Fault.reset ();
      let p = Fault.point "test.advance" in
      Alcotest.(check int) "first block at 0" 0 (Fault.advance p ~by:10);
      Alcotest.(check int) "second block at 10" 10 (Fault.advance p ~by:5);
      Alcotest.(check int) "third block at 15" 15 (Fault.advance p ~by:1))

let test_fault_counters_and_armed () =
  with_faults (fun () ->
      Fault.reset ();
      Metrics.reset ();
      let p = Fault.point "test.counters" in
      Fault.arm "test.counters" (Fault.Count 1);
      ignore (Fault.fire p);
      ignore (Fault.fire p);
      Alcotest.(check int) "hits" 2 (mval "fault.test.counters.hits");
      Alcotest.(check int) "injected" 1 (mval "fault.test.counters.injected");
      match Fault.armed () with
      | [ ("test.counters", Fault.Count 1) ] -> ()
      | l -> Alcotest.failf "unexpected armed list (%d entries)" (List.length l))

let test_fault_raise_if () =
  with_faults (fun () ->
      Fault.reset ();
      let p = Fault.point "test.crash" in
      Fault.arm "test.crash" (Fault.At 1);
      match Fault.raise_if p with
      | exception Fault.Injected "test.crash" -> ()
      | () -> Alcotest.fail "expected Injected")

(* ---------- retry policies ---------- *)

let test_retry_recovers () =
  Metrics.reset ();
  let pol = Retry.policy "test.recover" in
  let result =
    Retry.with_retries pol
      ~classify:(fun _ -> Retry.Transient)
      (fun ~attempt -> if attempt < 2 then Error "flaky" else Ok attempt)
  in
  Alcotest.(check (result int string)) "recovered on attempt 2" (Ok 2) result;
  Alcotest.(check int) "retries" 1 (mval "retry.test.recover.retries");
  Alcotest.(check int) "recovered" 1 (mval "retry.test.recover.recovered");
  Alcotest.(check int) "exhausted" 0 (mval "retry.test.recover.exhausted")

let test_retry_exhausts () =
  Metrics.reset ();
  let pol = Retry.policy "test.exhaust" in
  let result =
    Retry.with_retries pol
      ~classify:(fun _ -> Retry.Transient)
      (fun ~attempt:_ -> Error "down")
  in
  Alcotest.(check (result int string)) "still failing" (Error "down") result;
  Alcotest.(check int) "retries" 2 (mval "retry.test.exhaust.retries");
  Alcotest.(check int) "exhausted" 1 (mval "retry.test.exhaust.exhausted");
  Alcotest.(check int) "recovered" 0 (mval "retry.test.exhaust.recovered")

let test_retry_permanent () =
  Metrics.reset ();
  let pol = Retry.policy "test.permanent" in
  let calls = ref 0 in
  let result =
    Retry.with_retries pol
      ~classify:(fun _ -> Retry.Permanent)
      (fun ~attempt:_ ->
        incr calls;
        Error "broken")
  in
  Alcotest.(check (result int string)) "fails" (Error "broken") result;
  Alcotest.(check int) "no retries on permanent" 1 !calls;
  Alcotest.(check int) "permanent" 1 (mval "retry.test.permanent.permanent");
  Alcotest.(check int) "retries" 0 (mval "retry.test.permanent.retries")

let test_retry_deadline_stops () =
  Metrics.reset ();
  let pol = Retry.policy "test.deadline" in
  (* a deadline already at "now": the first attempt still runs (callers
     enforce admission deadlines themselves) but no retry is launched *)
  let calls = ref 0 in
  let result =
    Retry.with_retries ~deadline_s:(Yield_obs.Clock.now_s ()) pol
      ~classify:(fun _ -> Retry.Transient)
      (fun ~attempt:_ ->
        incr calls;
        Error "slow")
  in
  Alcotest.(check (result int string)) "fails" (Error "slow") result;
  Alcotest.(check int) "single attempt" 1 !calls;
  Alcotest.(check int) "no retries" 0 (mval "retry.test.deadline.retries");
  Alcotest.(check int) "exhausted (identity holds)" 1
    (mval "retry.test.deadline.exhausted");
  Alcotest.(check int) "deadline_stopped" 1
    (mval "retry.test.deadline.deadline_stopped")

let test_retry_deadline_far () =
  Metrics.reset ();
  let pol = Retry.policy "test.deadline_far" in
  (* a distant deadline must not change the retry behaviour at all *)
  let result =
    Retry.with_retries ~deadline_s:(Yield_obs.Clock.now_s () +. 60.) pol
      ~classify:(fun _ -> Retry.Transient)
      (fun ~attempt -> if attempt < 2 then Error "flaky" else Ok attempt)
  in
  Alcotest.(check (result int string)) "recovered" (Ok 2) result;
  Alcotest.(check int) "retries" 1 (mval "retry.test.deadline_far.retries");
  Alcotest.(check int) "deadline_stopped" 0
    (mval "retry.test.deadline_far.deadline_stopped")

(* ---------- atomic writes ---------- *)

let test_atomic_write () =
  let dir = fresh_dir "atomic" in
  let path = Filename.concat dir "a.txt" in
  Atomic_io.write_file ~path "first";
  Alcotest.(check string) "written" "first" (Atomic_io.read_file ~path);
  Atomic_io.write_file ~path "second";
  Alcotest.(check string) "overwritten" "second" (Atomic_io.read_file ~path);
  Alcotest.(check bool) "no temp left" false
    (Sys.file_exists (Atomic_io.temp_path path))

let divider () =
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"V1" "in" "0" 10.;
  Circuit.add_resistor c ~name:"R1" "in" "mid" 1000.;
  Circuit.add_resistor c ~name:"R2" "mid" "0" 3000.;
  c

let sample_table () =
  Tbl_io.of_string "# columns: x y\n1.0 2.0\n3.0 4.0\n"

let test_tbl_write_torn () =
  with_faults (fun () ->
      Fault.reset ();
      let dir = fresh_dir "torn" in
      let path = Filename.concat dir "m.tbl" in
      let tbl = sample_table () in
      Tbl_io.write ~path tbl;
      let before = Atomic_io.read_file ~path in
      (* the clean write above consumed hit 1; start the schedule over *)
      Fault.reset ();
      Fault.arm "tbl.write" (Fault.At 1);
      (match Tbl_io.write ~path tbl with
      | exception Fault.Injected _ -> ()
      | () -> Alcotest.fail "expected a torn write");
      Alcotest.(check string) "target untouched by the torn write" before
        (Atomic_io.read_file ~path);
      Fault.reset ();
      Tbl_io.write ~path tbl;
      Alcotest.(check string) "clean rewrite" before
        (Atomic_io.read_file ~path);
      Alcotest.(check bool) "temp cleaned up" false
        (Sys.file_exists (Atomic_io.temp_path path)))

(* ---------- hardened table reads ---------- *)

let test_tbl_read_errors () =
  (match Tbl_io.of_string_result "# columns: x y\n1.0 oops\n" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e ->
      Alcotest.(check (option int)) "line" (Some 2) e.Tbl_io.line;
      Alcotest.(check bool) "mentions the literal" true
        (let s = Tbl_io.read_error_to_string e in
         let has needle =
           let n = String.length needle and m = String.length s in
           let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
           go 0
         in
         has "oops"));
  (match Tbl_io.of_string_result "# columns: x y\n1.0 2.0\n3.0\n" with
  | Ok _ -> Alcotest.fail "expected a ragged-row error"
  | Error e -> Alcotest.(check (option int)) "ragged line" (Some 3) e.Tbl_io.line);
  match Tbl_io.of_string_result ~path:"m.tbl" "# columns: x y z\n1.0 2.0\n" with
  | Ok _ -> Alcotest.fail "expected a header-width error"
  | Error e -> Alcotest.(check (option string)) "path" (Some "m.tbl") e.Tbl_io.path

let test_tbl_read_result_files () =
  (match Tbl_io.read_result ~path:"/nonexistent/yieldlab.tbl" with
  | Ok _ -> Alcotest.fail "expected a read error"
  | Error e ->
      Alcotest.(check bool) "carries a path" true (e.Tbl_io.path <> None));
  let dir = fresh_dir "tblread" in
  let path = Filename.concat dir "garbage.tbl" in
  Atomic_io.write_file ~path "# columns: x y\n1.0 2.0\n3.0 what\n";
  (match Tbl_io.read_result ~path with
  | Ok _ -> Alcotest.fail "expected a typed error on garbage"
  | Error e ->
      Alcotest.(check (option string)) "path" (Some path) e.Tbl_io.path;
      Alcotest.(check (option int)) "line" (Some 3) e.Tbl_io.line);
  (match Tbl_io.read ~path with
  | exception Failure msg ->
      Alcotest.(check bool) "Failure names the file" true
        (let n = String.length path and m = String.length msg in
         let rec go i = i + n <= m && (String.sub msg i n = path || go (i + 1)) in
         go 0)
  | _ -> Alcotest.fail "expected Failure");
  let good = Filename.concat dir "good.tbl" in
  Tbl_io.write ~path:good (sample_table ());
  match Tbl_io.read_result ~path:good with
  | Ok t ->
      Alcotest.(check string) "roundtrip" (Tbl_io.to_string (sample_table ()))
        (Tbl_io.to_string t)
  | Error e -> Alcotest.failf "roundtrip: %s" (Tbl_io.read_error_to_string e)

(* ---------- bit-exact codecs ---------- *)

let test_codec_floats () =
  let values =
    [ 0.; -0.; 1. /. 3.; -1.2345678901234567e-300; 6.02214076e23;
      Float.max_float; Float.min_float; epsilon_float; infinity; neg_infinity ]
  in
  List.iter
    (fun v ->
      let j = Codec.float_ v in
      (* through the actual serialised text, as a checkpoint would *)
      let v' = Codec.to_float (Json.parse (Json.to_string j)) in
      check_bits "float roundtrip" v v')
    values;
  Alcotest.(check bool) "nan survives" true
    (Float.is_nan (Codec.to_float (Json.parse (Json.to_string (Codec.float_ nan)))))

let test_codec_ints () =
  List.iter
    (fun v ->
      let v' = Codec.to_int64 (Json.parse (Json.to_string (Codec.int64_ v))) in
      Alcotest.(check int64) "int64 roundtrip" v v')
    [ 0L; 1L; -1L; Int64.max_int; Int64.min_int; 0x9E3779B97F4A7C15L ];
  Alcotest.(check int) "int roundtrip" max_int
    (Codec.to_int (Json.parse (Json.to_string (Codec.int_ max_int))))

let test_codec_rng_state () =
  let rng = Rng.create 1234 in
  (* draw one gaussian so the Box-Muller cache is populated *)
  ignore (Rng.normal rng ~mean:0. ~sigma:1.);
  let st = Rng.save rng in
  let j = Json.parse (Json.to_string (Codec.rng_state st)) in
  let rng' = Rng.of_state (Codec.to_rng_state j) in
  for i = 0 to 99 do
    check_bits (Printf.sprintf "uniform draw %d" i) (Rng.float rng)
      (Rng.float rng');
    check_bits
      (Printf.sprintf "gaussian draw %d" i)
      (Rng.normal rng ~mean:0. ~sigma:1.)
      (Rng.normal rng' ~mean:0. ~sigma:1.)
  done

(* ---------- checkpoint store ---------- *)

let test_checkpoint_roundtrip () =
  Metrics.reset ();
  let ckpt = Checkpoint.create ~dir:(fresh_dir "ckpt") in
  Alcotest.(check bool) "missing key" true
    (Checkpoint.load ckpt ~key:"absent" = None);
  Checkpoint.store ckpt ~key:"wbga.state" (Codec.int_ 42);
  (match Checkpoint.load ckpt ~key:"wbga.state" with
  | Some j -> Alcotest.(check int) "payload" 42 (Codec.to_int j)
  | None -> Alcotest.fail "expected the stored payload");
  Checkpoint.remove ckpt ~key:"wbga.state";
  Alcotest.(check bool) "removed" true
    (Checkpoint.load ckpt ~key:"wbga.state" = None);
  match Checkpoint.store ckpt ~key:"../escape" (Codec.int_ 1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument on a bad key"

let test_checkpoint_corrupt () =
  Metrics.reset ();
  let dir = fresh_dir "ckpt-corrupt" in
  let ckpt = Checkpoint.create ~dir in
  Checkpoint.store ckpt ~key:"mc.state" (Codec.int_ 7);
  let path = Filename.concat dir "mc.state.ckpt.json" in
  Atomic_io.write_file ~path "{\"truncated\": ";
  Alcotest.(check bool) "corrupt reads as absent" true
    (Checkpoint.load ckpt ~key:"mc.state" = None);
  Alcotest.(check int) "corruption counted" 1 (mval "checkpoint.corrupt")

let test_checkpoint_fingerprint () =
  let ckpt = Checkpoint.create ~dir:(fresh_dir "ckpt-fp") in
  (match Checkpoint.check_fingerprint ckpt "v1;seed=1" with
  | Ok `Fresh -> ()
  | _ -> Alcotest.fail "expected `Fresh on a new directory");
  (match Checkpoint.check_fingerprint ckpt "v1;seed=1" with
  | Ok `Resumable -> ()
  | _ -> Alcotest.fail "expected `Resumable on a matching fingerprint");
  match Checkpoint.check_fingerprint ckpt "v1;seed=2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error on a mismatch"

(* ---------- WBGA checkpoint/resume ---------- *)

let wbga_setup () =
  let ranges =
    [| Genome.range "a" ~lo:0. ~hi:1.; Genome.range "b" ~lo:0.5 ~hi:2. |]
  in
  let objectives =
    [|
      { Wbga.name = "f1"; maximise = true };
      { Wbga.name = "f2"; maximise = false };
    |]
  in
  let evaluate params =
    let a = params.(0) and b = params.(1) in
    (* a failure region exercises the failure-count restore *)
    if a +. b < 0.6 then None
    else Some [| sin (10. *. a) +. b; (a *. b) +. (0.1 *. sin (25. *. b)) |]
  in
  let config =
    { Ga.default_config with Ga.population_size = 16; generations = 8 }
  in
  (ranges, objectives, evaluate, config)

let check_entry what (e : Wbga.entry) (e' : Wbga.entry) =
  Array.iteri
    (fun i v -> check_bits (what ^ ".params") v e'.Wbga.params.(i))
    e.Wbga.params;
  Array.iteri
    (fun i v -> check_bits (what ^ ".objectives") v e'.Wbga.objectives.(i))
    e.Wbga.objectives;
  check_bits (what ^ ".fitness") e.Wbga.fitness e'.Wbga.fitness

let check_same_result (a : Wbga.result) (b : Wbga.result) =
  Alcotest.(check int) "evaluations" a.Wbga.evaluations b.Wbga.evaluations;
  Alcotest.(check int) "failures" a.Wbga.failures b.Wbga.failures;
  Alcotest.(check int) "history length" (Array.length a.Wbga.history)
    (Array.length b.Wbga.history);
  Array.iteri
    (fun i v -> check_bits (Printf.sprintf "history %d" i) v b.Wbga.history.(i))
    a.Wbga.history;
  Alcotest.(check int) "front size" (Array.length a.Wbga.front)
    (Array.length b.Wbga.front);
  Array.iteri
    (fun i e -> check_entry (Printf.sprintf "front %d" i) e b.Wbga.front.(i))
    a.Wbga.front;
  Alcotest.(check int) "archive size" (Array.length a.Wbga.archive)
    (Array.length b.Wbga.archive)

let test_wbga_resume_bit_identical () =
  let ranges, objectives, evaluate, config = wbga_setup () in
  let snapshots = ref [] in
  let result_a =
    Wbga.run ~config
      ~checkpoint:(fun s -> snapshots := s :: !snapshots)
      ~param_ranges:ranges ~objectives ~rng:(Rng.create 7) ~evaluate ()
  in
  Alcotest.(check int) "one snapshot per generation" 8
    (List.length !snapshots);
  let mid =
    List.find
      (fun s -> s.Wbga.ga.Ga.next_generation = 3)
      !snapshots
  in
  (* through the serialised form, exactly as the flow's checkpoint does *)
  let mid' =
    match
      Wbga.snapshot_of_json
        (Json.parse (Json.to_string (Wbga.snapshot_to_json mid)))
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "snapshot decode: %s" e
  in
  let result_b =
    (* the fresh RNG seed is irrelevant: resume restores the stream state *)
    Wbga.run ~config ~resume:mid' ~param_ranges:ranges ~objectives
      ~rng:(Rng.create 999) ~evaluate ()
  in
  check_same_result result_a result_b

let test_wbga_result_codec () =
  let ranges, objectives, evaluate, config = wbga_setup () in
  let result =
    Wbga.run ~config ~param_ranges:ranges ~objectives ~rng:(Rng.create 7)
      ~evaluate ()
  in
  match
    Wbga.result_of_json (Json.parse (Json.to_string (Wbga.result_to_json result)))
  with
  | Error e -> Alcotest.failf "result decode: %s" e
  | Ok result' ->
      check_same_result result result';
      Array.iteri
        (fun i e -> check_entry (Printf.sprintf "archive %d" i) e
            result'.Wbga.archive.(i))
        result.Wbga.archive

(* ---------- Monte Carlo fault determinism and degraded yield ---------- *)

let test_mc_injection_serial_equals_parallel () =
  with_faults (fun () ->
      let batch run =
        Fault.reset ();
        Fault.arm "mc.sample" (Fault.Rate { p = 0.3; seed = 5 });
        let rng = Rng.create 97 in
        run ~samples:48 ~rng (fun child -> Some (Rng.float child))
      in
      let serial = batch (fun ~samples ~rng f ->
          Montecarlo.run_counted ~samples ~rng f) in
      let parallel = batch (fun ~samples ~rng f ->
          Pool.with_pool ~jobs:4 (fun pool ->
              Montecarlo.run_pool_counted ~pool ~samples ~rng f)) in
      Alcotest.(check int) "attempted" serial.Montecarlo.attempted
        parallel.Montecarlo.attempted;
      Alcotest.(check int) "failed" serial.Montecarlo.failed
        parallel.Montecarlo.failed;
      Alcotest.(check bool) "some samples were injected" true
        (serial.Montecarlo.failed > 0);
      Alcotest.(check bool) "some samples survived" true
        (Array.length serial.Montecarlo.results > 0);
      Alcotest.(check int) "same survivors" (Array.length serial.Montecarlo.results)
        (Array.length parallel.Montecarlo.results);
      Array.iteri
        (fun i v ->
          check_bits (Printf.sprintf "sample %d" i) v
            parallel.Montecarlo.results.(i))
        serial.Montecarlo.results)

let test_yield_of_counted () =
  let ok =
    { Montecarlo.results = [| 1.; 2.; 3.; 0.5 |]; attempted = 6; failed = 2 }
  in
  (match Montecarlo.yield_of_counted (fun v -> v >= 1.) ok with
  | Montecarlo.Estimate e ->
      Alcotest.(check int) "pass" 3 e.Montecarlo.pass;
      Alcotest.(check int) "total" 4 e.Montecarlo.total
  | Montecarlo.No_valid_samples _ -> Alcotest.fail "expected an estimate");
  let empty = { Montecarlo.results = [||]; attempted = 6; failed = 6 } in
  match Montecarlo.yield_of_counted (fun _ -> true) empty with
  | Montecarlo.No_valid_samples { attempted = 6; failed = 6 } ->
      let s = Montecarlo.yield_outcome_to_string
          (Montecarlo.No_valid_samples { attempted = 6; failed = 6 }) in
      Alcotest.(check bool) "degrades to unknown" true
        (let n = "yield unknown" in
         String.length s >= String.length n
         && String.sub s 0 (String.length n) = n)
  | _ -> Alcotest.fail "expected No_valid_samples"

(* ---------- DC homotopy forcing and solve_with_retry ---------- *)

let test_dcop_gmin_recovery () =
  with_faults (fun () ->
      Fault.reset ();
      Metrics.reset ();
      Fault.arm "dcop.newton" (Fault.Count 1);
      let circuit = divider () in
      (match Dcop.solve circuit with
      | Ok op ->
          Alcotest.(check (float 1e-6)) "divider still solves" 7.5
            (Dcop.voltage_by_name op circuit "mid")
      | Error _ -> Alcotest.fail "gmin stepping should have recovered");
      Alcotest.(check int) "newton fault recorded" 1
        (mval "fault.dcop.newton.injected");
      (* one solve, two recovery stages tried: newton then gmin-stepping *)
      let s = hist_summary "dcop.recovery_attempts" in
      Alcotest.(check int) "one recovery observation" 1 s.Yield_obs.Histogram.count;
      Alcotest.(check (float 1e-9)) "newton + gmin-stepping" 2.
        s.Yield_obs.Histogram.max;
      Alcotest.(check bool) "gmin steps were walked" true
        ((hist_summary "dcop.gmin_steps").Yield_obs.Histogram.max >= 1.))

let test_dcop_source_stepping_recovery () =
  with_faults (fun () ->
      Fault.reset ();
      Metrics.reset ();
      Fault.arm "dcop.newton" (Fault.Count 1);
      Fault.arm "dcop.gmin" (Fault.Count 1);
      (match Dcop.solve (divider ()) with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "source stepping should have recovered");
      Alcotest.(check int) "newton fault recorded" 1
        (mval "fault.dcop.newton.injected");
      Alcotest.(check int) "gmin fault recorded" 1
        (mval "fault.dcop.gmin.injected");
      (* all three stages tried: newton, gmin-stepping, source-stepping *)
      let s = hist_summary "dcop.recovery_attempts" in
      Alcotest.(check int) "one recovery observation" 1 s.Yield_obs.Histogram.count;
      Alcotest.(check (float 1e-9)) "full homotopy chain" 3.
        s.Yield_obs.Histogram.max)

let test_dcop_injected_no_convergence () =
  with_faults (fun () ->
      Fault.reset ();
      Fault.arm "dcop.solve" (Fault.At 1);
      match Dcop.solve (divider ()) with
      | Error (Dcop.No_convergence { attempts }) ->
          Alcotest.(check (list string)) "attempt trace" [ "injected-fault" ]
            attempts
      | Ok _ -> Alcotest.fail "expected the injected failure"
      | Error (Dcop.Singular_system _) ->
          Alcotest.fail "expected No_convergence")

let test_dcop_classify () =
  Alcotest.(check bool) "non-convergence is transient" true
    (Dcop.classify_error (Dcop.No_convergence { attempts = [] })
    = Retry.Transient);
  Alcotest.(check bool) "singular is permanent" true
    (Dcop.classify_error (Dcop.Singular_system "x") = Retry.Permanent)

(* the headline accounting identity, in a controlled setting where fault
   injection is the only transient-failure source:
   fault.dcop.solve.injected = retry.dcop.solve.retries + .exhausted *)
let test_retry_accounting_identity () =
  with_faults (fun () ->
      Fault.reset ();
      Metrics.reset ();
      Fault.arm "dcop.solve" (Fault.Count 5);
      let circuit = divider () in
      let outcomes =
        List.init 8 (fun _ ->
            match Dcop.solve_with_retry circuit with
            | Ok _ -> `Ok
            | Error _ -> `Error)
      in
      (* call 1 burns injected hits 1-3 and exhausts; call 2 burns hits
         4-5 and recovers on its third attempt; the rest are clean *)
      Alcotest.(check int) "one call exhausted" 1
        (List.length (List.filter (( = ) `Error) outcomes));
      Alcotest.(check int) "injected" 5 (mval "fault.dcop.solve.injected");
      Alcotest.(check int) "retries" 4 (mval "retry.dcop.solve.retries");
      Alcotest.(check int) "exhausted" 1 (mval "retry.dcop.solve.exhausted");
      Alcotest.(check int) "recovered" 1 (mval "retry.dcop.solve.recovered");
      Alcotest.(check int) "identity: injected = retries + exhausted"
        (mval "fault.dcop.solve.injected")
        (mval "retry.dcop.solve.retries" + mval "retry.dcop.solve.exhausted"))

(* ---------- the flow: kill, resume, degrade ---------- *)

let smoke_config =
  {
    Config.fast_scale with
    Config.ga =
      { Ga.default_config with Ga.population_size = 24; generations = 12 };
    mc_samples = 12;
    front_stride = 2;
    seed = 47;
  }

let flow_tables f =
  let dir = fresh_dir "tables" in
  Flow.save_tables f ~dir
  |> List.map (fun path -> (Filename.basename path, Atomic_io.read_file ~path))

(* the uninterrupted reference run, shared by the kill/resume tests *)
let baseline = lazy (flow_tables (Flow.run smoke_config))

let check_resumed_matches_baseline what resumed =
  let base = Lazy.force baseline in
  Alcotest.(check int) (what ^ ": table count") (List.length base)
    (List.length resumed);
  List.iter2
    (fun (name, contents) (name', contents') ->
      Alcotest.(check string) (what ^ ": table name") name name';
      Alcotest.(check string)
        (Printf.sprintf "%s: %s bit-identical" what name)
        contents contents')
    base resumed

let kill_and_resume ~what ~point ~at =
  with_faults (fun () ->
      let dir = fresh_dir "flow-ckpt" in
      Fault.reset ();
      Fault.arm point (Fault.At at);
      (match Flow.run ~checkpoint_dir:dir smoke_config with
      | exception Fault.Injected p ->
          Alcotest.(check string) (what ^ ": crashed at the armed point")
            point p
      | _ -> Alcotest.failf "%s: expected the simulated crash" what);
      Fault.reset ();
      let f = Flow.run ~checkpoint_dir:dir ~resume:true smoke_config in
      check_resumed_matches_baseline what (flow_tables f))

let test_flow_resume_after_wbga_kill () =
  kill_and_resume ~what:"mid-WBGA kill" ~point:"flow.wbga.generation" ~at:4

let test_flow_resume_after_mc_kill () =
  kill_and_resume ~what:"mid-MC kill" ~point:"flow.mc.point" ~at:1

let test_flow_redundant_resume () =
  (* resuming a directory holding a completed run recomputes nothing new
     and still reproduces the tables *)
  let dir = fresh_dir "flow-done" in
  let f = Flow.run ~checkpoint_dir:dir smoke_config in
  check_resumed_matches_baseline "complete run" (flow_tables f);
  let f' = Flow.run ~checkpoint_dir:dir ~resume:true smoke_config in
  check_resumed_matches_baseline "redundant resume" (flow_tables f')

let test_flow_fingerprint_mismatch () =
  let dir = fresh_dir "flow-fp" in
  ignore (Flow.run ~checkpoint_dir:dir smoke_config);
  let other = { smoke_config with Config.seed = 48 } in
  match Flow.run ~checkpoint_dir:dir ~resume:true other with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected a fingerprint-mismatch failure"

let test_flow_with_20pct_dc_faults () =
  with_faults (fun () ->
      Fault.reset ();
      Metrics.reset ();
      Fault.arm "dcop.solve" (Fault.Rate { p = 0.2; seed = 11 });
      let f = Flow.run smoke_config in
      Alcotest.(check bool) "flow completed with a usable front" true
        (Array.length f.Flow.front_points >= 2);
      let injected = mval "fault.dcop.solve.injected" in
      let retries = mval "retry.dcop.solve.retries" in
      let exhausted = mval "retry.dcop.solve.exhausted" in
      Alcotest.(check bool)
        (Printf.sprintf "faults were injected (%d)" injected)
        true (injected > 0);
      (* natural non-convergence also lands in the retry counters, so the
         identity relaxes to >=: nothing injected goes unaccounted *)
      Alcotest.(check bool)
        (Printf.sprintf "every injected fault accounted (%d <= %d + %d)"
           injected retries exhausted)
        true
        (retries + exhausted >= injected);
      Alcotest.(check bool) "honest denominators" true
        (mval "mc.samples.attempted" >= mval "mc.samples.failed"
        && mval "mc.samples.attempted" > 0))

let test_flow_starved_by_total_mc_failure () =
  with_faults (fun () ->
      Fault.reset ();
      Metrics.reset ();
      Fault.arm "mc.sample" (Fault.Rate { p = 1.0; seed = 3 });
      match Flow.run smoke_config with
      | exception Failure msg ->
          Alcotest.(check bool) "names the starvation" true
            (let needle = "starved" in
             let n = String.length needle and m = String.length msg in
             let rec go i =
               i + n <= m && (String.sub msg i n = needle || go (i + 1))
             in
             go 0);
          Alcotest.(check bool) "degraded points counted" true
            (mval "flow.points.degraded" > 0)
      | _ -> Alcotest.fail "expected the starvation failure")

let suites =
  [
    ( "resilience.fault",
      [
        Alcotest.test_case "parse_spec" `Quick test_fault_parse_spec;
        Alcotest.test_case "modes" `Quick test_fault_modes;
        Alcotest.test_case "rate determinism" `Quick
          test_fault_rate_determinism;
        Alcotest.test_case "advance blocks" `Quick test_fault_advance_blocks;
        Alcotest.test_case "counters and armed" `Quick
          test_fault_counters_and_armed;
        Alcotest.test_case "raise_if" `Quick test_fault_raise_if;
      ] );
    ( "resilience.retry",
      [
        Alcotest.test_case "recovers" `Quick test_retry_recovers;
        Alcotest.test_case "exhausts" `Quick test_retry_exhausts;
        Alcotest.test_case "permanent" `Quick test_retry_permanent;
        Alcotest.test_case "deadline stops retries" `Quick
          test_retry_deadline_stops;
        Alcotest.test_case "distant deadline is inert" `Quick
          test_retry_deadline_far;
      ] );
    ( "resilience.atomic",
      [
        Alcotest.test_case "write_file" `Quick test_atomic_write;
        Alcotest.test_case "torn tbl write" `Quick test_tbl_write_torn;
      ] );
    ( "resilience.tbl",
      [
        Alcotest.test_case "of_string_result errors" `Quick
          test_tbl_read_errors;
        Alcotest.test_case "read_result files" `Quick
          test_tbl_read_result_files;
      ] );
    ( "resilience.codec",
      [
        Alcotest.test_case "floats bit-exact" `Quick test_codec_floats;
        Alcotest.test_case "ints" `Quick test_codec_ints;
        Alcotest.test_case "rng state" `Quick test_codec_rng_state;
      ] );
    ( "resilience.checkpoint",
      [
        Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
        Alcotest.test_case "corrupt payload" `Quick test_checkpoint_corrupt;
        Alcotest.test_case "fingerprint" `Quick test_checkpoint_fingerprint;
      ] );
    ( "resilience.wbga",
      [
        Alcotest.test_case "resume bit-identical" `Quick
          test_wbga_resume_bit_identical;
        Alcotest.test_case "result codec" `Quick test_wbga_result_codec;
      ] );
    ( "resilience.mc",
      [
        Alcotest.test_case "serial = parallel injection" `Quick
          test_mc_injection_serial_equals_parallel;
        Alcotest.test_case "yield_of_counted" `Quick test_yield_of_counted;
      ] );
    ( "resilience.dcop",
      [
        Alcotest.test_case "gmin recovery" `Quick test_dcop_gmin_recovery;
        Alcotest.test_case "source-stepping recovery" `Quick
          test_dcop_source_stepping_recovery;
        Alcotest.test_case "injected no-convergence" `Quick
          test_dcop_injected_no_convergence;
        Alcotest.test_case "classification" `Quick test_dcop_classify;
        Alcotest.test_case "retry accounting identity" `Quick
          test_retry_accounting_identity;
      ] );
    ( "resilience.flow",
      [
        Alcotest.test_case "resume after mid-WBGA kill" `Slow
          test_flow_resume_after_wbga_kill;
        Alcotest.test_case "resume after mid-MC kill" `Slow
          test_flow_resume_after_mc_kill;
        Alcotest.test_case "redundant resume" `Slow test_flow_redundant_resume;
        Alcotest.test_case "fingerprint mismatch" `Slow
          test_flow_fingerprint_mismatch;
        Alcotest.test_case "20% dc fault rate" `Slow
          test_flow_with_20pct_dc_faults;
        Alcotest.test_case "total MC failure starves" `Slow
          test_flow_starved_by_total_mc_failure;
      ] );
  ]
