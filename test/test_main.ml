let () =
  Alcotest.run "yieldlab"
    (List.concat
       [
         T_numeric.suites;
         T_linsys.suites;
         T_obs.suites;
         T_stats.suites;
         T_spice.suites;
         T_netlist.suites;
         T_tran.suites;
         T_extensions.suites;
         T_process.suites;
         T_ga.suites;
         T_table.suites;
         T_circuits.suites;
         T_circuits2.suites;
         T_behavioural.suites;
         T_core.suites;
         T_telemetry.suites;
         T_resilience.suites;
         T_exec.suites;
         T_analyse.suites;
         T_analyse2.suites;
         T_corner.suites;
         T_serve.suites;
       ])
