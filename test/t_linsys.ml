(* Tests for the solver-agnostic Linsys seam: dense/csr kernel equivalence
   on random sparse systems, circuit-level dense<->csr equivalence (DC, AC,
   transient), symbolic-cache reuse, and byte-identity of the
   Variation.overrides patching path against full circuit rebuilds. *)

module Vec = Yield_numeric.Vec
module Mat = Yield_numeric.Mat
module Lu = Yield_numeric.Lu
module Cmat = Yield_numeric.Cmat
module Linsys = Yield_numeric.Linsys

(* ---------- random sparse systems ---------- *)

(* A random n x n sparse system guaranteed structurally nonsingular: a
   random permutation provides the transversal (so some rows have a
   structurally zero diagonal, like MNA branch rows), entries on it are
   dominant, and extra off-diagonal entries exercise fill-in. *)
let random_system st n =
  let perm = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  let entries = Hashtbl.create 16 in
  for j = 0 to n - 1 do
    Hashtbl.replace entries
      ((perm.(j) * n) + j)
      (4. +. (float_of_int n *. 0.5) +. Random.State.float st 2.)
  done;
  let extras = Random.State.int st (2 * n) in
  for _ = 1 to extras do
    let i = Random.State.int st n and j = Random.State.int st n in
    if not (Hashtbl.mem entries ((i * n) + j)) then
      Hashtbl.replace entries ((i * n) + j) (Random.State.float st 2. -. 1.)
  done;
  entries

let pattern_of_entries n entries =
  let b = Linsys.Pattern.builder n in
  Hashtbl.iter (fun key _ -> Linsys.Pattern.add b (key / n) (key mod n)) entries;
  Linsys.Pattern.build b

let assemble_real sys n entries =
  sys.Linsys.reset ();
  Hashtbl.iter
    (fun key v ->
      (* split the value into two adds to exercise accumulation *)
      sys.Linsys.add (key / n) (key mod n) (0.25 *. v);
      sys.Linsys.add (key / n) (key mod n) (0.75 *. v))
    entries

let prop_real_dense_csr_equiv =
  QCheck.Test.make ~count:200
    ~name:"csr real solve matches dense on random sparse systems"
    QCheck.(pair (int_bound 1000000) (int_range 2 14))
    (fun (seed, n) ->
      let st = Random.State.make [| seed; 17 |] in
      let entries = random_system st n in
      let pat = pattern_of_entries n entries in
      let dense = Linsys.real (Linsys.compile Linsys.Dense pat) in
      let csr = Linsys.real (Linsys.compile Linsys.Csr pat) in
      let b = Array.init n (fun _ -> Random.State.float st 4. -. 2.) in
      assemble_real dense n entries;
      assemble_real csr n entries;
      let xd = dense.Linsys.solve b in
      let xc = csr.Linsys.solve b in
      Vec.max_abs_diff xd xc < 1e-9)

let prop_complex_dense_csr_equiv =
  QCheck.Test.make ~count:150
    ~name:"csr complex factor matches dense on random G + jwC systems"
    QCheck.(pair (int_bound 1000000) (int_range 2 10))
    (fun (seed, n) ->
      let st = Random.State.make [| seed; 23 |] in
      let g_entries = random_system st n in
      let c_entries = Hashtbl.create 16 in
      Hashtbl.iter
        (fun key _ ->
          if Random.State.bool st then
            Hashtbl.replace c_entries key (Random.State.float st 1e-9))
        g_entries;
      let b = Linsys.Pattern.builder n in
      Hashtbl.iter (fun key _ -> Linsys.Pattern.add b (key / n) (key mod n))
        g_entries;
      let pat = Linsys.Pattern.build b in
      let assemble cs =
        cs.Linsys.creset ();
        Hashtbl.iter (fun key v -> cs.Linsys.add_g (key / n) (key mod n) v)
          g_entries;
        Hashtbl.iter (fun key v -> cs.Linsys.add_c (key / n) (key mod n) v)
          c_entries
      in
      let dense = Linsys.complex (Linsys.compile Linsys.Dense pat) in
      let csr = Linsys.complex (Linsys.compile Linsys.Csr pat) in
      assemble dense;
      assemble csr;
      let omega = 2. *. Float.pi *. 1e6 in
      let rhs =
        Array.init n (fun _ ->
            {
              Complex.re = Random.State.float st 2. -. 1.;
              im = Random.State.float st 2. -. 1.;
            })
      in
      let xd = (dense.Linsys.factor ~omega) rhs in
      let xc = (csr.Linsys.factor ~omega) rhs in
      let err = ref 0. in
      for i = 0 to n - 1 do
        err := Float.max !err (Complex.norm (Complex.sub xd.(i) xc.(i)))
      done;
      !err < 1e-9)

let test_csr_structural_singular () =
  (* a column with no structural entries cannot be matched *)
  let b = Linsys.Pattern.builder 2 in
  Linsys.Pattern.add b 0 0;
  Linsys.Pattern.add b 1 0;
  let pat = Linsys.Pattern.build b in
  match Linsys.compile Linsys.Csr pat with
  | exception Lu.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular for structurally singular pattern"

let test_csr_numeric_singular () =
  let b = Linsys.Pattern.builder 2 in
  List.iter (fun (i, j) -> Linsys.Pattern.add b i j) [ (0, 0); (0, 1); (1, 0); (1, 1) ];
  let pat = Linsys.Pattern.build b in
  let sys = Linsys.real (Linsys.compile Linsys.Csr pat) in
  sys.Linsys.reset ();
  List.iter
    (fun (i, j, v) -> sys.Linsys.add i j v)
    [ (0, 0, 1.); (0, 1, 2.); (1, 0, 2.); (1, 1, 4.) ];
  match sys.Linsys.solve [| 1.; 2. |] with
  | exception Lu.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular for rank-deficient values"

let test_backend_names () =
  Alcotest.(check (option string))
    "dense" (Some "dense")
    (Option.map Linsys.backend_name (Linsys.backend_of_string " Dense "));
  Alcotest.(check (option string))
    "csr" (Some "csr")
    (Option.map Linsys.backend_name (Linsys.backend_of_string "csr"));
  Alcotest.(check (option string))
    "sparse alias" (Some "csr")
    (Option.map Linsys.backend_name (Linsys.backend_of_string "sparse"));
  Alcotest.(check (option string))
    "unknown" None
    (Option.map Linsys.backend_name (Linsys.backend_of_string "cholesky"))

let test_dense_of_size_matches_mat () =
  let n = 4 in
  let st = Random.State.make [| 42 |] in
  let m = Mat.create n n in
  let sys = Linsys.real (Linsys.dense_of_size n) in
  sys.Linsys.reset ();
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let v =
        if i = j then 5. +. Random.State.float st 1.
        else Random.State.float st 2. -. 1.
      in
      Mat.set m i j v;
      sys.Linsys.add i j v
    done
  done;
  let b = Array.init n float_of_int in
  let expect = Lu.solve (Lu.factor m) b in
  let got = sys.Linsys.solve b in
  Alcotest.(check bool) "byte-identical to Mat/Lu" true
    (Array.for_all2 (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)) expect got)

(* ---------- circuit-level dense <-> csr equivalence ---------- *)

module Circuit = Yield_spice.Circuit
module Device = Yield_spice.Device
module Mna = Yield_spice.Mna
module Dcop = Yield_spice.Dcop
module Ac = Yield_spice.Ac
module Tran = Yield_spice.Tran
module Rng = Yield_stats.Rng
module Variation = Yield_process.Variation
module Gtb = Yield_circuits.Testbench

(* fresh functor instantiations so the per-functor session caches start
   empty whatever ran before in the suite *)
module Ota_tb = Gtb.Make (Yield_circuits.Ota)
module Miller_tb = Gtb.Make (Yield_circuits.Miller)

(* documented tolerance of the csr backend against dense (README): the two
   pivot orders differ, and one iterative-refinement step brings csr back
   to well below simulator tolerances on these well-conditioned systems *)
let csr_tol = 1e-6

let test_circuit_dc_ac_dense_csr () =
  let circuit, _ = Miller_tb.build Yield_circuits.Miller.default_params in
  let sys_d = Mna.sys ~backend:Linsys.Dense circuit in
  let sys_c = Mna.sys ~backend:Linsys.Csr circuit in
  let freqs = Gtb.freqs_of Gtb.default_conditions in
  (* scaled-down variation keeps every sample convergent (a full-sigma
     draw can legitimately push the bias point past convergence, which
     would test the retry chain rather than the solver seam) *)
  let spec = Variation.scale_spec 0.3 Variation.default_spec in
  for seed = 1 to 5 do
    (* a different variation sample per round randomises the matrix values
       while keeping the (cached) topology fixed *)
    let models = Variation.overrides spec (Rng.create seed) circuit in
    match
      ( Dcop.solve_with_retry ~sys:sys_d ~models circuit,
        Dcop.solve_with_retry ~sys:sys_c ~models circuit )
    with
    | Ok od, Ok oc ->
        let dv = Vec.max_abs_diff od.Dcop.x oc.Dcop.x in
        if dv > csr_tol then
          Alcotest.failf "seed %d: DC voltages differ by %g" seed dv;
        let bd = Ac.transfer_by_name ~sys:sys_d circuit od ~out:"out" ~freqs in
        let bc = Ac.transfer_by_name ~sys:sys_c circuit oc ~out:"out" ~freqs in
        Array.iteri
          (fun i rd ->
            let rc = bc.Ac.response.(i) in
            (* relative: the response spans many orders of magnitude *)
            let err =
              Complex.norm (Complex.sub rd rc)
              /. Float.max 1e-30 (Complex.norm rd)
            in
            if err > csr_tol then
              Alcotest.failf "seed %d freq %g: AC response differs by %g"
                seed bd.Ac.freqs.(i) err)
          bd.Ac.response
    | (Error _ as e), _ | _, (Error _ as e) ->
        (match e with
        | Error err ->
            Alcotest.failf "seed %d: DC solve failed: %s" seed
              (Dcop.error_to_string err)
        | Ok _ -> assert false)
  done

let test_circuit_tran_dense_csr () =
  (* an RC low-pass driven by a pulse plus a MOS follower: exercises the
     transient companion stamps and the per-step Newton solve through both
     backends *)
  let build () =
    let c = Circuit.create () in
    Circuit.add_vsource c ~name:"VDD" "vdd" "0" 3.3;
    let wave =
      Device.Pulse
        {
          v1 = 0.5;
          v2 = 1.5;
          delay = 1e-7;
          rise = 1e-8;
          fall = 1e-8;
          width = 1e-6;
          period = 0.;
        }
    in
    Circuit.add_vsource c ~name:"VIN" ~wave "in" "0" 0.5;
    Circuit.add_resistor c ~name:"R1" "in" "g" 1e3;
    Circuit.add_capacitor c ~name:"C1" "g" "0" 1e-12;
    Circuit.add_mosfet c ~name:"M1" ~d:"vdd" ~g:"g" ~s:"s" ~b:"0"
      ~model:Yield_process.Tech.c35.Yield_process.Tech.nmos ~w:10e-6 ~l:1e-6;
    Circuit.add_resistor c ~name:"RS" "s" "0" 10e3;
    c
  in
  let circuit = build () in
  let options = Tran.options ~t_stop:5e-7 ~dt:5e-9 () in
  let run backend =
    match Tran.run ~sys:(Mna.sys ~backend circuit) options circuit with
    | Ok r -> r
    | Error e -> Alcotest.failf "tran (%s): %s" (Linsys.backend_name backend) (Tran.error_to_string e)
  in
  let rd = run Linsys.Dense in
  let rc = run Linsys.Csr in
  let vd = Tran.voltage_by_name rd circuit "s" in
  let vc = Tran.voltage_by_name rc circuit "s" in
  Alcotest.(check int) "points" (Array.length vd) (Array.length vc);
  Array.iteri
    (fun i a ->
      if Float.abs (a -. vc.(i)) > csr_tol then
        Alcotest.failf "t=%g: dense %g vs csr %g" rd.Tran.times.(i) a vc.(i))
    vd

let test_session_pattern_cache () =
  let params i =
    let p = Yield_circuits.Ota.default_params in
    { p with Yield_circuits.Ota.w1 = p.Yield_circuits.Ota.w1 *. (1. +. (0.02 *. float_of_int i)) }
  in
  (* first sessions may compile (one pattern per backend)... *)
  let s_dense = Ota_tb.session (params 0) in
  let s_csr = Ota_tb.session ~solver:Linsys.Csr (params 0) in
  let builds0 = Linsys.Pattern.builds () in
  (* ...every further session of the same topology must hit the cache *)
  let sessions =
    List.init 4 (fun i ->
        [
          Ota_tb.session (params (i + 1));
          Ota_tb.session ~solver:Linsys.Csr (params (i + 1));
        ])
  in
  Alcotest.(check int) "no pattern rebuilds across sessions" builds0
    (Linsys.Pattern.builds ());
  Alcotest.(check string) "dense name" "dense"
    (Ota_tb.session_solver_name s_dense);
  Alcotest.(check string) "csr name" "csr" (Ota_tb.session_solver_name s_csr);
  List.iter
    (List.iter (fun s ->
         Alcotest.(check bool) "shared compiled session" true
           (Ota_tb.session_sys s == Ota_tb.session_sys s_dense
           || Ota_tb.session_sys s == Ota_tb.session_sys s_csr)))
    sessions

(* byte-identity of the batch patching path against the rebuild path: same
   rng state in, bit-identical perf out (the tentpole's contract) *)
let check_perf_bits name p_rebuild p_session =
  match (p_rebuild, p_session) with
  | None, None -> ()
  | Some (a : Gtb.perf), Some (b : Gtb.perf) ->
      let bits = Int64.bits_of_float in
      let field fname x y =
        Alcotest.(check int64) (name ^ " " ^ fname) (bits x) (bits y)
      in
      field "gain_db" a.Gtb.gain_db b.Gtb.gain_db;
      field "phase_margin_deg" a.Gtb.phase_margin_deg b.Gtb.phase_margin_deg;
      field "unity_gain_hz" a.Gtb.unity_gain_hz b.Gtb.unity_gain_hz;
      field "f3db_hz" a.Gtb.f3db_hz b.Gtb.f3db_hz;
      field "rout_est" a.Gtb.rout_est b.Gtb.rout_est
  | Some _, None | None, Some _ ->
      Alcotest.fail (name ^ ": rebuild and session paths disagree on failure")

let test_ota_overrides_bit_identical () =
  let params = Yield_circuits.Ota.default_params in
  let session = Ota_tb.session params in
  for seed = 11 to 15 do
    let rebuild =
      Ota_tb.evaluate_sampled ~spec:Variation.default_spec
        ~rng:(Rng.create seed) params
    in
    let patched =
      Ota_tb.evaluate_in_session session ~spec:Variation.default_spec
        ~rng:(Rng.create seed)
    in
    check_perf_bits (Printf.sprintf "ota seed %d" seed) rebuild patched
  done

let test_miller_overrides_bit_identical () =
  let params = Yield_circuits.Miller.default_params in
  let session = Miller_tb.session params in
  for seed = 11 to 15 do
    let rebuild =
      Miller_tb.evaluate_sampled ~spec:Variation.default_spec
        ~rng:(Rng.create seed) params
    in
    let patched =
      Miller_tb.evaluate_in_session session ~spec:Variation.default_spec
        ~rng:(Rng.create seed)
    in
    check_perf_bits (Printf.sprintf "miller seed %d" seed) rebuild patched
  done

let suites =
  [
    ( "linsys.kernel",
      [
        QCheck_alcotest.to_alcotest prop_real_dense_csr_equiv;
        QCheck_alcotest.to_alcotest prop_complex_dense_csr_equiv;
        Alcotest.test_case "structural singular" `Quick
          test_csr_structural_singular;
        Alcotest.test_case "numeric singular" `Quick test_csr_numeric_singular;
        Alcotest.test_case "backend names" `Quick test_backend_names;
        Alcotest.test_case "dense_of_size = Mat/Lu" `Quick
          test_dense_of_size_matches_mat;
      ] );
    ( "linsys.circuit",
      [
        Alcotest.test_case "dc+ac dense = csr (miller)" `Quick
          test_circuit_dc_ac_dense_csr;
        Alcotest.test_case "transient dense = csr" `Quick
          test_circuit_tran_dense_csr;
        Alcotest.test_case "session pattern cache" `Quick
          test_session_pattern_cache;
        Alcotest.test_case "ota overrides bit-identical" `Quick
          test_ota_overrides_bit_identical;
        Alcotest.test_case "miller overrides bit-identical" `Quick
          test_miller_overrides_bit_identical;
      ] );
  ]
