(* Corner-aware abstract interpretation (Corner_lint): interval-op unit
   tests, golden lint fixtures, and the load-bearing soundness property —
   every seeded Monte Carlo sample whose perturbed model parameters lie in
   the k-sigma box lands inside the predicted (gain, PM) enclosures. *)

module I = Yield_analyse.Interval
module CL = Yield_analyse.Corner_lint
module Diagnostic = Yield_analyse.Diagnostic
module Tb = Yield_circuits.Testbench
module Ota = Yield_circuits.Ota
module Ota_tb = Yield_circuits.Ota_testbench
module Miller = Yield_circuits.Miller
module Miller_tb = Yield_circuits.Miller_testbench
module Circuit = Yield_spice.Circuit
module Device = Yield_spice.Device
module Mosfet = Yield_spice.Mosfet
module Measure = Yield_spice.Measure
module Variation = Yield_process.Variation
module Rng = Yield_stats.Rng

let fixture name =
  (* the test binary runs from an arbitrary sandbox dir; walk up to the
     repo root that contains examples/ *)
  let rec find dir =
    let candidate = Filename.concat dir (Filename.concat "examples/netlists" name) in
    if Sys.file_exists candidate then candidate
    else
      let parent = Filename.dirname dir in
      if parent = dir then Alcotest.failf "fixture %s not found" name
      else find parent
  in
  find (Sys.getcwd ())

(* ---------- interval operation units (satellite: div/pow_int/monotone) ---------- *)

let check_encloses what (i : I.t) xs =
  List.iter
    (fun x ->
      if not (I.contains i x) then
        Alcotest.failf "%s: %s does not contain %.17g" what (I.to_string i) x)
    xs

let test_div_endpoint_zero () =
  (* divisor touching zero only at an endpoint gives a tight half-line *)
  let d = I.div (I.make 1. 2.) (I.make 0. 4.) in
  Alcotest.(check bool) "lo finite" true (d.I.lo > 0.2 && d.I.lo <= 0.25);
  Alcotest.(check (float 0.)) "hi inf" infinity d.I.hi;
  let d2 = I.div (I.make (-2.) (-1.)) (I.make 0. 4.) in
  Alcotest.(check (float 0.)) "neg lo inf" neg_infinity d2.I.lo;
  Alcotest.(check bool) "neg hi" true (d2.I.hi >= -0.25 && d2.I.hi < -0.2);
  let d3 = I.div (I.make 1. 2.) (I.make (-4.) 0.) in
  Alcotest.(check (float 0.)) "mirror lo inf" neg_infinity d3.I.lo;
  Alcotest.(check bool) "mirror hi" true (d3.I.hi >= -0.25 && d3.I.hi < -0.2);
  (* numerator spanning zero over such a divisor is unbounded both ways *)
  let d4 = I.div (I.make (-1.) 1.) (I.make 0. 4.) in
  Alcotest.(check bool) "span whole" true
    (d4.I.lo = neg_infinity && d4.I.hi = infinity);
  (* interior zero stays whole *)
  let d5 = I.div (I.make 1. 2.) (I.make (-1.) 1.) in
  Alcotest.(check bool) "interior whole" true
    (d5.I.lo = neg_infinity && d5.I.hi = infinity)

let test_div_encloses_samples () =
  (* outward rounding: float quotients of contained operands stay inside *)
  let a = I.make 1.1 3.3 and b = I.make 0.7 1.9 in
  let q = I.div a b in
  check_encloses "div" q
    [ 1.1 /. 0.7; 1.1 /. 1.9; 3.3 /. 0.7; 3.3 /. 1.9; 2.2 /. 1.3 ]

let test_pow_int () =
  let a = I.make (-2.) 3. in
  let sq = I.pow_int a 2 in
  check_encloses "square" sq [ 4.; 9.; 0.; 1.21 ];
  Alcotest.(check (float 0.)) "square lo" 0. sq.I.lo;
  let cube = I.pow_int a 3 in
  check_encloses "cube" cube [ -8.; 27.; 0. ];
  let inv2 = I.pow_int (I.make 2. 4.) (-2) in
  check_encloses "inv square" inv2 [ 0.25; 0.0625 ];
  Alcotest.check_raises "min_int rejected"
    (Invalid_argument "Interval.pow_int: exponent out of range") (fun () ->
      ignore (I.pow_int a min_int));
  (* n = 0 is the constant 1 *)
  check_encloses "zeroth" (I.pow_int a 0) [ 1. ]

let test_monotone_maps () =
  let e = I.monotone_incr exp (I.make 0. 1.) in
  check_encloses "exp" e [ 1.; Float.exp 1.; Float.exp 0.5 ];
  let l = I.monotone_decr (fun x -> -.log x) (I.make 1. 2.) in
  check_encloses "neg log" l [ 0.; -.log 2. ];
  Alcotest.check_raises "nan rejected"
    (Invalid_argument "Interval.monotone_incr: map returned NaN") (fun () ->
      ignore (I.monotone_incr sqrt (I.make (-1.) 1.)))

let test_widen () =
  let w = I.widen ~ulps:4 (I.point 1.) in
  Alcotest.(check bool) "strictly wider" true (w.I.lo < 1. && w.I.hi > 1.);
  Alcotest.(check bool) "4 ulps each side" true
    (w.I.hi = Float.succ (Float.succ (Float.succ (Float.succ 1.))))

(* ---------- soundness property (load-bearing contract) ---------- *)

(* a sample is covered by the analysis when, for SOME verified slice of the
   global-Vth plane, every perturbed MOS model parameter lies in that
   slice's per-device box (the decomposition report.slices describes) *)
let sample_in_box ~k ~spec ~slices original perturbed =
  let in_slice_box (s_n, s_p) (m0 : Mosfet.model) ~w ~l (mp : Mosfet.model) =
    let g = spec.Variation.global in
    let mm = spec.Variation.mismatch in
    let gvth, sg_kp, a_beta =
      match m0.Mosfet.polarity with
      | Mosfet.Nmos -> (s_n, g.Variation.sigma_kp_rel_n, mm.Variation.abeta_n)
      | Mosfet.Pmos -> (s_p, g.Variation.sigma_kp_rel_p, mm.Variation.abeta_p)
    in
    let sm_vth = Variation.mismatch_sigma_vth spec m0.Mosfet.polarity ~w ~l in
    let sm_beta = a_beta /. sqrt (w *. l) in
    let kk = I.of_bounds (-.k) k in
    let vbox =
      I.add (I.point m0.Mosfet.vth0) (I.add gvth (I.mul kk (I.point sm_vth)))
    in
    let kbox =
      I.mul (I.point m0.Mosfet.kp)
        (I.add (I.point 1.)
           (I.add (I.mul kk (I.point sg_kp)) (I.mul kk (I.point sm_beta))))
    in
    let lbox =
      I.mul (I.point m0.Mosfet.lambda0)
        (I.add (I.point 1.) (I.mul kk (I.point g.Variation.sigma_lambda_rel)))
    in
    I.contains vbox mp.Mosfet.vth0
    && I.contains kbox mp.Mosfet.kp
    && I.contains lbox mp.Mosfet.lambda0
  in
  let models c =
    Array.to_list (Circuit.devices c)
    |> List.filter_map (function
         | Device.Mosfet { model; w; l; _ } -> Some (model, w, l)
         | _ -> None)
  in
  let origs = models original and perts = models perturbed in
  List.exists
    (fun slice ->
      List.for_all2
        (fun (m0, w, l) (mp, _, _) -> in_slice_box slice m0 ~w ~l mp)
        origs perts)
    slices

let in_opt what (enc : I.t option) x =
  match enc with
  | None -> ()
  | Some i ->
      if not (I.contains i x) then
        Alcotest.failf "%s = %.17g escapes enclosure %s" what x (I.to_string i)

(* The enclosure covers the truncated ±k·sigma box, so the property is
   geometric: ANY parameter point inside the box must land inside the
   enclosures, whatever its sampling density.  Drawing per-axis truncated
   normals (rejection on each scalar deviate) therefore exercises exactly
   the contract -- these are the flow's MC samples that happen to fall in
   the box -- while keeping every sample usable at small k, where
   unconditioned 25-dimensional draws would essentially never qualify. *)
let soundness_case ~name ~samples ~seed ~k ~conditions ~circuit
    ~(bode_of_circuit : Circuit.t -> Yield_spice.Ac.bode option) () =
  let spec = Variation.default_spec in
  let window = { CL.min_gain_db = 0.; min_pm_deg = 0. } in
  let freqs = Tb.freqs_of conditions in
  let report = CL.analyse_circuit ~k_sigma:k ~spec ~window ~freqs ~out:"out" circuit in
  if not report.CL.dc_verified then
    Alcotest.failf "%s: no verified DC enclosure (%s)" name
      (String.concat "; " report.CL.notes);
  let enc = report.CL.enclosure in
  if enc.CL.gain_db = None then
    Alcotest.failf "%s: no gain enclosure (%s)" name
      (String.concat "; " report.CL.notes);
  let rng = Rng.create seed in
  let rec truncated_z () =
    let z = Rng.normal rng ~mean:0. ~sigma:1. in
    if Float.abs z <= k then z else truncated_z ()
  in
  let skipped = ref 0 and degenerate = ref 0 and checked = ref 0 in
  for _ = 1 to samples do
    let perturbed =
      Variation.apply_overrides circuit
        (Variation.overrides_gen spec truncated_z circuit)
    in
    if not (sample_in_box ~k ~spec ~slices:report.CL.slices circuit perturbed)
    then incr skipped
    else
      match bode_of_circuit perturbed with
      | None -> incr degenerate
      | Some b -> (
          incr checked;
          in_opt (name ^ " gain") enc.CL.gain_db (Measure.dc_gain_db b);
          (match Measure.unity_gain_freq b with
          | Some fu -> in_opt (name ^ " fu") enc.CL.unity_gain_hz fu
          | None -> ());
          match Measure.phase_margin_deg b with
          | Some pm -> in_opt (name ^ " pm") enc.CL.pm_deg pm
          | None -> ())
  done;
  (* every truncated draw lies in the box by construction, so any skip
     beyond boundary rounding means the conditioning (hence the box
     construction itself) is wrong *)
  if !skipped * 20 > samples then
    Alcotest.failf "%s: %d of %d truncated samples outside the box" name
      !skipped samples;
  if !checked * 2 < samples then
    Alcotest.failf "%s: only %d of %d samples produced a bode" name !checked
      samples

let fast_conditions =
  { Tb.default_conditions with Tb.points_per_decade = 5; f_lo = 100.; f_hi = 1e9 }

let test_soundness_ota () =
  let circuit, out = Ota_tb.build ~conditions:fast_conditions Ota.default_params in
  Alcotest.(check string) "probe node" "out" out;
  soundness_case ~name:"ota" ~samples:1000 ~seed:2008 ~k:0.5
    ~conditions:fast_conditions ~circuit
    ~bode_of_circuit:(Ota_tb.bode_of_circuit ~conditions:fast_conditions)
    ()

let test_soundness_miller () =
  let circuit, out =
    Miller_tb.build ~conditions:fast_conditions Miller.default_params
  in
  Alcotest.(check string) "probe node" "out" out;
  soundness_case ~name:"miller" ~samples:1000 ~seed:2009 ~k:0.5
    ~conditions:fast_conditions ~circuit
    ~bode_of_circuit:(Miller_tb.bode_of_circuit ~conditions:fast_conditions)
    ()

(* ---------- verdicts and golden lint fixtures ---------- *)

let render diags =
  Diagnostic.list_to_json diags |> Yield_obs.Json.to_string

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_golden name diags =
  let got = render diags ^ "\n" in
  match Sys.getenv_opt "YIELDLAB_BLESS" with
  | Some _ ->
      (* regenerate next to the deck fixtures: YIELDLAB_BLESS=1 dune runtest *)
      let dir = Filename.dirname (fixture "rc_lowpass.cir") in
      let oc = open_out (Filename.concat dir name) in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
          output_string oc got)
  | None ->
      let want = read_file (fixture name) in
      if got <> want then
        Alcotest.failf "golden mismatch for %s:\n--- want ---\n%s--- got ---\n%s"
          name want got

let test_fixture_provably_fail () =
  let diags = CL.check_file (fixture "corner_fail.cir") in
  (match
     List.find_opt (fun d -> d.Diagnostic.code = "Y001") diags
   with
  | Some _ -> ()
  | None ->
      Alcotest.failf "expected Y001, got: %s" (Diagnostic.list_to_text diags));
  check_golden "corner_fail.golden.json"
    (List.map (fun d -> { d with Diagnostic.file = None }) diags)

let test_fixture_undecided () =
  let window = { CL.min_gain_db = 14.; min_pm_deg = 45. } in
  let diags = CL.check_file ~window (fixture "corner_amp.cir") in
  (match List.find_opt (fun d -> d.Diagnostic.code = "Y003") diags with
  | Some _ -> ()
  | None ->
      Alcotest.failf "expected Y003, got: %s" (Diagnostic.list_to_text diags));
  check_golden "corner_amp.golden.json"
    (List.map (fun d -> { d with Diagnostic.file = None }) diags)

let test_passive_deck_has_no_dcodes () =
  let diags = CL.check_file (fixture "rc_lowpass.cir") in
  List.iter
    (fun d ->
      if String.length d.Diagnostic.code > 0 && d.Diagnostic.code.[0] = 'D' then
        Alcotest.failf "unexpected D-code on a passive deck: %s"
          (Diagnostic.to_text d))
    diags

let test_diagnostics_rendering () =
  (* a synthetic report exercises the Y-code renderer without a solve *)
  let report =
    {
      CL.verdict = CL.Provably_fail;
      enclosure =
        {
          CL.gain_db = Some (I.make 2. 4.);
          unity_gain_hz = None;
          pm_deg = Some (I.make 30. 40.);
        };
      dc_verified = true;
      devices =
        [ { CL.device = "M1"; proved = true; detail = "saturated across the box" } ];
      slices = [];
      notes = [];
    }
  in
  let window = { CL.min_gain_db = 10.; min_pm_deg = 45. } in
  let diags = CL.diagnostics ~subject:"out" ~window report in
  let y = List.find (fun d -> d.Diagnostic.code = "Y001") diags in
  Alcotest.(check bool) "warning severity" true
    (y.Diagnostic.severity = Diagnostic.Warning);
  Alcotest.(check bool) "evidence quoted" true
    (let msg = y.Diagnostic.message in
     let has needle =
       let nl = String.length needle and ml = String.length msg in
       let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
       go 0
     in
     has "[2, 4]" && has "[30, 40]");
  let d1 = List.find (fun d -> d.Diagnostic.code = "D001" ) diags in
  Alcotest.(check string) "device subject" "M1" d1.Diagnostic.subject;
  (* suppressing the verdict leaves only D-codes *)
  let dcodes = CL.diagnostics ~emit_verdict:false ~subject:"out" ~window report in
  Alcotest.(check bool) "no Y-code" true
    (List.for_all (fun d -> d.Diagnostic.code.[0] = 'D') dcodes)

let suites =
  [
    ( "corner-interval-ops",
      [
        Alcotest.test_case "div endpoint zero" `Quick test_div_endpoint_zero;
        Alcotest.test_case "div encloses samples" `Quick test_div_encloses_samples;
        Alcotest.test_case "pow_int" `Quick test_pow_int;
        Alcotest.test_case "monotone maps" `Quick test_monotone_maps;
        Alcotest.test_case "widen" `Quick test_widen;
      ] );
    ( "corner-soundness",
      [
        Alcotest.test_case "ota enclosures contain MC" `Slow test_soundness_ota;
        Alcotest.test_case "miller enclosures contain MC" `Slow
          test_soundness_miller;
      ] );
    ( "corner-fixtures",
      [
        Alcotest.test_case "provably-fail divider" `Quick
          test_fixture_provably_fail;
        Alcotest.test_case "undecided amplifier" `Quick test_fixture_undecided;
        Alcotest.test_case "passive deck has no D-codes" `Quick
          test_passive_deck_has_no_dcodes;
        Alcotest.test_case "diagnostics rendering" `Quick
          test_diagnostics_rendering;
      ] );
  ]
