(* Tests for the yield_process library: technology models, variation
   sampling, corners, Monte Carlo machinery. *)

module Tech = Yield_process.Tech
module Variation = Yield_process.Variation
module Corner = Yield_process.Corner
module Montecarlo = Yield_process.Montecarlo
module Pool = Yield_exec.Pool
module Mosfet = Yield_spice.Mosfet
module Circuit = Yield_spice.Circuit
module Device = Yield_spice.Device
module Rng = Yield_stats.Rng
module Summary = Yield_stats.Summary

let check_float ?(eps = 1e-9) what expected actual =
  if Float.abs (expected -. actual) > eps *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %.10g, got %.10g" what expected actual

let test_tech_sanity () =
  let t = Tech.c35 in
  Alcotest.(check bool) "vdd" true (t.Tech.vdd = 3.3);
  Alcotest.(check bool) "nmos polarity" true
    (t.Tech.nmos.Mosfet.polarity = Mosfet.Nmos);
  Alcotest.(check bool) "pmos polarity" true
    (t.Tech.pmos.Mosfet.polarity = Mosfet.Pmos);
  Alcotest.(check bool) "pmos weaker" true
    (t.Tech.pmos.Mosfet.kp < t.Tech.nmos.Mosfet.kp)

let test_pelgrom_scaling () =
  let spec = Variation.default_spec in
  let small = Variation.mismatch_sigma_vth spec Mosfet.Nmos ~w:10e-6 ~l:1e-6 in
  let big = Variation.mismatch_sigma_vth spec Mosfet.Nmos ~w:40e-6 ~l:1e-6 in
  check_float ~eps:1e-9 "sigma halves with 4x area" (small /. 2.) big

let test_zero_spec_is_identity () =
  let rng = Rng.create 1 in
  let draw = Variation.draw_global Variation.zero_spec rng in
  let model = Tech.c35.Tech.nmos in
  let perturbed =
    Variation.perturb_model Variation.zero_spec draw rng ~w:10e-6 ~l:1e-6 model
  in
  check_float "vth unchanged" model.Mosfet.vth0 perturbed.Mosfet.vth0;
  check_float "kp unchanged" model.Mosfet.kp perturbed.Mosfet.kp

let test_scale_spec () =
  let spec = Variation.scale_spec 2. Variation.default_spec in
  check_float "vth sigma doubled"
    (2. *. Variation.default_spec.Variation.global.Variation.sigma_vth_n)
    spec.Variation.global.Variation.sigma_vth_n;
  check_float "avt doubled"
    (2. *. Variation.default_spec.Variation.mismatch.Variation.avt_n)
    spec.Variation.mismatch.Variation.avt_n

let test_perturb_circuit_structure () =
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"V1" "vdd" "0" 3.3;
  Circuit.add_mosfet c ~name:"M1" ~d:"vdd" ~g:"vdd" ~s:"0" ~b:"0"
    ~model:Tech.c35.Tech.nmos ~w:10e-6 ~l:1e-6;
  let rng = Rng.create 5 in
  let p = Variation.perturb_circuit Variation.default_spec rng c in
  Alcotest.(check int) "device count preserved" 2 (Array.length (Circuit.devices p));
  (* original untouched *)
  (match Circuit.find_device c "M1" with
  | Device.Mosfet m ->
      check_float "original vth" Tech.c35.Tech.nmos.Mosfet.vth0 m.model.Mosfet.vth0
  | _ -> Alcotest.fail "M1 not a mosfet");
  match Circuit.find_device p "M1" with
  | Device.Mosfet m ->
      Alcotest.(check bool) "perturbed vth differs" true
        (m.model.Mosfet.vth0 <> Tech.c35.Tech.nmos.Mosfet.vth0)
  | _ -> Alcotest.fail "perturbed M1 not a mosfet"

let test_perturbation_statistics () =
  (* global + mismatch sigma should combine in quadrature *)
  let spec = Variation.default_spec in
  let rng = Rng.create 7 in
  let n = 20_000 in
  let vths =
    Array.init n (fun _ ->
        let draw = Variation.draw_global spec rng in
        let m =
          Variation.perturb_model spec draw rng ~w:10e-6 ~l:1e-6
            Tech.c35.Tech.nmos
        in
        m.Mosfet.vth0 -. Tech.c35.Tech.nmos.Mosfet.vth0)
  in
  let s = Summary.of_array vths in
  let sigma_mismatch =
    Variation.mismatch_sigma_vth spec Mosfet.Nmos ~w:10e-6 ~l:1e-6
  in
  let sigma_global = spec.Variation.global.Variation.sigma_vth_n in
  let expected = sqrt ((sigma_global ** 2.) +. (sigma_mismatch ** 2.)) in
  check_float ~eps:0.03 "combined sigma" expected (Summary.stddev s);
  check_float ~eps:0.05 "zero mean"
    0.
    (Summary.mean s /. expected)

let test_corner_directions () =
  let spec = Variation.default_spec in
  let ff = Corner.apply spec Corner.Ff Tech.c35 in
  let ss = Corner.apply spec Corner.Ss Tech.c35 in
  let tt = Corner.apply spec Corner.Tt Tech.c35 in
  Alcotest.(check bool) "ff lowers nmos vth" true
    (ff.Tech.nmos.Mosfet.vth0 < Tech.c35.Tech.nmos.Mosfet.vth0);
  Alcotest.(check bool) "ss raises nmos vth" true
    (ss.Tech.nmos.Mosfet.vth0 > Tech.c35.Tech.nmos.Mosfet.vth0);
  check_float "tt is nominal" Tech.c35.Tech.nmos.Mosfet.vth0
    tt.Tech.nmos.Mosfet.vth0;
  Alcotest.(check bool) "ff raises kp" true
    (ff.Tech.nmos.Mosfet.kp > Tech.c35.Tech.nmos.Mosfet.kp)

let test_corner_fs_mixed () =
  let spec = Variation.default_spec in
  let fs = Corner.apply spec Corner.Fs Tech.c35 in
  Alcotest.(check bool) "fs: fast nmos" true
    (fs.Tech.nmos.Mosfet.vth0 < Tech.c35.Tech.nmos.Mosfet.vth0);
  Alcotest.(check bool) "fs: slow pmos" true
    (fs.Tech.pmos.Mosfet.vth0 > Tech.c35.Tech.pmos.Mosfet.vth0)

let test_corner_names () =
  List.iter
    (fun c ->
      match Corner.of_string (Corner.to_string c) with
      | Some c' when c' = c -> ()
      | _ -> Alcotest.fail "corner name roundtrip")
    Corner.all

let test_mc_run_collects () =
  let rng = Rng.create 3 in
  let results =
    Montecarlo.run ~samples:100 ~rng (fun r ->
        let x = Rng.float r in
        if x < 0.25 then None else Some x)
  in
  Alcotest.(check bool) "some dropped" true (Array.length results < 100);
  Alcotest.(check bool) "most kept" true (Array.length results > 50)

let test_mc_deterministic () =
  let go () =
    let rng = Rng.create 11 in
    Montecarlo.run ~samples:20 ~rng (fun r -> Some (Rng.float r))
  in
  Alcotest.(check bool) "repeatable" true (go () = go ())

let test_mc_parallel_matches_serial () =
  let f (r : Rng.t) =
    let x = Rng.float r in
    if x < 0.2 then None else Some (x +. Rng.float r)
  in
  let serial = Montecarlo.run ~samples:64 ~rng:(Rng.create 21) f in
  let parallel =
    Pool.with_pool ~jobs:4 (fun pool ->
        Montecarlo.run_pool ~pool ~samples:64 ~rng:(Rng.create 21) f)
  in
  Alcotest.(check bool) "identical results" true (serial = parallel)

let test_mc_parallel_circuit_evaluation () =
  (* the real workload: perturbed circuit evaluations across domains *)
  let params = Yield_circuits.Ota.default_params in
  let spec = Variation.default_spec in
  let eval r =
    Option.map
      (fun (p : Yield_circuits.Ota_testbench.perf) ->
        p.Yield_circuits.Ota_testbench.gain_db)
      (Yield_circuits.Ota_testbench.evaluate_sampled ~spec ~rng:r params)
  in
  let serial = Montecarlo.run ~samples:8 ~rng:(Rng.create 9) eval in
  let parallel =
    Pool.with_pool ~jobs:4 (fun pool ->
        Montecarlo.run_pool ~pool ~samples:8 ~rng:(Rng.create 9) eval)
  in
  Alcotest.(check bool) "same gains" true (serial = parallel)

let test_yield_estimate () =
  let e = Montecarlo.estimate_yield ~pass:95 ~total:100 in
  check_float "point estimate" 0.95 e.Montecarlo.yield;
  Alcotest.(check bool) "ci contains estimate" true
    (e.Montecarlo.ci_low <= 0.95 && 0.95 <= e.Montecarlo.ci_high);
  Alcotest.(check bool) "ci nontrivial" true
    (e.Montecarlo.ci_low > 0.85 && e.Montecarlo.ci_high < 1.0);
  let full = Montecarlo.estimate_yield ~pass:100 ~total:100 in
  check_float "full yield" 1. full.Montecarlo.yield;
  Alcotest.(check bool) "full-yield ci below 1" true
    (full.Montecarlo.ci_low < 1.)

let test_yield_invalid () =
  (match Montecarlo.estimate_yield ~pass:0 ~total:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected failure on empty");
  match Montecarlo.estimate_yield ~pass:5 ~total:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected failure on pass > total"

let test_spread_pct () =
  (* constant sample: spread collapses to |mean - nominal| envelope *)
  let xs = Array.make 50 10. in
  check_float "constant at nominal" 0. (Montecarlo.spread_pct xs ~nominal:10.);
  let shifted = Montecarlo.spread_pct xs ~nominal:9. in
  check_float ~eps:1e-6 "constant off nominal" (100. *. 1. /. 9.) shifted

let prop_spread_nonnegative =
  QCheck.Test.make ~count:100 ~name:"spread_pct is non-negative"
    QCheck.(pair (int_bound 10000) (float_range 1. 100.))
    (fun (seed, nominal) ->
      let rng = Rng.create seed in
      let xs = Array.init 30 (fun _ -> nominal +. Rng.gaussian rng) in
      Montecarlo.spread_pct xs ~nominal >= 0.)

let suites =
  [
    ( "process.tech",
      [ Alcotest.test_case "c35 sanity" `Quick test_tech_sanity ] );
    ( "process.variation",
      [
        Alcotest.test_case "pelgrom scaling" `Quick test_pelgrom_scaling;
        Alcotest.test_case "zero spec identity" `Quick test_zero_spec_is_identity;
        Alcotest.test_case "scale_spec" `Quick test_scale_spec;
        Alcotest.test_case "perturb circuit" `Quick test_perturb_circuit_structure;
        Alcotest.test_case "perturbation statistics" `Slow
          test_perturbation_statistics;
      ] );
    ( "process.corner",
      [
        Alcotest.test_case "directions" `Quick test_corner_directions;
        Alcotest.test_case "mixed corner" `Quick test_corner_fs_mixed;
        Alcotest.test_case "name roundtrip" `Quick test_corner_names;
      ] );
    ( "process.montecarlo",
      [
        Alcotest.test_case "run collects" `Quick test_mc_run_collects;
        Alcotest.test_case "deterministic" `Quick test_mc_deterministic;
        Alcotest.test_case "parallel matches serial" `Quick test_mc_parallel_matches_serial;
        Alcotest.test_case "parallel circuit eval" `Slow test_mc_parallel_circuit_evaluation;
        Alcotest.test_case "yield estimate" `Quick test_yield_estimate;
        Alcotest.test_case "yield invalid" `Quick test_yield_invalid;
        Alcotest.test_case "spread pct" `Quick test_spread_pct;
        QCheck_alcotest.to_alcotest prop_spread_nonnegative;
      ] );
  ]
