(* Tests for the yield_obs telemetry library: span nesting and per-domain
   merging, histogram quantiles, counter atomicity across domains, JSON /
   JSONL / Chrome-trace serialisation round-trips — plus the determinism
   contract of the instrumented Monte Carlo driver. *)

module Json = Yield_obs.Json
module Histogram = Yield_obs.Histogram
module Metrics = Yield_obs.Metrics
module Span = Yield_obs.Span
module Sampler = Yield_obs.Sampler
module Sink = Yield_obs.Sink
module Stream = Yield_obs.Stream
module Montecarlo = Yield_process.Montecarlo
module Pool = Yield_exec.Pool
module Rng = Yield_stats.Rng

let check_float ?(eps = 1e-9) what expected actual =
  if Float.abs (expected -. actual) > eps *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %.10g, got %.10g" what expected actual

(* ---------- spans ---------- *)

let events_named name =
  List.filter (fun (e : Span.event) -> e.Span.name = name) (Span.events ())

let test_span_nesting () =
  Span.clear ();
  let v =
    Span.with_ ~name:"t.outer" (fun () ->
        let a = Span.with_ ~name:"t.inner" (fun () -> 20) in
        let b = Span.with_ ~name:"t.inner" (fun () -> 22) in
        a + b)
  in
  Alcotest.(check int) "value through spans" 42 v;
  let outer =
    match events_named "t.outer" with
    | [ e ] -> e
    | es -> Alcotest.failf "expected 1 outer event, got %d" (List.length es)
  in
  let inners = events_named "t.inner" in
  Alcotest.(check int) "two inner events" 2 (List.length inners);
  Alcotest.(check int) "outer at depth 0" 0 outer.Span.depth;
  List.iter
    (fun (e : Span.event) ->
      Alcotest.(check int) "inner at depth 1" 1 e.Span.depth;
      Alcotest.(check int) "same domain" outer.Span.tid e.Span.tid;
      Alcotest.(check bool) "inner starts after outer" true
        (e.Span.ts_us >= outer.Span.ts_us);
      Alcotest.(check bool) "inner ends before outer" true
        (e.Span.ts_us +. e.Span.dur_us
        <= outer.Span.ts_us +. outer.Span.dur_us +. 1e-6))
    inners

let test_span_survives_exception () =
  Span.clear ();
  (try
     Span.with_ ~name:"t.raises" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "event recorded despite raise" 1
    (List.length (events_named "t.raises"))

let test_span_merges_domains () =
  Span.clear ();
  let domains =
    Array.init 3 (fun i ->
        Domain.spawn (fun () ->
            Span.with_ ~name:"t.domain" (fun () -> ignore (Sys.opaque_identity i))))
  in
  Array.iter Domain.join domains;
  Span.with_ ~name:"t.domain" (fun () -> ());
  let es = events_named "t.domain" in
  Alcotest.(check int) "events from every domain survive the join" 4
    (List.length es);
  let tids = List.sort_uniq compare (List.map (fun e -> e.Span.tid) es) in
  Alcotest.(check int) "distinct domain ids" 4 (List.length tids)

(* ---------- histograms ---------- *)

let test_histogram_quantiles () =
  let h = Histogram.create () in
  (* 1..100 in a scrambled order: quantiles must not depend on arrival *)
  let xs = Array.init 100 (fun i -> float_of_int (((i * 37) mod 100) + 1)) in
  Array.iter (Histogram.observe h) xs;
  let s = Histogram.summarize h in
  Alcotest.(check int) "count" 100 s.Histogram.count;
  check_float "sum" 5050. s.Histogram.sum;
  check_float "mean" 50.5 s.Histogram.mean;
  check_float "min" 1. s.Histogram.min;
  check_float "max" 100. s.Histogram.max;
  check_float "p50 (exact on interpolated order stats)" 50.5 s.Histogram.p50;
  check_float "p90" 90.1 s.Histogram.p90;
  check_float "p95" 95.05 s.Histogram.p95;
  check_float "p99" 99.01 s.Histogram.p99;
  check_float "quantile 0" 1. (Histogram.quantile h 0.);
  check_float "quantile 1" 100. (Histogram.quantile h 1.)

let test_histogram_reservoir () =
  (* beyond capacity the moments stay exact and quantiles stay plausible *)
  let h = Histogram.create ~capacity:64 () in
  for i = 1 to 10_000 do
    Histogram.observe h (float_of_int i)
  done;
  let s = Histogram.summarize h in
  Alcotest.(check int) "count exact" 10_000 s.Histogram.count;
  check_float "min exact" 1. s.Histogram.min;
  check_float "max exact" 10_000. s.Histogram.max;
  check_float "mean exact" 5000.5 s.Histogram.mean;
  Alcotest.(check bool) "p50 in bulk" true
    (s.Histogram.p50 > 2000. && s.Histogram.p50 < 8000.)

let test_histogram_empty () =
  let h = Histogram.create () in
  let s = Histogram.summarize h in
  Alcotest.(check int) "count" 0 s.Histogram.count;
  check_float "sum of empty" 0. s.Histogram.sum;
  (* no observations means no min/max/quantiles — nan, not a fake 0 that a
     dashboard would read as "the fastest span took 0 s" *)
  List.iter
    (fun (what, v) ->
      Alcotest.(check bool) (what ^ " of empty is nan") true (Float.is_nan v))
    [
      ("mean", s.Histogram.mean);
      ("min", s.Histogram.min);
      ("max", s.Histogram.max);
      ("p50", s.Histogram.p50);
      ("p95", s.Histogram.p95);
      ("p99", s.Histogram.p99);
    ];
  (* and the JSON sinks therefore emit null for them *)
  match Sink.histogram_fields s |> List.assoc "min" |> Json.to_string with
  | "null" -> ()
  | other -> Alcotest.failf "empty min serialised as %s, want null" other

(* ---------- metrics registry ---------- *)

let test_counter_concurrent () =
  let c = Metrics.counter "t.concurrent" in
  let before = Metrics.value c in
  let per_domain = 25_000 in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.incr c
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "no lost increments" (4 * per_domain)
    (Metrics.value c - before)

let test_registry_shares_handles () =
  let a = Metrics.counter "t.shared" in
  let b = Metrics.counter "t.shared" in
  let v0 = Metrics.value a in
  Metrics.add b 5;
  Alcotest.(check int) "same instrument" (v0 + 5) (Metrics.value a);
  let snap = Metrics.snapshot () in
  Alcotest.(check bool) "snapshot contains the counter" true
    (List.mem_assoc "t.shared" snap.Metrics.counters)

(* ---------- serialisation ---------- *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\nd\te");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5e-7);
        ("whole", Json.Float 3.0);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Float 2.25; Json.String "x" ]);
        ("o", Json.Obj [ ("nested", Json.Bool false) ]);
      ]
  in
  let text = Json.to_string j in
  (match Json.parse text with
  | Json.Obj kvs ->
      Alcotest.(check int) "all members" 8 (List.length kvs);
      Alcotest.(check string) "string escapes" "a\"b\\c\nd\te"
        (Option.get (Json.string_value (List.assoc "s" kvs)));
      Alcotest.(check bool) "int" true (List.assoc "i" kvs = Json.Int (-42));
      check_float "float" 1.5e-7
        (Option.get (Json.number_value (List.assoc "f" kvs)));
      check_float "whole float" 3.0
        (Option.get (Json.number_value (List.assoc "whole" kvs)))
  | _ -> Alcotest.fail "parsed to a non-object");
  (* second round trip is a fixpoint *)
  Alcotest.(check string) "fixpoint" text (Json.to_string (Json.parse text))

let test_chrome_trace_roundtrip () =
  let events =
    [
      { Span.name = "alpha"; ts_us = 10.5; dur_us = 1000.25; tid = 0; depth = 0; key = 0 };
      { Span.name = "beta"; ts_us = 20.; dur_us = 4.; tid = 3; depth = 1; key = 2 };
    ]
  in
  let text = Json.to_string (Sink.chrome_trace_of_events events) in
  match Json.parse text with
  | Json.List items ->
      Alcotest.(check int) "one trace event per span" 2 (List.length items);
      List.iter2
        (fun (e : Span.event) item ->
          let get k = Option.get (Json.member k item) in
          Alcotest.(check string) "name" e.Span.name
            (Option.get (Json.string_value (get "name")));
          Alcotest.(check string) "complete event" "X"
            (Option.get (Json.string_value (get "ph")));
          check_float "ts" e.Span.ts_us
            (Option.get (Json.number_value (get "ts")));
          check_float "dur" e.Span.dur_us
            (Option.get (Json.number_value (get "dur")));
          check_float "pid" 1. (Option.get (Json.number_value (get "pid")));
          check_float "tid" (float_of_int e.Span.tid)
            (Option.get (Json.number_value (get "tid"))))
        events items
  | _ -> Alcotest.fail "chrome trace is not a JSON array"

let test_jsonl_roundtrip () =
  let h = Metrics.histogram "t.jsonl.hist" in
  for i = 1 to 10 do
    Metrics.observe h (float_of_int i)
  done;
  Metrics.add (Metrics.counter "t.jsonl.counter") 7;
  let spans =
    [
      {
        Span.name = "t.jsonl.span";
        ts_us = 1.;
        dur_us = 2.;
        tid = 0;
        depth = 0;
        key = 0;
      };
    ]
  in
  let text = Sink.jsonl_of ~spans (Metrics.snapshot ()) in
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check bool) "several lines" true (List.length lines >= 3);
  let parsed = List.map Json.parse lines in
  let of_type ty name =
    List.find_opt
      (fun j ->
        Json.member "type" j = Some (Json.String ty)
        && Json.member "name" j = Some (Json.String name))
      parsed
  in
  (match of_type "counter" "t.jsonl.counter" with
  | Some j ->
      Alcotest.(check bool) "counter value present" true
        (match Json.member "value" j with Some (Json.Int v) -> v >= 7 | _ -> false)
  | None -> Alcotest.fail "counter line missing");
  (match of_type "histogram" "t.jsonl.hist" with
  | Some j ->
      List.iter
        (fun field ->
          Alcotest.(check bool) (field ^ " present") true
            (Option.is_some (Json.member field j)))
        [ "count"; "sum"; "mean"; "min"; "max"; "p50"; "p90"; "p95"; "p99" ]
  | None -> Alcotest.fail "histogram line missing");
  match of_type "span" "t.jsonl.span" with
  | Some _ -> ()
  | None -> Alcotest.fail "span line missing"

(* ---------- span ring, bus and keys ---------- *)

let test_ring_bounds_memory () =
  Span.clear ();
  let saved = Span.ring_capacity () in
  Span.set_ring_capacity 8;
  Fun.protect
    ~finally:(fun () -> Span.set_ring_capacity saved)
    (fun () ->
      for _ = 1 to 100 do
        Span.with_ ~name:"t.ring" (fun () -> ())
      done;
      Alcotest.(check int) "window holds exactly the capacity" 8
        (List.length (Span.events ()));
      Alcotest.(check int) "the rest were rotated out" 92 (Span.dropped ());
      (* the window is the most recent events, in start order *)
      let es = events_named "t.ring" in
      Alcotest.(check bool) "window sorted by start" true
        (List.sort
           (fun (a : Span.event) b -> Float.compare a.Span.ts_us b.Span.ts_us)
           es
        = es);
      Span.clear ();
      Alcotest.(check int) "clear resets the drop count" 0 (Span.dropped ()))

let test_bus_sees_open_and_close () =
  Span.clear ();
  let seen = ref [] in
  let id =
    Span.subscribe (fun phase (e : Span.event) ->
        if e.Span.name = "t.bus" then seen := (phase, e.Span.dur_us) :: !seen)
  in
  Fun.protect
    ~finally:(fun () -> Span.unsubscribe id)
    (fun () ->
      Span.with_ ~name:"t.bus" (fun () -> ());
      match List.rev !seen with
      | [ (Span.Opened, d0); (Span.Closed, d1) ] ->
          check_float "open event has no duration yet" 0. d0;
          Alcotest.(check bool) "close event has the duration" true (d1 >= 0.)
      | other -> Alcotest.failf "expected open+close, saw %d" (List.length other));
  Span.with_ ~name:"t.bus" (fun () -> ());
  Alcotest.(check int) "unsubscribed listener is silent" 2 (List.length !seen)

let test_span_key_sequences () =
  Span.reset_keys ();
  let k0 = Span.next_key "t.seq.a" in
  let k1 = Span.next_key "t.seq.a" in
  let k2 = Span.next_key "t.seq.b" in
  let k3 = Span.next_key "t.seq.a" in
  Alcotest.(check (list int)) "per-name ordinals" [ 0; 1; 0; 2 ] [ k0; k1; k2; k3 ];
  Span.reset_keys ();
  Alcotest.(check int) "reset restarts the sequence" 0 (Span.next_key "t.seq.a")

(* ---------- deterministic sampling ---------- *)

let with_sampler spec f =
  (match Sampler.configure spec with
  | Ok () -> ()
  | Error e -> Alcotest.failf "spec %S rejected: %s" spec e);
  Fun.protect ~finally:Sampler.clear f

let test_sampler_spec_parsing () =
  Alcotest.(check bool) "good spec" true
    (Result.is_ok (Sampler.parse "mc.batch=0.1;exec.*=0,ga.generation=1"));
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "bad spec %S rejected" bad)
        true
        (Result.is_error (Sampler.parse bad)))
    [ "mc.batch"; "mc.batch=2"; "mc.batch=-0.5"; "=0.5"; "mc.batch=x" ]

let test_sampler_rates_and_precedence () =
  with_sampler "t.samp.always=1;t.samp.never=0;t.samp.*=0.5" (fun () ->
      for key = 0 to 99 do
        Alcotest.(check bool) "rate 1 keeps everything" true
          (Sampler.keep ~name:"t.samp.always" ~key);
        Alcotest.(check bool) "rate 0 drops everything" false
          (Sampler.keep ~name:"t.samp.never" ~key)
      done;
      (* unmatched names are never sampled *)
      Alcotest.(check bool) "no rule means keep" true
        (Sampler.keep ~name:"t.other" ~key:0);
      (* the prefix rule catches the rest at roughly its rate *)
      let kept = ref 0 in
      for key = 0 to 999 do
        if Sampler.keep ~name:"t.samp.half" ~key then incr kept
      done;
      Alcotest.(check bool)
        (Printf.sprintf "rate 0.5 kept %d of 1000" !kept)
        true
        (!kept > 400 && !kept < 600))

let test_sampler_is_a_pure_function () =
  (* the whole determinism story rests on this: the decision depends on
     (name, key) alone — recomputing it anywhere, in any order, on any
     domain, gives the same answer *)
  with_sampler "t.pure.*=0.3" (fun () ->
      let forward = List.init 200 (fun k -> Sampler.keep ~name:"t.pure.x" ~key:k) in
      let backward =
        List.rev (List.init 200 (fun k -> Sampler.keep ~name:"t.pure.x" ~key:(199 - k)))
      in
      Alcotest.(check (list bool)) "order-independent" forward backward;
      let from_domain =
        Domain.join
          (Domain.spawn (fun () ->
               List.init 200 (fun k -> Sampler.keep ~name:"t.pure.x" ~key:k)))
      in
      Alcotest.(check (list bool)) "domain-independent" forward from_domain)

let test_sampled_out_spans_still_feed_metrics () =
  Span.clear ();
  with_sampler "t.thin=0" (fun () ->
      let h = Metrics.histogram "span.t.thin" in
      let n0 = Histogram.count h in
      for _ = 1 to 5 do
        Span.with_ ~name:"t.thin" (fun () -> ())
      done;
      Alcotest.(check int) "no events in the ring" 0
        (List.length (events_named "t.thin"));
      Alcotest.(check int) "but every span observed in the histogram" 5
        (Histogram.count h - n0))

(* ---------- streaming sink ---------- *)

let temp_path suffix =
  Filename.temp_file "yieldlab_t_obs" suffix

let test_stream_jsonl_roundtrip () =
  let path = temp_path ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let s = Stream.create ~path () in
      Alcotest.(check bool) "jsonl by extension" true
        (Stream.format s = Stream.Jsonl);
      let events =
        List.init 5 (fun i ->
            {
              Span.name = "t.stream";
              ts_us = float_of_int (10 * i);
              dur_us = 3.5;
              tid = 0;
              depth = 0;
              key = i;
            })
      in
      List.iter
        (fun e ->
          Stream.write_event s Span.Opened e;
          Stream.write_event s Span.Closed e)
        events;
      Stream.close s;
      Stream.close s (* idempotent *);
      let r = Stream.read_jsonl ~path in
      Alcotest.(check bool) "no truncation" false r.Stream.truncated;
      Alcotest.(check int) "open + close lines" 10 (List.length r.Stream.lines);
      let back = Stream.spans_of_lines r.Stream.lines in
      Alcotest.(check int) "span lines decode" 5 (List.length back);
      List.iter2
        (fun (a : Span.event) (b : Span.event) ->
          Alcotest.(check string) "name" a.Span.name b.Span.name;
          Alcotest.(check int) "key" a.Span.key b.Span.key;
          check_float "ts" a.Span.ts_us b.Span.ts_us)
        events back)

let test_stream_tolerates_truncated_tail () =
  let path = temp_path ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let s = Stream.create ~path () in
      Stream.write_json s (Json.Obj [ ("type", Json.String "counter") ]);
      Stream.write_json s (Json.Obj [ ("type", Json.String "counter") ]);
      Stream.close s;
      (* simulate a crash mid-write: chop the file inside the final line *)
      let text = In_channel.with_open_bin path In_channel.input_all in
      let chopped = String.sub text 0 (String.length text - 4) in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc chopped);
      let r = Stream.read_jsonl ~path in
      Alcotest.(check bool) "truncation reported" true r.Stream.truncated;
      Alcotest.(check int) "complete lines survive" 1 (List.length r.Stream.lines))

let test_stream_chrome_crash_loadable () =
  let path = temp_path ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let s = Stream.create ~path () in
      Alcotest.(check bool) "chrome by extension" true
        (Stream.format s = Stream.Chrome);
      let e =
        { Span.name = "t.ct"; ts_us = 1.; dur_us = 2.; tid = 0; depth = 0; key = 0 }
      in
      Stream.write_event s Span.Closed e;
      Stream.write_event s Span.Closed e;
      (* no close: the on-disk state is what a crash leaves behind; the
         array is unterminated but every written element is complete *)
      let text = In_channel.with_open_bin path In_channel.input_all in
      (match Json.parse (text ^ "]") with
      | Json.List items ->
          Alcotest.(check int) "both events present" 2 (List.length items)
      | _ -> Alcotest.fail "not an array");
      Stream.close s;
      match Json.parse (In_channel.with_open_bin path In_channel.input_all) with
      | Json.List items ->
          Alcotest.(check int) "closed file parses as-is" 2 (List.length items)
      | _ -> Alcotest.fail "closed file is not an array")

(* ---------- instrumented Monte Carlo ---------- *)

let test_mc_counted_determinism () =
  let f (r : Rng.t) =
    let x = Rng.float r in
    if x < 0.3 then None else Some (x +. Rng.float r)
  in
  let serial = Montecarlo.run_counted ~samples:64 ~rng:(Rng.create 5) f in
  let parallel =
    Pool.with_pool ~jobs:4 (fun pool ->
        Montecarlo.run_pool_counted ~pool ~samples:64 ~rng:(Rng.create 5) f)
  in
  Alcotest.(check bool) "identical results" true
    (serial.Montecarlo.results = parallel.Montecarlo.results);
  Alcotest.(check int) "same attempted" serial.Montecarlo.attempted
    parallel.Montecarlo.attempted;
  Alcotest.(check int) "same failed" serial.Montecarlo.failed
    parallel.Montecarlo.failed;
  Alcotest.(check int) "attempted = samples" 64 serial.Montecarlo.attempted;
  Alcotest.(check int) "accounting adds up" 64
    (Array.length serial.Montecarlo.results + serial.Montecarlo.failed)

let test_mc_feeds_counters () =
  let attempted = Metrics.counter "mc.samples.attempted" in
  let failed = Metrics.counter "mc.samples.failed" in
  let a0 = Metrics.value attempted and f0 = Metrics.value failed in
  let outcome =
    Montecarlo.run_counted ~samples:50 ~rng:(Rng.create 1) (fun r ->
        let x = Rng.float r in
        if x < 0.5 then None else Some x)
  in
  Alcotest.(check int) "attempted counter delta" 50
    (Metrics.value attempted - a0);
  Alcotest.(check int) "failed counter delta" outcome.Montecarlo.failed
    (Metrics.value failed - f0);
  Alcotest.(check bool) "some failed in this stream" true
    (outcome.Montecarlo.failed > 0)

let suites =
  [
    ( "obs.span",
      [
        Alcotest.test_case "nesting" `Quick test_span_nesting;
        Alcotest.test_case "exception safety" `Quick test_span_survives_exception;
        Alcotest.test_case "domain merge" `Quick test_span_merges_domains;
      ] );
    ( "obs.histogram",
      [
        Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
        Alcotest.test_case "reservoir" `Quick test_histogram_reservoir;
        Alcotest.test_case "empty" `Quick test_histogram_empty;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "concurrent counters" `Quick test_counter_concurrent;
        Alcotest.test_case "shared handles" `Quick test_registry_shares_handles;
      ] );
    ( "obs.serialisation",
      [
        Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "chrome trace" `Quick test_chrome_trace_roundtrip;
        Alcotest.test_case "jsonl" `Quick test_jsonl_roundtrip;
      ] );
    ( "obs.ring",
      [
        Alcotest.test_case "bounded memory" `Quick test_ring_bounds_memory;
        Alcotest.test_case "bus open/close" `Quick test_bus_sees_open_and_close;
        Alcotest.test_case "key sequences" `Quick test_span_key_sequences;
      ] );
    ( "obs.sampler",
      [
        Alcotest.test_case "spec parsing" `Quick test_sampler_spec_parsing;
        Alcotest.test_case "rates and precedence" `Quick
          test_sampler_rates_and_precedence;
        Alcotest.test_case "pure function" `Quick test_sampler_is_a_pure_function;
        Alcotest.test_case "metrics stay complete" `Quick
          test_sampled_out_spans_still_feed_metrics;
      ] );
    ( "obs.stream",
      [
        Alcotest.test_case "jsonl roundtrip" `Quick test_stream_jsonl_roundtrip;
        Alcotest.test_case "truncated tail" `Quick
          test_stream_tolerates_truncated_tail;
        Alcotest.test_case "chrome crash-loadable" `Quick
          test_stream_chrome_crash_loadable;
      ] );
    ( "obs.montecarlo",
      [
        Alcotest.test_case "counted determinism" `Quick
          test_mc_counted_determinism;
        Alcotest.test_case "feeds counters" `Quick test_mc_feeds_counters;
      ] );
  ]
