(* Tests for the yield_obs telemetry library: span nesting and per-domain
   merging, histogram quantiles, counter atomicity across domains, JSON /
   JSONL / Chrome-trace serialisation round-trips — plus the determinism
   contract of the instrumented Monte Carlo driver. *)

module Json = Yield_obs.Json
module Histogram = Yield_obs.Histogram
module Metrics = Yield_obs.Metrics
module Span = Yield_obs.Span
module Sink = Yield_obs.Sink
module Montecarlo = Yield_process.Montecarlo
module Pool = Yield_exec.Pool
module Rng = Yield_stats.Rng

let check_float ?(eps = 1e-9) what expected actual =
  if Float.abs (expected -. actual) > eps *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %.10g, got %.10g" what expected actual

(* ---------- spans ---------- *)

let events_named name =
  List.filter (fun (e : Span.event) -> e.Span.name = name) (Span.events ())

let test_span_nesting () =
  Span.clear ();
  let v =
    Span.with_ ~name:"t.outer" (fun () ->
        let a = Span.with_ ~name:"t.inner" (fun () -> 20) in
        let b = Span.with_ ~name:"t.inner" (fun () -> 22) in
        a + b)
  in
  Alcotest.(check int) "value through spans" 42 v;
  let outer =
    match events_named "t.outer" with
    | [ e ] -> e
    | es -> Alcotest.failf "expected 1 outer event, got %d" (List.length es)
  in
  let inners = events_named "t.inner" in
  Alcotest.(check int) "two inner events" 2 (List.length inners);
  Alcotest.(check int) "outer at depth 0" 0 outer.Span.depth;
  List.iter
    (fun (e : Span.event) ->
      Alcotest.(check int) "inner at depth 1" 1 e.Span.depth;
      Alcotest.(check int) "same domain" outer.Span.tid e.Span.tid;
      Alcotest.(check bool) "inner starts after outer" true
        (e.Span.ts_us >= outer.Span.ts_us);
      Alcotest.(check bool) "inner ends before outer" true
        (e.Span.ts_us +. e.Span.dur_us
        <= outer.Span.ts_us +. outer.Span.dur_us +. 1e-6))
    inners

let test_span_survives_exception () =
  Span.clear ();
  (try
     Span.with_ ~name:"t.raises" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int) "event recorded despite raise" 1
    (List.length (events_named "t.raises"))

let test_span_merges_domains () =
  Span.clear ();
  let domains =
    Array.init 3 (fun i ->
        Domain.spawn (fun () ->
            Span.with_ ~name:"t.domain" (fun () -> ignore (Sys.opaque_identity i))))
  in
  Array.iter Domain.join domains;
  Span.with_ ~name:"t.domain" (fun () -> ());
  let es = events_named "t.domain" in
  Alcotest.(check int) "events from every domain survive the join" 4
    (List.length es);
  let tids = List.sort_uniq compare (List.map (fun e -> e.Span.tid) es) in
  Alcotest.(check int) "distinct domain ids" 4 (List.length tids)

(* ---------- histograms ---------- *)

let test_histogram_quantiles () =
  let h = Histogram.create () in
  (* 1..100 in a scrambled order: quantiles must not depend on arrival *)
  let xs = Array.init 100 (fun i -> float_of_int (((i * 37) mod 100) + 1)) in
  Array.iter (Histogram.observe h) xs;
  let s = Histogram.summarize h in
  Alcotest.(check int) "count" 100 s.Histogram.count;
  check_float "sum" 5050. s.Histogram.sum;
  check_float "mean" 50.5 s.Histogram.mean;
  check_float "min" 1. s.Histogram.min;
  check_float "max" 100. s.Histogram.max;
  check_float "p50 (exact on interpolated order stats)" 50.5 s.Histogram.p50;
  check_float "p90" 90.1 s.Histogram.p90;
  check_float "p99" 99.01 s.Histogram.p99;
  check_float "quantile 0" 1. (Histogram.quantile h 0.);
  check_float "quantile 1" 100. (Histogram.quantile h 1.)

let test_histogram_reservoir () =
  (* beyond capacity the moments stay exact and quantiles stay plausible *)
  let h = Histogram.create ~capacity:64 () in
  for i = 1 to 10_000 do
    Histogram.observe h (float_of_int i)
  done;
  let s = Histogram.summarize h in
  Alcotest.(check int) "count exact" 10_000 s.Histogram.count;
  check_float "min exact" 1. s.Histogram.min;
  check_float "max exact" 10_000. s.Histogram.max;
  check_float "mean exact" 5000.5 s.Histogram.mean;
  Alcotest.(check bool) "p50 in bulk" true
    (s.Histogram.p50 > 2000. && s.Histogram.p50 < 8000.)

let test_histogram_empty () =
  let h = Histogram.create () in
  let s = Histogram.summarize h in
  Alcotest.(check int) "count" 0 s.Histogram.count;
  check_float "p99 of empty" 0. s.Histogram.p99;
  check_float "min of empty" 0. s.Histogram.min

(* ---------- metrics registry ---------- *)

let test_counter_concurrent () =
  let c = Metrics.counter "t.concurrent" in
  let before = Metrics.value c in
  let per_domain = 25_000 in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.incr c
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "no lost increments" (4 * per_domain)
    (Metrics.value c - before)

let test_registry_shares_handles () =
  let a = Metrics.counter "t.shared" in
  let b = Metrics.counter "t.shared" in
  let v0 = Metrics.value a in
  Metrics.add b 5;
  Alcotest.(check int) "same instrument" (v0 + 5) (Metrics.value a);
  let snap = Metrics.snapshot () in
  Alcotest.(check bool) "snapshot contains the counter" true
    (List.mem_assoc "t.shared" snap.Metrics.counters)

(* ---------- serialisation ---------- *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\nd\te");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5e-7);
        ("whole", Json.Float 3.0);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Float 2.25; Json.String "x" ]);
        ("o", Json.Obj [ ("nested", Json.Bool false) ]);
      ]
  in
  let text = Json.to_string j in
  (match Json.parse text with
  | Json.Obj kvs ->
      Alcotest.(check int) "all members" 8 (List.length kvs);
      Alcotest.(check string) "string escapes" "a\"b\\c\nd\te"
        (Option.get (Json.string_value (List.assoc "s" kvs)));
      Alcotest.(check bool) "int" true (List.assoc "i" kvs = Json.Int (-42));
      check_float "float" 1.5e-7
        (Option.get (Json.number_value (List.assoc "f" kvs)));
      check_float "whole float" 3.0
        (Option.get (Json.number_value (List.assoc "whole" kvs)))
  | _ -> Alcotest.fail "parsed to a non-object");
  (* second round trip is a fixpoint *)
  Alcotest.(check string) "fixpoint" text (Json.to_string (Json.parse text))

let test_chrome_trace_roundtrip () =
  let events =
    [
      { Span.name = "alpha"; ts_us = 10.5; dur_us = 1000.25; tid = 0; depth = 0 };
      { Span.name = "beta"; ts_us = 20.; dur_us = 4.; tid = 3; depth = 1 };
    ]
  in
  let text = Json.to_string (Sink.chrome_trace_of_events events) in
  match Json.parse text with
  | Json.List items ->
      Alcotest.(check int) "one trace event per span" 2 (List.length items);
      List.iter2
        (fun (e : Span.event) item ->
          let get k = Option.get (Json.member k item) in
          Alcotest.(check string) "name" e.Span.name
            (Option.get (Json.string_value (get "name")));
          Alcotest.(check string) "complete event" "X"
            (Option.get (Json.string_value (get "ph")));
          check_float "ts" e.Span.ts_us
            (Option.get (Json.number_value (get "ts")));
          check_float "dur" e.Span.dur_us
            (Option.get (Json.number_value (get "dur")));
          check_float "pid" 1. (Option.get (Json.number_value (get "pid")));
          check_float "tid" (float_of_int e.Span.tid)
            (Option.get (Json.number_value (get "tid"))))
        events items
  | _ -> Alcotest.fail "chrome trace is not a JSON array"

let test_jsonl_roundtrip () =
  let h = Metrics.histogram "t.jsonl.hist" in
  for i = 1 to 10 do
    Metrics.observe h (float_of_int i)
  done;
  Metrics.add (Metrics.counter "t.jsonl.counter") 7;
  let spans =
    [ { Span.name = "t.jsonl.span"; ts_us = 1.; dur_us = 2.; tid = 0; depth = 0 } ]
  in
  let text = Sink.jsonl_of ~spans (Metrics.snapshot ()) in
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check bool) "several lines" true (List.length lines >= 3);
  let parsed = List.map Json.parse lines in
  let of_type ty name =
    List.find_opt
      (fun j ->
        Json.member "type" j = Some (Json.String ty)
        && Json.member "name" j = Some (Json.String name))
      parsed
  in
  (match of_type "counter" "t.jsonl.counter" with
  | Some j ->
      Alcotest.(check bool) "counter value present" true
        (match Json.member "value" j with Some (Json.Int v) -> v >= 7 | _ -> false)
  | None -> Alcotest.fail "counter line missing");
  (match of_type "histogram" "t.jsonl.hist" with
  | Some j ->
      List.iter
        (fun field ->
          Alcotest.(check bool) (field ^ " present") true
            (Option.is_some (Json.member field j)))
        [ "count"; "sum"; "mean"; "min"; "max"; "p50"; "p90"; "p99" ]
  | None -> Alcotest.fail "histogram line missing");
  match of_type "span" "t.jsonl.span" with
  | Some _ -> ()
  | None -> Alcotest.fail "span line missing"

(* ---------- instrumented Monte Carlo ---------- *)

let test_mc_counted_determinism () =
  let f (r : Rng.t) =
    let x = Rng.float r in
    if x < 0.3 then None else Some (x +. Rng.float r)
  in
  let serial = Montecarlo.run_counted ~samples:64 ~rng:(Rng.create 5) f in
  let parallel =
    Pool.with_pool ~jobs:4 (fun pool ->
        Montecarlo.run_pool_counted ~pool ~samples:64 ~rng:(Rng.create 5) f)
  in
  Alcotest.(check bool) "identical results" true
    (serial.Montecarlo.results = parallel.Montecarlo.results);
  Alcotest.(check int) "same attempted" serial.Montecarlo.attempted
    parallel.Montecarlo.attempted;
  Alcotest.(check int) "same failed" serial.Montecarlo.failed
    parallel.Montecarlo.failed;
  Alcotest.(check int) "attempted = samples" 64 serial.Montecarlo.attempted;
  Alcotest.(check int) "accounting adds up" 64
    (Array.length serial.Montecarlo.results + serial.Montecarlo.failed)

let test_mc_feeds_counters () =
  let attempted = Metrics.counter "mc.samples.attempted" in
  let failed = Metrics.counter "mc.samples.failed" in
  let a0 = Metrics.value attempted and f0 = Metrics.value failed in
  let outcome =
    Montecarlo.run_counted ~samples:50 ~rng:(Rng.create 1) (fun r ->
        let x = Rng.float r in
        if x < 0.5 then None else Some x)
  in
  Alcotest.(check int) "attempted counter delta" 50
    (Metrics.value attempted - a0);
  Alcotest.(check int) "failed counter delta" outcome.Montecarlo.failed
    (Metrics.value failed - f0);
  Alcotest.(check bool) "some failed in this stream" true
    (outcome.Montecarlo.failed > 0)

let suites =
  [
    ( "obs.span",
      [
        Alcotest.test_case "nesting" `Quick test_span_nesting;
        Alcotest.test_case "exception safety" `Quick test_span_survives_exception;
        Alcotest.test_case "domain merge" `Quick test_span_merges_domains;
      ] );
    ( "obs.histogram",
      [
        Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
        Alcotest.test_case "reservoir" `Quick test_histogram_reservoir;
        Alcotest.test_case "empty" `Quick test_histogram_empty;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "concurrent counters" `Quick test_counter_concurrent;
        Alcotest.test_case "shared handles" `Quick test_registry_shares_handles;
      ] );
    ( "obs.serialisation",
      [
        Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "chrome trace" `Quick test_chrome_trace_roundtrip;
        Alcotest.test_case "jsonl" `Quick test_jsonl_roundtrip;
      ] );
    ( "obs.montecarlo",
      [
        Alcotest.test_case "counted determinism" `Quick
          test_mc_counted_determinism;
        Alcotest.test_case "feeds counters" `Quick test_mc_feeds_counters;
      ] );
  ]
