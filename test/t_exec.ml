(* Tests for the yield_exec execution layer and its determinism guarantees
   through the stack: the domain pool's order-independent reduction, the
   one jobs resolution rule, pool/serial equivalence in Montecarlo, WBGA
   bit-identity serial vs pooled, byte-identical flow tables at -j 1 vs
   -j 4 (also through a mid-WBGA kill + resume), fault accounting under
   parallel evaluation, and the C006 config lint. *)

module Pool = Yield_exec.Pool
module Jobs = Yield_exec.Jobs
module Fault = Yield_resilience.Fault
module Atomic_io = Yield_resilience.Atomic_io
module Metrics = Yield_obs.Metrics
module Montecarlo = Yield_process.Montecarlo
module Rng = Yield_stats.Rng
module Wbga = Yield_ga.Wbga
module Ga = Yield_ga.Ga
module Genome = Yield_ga.Genome
module Config = Yield_core.Config
module Flow = Yield_core.Flow
module Config_lint = Yield_analyse.Config_lint
module Diagnostic = Yield_analyse.Diagnostic

let with_faults f = Fun.protect ~finally:Fault.reset f

let mval name = Metrics.value (Metrics.counter name)

let check_bits what expected actual =
  if Int64.bits_of_float expected <> Int64.bits_of_float actual then
    Alcotest.failf "%s: %h is not bit-identical to %h" what actual expected

let tmp_counter = ref 0

let fresh_dir prefix =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "yieldlab-%s-%d-%d" prefix (Unix.getpid ()) !tmp_counter)
  in
  Atomic_io.mkdir_p d;
  d

(* ---------- the pool itself ---------- *)

let test_pool_map_in_order () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          Alcotest.(check int) "jobs" (Stdlib.max 1 jobs) (Pool.jobs pool);
          let r = Pool.map pool ~n:100 (fun i -> i * i) in
          Alcotest.(check int) "length" 100 (Array.length r);
          Array.iteri
            (fun i v -> Alcotest.(check int) "slot" (i * i) v)
            r;
          (* the same pool is reusable across maps *)
          let r2 = Pool.map pool ~n:7 (fun i -> -i) in
          Array.iteri (fun i v -> Alcotest.(check int) "slot2" (-i) v) r2;
          Alcotest.(check int) "empty map" 0
            (Array.length (Pool.map pool ~n:0 (fun i -> i)))))
    [ 0; 1; 2; 4 ]

let test_pool_exception_propagates () =
  Pool.with_pool ~jobs:4 (fun pool ->
      (match Pool.map pool ~n:64 (fun i -> if i = 17 then failwith "boom" else i) with
      | exception Failure msg -> Alcotest.(check string) "message" "boom" msg
      | _ -> Alcotest.fail "expected the worker exception to propagate");
      (* the pool survives a poisoned job *)
      Alcotest.(check int) "still serves" 10
        (Array.length (Pool.map pool ~n:10 Fun.id)))

let test_pool_map_counted () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let c =
            Pool.map_counted pool ~n:20 (fun i ->
                if i mod 3 = 0 then None else Some i)
          in
          Alcotest.(check int) "attempted" 20 c.Pool.attempted;
          Alcotest.(check int) "failed" 7 c.Pool.failed;
          Alcotest.(check int) "kept" 13 (Array.length c.Pool.results);
          (* survivors stay in item order whatever the interleaving *)
          let expected =
            List.filter (fun i -> i mod 3 <> 0) (List.init 20 Fun.id)
          in
          Alcotest.(check (list int)) "order" expected
            (Array.to_list c.Pool.results)))
    [ 1; 4 ]

let test_pool_counted_fault_block () =
  with_faults (fun () ->
      (* an At schedule on a registered point decides by global item index,
         so the same item is lost at any jobs count *)
      let p = Fault.point "exec.test.item" in
      let survivors jobs =
        Fault.reset ();
        Fault.arm "exec.test.item" (Fault.At 5);
        Pool.with_pool ~jobs (fun pool ->
            Pool.map_counted pool ~fault:p ~n:12 (fun i -> Some i))
      in
      let serial = survivors 1 and parallel = survivors 4 in
      Alcotest.(check int) "failed serial" 1 serial.Pool.failed;
      Alcotest.(check int) "failed parallel" 1 parallel.Pool.failed;
      Alcotest.(check (list int)) "same survivors"
        (Array.to_list serial.Pool.results)
        (Array.to_list parallel.Pool.results))

(* ---------- the jobs resolution rule ---------- *)

let test_jobs_resolution () =
  let saved = Jobs.requested () in
  let saved_env = Sys.getenv_opt Jobs.env_var in
  Fun.protect
    ~finally:(fun () ->
      Jobs.set_requested saved;
      Unix.putenv Jobs.env_var (Option.value saved_env ~default:""))
    (fun () ->
      (* explicit ?cli beats everything and is clamped to >= 1 *)
      Alcotest.(check int) "cli" 3 (Jobs.resolve ~cli:3 ());
      Alcotest.(check int) "cli clamp" 1 (Jobs.resolve ~cli:0 ());
      (* a recorded CLI request beats the environment *)
      Unix.putenv Jobs.env_var "7";
      Jobs.set_requested (Some 5);
      Alcotest.(check int) "requested beats env" 5 (Jobs.resolve ());
      Jobs.set_requested None;
      Alcotest.(check int) "env" 7 (Jobs.resolve ());
      (* malformed env falls through to the recommended count *)
      Unix.putenv Jobs.env_var "zero";
      Alcotest.(check int) "bad env -> recommended" (Jobs.recommended ())
        (Jobs.resolve ());
      Unix.putenv Jobs.env_var "";
      Alcotest.(check int) "no env -> recommended" (Jobs.recommended ())
        (Jobs.resolve ()))

(* ---------- Montecarlo: pooled batch = serial batch ---------- *)

let test_mc_pool_equals_serial () =
  let f (r : Rng.t) =
    let x = Rng.float r in
    if x < 0.25 then None else Some (x +. Rng.float r)
  in
  let pool_path =
    Pool.with_pool ~jobs:4 (fun pool ->
        Montecarlo.run_pool_counted ~pool ~samples:64 ~rng:(Rng.create 5) f)
  in
  let serial_path = Montecarlo.run_counted ~samples:64 ~rng:(Rng.create 5) f in
  Alcotest.(check int) "attempted" serial_path.Montecarlo.attempted
    pool_path.Montecarlo.attempted;
  Alcotest.(check int) "failed" serial_path.Montecarlo.failed
    pool_path.Montecarlo.failed;
  Alcotest.(check int) "kept"
    (Array.length serial_path.Montecarlo.results)
    (Array.length pool_path.Montecarlo.results);
  Array.iteri
    (fun i v ->
      check_bits (Printf.sprintf "sample %d" i) v
        pool_path.Montecarlo.results.(i))
    serial_path.Montecarlo.results;
  (* the bare-result wrapper is the counted batch minus the accounting *)
  let bare =
    Pool.with_pool ~jobs:4 (fun pool ->
        Montecarlo.run_pool ~pool ~samples:64 ~rng:(Rng.create 5) f)
  in
  Alcotest.(check int) "run_pool kept"
    (Array.length serial_path.Montecarlo.results)
    (Array.length bare);
  Array.iteri
    (fun i v -> check_bits (Printf.sprintf "bare sample %d" i) v bare.(i))
    serial_path.Montecarlo.results

(* ---------- WBGA: serial = pooled, bit for bit ---------- *)

let wbga_ranges =
  [|
    Genome.range "a" ~lo:0.5 ~hi:4.0;
    Genome.range "b" ~lo:1.0 ~hi:9.0;
  |]

(* a deterministic synthetic evaluation with a failure region, so the
   failure accounting is exercised without any simulator cost *)
let wbga_evaluate params =
  let a = params.(0) and b = params.(1) in
  if a +. b > 11.5 then None
  else Some [| (a *. b) +. sin b; (a /. b) +. cos a |]

let run_wbga pool =
  let config =
    { Ga.default_config with Ga.population_size = 20; generations = 8 }
  in
  Wbga.run ~config ?pool ~param_ranges:wbga_ranges
    ~objectives:
      [|
        { Wbga.name = "x"; maximise = true };
        { Wbga.name = "y"; maximise = false };
      |]
    ~rng:(Rng.create 123) ~evaluate:wbga_evaluate ()

let check_same_wbga what (a : Wbga.result) (b : Wbga.result) =
  Alcotest.(check int) (what ^ ": evaluations") a.Wbga.evaluations
    b.Wbga.evaluations;
  Alcotest.(check int) (what ^ ": failures") a.Wbga.failures b.Wbga.failures;
  Alcotest.(check int) (what ^ ": archive size")
    (Array.length a.Wbga.archive)
    (Array.length b.Wbga.archive);
  Alcotest.(check int) (what ^ ": front size")
    (Array.length a.Wbga.front)
    (Array.length b.Wbga.front);
  Array.iteri
    (fun i v -> check_bits (Printf.sprintf "%s: history %d" what i) v
        b.Wbga.history.(i))
    a.Wbga.history;
  Array.iteri
    (fun i (e : Wbga.entry) ->
      let e' = b.Wbga.archive.(i) in
      Array.iteri
        (fun j v ->
          check_bits (Printf.sprintf "%s: archive %d params %d" what i j) v
            e'.Wbga.params.(j))
        e.Wbga.params;
      Array.iteri
        (fun j v ->
          check_bits (Printf.sprintf "%s: archive %d obj %d" what i j) v
            e'.Wbga.objectives.(j))
        e.Wbga.objectives;
      check_bits (Printf.sprintf "%s: archive %d fitness" what i)
        e.Wbga.fitness e'.Wbga.fitness)
    a.Wbga.archive

let test_wbga_pool_bit_identical () =
  let serial = run_wbga None in
  Alcotest.(check bool) "some failures exercised" true
    (serial.Wbga.failures > 0);
  List.iter
    (fun jobs ->
      let pooled = Pool.with_pool ~jobs (fun p -> run_wbga (Some p)) in
      check_same_wbga (Printf.sprintf "jobs=%d" jobs) serial pooled)
    [ 1; 4 ]

(* ---------- the flow: -j 1 vs -j 4, kill + resume, fault accounting ---------- *)

let smoke_config jobs =
  {
    Config.fast_scale with
    Config.ga =
      { Ga.default_config with Ga.population_size = 24; generations = 12 };
    mc_samples = 12;
    front_stride = 2;
    seed = 47;
    jobs;
  }

let flow_tables f =
  let dir = fresh_dir "exec-tables" in
  Flow.save_tables f ~dir
  |> List.map (fun path -> (Filename.basename path, Atomic_io.read_file ~path))

(* the serial reference tables, shared by the parallel-determinism tests *)
let serial_tables = lazy (flow_tables (Flow.run (smoke_config 1)))

let check_tables_match_serial what tables =
  let base = Lazy.force serial_tables in
  Alcotest.(check int) (what ^ ": table count") (List.length base)
    (List.length tables);
  List.iter2
    (fun (name, contents) (name', contents') ->
      Alcotest.(check string) (what ^ ": table name") name name';
      Alcotest.(check string)
        (Printf.sprintf "%s: %s byte-identical" what name)
        contents contents')
    base tables

let test_flow_serial_vs_jobs4 () =
  check_tables_match_serial "-j 4" (flow_tables (Flow.run (smoke_config 4)))

let test_flow_kill_resume_under_pool () =
  with_faults (fun () ->
      let dir = fresh_dir "exec-ckpt" in
      Fault.reset ();
      Fault.arm "flow.wbga.generation" (Fault.At 4);
      (match Flow.run ~checkpoint_dir:dir (smoke_config 4) with
      | exception Fault.Injected p ->
          Alcotest.(check string) "crashed at the armed point"
            "flow.wbga.generation" p
      | _ -> Alcotest.fail "expected the simulated crash");
      Fault.reset ();
      let f = Flow.run ~checkpoint_dir:dir ~resume:true (smoke_config 4) in
      check_tables_match_serial "mid-WBGA kill under -j 4" (flow_tables f))

let test_flow_fault_accounting_under_pool () =
  with_faults (fun () ->
      Fault.reset ();
      Metrics.reset ();
      Fault.arm "dcop.solve" (Fault.Rate { p = 0.2; seed = 11 });
      let f = Flow.run (smoke_config 4) in
      Alcotest.(check bool) "flow completed with a usable front" true
        (Array.length f.Flow.front_points >= 2);
      let injected = mval "fault.dcop.solve.injected" in
      let retries = mval "retry.dcop.solve.retries" in
      let exhausted = mval "retry.dcop.solve.exhausted" in
      Alcotest.(check bool)
        (Printf.sprintf "faults were injected (%d)" injected)
        true (injected > 0);
      (* natural non-convergence also lands in the retry counters, so the
         identity relaxes to >=: nothing injected goes unaccounted, even
         with the evaluations interleaved across domains *)
      Alcotest.(check bool)
        (Printf.sprintf "every injected fault accounted (%d <= %d + %d)"
           injected retries exhausted)
        true
        (retries + exhausted >= injected))

(* ---------- config lint: C006 ---------- *)

let lint_view jobs =
  {
    Config_lint.population = 24;
    generations = 12;
    mc_samples = 40;
    front_stride = 1;
    control = "3E";
    seed = 47;
    jobs;
    solver = "dense";
    system_size = None;
    fingerprint = "v1;test";
  }

let has_code code diags =
  List.exists (fun d -> d.Diagnostic.code = code) diags

let test_lint_jobs () =
  Alcotest.(check bool) "jobs=1 clean" false
    (has_code "C006" (Config_lint.check (lint_view 1)));
  let zero = Config_lint.check (lint_view 0) in
  Alcotest.(check bool) "jobs=0 flagged" true (has_code "C006" zero);
  Alcotest.(check int) "jobs=0 is an error" 1
    (Diagnostic.count Diagnostic.Error zero);
  let over = Config_lint.check (lint_view (Jobs.recommended () + 8)) in
  Alcotest.(check bool) "oversubscription flagged" true (has_code "C006" over);
  Alcotest.(check int) "oversubscription is a warning" 1
    (Diagnostic.count Diagnostic.Warning over);
  Alcotest.(check int) "oversubscription is not an error" 0
    (Diagnostic.count Diagnostic.Error over)

let suites =
  [
    ( "exec.pool",
      [
        Alcotest.test_case "map order and reuse" `Quick test_pool_map_in_order;
        Alcotest.test_case "exception propagates" `Quick
          test_pool_exception_propagates;
        Alcotest.test_case "map_counted" `Quick test_pool_map_counted;
        Alcotest.test_case "fault block by index" `Quick
          test_pool_counted_fault_block;
      ] );
    ( "exec.jobs",
      [ Alcotest.test_case "resolution rule" `Quick test_jobs_resolution ] );
    ( "exec.mc",
      [ Alcotest.test_case "pool = serial" `Quick test_mc_pool_equals_serial ] );
    ( "exec.wbga",
      [
        Alcotest.test_case "serial = pooled bit-identical" `Quick
          test_wbga_pool_bit_identical;
      ] );
    ( "exec.flow",
      [
        Alcotest.test_case "-j 1 = -j 4 tables" `Quick
          test_flow_serial_vs_jobs4;
        Alcotest.test_case "kill + resume under -j 4" `Quick
          test_flow_kill_resume_under_pool;
        Alcotest.test_case "fault accounting under -j 4" `Quick
          test_flow_fault_accounting_under_pool;
      ] );
    ( "exec.lint",
      [ Alcotest.test_case "C006 jobs bounds" `Quick test_lint_jobs ] );
  ]
