(* Tests for the yield_spice simulator: MOS model physics, DC operating
   points on known circuits, AC transfer functions against closed-form
   answers, measurement extraction, and netlist round-trips. *)

module Mosfet = Yield_spice.Mosfet
module Circuit = Yield_spice.Circuit
module Dcop = Yield_spice.Dcop
module Ac = Yield_spice.Ac
module Measure = Yield_spice.Measure
module Netlist = Yield_spice.Netlist

let check_float ?(eps = 1e-9) what expected actual =
  if Float.abs (expected -. actual) > eps *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %.10g, got %.10g" what expected actual

let nmos : Mosfet.model =
  {
    polarity = Mosfet.Nmos;
    vth0 = 0.50;
    kp = 170e-6;
    gamma = 0.58;
    phi = 0.7;
    lambda0 = 0.04;
    n_slope = 1.3;
    cox = 4.54e-3;
    cgso = 1.2e-10;
    cgdo = 1.2e-10;
    cj = 9.4e-4;
    cjsw = 2.5e-10;
    ext = 8.5e-7;
  }

let solve_ok circuit =
  match Dcop.solve circuit with
  | Ok op -> op
  | Error e -> Alcotest.failf "dcop failed: %s" (Dcop.error_to_string e)

(* --- MOS model --- *)

let test_mos_cutoff () =
  let op = Mosfet.eval nmos ~w:10e-6 ~l:1e-6 ~vgs:0. ~vds:1. ~vbs:0. in
  Alcotest.(check bool) "tiny current" true (op.Mosfet.ids < 1e-9);
  Alcotest.(check string) "region" "cutoff"
    (Mosfet.region_to_string op.Mosfet.region)

let test_mos_square_law () =
  (* strong inversion, saturation: ids ~ beta/(2n) (vgs-vth)^2 *)
  let w = 20e-6 and l = 2e-6 in
  let vgs = 1.5 in
  let op = Mosfet.eval nmos ~w ~l ~vgs ~vds:3. ~vbs:0. in
  let beta = nmos.Mosfet.kp *. w /. l in
  let vov = vgs -. nmos.Mosfet.vth0 in
  let expected =
    beta *. vov *. vov /. (2. *. nmos.Mosfet.n_slope)
    *. (1. +. (nmos.Mosfet.lambda0 /. 2. *. 3.))
  in
  check_float ~eps:0.05 "square law" expected op.Mosfet.ids;
  Alcotest.(check string) "region" "saturation"
    (Mosfet.region_to_string op.Mosfet.region)

let test_mos_gm_matches_numeric () =
  let w = 20e-6 and l = 1e-6 in
  let dv = 1e-6 in
  let at vgs vds vbs = (Mosfet.eval nmos ~w ~l ~vgs ~vds ~vbs).Mosfet.ids in
  let op = Mosfet.eval nmos ~w ~l ~vgs:1.2 ~vds:1.8 ~vbs:(-0.3) in
  let gm_num = (at (1.2 +. dv) 1.8 (-0.3) -. at (1.2 -. dv) 1.8 (-0.3)) /. (2. *. dv) in
  let gds_num = (at 1.2 (1.8 +. dv) (-0.3) -. at 1.2 (1.8 -. dv) (-0.3)) /. (2. *. dv) in
  let gmb_num = (at 1.2 1.8 (-0.3 +. dv) -. at 1.2 1.8 (-0.3 -. dv)) /. (2. *. dv) in
  check_float ~eps:1e-4 "gm" gm_num op.Mosfet.gm;
  check_float ~eps:1e-4 "gds" gds_num op.Mosfet.gds;
  check_float ~eps:1e-4 "gmb" gmb_num op.Mosfet.gmb

let test_mos_continuity_weak_strong () =
  (* current must be smooth and monotone in vgs through the threshold *)
  let prev = ref 0. in
  let ok = ref true in
  for i = 0 to 200 do
    let vgs = 0.2 +. (float_of_int i /. 200. *. 0.8) in
    let op = Mosfet.eval nmos ~w:10e-6 ~l:1e-6 ~vgs ~vds:1.5 ~vbs:0. in
    if op.Mosfet.ids < !prev then ok := false;
    prev := op.Mosfet.ids
  done;
  Alcotest.(check bool) "monotone in vgs" true !ok

let test_mos_reverse_symmetry () =
  (* I(vgs, vds) = -I(vgs - vds, -vds) when source and drain exchange *)
  let fwd = Mosfet.eval nmos ~w:10e-6 ~l:1e-6 ~vgs:1.4 ~vds:0.2 ~vbs:0. in
  let rev = Mosfet.eval nmos ~w:10e-6 ~l:1e-6 ~vgs:1.2 ~vds:(-0.2) ~vbs:(-0.2) in
  check_float ~eps:1e-6 "reversal" (-.fwd.Mosfet.ids) rev.Mosfet.ids

let test_mos_body_effect_raises_vth () =
  let a = Mosfet.eval nmos ~w:10e-6 ~l:1e-6 ~vgs:1. ~vds:2. ~vbs:0. in
  let b = Mosfet.eval nmos ~w:10e-6 ~l:1e-6 ~vgs:1. ~vds:2. ~vbs:(-1.) in
  Alcotest.(check bool) "vth increases" true (b.Mosfet.vth > a.Mosfet.vth);
  Alcotest.(check bool) "current drops" true (b.Mosfet.ids < a.Mosfet.ids)

let test_mos_longer_l_lower_lambda () =
  let short = Mosfet.eval nmos ~w:10e-6 ~l:0.35e-6 ~vgs:1.5 ~vds:2. ~vbs:0. in
  let long_ = Mosfet.eval nmos ~w:10e-6 ~l:3.5e-6 ~vgs:1.5 ~vds:2. ~vbs:0. in
  let ro_rel_short = short.Mosfet.gds /. short.Mosfet.ids in
  let ro_rel_long = long_.Mosfet.gds /. long_.Mosfet.ids in
  Alcotest.(check bool) "long channel has relatively lower gds" true
    (ro_rel_long < ro_rel_short)

let test_mos_bad_geometry () =
  match Mosfet.eval nmos ~w:0. ~l:1e-6 ~vgs:1. ~vds:1. ~vbs:0. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* --- DC analysis --- *)

let test_dc_divider () =
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"V1" "in" "0" 10.;
  Circuit.add_resistor c ~name:"R1" "in" "mid" 1000.;
  Circuit.add_resistor c ~name:"R2" "mid" "0" 3000.;
  let op = solve_ok c in
  check_float ~eps:1e-9 "divider" 7.5 (Dcop.voltage_by_name op c "mid");
  (* branch current through V1: 10V over 4k = 2.5 mA leaving + terminal,
     so the MNA branch current (into the + terminal) is -2.5 mA *)
  check_float ~eps:1e-9 "source current" (-0.0025) (Dcop.branch_current op "V1")

let test_dc_isource () =
  let c = Circuit.create () in
  Circuit.add_isource c ~name:"I1" "0" "n" 1e-3;
  Circuit.add_resistor c ~name:"R1" "n" "0" 2000.;
  let op = solve_ok c in
  check_float ~eps:1e-6 "ir drop" 2. (Dcop.voltage_by_name op c "n")

let test_dc_vccs () =
  (* vccs driving a resistor: v_out = -gm * v_in * r *)
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"Vin" "in" "0" 0.5;
  Circuit.add_vccs c ~name:"G1" ~out_p:"out" ~out_n:"0" ~in_p:"in" ~in_n:"0" 2e-3;
  Circuit.add_resistor c ~name:"RL" "out" "0" 10_000.;
  let op = solve_ok c in
  check_float ~eps:1e-6 "vccs gain" (-10.) (Dcop.voltage_by_name op c "out")

let test_dc_diode_connected_mos () =
  (* current-mirror reference: vgs settles so that ids = ibias *)
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"VDD" "vdd" "0" 3.3;
  Circuit.add_isource c ~name:"IB" "vdd" "ng" 20e-6;
  Circuit.add_mosfet c ~name:"M1" ~d:"ng" ~g:"ng" ~s:"0" ~b:"0" ~model:nmos
    ~w:20e-6 ~l:1e-6;
  Circuit.nodeset c (Circuit.node c "ng") 0.8;
  let op = solve_ok c in
  let m = Dcop.mos_op op "M1" in
  check_float ~eps:1e-4 "ids = ibias" 20e-6 m.Mosfet.ids;
  let vg = Dcop.voltage_by_name op c "ng" in
  Alcotest.(check bool) "gate above vth" true (vg > 0.5 && vg < 1.2)

let test_dc_nmos_mirror_ratio () =
  (* 1:2 mirror doubles the current *)
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"VDD" "vdd" "0" 3.3;
  Circuit.add_isource c ~name:"IB" "vdd" "ng" 10e-6;
  Circuit.add_mosfet c ~name:"M1" ~d:"ng" ~g:"ng" ~s:"0" ~b:"0" ~model:nmos
    ~w:10e-6 ~l:2e-6;
  Circuit.add_mosfet c ~name:"M2" ~d:"out" ~g:"ng" ~s:"0" ~b:"0" ~model:nmos
    ~w:20e-6 ~l:2e-6;
  Circuit.add_resistor c ~name:"RL" "vdd" "out" 20_000.;
  let op = solve_ok c in
  let m2 = Dcop.mos_op op "M2" in
  check_float ~eps:0.05 "mirror gain 2x" 20e-6 m2.Mosfet.ids

let pmos : Mosfet.model =
  {
    nmos with
    polarity = Mosfet.Pmos;
    vth0 = 0.65;
    kp = 58e-6;
    lambda0 = 0.05;
  }

let test_dc_pmos_mirror () =
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"VDD" "vdd" "0" 3.3;
  Circuit.add_isource c ~name:"IB" "ng" "0" 10e-6;
  Circuit.add_mosfet c ~name:"M1" ~d:"ng" ~g:"ng" ~s:"vdd" ~b:"vdd" ~model:pmos
    ~w:20e-6 ~l:1e-6;
  Circuit.add_mosfet c ~name:"M2" ~d:"out" ~g:"ng" ~s:"vdd" ~b:"vdd" ~model:pmos
    ~w:20e-6 ~l:1e-6;
  Circuit.add_resistor c ~name:"RL" "out" "0" 50_000.;
  let op = solve_ok c in
  let m2 = Dcop.mos_op op "M2" in
  check_float ~eps:0.05 "pmos mirror copies" 10e-6 m2.Mosfet.ids;
  let vout = Dcop.voltage_by_name op c "out" in
  check_float ~eps:0.05 "output voltage" 0.5 vout

let test_dc_no_convergence_reported () =
  (* a floating voltage-source loop is singular *)
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"V1" "a" "b" 1.;
  Circuit.add_vsource c ~name:"V2" "a" "b" 2.;
  match Dcop.solve c with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected failure on inconsistent sources"

(* --- AC analysis --- *)

let test_ac_rc_lowpass () =
  let r = 1000. and cap = 1e-6 in
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"Vin" ~ac:1. "in" "0" 0.;
  Circuit.add_resistor c ~name:"R1" "in" "out" r;
  Circuit.add_capacitor c ~name:"C1" "out" "0" cap;
  let op = solve_ok c in
  let fc = 1. /. (2. *. Float.pi *. r *. cap) in
  let freqs = [| fc /. 100.; fc; fc *. 100. |] in
  let bode = Ac.transfer_by_name c op ~out:"out" ~freqs in
  let mags = Measure.magnitudes_db bode in
  check_float ~eps:1e-3 "passband" 0. mags.(0);
  check_float ~eps:1e-3 "corner -3dB" (-10. *. log10 2.) mags.(1);
  check_float ~eps:0.01 "stopband -40dB" (-40.) mags.(2);
  let ph = Measure.phases_deg_unwrapped bode in
  check_float ~eps:0.01 "corner phase -45" (-45.) ph.(1)

let test_ac_common_source_gain () =
  (* common-source stage with ideal current-source load resistance:
     |A| = gm * (RL || ro) at low frequency *)
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"VDD" "vdd" "0" 3.3;
  Circuit.add_vsource c ~name:"Vin" ~ac:1. "g" "0" 0.65;
  Circuit.add_mosfet c ~name:"M1" ~d:"out" ~g:"g" ~s:"0" ~b:"0" ~model:nmos
    ~w:50e-6 ~l:1e-6;
  Circuit.add_resistor c ~name:"RL" "vdd" "out" 30_000.;
  Circuit.nodeset c (Circuit.node c "out") 2.;
  let op = solve_ok c in
  let m = Dcop.mos_op op "M1" in
  let expected =
    m.Mosfet.gm *. (1. /. ((1. /. 30_000.) +. m.Mosfet.gds))
  in
  let bode = Ac.transfer_by_name c op ~out:"out" ~freqs:[| 10. |] in
  let gain = Complex.norm bode.Ac.response.(0) in
  check_float ~eps:1e-3 "cs gain" expected gain;
  (* inverting stage: phase near 180 *)
  let ph = Measure.phase_deg bode.Ac.response.(0) in
  Alcotest.(check bool) "inverting" true (Float.abs (Float.abs ph -. 180.) < 1.)

let test_measure_crossing () =
  let xs = [| 1.; 10.; 100. |] and ys = [| 20.; 0.; -20. |] in
  (match Measure.crossing ~xs ~ys ~level:10. () with
  | Some x -> check_float ~eps:1e-6 "midpoint crossing" (sqrt 10.) x
  | None -> Alcotest.fail "crossing not found");
  match Measure.crossing ~xs ~ys ~level:30. () with
  | Some _ -> Alcotest.fail "no crossing expected"
  | None -> ()

let test_measure_single_pole_pm () =
  (* synthetic single-pole response: H = A / (1 + jf/fp); with A = 1000 and
     fp = 1 kHz, unity at ~1 MHz and phase margin ~90 degrees *)
  let a = 1000. and fp = 1e3 in
  let freqs = Ac.default_freqs ~per_decade:20 ~f_lo:1. ~f_hi:1e8 () in
  let response =
    Array.map
      (fun f ->
        Complex.div { Complex.re = a; im = 0. }
          { Complex.re = 1.; im = f /. fp })
      freqs
  in
  let bode = { Ac.freqs; response } in
  check_float ~eps:1e-3 "dc gain 60dB" 60. (Measure.dc_gain_db bode);
  (match Measure.unity_gain_freq bode with
  | Some fu -> check_float ~eps:0.01 "unity at a*fp" (a *. fp) fu
  | None -> Alcotest.fail "no unity crossing");
  (match Measure.phase_margin_deg bode with
  | Some pm -> check_float ~eps:0.02 "pm ~90" 90.06 pm
  | None -> Alcotest.fail "no phase margin");
  match Measure.f3db bode with
  | Some f3 -> check_float ~eps:0.02 "f3db ~ fp" fp f3
  | None -> Alcotest.fail "no f3db"

let test_measure_two_pole_pm () =
  (* two-pole response: pm = 180 - atan(fu/p1) - atan(fu/p2) *)
  let a = 100. and p1 = 1e3 and p2 = 1e6 in
  let freqs = Ac.default_freqs ~per_decade:40 ~f_lo:10. ~f_hi:1e9 () in
  let h f =
    Complex.div { Complex.re = a; im = 0. }
      (Complex.mul
         { Complex.re = 1.; im = f /. p1 }
         { Complex.re = 1.; im = f /. p2 })
  in
  let bode = { Ac.freqs; response = Array.map h freqs } in
  match (Measure.unity_gain_freq bode, Measure.phase_margin_deg bode) with
  | Some fu, Some pm ->
      let expected =
        180. -. (atan (fu /. p1) *. 180. /. Float.pi)
        -. (atan (fu /. p2) *. 180. /. Float.pi)
      in
      check_float ~eps:0.02 "two-pole pm" expected pm
  | _ -> Alcotest.fail "missing crossing"

(* --- netlist --- *)

let test_parse_value_suffixes () =
  check_float "k" 10_000. (Netlist.parse_value "10k");
  check_float "meg" 2.2e6 (Netlist.parse_value "2.2meg");
  check_float "u" 3.5e-6 (Netlist.parse_value "3.5u");
  check_float "p" 5e-12 (Netlist.parse_value "5p");
  check_float "plain" 42. (Netlist.parse_value "42");
  check_float "negative" (-1.5e-3) (Netlist.parse_value "-1.5m")

let sample_netlist =
  {|* sample
.model nm nmos vth0=0.5 kp=170u lambda0=0.04
VDD vdd 0 3.3
Vin g 0 0.65 ac=1
M1 out g 0 0 nm w=50u l=1u
RL vdd out 30k
CL out 0 1p
.nodeset v(out)=2
.end|}

let test_netlist_parse_and_solve () =
  let c = Netlist.parse sample_netlist in
  let op = solve_ok c in
  let m = Dcop.mos_op op "M1" in
  Alcotest.(check string) "region" "saturation"
    (Mosfet.region_to_string m.Mosfet.region)

let test_netlist_roundtrip () =
  let c = Netlist.parse sample_netlist in
  let text = Netlist.to_string c in
  let c2 = Netlist.parse text in
  let op1 = solve_ok c and op2 = solve_ok c2 in
  check_float ~eps:1e-9 "same out voltage"
    (Dcop.voltage_by_name op1 c "out")
    (Dcop.voltage_by_name op2 c2 "out")

let test_netlist_roundtrip_flattened () =
  (* the OTA testbench contains flattened device names ("x1.M1") that do not
     start with their element letter; the printer must still emit a
     reparseable netlist *)
  let c, _ =
    Yield_circuits.Ota_testbench.build Yield_circuits.Ota.default_params
  in
  let text = Netlist.to_string c in
  let c2 = Netlist.parse text in
  let op1 = solve_ok c and op2 = solve_ok c2 in
  check_float ~eps:1e-6 "same out voltage"
    (Dcop.voltage_by_name op1 c "out")
    (Dcop.voltage_by_name op2 c2 "out");
  check_float ~eps:1e-6 "same internal node"
    (Dcop.voltage_by_name op1 c "x1.n3")
    (Dcop.voltage_by_name op2 c2 "x1.n3")

let test_netlist_errors () =
  (match Netlist.parse "M1 d g s b missing w=1u l=1u" with
  | exception Netlist.Parse_error
      { span = { Yield_spice.Netlist_ast.start_line = 1; _ }; _ } -> ()
  | _ -> Alcotest.fail "expected parse error for unknown model");
  match Netlist.parse "Q1 a b c" with
  | exception Netlist.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected parse error for unknown card"

let subckt_netlist =
  {|* two identical voltage dividers as a subcircuit
.subckt div in out
Rtop in out 1k
Rbot out 0 1k
Cint out mid 1p
Rmid mid 0 1meg
.ends
VIN a 0 4
X1 a b div
X2 b c div
.end|}

let test_netlist_subckt_expansion () =
  let c = Netlist.parse subckt_netlist in
  (* each instance contributes three devices with prefixed names *)
  (match Circuit.find_device c "X1.Rtop" with
  | Yield_spice.Device.Resistor { ohms; _ } -> check_float "ohms" 1000. ohms
  | _ -> Alcotest.fail "X1.Rtop wrong kind");
  (match Circuit.find_device c "X2.Rbot" with
  | Yield_spice.Device.Resistor _ -> ()
  | _ -> Alcotest.fail "X2.Rbot missing");
  let op = solve_ok c in
  (* divider of divider: b = a * (Rbot || (chain)) ... with the second
     divider loading the first: V(b) = 4 * R_eff/(1k + R_eff) where
     R_eff = 1k || 2k = 2/3 k -> V(b) = 4 * (2/3)/(5/3) = 1.6; V(c) = 0.8 *)
  check_float ~eps:1e-6 "loaded divider" 1.6 (Dcop.voltage_by_name op c "b");
  check_float ~eps:1e-6 "second stage" 0.8 (Dcop.voltage_by_name op c "c");
  (* internal nodes are instance-scoped and resolvable; X1.mid hangs behind
     a capacitor, so its DC value is pulled to ground by Rmid *)
  check_float ~eps:1e-6 "x1 internal dc" 0. (Dcop.voltage_by_name op c "X1.mid")

let test_netlist_subckt_errors () =
  (match Netlist.parse ".subckt a in\nR1 in 0 1k\n" with
  | exception Netlist.Parse_error _ -> ()
  | _ -> Alcotest.fail "unterminated subckt accepted");
  (match Netlist.parse "X1 a b nosuch\n" with
  | exception Netlist.Parse_error _ -> ()
  | _ -> Alcotest.fail "unknown subckt accepted");
  match Netlist.parse ".subckt d in out\nR1 in out 1\n.ends\nX1 a d\n" with
  | exception Netlist.Parse_error _ -> ()
  | _ -> Alcotest.fail "port count mismatch accepted"

let test_netlist_analysis_cards () =
  let text =
    "VIN in 0 0 ac=1\nR1 in out 1k\nC1 out 0 1u\n.op\n.ac dec 10 1 1meg out\n\
     .tran 1u 100u out\n.dc VIN 0 1 0.1 out\n.end\n"
  in
  let _, analyses = Netlist.parse_with_analyses text in
  (match analyses with
  | [ Netlist.Op; Netlist.Ac_analysis ac; Netlist.Tran_analysis tr;
      Netlist.Dc_analysis dc ] ->
      Alcotest.(check int) "per decade" 10 ac.per_decade;
      check_float "f_hi" 1e6 ac.f_hi;
      Alcotest.(check string) "ac out" "out" ac.out;
      check_float "dt" 1e-6 tr.dt;
      Alcotest.(check string) "dc source" "VIN" dc.source;
      check_float "dc step" 0.1 dc.step
  | _ -> Alcotest.fail "analyses misparsed");
  (* parse ignores them *)
  let c = Netlist.parse text in
  Alcotest.(check int) "devices" 3 (Array.length (Circuit.devices c));
  (* malformed card rejected *)
  match Netlist.parse ".ac dec 10 1\n" with
  | exception Netlist.Parse_error _ -> ()
  | _ -> Alcotest.fail "malformed .ac accepted"

(* --- solver invariants --- *)

(* KCL: at the converged operating point of a random resistive network, the
   net current into every node is (numerically) zero. *)
let prop_dc_kcl_residual =
  QCheck.Test.make ~count:60 ~name:"dc solution satisfies KCL on random networks"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let n_nodes = 3 + Random.State.int st 5 in
      let node i = if i = 0 then "0" else Printf.sprintf "n%d" i in
      let c = Circuit.create () in
      Circuit.add_vsource c ~name:"V1" "n1" "0"
        (Random.State.float st 10. -. 5.);
      (* a random connected resistor mesh *)
      let idx = ref 0 in
      for i = 1 to n_nodes - 1 do
        (* chain guaranteeing connectivity *)
        incr idx;
        Circuit.add_resistor c
          ~name:(Printf.sprintf "Rc%d" !idx)
          (node i)
          (node (i - 1))
          (100. +. Random.State.float st 10_000.)
      done;
      for _ = 1 to n_nodes do
        let a = Random.State.int st n_nodes and b = Random.State.int st n_nodes in
        if a <> b then begin
          incr idx;
          Circuit.add_resistor c
            ~name:(Printf.sprintf "Rx%d" !idx)
            (node a) (node b)
            (100. +. Random.State.float st 10_000.)
        end
      done;
      match Dcop.solve c with
      | Error _ -> false
      | Ok op ->
          (* check KCL at every non-source node: sum of resistor currents *)
          let ok = ref true in
          for i = 2 to n_nodes - 1 do
            let vi = Dcop.voltage_by_name op c (node i) in
            let total = ref 0. in
            Array.iter
              (fun dev ->
                match dev with
                | Yield_spice.Device.Resistor { n1; n2; ohms; _ } ->
                    let v1 = Dcop.voltage op n1 and v2 = Dcop.voltage op n2 in
                    if n1 = Circuit.node c (node i) then
                      total := !total +. ((v1 -. v2) /. ohms)
                    else if n2 = Circuit.node c (node i) then
                      total := !total +. ((v2 -. v1) /. ohms)
                | _ -> ())
              (Circuit.devices c);
            if Float.abs !total > 1e-9 *. (1. +. Float.abs vi) then ok := false
          done;
          !ok)

(* Reciprocity: in a purely resistive two-port, the transfer impedance from
   port 1 to port 2 equals the one from port 2 to port 1. *)
let prop_resistive_reciprocity =
  QCheck.Test.make ~count:60 ~name:"resistive networks are reciprocal"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let rs = Array.init 5 (fun _ -> 100. +. Random.State.float st 10_000.) in
      let build ~drive_port1 =
        let c = Circuit.create () in
        Circuit.add_resistor c ~name:"RA" "p1" "mid" rs.(0);
        Circuit.add_resistor c ~name:"RB" "mid" "p2" rs.(1);
        Circuit.add_resistor c ~name:"RC" "mid" "0" rs.(2);
        Circuit.add_resistor c ~name:"RD" "p1" "0" rs.(3);
        Circuit.add_resistor c ~name:"RE" "p2" "0" rs.(4);
        let port = if drive_port1 then "p1" else "p2" in
        Circuit.add_isource c ~name:"I1" "0" port 1e-3;
        c
      in
      let c1 = build ~drive_port1:true in
      let c2 = build ~drive_port1:false in
      match (Dcop.solve c1, Dcop.solve c2) with
      | Ok op1, Ok op2 ->
          let v21 = Dcop.voltage_by_name op1 c1 "p2" in
          let v12 = Dcop.voltage_by_name op2 c2 "p1" in
          Float.abs (v21 -. v12) < 1e-9 *. (1. +. Float.abs v21)
      | _ -> false)

(* The AC solution at very low frequency matches the small-signal DC gain
   implied by finite differences of the nonlinear solve. *)
let test_ac_matches_dc_small_signal () =
  let build vin =
    let c = Circuit.create () in
    Circuit.add_vsource c ~name:"VDD" "vdd" "0" 3.3;
    Circuit.add_vsource c ~name:"VIN" ~ac:1. "g" "0" vin;
    Circuit.add_mosfet c ~name:"M1" ~d:"out" ~g:"g" ~s:"0" ~b:"0" ~model:nmos
      ~w:50e-6 ~l:1e-6;
    Circuit.add_resistor c ~name:"RL" "vdd" "out" 30_000.;
    Circuit.nodeset c (Circuit.node c "out") 2.;
    c
  in
  let vin = 0.65 in
  let dv = 1e-5 in
  let vout_at v =
    let c = build v in
    match Dcop.solve c with
    | Ok op -> Dcop.voltage_by_name op c "out"
    | Error _ -> Alcotest.fail "dc failed"
  in
  let dc_gain = (vout_at (vin +. dv) -. vout_at (vin -. dv)) /. (2. *. dv) in
  let c = build vin in
  let op = match Dcop.solve c with Ok o -> o | Error _ -> Alcotest.fail "dc" in
  let bode = Ac.transfer_by_name c op ~out:"out" ~freqs:[| 0.01 |] in
  let ac_gain = bode.Ac.response.(0).Complex.re in
  check_float ~eps:1e-4 "ac = d vout / d vin" dc_gain ac_gain

(* analytic derivatives hold across random bias points *)
let prop_mos_derivatives_random =
  QCheck.Test.make ~count:100 ~name:"mos analytic derivatives match numeric"
    QCheck.(triple (float_range 0.2 2.5) (float_range 0.05 3.) (float_range (-1.5) 0.))
    (fun (vgs, vds, vbs) ->
      let w = 20e-6 and l = 1e-6 in
      let dv = 1e-6 in
      let ids vgs vds vbs = (Mosfet.eval nmos ~w ~l ~vgs ~vds ~vbs).Mosfet.ids in
      let op = Mosfet.eval nmos ~w ~l ~vgs ~vds ~vbs in
      let gm_num = (ids (vgs +. dv) vds vbs -. ids (vgs -. dv) vds vbs) /. (2. *. dv) in
      let gds_num = (ids vgs (vds +. dv) vbs -. ids vgs (vds -. dv) vbs) /. (2. *. dv) in
      let ok a b = Float.abs (a -. b) <= 1e-3 *. (1e-9 +. Float.abs a) in
      ok gm_num op.Mosfet.gm && ok gds_num op.Mosfet.gds)

let prop_netlist_value_roundtrip =
  QCheck.Test.make ~count:200 ~name:"netlist values round-trip through printing"
    QCheck.(float_range (-12.) 12.)
    (fun exponent ->
      let v = 10. ** exponent in
      let printed =
        (* reuse the printer through a full card *)
        let c = Circuit.create () in
        Circuit.add_resistor c ~name:"R1" "a" "0" v;
        Netlist.to_string c
      in
      let reparsed = Netlist.parse printed in
      match Circuit.find_device reparsed "R1" with
      | Yield_spice.Device.Resistor { ohms; _ } ->
          Float.abs (ohms -. v) <= 1e-5 *. v
      | _ -> false)

let test_circuit_duplicate_device () =
  let c = Circuit.create () in
  Circuit.add_resistor c ~name:"R1" "a" "0" 1.;
  match Circuit.add_resistor c ~name:"R1" "b" "0" 2. with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected duplicate rejection"

let test_circuit_replace_device () =
  let c = Circuit.create () in
  Circuit.add_vsource c ~name:"V1" "in" "0" 1.;
  Circuit.add_resistor c ~name:"R1" "in" "out" 1000.;
  Circuit.add_resistor c ~name:"R2" "out" "0" 1000.;
  Circuit.replace_device c "R2" (function
    | Yield_spice.Device.Resistor r -> Yield_spice.Device.Resistor { r with ohms = 3000. }
    | other -> other);
  let op = solve_ok c in
  check_float ~eps:1e-9 "replaced divider" 0.75 (Dcop.voltage_by_name op c "out")

let suites =
  [
    ( "spice.mosfet",
      [
        Alcotest.test_case "cutoff" `Quick test_mos_cutoff;
        Alcotest.test_case "square law" `Quick test_mos_square_law;
        Alcotest.test_case "analytic derivatives" `Quick test_mos_gm_matches_numeric;
        Alcotest.test_case "weak-strong continuity" `Quick
          test_mos_continuity_weak_strong;
        Alcotest.test_case "source-drain reversal" `Quick test_mos_reverse_symmetry;
        Alcotest.test_case "body effect" `Quick test_mos_body_effect_raises_vth;
        Alcotest.test_case "channel-length modulation" `Quick
          test_mos_longer_l_lower_lambda;
        Alcotest.test_case "bad geometry" `Quick test_mos_bad_geometry;
      ] );
    ( "spice.dcop",
      [
        Alcotest.test_case "resistive divider" `Quick test_dc_divider;
        Alcotest.test_case "current source" `Quick test_dc_isource;
        Alcotest.test_case "vccs" `Quick test_dc_vccs;
        Alcotest.test_case "diode-connected mos" `Quick test_dc_diode_connected_mos;
        Alcotest.test_case "nmos mirror ratio" `Quick test_dc_nmos_mirror_ratio;
        Alcotest.test_case "pmos mirror" `Quick test_dc_pmos_mirror;
        Alcotest.test_case "singular reported" `Quick test_dc_no_convergence_reported;
      ] );
    ( "spice.ac",
      [
        Alcotest.test_case "rc lowpass" `Quick test_ac_rc_lowpass;
        Alcotest.test_case "common-source gain" `Quick test_ac_common_source_gain;
      ] );
    ( "spice.measure",
      [
        Alcotest.test_case "crossing" `Quick test_measure_crossing;
        Alcotest.test_case "single-pole pm" `Quick test_measure_single_pole_pm;
        Alcotest.test_case "two-pole pm" `Quick test_measure_two_pole_pm;
      ] );
    ( "spice.netlist",
      [
        Alcotest.test_case "value suffixes" `Quick test_parse_value_suffixes;
        Alcotest.test_case "parse and solve" `Quick test_netlist_parse_and_solve;
        Alcotest.test_case "roundtrip" `Quick test_netlist_roundtrip;
        Alcotest.test_case "roundtrip flattened" `Quick test_netlist_roundtrip_flattened;
        Alcotest.test_case "errors" `Quick test_netlist_errors;
        Alcotest.test_case "subckt expansion" `Quick test_netlist_subckt_expansion;
        Alcotest.test_case "subckt errors" `Quick test_netlist_subckt_errors;
        Alcotest.test_case "analysis cards" `Quick test_netlist_analysis_cards;
        QCheck_alcotest.to_alcotest prop_netlist_value_roundtrip;
      ] );
    ( "spice.invariants",
      [
        QCheck_alcotest.to_alcotest prop_dc_kcl_residual;
        QCheck_alcotest.to_alcotest prop_resistive_reciprocity;
        Alcotest.test_case "ac matches dc small-signal" `Quick
          test_ac_matches_dc_small_signal;
        QCheck_alcotest.to_alcotest prop_mos_derivatives_random;
      ] );
    ( "spice.circuit",
      [
        Alcotest.test_case "duplicate device" `Quick test_circuit_duplicate_device;
        Alcotest.test_case "replace device" `Quick test_circuit_replace_device;
      ] );
  ]
