(* Tests for the yield_core library: configuration, the end-to-end flow at
   smoke scale, the baseline, report rendering and experiment plumbing. *)

module Config = Yield_core.Config
module Flow = Yield_core.Flow
module Baseline = Yield_core.Baseline
module Report = Yield_core.Report
module Experiments = Yield_core.Experiments
module Ga = Yield_ga.Ga
module Ota = Yield_circuits.Ota
module Perf_model = Yield_behavioural.Perf_model
module Yield_target = Yield_behavioural.Yield_target
module Montecarlo = Yield_process.Montecarlo

let check_float ?(eps = 1e-9) what expected actual =
  if Float.abs (expected -. actual) > eps *. (1. +. Float.abs expected) then
    Alcotest.failf "%s: expected %.10g, got %.10g" what expected actual

(* a tiny configuration so the whole flow runs in seconds *)
let smoke_config =
  {
    Config.fast_scale with
    Config.ga =
      { Ga.default_config with Ga.population_size = 24; generations = 12 };
    mc_samples = 12;
    front_stride = 2;
    seed = 31;
  }

let flow = lazy (Flow.run smoke_config)

let test_config_env () =
  Alcotest.(check string) "paper scale name" "paper-scale"
    (Config.scale_name Config.paper_scale);
  Alcotest.(check string) "fast scale name" "reduced-scale"
    (Config.scale_name Config.fast_scale)

let test_flow_counts () =
  let f = Lazy.force flow in
  Alcotest.(check int) "optimisation sims = pop x gens" (24 * 12)
    f.Flow.counts.Flow.optimisation_sims;
  Alcotest.(check bool) "front nonempty" true
    (Array.length f.Flow.front_points >= 2);
  Alcotest.(check bool) "mc sims accounted" true
    (f.Flow.counts.Flow.mc_sims > 0);
  Alcotest.(check int) "total is the sum"
    (f.Flow.counts.Flow.optimisation_sims + f.Flow.counts.Flow.front_sims
   + f.Flow.counts.Flow.mc_sims)
    (Flow.total_sims f.Flow.counts)

let test_flow_front_monotone () =
  (* the extracted front must trade gain against phase margin *)
  let f = Lazy.force flow in
  let pts = Perf_model.points f.Flow.perf_model in
  let ok = ref true in
  for i = 1 to Array.length pts - 1 do
    if pts.(i).Perf_model.gain_db < pts.(i - 1).Perf_model.gain_db then
      ok := false;
    if pts.(i).Perf_model.pm_deg > pts.(i - 1).Perf_model.pm_deg +. 1e-9 then
      ok := false
  done;
  Alcotest.(check bool) "gain ascending, pm descending" true !ok

let test_flow_var_points_positive () =
  let f = Lazy.force flow in
  Array.iter
    (fun (p : Yield_behavioural.Var_model.point) ->
      if p.Yield_behavioural.Var_model.dgain_pct < 0. then
        Alcotest.fail "negative dgain";
      if p.Yield_behavioural.Var_model.dpm_pct < 0. then
        Alcotest.fail "negative dpm")
    f.Flow.var_points

let test_flow_spec_and_plan () =
  let f = Lazy.force flow in
  let spec = Experiments.spec_for_flow f in
  match Flow.design_for_spec f spec with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      (* within the (d/100)^2 second-order term of the inflation formula *)
      Alcotest.(check bool) "worst case clears gain spec" true
        (plan.Yield_target.worst_case_gain_db
        >= spec.Yield_target.min_gain_db *. (1. -. 1e-3))

let test_flow_verify_design () =
  let f = Lazy.force flow in
  let spec = Experiments.spec_for_flow f in
  match Flow.design_for_spec f spec with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      let params =
        Ota.params_of_array
          plan.Yield_target.proposal.Yield_behavioural.Macromodel.design
            .Perf_model.params
      in
      (match Flow.verify_design f ~samples:12 ~spec params with
      | Error e -> Alcotest.fail e
      | Ok v ->
          Alcotest.(check bool) "samples collected" true
            (Array.length v.Flow.gains > 6);
          (* at this smoke scale the model is coarse; the paper-scale run
             (bench/main.exe) checks the full-yield claim *)
          Alcotest.(check bool) "yield majority" true
            (v.Flow.yield.Montecarlo.yield >= 0.5))

let test_flow_save_load_tables () =
  let f = Lazy.force flow in
  let dir = Filename.temp_file "yieldlab" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let written = Flow.save_tables f ~dir in
      Alcotest.(check int) "two files" 2 (List.length written);
      let perf, _var = Flow.load_models ~dir ~control:"3E" in
      Alcotest.(check int) "perf model reloads" (Perf_model.size f.Flow.perf_model)
        (Perf_model.size perf))

let test_flow_lint_models () =
  (* the saved tables must pass their own preflight, and corrupting the
     perf table's axis ordering must surface as an error-severity finding —
     the same failure load_models would hit *)
  let f = Lazy.force flow in
  let dir = Filename.temp_file "yieldlab" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      ignore (Flow.save_tables f ~dir);
      let diags = Flow.lint_models ~dir ~control:"3E" () in
      Alcotest.(check int) "saved tables preflight clean" 0
        (Yield_analyse.Diagnostic.exit_code diags);
      let perf = Filename.concat dir "perf_model.tbl" in
      let lines =
        In_channel.with_open_text perf In_channel.input_lines
        |> List.map (fun l ->
               if String.length l > 0 && l.[0] <> '#' then "0.0 " ^ l else l)
      in
      Out_channel.with_open_text perf (fun oc ->
          List.iter (fun l -> Printf.fprintf oc "%s\n" l) lines);
      let diags = Flow.lint_models ~dir ~control:"3E" () in
      Alcotest.(check int) "corrupted perf table is an error" 2
        (Yield_analyse.Diagnostic.exit_code diags))

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  n = 0 || at 0

let test_prescreen_fingerprint () =
  (* a disabled prescreen must not disturb existing fingerprints (old
     checkpoints stay resumable); an enabled one must join the identity *)
  let base = Config.fingerprint smoke_config in
  Alcotest.(check bool) "disabled prescreen absent from fingerprint" false
    (contains ~needle:"prescreen" base);
  let ps =
    {
      Config.enabled = true;
      k_sigma = 0.5;
      min_gain_db = 60.;
      min_pm_deg = 0.;
      pass_budget_frac = 1.;
    }
  in
  let with_ps =
    Config.fingerprint { smoke_config with Config.prescreen = ps }
  in
  Alcotest.(check bool) "enabled prescreen joins the fingerprint" true
    (contains ~needle:"prescreen=k:0.5,g:60,pm:0,b:1" with_ps);
  Alcotest.(check bool) "base is a prefix" true
    (String.length with_ps >= String.length base
    && String.sub with_ps 0 (String.length base) = base)

let test_flow_prescreen () =
  (* wide-spec prescreen: provably-fail points skip their MC batch, so the
     run attempts strictly fewer samples than the unscreened reference and
     drops exactly the skipped points from the variation model *)
  let plain = Lazy.force flow in
  Alcotest.(check bool) "prescreen accounting absent when disabled" true
    (plain.Flow.prescreen = None);
  let ps =
    {
      Config.enabled = true;
      k_sigma = 0.5;
      min_gain_db = 55.;
      (* the smoke front's half-sigma gain enclosures top out between ~53.6
         and ~59.8 dB: the low-gain end provably misses 55 dB even at the
         best corner, the high-gain end does not *)
      min_pm_deg = 0.;
      pass_budget_frac = 1.;
    }
  in
  let f = Flow.run { smoke_config with Config.prescreen = ps } in
  match f.Flow.prescreen with
  | None -> Alcotest.fail "prescreen accounting missing from an enabled run"
  | Some pc ->
      Alcotest.(check bool) "some points analysed" true (pc.Flow.analysed > 0);
      Alcotest.(check int) "verdicts partition the analysed points"
        pc.Flow.analysed
        (pc.Flow.fail_skipped + pc.Flow.provably_passed + pc.Flow.undecided);
      Alcotest.(check bool) "low-gain points are provably out" true
        (pc.Flow.fail_skipped > 0);
      Alcotest.(check bool) "high-gain points are not" true
        (pc.Flow.fail_skipped < pc.Flow.analysed);
      Alcotest.(check bool) "skipped points attempt no MC" true
        (f.Flow.counts.Flow.mc_sims < plain.Flow.counts.Flow.mc_sims);
      Alcotest.(check int) "skipped points leave the variation model"
        (Array.length plain.Flow.var_points - pc.Flow.fail_skipped)
        (Array.length f.Flow.var_points);
      (* the perf model is untouched: prescreen gates only the MC stage *)
      let pa = Perf_model.points plain.Flow.perf_model in
      let pb = Perf_model.points f.Flow.perf_model in
      Alcotest.(check int) "same front size" (Array.length pa)
        (Array.length pb)

let test_flow_deterministic () =
  let a = Flow.run smoke_config and b = Flow.run smoke_config in
  let pa = Perf_model.points a.Flow.perf_model in
  let pb = Perf_model.points b.Flow.perf_model in
  Alcotest.(check int) "same front size" (Array.length pa) (Array.length pb);
  Array.iteri
    (fun i (p : Perf_model.point) ->
      check_float "same gains" p.Perf_model.gain_db pb.(i).Perf_model.gain_db)
    pa

let test_flow_functor_miller () =
  (* the generalised pipeline on the Miller OTA at smoke scale *)
  let module Miller_flow = Flow.Make (Yield_circuits.Miller) in
  let config =
    {
      smoke_config with
      Config.conditions =
        {
          Yield_circuits.Testbench.default_conditions with
          Yield_circuits.Testbench.min_unity_gain_hz = 5e6;
        };
      seed = 57;
    }
  in
  let f = Miller_flow.run config in
  let glo, ghi = Perf_model.gain_range f.Flow.perf_model in
  (* two-stage gains *)
  Alcotest.(check bool) "two-stage range" true (ghi > 75.);
  Alcotest.(check bool) "front spans" true (ghi -. glo > 3.);
  let spec = Experiments.spec_for_flow f in
  match Flow.design_for_spec f spec with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      let params =
        Yield_circuits.Miller.params_of_array
          plan.Yield_target.proposal.Yield_behavioural.Macromodel.design
            .Perf_model.params
      in
      (match Miller_flow.verify_design f ~samples:10 ~spec params with
      | Error e -> Alcotest.fail e
      | Ok v ->
          Alcotest.(check bool) "verification samples" true
            (Array.length v.Flow.gains > 5))

let test_baseline_runs () =
  let f = Lazy.force flow in
  let spec = Experiments.spec_for_flow f in
  let config =
    {
      (Baseline.default_config spec) with
      Baseline.population = 8;
      generations = 4;
      inner_mc = 3;
    }
  in
  let b = Baseline.run config in
  Alcotest.(check bool) "sims counted" true (b.Baseline.sims > 8 * 4);
  Alcotest.(check bool) "params in range" true
    (b.Baseline.best_params.Ota.w1 >= Ota.w_min
    && b.Baseline.best_params.Ota.w1 <= Ota.w_max);
  Alcotest.(check int) "per-extra-spec budget" (8 * 4 * 4)
    (Baseline.sims_per_extra_spec config)

let test_report_table () =
  let s = Report.table ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333" ] ] in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines + trailing" 5 (List.length lines);
  (* all rendered rows share the same width *)
  (match lines with
  | h :: rule :: _ -> Alcotest.(check int) "rule width" (String.length h) (String.length rule)
  | _ -> Alcotest.fail "missing lines")

let test_report_si () =
  Alcotest.(check string) "pico" "3.3p" (Report.si 3.3e-12);
  Alcotest.(check string) "mega" "10M" (Report.si 10e6);
  Alcotest.(check string) "unit" "42" (Report.si 42.);
  Alcotest.(check string) "zero" "0" (Report.si 0.)

let test_report_float_cell () =
  Alcotest.(check string) "two decimals" "3.14" (Report.float_cell 3.14159);
  Alcotest.(check string) "nan" "n/a" (Report.float_cell nan)

let test_experiments_registry () =
  Alcotest.(check int) "eight experiments" 8 (List.length Experiments.all);
  List.iter
    (fun id ->
      if not (List.mem_assoc id Experiments.all) then
        Alcotest.failf "missing experiment %s" id)
    [ "fig7"; "table2"; "table3"; "table4"; "table5"; "fig8"; "fig10"; "fig11" ]

let test_experiments_render () =
  (* each experiment renders without raising on a smoke-scale context *)
  let ctx =
    {
      Experiments.config = smoke_config;
      flow = Lazy.force flow;
      spec = Experiments.spec_for_flow (Lazy.force flow);
    }
  in
  List.iter
    (fun (name, f) ->
      if name <> "table5" then begin
        let s = f ctx in
        if String.length s < 40 then Alcotest.failf "%s output too short" name
      end)
    Experiments.all;
  (* table5 without the expensive baseline *)
  let s = Experiments.table5 ~run_baseline:false ctx in
  Alcotest.(check bool) "table5 renders" true (String.length s > 40)

let suites =
  [
    ( "core.config",
      [
        Alcotest.test_case "scale names" `Quick test_config_env;
        Alcotest.test_case "prescreen fingerprint" `Quick
          test_prescreen_fingerprint;
      ] );
    ( "core.flow",
      [
        Alcotest.test_case "counts" `Slow test_flow_counts;
        Alcotest.test_case "front monotone" `Slow test_flow_front_monotone;
        Alcotest.test_case "variation positive" `Slow test_flow_var_points_positive;
        Alcotest.test_case "spec and plan" `Slow test_flow_spec_and_plan;
        Alcotest.test_case "verify design" `Slow test_flow_verify_design;
        Alcotest.test_case "save/load tables" `Slow test_flow_save_load_tables;
        Alcotest.test_case "lint saved tables" `Slow test_flow_lint_models;
        Alcotest.test_case "deterministic" `Slow test_flow_deterministic;
        Alcotest.test_case "functor on miller" `Slow test_flow_functor_miller;
        Alcotest.test_case "prescreen" `Slow test_flow_prescreen;
      ] );
    ( "core.baseline",
      [ Alcotest.test_case "runs and counts" `Slow test_baseline_runs ] );
    ( "core.report",
      [
        Alcotest.test_case "table" `Quick test_report_table;
        Alcotest.test_case "si" `Quick test_report_si;
        Alcotest.test_case "float cell" `Quick test_report_float_cell;
      ] );
    ( "core.experiments",
      [
        Alcotest.test_case "registry" `Quick test_experiments_registry;
        Alcotest.test_case "render" `Slow test_experiments_render;
      ] );
  ]
